// Package repro's root benchmark harness regenerates every measurement in
// the paper's evaluation (Figure 3 and Table 1) plus ablations over the
// design choices called out in DESIGN.md. Each benchmark prints the
// quantities the paper reports as custom metrics:
//
//	go test -bench=Figure3 -benchtime=1x
//	go test -bench=Table1 -benchtime=1x
//	go test -bench=Ablation -benchtime=1x
//
// Figure 3 runs in deterministic virtual time (metrics are virtual
// seconds); Table 1 measures real wall-clock proxy overhead.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/ft"
)

// fig3Bench runs one Figure 3 case across the paper's load sweep and
// reports plain/Winner virtual runtimes and the reduction per load level.
func fig3Bench(b *testing.B, c experiments.Figure3Case, workerIters, managerIters int) {
	cfg := experiments.DefaultFigure3Config()
	cfg.Cases = []experiments.Figure3Case{c}
	cfg.WorkerIterations = workerIters
	cfg.ManagerIterations = managerIters
	for i := 0; i < b.N; i++ {
		series, err := experiments.RunFigure3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		s := series[0]
		for _, p := range s.Points {
			b.ReportMetric(p.Plain, fmt.Sprintf("plain_vs@%d", p.Loaded))
			b.ReportMetric(p.Winner, fmt.Sprintf("winner_vs@%d", p.Loaded))
		}
		sum := s.Summarize()
		b.ReportMetric(sum.BestReduction, "best_reduction_%")
		b.ReportMetric(sum.AvgReduction, "avg_reduction_%")
		if !sum.NeverWorse {
			b.Fatalf("winner worse than plain: %+v", s.Points)
		}
	}
}

// BenchmarkFigure3_30x3 regenerates the paper's lower two curves: the
// 30-dimensional Rosenbrock function with 3 workers on 6 workstations.
func BenchmarkFigure3_30x3(b *testing.B) {
	fig3Bench(b, experiments.Figure3Case{N: 30, Workers: 3, WorkerHosts: 5}, 80, 6)
}

// BenchmarkFigure3_100x7 regenerates the paper's upper two curves: the
// 100-dimensional Rosenbrock function with 7 workers on 10 workstations.
func BenchmarkFigure3_100x7(b *testing.B) {
	fig3Bench(b, experiments.Figure3Case{N: 100, Workers: 7, WorkerHosts: 9}, 80, 6)
}

// BenchmarkTable1 regenerates the proxy-overhead table: wall-clock
// runtimes with and without fault-tolerant proxies per worker-iteration
// budget. One sub-benchmark per row.
func BenchmarkTable1(b *testing.B) {
	for _, iters := range []int{100, 1000, 10000, 30000, 50000} {
		b.Run(fmt.Sprintf("iters=%d", iters), func(b *testing.B) {
			cfg := experiments.DefaultTable1Config()
			cfg.Iterations = []int{iters}
			for i := 0; i < b.N; i++ {
				rows, err := experiments.RunTable1(cfg)
				if err != nil {
					b.Fatal(err)
				}
				r := rows[0]
				b.ReportMetric(r.Plain, "plain_s")
				b.ReportMetric(r.Proxy, "proxy_s")
				b.ReportMetric(r.OverheadPct(), "overhead_%")
			}
		})
	}
}

// BenchmarkAblationCheckpointEvery varies the checkpoint frequency (the
// paper checkpoints after every call; this quantifies what relaxing that
// buys). Uses the Table 1 world at a fixed iteration budget.
func BenchmarkAblationCheckpointEvery(b *testing.B) {
	base := experiments.Table1Config{
		N: 30, Workers: 3,
		Iterations:        []int{2000},
		ManagerIterations: 3,
		Seed:              1,
		Repeats:           1,
	}
	report := func(b *testing.B, rows []experiments.Table1Row) {
		b.Helper()
		b.ReportMetric(rows[0].Proxy, "proxy_s")
		b.ReportMetric(rows[0].OverheadPct(), "overhead_%")
		b.ReportMetric(float64(rows[0].CheckpointBytes), "ckpt_B")
		b.ReportMetric(float64(rows[0].DeltaCheckpoints), "deltas")
	}
	for _, every := range []int{1, 5, 25} {
		b.Run(fmt.Sprintf("every=%d", every), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.RunTable1Ablation(base, every)
				if err != nil {
					b.Fatal(err)
				}
				report(b, rows)
			}
		})
	}
	// The data-path encodings at the paper's every=1 cadence: delta
	// encoding and compression cut checkpoint bytes-on-wire, async
	// pipelining cuts the latency the store write adds to each call.
	policies := []struct {
		name   string
		policy ft.Policy
	}{
		{"every=1/delta", ft.Policy{CheckpointEvery: 1, DeltaCheckpoint: true}},
		{"every=1/delta+flate", ft.Policy{CheckpointEvery: 1, DeltaCheckpoint: true, CompressCheckpoint: true}},
		{"every=1/async+delta", ft.Policy{CheckpointEvery: 1, AsyncCheckpoint: true, DeltaCheckpoint: true}},
	}
	for _, pc := range policies {
		b.Run(pc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.RunTable1AblationPolicy(base, pc.policy)
				if err != nil {
					b.Fatal(err)
				}
				report(b, rows)
			}
		})
	}
}

// BenchmarkAblationSelectionPolicy compares host-selection policies in
// the naming service under partial load: Winner best-host vs round-robin
// vs random. Reported metric is virtual runtime.
func BenchmarkAblationSelectionPolicy(b *testing.B) {
	for _, policy := range []string{"winner", "roundrobin", "random"} {
		b.Run(policy, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt, err := experiments.RunSelectionAblation(policy)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rt, "virtual_s")
			}
		})
	}
}

// BenchmarkAblationMixedCluster runs the workload on a heterogeneous NOW
// of slow uniprocessors and fast SMP machines (Winner's original target
// environment): the Winner-enhanced naming service finds the
// multiprocessors, the plain one walks into the slow machines.
func BenchmarkAblationMixedCluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plain, winner, err := experiments.RunMixedClusterAblation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(plain, "plain_vs")
		b.ReportMetric(winner, "winner_vs")
		if winner >= plain {
			b.Fatalf("winner (%v) not faster than plain (%v) on mixed cluster", winner, plain)
		}
	}
}

// BenchmarkAblationReplication contrasts the paper's checkpoint/restart
// fault tolerance (replicas=1) against active replication (replicas=2,3):
// active replicas occupy workstations the parallel application needs, so
// runtime grows — the paper's resource-cost argument as a measurement.
func BenchmarkAblationReplication(b *testing.B) {
	for _, replicas := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt, err := experiments.RunReplicationAblation(replicas)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rt, "virtual_s")
			}
		})
	}
}

// BenchmarkAblationLatency sweeps the virtual one-way network latency
// from LAN to WAN scale — the paper's future-work direction of CORBA
// metacomputing over wide-area networks.
func BenchmarkAblationLatency(b *testing.B) {
	for _, lat := range []float64{0, 0.001, 0.05, 0.5} {
		b.Run(fmt.Sprintf("latency=%gs", lat), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt, err := experiments.RunLatencyAblation(lat)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rt, "virtual_s")
			}
		})
	}
}

// BenchmarkAblationDecomposition varies the worker count for a fixed
// 60-dimensional problem on an unloaded NOW, exposing the parallelism/
// coordination trade-off of the decomposition.
func BenchmarkAblationDecomposition(b *testing.B) {
	for _, workers := range []int{2, 3, 5, 7} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt, err := experiments.RunDecompositionAblation(60, workers)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rt, "virtual_s")
			}
		})
	}
}
