// Loadbalanced: the paper's headline scenario on a simulated network of
// workstations — a decomposed Rosenbrock optimization whose workers are
// placed through the naming service, with and without Winner load
// distribution, while some workstations carry background load.
//
//	go run ./examples/loadbalanced
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ft"
	"repro/internal/naming"
	"repro/internal/rosen"
)

func main() {
	const (
		hosts   = 8
		loaded  = 3 // background load on 3 of the 7 worker hosts
		dim     = 30
		workers = 3
	)

	fmt.Printf("simulated NOW: %d workstations, background load on %d\n", hosts, loaded)
	fmt.Printf("problem: %d-dimensional Rosenbrock, %d workers\n\n", dim, workers)

	for _, useWinner := range []bool{false, true} {
		runtime, placed := run(useWinner, hosts, loaded, dim, workers)
		mode := "plain naming (CORBA)"
		if useWinner {
			mode = "Winner naming (CORBA/Winner)"
		}
		fmt.Printf("%-30s runtime %8.1f virtual s, workers on %v\n", mode, runtime, placed)
	}
}

// run boots a fresh environment and performs one optimization, returning
// the virtual runtime and the hosts the workers were placed on.
func run(useWinner bool, hosts, loaded, dim, workers int) (float64, []string) {
	env, err := core.Start(core.EnvironmentOptions{Hosts: hosts, UseWinner: useWinner})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	// One worker service per workstation (host 0 keeps the services and
	// the manager).
	name := naming.NewName(rosen.ServiceName)
	addrToHost := map[string]string{}
	for _, h := range env.Cluster.Hosts()[1:] {
		node, err := env.NewNode(h.Name())
		if err != nil {
			log.Fatal(err)
		}
		ref := node.Adapter.Activate("worker", ft.Wrap(rosen.NewWorker(h)))
		if err := env.Naming.BindOffer(context.Background(), name, ref, h.Name()); err != nil {
			log.Fatal(err)
		}
		addrToHost[ref.Addr] = h.Name()
	}

	// Background load on the first `loaded` worker hosts.
	for i := 0; i < loaded; i++ {
		env.Cluster.Hosts()[1+i].SetBackground(1)
	}
	env.SampleAll()

	mgrNode, err := env.NewNode(env.Cluster.Hosts()[0].Name())
	if err != nil {
		log.Fatal(err)
	}
	m := rosen.NewManager(mgrNode.ORB, env.NamingClientFor(mgrNode), rosen.Config{
		N: dim, Workers: workers,
		WorkerIterations:  100,
		ManagerIterations: 6,
		Seed:              1,
		EvalCost:          0.02,
	}).OnHost(mgrNode.Host)

	res, err := m.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	var placed []string
	for _, ref := range m.WorkerRefs() {
		placed = append(placed, addrToHost[ref.Addr])
	}
	return res.Runtime, placed
}
