// Quickstart: bring up the mini-ORB, a naming service and one application
// object in a single process; resolve the object by name and call it.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cdr"
	"repro/internal/naming"
	"repro/internal/orb"
)

// greeter is a minimal servant: one operation, greet(name) -> string.
type greeter struct{}

func (greeter) TypeID() string { return "IDL:example/Greeter:1.0" }

func (greeter) Invoke(_ *orb.ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	if op != "greet" {
		return orb.BadOperation(op)
	}
	who := in.GetString()
	if err := in.Err(); err != nil {
		return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
	}
	out.PutString("Hello, " + who + "! Greetings from the object side.")
	return nil
}

func main() {
	// 1. Initialize the ORB and an object adapter (server side).
	server := orb.New(orb.Options{Name: "quickstart-server"})
	defer server.Shutdown()
	adapter, err := server.NewAdapter("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Run a naming service and activate the application object.
	registry := naming.NewRegistry()
	nsRef := adapter.Activate(naming.DefaultKey, naming.NewServant(registry, nil))
	greeterRef := adapter.Activate("greeter-1", greeter{})

	// 3. A client (separate ORB — could be a separate process: the
	// reference travels as a string) binds and resolves the name.
	client := orb.New(orb.Options{Name: "quickstart-client"})
	defer client.Shutdown()

	sior := nsRef.ToString()
	fmt.Printf("naming service SIOR: %s...\n", sior[:40])
	parsed, err := orb.RefFromString(sior)
	if err != nil {
		log.Fatal(err)
	}
	ns := naming.NewClient(client, parsed)

	ctx := context.Background()
	name := naming.NewName("examples", "greeter")
	if err := ns.BindNewContext(ctx, naming.NewName("examples")); err != nil {
		log.Fatal(err)
	}
	if err := ns.Bind(ctx, name, greeterRef); err != nil {
		log.Fatal(err)
	}

	resolved, err := ns.Resolve(ctx, name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resolved %q -> %v\n", name, resolved)

	// 4. Invoke the remote operation through the unified call API; the
	// variadic options bound this call to one second end to end.
	var reply string
	err = client.Call(ctx, resolved, "greet",
		func(e *cdr.Encoder) { e.PutString("world") },
		func(d *cdr.Decoder) error { reply = d.GetString(); return d.Err() },
		orb.WithDeadline(time.Second))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(reply)
}
