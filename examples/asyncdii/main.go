// Asyncdii: asynchronous method invocation with DII-style request
// objects, plus the fault-tolerant request proxies of the paper — several
// subproblems dispatched concurrently, one server killed before the
// results are collected.
//
//	go run ./examples/asyncdii
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cdr"
	"repro/internal/ft"
	"repro/internal/naming"
	"repro/internal/orb"
)

// primeCounter counts primes below a bound — a stand-in for an expensive
// numeric service call.
type primeCounter struct{}

func (primeCounter) TypeID() string { return "IDL:example/PrimeCounter:1.0" }

func (primeCounter) Invoke(_ *orb.ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	if op != "count" {
		return orb.BadOperation(op)
	}
	limit := in.GetInt64()
	if err := in.Err(); err != nil {
		return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
	}
	var count int64
	for n := int64(2); n < limit; n++ {
		isPrime := true
		for d := int64(2); d*d <= n; d++ {
			if n%d == 0 {
				isPrime = false
				break
			}
		}
		if isPrime {
			count++
		}
	}
	out.PutInt64(count)
	return nil
}

func (primeCounter) Checkpoint() ([]byte, error) { return nil, nil } // stateless
func (primeCounter) Restore([]byte) error        { return nil }

func main() {
	// Services process: naming + checkpoint store.
	services := orb.New(orb.Options{Name: "services"})
	defer services.Shutdown()
	svcAd, err := services.NewAdapter("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	reg := naming.NewRegistry()
	nsRef := svcAd.Activate(naming.DefaultKey, naming.NewServant(reg, naming.RoundRobinSelector()))
	storeRef := svcAd.Activate(ft.StoreDefaultKey, ft.NewStoreServant(ft.NewMemStore()))

	// Two server processes offering the same service.
	name := naming.NewName("primes")
	client := orb.New(orb.Options{Name: "client"})
	defer client.Shutdown()
	ns := naming.NewClient(client, nsRef)

	var servers []*orb.ORB
	addrToServer := map[string]*orb.ORB{}
	for i := 0; i < 2; i++ {
		srv := orb.New(orb.Options{Name: fmt.Sprintf("server%d", i)})
		ad, err := srv.NewAdapter("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		ref := ad.Activate("primes", ft.Wrap(primeCounter{}))
		if err := ns.BindOffer(context.Background(), name, ref, fmt.Sprintf("host%d", i)); err != nil {
			log.Fatal(err)
		}
		servers = append(servers, srv)
		addrToServer[ref.Addr] = srv
	}
	defer func() {
		for _, srv := range servers {
			srv.Shutdown()
		}
	}()

	// Plain DII: dispatch three requests concurrently, then collect.
	direct, err := ns.Resolve(context.Background(), name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plain DII requests:")
	limits := []int64{10_000, 50_000, 100_000}
	var reqs []*orb.Request
	for _, limit := range limits {
		req := client.CreateRequest(context.Background(), direct, "count")
		req.Args().PutInt64(limit)
		req.Send()
		reqs = append(reqs, req)
	}
	for i, req := range reqs {
		for !req.PollResponse() {
			time.Sleep(time.Millisecond)
		}
		var count int64
		if err := req.GetResponse(func(d *cdr.Decoder) error { count = d.GetInt64(); return d.Err() }); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  π(%d) = %d\n", limits[i], count)
	}

	// FT request proxies: dispatch, kill the first server, then collect —
	// the proxies replay the lost requests against the standby.
	fmt.Println("\nfault-tolerant request proxies (server killed mid-flight):")
	proxy, err := ft.NewProxy(context.Background(), client, name, ns, ft.NewStoreClient(client, storeRef),
		ft.Policy{CheckpointEvery: 0, MaxRecoveries: 3}, ft.WithUnbinder(ns))
	if err != nil {
		log.Fatal(err)
	}
	var freqs []*ft.RequestProxy
	for _, limit := range limits {
		req := proxy.NewRequest(context.Background(), "count")
		req.Args().PutInt64(limit)
		req.Send()
		freqs = append(freqs, req)
	}
	// Crash exactly the server the proxy resolved to.
	addrToServer[proxy.Ref().Addr].Shutdown()
	for i, req := range freqs {
		var count int64
		if err := req.GetResponse(func(d *cdr.Decoder) error { count = d.GetInt64(); return d.Err() }); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  π(%d) = %d\n", limits[i], count)
	}
	st := proxy.Stats()
	fmt.Printf("\nproxy stats: %d calls, %d recoveries, %d replays\n", st.Calls, st.Recoveries, st.Replays)
}
