// Migration: the paper's observation that a checkpoint/restore-capable
// service "can in principle be migrated from one host to another ... also
// due to a changing load situation", made operational. A long-lived
// simulation service runs on one workstation; when background load
// appears there, the migrator consults Winner, finds a much better host
// and moves the service state over — while a failure detector
// concurrently prunes dead offers from the naming service.
//
//	go run ./examples/migration
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"repro/internal/cdr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ft"
	"repro/internal/naming"
	"repro/internal/orb"
)

// simulation is a stateful service accumulating simulation steps.
type simulation struct {
	mu    sync.Mutex
	steps int64
}

func (s *simulation) TypeID() string { return "IDL:example/Simulation:1.0" }

func (s *simulation) Invoke(_ *orb.ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch op {
	case "step":
		s.steps++
		out.PutInt64(s.steps)
		return nil
	default:
		return orb.BadOperation(op)
	}
}

func (s *simulation) Checkpoint() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := cdr.NewEncoder(8)
	e.PutInt64(s.steps)
	return e.Bytes(), nil
}

func (s *simulation) Restore(data []byte) error {
	d := cdr.NewDecoder(data)
	v := d.GetInt64()
	if err := d.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	s.steps = v
	s.mu.Unlock()
	return nil
}

func main() {
	env, err := core.Start(core.EnvironmentOptions{Hosts: 3, UseWinner: true})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	storeRef := env.ServiceNode.Adapter.Activate(ft.StoreDefaultKey, ft.NewStoreServant(ft.NewMemStore()))
	name := naming.NewName("sim")

	var hostNames []string
	var nodes []*cluster.Node
	for _, h := range env.Cluster.Hosts()[1:] {
		node, err := env.NewNode(h.Name())
		if err != nil {
			log.Fatal(err)
		}
		ref := node.Adapter.Activate("sim", ft.Wrap(&simulation{}))
		if err := env.Naming.BindOffer(context.Background(), name, ref, h.Name()); err != nil {
			log.Fatal(err)
		}
		hostNames = append(hostNames, h.Name())
		nodes = append(nodes, node)
	}
	env.SampleAll()

	ctx := context.Background()
	client := env.ServiceNode.ORB
	proxy, err := ft.NewProxy(ctx, client, name, env.Naming,
		ft.NewStoreClient(client, storeRef),
		ft.Policy{CheckpointEvery: 1}, ft.WithUnbinder(env.Naming))
	if err != nil {
		log.Fatal(err)
	}
	migrator := ft.NewMigrator(ctx, proxy,
		ft.MigrateOffers(env.Naming), ft.MigrateLoads(env.Manager),
		ft.MigrateMinImprovement(1.5))
	detector := ft.NewDetector(client, env.Naming, ft.DetectorOptions{Suspicions: 1})
	detector.Watch(name)

	step := func() int64 {
		var n int64
		if err := proxy.Call(ctx, "step", nil, func(d *cdr.Decoder) error {
			n = d.GetInt64()
			return d.Err()
		}); err != nil {
			log.Fatal(err)
		}
		return n
	}

	hostOf := func() string {
		offers, err := env.Naming.ListOffers(ctx, name)
		if err != nil {
			return "?"
		}
		for _, o := range offers {
			if o.Ref == proxy.Ref() {
				return o.Host
			}
		}
		return "?"
	}

	fmt.Printf("simulation runs on %s\n", hostOf())
	for i := 0; i < 3; i++ {
		fmt.Printf("  step -> %d\n", step())
	}

	fmt.Printf("\n*** background load appears on %s ***\n", hostNames[0])
	env.Cluster.Host(hostNames[0]).SetBackground(3)
	env.SampleAll()

	moved, err := migrator.Step(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("migrator moved the service to %s (state travelled via checkpoint)\n", moved)
	for i := 0; i < 2; i++ {
		fmt.Printf("  step -> %d\n", step())
	}

	fmt.Println("\n*** the old workstation crashes; the detector prunes its offer ***")
	nodes[0].Fail()
	detector.Step(ctx)
	offers, _ := env.Naming.ListOffers(ctx, name)
	fmt.Printf("offers remaining: %d, proxy stats: %+v\n", len(offers), proxy.Stats())
}
