// MDO: the application class that motivates the paper — multidisciplinary
// design optimization, "typically arising in the automotive or aerospace
// industry". A toy wing design couples two discipline analyses
// (aerodynamics → drag, structures → weight) exposed as services on a
// simulated NOW. The optimizer evaluates candidate designs by remote
// calls placed through the Winner naming service and guarded by
// fault-tolerant proxies; one workstation is killed mid-optimization and
// the run completes anyway.
//
//	go run ./examples/mdo
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/internal/cdr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ft"
	"repro/internal/naming"
	"repro/internal/opt"
	"repro/internal/orb"
)

// disciplineServant evaluates one discipline model. It is stateless, but
// still checkpointable (empty state) so the generic FT machinery applies.
type disciplineServant struct {
	name  string
	model func(span, area float64) float64
}

func (s *disciplineServant) TypeID() string { return "IDL:example/Discipline:1.0" }

func (s *disciplineServant) Invoke(_ *orb.ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	if op != "evaluate" {
		return orb.BadOperation(op)
	}
	span := in.GetFloat64()
	area := in.GetFloat64()
	if err := in.Err(); err != nil {
		return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
	}
	out.PutFloat64(s.model(span, area))
	return nil
}

func (s *disciplineServant) Checkpoint() ([]byte, error) { return nil, nil }
func (s *disciplineServant) Restore([]byte) error        { return nil }

// Toy discipline models. Drag falls with span (induced drag) but the
// structure gets heavier; area trades lift for weight.
func dragModel(span, area float64) float64 {
	induced := 40.0 / (span * span)
	parasitic := 0.8 * area
	return induced + parasitic
}

func weightModel(span, area float64) float64 {
	return 0.7*span*span/math.Sqrt(area) + 2.0*area
}

func main() {
	env, err := core.Start(core.EnvironmentOptions{Hosts: 5, UseWinner: true})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	storeRef := env.ServiceNode.Adapter.Activate(ft.StoreDefaultKey, ft.NewStoreServant(ft.NewMemStore()))
	if err := env.Naming.BindNewContext(context.Background(), naming.NewName("mdo")); err != nil {
		log.Fatal(err)
	}
	aeroName := naming.NewName("mdo", "aero")
	structName := naming.NewName("mdo", "struct")

	// Every workstation offers both discipline services.
	var nodes []*cluster.Node
	for _, h := range env.Cluster.Hosts()[1:] {
		node, err := env.NewNode(h.Name())
		if err != nil {
			log.Fatal(err)
		}
		aeroRef := node.Adapter.Activate("aero", ft.Wrap(&disciplineServant{name: "aero", model: dragModel}))
		structRef := node.Adapter.Activate("struct", ft.Wrap(&disciplineServant{name: "struct", model: weightModel}))
		if err := env.Naming.BindOffer(context.Background(), aeroName, aeroRef, h.Name()); err != nil {
			log.Fatal(err)
		}
		if err := env.Naming.BindOffer(context.Background(), structName, structRef, h.Name()); err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	env.SampleAll()

	client := env.ServiceNode.ORB
	store := ft.NewStoreClient(client, storeRef)
	aero, err := ft.NewProxy(context.Background(), client, aeroName, env.Naming, store,
		ft.Policy{CheckpointEvery: 0}, ft.WithUnbinder(env.Naming))
	if err != nil {
		log.Fatal(err)
	}
	structural, err := ft.NewProxy(context.Background(), client, structName, env.Naming, store,
		ft.Policy{CheckpointEvery: 0}, ft.WithUnbinder(env.Naming))
	if err != nil {
		log.Fatal(err)
	}

	evaluate := func(p *ft.Proxy, span, area float64) float64 {
		var v float64
		if err := p.Call(context.Background(), "evaluate",
			func(e *cdr.Encoder) { e.PutFloat64(span); e.PutFloat64(area) },
			func(d *cdr.Decoder) error { v = d.GetFloat64(); return d.Err() }); err != nil {
			log.Fatal(err)
		}
		return v
	}

	evals := 0
	objective := func(x []float64) float64 {
		evals++
		if evals == 40 {
			// A workstation dies in the middle of the optimization.
			fmt.Println("  *** workstation crash during evaluation 40 ***")
			nodes[0].Fail()
		}
		span, area := x[0], x[1]
		drag := evaluate(aero, span, area)
		weight := evaluate(structural, span, area)
		return drag + 0.1*weight
	}

	fmt.Println("minimizing drag + 0.1*weight over (span, area) with remote discipline services")
	res, err := opt.MinimizeComplexBox(objective, opt.Bounds{
		Lo: []float64{4, 5},
		Hi: []float64{20, 40},
	}, opt.ComplexBoxOptions{MaxIterations: 150, Seed: 7, Tolerance: 1e-9})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nbest design: span=%.2f m, area=%.2f m², objective=%.4f\n", res.X[0], res.X[1], res.F)
	fmt.Printf("remote evaluations: %d aero + %d struct\n", aero.Stats().Calls, structural.Stats().Calls)
	fmt.Printf("aero proxy recoveries: %d, struct proxy recoveries: %d\n",
		aero.Stats().Recoveries, structural.Stats().Recoveries)
}
