// Faulttolerant: a stateful bank-account service accessed through the
// paper's fault-tolerant proxy. The workstation hosting the account
// crashes mid-sequence; the proxy detects COMM_FAILURE, re-resolves the
// service through the naming service, restores the last checkpoint into a
// standby server and replays the failed call — the balance survives.
//
//	go run ./examples/faulttolerant
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"repro/internal/cdr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ft"
	"repro/internal/naming"
	"repro/internal/orb"
)

// account is a checkpointable servant holding a balance.
type account struct {
	mu      sync.Mutex
	balance int64
}

func (a *account) TypeID() string { return "IDL:example/Account:1.0" }

func (a *account) Invoke(_ *orb.ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch op {
	case "deposit":
		amount := in.GetInt64()
		if err := in.Err(); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		a.balance += amount
		out.PutInt64(a.balance)
		return nil
	case "balance":
		out.PutInt64(a.balance)
		return nil
	default:
		return orb.BadOperation(op)
	}
}

func (a *account) Checkpoint() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	e := cdr.NewEncoder(8)
	e.PutInt64(a.balance)
	return e.Bytes(), nil
}

func (a *account) Restore(data []byte) error {
	d := cdr.NewDecoder(data)
	v := d.GetInt64()
	if err := d.Err(); err != nil {
		return err
	}
	a.mu.Lock()
	a.balance = v
	a.mu.Unlock()
	return nil
}

func main() {
	env, err := core.Start(core.EnvironmentOptions{Hosts: 3, UseWinner: true})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	// The checkpoint storage service lives with the other services.
	storeRef := env.ServiceNode.Adapter.Activate(ft.StoreDefaultKey, ft.NewStoreServant(ft.NewMemStore()))

	// Two workstations each host an account server, registered as offers
	// of one name.
	name := naming.NewName("bank", "account-42")
	if err := env.Naming.BindNewContext(context.Background(), naming.NewName("bank")); err != nil {
		log.Fatal(err)
	}
	var nodes []*cluster.Node
	for _, h := range env.Cluster.Hosts()[1:] {
		node, err := env.NewNode(h.Name())
		if err != nil {
			log.Fatal(err)
		}
		ref := node.Adapter.Activate("account", ft.Wrap(&account{}))
		if err := env.Naming.BindOffer(context.Background(), name, ref, h.Name()); err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	env.SampleAll()

	// Client side: the only change versus a plain client is constructing
	// the proxy instead of using the stub directly.
	client := env.ServiceNode.ORB
	proxy, err := ft.NewProxy(context.Background(), client, name, env.Naming,
		ft.NewStoreClient(client, storeRef),
		ft.Policy{CheckpointEvery: 1},
		ft.WithUnbinder(env.Naming))
	if err != nil {
		log.Fatal(err)
	}

	deposit := func(amount int64) int64 {
		var balance int64
		err := proxy.Call(context.Background(), "deposit",
			func(e *cdr.Encoder) { e.PutInt64(amount) },
			func(d *cdr.Decoder) error { balance = d.GetInt64(); return d.Err() })
		if err != nil {
			log.Fatal(err)
		}
		return balance
	}

	fmt.Printf("deposit 100 -> balance %d\n", deposit(100))
	fmt.Printf("deposit  50 -> balance %d\n", deposit(50))

	fmt.Println("\n*** crashing the workstation that hosts the account ***")
	nodes[0].Fail() // the first offer's host — where the proxy resolved to

	fmt.Printf("deposit  25 -> balance %d   (recovered transparently)\n", deposit(25))

	st := proxy.Stats()
	fmt.Printf("\nproxy stats: %d calls, %d checkpoints, %d recoveries, %d replays\n",
		st.Calls, st.Checkpoints, st.Recoveries, st.Replays)
}
