GO ?= go

.PHONY: check fmt vet build test race chaos generate bench bench-json

## check: everything CI runs — formatting, vet, build, race-enabled tests.
check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## chaos: the fault-injection soaks — Rosenbrock under worker kills, a
## naming partition, checkpoint-path delays and a checkpointd replica
## crash, plus the control-plane scenario (3 naming replicas, primary
## nameserver and winnerd killed mid-run, lease expiry), the naming
## storm (10k push-subscribed clients, group member killed mid-run,
## naming request traffic must stay flat; CHAOS_ARTIFACT exports the
## traffic summary as JSON), the flight-recorder dump scenario
## (worker killed mid-run must auto-dump the black box;
## FLIGHTREC_ARTIFACT exports the dump JSON) and the mixed-priority
## overload soak (three QoS classes past saturation: batch sheds with
## retry-after hints, critical p99 stays flat, the degradation
## controller walks down the ladder and back; QOS_ARTIFACT exports the
## per-class outcome summary as JSON) and the elastic scale soak (a real
## workerd pool grows 4→12 and shrinks to 6 mid-run, a Degrading host's
## state migrates proactively with zero replayed calls, and the result
## stays bitwise-identical to a fixed 6-worker run; ELASTIC_ARTIFACT
## exports the run summary as JSON), race-enabled, fixed seeds.
chaos:
	CHAOS_ARTIFACT=$${CHAOS_ARTIFACT:-naming_storm_soak.json} \
	FLIGHTREC_ARTIFACT=$${FLIGHTREC_ARTIFACT:-flightrec_dump.json} \
	QOS_ARTIFACT=$${QOS_ARTIFACT:-qos_soak.json} \
	ELASTIC_ARTIFACT=$${ELASTIC_ARTIFACT:-elastic_scale_soak.json} \
		$(GO) test -race -count=1 -run 'TestChaosSoak|TestControlPlaneChaos|TestNamingStormSoak|TestFlightRecorderChaosDump|TestMixedPriorityOverloadSoak|TestElasticScaleSoak' -v ./integration/

generate:
	$(GO) generate ./...

bench:
	$(GO) test -bench 'Figure3|Table1|Ablation' -benchtime=1x

## bench-json: machine-readable benchmark artifacts CI uploads per run —
## the quick evaluation sweep (BENCH_PR3.json), the reactor saturation
## sweep (BENCH_SATURATE.json), and the data-path microbenchmarks with
## -benchmem (BENCH_PR6.json), gated by benchgate against the checked-in
## baseline: >10% allocs/op growth (any growth on a zero-alloc baseline)
## or >75% ns/op growth on any tracked benchmark fails the target.
bench-json:
	$(GO) run ./cmd/rosenbench -experiment both -quick -json > BENCH_PR3.json
	$(GO) run ./cmd/rosenbench -saturate -quick -json > BENCH_SATURATE.json
	( $(GO) test -run '^$$' -bench 'BenchmarkCallPath|BenchmarkSyncCall|BenchmarkOnewayDispatch|BenchmarkProxyCall' -benchmem -benchtime=5000x ./internal/orb/ ./internal/ft/ && \
	  $(GO) test -run '^$$' -bench 'BenchmarkFlightRecord' -benchmem -benchtime=5000x ./internal/obs/ && \
	  $(GO) test -run '^$$' -bench 'BenchmarkAblationCheckpointEvery' -benchmem -benchtime=1x . ) \
		| $(GO) run ./cmd/benchgate -out BENCH_PR6.json -baseline BENCH_BASELINE_PR6.json -max-allocs-regress 10 -max-time-regress 75
