GO ?= go

.PHONY: check fmt vet build test race chaos generate bench bench-json

## check: everything CI runs — formatting, vet, build, race-enabled tests.
check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## chaos: the fault-injection soaks — Rosenbrock under worker kills, a
## naming partition, checkpoint-path delays and a checkpointd replica
## crash, plus the control-plane scenario (3 naming replicas, primary
## nameserver and winnerd killed mid-run, lease expiry), race-enabled,
## fixed seeds.
chaos:
	$(GO) test -race -count=1 -run 'TestChaosSoak|TestControlPlaneChaos' -v ./integration/

generate:
	$(GO) generate ./...

bench:
	$(GO) test -bench 'Figure3|Table1|Ablation' -benchtime=1x

## bench-json: the quick evaluation sweep as machine-readable JSON
## (BENCH_PR3.json), the artifact CI uploads per run for trend tracking.
bench-json:
	$(GO) run ./cmd/rosenbench -experiment both -quick -json > BENCH_PR3.json
