package integration

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/naming"
	"repro/internal/orb"
)

// The naming-storm soak: a fleet of simulated clients (10k by default,
// STORM_CLIENTS overrides) each holds a push-subscribed group ref over a
// 3-replica naming service. The scenario kills one group member, then
// the whole group, then re-binds a member — and asserts the resolve
// storm the push protocol exists to prevent never happens: the naming
// service's resolve counter stays exactly flat and no client re-watches,
// because every membership change reaches the fleet as oneway pushes.
// Naming traffic is O(replicas) per event (one push fan-out from the
// subscribed replica), never O(clients) request traffic.

// stormReplica is one in-process naming replica with its push hub.
type stormReplica struct {
	o   *orb.ORB
	reg *naming.Registry
	srv *naming.Servant
	hub *naming.Hub
	ref orb.ObjectRef
}

func startStormReplica(t *testing.T) *stormReplica {
	t.Helper()
	o := orb.New(orb.Options{Name: "storm-ns"})
	t.Cleanup(o.Shutdown)
	a, err := o.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := naming.NewRegistry()
	srv := naming.NewServant(reg, naming.RoundRobinSelector())
	hub := naming.NewHub(o, reg, naming.HubOptions{PushTimeout: 5 * time.Second})
	hub.Start()
	t.Cleanup(hub.Stop)
	srv.SetHub(hub)
	ref := a.Activate(naming.DefaultKey, srv)
	return &stormReplica{o: o, reg: reg, srv: srv, hub: hub, ref: ref}
}

func stormClients() int {
	if s := os.Getenv("STORM_CLIENTS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 10000
}

func TestNamingStormSoak(t *testing.T) {
	nClients := stormClients()
	replicas := []*stormReplica{startStormReplica(t), startStormReplica(t), startStormReplica(t)}
	group := naming.NewName("workers")
	memberA := orb.ObjectRef{Addr: "10.0.0.1:7001", Key: "w", TypeID: "IDL:w:1.0"}
	memberB := orb.ObjectRef{Addr: "10.0.0.2:7001", Key: "w", TypeID: "IDL:w:1.0"}
	memberC := orb.ObjectRef{Addr: "10.0.0.3:7001", Key: "w", TypeID: "IDL:w:1.0"}
	// Mutations are applied to every replica's registry directly,
	// standing in for the replication mesh (exercised elsewhere): this
	// soak is about the client-facing traffic pattern.
	mutate := func(f func(r *naming.Registry) error) {
		t.Helper()
		for _, rep := range replicas {
			if err := f(rep.reg); err != nil {
				t.Fatal(err)
			}
		}
	}
	mutate(func(r *naming.Registry) error { return r.BindOffer(group, naming.Offer{Ref: memberA, Host: "w1"}) })
	mutate(func(r *naming.Registry) error { return r.BindOffer(group, naming.Offer{Ref: memberB, Host: "w2"}) })
	mutate(func(r *naming.Registry) error { return r.BindOffer(group, naming.Offer{Ref: memberC, Host: "w3"}) })

	co := orb.New(orb.Options{Name: "storm-clients", CallTimeout: 10 * time.Second})
	t.Cleanup(co.Shutdown)
	ad, err := co.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ha, err := naming.NewHAClient(co, []orb.ObjectRef{replicas[0].ref, replicas[1].ref, replicas[2].ref},
		naming.HAOptions{PerTryTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	caches := make([]*naming.GroupCache, nClients)
	refs := make([]*naming.GroupRef, nClients)
	for i := range caches {
		caches[i] = naming.NewGroupCache(ad, ha, naming.GroupCacheOptions{Refresh: -1})
		refs[i] = caches[i].Group(group, naming.SpreadRoundRobin)
	}
	t.Cleanup(func() {
		// Skip per-cache unwatch RPC teardown: 10k serial unwatches cost
		// real time and the server ORBs die with the test anyway.
	})

	// Subscribe the whole fleet (the watch doubles as the only resolve
	// each client ever needs), in parallel.
	subscribe := func() {
		t.Helper()
		var wg sync.WaitGroup
		sem := make(chan struct{}, 64)
		errs := make(chan error, nClients)
		for _, g := range refs {
			wg.Add(1)
			sem <- struct{}{}
			go func(g *naming.GroupRef) {
				defer wg.Done()
				defer func() { <-sem }()
				if _, err := g.Pick(context.Background()); err != nil {
					errs <- err
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	subscribe()

	totals := func() (resolves, watches uint64) {
		for _, rep := range replicas {
			resolves += rep.srv.Resolves()
			watches += rep.srv.WatchRequests()
		}
		return
	}
	baseResolves, baseWatches := totals()
	if baseResolves != 0 {
		t.Fatalf("subscription phase issued %d resolves, want 0 (watch doubles as resolve)", baseResolves)
	}
	if baseWatches != uint64(nClients) {
		t.Fatalf("subscription phase issued %d watch calls, want exactly %d", baseWatches, nClients)
	}

	// waitConverged blocks until every client's cached membership has n
	// members (pushes are oneway and asynchronous).
	waitConverged := func(what string, n int) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Minute)
		for {
			converged := true
			for _, c := range caches {
				if len(c.Members(group)) != n {
					converged = false
					break
				}
			}
			if converged {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("fleet never converged after %s", what)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Phase 1: kill one group member. Every client must learn by push
	// and route around it with zero naming requests.
	mutate(func(r *naming.Registry) error { return r.UnbindOffer(group, memberA) })
	waitConverged("member kill", 2)
	for _, g := range refs {
		for i := 0; i < 2; i++ {
			ref, err := g.Pick(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if ref == memberA {
				t.Fatal("a client picked the killed member after convergence")
			}
		}
	}
	r1, w1 := totals()
	if r1 != baseResolves || w1 != baseWatches {
		t.Fatalf("member kill cost naming traffic: resolves +%d, watches +%d (want +0/+0)",
			r1-baseResolves, w1-baseWatches)
	}

	// Phase 2: kill the whole group. Picks must fail locally — the
	// O(clients) resolve storm this PR exists to prevent is exactly
	// "every client re-resolves a dead name in a retry loop".
	mutate(func(r *naming.Registry) error { return r.UnbindOffer(group, memberB) })
	mutate(func(r *naming.Registry) error { return r.UnbindOffer(group, memberC) })
	waitConverged("whole-group kill", 0)
	for _, g := range refs {
		if _, err := g.Pick(context.Background()); !orb.IsUserException(err, naming.ExNotFound) {
			t.Fatalf("empty group: want local NotFound, got %v", err)
		}
	}
	r2, w2 := totals()
	if r2 != r1 || w2 != w1 {
		t.Fatalf("whole-group death cost naming traffic: resolves +%d, watches +%d (want +0/+0)",
			r2-r1, w2-w1)
	}

	// Phase 3: the group comes back; one push per client restores
	// service, again with zero request traffic.
	mutate(func(r *naming.Registry) error { return r.BindOffer(group, naming.Offer{Ref: memberB, Host: "w2"}) })
	waitConverged("group recovery", 1)
	for _, g := range refs {
		if ref, err := g.Pick(context.Background()); err != nil || ref != memberB {
			t.Fatalf("after recovery: got %v, %v", ref, err)
		}
	}
	r3, w3 := totals()
	if r3 != r2 || w3 != w2 {
		t.Fatalf("recovery cost naming traffic: resolves +%d, watches +%d (want +0/+0)",
			r3-r2, w3-w2)
	}

	var pushed uint64
	for _, rep := range replicas {
		pushed += rep.hub.Pushed()
	}
	t.Logf("storm: %d clients, %d watch calls total, %d resolves total, %d pushes delivered",
		nClients, w3, r3, pushed)

	if path := os.Getenv("CHAOS_ARTIFACT"); path != "" {
		artifact := map[string]any{
			"scenario":            "naming_storm",
			"clients":             nClients,
			"replicas":            len(replicas),
			"watch_requests":      w3,
			"resolve_requests":    r3,
			"invalidation_pushes": pushed,
			"member_kill_traffic": map[string]uint64{"resolves": r1 - baseResolves, "watches": w1 - baseWatches},
			"group_kill_traffic":  map[string]uint64{"resolves": r2 - r1, "watches": w2 - w1},
			"recovery_traffic":    map[string]uint64{"resolves": r3 - r2, "watches": w3 - w2},
		}
		data, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("write soak artifact: %v", err)
		}
		fmt.Printf("soak artifact written to %s\n", path)
	}
}
