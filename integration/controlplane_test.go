// Control-plane chaos: three replicated nameserver processes, a winnerd
// system manager, and a Rosenbrock run driven through an HAClient — then
// the primary nameserver AND winnerd are killed mid-run, a worker dies,
// and a spare offer's lease expires without renewal. The run must finish
// with a bitwise-identical optimisation result to the calm run of the
// same seed, zero client-visible resolve errors, and the failover /
// degradation / eviction counters visible on /metrics: the control plane
// heals itself without the computation noticing.
package integration

import (
	"context"
	"fmt"
	"math/rand"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/ft"
	"repro/internal/naming"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/rosen"
)

// cpWorld is one full control-plane deployment: 3 nameserver replicas,
// winnerd, and in-process workers announced with renewed leases.
type cpWorld struct {
	t *testing.T

	nsCmds  [3]*exec.Cmd
	nsRefs  [3]orb.ObjectRef
	nsObs   [3]string
	winnerd *exec.Cmd

	// admin is the control-plane client workers announce through; its
	// renewers must survive nameserver failover, so it is an HAClient too.
	admin   *orb.ORB
	adminHA *naming.HAClient

	// client is the manager's plane.
	client   *orb.ORB
	ha       *naming.HAClient
	resolver *exclusiveResolver
	name     naming.Name

	slots   map[orb.ObjectRef]*cpSlot
	counter int

	// spareName/spareRef form the never-renewed lease the chaos schedule
	// binds right after the primary dies: a surviving replica's sweeper
	// must evict it on its own.
	spareName naming.Name
	spareRef  orb.ObjectRef
}

// cpSlot is one live worker: its ORB plus the lease announcement keeping
// its offer registered.
type cpSlot struct {
	orb *orb.ORB
	ref orb.ObjectRef
	ann *rosen.Announcement
}

const (
	cpWorkerTTL = 2 * time.Second
	cpSpareTTL  = 800 * time.Millisecond
)

func newCPWorld(t *testing.T) *cpWorld {
	t.Helper()
	w := &cpWorld{
		t:         t,
		name:      naming.NewName(rosen.ServiceName),
		slots:     make(map[orb.ObjectRef]*cpSlot),
		spareName: naming.NewName("SpareWorker"),
		spareRef:  orb.ObjectRef{TypeID: rosen.WorkerTypeID, Addr: "127.0.0.1:1", Key: "spare"},
	}

	winnerCmd, winnerSIOR := startDaemonCmd(t, "winnerd", "-role", "system", "-addr", "127.0.0.1:0")
	w.winnerd = winnerCmd

	// Three replicas in a full mesh. Peer refs go through @ref-file specs
	// so start order doesn't matter. The sweep period is much shorter than
	// the sync period, so each replica evicts expired leases locally
	// before a peer's post-eviction snapshot can arrive.
	dir := t.TempDir()
	refFile := func(i int) string { return fmt.Sprintf("%s/ns%d.ref", dir, i) }
	for i := 0; i < 3; i++ {
		var peers []string
		for j := 0; j < 3; j++ {
			if j != i {
				peers = append(peers, "@"+refFile(j))
			}
		}
		cmd, sior, obsAddr := startObsDaemonCmd(t, "nameserver",
			"-addr", "127.0.0.1:0",
			"-ref-file", refFile(i),
			"-peers", strings.Join(peers, ","),
			"-sync-period", "250ms",
			"-sweep-period", "25ms",
			"-winner", winnerSIOR)
		ref, err := orb.RefFromString(sior)
		if err != nil {
			t.Fatal(err)
		}
		w.nsCmds[i], w.nsRefs[i], w.nsObs[i] = cmd, ref, obsAddr
	}

	w.admin = orb.New(orb.Options{Name: "cp-admin"})
	t.Cleanup(w.admin.Shutdown)
	adminHA, err := naming.NewHAClient(w.admin, w.nsRefs[:], naming.HAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w.adminHA = adminHA

	w.client = orb.New(orb.Options{Name: "cp-manager", CallTimeout: 20 * time.Second})
	t.Cleanup(w.client.Shutdown)
	ha, err := naming.NewHAClient(w.client, w.nsRefs[:], naming.HAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w.ha = ha
	w.resolver = newExclusiveResolver(ha)

	for i := 0; i < 3; i++ {
		w.spawnWorker()
	}
	w.awaitConvergence()
	return w
}

// awaitConvergence blocks until every replica serves all worker offers —
// the steady state a real deployment reaches before anything fails. The
// workload itself finishes faster than one replication period, so without
// this the backups would still be empty when the primary dies.
func (w *cpWorld) awaitConvergence() {
	w.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for i := range w.nsRefs {
		direct := naming.NewClient(w.admin, w.nsRefs[i])
		for {
			offers, err := direct.ListOffers(context.Background(), w.name)
			if err == nil && len(offers) == len(w.slots) {
				break
			}
			if time.Now().After(deadline) {
				w.t.Fatalf("replica %d never converged: offers=%v err=%v", i, offers, err)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
}

// spawnWorker starts a worker on its own ORB and announces it with a
// renewed lease through the admin HAClient.
func (w *cpWorld) spawnWorker() *cpSlot {
	w.t.Helper()
	w.counter++
	host := fmt.Sprintf("cp-host-%d", w.counter)
	o := orb.New(orb.Options{Name: host})
	w.t.Cleanup(o.Shutdown)
	ad, err := o.NewAdapter("127.0.0.1:0")
	if err != nil {
		w.t.Fatal(err)
	}
	ref := ad.Activate("worker", ft.Wrap(rosen.NewWorker(nil)))
	ann, err := rosen.AnnounceWorker(context.Background(), w.adminHA, ref, host, cpWorkerTTL)
	if err != nil {
		w.t.Fatal(err)
	}
	slot := &cpSlot{orb: o, ref: ref, ann: ann}
	w.slots[ref] = slot
	w.t.Cleanup(func() {
		if r := ann.Renewer(); r != nil {
			r.Stop()
		}
	})
	return slot
}

// killWorker crashes the worker serving ref: a replacement is announced
// first, the victim's renewer stops (so the dead offer is not re-bound
// behind recovery's back), then its ORB shuts down.
func (w *cpWorld) killWorker(ref orb.ObjectRef) {
	w.t.Helper()
	slot := w.slots[ref]
	if slot == nil {
		w.t.Fatalf("no live worker serves %v", ref)
	}
	delete(w.slots, ref)
	w.spawnWorker()
	if r := slot.ann.Renewer(); r != nil {
		r.Stop()
	}
	slot.orb.Shutdown()
}

// run executes the workload; faulty enables the kill schedule.
func (w *cpWorld) run(ctx context.Context, faulty bool) (*rosen.Result, ft.Stats, error) {
	cfg := soakConfig()
	var mgr *rosen.Manager
	if faulty {
		killRounds := map[int]bool{2: true, 3: true}
		cfg.AfterRound = func(round int) {
			if !killRounds[round] {
				return
			}
			delete(killRounds, round)
			if round == 2 {
				// Decapitate the control plane: the primary nameserver and
				// the Winner system manager die together. Resolves must
				// fail over to replica 2 and selection must degrade to
				// round-robin — with no client-visible error either way.
				_ = w.nsCmds[0].Process.Kill()
				_ = w.winnerd.Process.Kill()
				// And bind one never-renewed lease through the degraded
				// plane: a surviving replica's sweeper must evict it.
				if err := w.adminHA.BindOfferLease(context.Background(),
					w.spareName, w.spareRef, "spare-host", cpSpareTTL); err != nil {
					w.t.Errorf("bind spare lease: %v", err)
				}
				return
			}
			// Round 3: crash a claimed worker so recovery has to resolve a
			// replacement through the degraded control plane.
			victim := mgr.WorkerRefs()[0]
			if _, alive := w.slots[victim]; !alive {
				for ref := range w.slots {
					w.resolver.mu.Lock()
					used := w.resolver.inUse[ref]
					w.resolver.mu.Unlock()
					if used {
						victim = ref
						break
					}
				}
			}
			w.killWorker(victim)
		}
	}

	mgr = rosen.NewManager(w.client, w.resolver, cfg).WithFT(rosen.FTOptions{
		Store: ft.NewMemStore(),
		Policy: ft.Policy{
			CheckpointEvery:  1,
			StrictCheckpoint: true,
			MaxRecoveries:    10,
			Backoff: orb.Backoff{
				Base: 20 * time.Millisecond, Max: 150 * time.Millisecond,
				Jitter: 1, Rand: rand.New(rand.NewSource(chaosSeed)),
			},
		},
		Unbinder: w.resolver,
	})
	res, err := mgr.Run(ctx)
	return res, mgr.ProxyStats(), err
}

// metricValue extracts an unlabelled metric's value from Prometheus text.
func metricValue(body, name string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			if v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

// pollMetric scrapes addr until the metric is present and pred accepts
// its value.
func pollMetric(t *testing.T, addr, name string, pred func(float64) bool) float64 {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if v, ok := metricValue(httpGet(t, addr, "/metrics"), name); ok && pred(v) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("metric %s on %s never reached the expected value:\n%s",
				name, addr, httpGet(t, addr, "/metrics"))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestControlPlaneChaos(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	// Calm reference run: identical topology (replicas, leases, HAClient),
	// no kills.
	calm := newCPWorld(t)
	baseline, calmStats, err := calm.run(ctx, false)
	if err != nil {
		t.Fatalf("calm run: %v", err)
	}
	if calmStats.Recoveries != 0 {
		t.Fatalf("calm run recovered: %+v", calmStats)
	}
	if s := calm.ha.Stats(); s.ResolveErrors != 0 {
		t.Fatalf("calm run resolve errors: %+v", s)
	}

	// Chaos run.
	w := newCPWorld(t)

	// The manager's failover counters are scrapable over HTTP, like any
	// daemon's.
	clientReg := obs.NewRegistry()
	w.ha.ExportMetrics(clientReg)
	ln, err := obs.Serve("127.0.0.1:0", obs.Handler(clientReg, obs.NewRing(16)))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	clientObs := ln.Addr().String()

	res, stats, err := w.run(ctx, true)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}

	// The optimisation result is bitwise identical to the calm run: the
	// control-plane deaths changed routing and timing, never the numbers.
	if res.F != baseline.F {
		t.Fatalf("chaos F = %v, calm F = %v", res.F, baseline.F)
	}
	if res.Rounds != baseline.Rounds || res.WorkerCalls != baseline.WorkerCalls {
		t.Fatalf("chaos rounds/calls = %d/%d, calm = %d/%d",
			res.Rounds, res.WorkerCalls, baseline.Rounds, baseline.WorkerCalls)
	}
	for i := range baseline.Boundary {
		if res.Boundary[i] != baseline.Boundary[i] {
			t.Fatalf("boundary[%d] = %v, calm %v", i, res.Boundary[i], baseline.Boundary[i])
		}
	}

	// Zero client-visible resolve errors, at least one failover, and at
	// least one recovery (the worker kill engaged).
	haStats := w.ha.Stats()
	if haStats.ResolveErrors != 0 {
		t.Fatalf("resolve errors during chaos: %+v", haStats)
	}
	if haStats.Failovers == 0 {
		t.Fatalf("no failovers recorded — the nameserver kill never bit: %+v", haStats)
	}
	if stats.Recoveries < 1 {
		t.Fatalf("no recoveries — the worker kill never bit: %+v", stats)
	}
	if res.Rounds < 4 {
		t.Fatalf("only %d rounds — kill schedule never engaged", res.Rounds)
	}

	// The surviving workers' renewers keep their leases alive against the
	// degraded control plane: the primary is dead, so every renewal from
	// here on proves failover end to end. (The workload itself finishes
	// faster than one renewal period, so poll rather than snapshot.)
	renewDeadline := time.Now().Add(15 * time.Second)
	for {
		renewed := false
		for _, slot := range w.slots {
			if r := slot.ann.Renewer(); r != nil && r.Renewals() > 0 {
				renewed = true
			}
		}
		if renewed {
			break
		}
		if time.Now().After(renewDeadline) {
			t.Fatal("no lease renewals recorded on any live worker")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// /metrics across the planes: the client shows failovers, and the
	// surviving replica that serves resolves shows winner fallbacks (its
	// selector degraded to round-robin with winnerd dead).
	pollMetric(t, clientObs, "naming_failovers_total", func(v float64) bool { return v >= 1 })
	pollMetric(t, w.nsObs[1], "winner_fallback_total", func(v float64) bool { return v >= 1 })

	// The spare lease is evicted by a survivor's own sweeper. Replication
	// may spread the post-eviction snapshot before the other survivor
	// sweeps, so the eviction shows up on at least one of them — the first
	// remover always counts it locally.
	evictionDeadline := time.Now().Add(15 * time.Second)
	for {
		total := 0.0
		for _, addr := range []string{w.nsObs[1], w.nsObs[2]} {
			if v, ok := metricValue(httpGet(t, addr, "/metrics"), "naming_offers_evicted_total"); ok {
				total += v
			}
		}
		if total >= 1 {
			break
		}
		if time.Now().After(evictionDeadline) {
			t.Fatal("no surviving replica ever evicted the spare lease")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The spare offer is gone from the survivors.
	if offers, err := w.adminHA.ListOffers(ctx, w.spareName); err == nil && len(offers) != 0 {
		t.Fatalf("spare offer still bound after lease expiry: %+v", offers)
	}
}
