// Package integration exercises the command-line daemons as real
// processes wired by stringified object references — the deployment shape
// of a classic CORBA installation: winnerd (system manager + node
// manager), nameserver (load-distribution naming service) and checkpointd
// (checkpoint storage), driven by an in-process client ORB.
package integration

import (
	"bufio"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/ft"
	"repro/internal/naming"
	"repro/internal/orb"
	"repro/internal/winner"
)

// buildOnce compiles the daemons into a shared temp dir.
var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "repro-bin")
	if err != nil {
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	binDir = dir
	for _, tool := range []string{"nameserver", "winnerd", "checkpointd", "nsadmin", "workerd"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		cmd.Dir = ".."
		if out, err := cmd.CombinedOutput(); err != nil {
			os.Stderr.WriteString("build " + tool + ": " + err.Error() + "\n" + string(out))
			os.Exit(1)
		}
	}
	os.Exit(m.Run())
}

// startDaemon launches a built daemon and returns the first line of its
// stdout (the SIOR).
func startDaemon(t *testing.T, name string, args ...string) string {
	t.Helper()
	_, sior := startDaemonCmd(t, name, args...)
	return sior
}

// startDaemonCmd launches a built daemon and returns its process handle
// (for tests that crash it mid-run) along with the first line of its
// stdout (the SIOR).
func startDaemonCmd(t *testing.T, name string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, name), args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	lineCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			lineCh <- sc.Text()
		}
		close(lineCh)
	}()
	select {
	case line, ok := <-lineCh:
		if !ok || !strings.HasPrefix(line, "SIOR:") {
			t.Fatalf("%s printed %q, want a SIOR", name, line)
		}
		return cmd, line
	case <-time.After(30 * time.Second):
		t.Fatalf("%s never printed its reference", name)
		return nil, ""
	}
}

func TestDaemonsEndToEnd(t *testing.T) {
	winnerSIOR := startDaemon(t, "winnerd", "-role", "system", "-addr", "127.0.0.1:0")
	nsSIOR := startDaemon(t, "nameserver", "-addr", "127.0.0.1:0", "-winner", winnerSIOR)
	ckptDir := t.TempDir()
	storeSIOR := startDaemon(t, "checkpointd", "-addr", "127.0.0.1:0", "-dir", ckptDir)

	client := orb.New(orb.Options{Name: "it-client"})
	defer client.Shutdown()

	winnerRef, err := orb.RefFromString(winnerSIOR)
	if err != nil {
		t.Fatal(err)
	}
	nsRef, err := orb.RefFromString(nsSIOR)
	if err != nil {
		t.Fatal(err)
	}
	storeRef, err := orb.RefFromString(storeSIOR)
	if err != nil {
		t.Fatal(err)
	}
	wc := winner.NewClient(client, winnerRef)
	ns := naming.NewClient(client, nsRef)
	store := ft.NewStoreClient(client, storeRef)

	// Feed load data for two synthetic hosts across the process border.
	if err := wc.Report(context.Background(), winner.LoadSample{Host: "alpha", Speed: 1, RunQueue: 3, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := wc.Report(context.Background(), winner.LoadSample{Host: "beta", Speed: 1, RunQueue: 0, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	best, err := wc.BestHost(context.Background(), nil)
	if err != nil || best != "beta" {
		t.Fatalf("BestHost = %q, %v", best, err)
	}

	// Group binding resolved through the load-distribution nameserver:
	// the offer on the (still) less loaded host must win.
	name := naming.NewName("it", "svc")
	if err := ns.BindNewContext(context.Background(), naming.NewName("it")); err != nil {
		t.Fatal(err)
	}
	refAlpha := orb.ObjectRef{TypeID: "T", Addr: "10.0.0.1:1", Key: "a"}
	refBeta := orb.ObjectRef{TypeID: "T", Addr: "10.0.0.2:1", Key: "b"}
	if err := ns.BindOffer(context.Background(), name, refAlpha, "alpha"); err != nil {
		t.Fatal(err)
	}
	if err := ns.BindOffer(context.Background(), name, refBeta, "beta"); err != nil {
		t.Fatal(err)
	}
	got, err := ns.Resolve(context.Background(), name)
	if err != nil {
		t.Fatal(err)
	}
	if got != refBeta {
		t.Fatalf("resolve = %v, want the offer on beta", got)
	}

	// Checkpoints persist across a checkpointd restart (disk store).
	if err := store.Put(context.Background(), "it/svc", ft.Full(1, []byte("state-v1"))); err != nil {
		t.Fatal(err)
	}
	cp, err := store.Get(context.Background(), "it/svc")
	if err != nil || cp.Epoch != 1 || string(cp.Data) != "state-v1" {
		t.Fatalf("get = %d %q %v", cp.Epoch, cp.Data, err)
	}

	storeSIOR2 := startDaemon(t, "checkpointd", "-addr", "127.0.0.1:0", "-dir", ckptDir)
	storeRef2, err := orb.RefFromString(storeSIOR2)
	if err != nil {
		t.Fatal(err)
	}
	store2 := ft.NewStoreClient(client, storeRef2)
	cp, err = store2.Get(context.Background(), "it/svc")
	if err != nil || cp.Epoch != 1 || string(cp.Data) != "state-v1" {
		t.Fatalf("restarted store get = %d %q %v", cp.Epoch, cp.Data, err)
	}
}

func TestNsadminAgainstLiveNameserver(t *testing.T) {
	nsSIOR := startDaemon(t, "nameserver", "-addr", "127.0.0.1:0")

	run := func(wantOK bool, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(binDir, "nsadmin"), append([]string{"-ns", nsSIOR}, args...)...)
		out, err := cmd.CombinedOutput()
		if wantOK && err != nil {
			t.Fatalf("nsadmin %v: %v\n%s", args, err, out)
		}
		if !wantOK && err == nil {
			t.Fatalf("nsadmin %v succeeded:\n%s", args, out)
		}
		return string(out)
	}

	target := orb.ObjectRef{TypeID: "T", Addr: "10.9.9.9:1", Key: "x"}
	run(true, "mkdir", "apps")
	run(true, "bind", "apps/solver", target.ToString())
	out := run(true, "resolve", "apps/solver")
	if !strings.Contains(out, "10.9.9.9:1") {
		t.Fatalf("resolve output: %s", out)
	}
	out = run(true, "list", "apps")
	if !strings.Contains(out, "object") || !strings.Contains(out, "solver") {
		t.Fatalf("list output: %s", out)
	}
	out = run(true, "tree")
	if !strings.Contains(out, "context") || !strings.Contains(out, "solver") {
		t.Fatalf("tree output: %s", out)
	}
	// ping resolves but the target is unreachable → exit 1.
	run(false, "ping", "apps/solver")
	run(true, "unbind", "apps/solver")
	run(false, "resolve", "apps/solver")
}

func TestNameserverPersistenceAcrossRestart(t *testing.T) {
	snapshot := filepath.Join(t.TempDir(), "ns.snapshot")

	// First incarnation: bind, then terminate gracefully (SIGTERM makes
	// it write a final snapshot).
	cmd := exec.Command(filepath.Join(binDir, "nameserver"),
		"-addr", "127.0.0.1:0", "-store", snapshot, "-save-period", "1h")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatal("no SIOR from nameserver")
	}
	sior := sc.Text()

	client := orb.New(orb.Options{Name: "persist-client"})
	defer client.Shutdown()
	nsRef, err := orb.RefFromString(sior)
	if err != nil {
		t.Fatal(err)
	}
	ns := naming.NewClient(client, nsRef)
	target := orb.ObjectRef{TypeID: "T", Addr: "10.1.1.1:1", Key: "persisted"}
	if err := ns.Bind(context.Background(), naming.NewName("durable"), target); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("nameserver exit: %v", err)
	}

	// Second incarnation on the same snapshot: the binding survives.
	sior2 := startDaemon(t, "nameserver", "-addr", "127.0.0.1:0", "-store", snapshot)
	nsRef2, err := orb.RefFromString(sior2)
	if err != nil {
		t.Fatal(err)
	}
	ns2 := naming.NewClient(client, nsRef2)
	got, err := ns2.Resolve(context.Background(), naming.NewName("durable"))
	if err != nil {
		t.Fatal(err)
	}
	if got != target {
		t.Fatalf("resolved %v, want %v", got, target)
	}
}

func TestNodeManagerDaemonReportsRealLoad(t *testing.T) {
	if _, err := os.Stat("/proc/loadavg"); err != nil {
		t.Skip("no /proc/loadavg")
	}
	winnerSIOR := startDaemon(t, "winnerd", "-role", "system", "-addr", "127.0.0.1:0")

	// Node-role winnerd samples this machine and reports periodically.
	cmd := exec.Command(filepath.Join(binDir, "winnerd"),
		"-role", "node", "-manager", winnerSIOR, "-host", "this-box", "-period", "50ms")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})

	client := orb.New(orb.Options{Name: "it-client2"})
	defer client.Shutdown()
	winnerRef, err := orb.RefFromString(winnerSIOR)
	if err != nil {
		t.Fatal(err)
	}
	wc := winner.NewClient(client, winnerRef)

	deadline := time.Now().Add(15 * time.Second)
	for {
		if info, err := wc.HostInfo(context.Background(), "this-box"); err == nil && info.Sample.Seq >= 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("node manager daemon never reported twice")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
