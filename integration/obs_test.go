// Observability across real daemon processes: every daemon runs with
// -obs, a traced client drives a fault-tolerant call sequence through
// all of them, a worker is killed mid-run, and the assertions check
// that (a) the whole crash-recovery sequence reads as ONE linked trace
// in the client's ring, (b) each daemon's /metrics endpoint exports
// per-method histograms and the ORB retry/recovery counters, and
// (c) the client's trace id shows up in checkpointd's /debug/traces —
// proof that SCTrace propagated across the process border.
package integration

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/ft"
	"repro/internal/naming"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/winner"
)

// startObsDaemon launches a daemon built by TestMain with -obs
// 127.0.0.1:0 appended, and returns its SIOR plus the bound
// observability address (second stdout line, "OBS:host:port").
func startObsDaemon(t *testing.T, name string, args ...string) (sior, obsAddr string) {
	t.Helper()
	_, sior, obsAddr = startObsDaemonCmd(t, name, args...)
	return sior, obsAddr
}

// startObsDaemonCmd is startObsDaemon plus the process handle, for tests
// that crash the daemon mid-run.
func startObsDaemonCmd(t *testing.T, name string, args ...string) (cmd *exec.Cmd, sior, obsAddr string) {
	t.Helper()
	cmd = exec.Command(filepath.Join(binDir, name), append(args, "-obs", "127.0.0.1:0")...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	lines := make(chan string, 2)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	read := func(what string) string {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("%s exited before printing its %s", name, what)
			}
			return line
		case <-time.After(30 * time.Second):
			t.Fatalf("%s never printed its %s", name, what)
		}
		return ""
	}
	sior = read("SIOR")
	if !strings.HasPrefix(sior, "SIOR:") {
		t.Fatalf("%s printed %q, want a SIOR", name, sior)
	}
	obsLine := read("OBS line")
	if !strings.HasPrefix(obsLine, "OBS:") {
		t.Fatalf("%s printed %q, want an OBS line", name, obsLine)
	}
	return cmd, sior, strings.TrimPrefix(obsLine, "OBS:")
}

// httpGet fetches a path from a daemon's observability endpoint.
func httpGet(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s%s: %v", addr, path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// obsCounter is a checkpointable servant for the fault-tolerant call
// sequence under test.
type obsCounter struct {
	mu    sync.Mutex
	value int64
}

func (c *obsCounter) TypeID() string { return "IDL:repro/Counter:1.0" }

func (c *obsCounter) Invoke(_ *orb.ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch op {
	case "inc":
		by := in.GetInt64()
		if err := in.Err(); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		c.value += by
		out.PutInt64(c.value)
		return nil
	default:
		return orb.BadOperation(op)
	}
}

func (c *obsCounter) Checkpoint() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := cdr.NewEncoder(8)
	e.PutInt64(c.value)
	return e.Bytes(), nil
}

func (c *obsCounter) Restore(data []byte) error {
	d := cdr.NewDecoder(data)
	v := d.GetInt64()
	if err := d.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	c.value = v
	c.mu.Unlock()
	return nil
}

func TestObservabilityAcrossDaemons(t *testing.T) {
	ctx := context.Background()

	winnerSIOR, winnerObs := startObsDaemon(t, "winnerd", "-role", "system", "-addr", "127.0.0.1:0")
	nsSIOR, nsObs := startObsDaemon(t, "nameserver", "-addr", "127.0.0.1:0", "-winner", winnerSIOR)
	storeSIOR, storeObs := startObsDaemon(t, "checkpointd", "-addr", "127.0.0.1:0")

	ob := obs.NewObserver("it-client")
	client := orb.New(orb.Options{Name: "it-obs-client", CallInterceptors: []orb.CallInterceptor{ob}})
	defer client.Shutdown()

	winnerRef, err := orb.RefFromString(winnerSIOR)
	if err != nil {
		t.Fatal(err)
	}
	nsRef, err := orb.RefFromString(nsSIOR)
	if err != nil {
		t.Fatal(err)
	}
	storeRef, err := orb.RefFromString(storeSIOR)
	if err != nil {
		t.Fatal(err)
	}
	wc := winner.NewClient(client, winnerRef)
	ns := naming.NewClient(client, nsRef)
	store := ft.NewStoreClient(client, storeRef)

	// Two in-process workers registered as offers of one name. Winner
	// ranks alpha best, so the proxy binds to worker A first.
	if err := wc.Report(ctx, winner.LoadSample{Host: "alpha", Speed: 1, RunQueue: 0, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := wc.Report(ctx, winner.LoadSample{Host: "beta", Speed: 1, RunQueue: 5, Seq: 1}); err != nil {
		t.Fatal(err)
	}

	name := naming.NewName("obs", "counter")
	if err := ns.BindNewContext(ctx, naming.NewName("obs")); err != nil {
		t.Fatal(err)
	}
	type workerProc struct {
		o   *orb.ORB
		ad  *orb.Adapter
		ref orb.ObjectRef
		ctr *obsCounter
	}
	newWorker := func(orbName, host string) *workerProc {
		w := &workerProc{o: orb.New(orb.Options{Name: orbName})}
		t.Cleanup(w.o.Shutdown)
		ad, err := w.o.NewAdapter("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		w.ad = ad
		w.ctr = &obsCounter{}
		w.ref = ad.Activate("ctr", ft.Wrap(w.ctr))
		if err := ns.BindOffer(ctx, name, w.ref, host); err != nil {
			t.Fatal(err)
		}
		return w
	}
	wA := newWorker("workerA", "alpha")
	wB := newWorker("workerB", "beta")

	proxy, err := ft.NewProxy(ctx, client, name, ns, store,
		ft.Policy{CheckpointEvery: 1}, ft.WithUnbinder(ns))
	if err != nil {
		t.Fatal(err)
	}
	if proxy.Ref() != wA.ref {
		t.Fatalf("proxy bound %v, want worker A %v (winner ranking ignored?)", proxy.Ref(), wA.ref)
	}

	inc := func(ctx context.Context, by int64) (int64, error) {
		var v int64
		err := proxy.Invoke(ctx, "inc",
			func(e *cdr.Encoder) { e.PutInt64(by) },
			func(d *cdr.Decoder) error { v = d.GetInt64(); return d.Err() })
		return v, err
	}

	rctx, root := ob.Tracer.Start(ctx, "it.root")

	// Call 1 lands on worker A and checkpoints value=10 into checkpointd.
	if v, err := inc(rctx, 10); err != nil || v != 10 {
		t.Fatalf("first inc = %d, %v", v, err)
	}

	// Kill worker A mid-run: the next call hits COMM_FAILURE, recovery
	// unbinds the dead offer, re-resolves to worker B, restores the
	// checkpoint there and replays.
	wA.ad.Close()
	wA.o.Shutdown()
	v, err := inc(rctx, 5)
	if err != nil {
		t.Fatalf("inc after worker crash: %v", err)
	}
	if v != 15 {
		t.Fatalf("value after recovery = %d, want 15", v)
	}
	if got := wB.ctr.value; got != 15 {
		t.Fatalf("survivor state = %d, want 15", got)
	}
	root.End()

	// (a) One linked trace in the client's ring.
	traceID := root.Context().TraceID
	var spans []*obs.Span
	for _, s := range ob.Ring.Spans() {
		if s.Context().TraceID == traceID {
			spans = append(spans, s)
		}
	}
	find := func(pred func(*obs.Span) bool) *obs.Span {
		for _, s := range spans {
			if pred(s) {
				return s
			}
		}
		return nil
	}
	failed := find(func(s *obs.Span) bool {
		_, ok := s.Event("comm_failure")
		return s.Name() == "ft.invoke" && ok
	})
	if failed == nil {
		t.Error("no ft.invoke span with a comm_failure event on the trace")
	}
	resolve := find(func(s *obs.Span) bool { return s.Name() == "ft.resolve" })
	if resolve == nil {
		t.Error("no ft.resolve span on the trace")
	} else if addr, _ := resolve.Attr("addr"); addr != wB.ref.Addr {
		t.Errorf("ft.resolve addr = %q, want survivor %q", addr, wB.ref.Addr)
	}
	if find(func(s *obs.Span) bool { return s.Name() == "ft.restore" }) == nil {
		t.Error("no ft.restore span on the trace")
	}
	if find(func(s *obs.Span) bool { return s.Name() == "replay" }) == nil {
		t.Error("no replay span on the trace")
	}
	clientSide := find(func(s *obs.Span) bool {
		side, _ := s.Attr("side")
		return side == "client" && s.Name() == "inc"
	})
	if clientSide == nil {
		t.Error("no client-side inc span on the trace")
	}

	// (b) Every daemon exports per-method histograms and the ORB
	// retry/recovery counters.
	for _, d := range []struct{ name, addr string }{
		{"winnerd", winnerObs}, {"nameserver", nsObs}, {"checkpointd", storeObs},
	} {
		metrics := httpGet(t, d.addr, "/metrics")
		for _, want := range []string{
			"rpc_server_latency_seconds_bucket{",
			"orb_retries_attempted_total",
			"orb_recoveries_succeeded_total",
			"orb_recoveries_failed_total",
		} {
			if !strings.Contains(metrics, want) {
				t.Errorf("%s /metrics missing %q", d.name, want)
			}
		}
	}
	// The store served real traffic: its put dispatches are in the
	// histogram with non-zero count.
	if m := httpGet(t, storeObs, "/metrics"); !strings.Contains(m, `rpc_server_latency_seconds_count{method="put"}`) {
		t.Errorf("checkpointd /metrics has no put dispatch count:\n%s", m)
	}

	// (c) Cross-process propagation: checkpointd buffered server spans of
	// the client's trace (checkpoint fetch/store ran inside it).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if strings.Contains(httpGet(t, storeObs, "/debug/traces?n=100"), traceID.String()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("checkpointd /debug/traces never showed client trace %s", traceID)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
