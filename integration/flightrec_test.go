// Flight-recorder chaos: an observed in-process deployment loses a
// worker mid-run. The forced failover drives the client Caller's
// recovery path, which signals the process-wide anomaly sink; the sink
// auto-dumps the flight recorder to a JSON artifact. The assertions
// check the black box actually captured the incident: records written
// before the crash carry nonzero queue-wait (the victim ran a
// one-worker dispatch pool under a concurrent burst) and the sampled
// root trace id, so an operator can pivot from the dump straight into
// /debug/traces. With FLIGHTREC_ARTIFACT set the dump is copied there
// for CI upload.
package integration

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/ft"
	"repro/internal/naming"
	"repro/internal/obs"
	"repro/internal/orb"
)

// slowCounter is a checkpointable counter whose inc holds the worker
// for a few milliseconds — long enough that a concurrent burst against
// a WorkerPool:1 ORB accumulates real dispatch-queue wait.
type slowCounter struct {
	mu    sync.Mutex
	value int64
	delay time.Duration
}

func (c *slowCounter) TypeID() string { return "IDL:repro/Counter:1.0" }

func (c *slowCounter) Invoke(_ *orb.ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	switch op {
	case "inc":
		by := in.GetInt64()
		if err := in.Err(); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		time.Sleep(c.delay)
		c.mu.Lock()
		c.value += by
		v := c.value
		c.mu.Unlock()
		out.PutInt64(v)
		return nil
	default:
		return orb.BadOperation(op)
	}
}

func (c *slowCounter) Checkpoint() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := cdr.NewEncoder(8)
	e.PutInt64(c.value)
	return e.Bytes(), nil
}

func (c *slowCounter) Restore(data []byte) error {
	d := cdr.NewDecoder(data)
	v := d.GetInt64()
	if err := d.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	c.value = v
	c.mu.Unlock()
	return nil
}

// flightDump mirrors the anomaly-dump JSON artifact shape.
type flightDump struct {
	Service string `json:"service"`
	Anomaly struct {
		Kind string `json:"kind"`
	} `json:"anomaly"`
	Records []struct {
		Side        string `json:"side"`
		Op          string `json:"op"`
		QueueWaitNS int64  `json:"queue_wait_ns"`
		ServiceNS   int64  `json:"service_ns"`
		Outcome     string `json:"outcome"`
		TraceID     string `json:"trace_id"`
	} `json:"records"`
	Goroutines  string `json:"goroutines"`
	HeapProfile string `json:"heap_profile"`
}

func TestFlightRecorderChaosDump(t *testing.T) {
	ctx := context.Background()
	dumpDir := t.TempDir()

	// Recovery bursts normally need 8 occurrences in 10s; one forced
	// failover is the whole incident here, so trip on the first.
	ob := obs.NewObserverOpts("it-flightrec", obs.ObserverOptions{
		Anomaly: obs.AnomalyOptions{
			DumpDir:  dumpDir,
			Cooldown: time.Minute,
			Bursts: map[obs.AnomalyKind]obs.BurstRule{
				obs.AnomalyRecovery: {Threshold: 1, Window: time.Minute},
			},
		},
	})
	obs.SetDefaultAnomalies(ob.Anomalies)
	t.Cleanup(func() { obs.SetDefaultAnomalies(nil) })

	// Services process: naming + in-memory checkpoint store.
	services := orb.New(orb.Options{Name: "frec-services"})
	t.Cleanup(services.Shutdown)
	svcAd, err := services.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := naming.NewRegistry()
	nsRef := svcAd.Activate(naming.DefaultKey, naming.NewServant(reg, naming.RoundRobinSelector()))
	storeRef := svcAd.Activate(ft.StoreDefaultKey, ft.NewStoreServant(ft.NewMemStore()))

	client := orb.New(orb.Options{Name: "frec-client", CallInterceptors: []orb.CallInterceptor{ob}})
	t.Cleanup(client.Shutdown)
	client.AttachFlightRecorder(ob.Flight)
	ns := naming.NewClient(client, nsRef)
	store := ft.NewStoreClient(client, storeRef)

	// Two workers, each a one-worker dispatch pool over a slow servant,
	// both feeding the shared flight recorder.
	name := naming.NewName("frec", "counter")
	if err := ns.BindNewContext(ctx, naming.NewName("frec")); err != nil {
		t.Fatal(err)
	}
	type workerProc struct {
		o   *orb.ORB
		ad  *orb.Adapter
		ref orb.ObjectRef
		ctr *slowCounter
	}
	newWorker := func(orbName, host string) *workerProc {
		w := &workerProc{o: orb.New(orb.Options{Name: orbName, WorkerPool: 1})}
		t.Cleanup(w.o.Shutdown)
		ad, err := w.o.NewAdapter("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		w.ad = ad
		w.o.AttachFlightRecorder(ob.Flight)
		w.ctr = &slowCounter{delay: 2 * time.Millisecond}
		w.ref = ad.Activate("ctr", ft.Wrap(w.ctr))
		if err := ns.BindOffer(ctx, name, w.ref, host); err != nil {
			t.Fatal(err)
		}
		return w
	}
	wA := newWorker("frec-workerA", "hostA")
	wB := newWorker("frec-workerB", "hostB")

	proxy, err := ft.NewProxy(ctx, client, name, ns, store,
		ft.Policy{CheckpointEvery: 1}, ft.WithUnbinder(ns))
	if err != nil {
		t.Fatal(err)
	}
	victim, survivor := wA, wB
	if proxy.Ref() == wB.ref {
		victim, survivor = wB, wA
	}

	rctx, root := ob.Tracer.Start(ctx, "it.flightrec")
	traceID := root.Context().TraceID.String()

	inc := func(ctx context.Context, by int64) (int64, error) {
		var v int64
		err := proxy.Invoke(ctx, "inc",
			func(e *cdr.Encoder) { e.PutInt64(by) },
			func(d *cdr.Decoder) error { v = d.GetInt64(); return d.Err() })
		return v, err
	}

	// Establish checkpointed state on the bound worker.
	if v, err := inc(rctx, 10); err != nil || v != 10 {
		t.Fatalf("first inc = %d, %v", v, err)
	}

	// Concurrent burst straight at the victim: 8 callers racing into a
	// one-worker pool, so most dispatches queue before they run. These
	// are the "seconds before the anomaly" the black box must hold.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				_ = client.Call(rctx, victim.ref, "inc",
					func(e *cdr.Encoder) { e.PutInt64(0) }, nil)
			}
		}()
	}
	wg.Wait()

	// Kill the bound worker mid-run: the next proxied call hits
	// COMM_FAILURE, the Caller recovers (re-resolve + restore + replay),
	// and the recovery signal trips the anomaly sink.
	victim.ad.Close()
	victim.o.Shutdown()
	v, err := inc(rctx, 5)
	if err != nil {
		t.Fatalf("inc after worker crash: %v", err)
	}
	if v != 15 {
		t.Fatalf("value after recovery = %d, want 15", v)
	}
	if got := survivor.ctr.value; got != 15 {
		t.Fatalf("survivor state = %d, want 15", got)
	}
	root.End()

	ob.Anomalies.Wait()
	dumps := ob.Anomalies.Dumps()
	if len(dumps) == 0 {
		t.Fatalf("worker crash tripped no flight-recorder dump (recent anomalies: %+v)", ob.Anomalies.Recent())
	}

	raw, err := os.ReadFile(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	var dump flightDump
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("dump %s is not valid JSON: %v", dumps[0], err)
	}
	if dump.Service != "it-flightrec" {
		t.Errorf("dump service = %q, want it-flightrec", dump.Service)
	}
	if dump.Anomaly.Kind != string(obs.AnomalyRecovery) {
		t.Errorf("dump anomaly kind = %q, want %q", dump.Anomaly.Kind, obs.AnomalyRecovery)
	}
	if len(dump.Records) == 0 {
		t.Fatal("dump carries no flight records")
	}
	if dump.Goroutines == "" || !strings.Contains(dump.Goroutines, "goroutine") {
		t.Error("dump carries no goroutine profile")
	}
	if dump.HeapProfile == "" {
		t.Error("dump names no heap profile sibling")
	} else if _, err := os.Stat(filepath.Join(dumpDir, dump.HeapProfile)); err != nil {
		t.Errorf("heap profile sibling missing: %v", err)
	}

	// The incident must be reconstructable from the records alone: server
	// dispatches that waited in the victim's queue, linked to the
	// client's root trace.
	var queued, traced, queuedAndTraced int
	for _, r := range dump.Records {
		if r.Side != "server" || r.Op != "inc" {
			continue
		}
		if r.QueueWaitNS > 0 {
			queued++
		}
		if r.TraceID == traceID {
			traced++
		}
		if r.QueueWaitNS > 0 && r.TraceID == traceID {
			queuedAndTraced++
		}
	}
	if queuedAndTraced == 0 {
		t.Errorf("no server record has both nonzero queue-wait and the root trace id (queued=%d traced=%d of %d records)",
			queued, traced, len(dump.Records))
	}
	t.Logf("dump %s: %d records, %d queued, %d trace-linked", filepath.Base(dumps[0]), len(dump.Records), queued, queuedAndTraced)

	// Export the artifact for CI upload when the harness asks for it.
	if art := os.Getenv("FLIGHTREC_ARTIFACT"); art != "" {
		if err := os.WriteFile(art, raw, 0o644); err != nil {
			t.Fatalf("FLIGHTREC_ARTIFACT: %v", err)
		}
		t.Logf("flight-recorder dump exported to %s", art)
	}
}
