package integration

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/obs"
	"repro/internal/orb"
)

// The mixed-priority overload soak: a deliberately small server (two
// workers, a 16-slot dispatch queue, an adaptive-degradation controller)
// is driven past saturation by a closed-loop fleet mixing all three QoS
// classes. The QoS plane's promises are asserted end to end: batch is
// shed (fast-rejected with retry-after hints, visible in the
// orb_admission_shed_total counters), critical is never shed and its p99
// stays bounded, the degradation controller walks the runtime down the
// ladder (every transition a degrade_mode anomaly, /healthz failing its
// qos probe) and back up to normal once the storm passes.

// qosWorkServant burns a fixed service time per call — a stand-in for
// real servant work that makes the two-worker server's capacity exact.
type qosWorkServant struct {
	serviceTime time.Duration
}

func (s *qosWorkServant) TypeID() string { return "IDL:repro/QoSWork:1.0" }

func (s *qosWorkServant) Invoke(_ *orb.ServerContext, op string, _ *cdr.Decoder, _ *cdr.Encoder) error {
	if op != "work" {
		return orb.BadOperation(op)
	}
	time.Sleep(s.serviceTime)
	return nil
}

// qosClassLoad tallies one class's closed-loop outcomes.
type qosClassLoad struct {
	ok, shed, fail atomic.Uint64

	mu  sync.Mutex
	lat []time.Duration
}

func (l *qosClassLoad) record(d time.Duration) {
	l.mu.Lock()
	l.lat = append(l.lat, d)
	l.mu.Unlock()
}

func (l *qosClassLoad) p99() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), l.lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)*99)/100]
}

func TestMixedPriorityOverloadSoak(t *testing.T) {
	srv := orb.New(orb.Options{Name: "qos-soak-srv", WorkerPool: 2, DispatchQueueDepth: 16})
	t.Cleanup(srv.Shutdown)
	a, err := srv.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ref := a.Activate("work", &qosWorkServant{serviceTime: 2 * time.Millisecond})

	// The observer serves /healthz and collects the degrade_mode
	// anomalies, so the soak asserts exactly what an operator would see.
	ob, ln, err := srv.Observe("qos-soak", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	_ = ob

	var transMu sync.Mutex
	var transitions []orb.DegradeMode
	srv.OnDegrade(func(m orb.DegradeMode) {
		transMu.Lock()
		transitions = append(transitions, m)
		transMu.Unlock()
	})
	stopCtl := srv.StartDegradeController(orb.DegradeConfig{
		High: 0.85, Low: 0.3, Interval: 50 * time.Millisecond, HoldTicks: 2,
	})
	t.Cleanup(stopCtl)

	cli := orb.New(orb.Options{Name: "qos-soak-cli", CallTimeout: 10 * time.Second})
	t.Cleanup(cli.Shutdown)

	loads := map[orb.Priority]*qosClassLoad{
		orb.ClassCritical: {}, orb.ClassNormal: {}, orb.ClassBatch: {},
	}
	fleet := []struct {
		class   orb.Priority
		clients int
	}{
		{orb.ClassCritical, 4},
		{orb.ClassNormal, 8},
		{orb.ClassBatch, 16},
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for _, f := range fleet {
		for i := 0; i < f.clients; i++ {
			wg.Add(1)
			go func(class orb.Priority) {
				defer wg.Done()
				load := loads[class]
				for !stop.Load() {
					start := time.Now()
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					err := cli.Call(ctx, ref, "work", nil, nil, orb.WithPriority(class))
					cancel()
					switch {
					case err == nil:
						load.ok.Add(1)
						load.record(time.Since(start))
					case orb.IsAdmissionShed(err):
						load.shed.Add(1)
						// Honour the server's hint like a well-behaved
						// client (capped so the soak keeps offering load).
						if d := orb.RetryAfterHint(err); d > 0 {
							if d > 50*time.Millisecond {
								d = 50 * time.Millisecond
							}
							time.Sleep(d)
						}
					default:
						load.fail.Add(1)
					}
				}
			}(f.class)
		}
	}

	// Wait for the controller to react to the saturated pool, then grab
	// the operator's view mid-storm.
	degradeDeadline := time.Now().Add(10 * time.Second)
	for srv.DegradeMode() == orb.ModeNormal {
		if time.Now().After(degradeDeadline) {
			stop.Store(true)
			wg.Wait()
			t.Fatal("degradation controller never left normal mode under sustained overload")
		}
		time.Sleep(10 * time.Millisecond)
	}
	var midStorm obs.HealthReport
	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&midStorm)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Keep the storm up long enough for every class to accumulate a
	// meaningful sample, then stop and let the runtime recover.
	time.Sleep(2 * time.Second)
	stop.Store(true)
	wg.Wait()

	recoverDeadline := time.Now().Add(15 * time.Second)
	for srv.DegradeMode() != orb.ModeNormal {
		if time.Now().After(recoverDeadline) {
			t.Fatalf("runtime stuck in %v after load stopped", srv.DegradeMode())
		}
		time.Sleep(20 * time.Millisecond)
	}

	crit, norm, batch := loads[orb.ClassCritical], loads[orb.ClassNormal], loads[orb.ClassBatch]
	critP99 := crit.p99()
	t.Logf("critical: ok=%d shed=%d fail=%d p99=%v", crit.ok.Load(), crit.shed.Load(), crit.fail.Load(), critP99)
	t.Logf("normal:   ok=%d shed=%d fail=%d p99=%v", norm.ok.Load(), norm.shed.Load(), norm.fail.Load(), norm.p99())
	t.Logf("batch:    ok=%d shed=%d fail=%d p99=%v", batch.ok.Load(), batch.shed.Load(), batch.fail.Load(), batch.p99())
	transMu.Lock()
	t.Logf("degrade transitions: %v", transitions)
	transMu.Unlock()

	// Batch was shed, and the server's counters attribute it.
	if batch.shed.Load() == 0 {
		t.Fatal("no batch call was shed past saturation")
	}
	if n := srv.AdmissionShed(orb.ClassBatch, orb.ShedQueueFull) +
		srv.AdmissionShed(orb.ClassBatch, orb.ShedDegradedMode); n == 0 {
		t.Fatal("orb_admission_shed_total{class=batch} never moved")
	}
	// Critical was never shed by admission control and kept serving with
	// a bounded tail through the whole storm.
	if n := crit.shed.Load(); n != 0 {
		t.Fatalf("admission control shed %d critical calls", n)
	}
	if n := crit.fail.Load(); n != 0 {
		t.Fatalf("%d critical calls failed outright", n)
	}
	if crit.ok.Load() == 0 {
		t.Fatal("no critical call completed")
	}
	if critP99 > 500*time.Millisecond {
		t.Fatalf("critical p99 = %v under overload, want well under 500ms", critP99)
	}
	// The operator saw it: mid-storm /healthz failed the qos probe and
	// the anomaly log carried the degrade_mode transition.
	if c, ok := midStorm.Components["qos"]; !ok || c.OK {
		t.Fatalf("mid-storm /healthz qos probe = %+v, want failing", midStorm.Components)
	}
	sawAnomaly := false
	for _, an := range midStorm.Anomalies {
		if an.Kind == obs.AnomalyDegradeMode {
			sawAnomaly = true
		}
	}
	if !sawAnomaly {
		t.Fatalf("mid-storm /healthz anomalies %v carry no degrade_mode trip", midStorm.Anomalies)
	}
	// The ladder was walked one step at a time, down and back to normal.
	transMu.Lock()
	defer transMu.Unlock()
	if len(transitions) < 2 {
		t.Fatalf("transitions = %v, want at least one step down and one back up", transitions)
	}
	if transitions[0] != orb.ModeDegraded {
		t.Fatalf("first transition = %v, want degraded (one step at a time)", transitions[0])
	}
	if last := transitions[len(transitions)-1]; last != orb.ModeNormal {
		t.Fatalf("final transition = %v, want normal", last)
	}

	if path := os.Getenv("QOS_ARTIFACT"); path != "" {
		perClass := map[string]any{}
		for class, l := range loads {
			perClass[class.String()] = map[string]any{
				"ok": l.ok.Load(), "shed": l.shed.Load(), "fail": l.fail.Load(),
				"p99_ms": float64(l.p99()) / float64(time.Millisecond),
			}
		}
		sheds := map[string]uint64{}
		for _, class := range []orb.Priority{orb.ClassCritical, orb.ClassNormal, orb.ClassBatch} {
			for _, reason := range []string{orb.ShedQueueFull, orb.ShedTenantThrottle, orb.ShedDegradedMode} {
				if n := srv.AdmissionShed(class, reason); n > 0 {
					sheds[class.String()+"/"+reason] = n
				}
			}
		}
		trans := make([]string, len(transitions))
		for i, m := range transitions {
			trans[i] = m.String()
		}
		artifact := map[string]any{
			"scenario":            "mixed_priority_overload",
			"classes":             perClass,
			"admission_sheds":     sheds,
			"degrade_transitions": trans,
			"final_mode":          srv.DegradeMode().String(),
		}
		data, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("write soak artifact: %v", err)
		}
		fmt.Printf("soak artifact written to %s\n", path)
	}
}
