package integration

import (
	"context"
	"errors"
	"fmt"
	"os/exec"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/ft"
	"repro/internal/naming"
	"repro/internal/orb"
	"repro/internal/rosen"
)

// The chaos soak: a Rosenbrock manager drives three FT worker proxies to
// convergence while a fault script kills workers, partitions the naming
// service during recovery, delays the checkpoint path, and crashes one of
// three checkpointd replicas. The run must produce bit-identical results
// to a fault-free run of the same seed: checkpoint/restore rewinds a
// recovered worker to exactly its pre-fault state, and replayed solves
// carry the same per-round seeds, so no injected fault may change the
// optimizer's trajectory — only its wall-clock time.
//
// Fault placement is deliberate: faults that only affect timing and
// routing (dial refusal, delay, process crash) are injected freely, but
// no corruption or write-drop rules are placed on data routes — those
// faults are exercised in internal/faultnet's unit tests, while this soak
// asserts exact result equality, which silent payload mutation would (by
// design) break loudly rather than subtly.

// chaosSeed fixes both the optimizer seed and the fault transport PRNG.
const chaosSeed = 11

// soakConfig is the workload both runs share.
func soakConfig() rosen.Config {
	return rosen.Config{
		N:                 30,
		Workers:           3,
		WorkerIterations:  40,
		ManagerIterations: 6,
		Seed:              chaosSeed,
		Lo:                -2.048,
		Hi:                2.048,
	}
}

// epochGuard wraps the checkpoint store and records any epoch
// regression: a Put acked at an epoch not above the highest previously
// acked for its key, or a Get serving an epoch below it.
type epochGuard struct {
	inner ft.Store

	mu         sync.Mutex
	acked      map[string]uint64
	violations []string
}

func newEpochGuard(inner ft.Store) *epochGuard {
	return &epochGuard{inner: inner, acked: make(map[string]uint64)}
}

func (g *epochGuard) Put(ctx context.Context, key string, cp ft.Checkpoint) error {
	if err := g.inner.Put(ctx, key, cp); err != nil {
		return err
	}
	g.mu.Lock()
	if cp.Epoch <= g.acked[key] {
		g.violations = append(g.violations,
			fmt.Sprintf("put %q epoch %d acked after epoch %d", key, cp.Epoch, g.acked[key]))
	} else {
		g.acked[key] = cp.Epoch
	}
	g.mu.Unlock()
	return nil
}

func (g *epochGuard) Get(ctx context.Context, key string) (ft.Checkpoint, error) {
	cp, err := g.inner.Get(ctx, key)
	if err != nil {
		return cp, err
	}
	g.mu.Lock()
	if cp.Epoch < g.acked[key] {
		g.violations = append(g.violations,
			fmt.Sprintf("get %q served epoch %d after epoch %d was acked", key, cp.Epoch, g.acked[key]))
	}
	g.mu.Unlock()
	return cp, nil
}

func (g *epochGuard) Delete(ctx context.Context, key string) error {
	return g.inner.Delete(ctx, key)
}

func (g *epochGuard) Keys(ctx context.Context) ([]string, error) {
	return g.inner.Keys(ctx)
}

func (g *epochGuard) report() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.violations...)
}

func (g *epochGuard) ackedEpoch(key string) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.acked[key]
}

// resolveUnbinder is the naming surface the exclusive resolver wraps;
// naming.Client and naming.HAClient both satisfy it.
type resolveUnbinder interface {
	Resolve(ctx context.Context, name naming.Name) (orb.ObjectRef, error)
	UnbindOffer(ctx context.Context, name naming.Name, ref orb.ObjectRef) error
}

// exclusiveResolver hands each proxy a servant no other proxy holds.
// Worker servants are stateful (warm starts), so two proxies sharing one
// would interleave their state histories and diverge from the fault-free
// trajectory. Resolve cycles the naming service's round-robin selection
// until an unclaimed offer appears; UnbindOffer releases a dead claim.
type exclusiveResolver struct {
	inner resolveUnbinder

	mu    sync.Mutex
	inUse map[orb.ObjectRef]bool
}

func newExclusiveResolver(inner resolveUnbinder) *exclusiveResolver {
	return &exclusiveResolver{inner: inner, inUse: make(map[orb.ObjectRef]bool)}
}

func (r *exclusiveResolver) Resolve(ctx context.Context, name naming.Name) (orb.ObjectRef, error) {
	for attempt := 0; attempt < 64; attempt++ {
		ref, err := r.inner.Resolve(ctx, name)
		if err != nil {
			return orb.ObjectRef{}, err
		}
		r.mu.Lock()
		free := !r.inUse[ref]
		if free {
			r.inUse[ref] = true
		}
		r.mu.Unlock()
		if free {
			return ref, nil
		}
	}
	return orb.ObjectRef{}, errors.New("no unclaimed worker offer")
}

func (r *exclusiveResolver) UnbindOffer(ctx context.Context, name naming.Name, ref orb.ObjectRef) error {
	r.mu.Lock()
	delete(r.inUse, ref)
	r.mu.Unlock()
	return r.inner.UnbindOffer(ctx, name, ref)
}

// workerSlot is one live worker servant with its own server ORB, so a
// "workstation crash" is that ORB's shutdown: the listener closes and
// every in-flight connection dies.
type workerSlot struct {
	orb *orb.ORB
	ref orb.ObjectRef
}

// soakWorld is the full deployment of one soak run.
type soakWorld struct {
	t     *testing.T
	chaos *faultnet.Chaos

	// admin is a fault-free ORB for binding offers and inspecting stores.
	admin      *orb.ORB
	adminNames *naming.Client

	// client is the manager's ORB; all its dials go through the chaos
	// transport.
	client *orb.ORB

	resolver *exclusiveResolver
	guard    *epochGuard
	name     naming.Name

	namingAddr string
	storeAddrs []string
	storeCmds  []*exec.Cmd
	adminStore *ft.ReplicatedStore

	mu      sync.Mutex
	counter int
	slots   map[orb.ObjectRef]*workerSlot
}

// startCheckpointd launches a checkpointd replica and returns its SIOR
// and process handle (for crashing it mid-run).
func startCheckpointd(t *testing.T, dir string) (string, *exec.Cmd) {
	t.Helper()
	cmd, sior := startDaemonCmd(t, "checkpointd", "-addr", "127.0.0.1:0", "-dir", dir)
	return sior, cmd
}

func newSoakWorld(t *testing.T, chaos *faultnet.Chaos) *soakWorld {
	t.Helper()
	w := &soakWorld{
		t:     t,
		chaos: chaos,
		name:  naming.NewName(rosen.ServiceName),
		slots: make(map[orb.ObjectRef]*workerSlot),
	}

	// Naming service on its own ORB.
	services := orb.New(orb.Options{Name: "soak-services"})
	t.Cleanup(services.Shutdown)
	ad, err := services.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := naming.NewRegistry()
	nsRef := ad.Activate(naming.DefaultKey, naming.NewServant(reg, naming.RoundRobinSelector()))
	w.namingAddr = nsRef.Addr

	// Three checkpointd replicas as real processes with disk stores.
	storeRefs := make([]orb.ObjectRef, 3)
	for i := range storeRefs {
		sior, cmd := startCheckpointd(t, t.TempDir())
		ref, err := orb.RefFromString(sior)
		if err != nil {
			t.Fatal(err)
		}
		storeRefs[i] = ref
		w.storeAddrs = append(w.storeAddrs, ref.Addr)
		w.storeCmds = append(w.storeCmds, cmd)
	}

	// Admin plane: fault-free ORB for offer management and final
	// store inspection.
	w.admin = orb.New(orb.Options{Name: "soak-admin"})
	t.Cleanup(w.admin.Shutdown)
	w.adminNames = naming.NewClient(w.admin, nsRef)
	adminQuorum, err := ft.NewReplicatedStoreClient(w.admin, storeRefs)
	if err != nil {
		t.Fatal(err)
	}
	w.adminStore = adminQuorum

	// Manager plane: every dial goes through the chaos transport.
	w.client = orb.New(orb.Options{
		Name:        "soak-manager",
		Dialer:      chaos,
		CallTimeout: 20 * time.Second,
	})
	t.Cleanup(w.client.Shutdown)
	w.resolver = newExclusiveResolver(naming.NewClient(w.client, nsRef))
	managerQuorum, err := ft.NewReplicatedStoreClient(w.client, storeRefs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(managerQuorum.WaitRepairs)
	w.guard = newEpochGuard(managerQuorum)

	for i := 0; i < 3; i++ {
		w.spawnWorker()
	}
	return w
}

// spawnWorker starts a fresh worker servant on its own ORB and binds its
// offer into the group.
func (w *soakWorld) spawnWorker() *workerSlot {
	w.t.Helper()
	w.mu.Lock()
	w.counter++
	host := fmt.Sprintf("host-%d", w.counter)
	w.mu.Unlock()

	o := orb.New(orb.Options{Name: host})
	w.t.Cleanup(o.Shutdown)
	ad, err := o.NewAdapter("127.0.0.1:0")
	if err != nil {
		w.t.Fatal(err)
	}
	ref := ad.Activate("worker", ft.Wrap(rosen.NewWorker(nil)))
	if err := w.adminNames.BindOffer(context.Background(), w.name, ref, host); err != nil {
		w.t.Fatal(err)
	}
	slot := &workerSlot{orb: o, ref: ref}
	w.mu.Lock()
	w.slots[ref] = slot
	w.mu.Unlock()
	return slot
}

// kill crashes the worker currently serving ref: a replacement offer is
// bound first (the cluster always has spare capacity), then the victim's
// ORB shuts down, so the proxy's next call fails and recovery re-resolves
// onto the fresh servant and restores the checkpoint.
func (w *soakWorld) kill(ref orb.ObjectRef) {
	w.t.Helper()
	w.mu.Lock()
	slot := w.slots[ref]
	delete(w.slots, ref)
	w.mu.Unlock()
	if slot == nil {
		w.t.Fatalf("no live worker serves %v", ref)
	}
	w.spawnWorker()
	slot.orb.Shutdown()
}

// run executes one full soak workload and returns the result plus
// aggregated proxy stats. faulty selects whether the fault script runs.
func (w *soakWorld) run(ctx context.Context, faulty bool) (*rosen.Result, ft.Stats, error) {
	cfg := soakConfig()
	var mgr *rosen.Manager // assigned below; AfterRound fires only inside mgr.Run

	if faulty {
		// The timed half of the fault script: the checkpoint path to one
		// replica is slowed for the first stretch of the run.
		script := faultnet.NewScript(
			faultnet.Step{At: 0, Note: "delay checkpoint path", Do: func() {
				w.chaos.SetRule(faultnet.Rule{
					Route: w.storeAddrs[1],
					Delay: 3 * time.Millisecond, Jitter: 2 * time.Millisecond,
				})
			}},
			faultnet.Step{At: 900 * time.Millisecond, Note: "heal checkpoint path", Do: func() {
				w.chaos.ClearRule(w.storeAddrs[1])
			}},
		)
		sctx, cancel := context.WithCancel(ctx)
		done := script.Run(sctx)
		defer func() { cancel(); <-done }()

		// The round-keyed half: worker kills and the naming partition are
		// anchored to optimizer rounds, so the faults land at the same
		// point of the trajectory on every run of the seed.
		killRounds := map[int]int{2: 0, 4: 1, 6: 2}
		cfg.AfterRound = func(round int) {
			idx, ok := killRounds[round]
			if !ok {
				return
			}
			delete(killRounds, round)
			victim := mgr.WorkerRefs()[idx%len(mgr.WorkerRefs())]
			w.mu.Lock()
			_, alive := w.slots[victim]
			w.mu.Unlock()
			if !alive {
				// The initial servant already died earlier; pick any live
				// claimed one instead.
				w.mu.Lock()
				for ref := range w.slots {
					w.resolver.mu.Lock()
					used := w.resolver.inUse[ref]
					w.resolver.mu.Unlock()
					if used {
						victim = ref
						break
					}
				}
				w.mu.Unlock()
			}
			if round == 2 {
				// Partition the naming service exactly while the recovery
				// triggered by this kill needs it; the retry budget rides
				// out the window. ResetProb tears down the pooled naming
				// connection, RefuseDial keeps redials out.
				w.chaos.SetRule(faultnet.Rule{Route: w.namingAddr, RefuseDial: 1, ResetProb: 1})
				time.AfterFunc(150*time.Millisecond, func() {
					w.chaos.ClearRule(w.namingAddr)
				})
			}
			if round == 4 {
				// Crash one of the three checkpointd replicas for good.
				_ = w.storeCmds[2].Process.Kill()
			}
			w.kill(victim)
		}
	}

	mgr = rosen.NewManager(w.client, w.resolver, cfg).WithFT(rosen.FTOptions{
		Store: w.guard,
		Policy: ft.Policy{
			CheckpointEvery:  1,
			StrictCheckpoint: true,
			MaxRecoveries:    10,
			Backoff:          orb.Backoff{Base: 20 * time.Millisecond, Max: 150 * time.Millisecond},
			// Exercise the full data-path: pipelined store writes with
			// delta encoding. Solve results must stay bitwise-identical —
			// the state fetch is synchronous and recovery drains the
			// pipeline before restoring.
			AsyncCheckpoint: true,
			DeltaCheckpoint: true,
			SyncEvery:       4,
		},
		Unbinder: w.resolver,
	})
	res, err := mgr.Run(ctx)
	return res, mgr.ProxyStats(), err
}

func TestChaosSoak(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// Fault-free reference run: same seed, same topology, chaos transport
	// installed but with no rules and no script.
	baselineWorld := newSoakWorld(t, faultnet.New(chaosSeed))
	baseline, baseStats, err := baselineWorld.run(ctx, false)
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}
	if baseStats.Recoveries != 0 || baseStats.Replays != 0 {
		t.Fatalf("fault-free run recovered: %+v", baseStats)
	}
	if regressions := baselineWorld.guard.report(); len(regressions) != 0 {
		t.Fatalf("fault-free run epoch regressions: %v", regressions)
	}

	// Chaos run.
	chaos := faultnet.New(chaosSeed)
	world := newSoakWorld(t, chaos)
	res, stats, err := world.run(ctx, true)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}

	// The optimizer's trajectory must be untouched by the faults: same
	// minimum, same boundary, same number of rounds and worker calls.
	if res.F != baseline.F {
		t.Fatalf("chaos F = %v, fault-free F = %v — faults changed the result", res.F, baseline.F)
	}
	if res.Rounds != baseline.Rounds || res.WorkerCalls != baseline.WorkerCalls {
		t.Fatalf("chaos rounds/calls = %d/%d, fault-free = %d/%d",
			res.Rounds, res.WorkerCalls, baseline.Rounds, baseline.WorkerCalls)
	}
	for i := range baseline.Boundary {
		if res.Boundary[i] != baseline.Boundary[i] {
			t.Fatalf("boundary[%d] = %v, fault-free %v", i, res.Boundary[i], baseline.Boundary[i])
		}
	}
	if res.F < 0 {
		t.Fatalf("negative objective %v", res.F)
	}

	// Zero checkpoint-epoch regressions.
	if regressions := world.guard.report(); len(regressions) != 0 {
		t.Fatalf("epoch regressions: %v", regressions)
	}

	// The kills actually happened and recovery fired — and replayed work
	// stays bounded: one replay per recovery, nothing runs away.
	if res.Rounds < 5 {
		t.Fatalf("only %d rounds — kill schedule never engaged", res.Rounds)
	}
	kills := 2 // rounds 2 and 4 certainly ran; round 6 may not have
	if res.Rounds >= 6 {
		kills = 3
	}
	if stats.Recoveries < uint64(kills) {
		t.Fatalf("recoveries = %d, want >= %d (stats %+v)", stats.Recoveries, kills, stats)
	}
	if stats.Replays > uint64(kills)*2 {
		t.Fatalf("replays = %d for %d kills — replayed work unbounded (stats %+v)", stats.Replays, kills, stats)
	}
	if stats.CheckpointFailures != 0 {
		t.Fatalf("checkpoint failures under strict policy: %+v", stats)
	}

	// The injected faults actually fired.
	counters := chaos.Counters()
	if counters.DialsRefused == 0 {
		t.Fatalf("naming partition never bit: %+v", counters)
	}
	if counters.Delays == 0 {
		t.Fatalf("checkpoint delay never bit: %+v", counters)
	}

	// Every worker's newest checkpoint is the final epoch — one per
	// completed round — and stays readable with the crashed replica still
	// down (quorum of 2/3), matching what this run acked.
	world.guard.mu.Lock()
	keys := make([]string, 0, len(world.guard.acked))
	for k := range world.guard.acked {
		keys = append(keys, k)
	}
	world.guard.mu.Unlock()
	if len(keys) != soakConfig().Workers {
		t.Fatalf("checkpoint keys = %v, want one per worker", keys)
	}
	for _, key := range keys {
		cp, err := world.adminStore.Get(ctx, key)
		if err != nil {
			t.Fatalf("final read of %q with a replica down: %v", key, err)
		}
		if want := world.guard.ackedEpoch(key); cp.Epoch != want {
			t.Fatalf("store serves %q at epoch %d, acked max %d", key, cp.Epoch, want)
		}
		if cp.Epoch != uint64(res.Rounds) {
			t.Fatalf("%q final epoch %d, want one checkpoint per round (%d)", key, cp.Epoch, res.Rounds)
		}
	}
	world.adminStore.WaitRepairs()
}
