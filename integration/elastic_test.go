// Elastic re-decomposition soak: a real workerd pool grows 4→12 and
// shrinks to 6 mid-run (process kills, lease expiry), the nameserver-side
// offer lifecycle drives the cluster membership view, a Degrading host's
// worker state is moved proactively — and the run still converges to the
// bitwise result of a fixed 6-worker pool, with zero replayed calls.
package integration

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/ft"
	"repro/internal/naming"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/rosen"
)

// claimingResolver hands each proxy an exclusive worker offer (stateful
// servants must not be shared) and doubles as the migrator's Claimer and
// the elastic manager's OfferReleaser, so claims survive proactive moves
// and are returned at segment teardown.
type claimingResolver struct {
	inner resolveUnbinder

	mu    sync.Mutex
	inUse map[orb.ObjectRef]bool
}

func newClaimingResolver(inner resolveUnbinder) *claimingResolver {
	return &claimingResolver{inner: inner, inUse: make(map[orb.ObjectRef]bool)}
}

func (r *claimingResolver) Resolve(ctx context.Context, name naming.Name) (orb.ObjectRef, error) {
	for attempt := 0; attempt < 64; attempt++ {
		ref, err := r.inner.Resolve(ctx, name)
		if err != nil {
			return orb.ObjectRef{}, err
		}
		if r.Claim(ref) {
			return ref, nil
		}
	}
	return orb.ObjectRef{}, fmt.Errorf("no unclaimed worker offer")
}

func (r *claimingResolver) UnbindOffer(ctx context.Context, name naming.Name, ref orb.ObjectRef) error {
	r.Release(ref)
	return r.inner.UnbindOffer(ctx, name, ref)
}

// Claim implements ft.Claimer.
func (r *claimingResolver) Claim(ref orb.ObjectRef) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.inUse[ref] {
		return false
	}
	r.inUse[ref] = true
	return true
}

// Release implements ft.Claimer and rosen.OfferReleaser.
func (r *claimingResolver) Release(ref orb.ObjectRef) {
	r.mu.Lock()
	delete(r.inUse, ref)
	r.mu.Unlock()
}

func (r *claimingResolver) claimed(ref orb.ObjectRef) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inUse[ref]
}

func (r *claimingResolver) claimedRefs() []orb.ObjectRef {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]orb.ObjectRef, 0, len(r.inUse))
	for ref := range r.inUse {
		out = append(out, ref)
	}
	return out
}

// elasticWorker is one workerd process of the pool.
type elasticWorker struct {
	host string
	ref  orb.ObjectRef
	cmd  *exec.Cmd
}

// startWorkerd launches one workerd announcing itself to nsSIOR as host
// with a leased group offer.
func startWorkerd(t *testing.T, nsSIOR, host string, ttl time.Duration) *elasticWorker {
	t.Helper()
	cmd, sior := startDaemonCmd(t, "workerd",
		"-addr", "127.0.0.1:0", "-ns", nsSIOR, "-host", host, "-ttl", ttl.String())
	ref, err := orb.RefFromString(sior)
	if err != nil {
		t.Fatal(err)
	}
	return &elasticWorker{host: host, ref: ref, cmd: cmd}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// proactiveMoveLanded reports whether the ring holds a completed
// proactive-migration span (one that actually chose a target).
func proactiveMoveLanded(ring *obs.Ring) (string, bool) {
	for _, sp := range ring.Spans() {
		if sp.Name() != "ft.migrate.proactive" {
			continue
		}
		if to, ok := sp.Attr("to_host"); ok && to != "" {
			return to, true
		}
	}
	return "", false
}

func TestElasticScaleSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("elastic soak needs real processes and lease expiry waits")
	}
	ring := obs.NewRing(1 << 16)
	old := obs.Default()
	obs.SetDefault(obs.NewTracer("elastic-soak", obs.WithRing(ring)))
	t.Cleanup(func() { obs.SetDefault(old) })

	const leaseTTL = 2 * time.Second

	// In-process naming service with a lease sweeper; the offer lifecycle
	// (first bound offer = Join, last gone = Leave, including sweeper
	// evictions after a kill) is the only thing feeding the membership
	// view — exactly the nameserver -elastic wiring.
	services := orb.New(orb.Options{Name: "elastic-services"})
	t.Cleanup(services.Shutdown)
	ad, err := services.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := naming.NewRegistry()
	membership := cluster.NewMembership(
		cluster.WithDegradeTrend(0.5), cluster.WithDegradeSamples(2))
	tracker := membership.TrackOffers("naming")
	reg.SetOfferObserver(func(n naming.Name, o naming.Offer, bound bool) {
		if bound {
			tracker.Bound(o.Host)
		} else {
			tracker.Unbound(o.Host)
		}
	})
	nsRef := ad.Activate(naming.DefaultKey, naming.NewServant(reg, naming.RoundRobinSelector()))
	nsSIOR := nsRef.ToString()
	sweeper := naming.NewSweeper(reg, naming.SweeperOptions{Period: 100 * time.Millisecond})
	sweeper.Start()
	t.Cleanup(sweeper.Stop)

	// Phase A pool: 4 workerd processes with leased offers.
	hostOf := make(map[orb.ObjectRef]string)
	var workers []*elasticWorker
	spawn := func(host string) {
		w := startWorkerd(t, nsSIOR, host, leaseTTL)
		workers = append(workers, w)
		hostOf[w.ref] = host
	}
	for i := 1; i <= 4; i++ {
		spawn(fmt.Sprintf("w%02d", i))
	}
	waitUntil(t, "initial pool of 4", 10*time.Second,
		func() bool { return membership.AliveCount() == 4 })

	client := orb.New(orb.Options{Name: "elastic-client"})
	t.Cleanup(client.Shutdown)
	nsClient := naming.NewClient(client, nsRef)
	resolver := newClaimingResolver(nsClient)

	storeSIOR, _ := startCheckpointd(t, t.TempDir())
	storeRef, err := orb.RefFromString(storeSIOR)
	if err != nil {
		t.Fatal(err)
	}
	store := ft.NewStoreClient(client, storeRef)

	cfg := rosen.Config{
		N:                 30,
		WorkerIterations:  40,
		ManagerIterations: 6,
		Seed:              7,
		EvalCost:          1e-4,
	}
	// Recovery is off: the elastic loop owns failure handling (a dead
	// worker fails its segment, membership change re-places), so nothing
	// is ever replayed — the acceptance criterion the trace must show.
	policy := ft.Policy{CheckpointEvery: 1, RecoverOn: func(error) bool { return false }}

	const phaseGrow, phaseDegrade, phaseDone = 0, 1, 2
	phase := phaseGrow
	var curSeg, curWidth int
	var degradedHost, migratedTo string
	cfg.AfterRound = func(round int) {
		switch {
		case phase == phaseGrow && round >= 2:
			// Grow the pool 4→12 mid-segment. The width clamps to
			// MaxWorkers=8, leaving four unclaimed spares for migration.
			for i := 5; i <= 12; i++ {
				spawn(fmt.Sprintf("w%02d", i))
			}
			waitUntil(t, "grown pool of 12", 15*time.Second,
				func() bool { return membership.AliveCount() == 12 })
			phase = phaseDegrade
		case phase == phaseDegrade && curSeg >= 2 && curWidth == 8 && round >= 2:
			// Pick a claimed host and collapse its load trend: peak 2.0,
			// then two samples below trend → Degrading → the segment's
			// migrator moves its checkpointed state to a healthy spare
			// without interrupting the optimization.
			for _, ref := range resolver.claimedRefs() {
				if h, ok := hostOf[ref]; ok && (degradedHost == "" || h < degradedHost) {
					degradedHost = h
				}
			}
			if degradedHost == "" {
				t.Fatal("no claimed host to degrade")
			}
			membership.ReportLoad(degradedHost, 2.0, "winner")
			membership.ReportLoad(degradedHost, 0.2, "winner")
			membership.ReportLoad(degradedHost, 0.2, "winner")
			waitUntil(t, "proactive migration", 15*time.Second, func() bool {
				var ok bool
				migratedTo, ok = proactiveMoveLanded(ring)
				return ok
			})
			// Shrink 12→6: kill the degraded host plus the five highest-
			// numbered others (sparing the migration target). Their leases
			// lapse, the sweeper unbinds, and the tracker turns each death
			// into exactly one Leave.
			var victims []*elasticWorker
			for i := len(workers) - 1; i >= 0 && len(victims) < 5; i-- {
				w := workers[i]
				if w.host == degradedHost || w.host == migratedTo {
					continue
				}
				victims = append(victims, w)
			}
			for _, w := range workers {
				if w.host == degradedHost {
					victims = append(victims, w)
				}
			}
			for _, w := range victims {
				_ = w.cmd.Process.Kill()
			}
			phase = phaseDone
		}
	}

	m := rosen.NewManager(client, resolver, cfg).
		WithFT(rosen.FTOptions{Store: store, Policy: policy, Unbinder: nsClient}).
		WithElastic(rosen.ElasticOptions{
			Membership: membership,
			MinWorkers: 2,
			MaxWorkers: 8,
			Proactive:  true,
			MigrateOptions: []ft.MigrateOption{
				ft.MigrateOffers(nsClient),
				ft.MigrateClaims(resolver),
				ft.MigrateTargetFilter(func(o naming.Offer) bool {
					return !resolver.claimed(o.Ref)
				}),
			},
			OnSegment: func(seg, w int) { curSeg, curWidth = seg, w },
		})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	res, err := m.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if phase != phaseDone {
		t.Fatalf("fault script incomplete: phase %d", phase)
	}

	es := m.ElasticStats()
	if es.FinalWorkers != 6 {
		t.Fatalf("final width = %d, want 6 (stats %+v)", es.FinalWorkers, es)
	}
	if es.Segments < 3 || es.Interrupts < 1 {
		t.Fatalf("elastic stats %+v: want ≥3 segments with ≥1 interrupt", es)
	}
	if es.Proactive < 1 {
		t.Fatalf("ft_proactive_migrations_total = %d, want ≥ 1", es.Proactive)
	}
	// The acceptance criterion: proactive moves carry state via
	// checkpoints, reactive recovery is disabled, so across the whole run
	// — kills included — not one call was replayed.
	if es.ProxyStats.Replays != 0 || es.ProxyStats.Recoveries != 0 {
		t.Fatalf("run replayed calls: %+v", es.ProxyStats)
	}
	for _, sp := range ring.Spans() {
		if sp.Name() == "replay" {
			t.Fatalf("replay span in the trace: %+v", sp)
		}
	}

	// Baseline: a fixed 6-worker pool of fresh workerd processes under a
	// separate registry, same seed and config. Bitwise equality is the
	// determinism contract of elastic re-decomposition.
	reg2 := naming.NewRegistry()
	ns2Ref := ad.Activate("naming-baseline", naming.NewServant(reg2, naming.RoundRobinSelector()))
	for i := 1; i <= 6; i++ {
		startWorkerd(t, ns2Ref.ToString(), fmt.Sprintf("b%02d", i), 0)
	}
	ns2Client := naming.NewClient(client, ns2Ref)
	store2SIOR, _ := startCheckpointd(t, t.TempDir())
	store2Ref, err := orb.RefFromString(store2SIOR)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Workers = 6
	cfg2.AfterRound = nil
	fixed, err := rosen.NewManager(client, newClaimingResolver(ns2Client), cfg2).
		WithFT(rosen.FTOptions{Store: ft.NewStoreClient(client, store2Ref), Policy: policy}).
		Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.F != fixed.F || res.Rounds != fixed.Rounds {
		t.Fatalf("elastic F/rounds %v/%d != fixed %v/%d", res.F, res.Rounds, fixed.F, fixed.Rounds)
	}
	if len(res.Boundary) != len(fixed.Boundary) || len(res.X) != len(fixed.X) {
		t.Fatalf("result shapes differ: boundary %d/%d, x %d/%d",
			len(res.Boundary), len(fixed.Boundary), len(res.X), len(fixed.X))
	}
	for i := range res.Boundary {
		if res.Boundary[i] != fixed.Boundary[i] {
			t.Fatalf("boundary[%d]: %v != %v", i, res.Boundary[i], fixed.Boundary[i])
		}
	}
	for i := range res.X {
		if res.X[i] != fixed.X[i] {
			t.Fatalf("x[%d]: %v != %v", i, res.X[i], fixed.X[i])
		}
	}

	if path := os.Getenv("ELASTIC_ARTIFACT"); path != "" {
		artifact := map[string]any{
			"scenario":       "elastic_scale_soak",
			"pool_phases":    []int{4, 12, 6},
			"segments":       es.Segments,
			"interrupts":     es.Interrupts,
			"retries":        es.Retries,
			"proactive":      es.Proactive,
			"migrations":     es.Migrations,
			"final_workers":  es.FinalWorkers,
			"degraded_host":  degradedHost,
			"migrated_to":    migratedTo,
			"replays":        es.ProxyStats.Replays,
			"recoveries":     es.ProxyStats.Recoveries,
			"checkpoints":    es.ProxyStats.Checkpoints,
			"f":              res.F,
			"rounds":         res.Rounds,
			"bitwise_match":  true,
			"worker_calls":   res.WorkerCalls,
			"fixed_baseline": map[string]any{"f": fixed.F, "rounds": fixed.Rounds},
		}
		data, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("ELASTIC_ARTIFACT: %v", err)
		}
		t.Logf("elastic artifact written to %s", path)
	}
}
