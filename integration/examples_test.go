package integration

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program end to end and checks a
// characteristic line of its output, so the documented entry points can
// never silently rot.
func TestExamplesRun(t *testing.T) {
	cases := []struct {
		dir  string
		want []string
	}{
		{"quickstart", []string{"Hello, world!", "resolved"}},
		{"loadbalanced", []string{"plain naming (CORBA)", "Winner naming (CORBA/Winner)"}},
		{"faulttolerant", []string{"recovered transparently", "1 recoveries"}},
		{"asyncdii", []string{"fault-tolerant request proxies", "1 recoveries"}},
		{"migration", []string{"migrator moved the service", "offers remaining: 1"}},
		{"mdo", []string{"best design", "workstation crash"}},
		{"generatedbank", []string{"typed exception: missing 700", "1 recoveries"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+c.dir)
			cmd.Dir = ".."
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s: %v\n%s", c.dir, err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Fatalf("example %s output missing %q:\n%s", c.dir, want, out)
				}
			}
		})
	}
}
