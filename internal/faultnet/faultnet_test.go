package faultnet

import (
	"bytes"
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoListener accepts connections and echoes everything back.
func echoListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { defer c.Close(); _, _ = io.Copy(c, c) }()
		}
	}()
	return ln
}

func dial(t *testing.T, c *Chaos, addr string) net.Conn {
	t.Helper()
	nc, err := c.DialContext(context.Background(), "tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return nc
}

func TestRefuseDial(t *testing.T) {
	ln := echoListener(t)
	c := New(1)
	c.SetRule(Rule{Route: ln.Addr().String(), RefuseDial: 1})
	if _, err := c.DialContext(context.Background(), "tcp", ln.Addr().String()); err == nil {
		t.Fatal("dial succeeded despite RefuseDial=1")
	}
	if got := c.Counters().DialsRefused; got != 1 {
		t.Fatalf("DialsRefused = %d, want 1", got)
	}

	// Other routes are untouched.
	ln2 := echoListener(t)
	if _, err := c.DialContext(context.Background(), "tcp", ln2.Addr().String()); err != nil {
		t.Fatalf("unmatched route refused: %v", err)
	}
}

func TestDropWritesIsOneWay(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	received := make(chan int, 1)
	var srv net.Conn
	var srvMu sync.Mutex
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		srvMu.Lock()
		srv = c
		srvMu.Unlock()
		buf := make([]byte, 64)
		c.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
		n, _ := c.Read(buf)
		received <- n
	}()

	c := New(2)
	c.SetRule(Rule{Route: ln.Addr().String(), DropWrites: true})
	nc := dial(t, c, ln.Addr().String())
	if n, err := nc.Write([]byte("lost")); err != nil || n != 4 {
		t.Fatalf("partitioned write = %d, %v; want pretend-success", n, err)
	}
	if n := <-received; n != 0 {
		t.Fatalf("server received %d bytes through a partition", n)
	}
	if got := c.Counters().Drops; got == 0 {
		t.Fatal("Drops counter not incremented")
	}

	// The reverse direction still flows (one-way, not full partition).
	srvMu.Lock()
	s := srv
	srvMu.Unlock()
	if _, err := s.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	nc.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := io.ReadFull(nc, buf); err != nil || string(buf) != "back" {
		t.Fatalf("read back = %q, %v", buf, err)
	}
}

func TestCorruptionFlipsOneByte(t *testing.T) {
	ln := echoListener(t)
	c := New(3)
	route := ln.Addr().String()
	c.SetRule(Rule{Route: route, CorruptProb: 1})
	nc := dial(t, c, route)

	sent := []byte("checkpoint-payload")
	if _, err := nc.Write(sent); err != nil {
		t.Fatal(err)
	}
	// The echo comes back through the same chaos conn, so the reply write
	// is the server's (unwrapped) and the only corruption is ours going out.
	got := make([]byte, len(sent))
	nc.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := io.ReadFull(nc, got); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range sent {
		if sent[i] != got[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("echoed payload differs in %d bytes, want exactly 1 (sent %q, got %q)", diff, sent, got)
	}
	if c.Counters().Corruptions == 0 {
		t.Fatal("Corruptions counter not incremented")
	}
}

func TestDelayBeforeWrite(t *testing.T) {
	ln := echoListener(t)
	c := New(4)
	route := ln.Addr().String()
	c.SetRule(Rule{Route: route, Delay: 50 * time.Millisecond})
	nc := dial(t, c, route)

	start := time.Now()
	if _, err := nc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Fatalf("write took %v, want >= 50ms", el)
	}
	if c.Counters().Delays == 0 {
		t.Fatal("Delays counter not incremented")
	}
}

func TestResetProbTearsConnection(t *testing.T) {
	ln := echoListener(t)
	c := New(5)
	route := ln.Addr().String()
	nc := dial(t, c, route)
	// Install the rule after dialing: live connections observe rule
	// changes on their next write (runtime toggling).
	c.SetRule(Rule{Route: route, ResetProb: 1})
	if _, err := nc.Write([]byte("boom")); err == nil {
		t.Fatal("write succeeded despite ResetProb=1")
	}
	if _, err := nc.Write([]byte("again")); err == nil {
		t.Fatal("write on a reset connection succeeded")
	}
	if got := c.Counters().Resets; got != 1 {
		t.Fatalf("Resets = %d, want 1", got)
	}
}

func TestResetAfterBytes(t *testing.T) {
	ln := echoListener(t)
	c := New(6)
	route := ln.Addr().String()
	c.SetRule(Rule{Route: route, ResetAfterBytes: 10})
	nc := dial(t, c, route)

	if _, err := nc.Write([]byte("12345")); err != nil {
		t.Fatalf("first write (under threshold): %v", err)
	}
	if _, err := nc.Write([]byte("67890A")); err == nil {
		t.Fatal("write crossing the byte threshold did not reset")
	}
	if got := c.Counters().Resets; got != 1 {
		t.Fatalf("Resets = %d, want 1", got)
	}
}

func TestWildcardRouteAndToggle(t *testing.T) {
	ln := echoListener(t)
	c := New(7)
	c.SetRule(Rule{Route: "*", RefuseDial: 1})
	if _, err := c.DialContext(context.Background(), "tcp", ln.Addr().String()); err == nil {
		t.Fatal("wildcard refusal did not fire")
	}
	c.SetEnabled(false)
	if _, err := c.DialContext(context.Background(), "tcp", ln.Addr().String()); err != nil {
		t.Fatalf("disabled chaos still injected: %v", err)
	}
	c.SetEnabled(true)
	if _, err := c.DialContext(context.Background(), "tcp", ln.Addr().String()); err == nil {
		t.Fatal("re-enabled chaos did not fire")
	}
}

func TestSeededDeterminism(t *testing.T) {
	ln := echoListener(t)
	route := ln.Addr().String()
	pattern := func(seed int64) []bool {
		c := New(seed)
		c.SetRule(Rule{Route: route, RefuseDial: 0.5})
		out := make([]bool, 32)
		for i := range out {
			nc, err := c.DialContext(context.Background(), "tcp", route)
			out[i] = err != nil
			if nc != nil {
				nc.Close()
			}
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at dial %d: %v vs %v", i, a, b)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 32-dial patterns")
	}
}

func TestListenerSideRules(t *testing.T) {
	c := New(8)
	ln, err := c.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	route := ln.Addr().String()
	c.SetRule(Rule{Route: route, DropWrites: true})

	got := make(chan error, 1)
	go func() {
		sc, err := ln.Accept()
		if err != nil {
			got <- err
			return
		}
		defer sc.Close()
		// The server-side write is dropped by the listener-route rule.
		if _, err := sc.Write([]byte("reply")); err != nil {
			got <- err
			return
		}
		got <- nil
	}()

	nc, err := net.Dial("tcp", route)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 8)
	if n, _ := nc.Read(buf); n != 0 {
		t.Fatalf("client received %q through a server-side partition", buf[:n])
	}
	if c.Counters().Drops == 0 {
		t.Fatal("Drops counter not incremented")
	}
}

func TestScriptFiresInOrder(t *testing.T) {
	var mu sync.Mutex
	var fired []string
	step := func(at time.Duration, name string) Step {
		return Step{At: at, Note: name, Do: func() {
			mu.Lock()
			fired = append(fired, name)
			mu.Unlock()
		}}
	}
	// Built out of order; NewScript sorts by offset.
	s := NewScript(
		step(30*time.Millisecond, "third"),
		step(0, "first"),
		step(10*time.Millisecond, "second"),
	)
	select {
	case <-s.Run(context.Background()):
	case <-time.After(5 * time.Second):
		t.Fatal("script never finished")
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"first", "second", "third"}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestScriptCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	ran := false
	s := NewScript(Step{At: time.Hour, Do: func() {
		mu.Lock()
		ran = true
		mu.Unlock()
	}})
	done := s.Run(ctx)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled script never returned")
	}
	mu.Lock()
	defer mu.Unlock()
	if ran {
		t.Fatal("cancelled script still ran its step")
	}
}

func TestUnruledTrafficPassesVerbatim(t *testing.T) {
	ln := echoListener(t)
	c := New(9)
	nc := dial(t, c, ln.Addr().String())
	msg := []byte("plain traffic")
	if _, err := nc.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	nc.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := io.ReadFull(nc, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msg, got) {
		t.Fatalf("echo = %q, want %q", got, msg)
	}
}
