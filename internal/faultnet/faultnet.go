// Package faultnet is a deterministic fault-injection transport: it wraps
// the ORB's Dialer/Listener seam (orb.Options.Dialer / orb.Options.Listen)
// with per-route chaos rules — connection refusal, mid-call resets,
// fixed/jittered delay, byte-level corruption and one-way partitions —
// driven by a seeded PRNG so failure sequences replay identically for a
// given seed and traffic pattern. Rules are togglable at runtime (the
// timed Script in script.go schedules them) and every injected fault is
// counted, so tests can assert that the chaos actually fired.
//
// The package deliberately depends only on net/context: all fault
// injection lives behind the transport seam, zero chaos code in the
// production packages.
package faultnet

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Rule is the fault policy for one route. Zero-valued fields inject
// nothing; probabilities are in [0,1].
type Rule struct {
	// Route selects the traffic the rule applies to: the remote address
	// for dialed connections, the local listen address for accepted ones.
	// "*" matches every route.
	Route string
	// RefuseDial is the probability that a dial to the route fails
	// immediately (connection-refused analogue).
	RefuseDial float64
	// ResetProb is the probability, checked at every write, that the
	// connection is torn down mid-call (RST analogue): the peer sees a
	// broken stream, the writer an error.
	ResetProb float64
	// ResetAfterBytes tears the connection down once this many bytes have
	// passed through it in either direction (0 = disabled). Unlike
	// ResetProb it is exact, for reproducing "died mid-reply" scenarios.
	ResetAfterBytes int64
	// Delay + Jitter sleep before every write: Delay fixed, plus a
	// uniformly random fraction of Jitter.
	Delay  time.Duration
	Jitter time.Duration
	// CorruptProb is the probability, checked at every write, that one
	// random byte of the payload is bit-flipped before hitting the wire.
	CorruptProb float64
	// DropWrites silently discards all writes (one-way partition: the
	// writer believes the bytes left, the peer never sees them). Reads
	// still flow, so the asymmetry of a real partition is preserved.
	DropWrites bool
}

// active reports whether the rule injects anything at all.
func (r Rule) active() bool {
	return r.RefuseDial > 0 || r.ResetProb > 0 || r.ResetAfterBytes > 0 ||
		r.Delay > 0 || r.Jitter > 0 || r.CorruptProb > 0 || r.DropWrites
}

// Counters are cumulative injection counts, one line per fault kind.
type Counters struct {
	// Dials counts connections that passed through the chaos dialer.
	Dials uint64
	// DialsRefused counts dials failed by RefuseDial.
	DialsRefused uint64
	// Resets counts connections torn down by ResetProb/ResetAfterBytes.
	Resets uint64
	// Delays counts writes slept on by Delay/Jitter.
	Delays uint64
	// Corruptions counts writes with a flipped byte.
	Corruptions uint64
	// Drops counts writes discarded by DropWrites.
	Drops uint64
}

// Chaos is the fault-injecting transport. One instance is shared between
// the dial and listen seams of any number of ORBs; rules and the PRNG are
// guarded by one mutex, so decision order — and therefore the injected
// fault sequence — is deterministic for deterministic traffic.
type Chaos struct {
	mu       sync.Mutex
	rng      *rand.Rand
	rules    map[string]Rule
	disabled bool
	counters Counters
}

// New creates a chaos transport seeded with seed and no rules (all
// traffic passes untouched until SetRule installs faults).
func New(seed int64) *Chaos {
	return &Chaos{rng: rand.New(rand.NewSource(seed)), rules: make(map[string]Rule)}
}

// SetRule installs (or replaces) the rule for its route. Live connections
// of the route observe the change on their next read/write.
func (c *Chaos) SetRule(r Rule) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rules[r.Route] = r
}

// ClearRule removes the rule for route.
func (c *Chaos) ClearRule(route string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.rules, route)
}

// Clear removes every rule.
func (c *Chaos) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rules = make(map[string]Rule)
}

// SetEnabled toggles the whole layer at runtime; while disabled all
// traffic passes untouched (rules are kept).
func (c *Chaos) SetEnabled(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.disabled = !on
}

// Counters returns a snapshot of the injection counts.
func (c *Chaos) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters
}

// rule returns the effective rule for route: an exact match wins over the
// "*" wildcard; a zero Rule (injecting nothing) otherwise.
func (c *Chaos) rule(route string) (Rule, bool) {
	if c.disabled {
		return Rule{}, false
	}
	if r, ok := c.rules[route]; ok {
		return r, r.active()
	}
	if r, ok := c.rules["*"]; ok {
		return r, r.active()
	}
	return Rule{}, false
}

// chance draws one deterministic PRNG decision under the mutex.
func (c *Chaos) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return c.rng.Float64() < p
}

// DialContext implements the orb.Dialer seam: it applies the target
// route's RefuseDial rule, then wraps the established connection.
func (c *Chaos) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	c.mu.Lock()
	r, ok := c.rule(addr)
	refuse := ok && c.chance(r.RefuseDial)
	if refuse {
		c.counters.DialsRefused++
	} else {
		c.counters.Dials++
	}
	c.mu.Unlock()
	if refuse {
		return nil, fmt.Errorf("faultnet: dial %s: connection refused (injected)", addr)
	}
	var d net.Dialer
	nc, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	return &conn{Conn: nc, chaos: c, route: addr}, nil
}

// Listen implements the orb.Options.Listen seam: accepted connections are
// wrapped with the rules of the listener's local address.
func (c *Chaos) Listen(network, addr string) (net.Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return &listener{Listener: ln, chaos: c}, nil
}

type listener struct {
	net.Listener
	chaos *Chaos
}

func (l *listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &conn{Conn: nc, chaos: l.chaos, route: l.Addr().String()}, nil
}

// conn applies the route's rule to every read and write.
type conn struct {
	net.Conn
	chaos *Chaos
	route string

	mu    sync.Mutex
	bytes int64 // total bytes passed, for ResetAfterBytes
	dead  bool
}

// errReset is the error surfaced after an injected reset.
type errReset struct{ route string }

func (e errReset) Error() string {
	return fmt.Sprintf("faultnet: connection to %s reset (injected)", e.route)
}

// reset tears the underlying connection down and marks this wrapper dead.
func (c *conn) reset() error {
	c.mu.Lock()
	already := c.dead
	c.dead = true
	c.mu.Unlock()
	if !already {
		c.chaos.mu.Lock()
		c.chaos.counters.Resets++
		c.chaos.mu.Unlock()
		c.Conn.Close()
	}
	return errReset{route: c.route}
}

func (c *conn) isDead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// account adds n passed bytes and reports whether the ResetAfterBytes
// threshold was crossed by this addition.
func (c *conn) account(n int, threshold int64) bool {
	if threshold <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	before := c.bytes
	c.bytes += int64(n)
	return before < threshold && c.bytes >= threshold
}

func (c *conn) Read(p []byte) (int, error) {
	if c.isDead() {
		return 0, errReset{route: c.route}
	}
	n, err := c.Conn.Read(p)
	c.chaos.mu.Lock()
	r, ok := c.chaos.rule(c.route)
	c.chaos.mu.Unlock()
	if ok && n > 0 && c.account(n, r.ResetAfterBytes) {
		return n, c.reset()
	}
	return n, err
}

func (c *conn) Write(p []byte) (int, error) {
	if c.isDead() {
		return 0, errReset{route: c.route}
	}
	c.chaos.mu.Lock()
	r, ok := c.chaos.rule(c.route)
	if !ok {
		c.chaos.mu.Unlock()
		return c.Conn.Write(p)
	}
	var sleep time.Duration
	if r.Delay > 0 || r.Jitter > 0 {
		sleep = r.Delay
		if r.Jitter > 0 {
			sleep += time.Duration(c.chaos.rng.Int63n(int64(r.Jitter)))
		}
		c.chaos.counters.Delays++
	}
	drop := r.DropWrites
	if drop {
		c.chaos.counters.Drops++
	}
	reset := !drop && c.chaos.chance(r.ResetProb)
	corruptAt := -1
	if !drop && !reset && len(p) > 0 && c.chaos.chance(r.CorruptProb) {
		corruptAt = c.chaos.rng.Intn(len(p))
		c.chaos.counters.Corruptions++
	}
	c.chaos.mu.Unlock()

	if sleep > 0 {
		time.Sleep(sleep)
	}
	if drop {
		// One-way partition: pretend success, deliver nothing.
		return len(p), nil
	}
	if reset {
		return 0, c.reset()
	}
	if corruptAt >= 0 {
		cp := make([]byte, len(p))
		copy(cp, p)
		cp[corruptAt] ^= 0x20
		p = cp
	}
	n, err := c.Conn.Write(p)
	if n > 0 && c.account(n, r.ResetAfterBytes) {
		return n, c.reset()
	}
	return n, err
}
