package faultnet

import (
	"context"
	"sort"
	"time"
)

// Step is one timed action of a fault script.
type Step struct {
	// At is the step's offset from script start.
	At time.Duration
	// Note labels the step in logs/observers.
	Note string
	// Do applies the step (install a rule, clear one, kill a process —
	// the script does not constrain what an action touches).
	Do func()
}

// Script is a time-scheduled fault sequence: steps fire in At order,
// measured from Run. Scripts make chaos runs repeatable — the same script
// against the same workload produces the same fault timeline.
type Script struct {
	steps []Step
	// Observe, when set, is called as each step fires (test logging).
	Observe func(Step)
}

// NewScript builds a script from steps (sorted by At; ties keep the
// given order).
func NewScript(steps ...Step) *Script {
	s := &Script{steps: append([]Step(nil), steps...)}
	sort.SliceStable(s.steps, func(i, j int) bool { return s.steps[i].At < s.steps[j].At })
	return s
}

// Run executes the script from now, firing each step at its offset, and
// returns a channel closed when the script finishes. Cancelling ctx stops
// the script between steps.
func (s *Script) Run(ctx context.Context) <-chan struct{} {
	done := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(done)
		for _, st := range s.steps {
			wait := time.Until(start.Add(st.At))
			if wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return
				}
			} else if ctx.Err() != nil {
				return
			}
			if s.Observe != nil {
				s.Observe(st)
			}
			st.Do()
		}
	}()
	return done
}
