package experiments

import (
	"strings"
	"testing"
)

func chartFixture() []Figure3Series {
	return []Figure3Series{{
		Case: Figure3Case{N: 30, Workers: 3, WorkerHosts: 5},
		Points: []Figure3Point{
			{Loaded: 0, Plain: 800, Winner: 800},
			{Loaded: 2, Plain: 1600, Winner: 800},
			{Loaded: 4, Plain: 1600, Winner: 1400},
		},
	}}
}

func TestChartContainsMarks(t *testing.T) {
	var sb strings.Builder
	RenderFigure3Chart(&sb, chartFixture())
	out := sb.String()
	if !strings.Contains(out, "P") || !strings.Contains(out, "W") {
		t.Fatalf("marks missing:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("overlap mark missing for equal points:\n%s", out)
	}
	if !strings.Contains(out, "case 30/3") {
		t.Fatalf("case label missing:\n%s", out)
	}
	// X-axis shows the load counts.
	for _, x := range []string{"0", "2", "4"} {
		if !strings.Contains(out, x) {
			t.Fatalf("axis label %s missing:\n%s", x, out)
		}
	}
}

func TestChartPlainAboveWinner(t *testing.T) {
	var sb strings.Builder
	RenderFigure3Chart(&sb, chartFixture())
	lines := strings.Split(sb.String(), "\n")
	// In the loaded column the plain mark (slower = higher runtime) must
	// appear on an earlier (higher) line than the Winner mark.
	pLine, wLine := -1, -1
	for i, line := range lines {
		if strings.Contains(line, "=") || !strings.Contains(line, "|") {
			continue // header/axis lines, not chart rows
		}
		if idx := strings.IndexByte(line, 'P'); idx >= 0 && pLine == -1 {
			pLine = i
		}
		if idx := strings.IndexByte(line, 'W'); idx >= 0 && wLine == -1 {
			wLine = i
		}
	}
	if pLine == -1 || wLine == -1 || pLine >= wLine {
		t.Fatalf("P line %d not above W line %d:\n%s", pLine, wLine, sb.String())
	}
}

func TestChartEmptySeries(t *testing.T) {
	var sb strings.Builder
	RenderFigure3Chart(&sb, nil)
	if !strings.Contains(sb.String(), "no data") {
		t.Fatalf("empty chart output: %q", sb.String())
	}
}
