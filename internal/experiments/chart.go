package experiments

import (
	"fmt"
	"io"
	"strings"
)

// RenderFigure3Chart draws the reproduction of Figure 3 as an ASCII
// chart: runtime (virtual seconds) over the number of hosts with
// background load, one mark pair per case (plain = 'P', Winner = 'W',
// overlap = '*'), mirroring the paper's plot.
func RenderFigure3Chart(w io.Writer, series []Figure3Series) {
	const (
		height = 16
		colW   = 9
	)
	var maxY float64
	for _, s := range series {
		for _, p := range s.Points {
			if p.Plain > maxY {
				maxY = p.Plain
			}
			if p.Winner > maxY {
				maxY = p.Winner
			}
		}
	}
	if maxY == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}

	fmt.Fprintln(w, "Runtime (virtual seconds) vs. hosts with background load")
	for _, s := range series {
		fmt.Fprintf(w, "\ncase %s   P = CORBA, W = CORBA/Winner, * = overlap\n", s.Case.Label())
		grid := make([][]byte, height)
		for r := range grid {
			grid[r] = []byte(strings.Repeat(" ", colW*len(s.Points)))
		}
		row := func(v float64) int {
			r := height - 1 - int(v/maxY*float64(height-1)+0.5)
			if r < 0 {
				r = 0
			}
			if r >= height {
				r = height - 1
			}
			return r
		}
		for i, p := range s.Points {
			col := i*colW + colW/2
			rp, rw := row(p.Plain), row(p.Winner)
			if rp == rw {
				grid[rp][col] = '*'
			} else {
				grid[rp][col] = 'P'
				grid[rw][col] = 'W'
			}
		}
		for r, line := range grid {
			label := "        "
			// Y-axis labels at the top, middle and bottom rows.
			switch r {
			case 0:
				label = fmt.Sprintf("%7.0f ", maxY)
			case height / 2:
				label = fmt.Sprintf("%7.0f ", maxY/2)
			case height - 1:
				label = fmt.Sprintf("%7.0f ", 0.0)
			}
			fmt.Fprintf(w, "%s|%s\n", label, string(line))
		}
		fmt.Fprintf(w, "        +%s\n", strings.Repeat("-", colW*len(s.Points)))
		var axis strings.Builder
		for _, p := range s.Points {
			axis.WriteString(fmt.Sprintf("%*d", colW/2+1, p.Loaded))
			axis.WriteString(strings.Repeat(" ", colW-colW/2-1))
		}
		fmt.Fprintf(w, "        %s\n", axis.String())
	}
}
