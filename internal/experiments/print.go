package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// RenderFigure3 prints the Figure 3 reproduction as text series: one block
// per case with the plain/Winner runtimes per load level and the summary
// line the paper's section 4 states.
func RenderFigure3(w io.Writer, series []Figure3Series) {
	fmt.Fprintln(w, "Figure 3 — runtime of the decomposed Rosenbrock optimization")
	fmt.Fprintln(w, "(virtual seconds; simulated 10-workstation NOW; background load = 1 process/host)")
	for _, s := range series {
		fmt.Fprintf(w, "\ncase %s (dim %d, %d workers, %d worker hosts)\n",
			s.Case.Label(), s.Case.N, s.Case.Workers, s.Case.WorkerHosts)
		fmt.Fprintf(w, "  %-18s %14s %16s %12s\n", "hosts with load", "CORBA [s]", "CORBA/Winner [s]", "reduction")
		for _, p := range s.Points {
			fmt.Fprintf(w, "  %-18d %14.1f %16.1f %11.1f%%\n", p.Loaded, p.Plain, p.Winner, p.Reduction())
		}
		sum := s.Summarize()
		fmt.Fprintf(w, "  summary: best reduction %.1f%%, average %.1f%%, never worse: %v\n",
			sum.BestReduction, sum.AvgReduction, sum.NeverWorse)
	}
}

// RenderTable1 prints the Table 1 reproduction: runtimes with and without
// fault-tolerant proxies across worker iteration budgets.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1 — runtimes for the 100-dimensional Rosenbrock function with 7 workers")
	fmt.Fprintln(w, "(wall-clock seconds on loopback TCP; proxies checkpoint after every call)")
	fmt.Fprintf(w, "  %-12s %18s %15s %12s %13s\n", "iterations", "runtime w/o proxy", "runtime w/ proxy", "overhead", "checkpoints")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12d %17.3fs %14.3fs %11.1f%% %13d\n",
			r.Iterations, r.Plain, r.Proxy, r.OverheadPct(), r.Checkpoints)
	}
}

// RenderSeparator prints a visual divider.
func RenderSeparator(w io.Writer) {
	fmt.Fprintln(w, strings.Repeat("-", 78))
}

// RenderTraceReport prints the per-method RPC latency table and the top
// slowest traces collected by ob during a run (rosenbench -trace). Spans
// are indented by parentage; spans whose parent fell out of the ring are
// shown at top level.
func RenderTraceReport(w io.Writer, ob *obs.Observer, top int) {
	fmt.Fprintln(w, "RPC latency by method (client side)")
	snaps := ob.ClientLatency().Snapshot()
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Labels[0] < snaps[j].Labels[0] })
	fmt.Fprintf(w, "  %-18s %10s %12s %12s %12s %12s\n", "method", "calls", "mean", "p50", "p95", "p99")
	for _, s := range snaps {
		fmt.Fprintf(w, "  %-18s %10d %12s %12s %12s %12s\n", s.Labels[0], s.Count,
			fmtSeconds(s.Mean()), fmtSeconds(s.Quantile(0.5)),
			fmtSeconds(s.Quantile(0.95)), fmtSeconds(s.Quantile(0.99)))
	}

	traces := ob.Ring.Traces()
	if len(traces) > top {
		traces = traces[:top]
	}
	fmt.Fprintf(w, "\n%d slowest traces (of %d buffered)\n", len(traces), ob.Ring.Len())
	for _, tr := range traces {
		fmt.Fprintf(w, "\ntrace %s  %s  %d spans\n", tr.TraceID, fmtSeconds(tr.Duration.Seconds()), len(tr.Spans))
		inRing := make(map[obs.SpanID]bool, len(tr.Spans))
		children := make(map[obs.SpanID][]*obs.Span)
		for _, s := range tr.Spans {
			inRing[s.Context().SpanID] = true
		}
		var roots []*obs.Span
		for _, s := range tr.Spans {
			if p := s.Parent(); !p.IsZero() && inRing[p] {
				children[p] = append(children[p], s)
			} else {
				roots = append(roots, s)
			}
		}
		var dump func(s *obs.Span, depth int)
		dump = func(s *obs.Span, depth int) {
			line := fmt.Sprintf("%s%s", strings.Repeat("  ", depth+1), s.Name())
			if side, ok := s.Attr("side"); ok {
				line += " [" + side + "]"
			}
			fmt.Fprintf(w, "%-44s %12s", line, fmtSeconds(s.Duration().Seconds()))
			if e := s.Err(); e != "" {
				fmt.Fprintf(w, "  err=%s", e)
			}
			for _, ev := range s.Events() {
				fmt.Fprintf(w, "  !%s", ev.Name)
			}
			fmt.Fprintln(w)
			for _, c := range children[s.Context().SpanID] {
				dump(c, depth+1)
			}
		}
		for _, r := range roots {
			dump(r, 0)
		}
	}
}

// fmtSeconds renders a duration in seconds with an adaptive unit.
func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
