package experiments

import (
	"fmt"
	"io"
	"strings"
)

// RenderFigure3 prints the Figure 3 reproduction as text series: one block
// per case with the plain/Winner runtimes per load level and the summary
// line the paper's section 4 states.
func RenderFigure3(w io.Writer, series []Figure3Series) {
	fmt.Fprintln(w, "Figure 3 — runtime of the decomposed Rosenbrock optimization")
	fmt.Fprintln(w, "(virtual seconds; simulated 10-workstation NOW; background load = 1 process/host)")
	for _, s := range series {
		fmt.Fprintf(w, "\ncase %s (dim %d, %d workers, %d worker hosts)\n",
			s.Case.Label(), s.Case.N, s.Case.Workers, s.Case.WorkerHosts)
		fmt.Fprintf(w, "  %-18s %14s %16s %12s\n", "hosts with load", "CORBA [s]", "CORBA/Winner [s]", "reduction")
		for _, p := range s.Points {
			fmt.Fprintf(w, "  %-18d %14.1f %16.1f %11.1f%%\n", p.Loaded, p.Plain, p.Winner, p.Reduction())
		}
		sum := s.Summarize()
		fmt.Fprintf(w, "  summary: best reduction %.1f%%, average %.1f%%, never worse: %v\n",
			sum.BestReduction, sum.AvgReduction, sum.NeverWorse)
	}
}

// RenderTable1 prints the Table 1 reproduction: runtimes with and without
// fault-tolerant proxies across worker iteration budgets.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1 — runtimes for the 100-dimensional Rosenbrock function with 7 workers")
	fmt.Fprintln(w, "(wall-clock seconds on loopback TCP; proxies checkpoint after every call)")
	fmt.Fprintf(w, "  %-12s %18s %15s %12s %13s\n", "iterations", "runtime w/o proxy", "runtime w/ proxy", "overhead", "checkpoints")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12d %17.3fs %14.3fs %11.1f%% %13d\n",
			r.Iterations, r.Plain, r.Proxy, r.OverheadPct(), r.Checkpoints)
	}
}

// RenderSeparator prints a visual divider.
func RenderSeparator(w io.Writer) {
	fmt.Fprintln(w, strings.Repeat("-", 78))
}
