// Package experiments regenerates the paper's evaluation: Figure 3 (load
// distribution benefit of the Winner-enhanced naming service) and Table 1
// (runtime overhead of fault-tolerant proxies), plus the summary claims of
// section 4 and ablation sweeps over the design choices.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/ft"
	"repro/internal/naming"
	"repro/internal/rosen"
)

// Figure3Case is one problem configuration of Figure 3.
type Figure3Case struct {
	// N and Workers define the decomposed Rosenbrock problem (the paper
	// runs 30/3 and 100/7).
	N, Workers int
	// WorkerHosts is how many workstations offer worker services (the
	// paper's 30/3 scenario had "6 workstations available for the 4
	// processes": 5 worker hosts + the manager/services host; 100/7 uses
	// the whole 10-host NOW: 9 worker hosts + the manager host).
	WorkerHosts int
}

// Label renders the paper's curve label, e.g. "100/7".
func (c Figure3Case) Label() string { return fmt.Sprintf("%d/%d", c.N, c.Workers) }

// Figure3Config parameterizes the Figure 3 reproduction.
type Figure3Config struct {
	// Hosts is the NOW size (paper: 10).
	Hosts int
	// LoadedCounts is the x-axis: numbers of hosts with background load
	// (paper: 0, 2, 4, 6, 8).
	LoadedCounts []int
	// BackgroundProcs is the per-loaded-host competing process count.
	BackgroundProcs int
	// Cases are the problem configurations (paper: 100/7 and 30/3).
	Cases []Figure3Case
	// WorkerIterations / ManagerIterations are the Complex Box budgets.
	WorkerIterations  int
	ManagerIterations int
	// Seed drives all randomness.
	Seed int64
	// EvalCost is the virtual CPU cost per objective evaluation per
	// dimension (sets the virtual-seconds scale of the y-axis).
	EvalCost float64
}

// DefaultFigure3Config reproduces the paper's setup.
func DefaultFigure3Config() Figure3Config {
	return Figure3Config{
		Hosts:             10,
		LoadedCounts:      []int{0, 2, 4, 6, 8},
		BackgroundProcs:   1,
		Cases:             []Figure3Case{{N: 100, Workers: 7, WorkerHosts: 9}, {N: 30, Workers: 3, WorkerHosts: 5}},
		WorkerIterations:  120,
		ManagerIterations: 8,
		Seed:              1,
		EvalCost:          0.02,
	}
}

// Figure3Point is one x-position of one curve pair.
type Figure3Point struct {
	// Loaded is the number of hosts with background load.
	Loaded int
	// Plain and Winner are the virtual runtimes (seconds) under the
	// unmodified and the load-distribution naming service.
	Plain, Winner float64
}

// Reduction returns the runtime reduction of Winner vs plain in percent.
func (p Figure3Point) Reduction() float64 {
	if p.Plain == 0 {
		return 0
	}
	return 100 * (p.Plain - p.Winner) / p.Plain
}

// Figure3Series is one case's curve pair.
type Figure3Series struct {
	Case   Figure3Case
	Points []Figure3Point
}

// Figure3Summary aggregates the section-4 claims for one case.
type Figure3Summary struct {
	Case Figure3Case
	// BestReduction is the maximum runtime reduction (paper: ≈40%).
	BestReduction float64
	// AvgReduction is the mean reduction over all load points
	// (paper: ≈15%).
	AvgReduction float64
	// NeverWorse reports whether Winner was at least as fast as plain at
	// every point (paper: "at least the same results").
	NeverWorse bool
}

// Summarize computes the summary for one series.
func (s Figure3Series) Summarize() Figure3Summary {
	out := Figure3Summary{Case: s.Case, NeverWorse: true}
	var sum float64
	for _, p := range s.Points {
		r := p.Reduction()
		sum += r
		if r > out.BestReduction {
			out.BestReduction = r
		}
		if p.Winner > p.Plain*1.0001 { // tolerate float noise
			out.NeverWorse = false
		}
	}
	if len(s.Points) > 0 {
		out.AvgReduction = sum / float64(len(s.Points))
	}
	return out
}

// RunFigure3 executes the full sweep: for every case and every
// background-load level it measures the virtual runtime of the distributed
// decomposed-Rosenbrock optimization under the plain and the
// Winner-enhanced naming service.
func RunFigure3(cfg Figure3Config) ([]Figure3Series, error) {
	var out []Figure3Series
	for _, c := range cfg.Cases {
		series := Figure3Series{Case: c}
		for _, loaded := range cfg.LoadedCounts {
			plain, err := runFigure3Cell(cfg, c, loaded, false)
			if err != nil {
				return nil, fmt.Errorf("fig3 %s plain loaded=%d: %w", c.Label(), loaded, err)
			}
			win, err := runFigure3Cell(cfg, c, loaded, true)
			if err != nil {
				return nil, fmt.Errorf("fig3 %s winner loaded=%d: %w", c.Label(), loaded, err)
			}
			series.Points = append(series.Points, Figure3Point{Loaded: loaded, Plain: plain, Winner: win})
		}
		out = append(out, series)
	}
	return out, nil
}

// runFigure3Cell measures one (case, load level, naming mode) cell on a
// fresh deterministic environment.
func runFigure3Cell(cfg Figure3Config, c Figure3Case, loaded int, useWinner bool) (float64, error) {
	env, err := core.Start(core.EnvironmentOptions{Hosts: cfg.Hosts, UseWinner: useWinner})
	if err != nil {
		return 0, err
	}
	defer env.Close()

	hosts := env.Cluster.Hosts()
	if c.WorkerHosts+1 > len(hosts) {
		return 0, fmt.Errorf("case %s needs %d hosts, cluster has %d", c.Label(), c.WorkerHosts+1, len(hosts))
	}

	// Worker services on hosts 1..WorkerHosts (host 0 runs naming,
	// Winner and the manager process).
	name := naming.NewName(rosen.ServiceName)
	for _, h := range hosts[1 : 1+c.WorkerHosts] {
		node, err := env.NewNode(h.Name())
		if err != nil {
			return 0, err
		}
		ref := node.Adapter.Activate("worker", ft.Wrap(rosen.NewWorker(h)))
		if err := env.Naming.BindOffer(context.Background(), name, ref, h.Name()); err != nil {
			return 0, err
		}
	}

	// Background load on the first `loaded` worker hosts — the hosts the
	// plain naming service will hand out first, as in the paper's setup
	// where load lands on machines the unmodified service keeps using.
	for i := 0; i < loaded && i < c.WorkerHosts; i++ {
		hosts[1+i].SetBackground(cfg.BackgroundProcs)
	}
	env.SampleAll()

	mgrNode, err := env.NewNode(hosts[0].Name())
	if err != nil {
		return 0, err
	}
	m := rosen.NewManager(mgrNode.ORB, env.NamingClientFor(mgrNode), rosen.Config{
		N:                 c.N,
		Workers:           c.Workers,
		WorkerIterations:  cfg.WorkerIterations,
		ManagerIterations: cfg.ManagerIterations,
		Seed:              cfg.Seed,
		EvalCost:          cfg.EvalCost,
	}).OnHost(mgrNode.Host)

	res, err := m.Run(context.Background())
	if err != nil {
		return 0, err
	}
	return res.Runtime, nil
}
