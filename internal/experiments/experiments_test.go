package experiments

import (
	"strings"
	"testing"
)

// tinyFig3 keeps the sweep small enough for unit testing while preserving
// the paper's structure.
func tinyFig3() Figure3Config {
	return Figure3Config{
		Hosts:             7,
		LoadedCounts:      []int{0, 2, 4},
		BackgroundProcs:   1,
		Cases:             []Figure3Case{{N: 12, Workers: 3, WorkerHosts: 5}},
		WorkerIterations:  40,
		ManagerIterations: 4,
		Seed:              1,
		EvalCost:          0.01,
	}
}

func TestFigure3ShapeHolds(t *testing.T) {
	series, err := RunFigure3(tinyFig3())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || len(series[0].Points) != 3 {
		t.Fatalf("series shape: %+v", series)
	}
	pts := series[0].Points

	// Claim 1: with no background load the two services perform equally
	// (same placement quality, same deterministic numerics).
	p0 := pts[0]
	if rel := (p0.Plain - p0.Winner) / p0.Plain; rel > 0.05 || rel < -0.05 {
		t.Fatalf("unloaded cell differs: plain %v winner %v", p0.Plain, p0.Winner)
	}

	// Claim 2: with 2 of 5 worker hosts loaded and only 3 workers,
	// Winner avoids the loaded hosts entirely — its runtime stays at the
	// unloaded level while plain degrades.
	p2 := pts[1]
	if p2.Winner > p0.Winner*1.05 {
		t.Fatalf("winner did not avoid loaded hosts: %v vs unloaded %v", p2.Winner, p0.Winner)
	}
	if p2.Plain < p2.Winner*1.3 {
		t.Fatalf("plain not visibly slower: plain %v winner %v", p2.Plain, p2.Winner)
	}

	// Claim 3: Winner is never worse than plain.
	sum := series[0].Summarize()
	if !sum.NeverWorse {
		t.Fatalf("winner worse than plain somewhere: %+v", pts)
	}
	if sum.BestReduction < 20 {
		t.Fatalf("best reduction only %.1f%%", sum.BestReduction)
	}

	// Claim 4: with most hosts loaded the advantage diminishes.
	p4 := pts[2] // 4 of 5 worker hosts loaded, 3 workers → at least 2 on loaded hosts
	if p4.Reduction() >= p2.Reduction() {
		t.Fatalf("advantage did not diminish: %.1f%% -> %.1f%%", p2.Reduction(), p4.Reduction())
	}
}

func TestFigure3Deterministic(t *testing.T) {
	a, err := RunFigure3(tinyFig3())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFigure3(tinyFig3())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a[0].Points {
		if a[0].Points[i] != b[0].Points[i] {
			t.Fatalf("nondeterministic point %d: %+v vs %+v", i, a[0].Points[i], b[0].Points[i])
		}
	}
}

func TestFigure3RejectsOversizedCase(t *testing.T) {
	cfg := tinyFig3()
	cfg.Cases = []Figure3Case{{N: 12, Workers: 3, WorkerHosts: 99}}
	if _, err := RunFigure3(cfg); err == nil {
		t.Fatal("oversized case accepted")
	}
}

func tinyTable1() Table1Config {
	return Table1Config{
		N: 20, Workers: 3,
		Iterations:        []int{20, 400},
		ManagerIterations: 2,
		Seed:              1,
		Repeats:           1,
	}
}

func TestTable1OverheadShrinksWithWork(t *testing.T) {
	rows, err := RunTable1(tinyTable1())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Plain <= 0 || r.Proxy <= 0 {
			t.Fatalf("non-positive runtime: %+v", r)
		}
		if r.Checkpoints == 0 {
			t.Fatalf("no checkpoints recorded: %+v", r)
		}
	}
	// The paper's core observation: "the relative slowdown is lower the
	// more time is spent in the called method". Wall-clock noise can
	// wiggle single measurements, so only require monotone direction
	// with generous slack.
	if rows[1].OverheadPct() > rows[0].OverheadPct()+25 {
		t.Fatalf("overhead did not shrink: %v%% -> %v%%",
			rows[0].OverheadPct(), rows[1].OverheadPct())
	}
}

func TestTable1ProxyCostsMoreThanPlain(t *testing.T) {
	cfg := tinyTable1()
	cfg.Iterations = []int{20}
	rows, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At tiny per-call work the checkpoint round trips must dominate:
	// proxy strictly slower.
	if rows[0].Proxy <= rows[0].Plain {
		t.Fatalf("proxy not slower at tiny work: %+v", rows[0])
	}
}

func TestMixedClusterAblationWinnerFaster(t *testing.T) {
	plain, winner, err := RunMixedClusterAblation()
	if err != nil {
		t.Fatal(err)
	}
	if !(winner < plain) {
		t.Fatalf("winner %v not faster than plain %v", winner, plain)
	}
}

func TestReplicationAblationCostOrdering(t *testing.T) {
	single, err := RunReplicationAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	dual, err := RunReplicationAblation(2)
	if err != nil {
		t.Fatal(err)
	}
	if !(dual > single*1.2) {
		t.Fatalf("replication cost invisible: %v vs %v", dual, single)
	}
}

func TestSelectionAblationPolicies(t *testing.T) {
	winnerRT, err := RunSelectionAblation("winner")
	if err != nil {
		t.Fatal(err)
	}
	rrRT, err := RunSelectionAblation("roundrobin")
	if err != nil {
		t.Fatal(err)
	}
	if !(winnerRT < rrRT) {
		t.Fatalf("winner %v not faster than round-robin %v", winnerRT, rrRT)
	}
	for _, p := range []string{"random", "first"} {
		if _, err := RunSelectionAblation(p); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
	if _, err := RunSelectionAblation("nonsense"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestDecompositionAblationSpeedup(t *testing.T) {
	two, err := RunDecompositionAblation(30, 2)
	if err != nil {
		t.Fatal(err)
	}
	five, err := RunDecompositionAblation(30, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !(five < two) {
		t.Fatalf("5 workers (%v) not faster than 2 (%v)", five, two)
	}
}

func TestTable1AblationCheckpointFrequency(t *testing.T) {
	cfg := Table1Config{N: 12, Workers: 3, Iterations: []int{50},
		ManagerIterations: 2, Seed: 1, Repeats: 1}
	everyCall, err := RunTable1Ablation(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	every10, err := RunTable1Ablation(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	if everyCall[0].Checkpoints <= every10[0].Checkpoints {
		t.Fatalf("checkpoint counts not ordered: %d vs %d",
			everyCall[0].Checkpoints, every10[0].Checkpoints)
	}
}

func TestDefaultConfigsSane(t *testing.T) {
	f := DefaultFigure3Config()
	if f.Hosts != 10 || len(f.Cases) != 2 || len(f.LoadedCounts) != 5 {
		t.Fatalf("fig3 default = %+v", f)
	}
	tb := DefaultTable1Config()
	if tb.N != 100 || tb.Workers != 7 || len(tb.Iterations) == 0 {
		t.Fatalf("table1 default = %+v", tb)
	}
}

func TestLatencyAblationMonotone(t *testing.T) {
	lan, err := RunLatencyAblation(0)
	if err != nil {
		t.Fatal(err)
	}
	wan, err := RunLatencyAblation(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if wan <= lan {
		t.Fatalf("latency had no cost: %v vs %v", wan, lan)
	}
}

func TestRenderers(t *testing.T) {
	var sb strings.Builder
	series := []Figure3Series{{
		Case:   Figure3Case{N: 30, Workers: 3, WorkerHosts: 5},
		Points: []Figure3Point{{Loaded: 0, Plain: 100, Winner: 100}, {Loaded: 2, Plain: 140, Winner: 100}},
	}}
	RenderFigure3(&sb, series)
	out := sb.String()
	for _, want := range []string{"Figure 3", "30/3", "CORBA/Winner", "never worse: true", "28.6%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}

	sb.Reset()
	RenderTable1(&sb, []Table1Row{{Iterations: 10000, Plain: 1, Proxy: 3.2, Checkpoints: 70}})
	out = sb.String()
	for _, want := range []string{"Table 1", "10000", "220.0%", "70"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	sb.Reset()
	RenderSeparator(&sb)
	if sb.Len() == 0 {
		t.Fatal("separator empty")
	}
}

func TestFigure3PointReduction(t *testing.T) {
	if r := (Figure3Point{Plain: 0, Winner: 0}).Reduction(); r != 0 {
		t.Fatalf("zero plain reduction = %v", r)
	}
	if r := (Figure3Point{Plain: 200, Winner: 100}).Reduction(); r != 50 {
		t.Fatalf("reduction = %v", r)
	}
}

func TestTable1RowOverhead(t *testing.T) {
	if o := (Table1Row{Plain: 0}).OverheadPct(); o != 0 {
		t.Fatalf("overhead = %v", o)
	}
	if o := (Table1Row{Plain: 2, Proxy: 3}).OverheadPct(); o != 50 {
		t.Fatalf("overhead = %v", o)
	}
}
