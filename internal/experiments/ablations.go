package experiments

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ft"
	"repro/internal/naming"
	"repro/internal/rosen"
)

// RunTable1Ablation is the Table 1 cell with a configurable checkpoint
// frequency: every=1 is the paper's checkpoint-after-each-call policy;
// larger values amortize the overhead over several calls at the price of
// a longer recovery replay window.
func RunTable1Ablation(cfg Table1Config, checkpointEvery int) ([]Table1Row, error) {
	return RunTable1AblationPolicy(cfg, ft.Policy{CheckpointEvery: checkpointEvery})
}

// RunTable1AblationPolicy is the Table 1 cell with a fully configurable
// checkpoint policy, for ablating the data-path knobs: delta encoding,
// compression, and async pipelining. The returned rows carry the
// checkpoint byte volume so encodings can be compared directly.
func RunTable1AblationPolicy(cfg Table1Config, policy ft.Policy) ([]Table1Row, error) {
	if cfg.Repeats <= 0 {
		cfg.Repeats = 1
	}
	var rows []Table1Row
	for _, iters := range cfg.Iterations {
		w, err := newTable1World(cfg.Workers, cfg.Observer)
		if err != nil {
			return nil, err
		}
		plainRes, err := rosen.NewManager(w.manager, w.naming, rosen.Config{
			N: cfg.N, Workers: cfg.Workers, WorkerIterations: iters,
			ManagerIterations: cfg.ManagerIterations, Seed: cfg.Seed,
		}).Run(context.Background())
		w.close()
		if err != nil {
			return nil, err
		}

		w2, err := newTable1World(cfg.Workers, cfg.Observer)
		if err != nil {
			return nil, err
		}
		mgr := rosen.NewManager(w2.manager, w2.naming, rosen.Config{
			N: cfg.N, Workers: cfg.Workers, WorkerIterations: iters,
			ManagerIterations: cfg.ManagerIterations, Seed: cfg.Seed,
		}).WithFT(rosen.FTOptions{
			Store:  w2.store,
			Policy: policy,
		})
		proxyRes, err := mgr.Run(context.Background())
		stats := mgr.ProxyStats()
		w2.close()
		if err != nil {
			return nil, err
		}

		rows = append(rows, Table1Row{
			Iterations:       iters,
			Plain:            plainRes.Runtime,
			Proxy:            proxyRes.Runtime,
			Checkpoints:      stats.Checkpoints,
			CheckpointBytes:  stats.CheckpointBytes,
			DeltaCheckpoints: stats.DeltaCheckpoints,
		})
	}
	return rows, nil
}

// RunSelectionAblation measures the virtual runtime of a fixed partially
// loaded scenario (8 hosts, 3 of 6 worker hosts loaded, 30-dim / 3
// workers) under different host-selection policies behind the same naming
// service interface.
func RunSelectionAblation(policy string) (float64, error) {
	useWinner := policy == "winner"
	env, err := core.Start(core.EnvironmentOptions{Hosts: 8, UseWinner: useWinner})
	if err != nil {
		return 0, err
	}
	defer env.Close()

	if !useWinner {
		// Swap in the requested baseline selector.
		var sel naming.Selector
		switch policy {
		case "roundrobin":
			sel = naming.RoundRobinSelector()
		case "random":
			sel = naming.RandomSelector(nil)
		case "first":
			sel = naming.FirstSelector()
		default:
			return 0, fmt.Errorf("unknown policy %q", policy)
		}
		reg := naming.NewRegistry()
		ref := env.ServiceNode.Adapter.Activate(naming.DefaultKey+"-ablate", naming.NewServant(reg, sel))
		env.Naming = naming.NewClient(env.ServiceNode.ORB, ref)
	}

	name := naming.NewName(rosen.ServiceName)
	hosts := env.Cluster.Hosts()
	for _, h := range hosts[1:7] {
		node, err := env.NewNode(h.Name())
		if err != nil {
			return 0, err
		}
		ref := node.Adapter.Activate("worker", ft.Wrap(rosen.NewWorker(h)))
		if err := env.Naming.BindOffer(context.Background(), name, ref, h.Name()); err != nil {
			return 0, err
		}
	}
	for i := 1; i <= 3; i++ {
		hosts[i].SetBackground(1)
	}
	env.SampleAll()

	mgrNode, err := env.NewNode(hosts[0].Name())
	if err != nil {
		return 0, err
	}
	res, err := rosen.NewManager(mgrNode.ORB, env.NamingClientFor(mgrNode), rosen.Config{
		N: 30, Workers: 3,
		WorkerIterations:  80,
		ManagerIterations: 5,
		Seed:              1,
		EvalCost:          0.02,
	}).OnHost(mgrNode.Host).Run(context.Background())
	if err != nil {
		return 0, err
	}
	return res.Runtime, nil
}

// RunMixedClusterAblation runs the 30/3 workload on a heterogeneous NOW
// — the "networks of mixed uniprocessor/multiprocessor workstations"
// Winner was built for. The cluster registers three slow uniprocessors
// first, then two modern SMP machines, and every host carries one
// background process: the plain naming service walks the registration
// order onto the slow machines while Winner finds the multiprocessors.
// Returns plain and Winner virtual runtimes.
func RunMixedClusterAblation() (plain, winner float64, err error) {
	run := func(useWinner bool) (float64, error) {
		c := cluster.New()
		c.Add(cluster.NewHost("svc", 1)) // service/manager host
		c.Add(cluster.NewHost("old0", 0.5))
		c.Add(cluster.NewHost("old1", 0.5))
		c.Add(cluster.NewHost("old2", 0.5))
		c.Add(cluster.NewHostMP("smp0", 1, 4))
		c.Add(cluster.NewHostMP("smp1", 1, 4))
		env, err := core.StartOn(c, core.EnvironmentOptions{UseWinner: useWinner})
		if err != nil {
			return 0, err
		}
		defer env.Close()

		name := naming.NewName(rosen.ServiceName)
		for _, h := range c.Hosts()[1:] {
			node, err := env.NewNode(h.Name())
			if err != nil {
				return 0, err
			}
			ref := node.Adapter.Activate("worker", ft.Wrap(rosen.NewWorker(h)))
			if err := env.Naming.BindOffer(context.Background(), name, ref, h.Name()); err != nil {
				return 0, err
			}
			h.SetBackground(1)
		}
		env.SampleAll()

		mgrNode, err := env.NewNode("svc")
		if err != nil {
			return 0, err
		}
		res, err := rosen.NewManager(mgrNode.ORB, env.NamingClientFor(mgrNode), rosen.Config{
			N: 30, Workers: 3,
			WorkerIterations:  80,
			ManagerIterations: 5,
			Seed:              1,
			EvalCost:          0.02,
		}).OnHost(mgrNode.Host).Run(context.Background())
		if err != nil {
			return 0, err
		}
		return res.Runtime, nil
	}
	if plain, err = run(false); err != nil {
		return 0, 0, err
	}
	if winner, err = run(true); err != nil {
		return 0, 0, err
	}
	return plain, winner, nil
}

// RunReplicationAblation contrasts the paper's checkpoint/restart design
// against active replication (the Piranha/IGOR style it argues against):
// the same 7-worker problem on a 10-host NOW, fault tolerance provided
// either by checkpointing proxies (replicas <= 1) or by replica groups of
// the given size. Active replicas compete for hosts, so the parallel
// application loses throughput exactly as the paper predicts ("not
// desirable to use a large amount of the computational resources
// exclusively for availability"). Returns the virtual runtime. Colocated
// replicas time-share their host, which makes the overlap — and therefore
// the exact runtime — mildly schedule-dependent; the slowdown ordering is
// stable.
func RunReplicationAblation(replicas int) (float64, error) {
	env, err := core.Start(core.EnvironmentOptions{Hosts: 10, UseWinner: true})
	if err != nil {
		return 0, err
	}
	defer env.Close()

	name := naming.NewName(rosen.ServiceName)
	hosts := env.Cluster.Hosts()
	for _, h := range hosts[1:] {
		node, err := env.NewNode(h.Name())
		if err != nil {
			return 0, err
		}
		ref := node.Adapter.Activate("worker", ft.Wrap(rosen.NewWorker(h)))
		if err := env.Naming.BindOffer(context.Background(), name, ref, h.Name()); err != nil {
			return 0, err
		}
	}
	env.SampleAll()

	mgrNode, err := env.NewNode(hosts[0].Name())
	if err != nil {
		return 0, err
	}
	cfg := rosen.Config{
		N: 100, Workers: 7,
		WorkerIterations:  80,
		ManagerIterations: 5,
		Seed:              1,
		EvalCost:          0.02,
	}
	m := rosen.NewManager(mgrNode.ORB, env.NamingClientFor(mgrNode), cfg).OnHost(mgrNode.Host)
	if replicas > 1 {
		cfg.Replication = replicas
		m = rosen.NewManager(mgrNode.ORB, env.NamingClientFor(mgrNode), cfg).OnHost(mgrNode.Host)
	} else {
		m.WithFT(rosen.FTOptions{
			Store:  ft.NewMemStore(),
			Policy: ft.Policy{CheckpointEvery: 1},
		})
	}
	res, err := m.Run(context.Background())
	if err != nil {
		return 0, err
	}
	return res.Runtime, nil
}

// RunLatencyAblation measures the virtual runtime of a fixed unloaded
// scenario across one-way network latencies — the paper's future-work
// item (c), CORBA-based metacomputing over wide-area networks: how far
// can link latency grow before it dominates the decomposed optimization's
// runtime?
func RunLatencyAblation(latencySeconds float64) (float64, error) {
	env, err := core.Start(core.EnvironmentOptions{Hosts: 4, UseWinner: true, Latency: latencySeconds})
	if err != nil {
		return 0, err
	}
	defer env.Close()

	name := naming.NewName(rosen.ServiceName)
	hosts := env.Cluster.Hosts()
	for _, h := range hosts[1:] {
		node, err := env.NewNode(h.Name())
		if err != nil {
			return 0, err
		}
		ref := node.Adapter.Activate("worker", ft.Wrap(rosen.NewWorker(h)))
		if err := env.Naming.BindOffer(context.Background(), name, ref, h.Name()); err != nil {
			return 0, err
		}
	}
	env.SampleAll()

	mgrNode, err := env.NewNode(hosts[0].Name())
	if err != nil {
		return 0, err
	}
	res, err := rosen.NewManager(mgrNode.ORB, env.NamingClientFor(mgrNode), rosen.Config{
		N: 30, Workers: 3,
		WorkerIterations:  80,
		ManagerIterations: 5,
		Seed:              1,
		EvalCost:          0.02,
	}).OnHost(mgrNode.Host).Run(context.Background())
	if err != nil {
		return 0, err
	}
	return res.Runtime, nil
}

// RunDecompositionAblation measures the virtual runtime of an n-dim
// problem split across the given worker count on an unloaded NOW with one
// worker host per worker.
func RunDecompositionAblation(n, workers int) (float64, error) {
	env, err := core.Start(core.EnvironmentOptions{Hosts: workers + 1, UseWinner: true})
	if err != nil {
		return 0, err
	}
	defer env.Close()

	name := naming.NewName(rosen.ServiceName)
	hosts := env.Cluster.Hosts()
	for _, h := range hosts[1:] {
		node, err := env.NewNode(h.Name())
		if err != nil {
			return 0, err
		}
		ref := node.Adapter.Activate("worker", ft.Wrap(rosen.NewWorker(h)))
		if err := env.Naming.BindOffer(context.Background(), name, ref, h.Name()); err != nil {
			return 0, err
		}
	}
	env.SampleAll()

	mgrNode, err := env.NewNode(hosts[0].Name())
	if err != nil {
		return 0, err
	}
	res, err := rosen.NewManager(mgrNode.ORB, env.NamingClientFor(mgrNode), rosen.Config{
		N: n, Workers: workers,
		WorkerIterations:  80,
		ManagerIterations: 5,
		Seed:              1,
		EvalCost:          0.02,
	}).OnHost(mgrNode.Host).Run(context.Background())
	if err != nil {
		return 0, err
	}
	return res.Runtime, nil
}
