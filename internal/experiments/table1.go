package experiments

import (
	"context"
	"fmt"

	"repro/internal/ft"
	"repro/internal/naming"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/rosen"
)

// Table1Config parameterizes the proxy-overhead measurement. Unlike
// Figure 3 this experiment runs in real time: the quantity measured is
// genuine middleware overhead (extra TCP round trips and marshalling per
// call), which the local stack possesses, so no simulation is needed.
type Table1Config struct {
	// N and Workers define the problem (paper: 100/7).
	N, Workers int
	// Iterations is the sweep of worker Complex Box budgets (the paper's
	// varying "number of worker iterations", 10k–50k).
	Iterations []int
	// ManagerIterations bounds the manager's loop (kept small so each
	// cell is one comparable batch of worker rounds).
	ManagerIterations int
	// Seed drives all randomness.
	Seed int64
	// Repeats runs each cell several times and keeps the minimum runtime
	// (the standard way to suppress wall-clock noise in microbenchmarks).
	Repeats int
	// Observer, when set, is attached to every ORB of the measured
	// deployment: RPC spans and latency histograms from all processes
	// land in its ring/registry (rosenbench -trace).
	Observer *obs.Observer `json:"-"`
}

// DefaultTable1Config reproduces the paper's sweep, extended downward so
// the high-overhead regime (the paper's >200% rows were measured with a
// deliberately unoptimized store) is visible on a fast modern stack.
func DefaultTable1Config() Table1Config {
	return Table1Config{
		N: 100, Workers: 7,
		Iterations:        []int{10, 100, 1000, 10000, 20000, 30000, 40000, 50000},
		ManagerIterations: 3,
		Seed:              1,
		Repeats:           3,
	}
}

// Table1Row is one line of the table.
type Table1Row struct {
	// Iterations is the worker iteration budget.
	Iterations int
	// Plain and Proxy are wall-clock runtimes in seconds without and
	// with fault-tolerant proxies.
	Plain, Proxy float64
	// Checkpoints counts checkpoints stored during the proxy run.
	Checkpoints uint64
	// CheckpointBytes is the payload volume actually written to the
	// checkpoint store during the proxy run (after delta encoding and
	// compression, where enabled).
	CheckpointBytes uint64
	// DeltaCheckpoints counts checkpoints that shipped as deltas.
	DeltaCheckpoints uint64
}

// OverheadPct is the paper's overhead column: (proxy-plain)/plain·100.
func (r Table1Row) OverheadPct() float64 {
	if r.Plain == 0 {
		return 0
	}
	return 100 * (r.Proxy - r.Plain) / r.Plain
}

// table1World is the real-time deployment: a services process (naming +
// checkpoint store), one process per worker, and a manager process, all
// over loopback TCP.
type table1World struct {
	services *orb.ORB
	workers  []*orb.ORB
	manager  *orb.ORB
	naming   *naming.Client
	store    *ft.StoreClient
}

func newTable1World(workers int, ob *obs.Observer) (*table1World, error) {
	var cis []orb.CallInterceptor
	if ob != nil {
		cis = []orb.CallInterceptor{ob}
	}
	// With an observer attached, every ORB of the deployment also feeds
	// its black-box flight recorder, so a post-run report (or an anomaly
	// dump) can replay the deployment-wide request tail.
	attach := func(o *orb.ORB) *orb.ORB {
		if ob != nil {
			o.AttachFlightRecorder(ob.Flight)
		}
		return o
	}
	w := &table1World{}
	w.services = attach(orb.New(orb.Options{Name: "services", CallInterceptors: cis}))
	ad, err := w.services.NewAdapter("127.0.0.1:0")
	if err != nil {
		w.close()
		return nil, err
	}
	reg := naming.NewRegistry()
	nsRef := ad.Activate(naming.DefaultKey, naming.NewServant(reg, naming.RoundRobinSelector()))
	storeRef := ad.Activate(ft.StoreDefaultKey, ft.NewStoreServant(ft.NewMemStore()))

	w.manager = attach(orb.New(orb.Options{Name: "manager", CallInterceptors: cis}))
	w.naming = naming.NewClient(w.manager, nsRef)
	w.store = ft.NewStoreClient(w.manager, storeRef)

	name := naming.NewName(rosen.ServiceName)
	for j := 0; j < workers; j++ {
		wo := attach(orb.New(orb.Options{Name: fmt.Sprintf("worker%d", j), CallInterceptors: cis}))
		wad, err := wo.NewAdapter("127.0.0.1:0")
		if err != nil {
			w.close()
			return nil, err
		}
		ref := wad.Activate("worker", ft.Wrap(rosen.NewWorker(nil)))
		if err := w.naming.BindOffer(context.Background(), name, ref, fmt.Sprintf("host%d", j)); err != nil {
			w.close()
			return nil, err
		}
		w.workers = append(w.workers, wo)
	}
	return w, nil
}

func (w *table1World) close() {
	for _, o := range w.workers {
		o.Shutdown()
	}
	if w.manager != nil {
		w.manager.Shutdown()
	}
	if w.services != nil {
		w.services.Shutdown()
	}
}

// RunTable1 executes the sweep: for each worker-iteration budget it runs
// the 100-dimensional, 7-worker optimization with plain stubs and with
// checkpoint-after-every-call proxies, reporting the minimum wall-clock
// runtime over Repeats runs and the overhead percentage. One unmeasured
// warm-up run absorbs one-time process costs (page-in, first GC, TCP
// stack warm-up) that would otherwise be charged to the first cell.
func RunTable1(cfg Table1Config) ([]Table1Row, error) {
	if cfg.Repeats <= 0 {
		cfg.Repeats = 1
	}
	warm := cfg
	warm.Iterations = nil
	if _, _, err := runTable1Cell(warm, 20, false); err != nil {
		return nil, fmt.Errorf("table1 warm-up: %w", err)
	}
	var rows []Table1Row
	for _, iters := range cfg.Iterations {
		row := Table1Row{Iterations: iters}
		for rep := 0; rep < cfg.Repeats; rep++ {
			plain, _, err := runTable1Cell(cfg, iters, false)
			if err != nil {
				return nil, fmt.Errorf("table1 iters=%d plain: %w", iters, err)
			}
			proxy, ckpts, err := runTable1Cell(cfg, iters, true)
			if err != nil {
				return nil, fmt.Errorf("table1 iters=%d proxy: %w", iters, err)
			}
			if rep == 0 || plain < row.Plain {
				row.Plain = plain
			}
			if rep == 0 || proxy < row.Proxy {
				row.Proxy = proxy
			}
			row.Checkpoints = ckpts
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runTable1Cell(cfg Table1Config, iters int, useProxy bool) (float64, uint64, error) {
	w, err := newTable1World(cfg.Workers, cfg.Observer)
	if err != nil {
		return 0, 0, err
	}
	defer w.close()

	m := rosen.NewManager(w.manager, w.naming, rosen.Config{
		N:                 cfg.N,
		Workers:           cfg.Workers,
		WorkerIterations:  iters,
		ManagerIterations: cfg.ManagerIterations,
		Seed:              cfg.Seed,
	})
	if useProxy {
		m.WithFT(rosen.FTOptions{
			Store:    w.store,
			Policy:   ft.Policy{CheckpointEvery: 1},
			Unbinder: w.naming,
		})
	}
	res, err := m.Run(context.Background())
	if err != nil {
		return 0, 0, err
	}
	var ckpts uint64
	if useProxy {
		// Checkpoint count equals successful worker calls (one per call).
		ckpts = uint64(res.WorkerCalls)
	}
	return res.Runtime, ckpts, nil
}
