package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/cdr"
	"repro/internal/orb"
)

// SaturateConfig parameterizes the reactor saturation sweep: a single
// client/server pair over loopback TCP, hammered by an increasing number
// of concurrent callers so the server's batched receive path and reply
// coalescing get progressively more pipelining to exploit.
type SaturateConfig struct {
	// Concurrency is the sweep of concurrent caller counts.
	Concurrency []int
	// Duration is the measured window per sweep point.
	Duration time.Duration
	// PayloadDoubles sizes the echoed float64 sequence.
	PayloadDoubles int
	// WorkerPool, ReadBatch and ReplyCoalesceWindow are passed through to
	// the server ORB (zero keeps each knob's default).
	WorkerPool          int
	ReadBatch           int
	ReplyCoalesceWindow time.Duration
}

// DefaultSaturateConfig sweeps 1..64 callers for a quarter second each —
// enough to show the batching ratio climbing with offered load without
// turning a CI bench job into a soak.
func DefaultSaturateConfig() SaturateConfig {
	return SaturateConfig{
		Concurrency:         []int{1, 4, 16, 64},
		Duration:            250 * time.Millisecond,
		PayloadDoubles:      16,
		ReplyCoalesceWindow: 100 * time.Microsecond,
	}
}

// SaturateRow is one sweep point.
type SaturateRow struct {
	// Concurrency is the number of concurrent callers.
	Concurrency int
	// Calls is the number of completed round trips in the window.
	Calls uint64
	// CallsPerSec is the observed throughput.
	CallsPerSec float64
	// FramesPerRead is the server's batching ratio for this point: GIOP
	// frames delivered per read syscall.
	FramesPerRead float64
	// FlushesCoalesced counts server replies that shared a flush syscall.
	FlushesCoalesced uint64
}

// saturateServant echoes a float64 sequence (the data-path benchmark
// operation, minus any application work).
type saturateServant struct{}

func (saturateServant) TypeID() string { return "IDL:repro/Echo:1.0" }

func (saturateServant) Invoke(_ *orb.ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	if op != "echo" {
		return orb.BadOperation(op)
	}
	v := in.GetFloat64Seq()
	if err := in.Err(); err != nil {
		return err
	}
	out.PutFloat64Seq(v)
	return nil
}

// RunSaturate executes the sweep. Each point gets a fresh client/server
// pair so per-point stats are clean deltas.
func RunSaturate(cfg SaturateConfig) ([]SaturateRow, error) {
	rows := make([]SaturateRow, 0, len(cfg.Concurrency))
	for _, c := range cfg.Concurrency {
		row, err := runSaturatePoint(cfg, c)
		if err != nil {
			return nil, fmt.Errorf("saturate c=%d: %w", c, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runSaturatePoint(cfg SaturateConfig, concurrency int) (SaturateRow, error) {
	srv := orb.New(orb.Options{
		Name:                "saturate-srv",
		WorkerPool:          cfg.WorkerPool,
		ReadBatch:           cfg.ReadBatch,
		ReplyCoalesceWindow: cfg.ReplyCoalesceWindow,
	})
	defer srv.Shutdown()
	ad, err := srv.NewAdapter("127.0.0.1:0")
	if err != nil {
		return SaturateRow{}, err
	}
	ref := ad.Activate("echo", saturateServant{})

	cli := orb.New(orb.Options{Name: "saturate-cli"})
	defer cli.Shutdown()

	args := make([]float64, cfg.PayloadDoubles)
	for i := range args {
		args[i] = float64(i)
	}
	writeArgs := func(e *cdr.Encoder) { e.PutFloat64Seq(args) }

	// Warm the connection (and the pools) outside the window.
	if err := cli.Call(context.Background(), ref, "echo", writeArgs, nil); err != nil {
		return SaturateRow{}, err
	}
	before := srv.Stats()

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()
	var wg sync.WaitGroup
	calls := make([]uint64, concurrency)
	errs := make(chan error, concurrency)
	for g := 0; g < concurrency; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var out []float64
			readReply := func(d *cdr.Decoder) error {
				out = d.GetFloat64Seq()
				return d.Err()
			}
			for ctx.Err() == nil {
				err := cli.Call(context.Background(), ref, "echo", writeArgs, readReply)
				if err != nil {
					errs <- err
					return
				}
				calls[g]++
			}
			_ = out
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return SaturateRow{}, err
	default:
	}

	after := srv.Stats()
	row := SaturateRow{Concurrency: concurrency}
	for _, n := range calls {
		row.Calls += n
	}
	row.CallsPerSec = float64(row.Calls) / cfg.Duration.Seconds()
	if reads := after.FrameReads - before.FrameReads; reads > 0 {
		row.FramesPerRead = float64(after.FramesRead-before.FramesRead) / float64(reads)
	}
	row.FlushesCoalesced = after.ServerFlushesCoalesced - before.ServerFlushesCoalesced
	return row, nil
}

// RenderSaturate prints the sweep as an aligned table.
func RenderSaturate(w io.Writer, rows []SaturateRow) {
	fmt.Fprintf(w, "Reactor saturation sweep (loopback TCP, echo)\n")
	fmt.Fprintf(w, "%12s %12s %14s %14s %18s\n",
		"concurrency", "calls", "calls/sec", "frames/read", "flushes coalesced")
	for _, r := range rows {
		fmt.Fprintf(w, "%12d %12d %14.0f %14.2f %18d\n",
			r.Concurrency, r.Calls, r.CallsPerSec, r.FramesPerRead, r.FlushesCoalesced)
	}
}
