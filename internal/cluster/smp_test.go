package cluster

import (
	"sync"
	"testing"
)

func TestSMPHostFullSpeedUpToCPUCount(t *testing.T) {
	h := NewHostMP("smp", 1, 4)
	if h.CPUs() != 4 {
		t.Fatalf("cpus = %d", h.CPUs())
	}
	// Three background processes + one job = 4 runnable on 4 CPUs: the
	// job still runs at full speed.
	h.SetBackground(3)
	if got := h.EffectiveSpeed(); got != 1 {
		t.Fatalf("eff = %v", got)
	}
	if err := h.Compute(2); err != nil {
		t.Fatal(err)
	}
	if got := h.Clock().Now(); got != 2 {
		t.Fatalf("clock = %v", got)
	}
}

func TestSMPHostTimeSharesBeyondCPUs(t *testing.T) {
	h := NewHostMP("smp", 1, 2)
	h.SetBackground(3) // demand 4 on 2 CPUs → share 0.5
	if got := h.EffectiveSpeed(); got != 0.5 {
		t.Fatalf("eff = %v", got)
	}
	if err := h.Compute(1); err != nil {
		t.Fatal(err)
	}
	if got := h.Clock().Now(); got != 2 {
		t.Fatalf("clock = %v", got)
	}
}

func TestSMPColocatedJobsShareFairly(t *testing.T) {
	h := NewHostMP("smp", 1, 2)
	// Two concurrent jobs on two CPUs: no slowdown.
	h.BeginJob()
	h.BeginJob()
	if err := h.Compute(3); err != nil {
		t.Fatal(err)
	}
	if got := h.Clock().Now(); got != 3 {
		t.Fatalf("clock = %v", got)
	}
	// A third job pushes demand to 3 on 2 CPUs → share 2/3.
	h.BeginJob()
	if err := h.Compute(2); err != nil {
		t.Fatal(err)
	}
	if got := h.Clock().Now(); got != 6 {
		t.Fatalf("clock = %v", got)
	}
	h.EndJob()
	h.EndJob()
	h.EndJob()
}

func TestSMPSampleCarriesCPUs(t *testing.T) {
	h := NewHostMP("smp", 1.5, 8)
	s := h.Sample()
	if s.CPUs != 8 || s.Speed != 1.5 {
		t.Fatalf("sample = %+v", s)
	}
}

func TestNewHostMPCoercesBadValues(t *testing.T) {
	h := NewHostMP("x", -1, 0)
	if h.Speed() != 1 || h.CPUs() != 1 {
		t.Fatalf("host = speed %v cpus %d", h.Speed(), h.CPUs())
	}
}

func TestSMPConcurrentComputeSafe(t *testing.T) {
	h := NewHostMP("smp", 1, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.BeginJob()
			defer h.EndJob()
			for i := 0; i < 100; i++ {
				if err := h.Compute(0.001); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if h.Clock().Now() <= 0 {
		t.Fatal("no time advanced")
	}
}
