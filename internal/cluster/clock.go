// Package cluster simulates the paper's testbed: a network of workstations
// (NOW) with per-host relative speeds, background load, failure injection,
// and a Lamport-style virtual clock per host that is propagated through
// GIOP service contexts on every request and reply.
//
// Virtual time substitutes for the paper's wall-clock measurements on ten
// real workstations: compute cost is charged explicitly via Host.Compute,
// so experiment runtimes are deterministic and independent of the noisy
// physical CPU the simulation happens to run on, while every invocation
// still travels the real ORB/TCP stack.
package cluster

import (
	"sync"
	"time"
)

// Clock is a monotone virtual clock measured in seconds. It follows
// Lamport's rules: local work advances it, received messages merge it
// forward to the sender's stamp. It is safe for concurrent use.
type Clock struct {
	mu  sync.Mutex
	now float64
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d seconds (negative d is ignored)
// and returns the new time.
func (c *Clock) Advance(d float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now += d
	}
	return c.now
}

// Merge moves the clock forward to t if t is ahead (Lamport receive rule)
// and returns the new time.
func (c *Clock) Merge(t float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Reset sets the clock back to zero (between experiment runs).
func (c *Clock) Reset() {
	c.mu.Lock()
	c.now = 0
	c.mu.Unlock()
}

// AsDuration renders a virtual-seconds value as a time.Duration for
// display.
func AsDuration(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second))
}
