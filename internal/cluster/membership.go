package cluster

import (
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// EventKind classifies a membership transition.
type EventKind uint8

const (
	// Join: a host became part of the live pool (first offer bound, first
	// load sample, or explicit report).
	Join EventKind = iota + 1
	// Leave: a host left the pool (lease expiry, failure-detector
	// eviction, pushed invalidation, explicit report). However many
	// subsystems notice the same death, exactly one Leave is emitted.
	Leave
	// Degrading: the host is still alive but its Winner load trend
	// (effective speed over its observed peak) stayed below the configured
	// threshold for K consecutive samples — the signal proactive migration
	// acts on before the host dies.
	Degrading
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case Join:
		return "join"
	case Leave:
		return "leave"
	case Degrading:
		return "degrading"
	default:
		return "unknown"
	}
}

// Event is one membership transition. Events carry a per-membership
// sequence number; every subscriber observes the same events in the same
// (Seq) order.
type Event struct {
	Kind EventKind
	Host string
	// Seq is the membership-wide sequence number of this event.
	Seq uint64
	// Eff is the host's last known effective speed (0 if never sampled).
	Eff float64
	// Trend is Eff over the host's peak effective speed at emission time
	// (meaningful for Degrading events; 0 when no peak is known).
	Trend float64
	// Source names the subsystem whose report caused the transition
	// ("winner", "lease", "detector", "push", ...). With several
	// subsystems racing to report the same death, Source records the one
	// that got there first.
	Source string
}

// MemberInfo is a point-in-time view of one host.
type MemberInfo struct {
	Host     string
	Alive    bool
	Eff      float64
	Peak     float64
	Trend    float64
	Degraded bool
}

// memberState is the internal per-host record.
type memberState struct {
	alive    bool
	eff      float64
	peak     float64
	below    int // consecutive samples with trend below threshold
	degraded bool
}

// MemberOption customizes a Membership.
type MemberOption func(*Membership)

// WithDegradeTrend sets the load-trend threshold: a host whose effective
// speed falls below trend×peak for DegradeSamples consecutive samples
// emits Degrading (default 0.5).
func WithDegradeTrend(trend float64) MemberOption {
	return func(m *Membership) {
		if trend > 0 && trend < 1 {
			m.degradeTrend = trend
		}
	}
}

// WithDegradeSamples sets K, the consecutive below-threshold samples
// required before Degrading fires (default 3) — one noisy sample must not
// trigger a migration.
func WithDegradeSamples(k int) MemberOption {
	return func(m *Membership) {
		if k > 0 {
			m.degradeSamples = k
		}
	}
}

// WithMembershipLogger records every emitted event on l.
func WithMembershipLogger(l *slog.Logger) MemberOption {
	return func(m *Membership) { m.logger = l }
}

// Membership is the unified, subscribable view of the live host pool.
// What was previously scattered — winner.Manager load samples, leased
// naming offers, ft.Detector evictions, pushed ns_invalidate membership —
// funnels into one place that dedups racing reports (a single death is
// one Leave, however many subsystems notice it) and derives the
// Degrading signal from Winner load trends. The elastic manager, the
// proactive migrator and the daemons all consume this one view.
// All methods are safe for concurrent use.
type Membership struct {
	degradeTrend   float64
	degradeSamples int
	logger         *slog.Logger

	mu      sync.Mutex
	hosts   map[string]*memberState
	seq     uint64
	subs    map[uint64]*memberSub
	nextSub uint64

	joins      atomic.Uint64
	leaves     atomic.Uint64
	degradings atomic.Uint64
}

// NewMembership creates an empty membership view.
func NewMembership(opts ...MemberOption) *Membership {
	m := &Membership{
		degradeTrend:   0.5,
		degradeSamples: 3,
		hosts:          make(map[string]*memberState),
		subs:           make(map[uint64]*memberSub),
	}
	for _, opt := range opts {
		opt(m)
	}
	return m
}

// memberSub is one subscription: an ordered queue drained by a pump
// goroutine, so reporters never block on a slow subscriber and every
// subscriber still sees every event in order.
type memberSub struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Event
	closed bool
	done   chan struct{}
	ch     chan Event
}

// Subscribe registers an event listener. The returned channel delivers
// every subsequent event in sequence order; the cancel function
// unregisters the subscription and closes the channel. Subscribe first,
// then Snapshot/Alive, to observe every transition after the snapshot.
func (m *Membership) Subscribe() (<-chan Event, func()) {
	s := &memberSub{ch: make(chan Event, 16), done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	m.mu.Lock()
	id := m.nextSub
	m.nextSub++
	m.subs[id] = s
	m.mu.Unlock()
	go s.pump()
	cancel := func() {
		m.mu.Lock()
		delete(m.subs, id)
		m.mu.Unlock()
		s.mu.Lock()
		if !s.closed {
			s.closed = true
			close(s.done)
		}
		s.mu.Unlock()
		s.cond.Broadcast()
	}
	return s.ch, cancel
}

func (s *memberSub) pump() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 && s.closed {
			s.mu.Unlock()
			close(s.ch)
			return
		}
		ev := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		select {
		case s.ch <- ev:
		case <-s.done:
			close(s.ch)
			return
		}
	}
}

// enqueue appends ev to the subscription queue. Called under m.mu so the
// relative order of events is identical across subscribers.
func (s *memberSub) enqueue(ev Event) {
	s.mu.Lock()
	if !s.closed {
		s.queue = append(s.queue, ev)
	}
	s.mu.Unlock()
	s.cond.Signal()
}

// emit assigns the next sequence number and fans ev out. Callers hold m.mu.
func (m *Membership) emit(ev Event) {
	m.seq++
	ev.Seq = m.seq
	switch ev.Kind {
	case Join:
		m.joins.Add(1)
	case Leave:
		m.leaves.Add(1)
	case Degrading:
		m.degradings.Add(1)
	}
	for _, s := range m.subs {
		s.enqueue(ev)
	}
	if m.logger != nil {
		m.logger.Info("cluster: membership event",
			"kind", ev.Kind.String(), "host", ev.Host, "seq", ev.Seq,
			"eff", ev.Eff, "trend", ev.Trend, "source", ev.Source)
	}
}

// ReportAlive records that host is serving (an offer bound, a heartbeat
// seen). Idempotent: only a dead→alive (or unknown→alive) transition
// emits Join.
func (m *Membership) ReportAlive(host, source string) {
	if host == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.hosts[host]
	if h == nil {
		h = &memberState{}
		m.hosts[host] = h
	}
	if h.alive {
		return
	}
	// A rejoining host is a new incarnation: old trend history is void.
	*h = memberState{alive: true}
	m.emit(Event{Kind: Join, Host: host, Source: source})
}

// ReportDead records that host is gone. Idempotent: however many
// subsystems report the same death (lease sweeper, failure detector,
// pushed invalidation), only the first report emits Leave.
func (m *Membership) ReportDead(host, source string) {
	if host == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.hosts[host]
	if h == nil || !h.alive {
		return
	}
	eff := h.eff
	*h = memberState{}
	m.emit(Event{Kind: Leave, Host: host, Eff: eff, Source: source})
}

// ReportLoad ingests a Winner effective-speed sample for host. A sample
// implies liveness (emitting Join for an unknown host), updates the
// host's observed peak, and drives the degrading-trend policy: eff/peak
// below the threshold for K consecutive samples emits one Degrading event
// per degradation episode (a recovered trend re-arms the detector).
func (m *Membership) ReportLoad(host string, eff float64, source string) {
	if host == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.hosts[host]
	if h == nil || !h.alive {
		if h == nil {
			h = &memberState{}
			m.hosts[host] = h
		}
		*h = memberState{alive: true}
		m.emit(Event{Kind: Join, Host: host, Eff: eff, Source: source})
	}
	h.eff = eff
	if eff > h.peak {
		h.peak = eff
	}
	if h.peak <= 0 {
		return
	}
	trend := eff / h.peak
	if trend >= m.degradeTrend {
		h.below = 0
		h.degraded = false
		return
	}
	h.below++
	if h.below >= m.degradeSamples && !h.degraded {
		h.degraded = true
		m.emit(Event{Kind: Degrading, Host: host, Eff: eff, Trend: trend, Source: source})
	}
}

// Alive returns the sorted names of live hosts.
func (m *Membership) Alive() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for host, h := range m.hosts {
		if h.alive {
			out = append(out, host)
		}
	}
	sort.Strings(out)
	return out
}

// AliveCount returns the number of live hosts.
func (m *Membership) AliveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, h := range m.hosts {
		if h.alive {
			n++
		}
	}
	return n
}

// Healthy reports whether host is alive and not currently degrading —
// the predicate migration targets must pass.
func (m *Membership) Healthy(host string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.hosts[host]
	return h != nil && h.alive && !h.degraded
}

// Snapshot returns every known host's state, sorted by name.
func (m *Membership) Snapshot() []MemberInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MemberInfo, 0, len(m.hosts))
	for host, h := range m.hosts {
		mi := MemberInfo{Host: host, Alive: h.alive, Eff: h.eff, Peak: h.peak, Degraded: h.degraded}
		if h.peak > 0 {
			mi.Trend = h.eff / h.peak
		}
		out = append(out, mi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}

// Seq returns the sequence number of the newest emitted event.
func (m *Membership) Seq() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seq
}

// Joins returns the total number of Join events emitted.
func (m *Membership) Joins() uint64 { return m.joins.Load() }

// Leaves returns the total number of Leave events emitted.
func (m *Membership) Leaves() uint64 { return m.leaves.Load() }

// Degradings returns the total number of Degrading events emitted.
func (m *Membership) Degradings() uint64 { return m.degradings.Load() }

// ExportMetrics registers the membership gauges and counters on reg.
func (m *Membership) ExportMetrics(reg *obs.Registry) {
	reg.NewGaugeFunc("cluster_members_alive",
		"Hosts currently in the live membership view.",
		func() float64 { return float64(m.AliveCount()) })
	reg.NewCounterFunc("cluster_membership_joins_total",
		"Join events emitted by the membership view.", m.Joins)
	reg.NewCounterFunc("cluster_membership_leaves_total",
		"Leave events emitted by the membership view.", m.Leaves)
	reg.NewCounterFunc("cluster_membership_degrading_total",
		"Degrading events emitted by the load-trend policy.", m.Degradings)
}

// Feeder is a Membership bound to one source label, matching the small
// report interfaces the feeding subsystems (winner.Manager, ft.Detector,
// naming caches) declare locally — they stay decoupled from this package.
type Feeder struct {
	m      *Membership
	source string
}

// Feed returns a reporter that attributes everything to source.
func (m *Membership) Feed(source string) *Feeder { return &Feeder{m: m, source: source} }

// ReportAlive reports host as live.
func (f *Feeder) ReportAlive(host string) { f.m.ReportAlive(host, f.source) }

// ReportDead reports host as gone.
func (f *Feeder) ReportDead(host string) { f.m.ReportDead(host, f.source) }

// ReportLoad ingests an effective-speed sample for host.
func (f *Feeder) ReportLoad(host string, eff float64) { f.m.ReportLoad(host, eff, f.source) }

// OfferTracker refcounts naming offers per host and drives membership
// from the transitions: a host's first offer is a Join, its last offer
// going away is a Leave. Wire it to naming.Registry.SetOfferObserver (in
// a nameserver) or naming.GroupCacheOptions.HostObserver (in a client fed
// by pushed membership).
type OfferTracker struct {
	mu     sync.Mutex
	counts map[string]int
	f      *Feeder
}

// TrackOffers returns an offer-refcounting feeder attributed to source.
func (m *Membership) TrackOffers(source string) *OfferTracker {
	return &OfferTracker{counts: make(map[string]int), f: m.Feed(source)}
}

// Bound records one offer bound on host.
func (t *OfferTracker) Bound(host string) {
	if host == "" {
		return
	}
	t.mu.Lock()
	t.counts[host]++
	first := t.counts[host] == 1
	t.mu.Unlock()
	if first {
		t.f.ReportAlive(host)
	}
}

// Unbound records one offer removed from host.
func (t *OfferTracker) Unbound(host string) {
	if host == "" {
		return
	}
	t.mu.Lock()
	if t.counts[host] == 0 {
		t.mu.Unlock()
		return
	}
	t.counts[host]--
	last := t.counts[host] == 0
	if last {
		delete(t.counts, host)
	}
	t.mu.Unlock()
	if last {
		t.f.ReportDead(host)
	}
}
