package cluster

import (
	"context"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/cdr"
	"repro/internal/orb"
)

func TestClockAdvanceAndMerge(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("clock not zero")
	}
	c.Advance(1.5)
	if c.Now() != 1.5 {
		t.Fatalf("now = %v", c.Now())
	}
	c.Merge(1.0) // behind: no-op
	if c.Now() != 1.5 {
		t.Fatalf("merge moved backwards: %v", c.Now())
	}
	c.Merge(3.0)
	if c.Now() != 3.0 {
		t.Fatalf("merge = %v", c.Now())
	}
	c.Advance(-5) // ignored
	if c.Now() != 3.0 {
		t.Fatalf("negative advance applied: %v", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("reset failed")
	}
}

func TestClockConcurrentMonotone(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Advance(0.001)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); math.Abs(got-8.0) > 1e-6 {
		t.Fatalf("now = %v, want 8.0", got)
	}
}

// Property: merge never moves a clock backwards.
func TestQuickClockMergeMonotone(t *testing.T) {
	f := func(adv, merge float64) bool {
		var c Clock
		c.Advance(math.Abs(adv))
		before := c.Now()
		after := c.Merge(merge)
		return after >= before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHostComputeTime(t *testing.T) {
	h := NewHost("n", 1)
	if err := h.Compute(2); err != nil {
		t.Fatal(err)
	}
	if got := h.Clock().Now(); got != 2 {
		t.Fatalf("clock = %v", got)
	}
}

func TestHostBackgroundSlowsCompute(t *testing.T) {
	h := NewHost("n", 1)
	h.SetBackground(1)
	if err := h.Compute(2); err != nil {
		t.Fatal(err)
	}
	// speed 1 / (1+1) = 0.5 → 2 units take 4 virtual seconds.
	if got := h.Clock().Now(); got != 4 {
		t.Fatalf("clock = %v", got)
	}
}

func TestHostSpeedScalesCompute(t *testing.T) {
	h := NewHost("fast", 2)
	if err := h.Compute(2); err != nil {
		t.Fatal(err)
	}
	if got := h.Clock().Now(); got != 1 {
		t.Fatalf("clock = %v", got)
	}
}

func TestHostFailedComputeErrors(t *testing.T) {
	h := NewHost("n", 1)
	h.Fail()
	if err := h.Compute(1); err != ErrHostFailed {
		t.Fatalf("err = %v", err)
	}
	h.Recover()
	if err := h.Compute(1); err != nil {
		t.Fatalf("err after recover = %v", err)
	}
}

func TestHostSampleReflectsLoad(t *testing.T) {
	h := NewHost("n", 1.5)
	h.SetBackground(2)
	h.BeginJob()
	s := h.Sample()
	if s.Host != "n" || s.Speed != 1.5 || s.RunQueue != 3 {
		t.Fatalf("sample = %+v", s)
	}
	h.EndJob()
	if s := h.Sample(); s.RunQueue != 2 {
		t.Fatalf("runq after EndJob = %v", s.RunQueue)
	}
	h.EndJob() // extra EndJob must not go negative
	if s := h.Sample(); s.RunQueue != 2 {
		t.Fatalf("runq after extra EndJob = %v", s.RunQueue)
	}
}

func TestHostDefaults(t *testing.T) {
	h := NewHost("n", 0) // invalid speed coerced to 1
	if h.Speed() != 1 {
		t.Fatalf("speed = %v", h.Speed())
	}
	h.SetBackground(-3)
	if h.Background() != 0 {
		t.Fatalf("background = %d", h.Background())
	}
}

func TestClusterUniform(t *testing.T) {
	c := NewUniform(10, "node")
	if c.Size() != 10 {
		t.Fatalf("size = %d", c.Size())
	}
	names := c.Names()
	if names[0] != "node00" || names[9] != "node09" {
		t.Fatalf("names = %v", names)
	}
	if c.Host("node05") == nil || c.Host("nope") != nil {
		t.Fatal("Host lookup")
	}
}

func TestClusterBackgroundLoad(t *testing.T) {
	c := NewUniform(6, "n")
	loaded := c.ApplyBackgroundLoad(2, 1)
	if len(loaded) != 2 || loaded[0] != "n00" || loaded[1] != "n01" {
		t.Fatalf("loaded = %v", loaded)
	}
	if got := c.LoadedHosts(); len(got) != 2 {
		t.Fatalf("LoadedHosts = %v", got)
	}
	// Re-applying with fewer hosts clears the rest.
	c.ApplyBackgroundLoad(1, 2)
	if got := c.LoadedHosts(); len(got) != 1 || got[0] != "n00" {
		t.Fatalf("LoadedHosts = %v", got)
	}
	if c.Host("n00").Background() != 2 {
		t.Fatal("procs not applied")
	}
}

func TestClusterClocks(t *testing.T) {
	c := NewUniform(3, "n")
	c.Host("n01").Clock().Advance(5)
	if got := c.MaxClock(); got != 5 {
		t.Fatalf("MaxClock = %v", got)
	}
	c.ResetClocks()
	if got := c.MaxClock(); got != 0 {
		t.Fatalf("MaxClock after reset = %v", got)
	}
}

func TestTimeCodec(t *testing.T) {
	for _, v := range []float64{0, 1.5, math.Pi, 1e9} {
		got, ok := decodeTime(encodeTime(v))
		if !ok || got != v {
			t.Fatalf("codec %v -> %v ok=%v", v, got, ok)
		}
	}
	if _, ok := decodeTime([]byte{1, 2}); ok {
		t.Fatal("short buffer decoded")
	}
	if _, ok := decodeTime(nil); ok {
		t.Fatal("nil decoded")
	}
}

// computeServant advances its host's clock by the requested units.
type computeServant struct{ host *Host }

func (s *computeServant) TypeID() string { return "IDL:repro/Compute:1.0" }
func (s *computeServant) Invoke(_ *orb.ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	if op != "work" {
		return orb.BadOperation(op)
	}
	units := in.GetFloat64()
	if err := s.host.Compute(units); err != nil {
		return &orb.SystemException{Kind: orb.ExTransient, Detail: err.Error()}
	}
	out.PutFloat64(s.host.Clock().Now())
	return nil
}

func startNode(t *testing.T, h *Host, latency float64) *Node {
	t.Helper()
	n, err := NewNode(h, NodeOptions{Latency: latency})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

func TestVirtualTimePropagatesThroughCalls(t *testing.T) {
	client := NewHost("client", 1)
	server := NewHost("server", 1)
	cn := startNode(t, client, 0)
	sn := startNode(t, server, 0)
	ref := sn.Adapter.Activate("w", &computeServant{host: server})

	// The client does 1s of local work, then asks the server for 3s of
	// work. After the reply, the client clock must read 4s.
	if err := client.Compute(1); err != nil {
		t.Fatal(err)
	}
	err := cn.ORB.Call(context.Background(), ref, "work",
		func(e *cdr.Encoder) { e.PutFloat64(3) },
		func(d *cdr.Decoder) error { d.GetFloat64(); return d.Err() })
	if err != nil {
		t.Fatal(err)
	}
	if got := client.Clock().Now(); math.Abs(got-4) > 1e-9 {
		t.Fatalf("client clock = %v, want 4", got)
	}
	// The server merged the client's send time (1s) before computing.
	if got := server.Clock().Now(); math.Abs(got-4) > 1e-9 {
		t.Fatalf("server clock = %v, want 4", got)
	}
}

func TestVirtualTimeParallelForkJoin(t *testing.T) {
	// A manager fans out to two workers; the join time is the max of the
	// branches, not the sum — the essence of the Figure 3 simulation.
	mgr := NewHost("mgr", 1)
	w1 := NewHost("w1", 1)
	w2 := NewHost("w2", 1)
	w2.SetBackground(1) // w2 runs at half speed
	mn := startNode(t, mgr, 0)
	n1 := startNode(t, w1, 0)
	n2 := startNode(t, w2, 0)
	ref1 := n1.Adapter.Activate("w", &computeServant{host: w1})
	ref2 := n2.Adapter.Activate("w", &computeServant{host: w2})

	call := func(ref orb.ObjectRef, units float64) *orb.Request {
		req := mn.ORB.CreateRequest(context.Background(), ref, "work")
		req.Args().PutFloat64(units)
		req.Send()
		return req
	}
	r1 := call(ref1, 2) // 2s on idle host
	r2 := call(ref2, 2) // 4s on loaded host
	for _, r := range []*orb.Request{r1, r2} {
		if err := r.GetResponse(func(d *cdr.Decoder) error { d.GetFloat64(); return d.Err() }); err != nil {
			t.Fatal(err)
		}
	}
	if got := mgr.Clock().Now(); math.Abs(got-4) > 1e-9 {
		t.Fatalf("manager clock = %v, want max(2,4)=4", got)
	}
}

func TestLatencyCharged(t *testing.T) {
	client := NewHost("client", 1)
	server := NewHost("server", 1)
	cn := startNode(t, client, 0.25)
	sn := startNode(t, server, 0.25)
	ref := sn.Adapter.Activate("w", &computeServant{host: server})
	err := cn.ORB.Call(context.Background(), ref, "work",
		func(e *cdr.Encoder) { e.PutFloat64(1) },
		func(d *cdr.Decoder) error { d.GetFloat64(); return d.Err() })
	if err != nil {
		t.Fatal(err)
	}
	// 0.25 request latency + 1s work + 0.25 reply latency.
	if got := client.Clock().Now(); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("client clock = %v, want 1.5", got)
	}
}

func TestNodeFailGivesCommFailure(t *testing.T) {
	client := NewHost("client", 1)
	server := NewHost("server", 1)
	cn := startNode(t, client, 0)
	sn, err := NewNode(server, NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref := sn.Adapter.Activate("w", &computeServant{host: server})
	if err := cn.ORB.Call(context.Background(), ref, "work", func(e *cdr.Encoder) { e.PutFloat64(0) }, nil); err != nil {
		t.Fatal(err)
	}
	sn.Fail()
	if !sn.Failed() {
		t.Fatal("node not failed")
	}
	err = cn.ORB.Call(context.Background(), ref, "work", func(e *cdr.Encoder) { e.PutFloat64(0) }, nil)
	if !orb.IsCommFailure(err) {
		t.Fatalf("err = %v, want COMM_FAILURE", err)
	}
	sn.Fail() // idempotent
}

func TestNodeRestartServesAgain(t *testing.T) {
	client := NewHost("client", 1)
	server := NewHost("server", 1)
	cn := startNode(t, client, 0)
	sn, err := NewNode(server, NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	sn.Adapter.Activate("w", &computeServant{host: server})
	sn.Fail()
	if err := sn.Restart(NodeOptions{}); err != nil {
		t.Fatal(err)
	}
	// Fresh adapter, fresh port; re-activate and call.
	ref2 := sn.Adapter.Activate("w", &computeServant{host: server})
	if err := cn.ORB.Call(context.Background(), ref2, "work", func(e *cdr.Encoder) { e.PutFloat64(1) }, nil); err != nil {
		t.Fatalf("call after restart: %v", err)
	}
	if err := sn.Restart(NodeOptions{}); err != nil {
		t.Fatal("restart of healthy node must be a no-op")
	}
}
