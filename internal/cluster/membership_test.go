package cluster

import (
	"sync"
	"testing"
)

// collect drains n events from ch into a slice.
func collect(t *testing.T, ch <-chan Event, n int) []Event {
	t.Helper()
	out := make([]Event, 0, n)
	for len(out) < n {
		ev, ok := <-ch
		if !ok {
			t.Fatalf("channel closed after %d/%d events", len(out), n)
		}
		out = append(out, ev)
	}
	return out
}

func TestMembershipJoinLeaveEvents(t *testing.T) {
	m := NewMembership()
	ch, cancel := m.Subscribe()
	defer cancel()

	m.ReportAlive("h1", "test")
	m.ReportAlive("h2", "test")
	m.ReportDead("h1", "test")

	evs := collect(t, ch, 3)
	want := []struct {
		kind EventKind
		host string
	}{{Join, "h1"}, {Join, "h2"}, {Leave, "h1"}}
	for i, w := range want {
		if evs[i].Kind != w.kind || evs[i].Host != w.host {
			t.Fatalf("event %d = %v/%s, want %v/%s", i, evs[i].Kind, evs[i].Host, w.kind, w.host)
		}
	}
	if m.AliveCount() != 1 {
		t.Fatalf("alive = %d", m.AliveCount())
	}
}

func TestMembershipDeathReportedOnceAcrossSources(t *testing.T) {
	// The satellite fix: detector eviction, lease expiry and push
	// invalidation all funnel into the membership view, and a single death
	// must produce exactly one Leave regardless of how many layers report
	// it.
	m := NewMembership()
	ch, cancel := m.Subscribe()
	defer cancel()

	m.ReportAlive("h1", "offers")
	m.ReportDead("h1", "detector")
	m.ReportDead("h1", "sweeper") // duplicate: already dead
	m.ReportDead("h1", "push")    // duplicate
	m.ReportAlive("h2", "offers") // sentinel so we know the queue drained

	evs := collect(t, ch, 3)
	if evs[0].Kind != Join || evs[1].Kind != Leave || evs[2].Kind != Join {
		t.Fatalf("events = %v", evs)
	}
	if evs[1].Source != "detector" {
		t.Fatalf("leave source = %q, want the first reporter", evs[1].Source)
	}
	if m.Leaves() != 1 {
		t.Fatalf("leaves = %d, want 1", m.Leaves())
	}
}

func TestMembershipSubscriptionOrderingUnderConcurrency(t *testing.T) {
	// Several goroutines hammer the membership while several subscribers
	// listen; every subscriber must observe a strictly increasing Seq, and
	// all subscribers must agree on the event sequence (same Seq → same
	// event). Run with -race.
	m := NewMembership(WithDegradeSamples(2))
	const subs = 4
	chans := make([]<-chan Event, subs)
	cancels := make([]func(), subs)
	for i := range chans {
		chans[i], cancels[i] = m.Subscribe()
		defer cancels[i]()
	}

	hosts := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for _, h := range hosts {
		wg.Add(1)
		go func(h string) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m.ReportAlive(h, "test")
				m.ReportLoad(h, 1.0, "test")
				m.ReportLoad(h, 0.1, "test") // trend collapses
				m.ReportLoad(h, 0.1, "test") // second strike → Degrading
				m.ReportDead(h, "test")
			}
		}(h)
	}
	wg.Wait()

	// Per host per iteration: Join, Degrading, Leave = 3 events.
	total := len(hosts) * 50 * 3
	seen := make([]map[uint64]Event, subs)
	for i, ch := range chans {
		evs := collect(t, ch, total)
		seen[i] = make(map[uint64]Event, total)
		last := uint64(0)
		for _, ev := range evs {
			if ev.Seq <= last {
				t.Fatalf("subscriber %d: seq %d after %d (order violated)", i, ev.Seq, last)
			}
			last = ev.Seq
			seen[i][ev.Seq] = ev
		}
	}
	for i := 1; i < subs; i++ {
		if len(seen[i]) != len(seen[0]) {
			t.Fatalf("subscriber %d saw %d events, subscriber 0 saw %d", i, len(seen[i]), len(seen[0]))
		}
		for seq, ev := range seen[0] {
			got, ok := seen[i][seq]
			if !ok || got.Kind != ev.Kind || got.Host != ev.Host {
				t.Fatalf("subscriber %d disagrees at seq %d: %+v vs %+v", i, seq, got, ev)
			}
		}
	}
	if m.Joins() != uint64(len(hosts)*50) || m.Leaves() != uint64(len(hosts)*50) {
		t.Fatalf("joins/leaves = %d/%d", m.Joins(), m.Leaves())
	}
}

func TestMembershipDegradingOncePerEpisode(t *testing.T) {
	m := NewMembership(WithDegradeTrend(0.5), WithDegradeSamples(3))
	ch, cancel := m.Subscribe()
	defer cancel()

	m.ReportLoad("h1", 2.0, "winner") // implies Join; establishes peak
	for i := 0; i < 10; i++ {
		m.ReportLoad("h1", 0.2, "winner") // trend 0.1 — below threshold
	}
	// Recovery re-arms the episode...
	m.ReportLoad("h1", 2.0, "winner")
	for i := 0; i < 3; i++ {
		m.ReportLoad("h1", 0.2, "winner")
	}

	// Expect: Join, Degrading (after 3 low samples), Degrading (second
	// episode) — and nothing else despite 10 low samples in episode one.
	evs := collect(t, ch, 3)
	if evs[0].Kind != Join {
		t.Fatalf("first event %v", evs[0].Kind)
	}
	if evs[1].Kind != Degrading || evs[2].Kind != Degrading {
		t.Fatalf("events = %v", evs)
	}
	if got := m.Degradings(); got != 2 {
		t.Fatalf("degradings = %d, want 2", got)
	}
	if m.Healthy("h1") {
		t.Fatal("degraded host reported healthy")
	}
}

func TestMembershipSubscribeCancelUnblocks(t *testing.T) {
	m := NewMembership()
	ch, cancel := m.Subscribe()
	// Fill well past the channel buffer without reading.
	for i := 0; i < 100; i++ {
		m.ReportAlive("h", "t")
		m.ReportDead("h", "t")
	}
	cancel()
	cancel() // idempotent
	// The channel must eventually close; emitting afterwards must not
	// block or panic.
	for range ch {
	}
	m.ReportAlive("h2", "t")
}

func TestMembershipOfferTrackerRefcounts(t *testing.T) {
	m := NewMembership()
	ch, cancel := m.Subscribe()
	defer cancel()
	tr := m.TrackOffers("naming")

	tr.Bound("h1") // first offer → Join
	tr.Bound("h1") // second offer on same host: no event
	tr.Unbound("h1")
	m.ReportAlive("sentinel", "t")
	tr.Unbound("h1") // last offer gone → Leave
	evs := collect(t, ch, 3)
	if evs[0].Kind != Join || evs[0].Host != "h1" {
		t.Fatalf("first = %+v", evs[0])
	}
	if evs[1].Kind != Join || evs[1].Host != "sentinel" {
		t.Fatalf("second = %+v (refcounted rebind must not emit)", evs[1])
	}
	if evs[2].Kind != Leave || evs[2].Host != "h1" {
		t.Fatalf("third = %+v", evs[2])
	}
}

func TestMembershipRejoinAfterDeath(t *testing.T) {
	m := NewMembership(WithDegradeSamples(2))
	m.ReportLoad("h1", 1.0, "t")
	m.ReportLoad("h1", 0.1, "t")
	m.ReportLoad("h1", 0.1, "t") // degraded
	if m.Healthy("h1") {
		t.Fatal("want degraded")
	}
	m.ReportDead("h1", "t")
	m.ReportAlive("h1", "t")
	// Rejoin resets degradation state: fresh peak, healthy again.
	if !m.Healthy("h1") {
		t.Fatal("rejoined host must be healthy")
	}
	if m.AliveCount() != 1 {
		t.Fatalf("alive = %d", m.AliveCount())
	}
}
