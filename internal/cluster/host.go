package cluster

import (
	"errors"
	"sync"

	"repro/internal/winner"
)

// ErrHostFailed is returned by Compute on a crashed host.
var ErrHostFailed = errors.New("cluster: host has failed")

// Host is one simulated workstation: a name, a static relative speed, a
// virtual clock, a background-load level and an active-job counter.
//
// The timesharing model: a compute job receives the CPU share
// speed / (1 + background), i.e. one background process halves throughput
// — the behaviour the paper induces by generating background load on
// selected workstations.
type Host struct {
	name  string
	speed float64
	cpus  int
	clock Clock

	mu         sync.Mutex
	background int
	jobs       int
	failed     bool
}

// NewHost creates a uniprocessor workstation with the given relative
// per-CPU speed (1.0 = the reference machine).
func NewHost(name string, speed float64) *Host {
	return NewHostMP(name, speed, 1)
}

// NewHostMP creates a multiprocessor workstation with cpus processors —
// the mixed uniprocessor/multiprocessor NOWs Winner was built for. Demand
// up to the CPU count runs at full per-CPU speed; beyond that, processes
// time-share.
func NewHostMP(name string, speed float64, cpus int) *Host {
	if speed <= 0 {
		speed = 1
	}
	if cpus < 1 {
		cpus = 1
	}
	return &Host{name: name, speed: speed, cpus: cpus}
}

// CPUs returns the processor count.
func (h *Host) CPUs() int { return h.cpus }

// Name returns the workstation name.
func (h *Host) Name() string { return h.name }

// Speed returns the static relative speed.
func (h *Host) Speed() float64 { return h.speed }

// Clock returns the host's virtual clock.
func (h *Host) Clock() *Clock { return &h.clock }

// SetBackground sets the number of competing background processes.
func (h *Host) SetBackground(n int) {
	h.mu.Lock()
	if n < 0 {
		n = 0
	}
	h.background = n
	h.mu.Unlock()
}

// Background returns the current background-load level.
func (h *Host) Background() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.background
}

// share computes the CPU share one job receives given the competing
// demand. Callers hold h.mu.
func (h *Host) share(otherDemand int) float64 {
	demand := float64(otherDemand + 1)
	cpus := float64(h.cpus)
	if demand <= cpus {
		return h.speed
	}
	return h.speed * cpus / demand
}

// EffectiveSpeed returns the CPU share a new compute job would receive
// now, considering background load only (the pre-placement view).
func (h *Host) EffectiveSpeed() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.share(h.background)
}

// BeginJob marks a compute job active (visible in the host's run queue,
// and therefore to Winner node managers). Pair with EndJob.
func (h *Host) BeginJob() {
	h.mu.Lock()
	h.jobs++
	h.mu.Unlock()
}

// EndJob marks a compute job finished.
func (h *Host) EndJob() {
	h.mu.Lock()
	if h.jobs > 0 {
		h.jobs--
	}
	h.mu.Unlock()
}

// Jobs returns the number of active compute jobs.
func (h *Host) Jobs() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.jobs
}

// Compute charges units seconds of reference-CPU work to the host,
// advancing its virtual clock by units / effectiveSpeed. Competing
// demand counts both background processes and other active compute jobs
// (a caller inside BeginJob/EndJob does not compete with itself), so two
// services colocated on one workstation — e.g. active replicas — each run
// at half speed, like timeshared processes would. It fails if the host
// has crashed.
func (h *Host) Compute(units float64) error {
	h.mu.Lock()
	if h.failed {
		h.mu.Unlock()
		return ErrHostFailed
	}
	otherJobs := h.jobs - 1
	if otherJobs < 0 {
		otherJobs = 0
	}
	eff := h.share(h.background + otherJobs)
	h.mu.Unlock()
	if units > 0 {
		h.clock.Advance(units / eff)
	}
	return nil
}

// Fail crashes the host: subsequent Compute calls fail. Network-level
// failure (COMM_FAILURE for clients) is handled by Node.Fail, which also
// closes the host's adapter.
func (h *Host) Fail() {
	h.mu.Lock()
	h.failed = true
	h.mu.Unlock()
}

// Recover brings a crashed host back.
func (h *Host) Recover() {
	h.mu.Lock()
	h.failed = false
	h.mu.Unlock()
}

// Failed reports whether the host has crashed.
func (h *Host) Failed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.failed
}

// Sample implements winner.LoadSource: the node manager's view of this
// workstation. The run queue counts background processes plus active
// compute jobs. Sequence numbers are assigned by the node manager.
func (h *Host) Sample() winner.LoadSample {
	h.mu.Lock()
	defer h.mu.Unlock()
	return winner.LoadSample{
		Host:     h.name,
		Speed:    h.speed,
		RunQueue: float64(h.background + h.jobs),
		CPUs:     int32(h.cpus),
	}
}
