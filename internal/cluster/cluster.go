package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// Cluster is a simulated network of workstations.
type Cluster struct {
	mu    sync.RWMutex
	hosts map[string]*Host
	order []string
}

// New creates an empty cluster.
func New() *Cluster {
	return &Cluster{hosts: make(map[string]*Host)}
}

// NewUniform creates a cluster of n identical hosts named
// prefix00..prefix<n-1>, all with speed 1.0.
func NewUniform(n int, prefix string) *Cluster {
	c := New()
	for i := 0; i < n; i++ {
		c.Add(NewHost(fmt.Sprintf("%s%02d", prefix, i), 1))
	}
	return c
}

// Add registers a host. Adding a host with a duplicate name replaces the
// previous one but keeps its position in the ordering.
func (c *Cluster) Add(h *Host) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.hosts[h.Name()]; !exists {
		c.order = append(c.order, h.Name())
	}
	c.hosts[h.Name()] = h
}

// Host returns the named host, or nil.
func (c *Cluster) Host(name string) *Host {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hosts[name]
}

// Hosts returns all hosts in registration order.
func (c *Cluster) Hosts() []*Host {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Host, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.hosts[n])
	}
	return out
}

// Names returns all host names in registration order.
func (c *Cluster) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Size returns the number of hosts.
func (c *Cluster) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.hosts)
}

// ApplyBackgroundLoad puts procs background processes on each of the first
// n hosts (in registration order) and clears background load on the rest —
// the paper's "background load was generated on 0, 2, 4, 6 or 8 hosts"
// setup. It returns the names of the loaded hosts.
func (c *Cluster) ApplyBackgroundLoad(n, procs int) []string {
	hosts := c.Hosts()
	var loaded []string
	for i, h := range hosts {
		if i < n {
			h.SetBackground(procs)
			loaded = append(loaded, h.Name())
		} else {
			h.SetBackground(0)
		}
	}
	return loaded
}

// ResetClocks zeroes every host clock (between experiment runs).
func (c *Cluster) ResetClocks() {
	for _, h := range c.Hosts() {
		h.Clock().Reset()
	}
}

// MaxClock returns the maximum virtual time across all hosts.
func (c *Cluster) MaxClock() float64 {
	var max float64
	for _, h := range c.Hosts() {
		if t := h.Clock().Now(); t > max {
			max = t
		}
	}
	return max
}

// LoadedHosts returns the names of hosts with nonzero background load,
// sorted.
func (c *Cluster) LoadedHosts() []string {
	var out []string
	for _, h := range c.Hosts() {
		if h.Background() > 0 {
			out = append(out, h.Name())
		}
	}
	sort.Strings(out)
	return out
}
