package cluster

import (
	"fmt"

	"repro/internal/orb"
)

// Node wires a simulated Host to a live ORB process: an ORB whose
// interceptor chain propagates the host's virtual clock, plus one object
// adapter listening on loopback. Every simulated workstation process in an
// experiment is a Node, so calls between nodes travel real TCP while their
// timing lives in virtual time.
type Node struct {
	Host    *Host
	ORB     *orb.ORB
	Adapter *orb.Adapter

	latency float64
	failed  bool
}

// NodeOptions configure a Node.
type NodeOptions struct {
	// Latency is the virtual one-way network latency in seconds charged
	// on every received message.
	Latency float64
	// ORB options besides Name and the time interceptor are taken as-is.
	ORB orb.Options
}

// NewNode boots an ORB + adapter for host.
func NewNode(host *Host, opts NodeOptions) (*Node, error) {
	o := opts.ORB
	if o.Name == "" {
		o.Name = host.Name()
	}
	ti := NewTimeInterceptor(host.Clock())
	ti.Latency = opts.Latency
	o.Interceptors = append(o.Interceptors, ti)
	b := orb.New(o)
	a, err := b.NewAdapter("127.0.0.1:0")
	if err != nil {
		b.Shutdown()
		return nil, fmt.Errorf("cluster: node %s: %w", host.Name(), err)
	}
	return &Node{Host: host, ORB: b, Adapter: a, latency: opts.Latency}, nil
}

// Fail simulates a workstation crash: the host stops computing and the
// node's adapter and ORB close, so remote callers observe COMM_FAILURE —
// the paper's error-detection condition.
func (n *Node) Fail() {
	if n.failed {
		return
	}
	n.failed = true
	n.Host.Fail()
	n.Adapter.Close()
	n.ORB.Shutdown()
}

// Restart brings a crashed node back as a fresh process on the same host:
// a new ORB and adapter (new port, as after a real restart). Servants must
// be re-activated by the caller — with state restored from checkpoints,
// which is exactly the paper's recovery model.
func (n *Node) Restart(opts NodeOptions) error {
	if !n.failed {
		return nil
	}
	n.Host.Recover()
	fresh, err := NewNode(n.Host, opts)
	if err != nil {
		return err
	}
	n.ORB = fresh.ORB
	n.Adapter = fresh.Adapter
	n.latency = fresh.latency
	n.failed = false
	return nil
}

// Failed reports whether the node is down.
func (n *Node) Failed() bool { return n.failed }

// Close shuts the node down without marking the host crashed.
func (n *Node) Close() {
	if n.failed {
		return
	}
	n.Adapter.Close()
	n.ORB.Shutdown()
}
