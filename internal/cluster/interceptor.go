package cluster

import (
	"math"

	"repro/internal/giop"
	"repro/internal/orb"
)

// TimeInterceptor propagates virtual time through GIOP service contexts:
// outgoing requests and replies are stamped with the local clock, incoming
// ones merge the clock forward (Lamport receive rule), optionally charging
// a fixed per-message network latency.
//
// With one interceptor installed per simulated process, the virtual time
// observed by a client after a synchronous call equals the causal critical
// path through the servant — which is exactly the quantity the paper's
// Figure 3 measures with wall clocks.
type TimeInterceptor struct {
	clock *Clock
	// Latency is the virtual one-way network latency in seconds added on
	// every received message.
	Latency float64
}

// NewTimeInterceptor builds an interceptor bound to clock.
func NewTimeInterceptor(clock *Clock) *TimeInterceptor {
	return &TimeInterceptor{clock: clock}
}

var _ orb.Interceptor = (*TimeInterceptor)(nil)

func encodeTime(t float64) []byte {
	bits := math.Float64bits(t)
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(bits >> (56 - 8*i))
	}
	return b
}

func decodeTime(b []byte) (float64, bool) {
	if len(b) != 8 {
		return 0, false
	}
	var bits uint64
	for i := 0; i < 8; i++ {
		bits = bits<<8 | uint64(b[i])
	}
	return math.Float64frombits(bits), true
}

func (ti *TimeInterceptor) stamp(m *giop.Message) {
	m.SetContext(giop.SCVirtualTime, encodeTime(ti.clock.Now()))
}

func (ti *TimeInterceptor) merge(m *giop.Message) {
	if t, ok := decodeTime(m.Context(giop.SCVirtualTime)); ok {
		ti.clock.Merge(t + ti.Latency)
	}
}

// SendRequest implements orb.Interceptor.
func (ti *TimeInterceptor) SendRequest(m *giop.Message) { ti.stamp(m) }

// ReceiveReply implements orb.Interceptor.
func (ti *TimeInterceptor) ReceiveReply(m *giop.Message) { ti.merge(m) }

// ReceiveRequest implements orb.Interceptor.
func (ti *TimeInterceptor) ReceiveRequest(m *giop.Message) { ti.merge(m) }

// SendReply implements orb.Interceptor.
func (ti *TimeInterceptor) SendReply(m *giop.Message) { ti.stamp(m) }
