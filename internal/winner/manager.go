package winner

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrNoHosts is returned by BestHost/BestOf when no usable host is known.
var ErrNoHosts = errors.New("winner: no hosts registered")

// ErrAllStale is returned when candidate hosts ARE known but every one of
// them exceeds the staleness bound — the node managers (or the network to
// them) went quiet, not the hosts themselves. It wraps ErrNoHosts so
// generic no-ranking handling keeps working, while selectors that care
// (winner-down degradation) can tell the cases apart.
var ErrAllStale = fmt.Errorf("%w (all samples stale)", ErrNoHosts)

// hostEntry is the manager's record for one host.
type hostEntry struct {
	info HostInfo
	// seen is when the newest sample arrived (staleness policy).
	seen time.Time
}

// MembershipSink receives the manager's host-level signals: one load
// figure per ingested sample and a death notice per forgotten host. It is
// declared here (not imported) so the cluster membership view can consume
// Winner data without an import cycle; cluster.Feeder satisfies it.
type MembershipSink interface {
	ReportLoad(host string, eff float64)
	ReportDead(host string)
}

// Manager is the Winner system manager core: it aggregates node-manager
// reports and ranks hosts by adjusted effective speed. It is exposed
// remotely by Servant but is equally usable in-process (the simulated NOW
// feeds it directly). All methods are safe for concurrent use.
type Manager struct {
	mu    sync.RWMutex
	hosts map[string]*hostEntry

	// maxAge and now implement the staleness policy (see staleness.go).
	maxAge time.Duration
	now    func() time.Time

	// alpha is the EWMA smoothing factor for run-queue values; 0 or 1
	// disables smoothing (raw samples).
	alpha float64

	// sink, when set, mirrors every ingested sample (post-smoothing) and
	// every Forget into the cluster membership view.
	sink MembershipSink
}

// SetMembershipSink mirrors the manager's per-host signals into sink
// (typically cluster.Membership via Feed("winner")). Pass nil to detach.
func (m *Manager) SetMembershipSink(s MembershipSink) {
	m.mu.Lock()
	m.sink = s
	m.mu.Unlock()
}

// NewManager creates an empty system manager.
func NewManager() *Manager {
	return &Manager{hosts: make(map[string]*hostEntry), now: time.Now}
}

// Report ingests a node manager sample. A fresh sample clears the host's
// pending-placement charge (the measurement now reflects reality). Stale
// samples (Seq not newer than the stored one) are dropped.
func (m *Manager) Report(s LoadSample) {
	if s.Host == "" {
		return
	}
	m.mu.Lock()
	h, ok := m.hosts[s.Host]
	if !ok {
		h = &hostEntry{info: HostInfo{Sample: s}, seen: m.now()}
		m.hosts[s.Host] = h
	} else {
		if s.Seq != 0 && s.Seq <= h.info.Sample.Seq {
			m.mu.Unlock()
			return
		}
		if m.alpha > 0 && m.alpha < 1 {
			// Exponentially weighted moving average: a single load spike (a
			// cron job, a measurement glitch) should not immediately reroute
			// placements; sustained load should.
			s.RunQueue = m.alpha*s.RunQueue + (1-m.alpha)*h.info.Sample.RunQueue
		}
		h.info.Sample = s
		h.info.Pending = 0
		h.seen = m.now()
	}
	sink, eff := m.sink, h.info.AdjustedEffectiveSpeed()
	m.mu.Unlock()
	if sink != nil {
		sink.ReportLoad(s.Host, eff)
	}
}

// SetSmoothing configures EWMA smoothing of reported run-queue lengths.
// alpha is the weight of the newest sample: 1 (or 0) keeps raw samples,
// smaller values smooth harder. Winner's node managers sample frequently,
// so smoothing trades reaction speed for placement stability.
func (m *Manager) SetSmoothing(alpha float64) {
	m.mu.Lock()
	m.alpha = alpha
	m.mu.Unlock()
}

// Forget removes a host from the ranking (node manager shut down, host
// declared dead by failure detection).
func (m *Manager) Forget(host string) {
	m.mu.Lock()
	delete(m.hosts, host)
	sink := m.sink
	m.mu.Unlock()
	if sink != nil {
		sink.ReportDead(host)
	}
}

// Host returns the manager's view of one host.
func (m *Manager) Host(host string) (HostInfo, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	h, ok := m.hosts[host]
	if !ok {
		return HostInfo{}, false
	}
	return h.info, true
}

// Ranking returns all fresh hosts ordered best-first by adjusted
// effective speed, ties broken by host name for determinism. Stale hosts
// are appended at the end, worst-last.
func (m *Manager) Ranking() []HostInfo {
	m.mu.RLock()
	var fresh, stale []HostInfo
	for _, h := range m.hosts {
		if m.fresh(h) {
			fresh = append(fresh, h.info)
		} else {
			stale = append(stale, h.info)
		}
	}
	m.mu.RUnlock()
	byEff := func(s []HostInfo) {
		sort.Slice(s, func(i, j int) bool {
			ei, ej := s[i].AdjustedEffectiveSpeed(), s[j].AdjustedEffectiveSpeed()
			if ei != ej {
				return ei > ej
			}
			return s[i].Sample.Host < s[j].Sample.Host
		})
	}
	byEff(fresh)
	byEff(stale)
	return append(fresh, stale...)
}

// BestHost returns the host a new process should be placed on and charges
// one pending placement to it, so an immediately following query sees the
// expected extra load (Winner's process placement feedback). Hosts in
// exclude are skipped, as are hosts with stale samples.
func (m *Manager) BestHost(exclude map[string]bool) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var best *hostEntry
	var bestEff float64
	sawStale := false
	for _, h := range m.hosts {
		if exclude[h.info.Sample.Host] {
			continue
		}
		if !m.fresh(h) {
			sawStale = true
			continue
		}
		eff := h.info.AdjustedEffectiveSpeed()
		if best == nil || eff > bestEff || (eff == bestEff && h.info.Sample.Host < best.info.Sample.Host) {
			best, bestEff = h, eff
		}
	}
	if best == nil {
		if sawStale {
			return "", ErrAllStale
		}
		return "", ErrNoHosts
	}
	best.info.Pending++
	return best.info.Sample.Host, nil
}

// BestOf ranks only the given candidate hosts (the hosts that actually
// offer the requested service) and charges the winner, like BestHost.
// Unknown and stale hosts are ignored; if none remain, ErrNoHosts is
// returned — or ErrAllStale when known hosts existed but every sample
// exceeded the staleness bound.
func (m *Manager) BestOf(candidates []string) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var best *hostEntry
	var bestEff float64
	sawStale := false
	for _, c := range candidates {
		h, ok := m.hosts[c]
		if !ok {
			continue
		}
		if !m.fresh(h) {
			sawStale = true
			continue
		}
		eff := h.info.AdjustedEffectiveSpeed()
		if best == nil || eff > bestEff || (eff == bestEff && h.info.Sample.Host < best.info.Sample.Host) {
			best, bestEff = h, eff
		}
	}
	if best == nil {
		if sawStale {
			return "", ErrAllStale
		}
		return "", ErrNoHosts
	}
	best.info.Pending++
	return best.info.Sample.Host, nil
}

// HostEffectiveSpeed returns the host's adjusted effective speed, or
// false for unknown or stale hosts. It is the load figure migration
// decisions compare.
func (m *Manager) HostEffectiveSpeed(host string) (float64, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	h, ok := m.hosts[host]
	if !ok || !m.fresh(h) {
		return 0, false
	}
	return h.info.AdjustedEffectiveSpeed(), true
}

// HostCount returns the number of hosts currently known (fresh or not).
func (m *Manager) HostCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.hosts)
}
