package winner

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestStaleHostExcludedFromBestHost(t *testing.T) {
	clk := newFakeClock()
	m := NewManager()
	m.SetMaxSampleAge(10*time.Second, clk.Now)

	m.Report(sample("idle-but-silent", 1, 0, 1))
	clk.Advance(30 * time.Second)
	m.Report(sample("busy-but-alive", 1, 3, 1))

	host, err := m.BestHost(nil)
	if err != nil {
		t.Fatal(err)
	}
	if host != "busy-but-alive" {
		t.Fatalf("BestHost = %q: stale idle host still winning", host)
	}
	if stale := m.StaleHosts(); len(stale) != 1 || stale[0] != "idle-but-silent" {
		t.Fatalf("StaleHosts = %v", stale)
	}
}

func TestStaleHostExcludedFromBestOf(t *testing.T) {
	clk := newFakeClock()
	m := NewManager()
	m.SetMaxSampleAge(5*time.Second, clk.Now)
	m.Report(sample("a", 1, 0, 1))
	clk.Advance(time.Minute)
	// Known-but-stale is the specific ErrAllStale condition, which still
	// reads as ErrNoHosts to generic handlers.
	if _, err := m.BestOf([]string{"a"}); err != ErrAllStale {
		t.Fatalf("err = %v, want ErrAllStale", err)
	}
	if !errors.Is(ErrAllStale, ErrNoHosts) {
		t.Fatal("ErrAllStale does not wrap ErrNoHosts")
	}
}

func TestFreshReportRevivesStaleHost(t *testing.T) {
	clk := newFakeClock()
	m := NewManager()
	m.SetMaxSampleAge(5*time.Second, clk.Now)
	m.Report(sample("a", 1, 0, 1))
	clk.Advance(time.Minute)
	if len(m.StaleHosts()) != 1 {
		t.Fatal("host not stale")
	}
	m.Report(sample("a", 1, 0, 2))
	if len(m.StaleHosts()) != 0 {
		t.Fatal("fresh report did not revive host")
	}
	if _, err := m.BestHost(nil); err != nil {
		t.Fatal(err)
	}
}

func TestStaleHostsRankedLast(t *testing.T) {
	clk := newFakeClock()
	m := NewManager()
	m.SetMaxSampleAge(5*time.Second, clk.Now)
	m.Report(sample("old-idle", 1, 0, 1))
	clk.Advance(time.Minute)
	m.Report(sample("new-busy", 1, 4, 1))
	r := m.Ranking()
	if len(r) != 2 || r[0].Sample.Host != "new-busy" || r[1].Sample.Host != "old-idle" {
		t.Fatalf("ranking = %+v", r)
	}
}

func TestStalenessDisabledByDefault(t *testing.T) {
	m := NewManager()
	m.Report(sample("a", 1, 0, 1))
	// No max age configured: never stale.
	if len(m.StaleHosts()) != 0 {
		t.Fatal("staleness active without configuration")
	}
}

func TestSmoothingDampensSpike(t *testing.T) {
	m := NewManager()
	m.SetSmoothing(0.25)
	m.Report(sample("h", 1, 0, 1))
	// One spike of 8 runnable processes.
	m.Report(sample("h", 1, 8, 2))
	info, _ := m.Host("h")
	if got := info.Sample.RunQueue; got != 2 { // 0.25*8 + 0.75*0
		t.Fatalf("smoothed runq = %v, want 2", got)
	}
	// Sustained load converges toward the true value.
	for seq := uint64(3); seq < 30; seq++ {
		m.Report(sample("h", 1, 8, seq))
	}
	info, _ = m.Host("h")
	if got := info.Sample.RunQueue; got < 7.5 {
		t.Fatalf("smoothed runq did not converge: %v", got)
	}
}

func TestSmoothingDisabledByDefault(t *testing.T) {
	m := NewManager()
	m.Report(sample("h", 1, 0, 1))
	m.Report(sample("h", 1, 8, 2))
	info, _ := m.Host("h")
	if info.Sample.RunQueue != 8 {
		t.Fatalf("raw runq = %v", info.Sample.RunQueue)
	}
}

func TestSmoothingAlphaOneIsRaw(t *testing.T) {
	m := NewManager()
	m.SetSmoothing(1)
	m.Report(sample("h", 1, 3, 1))
	m.Report(sample("h", 1, 5, 2))
	info, _ := m.Host("h")
	if info.Sample.RunQueue != 5 {
		t.Fatalf("runq = %v", info.Sample.RunQueue)
	}
}

func TestSetMaxSampleAgeRestampsExisting(t *testing.T) {
	clk := newFakeClock()
	m := NewManager()
	// Report under the real clock, then install a fake clock far in the
	// past — hosts must not instantly expire.
	m.Report(sample("a", 1, 0, 1))
	m.SetMaxSampleAge(10*time.Second, clk.Now)
	if len(m.StaleHosts()) != 0 {
		t.Fatal("enabling staleness expired existing host")
	}
	clk.Advance(time.Hour)
	if len(m.StaleHosts()) != 1 {
		t.Fatal("host never expired")
	}
}
