package winner

import (
	"errors"

	"repro/internal/cdr"
	"repro/internal/obs"
	"repro/internal/orb"
)

// TypeID is the repository id of the system manager interface.
const TypeID = "IDL:repro/Winner/SystemManager:1.0"

// DefaultKey is the conventional object key of the system manager.
const DefaultKey = "WinnerSystemManager"

// ExNoHosts is the user exception raised when no host can be selected.
const ExNoHosts = "IDL:repro/Winner/NoHosts:1.0"

// ExAllStale is the user exception raised when candidates are known but
// every load sample exceeds the staleness bound (ErrAllStale remotely).
const ExAllStale = "IDL:repro/Winner/AllStale:1.0"

// noHostsErr maps a ranking failure to its wire exception, preserving
// the no-hosts / all-stale distinction across the ORB.
func noHostsErr(err error) error {
	repoID := ExNoHosts
	if errors.Is(err, ErrAllStale) {
		repoID = ExAllStale
	}
	return &orb.UserException{RepoID: repoID, Detail: err.Error()}
}

// IsAllStale reports whether err — from an in-process Manager or through
// the client stub — is the all-samples-stale condition.
func IsAllStale(err error) bool {
	return errors.Is(err, ErrAllStale) || orb.IsUserException(err, ExAllStale)
}

// Operation names of the system manager wire contract.
const (
	opReport   = "report"
	opBestHost = "best_host"
	opBestOf   = "best_of"
	opRanking  = "ranking"
	opHostInfo = "host_info"
	opForget   = "forget"
)

// Servant exposes a Manager as an ORB service.
type Servant struct {
	mgr *Manager
}

// NewServant wraps mgr.
func NewServant(mgr *Manager) *Servant { return &Servant{mgr: mgr} }

// Manager returns the wrapped system manager.
func (s *Servant) Manager() *Manager { return s.mgr }

// TypeID implements orb.Servant.
func (s *Servant) TypeID() string { return TypeID }

// Invoke implements orb.Servant.
func (s *Servant) Invoke(sctx *orb.ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	switch op {
	case opReport:
		var sample LoadSample
		if err := sample.UnmarshalCDR(in); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		s.mgr.Report(sample)
		return nil

	case opBestHost:
		exclude := in.GetStringSeq()
		if err := in.Err(); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		var ex map[string]bool
		if len(exclude) > 0 {
			ex = make(map[string]bool, len(exclude))
			for _, h := range exclude {
				ex[h] = true
			}
		}
		host, err := s.mgr.BestHost(ex)
		if err != nil {
			return noHostsErr(err)
		}
		obs.SpanFromContext(sctx.Context()).AddEvent("winner.best",
			obs.String("host", host), obs.String("op", op))
		out.PutString(host)
		return nil

	case opBestOf:
		candidates := in.GetStringSeq()
		if err := in.Err(); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		host, err := s.mgr.BestOf(candidates)
		if err != nil {
			return noHostsErr(err)
		}
		obs.SpanFromContext(sctx.Context()).AddEvent("winner.best",
			obs.String("host", host), obs.String("op", op))
		out.PutString(host)
		return nil

	case opRanking:
		ranking := s.mgr.Ranking()
		out.PutUint32(uint32(len(ranking)))
		for _, h := range ranking {
			h.MarshalCDR(out)
		}
		return nil

	case opHostInfo:
		host := in.GetString()
		if err := in.Err(); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		info, ok := s.mgr.Host(host)
		if !ok {
			return &orb.UserException{RepoID: ExNoHosts, Detail: host}
		}
		info.MarshalCDR(out)
		return nil

	case opForget:
		host := in.GetString()
		if err := in.Err(); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		s.mgr.Forget(host)
		return nil

	default:
		return orb.BadOperation(op)
	}
}
