package winner

import (
	"context"

	"repro/internal/cdr"
	"repro/internal/orb"
)

// Client is the typed client stub for the Winner system manager. All
// remote operations route through the ORB's resilient-call engine; the
// stub itself carries no retry policy (load reporting tolerates loss and
// retries on the next tick instead).
type Client struct {
	orb    *orb.ORB
	caller *orb.Caller
}

// NewClient builds a stub for the system manager at ref.
func NewClient(o *orb.ORB, ref orb.ObjectRef) *Client {
	c := &Client{orb: o, caller: &orb.Caller{ORB: o}}
	c.caller.SetRef(ref)
	return c
}

// Ref returns the service's object reference.
func (c *Client) Ref() orb.ObjectRef { return c.caller.Ref() }

// Report ships a load sample to the system manager.
func (c *Client) Report(ctx context.Context, s LoadSample) error {
	return c.caller.Invoke(ctx, opReport, func(e *cdr.Encoder) { s.MarshalCDR(e) }, nil)
}

// BestHost asks for the currently best host, skipping any in exclude.
func (c *Client) BestHost(ctx context.Context, exclude []string) (string, error) {
	var host string
	err := c.caller.Invoke(ctx, opBestHost,
		func(e *cdr.Encoder) { e.PutStringSeq(exclude) },
		func(d *cdr.Decoder) error { host = d.GetString(); return d.Err() })
	return host, err
}

// BestOf asks for the best host among candidates.
func (c *Client) BestOf(ctx context.Context, candidates []string) (string, error) {
	var host string
	err := c.caller.Invoke(ctx, opBestOf,
		func(e *cdr.Encoder) { e.PutStringSeq(candidates) },
		func(d *cdr.Decoder) error { host = d.GetString(); return d.Err() })
	return host, err
}

// Ranking fetches all hosts, best first.
func (c *Client) Ranking(ctx context.Context) ([]HostInfo, error) {
	var out []HostInfo
	err := c.caller.Invoke(ctx, opRanking, nil, func(d *cdr.Decoder) error {
		n := d.GetUint32()
		if n > 1<<20 {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: "ranking too long"}
		}
		out = make([]HostInfo, 0, n)
		for i := uint32(0); i < n; i++ {
			var h HostInfo
			if err := h.UnmarshalCDR(d); err != nil {
				return err
			}
			out = append(out, h)
		}
		return d.Err()
	})
	return out, err
}

// HostInfo fetches the manager's view of one host.
func (c *Client) HostInfo(ctx context.Context, host string) (HostInfo, error) {
	var out HostInfo
	err := c.caller.Invoke(ctx, opHostInfo,
		func(e *cdr.Encoder) { e.PutString(host) },
		func(d *cdr.Decoder) error { return out.UnmarshalCDR(d) })
	return out, err
}

// HostEffectiveSpeed returns the host's adjusted effective speed, or
// false when the manager does not know the host (remote counterpart of
// Manager.HostEffectiveSpeed).
func (c *Client) HostEffectiveSpeed(ctx context.Context, host string) (float64, bool) {
	info, err := c.HostInfo(ctx, host)
	if err != nil {
		return 0, false
	}
	return info.AdjustedEffectiveSpeed(), true
}

// Forget removes a host from the manager.
func (c *Client) Forget(ctx context.Context, host string) error {
	return c.caller.Invoke(ctx, opForget, func(e *cdr.Encoder) { e.PutString(host) }, nil)
}
