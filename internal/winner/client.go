package winner

import (
	"repro/internal/cdr"
	"repro/internal/orb"
)

// Client is the typed client stub for the Winner system manager.
type Client struct {
	orb *orb.ORB
	ref orb.ObjectRef
}

// NewClient builds a stub for the system manager at ref.
func NewClient(o *orb.ORB, ref orb.ObjectRef) *Client {
	return &Client{orb: o, ref: ref}
}

// Ref returns the service's object reference.
func (c *Client) Ref() orb.ObjectRef { return c.ref }

// Report ships a load sample to the system manager.
func (c *Client) Report(s LoadSample) error {
	return c.orb.Invoke(c.ref, opReport, func(e *cdr.Encoder) { s.MarshalCDR(e) }, nil)
}

// BestHost asks for the currently best host, skipping any in exclude.
func (c *Client) BestHost(exclude []string) (string, error) {
	var host string
	err := c.orb.Invoke(c.ref, opBestHost,
		func(e *cdr.Encoder) { e.PutStringSeq(exclude) },
		func(d *cdr.Decoder) error { host = d.GetString(); return d.Err() })
	return host, err
}

// BestOf asks for the best host among candidates.
func (c *Client) BestOf(candidates []string) (string, error) {
	var host string
	err := c.orb.Invoke(c.ref, opBestOf,
		func(e *cdr.Encoder) { e.PutStringSeq(candidates) },
		func(d *cdr.Decoder) error { host = d.GetString(); return d.Err() })
	return host, err
}

// Ranking fetches all hosts, best first.
func (c *Client) Ranking() ([]HostInfo, error) {
	var out []HostInfo
	err := c.orb.Invoke(c.ref, opRanking, nil, func(d *cdr.Decoder) error {
		n := d.GetUint32()
		if n > 1<<20 {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: "ranking too long"}
		}
		out = make([]HostInfo, 0, n)
		for i := uint32(0); i < n; i++ {
			var h HostInfo
			if err := h.UnmarshalCDR(d); err != nil {
				return err
			}
			out = append(out, h)
		}
		return d.Err()
	})
	return out, err
}

// HostInfo fetches the manager's view of one host.
func (c *Client) HostInfo(host string) (HostInfo, error) {
	var out HostInfo
	err := c.orb.Invoke(c.ref, opHostInfo,
		func(e *cdr.Encoder) { e.PutString(host) },
		func(d *cdr.Decoder) error { return out.UnmarshalCDR(d) })
	return out, err
}

// HostEffectiveSpeed returns the host's adjusted effective speed, or
// false when the manager does not know the host (remote counterpart of
// Manager.HostEffectiveSpeed).
func (c *Client) HostEffectiveSpeed(host string) (float64, bool) {
	info, err := c.HostInfo(host)
	if err != nil {
		return 0, false
	}
	return info.AdjustedEffectiveSpeed(), true
}

// Forget removes a host from the manager.
func (c *Client) Forget(host string) error {
	return c.orb.Invoke(c.ref, opForget, func(e *cdr.Encoder) { e.PutString(host) }, nil)
}
