package winner

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFixture(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "loadavg")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProcLoadSourceParsesLoad(t *testing.T) {
	src := &ProcLoadSource{Host: "me", Speed: 2, Path: writeFixture(t, "0.75 0.58 0.59 1/467 12345\n")}
	s := src.Sample()
	if s.Host != "me" || s.Speed != 2 || s.RunQueue != 0.75 {
		t.Fatalf("sample = %+v", s)
	}
}

func TestProcLoadSourceDefaults(t *testing.T) {
	src := &ProcLoadSource{Path: writeFixture(t, "0.10 0 0 1/1 1")}
	s := src.Sample()
	if s.Host == "" || s.Speed != 1 {
		t.Fatalf("sample = %+v", s)
	}
}

func TestProcLoadSourceMissingFileDemotesHost(t *testing.T) {
	src := &ProcLoadSource{Host: "h", Path: "/definitely/not/here"}
	s := src.Sample()
	if s.RunQueue < 1e8 {
		t.Fatalf("broken measurement not demoted: %+v", s)
	}
}

func TestReadLoadAvgErrors(t *testing.T) {
	for _, content := range []string{"", "junk x y", "-1 0 0"} {
		if _, err := readLoadAvg(writeFixture(t, content)); err == nil {
			t.Errorf("content %q parsed", content)
		}
	}
}

func TestProcLoadSourceOnRealSystem(t *testing.T) {
	if _, err := os.Stat("/proc/loadavg"); err != nil {
		t.Skip("no /proc/loadavg on this platform")
	}
	src := &ProcLoadSource{Host: "real"}
	s := src.Sample()
	if s.RunQueue < 0 || s.RunQueue > 1e8 {
		t.Fatalf("implausible real load: %+v", s)
	}
}
