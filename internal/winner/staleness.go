package winner

import (
	"sort"
	"time"
)

// Staleness handling: a host whose node manager stops reporting (crashed
// machine, partitioned network) must not keep winning placements on the
// strength of an old "idle" sample. When a maximum sample age is
// configured, hosts with older samples are excluded from BestHost/BestOf
// and ranked last.

// SetMaxSampleAge enables staleness exclusion: samples older than d are
// ignored for placement. now is the clock source (nil = time.Now; tests
// inject a fake). d <= 0 disables the check (the default).
func (m *Manager) SetMaxSampleAge(d time.Duration, now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	m.mu.Lock()
	m.maxAge = d
	m.now = now
	// Re-stamp existing samples so enabling the check does not instantly
	// expire hosts that reported under the previous clock.
	t := now()
	for _, h := range m.hosts {
		h.seen = t
	}
	m.mu.Unlock()
}

// fresh reports whether h's sample is usable under the staleness policy.
// Callers hold m.mu (read or write).
func (m *Manager) fresh(h *hostEntry) bool {
	if m.maxAge <= 0 {
		return true
	}
	return m.now().Sub(h.seen) <= m.maxAge
}

// StaleHosts returns the names of hosts currently excluded by the
// staleness policy, sorted.
func (m *Manager) StaleHosts() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for name, h := range m.hosts {
		if !m.fresh(h) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
