// Package winner reproduces the role of the Winner resource management
// system (Arndt, Freisleben, Kielmann, Thilo 1998) that the paper's naming
// service consults: one node manager per workstation periodically measures
// the node's performance and load, a central system manager aggregates the
// reports and answers "which machine currently has the best performance".
//
// Measurements come from a pluggable LoadSource so the same node manager
// runs against the simulated NOW (internal/cluster) or any other provider.
package winner

import (
	"fmt"

	"repro/internal/cdr"
)

// LoadSample is one point-in-time measurement of a host, the data a node
// manager ships to the system manager.
type LoadSample struct {
	// Host is the logical workstation name.
	Host string
	// Speed is the host's static relative CPU performance (1.0 = the
	// reference machine; a 2.0 host runs CPU-bound work twice as fast).
	Speed float64
	// RunQueue is the current number of runnable processes competing for
	// the CPUs (background load plus active jobs), the classic Unix load
	// figure Winner's node managers collect.
	RunQueue float64
	// CPUs is the processor count of the workstation (Winner schedules
	// over networks of mixed uniprocessor/multiprocessor workstations;
	// 0 is treated as 1).
	CPUs int32
	// Seq orders samples from one host; the system manager ignores
	// samples older than what it already has.
	Seq uint64
}

// NCPUs returns the processor count, defaulting to 1.
func (s LoadSample) NCPUs() float64 {
	if s.CPUs <= 0 {
		return 1
	}
	return float64(s.CPUs)
}

// EffectiveSpeed is the load index Winner ranks hosts by: the per-CPU
// speed share a newly placed process would receive, assuming the run
// queue plus the new process spread fairly over the workstation's CPUs. A
// multiprocessor delivers full per-CPU speed until every CPU has a
// runnable process.
func (s LoadSample) EffectiveSpeed() float64 {
	demand := s.RunQueue + 1
	cpus := s.NCPUs()
	if demand <= cpus {
		return s.Speed
	}
	return s.Speed * cpus / demand
}

func (s LoadSample) String() string {
	return fmt.Sprintf("%s speed=%.2f runq=%.2f eff=%.3f", s.Host, s.Speed, s.RunQueue, s.EffectiveSpeed())
}

// MarshalCDR encodes the sample.
func (s LoadSample) MarshalCDR(e *cdr.Encoder) {
	e.PutString(s.Host)
	e.PutFloat64(s.Speed)
	e.PutFloat64(s.RunQueue)
	e.PutInt32(s.CPUs)
	e.PutUint64(s.Seq)
}

// UnmarshalCDR decodes the sample.
func (s *LoadSample) UnmarshalCDR(d *cdr.Decoder) error {
	s.Host = d.GetString()
	s.Speed = d.GetFloat64()
	s.RunQueue = d.GetFloat64()
	s.CPUs = d.GetInt32()
	s.Seq = d.GetUint64()
	return d.Err()
}

// LoadSource provides measurements for one host (what a node manager reads
// from the operating system on a real workstation).
type LoadSource interface {
	Sample() LoadSample
}

// LoadSourceFunc adapts a function to LoadSource.
type LoadSourceFunc func() LoadSample

// Sample implements LoadSource.
func (f LoadSourceFunc) Sample() LoadSample { return f() }

// HostInfo is the system manager's view of one host.
type HostInfo struct {
	// Sample is the newest report from the host.
	Sample LoadSample
	// Pending counts placements advised since that report: processes the
	// system manager has steered to the host that the next measurement
	// has not yet observed. They are charged to the run queue when
	// ranking, so a burst of placement queries spreads over hosts instead
	// of dog-piling the momentary best one.
	Pending int
}

// AdjustedEffectiveSpeed ranks the host including pending placements.
func (h HostInfo) AdjustedEffectiveSpeed() float64 {
	adjusted := h.Sample
	adjusted.RunQueue += float64(h.Pending)
	return adjusted.EffectiveSpeed()
}

// MarshalCDR encodes the host info.
func (h HostInfo) MarshalCDR(e *cdr.Encoder) {
	h.Sample.MarshalCDR(e)
	e.PutInt32(int32(h.Pending))
}

// UnmarshalCDR decodes the host info.
func (h *HostInfo) UnmarshalCDR(d *cdr.Decoder) error {
	if err := h.Sample.UnmarshalCDR(d); err != nil {
		return err
	}
	h.Pending = int(d.GetInt32())
	return d.Err()
}
