package winner

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cdr"
	"repro/internal/orb"
)

func sample(host string, speed, runq float64, seq uint64) LoadSample {
	return LoadSample{Host: host, Speed: speed, RunQueue: runq, Seq: seq}
}

func TestEffectiveSpeed(t *testing.T) {
	cases := []struct {
		s    LoadSample
		want float64
	}{
		{sample("a", 1, 0, 0), 1},
		{sample("a", 1, 1, 0), 0.5},
		{sample("a", 2, 1, 0), 1},
		{sample("a", 1, 3, 0), 0.25},
	}
	for _, c := range cases {
		if got := c.s.EffectiveSpeed(); got != c.want {
			t.Errorf("EffectiveSpeed(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestEffectiveSpeedMultiprocessor(t *testing.T) {
	// A 4-CPU workstation absorbs three competitors at full speed.
	s := LoadSample{Host: "smp", Speed: 1, RunQueue: 3, CPUs: 4}
	if got := s.EffectiveSpeed(); got != 1 {
		t.Fatalf("eff = %v", got)
	}
	// Demand 6 on 4 CPUs → 4/6 of per-CPU speed.
	s.RunQueue = 5
	if got := s.EffectiveSpeed(); got != 4.0/6.0 {
		t.Fatalf("eff = %v", got)
	}
}

func TestManagerPrefersLoadedSMPOverLoadedUni(t *testing.T) {
	m := NewManager()
	m.Report(LoadSample{Host: "uni", Speed: 1, RunQueue: 1, CPUs: 1, Seq: 1})
	m.Report(LoadSample{Host: "smp", Speed: 1, RunQueue: 1, CPUs: 4, Seq: 1})
	host, err := m.BestHost(nil)
	if err != nil || host != "smp" {
		t.Fatalf("BestHost = %q, %v", host, err)
	}
}

func TestManagerBestHostPicksLeastLoaded(t *testing.T) {
	m := NewManager()
	m.Report(sample("busy", 1, 2, 1))
	m.Report(sample("idle", 1, 0, 1))
	m.Report(sample("half", 1, 1, 1))
	host, err := m.BestHost(nil)
	if err != nil || host != "idle" {
		t.Fatalf("BestHost = %q, %v", host, err)
	}
}

func TestManagerBestHostHonoursSpeed(t *testing.T) {
	m := NewManager()
	m.Report(sample("slow-idle", 1, 0, 1))
	m.Report(sample("fast-loaded", 4, 1, 1)) // eff 2 > 1
	host, err := m.BestHost(nil)
	if err != nil || host != "fast-loaded" {
		t.Fatalf("BestHost = %q, %v", host, err)
	}
}

func TestManagerPendingPlacementFeedback(t *testing.T) {
	m := NewManager()
	for i := 0; i < 4; i++ {
		m.Report(sample(fmt.Sprintf("h%d", i), 1, 0, 1))
	}
	seen := map[string]int{}
	for i := 0; i < 4; i++ {
		h, err := m.BestHost(nil)
		if err != nil {
			t.Fatal(err)
		}
		seen[h]++
	}
	// Four placements over four idle hosts must land on four distinct
	// hosts thanks to pending-placement charging.
	if len(seen) != 4 {
		t.Fatalf("placements dog-piled: %v", seen)
	}
}

func TestManagerFreshReportClearsPending(t *testing.T) {
	m := NewManager()
	m.Report(sample("h", 1, 0, 1))
	if _, err := m.BestHost(nil); err != nil {
		t.Fatal(err)
	}
	info, _ := m.Host("h")
	if info.Pending != 1 {
		t.Fatalf("pending = %d", info.Pending)
	}
	m.Report(sample("h", 1, 0.5, 2))
	info, _ = m.Host("h")
	if info.Pending != 0 {
		t.Fatalf("pending after report = %d", info.Pending)
	}
}

func TestManagerStaleSeqDropped(t *testing.T) {
	m := NewManager()
	m.Report(sample("h", 1, 5, 10))
	m.Report(sample("h", 1, 0, 3)) // stale
	info, _ := m.Host("h")
	if info.Sample.RunQueue != 5 {
		t.Fatalf("stale sample applied: %+v", info.Sample)
	}
}

func TestManagerExclude(t *testing.T) {
	m := NewManager()
	m.Report(sample("a", 1, 0, 1))
	m.Report(sample("b", 1, 1, 1))
	host, err := m.BestHost(map[string]bool{"a": true})
	if err != nil || host != "b" {
		t.Fatalf("BestHost = %q, %v", host, err)
	}
	_, err = m.BestHost(map[string]bool{"a": true, "b": true})
	if err != ErrNoHosts {
		t.Fatalf("err = %v", err)
	}
}

func TestManagerBestOf(t *testing.T) {
	m := NewManager()
	m.Report(sample("a", 1, 3, 1))
	m.Report(sample("b", 1, 1, 1))
	m.Report(sample("c", 1, 0, 1))
	host, err := m.BestOf([]string{"a", "b"})
	if err != nil || host != "b" {
		t.Fatalf("BestOf = %q, %v", host, err)
	}
	if _, err := m.BestOf([]string{"unknown"}); err != ErrNoHosts {
		t.Fatalf("err = %v", err)
	}
	if _, err := m.BestOf(nil); err != ErrNoHosts {
		t.Fatalf("err = %v", err)
	}
}

func TestManagerEmptyBestHost(t *testing.T) {
	if _, err := NewManager().BestHost(nil); err != ErrNoHosts {
		t.Fatalf("err = %v", err)
	}
}

func TestManagerRankingOrder(t *testing.T) {
	m := NewManager()
	m.Report(sample("c", 1, 0, 1))
	m.Report(sample("a", 1, 2, 1))
	m.Report(sample("b", 1, 1, 1))
	r := m.Ranking()
	want := []string{"c", "b", "a"}
	for i, h := range r {
		if h.Sample.Host != want[i] {
			t.Fatalf("ranking = %v", r)
		}
	}
}

func TestManagerRankingTieBreakDeterministic(t *testing.T) {
	m := NewManager()
	m.Report(sample("b", 1, 1, 1))
	m.Report(sample("a", 1, 1, 1))
	r := m.Ranking()
	if r[0].Sample.Host != "a" || r[1].Sample.Host != "b" {
		t.Fatalf("tie break: %v", r)
	}
}

func TestManagerForget(t *testing.T) {
	m := NewManager()
	m.Report(sample("h", 1, 0, 1))
	m.Forget("h")
	if m.HostCount() != 0 {
		t.Fatal("host not forgotten")
	}
}

func TestManagerIgnoresEmptyHost(t *testing.T) {
	m := NewManager()
	m.Report(sample("", 1, 0, 1))
	if m.HostCount() != 0 {
		t.Fatal("empty host accepted")
	}
}

func TestManagerConcurrent(t *testing.T) {
	m := NewManager()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.Report(sample(fmt.Sprintf("h%d", g), 1, float64(i%4), uint64(i+1)))
				_, _ = m.BestHost(nil)
				m.Ranking()
			}
		}(g)
	}
	wg.Wait()
	if m.HostCount() != 8 {
		t.Fatalf("hosts = %d", m.HostCount())
	}
}

func TestLoadSampleCDRRoundTrip(t *testing.T) {
	in := sample("node07", 1.5, 2.25, 42)
	e := cdr.NewEncoder(0)
	in.MarshalCDR(e)
	var out LoadSample
	d := cdr.NewDecoder(e.Bytes())
	if err := out.UnmarshalCDR(d); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

// Property: the best host always has the maximal adjusted effective speed
// at selection time.
func TestQuickBestHostIsArgmax(t *testing.T) {
	f := func(runqs []uint8) bool {
		if len(runqs) == 0 {
			return true
		}
		if len(runqs) > 16 {
			runqs = runqs[:16]
		}
		m := NewManager()
		best := -1.0
		for i, q := range runqs {
			s := sample(fmt.Sprintf("h%02d", i), 1, float64(q%8), 1)
			m.Report(s)
			if e := s.EffectiveSpeed(); e > best {
				best = e
			}
		}
		host, err := m.BestHost(nil)
		if err != nil {
			return false
		}
		info, ok := m.Host(host)
		if !ok {
			return false
		}
		// Pending was charged after selection; undo it for comparison.
		info.Pending--
		return info.AdjustedEffectiveSpeed() == best
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func startSystemManager(t *testing.T) (*Client, *Manager) {
	t.Helper()
	o := orb.New(orb.Options{Name: "winner-test"})
	t.Cleanup(o.Shutdown)
	a, err := o.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager()
	ref := a.Activate(DefaultKey, NewServant(mgr))
	return NewClient(o, ref), mgr
}

func TestRemoteReportAndBestHost(t *testing.T) {
	c, _ := startSystemManager(t)
	if err := c.Report(context.Background(), sample("busy", 1, 4, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Report(context.Background(), sample("idle", 1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	host, err := c.BestHost(context.Background(), nil)
	if err != nil || host != "idle" {
		t.Fatalf("BestHost = %q, %v", host, err)
	}
	host, err = c.BestHost(context.Background(), []string{"idle"})
	if err != nil || host != "busy" {
		t.Fatalf("BestHost(excl) = %q, %v", host, err)
	}
}

func TestRemoteBestOf(t *testing.T) {
	c, _ := startSystemManager(t)
	for i, q := range []float64{2, 0, 1} {
		if err := c.Report(context.Background(), sample(fmt.Sprintf("h%d", i), 1, q, 1)); err != nil {
			t.Fatal(err)
		}
	}
	host, err := c.BestOf(context.Background(), []string{"h0", "h2"})
	if err != nil || host != "h2" {
		t.Fatalf("BestOf = %q, %v", host, err)
	}
}

func TestRemoteRankingAndHostInfo(t *testing.T) {
	c, _ := startSystemManager(t)
	if err := c.Report(context.Background(), sample("a", 2, 1, 7)); err != nil {
		t.Fatal(err)
	}
	if err := c.Report(context.Background(), sample("b", 1, 0, 3)); err != nil {
		t.Fatal(err)
	}
	r, err := c.Ranking(context.Background())
	if err != nil || len(r) != 2 {
		t.Fatalf("ranking = %+v, %v", r, err)
	}
	if r[0].Sample.Host != "b" && r[0].Sample.Host != "a" {
		t.Fatalf("ranking head = %+v", r[0])
	}
	info, err := c.HostInfo(context.Background(), "a")
	if err != nil || info.Sample.Seq != 7 {
		t.Fatalf("HostInfo = %+v, %v", info, err)
	}
	if _, err := c.HostInfo(context.Background(), "missing"); !orb.IsUserException(err, ExNoHosts) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoteNoHostsException(t *testing.T) {
	c, _ := startSystemManager(t)
	if _, err := c.BestHost(context.Background(), nil); !orb.IsUserException(err, ExNoHosts) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoteForget(t *testing.T) {
	c, mgr := startSystemManager(t)
	if err := c.Report(context.Background(), sample("h", 1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Forget(context.Background(), "h"); err != nil {
		t.Fatal(err)
	}
	if mgr.HostCount() != 0 {
		t.Fatal("forget did not propagate")
	}
}

func TestNodeManagerReportOnce(t *testing.T) {
	m := NewManager()
	var tick float64
	src := LoadSourceFunc(func() LoadSample {
		tick++
		return LoadSample{Host: "n", Speed: 1, RunQueue: tick}
	})
	nm := NewNodeManager(src, ManagerReporter{M: m}, time.Hour)
	if err := nm.ReportOnce(); err != nil {
		t.Fatal(err)
	}
	if err := nm.ReportOnce(); err != nil {
		t.Fatal(err)
	}
	info, ok := m.Host("n")
	if !ok || info.Sample.RunQueue != 2 || info.Sample.Seq != 2 {
		t.Fatalf("info = %+v", info)
	}
}

func TestNodeManagerPeriodicLoop(t *testing.T) {
	m := NewManager()
	src := LoadSourceFunc(func() LoadSample { return LoadSample{Host: "n", Speed: 1} })
	nm := NewNodeManager(src, ManagerReporter{M: m}, 5*time.Millisecond)
	nm.Start()
	defer nm.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if info, ok := m.Host("n"); ok && info.Sample.Seq >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node manager never ticked")
		}
		time.Sleep(time.Millisecond)
	}
}

type failingReporter struct{ fails int }

func (f *failingReporter) Report(context.Context, LoadSample) error {
	f.fails++
	return fmt.Errorf("down")
}

func TestNodeManagerCountsFailures(t *testing.T) {
	src := LoadSourceFunc(func() LoadSample { return LoadSample{Host: "n", Speed: 1} })
	nm := NewNodeManager(src, &failingReporter{}, time.Hour)
	if err := nm.ReportOnce(); err == nil {
		t.Fatal("expected error")
	}
	if nm.Failures() != 1 {
		t.Fatalf("failures = %d", nm.Failures())
	}
}

func TestNodeManagerStopIdempotent(t *testing.T) {
	src := LoadSourceFunc(func() LoadSample { return LoadSample{Host: "n", Speed: 1} })
	nm := NewNodeManager(src, ManagerReporter{M: NewManager()}, time.Millisecond)
	nm.Start()
	nm.Start() // idempotent
	nm.Stop()
	nm.Stop()
}

func TestNodeManagerStopWithoutStart(t *testing.T) {
	src := LoadSourceFunc(func() LoadSample { return LoadSample{Host: "n", Speed: 1} })
	nm := NewNodeManager(src, ManagerReporter{M: NewManager()}, time.Millisecond)
	nm.Stop() // must not hang
}

func TestNodeManagerOverORB(t *testing.T) {
	c, mgr := startSystemManager(t)
	src := LoadSourceFunc(func() LoadSample { return LoadSample{Host: "remote-node", Speed: 2, RunQueue: 1} })
	nm := NewNodeManager(src, c, time.Hour)
	if err := nm.ReportOnce(); err != nil {
		t.Fatal(err)
	}
	info, ok := mgr.Host("remote-node")
	if !ok || info.Sample.Speed != 2 {
		t.Fatalf("info = %+v ok=%v", info, ok)
	}
}
