package winner

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// ProcLoadSource measures the real machine through /proc/loadavg — what
// Winner's node managers do on actual Unix workstations. It is used by
// the winnerd daemon; simulations use cluster.Host instead.
type ProcLoadSource struct {
	// Host is the name reported in samples (defaults to the hostname).
	Host string
	// Speed is the host's static relative speed (defaults to 1).
	Speed float64
	// Path is the loadavg file (defaults to /proc/loadavg; tests
	// substitute a fixture).
	Path string
}

// Sample implements LoadSource. On read or parse errors it reports an
// infinite-load sample, so a broken measurement demotes the host instead
// of making it look idle.
func (p *ProcLoadSource) Sample() LoadSample {
	host := p.Host
	if host == "" {
		host, _ = os.Hostname()
	}
	speed := p.Speed
	if speed <= 0 {
		speed = 1
	}
	path := p.Path
	if path == "" {
		path = "/proc/loadavg"
	}
	s := LoadSample{Host: host, Speed: speed, CPUs: int32(runtime.NumCPU())}
	load, err := readLoadAvg(path)
	if err != nil {
		s.RunQueue = 1e9
		return s
	}
	s.RunQueue = load
	return s
}

// readLoadAvg parses the 1-minute load average from a loadavg-format
// file ("0.52 0.58 0.59 1/467 12345").
func readLoadAvg(path string) (float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("winner: read %s: %w", path, err)
	}
	fields := strings.Fields(string(raw))
	if len(fields) == 0 {
		return 0, fmt.Errorf("winner: empty loadavg file %s", path)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, fmt.Errorf("winner: parse loadavg %q: %w", fields[0], err)
	}
	if v < 0 {
		return 0, fmt.Errorf("winner: negative loadavg %v", v)
	}
	return v, nil
}
