package winner

import (
	"context"
	"sync"
	"time"
)

// Reporter is the destination a node manager pushes samples to: the remote
// Client and the in-process Manager both satisfy it.
type Reporter interface {
	Report(ctx context.Context, s LoadSample) error
}

// ManagerReporter adapts the in-process Manager to the Reporter interface.
type ManagerReporter struct{ M *Manager }

// Report implements Reporter.
func (r ManagerReporter) Report(_ context.Context, s LoadSample) error {
	r.M.Report(s)
	return nil
}

// NodeManager is the per-workstation Winner daemon: it samples its host's
// LoadSource on a fixed period and pushes each sample to the system
// manager. Push failures are counted and retried on the next tick; the
// node manager never gives up on its own.
type NodeManager struct {
	src      LoadSource
	dst      Reporter
	interval time.Duration

	mu       sync.Mutex
	seq      uint64
	failures int
	started  bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewNodeManager creates a node manager sampling src every interval and
// reporting to dst. Call Start to begin; Stop to halt.
func NewNodeManager(src LoadSource, dst Reporter, interval time.Duration) *NodeManager {
	if interval <= 0 {
		interval = time.Second
	}
	return &NodeManager{
		src:      src,
		dst:      dst,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// ReportOnce samples and pushes a single measurement immediately. It is
// used at startup (so the system manager learns about the host before the
// first tick) and by tests and simulations driving time manually.
func (n *NodeManager) ReportOnce() error {
	s := n.src.Sample()
	n.mu.Lock()
	n.seq++
	s.Seq = n.seq
	n.mu.Unlock()
	// The push is bounded by the sampling interval: a report that cannot
	// make it before the next tick is stale anyway.
	ctx, cancel := context.WithTimeout(context.Background(), n.interval)
	defer cancel()
	if err := n.dst.Report(ctx, s); err != nil {
		n.mu.Lock()
		n.failures++
		n.mu.Unlock()
		return err
	}
	return nil
}

// Failures returns the number of failed pushes so far.
func (n *NodeManager) Failures() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.failures
}

// Start launches the periodic sampling loop (after one immediate report).
// Start is idempotent.
func (n *NodeManager) Start() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()
	_ = n.ReportOnce()
	go func() {
		defer close(n.done)
		t := time.NewTicker(n.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				_ = n.ReportOnce()
			case <-n.stop:
				return
			}
		}
	}()
}

// Stop halts the sampling loop and waits for it to exit. Stopping a node
// manager that was never started is a no-op.
func (n *NodeManager) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.mu.Lock()
	started := n.started
	n.mu.Unlock()
	if started {
		<-n.done
	}
}
