package orb

import (
	"context"
	"time"

	"repro/internal/cdr"
)

// CallOption shapes a single invocation of the unified call API. Options
// compose left to right over a zero CallOptions value (plus whatever the
// calling layer's own defaults are: an ft proxy's retry policy, a
// Caller's Opts). This one variadic surface is the ORB's only
// synchronous call entry point (the historical Invoke / InvokeOptions /
// InvokeFollowForwards triplet has been removed).
type CallOption func(*CallOptions)

// WithDeadline bounds the call end to end, measured from the moment it is
// issued. The tighter of this, the context's own deadline and the ORB's
// default CallTimeout wins; the remaining time travels in the SCDeadline
// service context so expired requests are shed server-side.
func WithDeadline(d time.Duration) CallOption {
	return func(o *CallOptions) { o.Deadline = d }
}

// WithRetryBudget grants the resilient-call engine n recover-and-replay
// rounds after the first failed attempt.
func WithRetryBudget(n int) CallOption {
	return func(o *CallOptions) { o.RetryBudget = n }
}

// WithBackoff spaces successive replay rounds.
func WithBackoff(b Backoff) CallOption {
	return func(o *CallOptions) { o.Backoff = b }
}

// WithIdempotent marks the operation safe to replay even when a failure
// leaves the first attempt's outcome unknown (COMM_FAILURE after the
// request was written).
func WithIdempotent() CallOption {
	return func(o *CallOptions) { o.Idempotent = true }
}

// WithFollowForwards makes the call transparently follow
// LOCATION_FORWARD replies (bounded, to break forwarding loops).
func WithFollowForwards() CallOption {
	return func(o *CallOptions) { o.FollowForwards = true }
}

// WithoutCoalescing flushes this call's request immediately instead of
// letting it ride the connection's write-coalescing window. Latency-
// critical singleton calls opt out; fan-outs should stay coalescable.
func WithoutCoalescing() CallOption {
	return func(o *CallOptions) { o.NoCoalesce = true }
}

// WithPriority stamps the call with a QoS class (carried in the SCQoS
// service context): ClassCritical is dispatched first and never shed by
// admission control, ClassBatch is shed first under overload. The
// default, ClassNormal, sends no context at all.
func WithPriority(p Priority) CallOption {
	return func(o *CallOptions) { o.Priority = p }
}

// WithTenant identifies the caller for per-tenant admission fairness:
// the server spends one token from this tenant's bucket per admitted
// request. Calls without a tenant share the anonymous bucket.
func WithTenant(tenant string) CallOption {
	return func(o *CallOptions) { o.Tenant = tenant }
}

// CheckpointMode selects how a fault-tolerant proxy checkpoints around
// one call. The plain ORB ignores it; ft.Proxy.Call interprets it.
type CheckpointMode int

const (
	// CheckpointDefault follows the proxy's Policy (CheckpointEvery,
	// AsyncCheckpoint).
	CheckpointDefault CheckpointMode = iota
	// CheckpointSync forces a synchronous checkpoint after this call,
	// regardless of CheckpointEvery cadence or async pipelining.
	CheckpointSync
	// CheckpointAsync requests a pipelined (off-critical-path) store
	// write for this call's checkpoint.
	CheckpointAsync
	// CheckpointSkip suppresses the post-call checkpoint entirely.
	CheckpointSkip
)

// WithCheckpointMode overrides the proxy's checkpoint behaviour for this
// call only (see CheckpointMode).
func WithCheckpointMode(m CheckpointMode) CallOption {
	return func(o *CallOptions) { o.Checkpoint = m }
}

// NewCallOptions folds opts over a zero CallOptions value. Layers that
// mirror the Call API (ft proxies, generated stubs) use it to accept the
// same variadic options.
func NewCallOptions(opts ...CallOption) CallOptions {
	var o CallOptions
	o.Apply(opts...)
	return o
}

// Apply folds opts onto o in place, so a layer can overlay per-call
// options over its own defaults.
func (o *CallOptions) Apply(opts ...CallOption) {
	for _, opt := range opts {
		opt(o)
	}
}

// Call performs a synchronous remote invocation of op on ref: args fills
// the request body (nil for no arguments), reply consumes the reply body
// (nil for void results). Behaviour is shaped by the variadic options —
// deadline, retry budget and backoff, idempotency, LOCATION_FORWARD
// following, write-coalescing opt-out. With no options it is a plain
// bounded round trip: transport failures surface as COMM_FAILURE, servant
// errors as *UserException / *SystemException.
func (o *ORB) Call(ctx context.Context, ref ObjectRef, op string, args func(*cdr.Encoder), reply func(*cdr.Decoder) error, opts ...CallOption) error {
	if len(opts) == 0 {
		// Fast path: a zero CallOptions literal stays off the heap, while
		// folding options pins the value with a pointer (escape analysis).
		return o.CallOpts(ctx, ref, op, args, reply, CallOptions{})
	}
	co := NewCallOptions(opts...)
	return o.CallOpts(ctx, ref, op, args, reply, co)
}

// CallOpts is Call with a pre-built CallOptions value — the non-variadic
// core that layers holding a long-lived CallOptions (Caller, ft proxies)
// invoke without re-folding options per call.
func (o *ORB) CallOpts(ctx context.Context, ref ObjectRef, op string, args func(*cdr.Encoder), reply func(*cdr.Decoder) error, co CallOptions) error {
	if ref.IsNil() {
		return &SystemException{Kind: ExObjectNotExist, Detail: "nil object reference"}
	}
	if co.FollowForwards || co.RetryBudget > 0 {
		c := &Caller{ORB: o, Opts: co}
		c.SetRef(ref)
		return c.Invoke(ctx, op, args, reply)
	}
	return o.invokeOnce(ctx, ref, op, args, reply, co)
}

// Call runs one resilient invocation through the engine: the caller's
// configured Opts overlaid with the per-call options. It is the unified
// surface mirroring ORB.Call.
func (c *Caller) Call(ctx context.Context, op string, args func(*cdr.Encoder), reply func(*cdr.Decoder) error, opts ...CallOption) error {
	if len(opts) == 0 {
		return c.Invoke(ctx, op, args, reply)
	}
	co := c.Opts
	co.Apply(opts...)
	sub := &Caller{
		ORB: c.ORB, Resolve: c.Resolve, Recover: c.Recover, Redirect: c.Redirect,
		RetryOn: c.RetryOn, OnRetry: c.OnRetry, Opts: co, MaxHops: c.MaxHops,
	}
	sub.SetRef(c.Ref())
	err := sub.Invoke(ctx, op, args, reply)
	// Keep any reference the engine recovered to, so later calls through
	// this Caller start from the live target.
	if ref := sub.Ref(); !ref.IsNil() && ref != c.Ref() {
		c.SetRef(ref)
	}
	return err
}
