package orb

import (
	"context"
	"sync"

	"repro/internal/cdr"
	"repro/internal/giop"
)

// Request is a DII-style deferred request object. Mirroring the CORBA
// Dynamic Invocation Interface that the paper uses for asynchronous calls,
// a client builds a Request, Sends it without blocking, continues working,
// and later polls or waits for the response.
//
// A Request is single-shot: Send may be called once. It is safe to poll
// from one goroutine while the transfer completes in another.
type Request struct {
	orb *ORB
	ctx context.Context
	ref ObjectRef
	op  string

	args *cdr.Encoder

	mu          sync.Mutex
	sent        bool
	intercepted bool
	done        chan struct{}
	msg         *giop.Message   // the request as sent (for ReplyReceived)
	benc        *cdr.Encoder    // pooled encoder backing msg.Body
	sentCtx     context.Context // ctx after the RequestSent hooks ran
	reply       *giop.Message
	err         error
}

// CreateRequest builds a deferred request for op on ref (the DII
// create_request analogue). ctx bounds the whole deferred call — Send's
// transfer and the wait in GetResponse — exactly as it would a synchronous
// Invoke: cancellation abandons the reply and sends a wire-level cancel
// (the http.NewRequestWithContext convention: ctx is captured at
// construction so Send/GetResponse keep their signatures).
func (o *ORB) CreateRequest(ctx context.Context, ref ObjectRef, op string) *Request {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Request{
		orb:  o,
		ctx:  ctx,
		ref:  ref,
		op:   op,
		args: cdr.NewEncoder(128),
		done: make(chan struct{}),
	}
}

// Ref returns the target object reference.
func (r *Request) Ref() ObjectRef { return r.ref }

// Operation returns the operation name.
func (r *Request) Operation() string { return r.op }

// Args exposes the argument encoder. Write all arguments before Send.
func (r *Request) Args() *cdr.Encoder { return r.args }

// Send initiates the invocation without waiting for the reply (the DII
// send_deferred analogue). Calling Send twice is a no-op.
//
// Send-side interceptors run synchronously before Send returns, so the
// request is stamped (e.g. with the caller's virtual time) as of the
// moment of sending, not whenever the transfer goroutine gets scheduled.
func (r *Request) Send() {
	r.mu.Lock()
	if r.sent {
		r.mu.Unlock()
		return
	}
	r.sent = true
	r.mu.Unlock()

	m, enc := r.orb.buildRequest(r.ref, r.op, func(e *cdr.Encoder) {
		e.PutRaw(r.args.Bytes())
	})
	r.orb.interceptSendRequest(m)
	sctx := r.orb.callRequestSent(r.ctx, m)
	r.mu.Lock()
	r.msg, r.benc, r.sentCtx = m, enc, sctx
	r.mu.Unlock()

	go func() {
		reply, err := r.orb.transferRequest(sctx, r.ref, m, CallOptions{})
		r.mu.Lock()
		r.reply, r.err = reply, err
		r.mu.Unlock()
		close(r.done)
	}()
}

// PollResponse reports whether the response has arrived (the DII
// poll_response analogue). It never blocks.
func (r *Request) PollResponse() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// GetResponse blocks until the response arrives and decodes it with
// readReply (nil for void results); the DII get_response analogue.
// Transport failures surface as COMM_FAILURE, exactly as for synchronous
// calls, so request proxies can apply the same recovery.
func (r *Request) GetResponse(readReply func(*cdr.Decoder) error) error {
	r.mu.Lock()
	sent := r.sent
	r.mu.Unlock()
	if !sent {
		return &SystemException{Kind: ExBadOperation, Detail: "GetResponse before Send"}
	}
	<-r.done
	r.mu.Lock()
	intercepted := r.intercepted
	r.intercepted = true
	benc := r.benc
	r.benc = nil
	r.mu.Unlock()
	if r.err != nil {
		if !intercepted {
			r.orb.callReplyReceived(r.sentCtx, r.msg, nil, r.err)
			benc.Release()
		}
		return r.err
	}
	if !intercepted {
		// Receive interceptors run here, in the consumer's goroutine, at
		// most once per request (GetResponse may be called repeatedly).
		r.orb.interceptReceiveReply(r.reply)
		r.orb.callReplyReceived(r.sentCtx, r.msg, r.reply, nil)
		// The pooled request-body encoder is only released once every
		// observer of msg.Body has run.
		benc.Release()
	}
	return decodeReply(r.reply, readReply)
}
