package orb

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestTenantBucketsConcurrentAdmission hammers one tenant's bucket from
// many goroutines at a frozen instant (no refill can hide over-admission)
// and then at exactly +1s (refill must credit exactly rate tokens). Run
// under -race this also exercises the bucket table's locking.
func TestTenantBucketsConcurrentAdmission(t *testing.T) {
	tb := newTenantBuckets(50, 100)
	base := time.Now()

	slam := func(now time.Time) int64 {
		var admitted atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					ok, retryAfter := tb.admit("acme", now)
					if ok {
						admitted.Add(1)
					} else if retryAfter <= 0 {
						t.Error("rejected admit returned a non-positive retry-after hint")
					}
				}
			}()
		}
		wg.Wait()
		return admitted.Load()
	}

	// 400 concurrent attempts at one instant: exactly the burst admits.
	if n := slam(base); n != 100 {
		t.Fatalf("admitted %d of 400 concurrent requests at one instant, want exactly burst (100)", n)
	}
	// One second later the bucket holds exactly rate (50) new tokens.
	if n := slam(base.Add(time.Second)); n != 50 {
		t.Fatalf("admitted %d after 1s refill, want exactly rate (50)", n)
	}
	// Tenants do not share buckets.
	if ok, _ := tb.admit("other", base); !ok {
		t.Fatal("fresh tenant rejected while another tenant's bucket is empty")
	}
	if n := tb.size(); n != 2 {
		t.Fatalf("bucket table size = %d, want 2", n)
	}
}

// TestStrictPriorityAtSaturation drives the pool (no workers — the test
// dequeues by hand) past the ¾-occupancy saturation threshold and keeps
// it there: as long as critical work is queued, nothing else may be
// dispatched and the batch backlog must not move.
func TestStrictPriorityAtSaturation(t *testing.T) {
	p := newWorkerPool(0, 8, QoSOptions{}) // batch queue cap = 8/4 = 2
	defer p.stop()
	mk := func(c Priority) *dispatchTask {
		return &dispatchTask{class: c, rctx: context.Background()}
	}
	for _, c := range []Priority{ClassBatch, ClassBatch, ClassNormal, ClassNormal, ClassCritical, ClassCritical} {
		if got := p.enqueue(mk(c)); got != admitQueued {
			t.Fatalf("enqueue(%v) = %v, want admitQueued", c, got)
		}
	}
	// queued = 6 ≥ ¾·8: saturated. Top the queue back up with a fresh
	// critical task after every pick so saturation (and queued critical
	// work) persists across the whole loop.
	for i := 0; i < 32; i++ {
		got := p.next()
		if got.class != ClassCritical {
			t.Fatalf("pick %d dispatched class %v while critical was queued at saturation", i, got.class)
		}
		if n := p.classDepth(ClassBatch); n != 2 {
			t.Fatalf("pick %d: batch depth = %d, want the backlog untouched (2)", i, n)
		}
		if got := p.enqueue(mk(ClassCritical)); got != admitQueued {
			t.Fatalf("refill enqueue = %v, want admitQueued", got)
		}
	}
	// Stop refilling: the backlog drains, batch included.
	for i := 0; i < 6; i++ {
		if p.next() == nil {
			t.Fatalf("drain pick %d returned nil with work queued", i)
		}
	}
	if n := p.depth(); n != 0 {
		t.Fatalf("depth after drain = %d, want 0", n)
	}
}

// TestWeightedDequeueServesBatch checks the comfortable regime: below
// saturation the weighted round-robin must hand every class a slot within
// one credit cycle — sustained critical traffic cannot starve batch.
func TestWeightedDequeueServesBatch(t *testing.T) {
	p := newWorkerPool(0, 256, QoSOptions{}) // weights 16/4/1, far below saturation
	defer p.stop()
	for i := 0; i < 30; i++ {
		p.enqueue(&dispatchTask{class: ClassCritical, rctx: context.Background()})
	}
	for i := 0; i < 10; i++ {
		p.enqueue(&dispatchTask{class: ClassNormal, rctx: context.Background()})
	}
	for i := 0; i < 5; i++ {
		p.enqueue(&dispatchTask{class: ClassBatch, rctx: context.Background()})
	}
	served := map[Priority]int{}
	for i := 0; i < 16+4+1; i++ {
		served[p.next().class]++
	}
	if served[ClassBatch] == 0 || served[ClassNormal] == 0 {
		t.Fatalf("one full credit cycle served %v; want every class represented", served)
	}
	if served[ClassCritical] < served[ClassNormal] || served[ClassNormal] < served[ClassBatch] {
		t.Fatalf("credit cycle shares not priority-ordered: %v", served)
	}
}

// TestEnqueueBlockedEscapes fills the queue and checks both exits from
// the blocking path: a batch task fast-rejects, a normal task parks and
// escapes with admitCtxDead when its request context dies, and a parked
// task is admitted when a slot frees.
func TestEnqueueBlockedEscapes(t *testing.T) {
	p := newWorkerPool(0, 4, QoSOptions{BatchShare: 1})
	defer p.stop()
	for i := 0; i < 4; i++ {
		if got := p.enqueue(&dispatchTask{class: ClassNormal, rctx: context.Background()}); got != admitQueued {
			t.Fatalf("fill enqueue = %v", got)
		}
	}
	if got := p.enqueue(&dispatchTask{class: ClassBatch, rctx: context.Background()}); got != admitRejected {
		t.Fatalf("batch enqueue on full queue = %v, want admitRejected", got)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res := make(chan admitResult, 1)
	go func() { res <- p.enqueue(&dispatchTask{class: ClassNormal, rctx: ctx}) }()
	select {
	case r := <-res:
		t.Fatalf("enqueue on full queue returned %v immediately, want it to block", r)
	case <-time.After(50 * time.Millisecond):
	}
	cancel()
	if r := <-res; r != admitCtxDead {
		t.Fatalf("blocked enqueue after ctx death = %v, want admitCtxDead", r)
	}

	go func() { res <- p.enqueue(&dispatchTask{class: ClassNormal, rctx: context.Background()}) }()
	p.next() // free one slot; the parked enqueuer must take it
	if r := <-res; r != admitQueued {
		t.Fatalf("blocked enqueue after a slot freed = %v, want admitQueued", r)
	}
}

// waitMode polls until the ORB reaches mode (or fails the test).
func waitMode(t *testing.T, o *ORB, mode DegradeMode) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for o.DegradeMode() != mode {
		if time.Now().After(deadline) {
			t.Fatalf("mode = %v, want %v", o.DegradeMode(), mode)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDegradeControllerTransitions feeds the controller a synthetic load
// signal and checks the whole ladder: one mode per debounced step on the
// way down, one per step on the way back, with the reply-coalescing
// window and the health probe tracking each transition.
func TestDegradeControllerTransitions(t *testing.T) {
	o := New(Options{Name: "degrade-ctl", ReplyCoalesceWindow: 100 * time.Microsecond})
	t.Cleanup(o.Shutdown)

	var score atomic.Uint64 // math.Float64bits of the synthetic load score
	setScore := func(f float64) { score.Store(math.Float64bits(f)) }
	var mu sync.Mutex
	var seen []DegradeMode
	o.OnDegrade(func(m DegradeMode) {
		mu.Lock()
		seen = append(seen, m)
		mu.Unlock()
	})

	setScore(0.95)
	stop := o.StartDegradeController(DegradeConfig{
		High: 0.8, Low: 0.3, Interval: 2 * time.Millisecond, HoldTicks: 2,
		Source: func() float64 { return math.Float64frombits(score.Load()) },
	})
	defer stop()

	waitMode(t, o, ModeCriticalOnly)
	if got := o.replyCoalesceWindow(); got != 400*time.Microsecond {
		t.Fatalf("coalesce window at critical-only = %v, want 400µs (base ×4)", got)
	}
	if err := o.QoSHealthProbe(); err == nil {
		t.Fatal("QoSHealthProbe healthy while critical-only")
	}

	setScore(0.1)
	waitMode(t, o, ModeNormal)
	if got := o.replyCoalesceWindow(); got != 100*time.Microsecond {
		t.Fatalf("coalesce window back at normal = %v, want base 100µs", got)
	}
	if err := o.QoSHealthProbe(); err != nil {
		t.Fatalf("QoSHealthProbe at normal: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	want := []DegradeMode{ModeDegraded, ModeCriticalOnly, ModeDegraded, ModeNormal}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %v, want one step at a time: %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v (full: %v)", i, seen[i], want[i], seen)
		}
	}
}

// TestBatchShedEndToEnd saturates a one-worker server with the batch
// queue capped at a single slot: surplus batch calls must come back as
// TRANSIENT with a retry-after hint (IsAdmissionShed), the shed counter
// must attribute them to queue_full, and the flight recorder must carry
// the class of every batch request it saw.
func TestBatchShedEndToEnd(t *testing.T) {
	srv := New(Options{Name: "shed-srv", WorkerPool: 1, DispatchQueueDepth: 4})
	t.Cleanup(srv.Shutdown)
	a, err := srv.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sv := newCtxServant()
	ref := a.Activate("probe", sv)
	fr := obs.NewFlightRecorder(256)
	srv.AttachFlightRecorder(fr)
	cli := New(Options{Name: "shed-cli"})
	t.Cleanup(cli.Shutdown)

	// Occupy the only worker so batch calls pile into their 1-slot queue.
	blockErr := make(chan error, 1)
	go func() { blockErr <- cli.Call(context.Background(), ref, "block", nil, nil) }()
	<-sv.started

	const flood = 8
	errs := make(chan error, flood)
	for i := 0; i < flood; i++ {
		go func() {
			errs <- cli.Call(context.Background(), ref, "fast", nil, nil, WithPriority(ClassBatch))
		}()
	}
	var shed int
	for i := 0; i < flood; i++ {
		err := <-errs
		if err == nil {
			continue
		}
		if !IsAdmissionShed(err) {
			t.Fatalf("flood call error = %v, want an admission shed (TRANSIENT + retry-after)", err)
		}
		if RetryAfterHint(err) <= 0 {
			t.Fatalf("shed error carries no retry-after hint: %v", err)
		}
		shed++
	}
	if shed == 0 {
		t.Fatal("no batch call was shed past a full 1-slot batch queue")
	}
	close(sv.release)
	if err := <-blockErr; err != nil {
		t.Fatalf("blocking call: %v", err)
	}
	if n := srv.AdmissionShed(ClassBatch, ShedQueueFull); n != uint64(shed) {
		t.Fatalf("AdmissionShed(batch, queue_full) = %d, want %d", n, shed)
	}
	classed := 0
	for _, r := range fr.Snapshot() {
		if r.Class == "batch" {
			classed++
		}
	}
	if classed < flood {
		t.Fatalf("flight recorder has %d batch-classed records, want >= %d", classed, flood)
	}
}

// TestTenantThrottleEndToEnd runs a server with a 1 req/s per-tenant
// budget: the tenant's second normal-class call sheds with the exact
// time-to-next-token as its hint, while critical-class calls are exempt
// from the tenant bucket entirely.
func TestTenantThrottleEndToEnd(t *testing.T) {
	srv := New(Options{Name: "tenant-srv", QoS: QoSOptions{TenantRate: 1, TenantBurst: 1}})
	t.Cleanup(srv.Shutdown)
	a, err := srv.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ref := a.Activate("probe", newCtxServant())
	cli := New(Options{Name: "tenant-cli"})
	t.Cleanup(cli.Shutdown)
	ctx := context.Background()

	if err := cli.Call(ctx, ref, "fast", nil, nil, WithTenant("acme")); err != nil {
		t.Fatalf("first call in budget: %v", err)
	}
	err = cli.Call(ctx, ref, "fast", nil, nil, WithTenant("acme"))
	if !IsAdmissionShed(err) {
		t.Fatalf("over-budget call error = %v, want an admission shed", err)
	}
	if ra := RetryAfterHint(err); ra <= 0 || ra > time.Second {
		t.Fatalf("retry-after hint = %v, want within (0, 1s]", ra)
	}
	// Critical never spends tenant tokens.
	if err := cli.Call(ctx, ref, "fast", nil, nil, WithTenant("acme"), WithPriority(ClassCritical)); err != nil {
		t.Fatalf("critical call hit the tenant throttle: %v", err)
	}
	if n := srv.AdmissionShed(ClassNormal, ShedTenantThrottle); n != 1 {
		t.Fatalf("AdmissionShed(normal, tenant_throttle) = %d, want 1", n)
	}
}

// TestDegradeGateClosesAdmission forces critical-only mode and checks the
// admission gate: normal-class calls shed (attributed to degraded_mode),
// critical calls pass, and lifting the mode reopens admission.
func TestDegradeGateClosesAdmission(t *testing.T) {
	srv := New(Options{Name: "gate-srv"})
	t.Cleanup(srv.Shutdown)
	a, err := srv.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ref := a.Activate("probe", newCtxServant())
	cli := New(Options{Name: "gate-cli"})
	t.Cleanup(cli.Shutdown)
	ctx := context.Background()

	srv.SetDegradeMode(ModeCriticalOnly)
	if err := cli.Call(ctx, ref, "fast", nil, nil); !IsAdmissionShed(err) {
		t.Fatalf("normal call in critical-only mode = %v, want an admission shed", err)
	}
	if err := cli.Call(ctx, ref, "fast", nil, nil, WithPriority(ClassCritical)); err != nil {
		t.Fatalf("critical call in critical-only mode: %v", err)
	}
	if n := srv.AdmissionShed(ClassNormal, ShedDegradedMode); n != 1 {
		t.Fatalf("AdmissionShed(normal, degraded_mode) = %d, want 1", n)
	}
	srv.SetDegradeMode(ModeNormal)
	if err := cli.Call(ctx, ref, "fast", nil, nil); err != nil {
		t.Fatalf("normal call after mode lifted: %v", err)
	}
}

// TestCallerBacksOffOnRetryAfter checks the client half of the shed
// handshake: the resilient-call engine treats an admission shed as
// retryable and waits at least the server's hint before replaying.
func TestCallerBacksOffOnRetryAfter(t *testing.T) {
	c := &Caller{Opts: CallOptions{Backoff: Backoff{Base: time.Millisecond, Max: time.Millisecond}}}
	shed := &SystemException{Kind: ExTransient, RetryAfter: 80 * time.Millisecond}
	if !IsAdmissionShed(shed) {
		t.Fatal("IsAdmissionShed(TRANSIENT with hint) = false")
	}
	if d := c.retryDelay(1, shed); d != 80*time.Millisecond {
		t.Fatalf("retryDelay with 80ms hint = %v, want the hint to win over 1ms backoff", d)
	}
	plain := &SystemException{Kind: ExTransient}
	if d := c.retryDelay(1, plain); d != time.Millisecond {
		t.Fatalf("retryDelay without hint = %v, want the backoff's 1ms", d)
	}
}
