// Interceptor-chain tests from outside the package: obs.Observer plugged
// into the ORB's CallInterceptor seam, with faultnet injecting a
// connection reset mid-sequence. They prove the tracing contract end to
// end — span parentage survives a crash, and the recovery machinery
// (COMM_FAILURE, re-resolve, state restore, replay) lands on the SAME
// trace as the original call.
package orb_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/faultnet"
	"repro/internal/ft"
	"repro/internal/naming"
	"repro/internal/obs"
	"repro/internal/orb"
)

// The structural interface match between obs and orb is load-bearing:
// obs cannot import orb, so nothing inside either package proves the
// Observer still satisfies the interceptor contract. This does.
var _ orb.CallInterceptor = (*obs.Observer)(nil)

// tracedCounter is a checkpointable stateful servant: inc(by) returns
// the new value.
type tracedCounter struct {
	mu    sync.Mutex
	value int64
}

func (c *tracedCounter) TypeID() string { return "IDL:repro/Counter:1.0" }

func (c *tracedCounter) Invoke(_ *orb.ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch op {
	case "inc":
		by := in.GetInt64()
		if err := in.Err(); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		c.value += by
		out.PutInt64(c.value)
		return nil
	default:
		return orb.BadOperation(op)
	}
}

func (c *tracedCounter) Checkpoint() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := cdr.NewEncoder(8)
	e.PutInt64(c.value)
	return e.Bytes(), nil
}

func (c *tracedCounter) Restore(data []byte) error {
	d := cdr.NewDecoder(data)
	v := d.GetInt64()
	if err := d.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	c.value = v
	c.mu.Unlock()
	return nil
}

// seqResolver hands out refs in order, sticking on the last: first
// resolve binds to the doomed server, recovery resolves the survivor.
type seqResolver struct {
	mu   sync.Mutex
	refs []orb.ObjectRef
	next int
}

func (r *seqResolver) Resolve(ctx context.Context, name naming.Name) (orb.ObjectRef, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ref := r.refs[r.next]
	if r.next < len(r.refs)-1 {
		r.next++
	}
	return ref, nil
}

// attr is single-value attribute access ("" when absent).
func attr(s *obs.Span, key string) string {
	v, _ := s.Attr(key)
	return v
}

// findSpan returns the first ring span matching pred.
// hasEvent reports whether the span recorded an event by that name.
func hasEvent(s *obs.Span, name string) bool {
	_, ok := s.Event(name)
	return ok
}

func findSpan(spans []*obs.Span, pred func(*obs.Span) bool) *obs.Span {
	for _, s := range spans {
		if pred(s) {
			return s
		}
	}
	return nil
}

// TestObserverTracesSurviveResetAndReplay is the crash-recovery tracing
// contract: kill the connection under a traced ft call with faultnet,
// and assert the COMM_FAILURE, re-resolve, checkpoint restore and
// replay all appear as spans/events of the ORIGINAL trace, with the
// server-side replay span parented to the client replay span.
func TestObserverTracesSurviveResetAndReplay(t *testing.T) {
	ob := obs.NewObserver("test")
	chaos := faultnet.New(1)

	newWorker := func(name string) (*orb.ORB, orb.ObjectRef, *tracedCounter) {
		w := orb.New(orb.Options{Name: name, CallInterceptors: []orb.CallInterceptor{ob}})
		t.Cleanup(w.Shutdown)
		ad, err := w.NewAdapter("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctr := &tracedCounter{}
		return w, ad.Activate("ctr", ft.Wrap(ctr)), ctr
	}
	_, ref1, _ := newWorker("w1")
	_, ref2, ctr2 := newWorker("w2")

	client := orb.New(orb.Options{
		Name:             "client",
		Dialer:           chaos,
		CallInterceptors: []orb.CallInterceptor{ob},
	})
	t.Cleanup(client.Shutdown)

	resolver := &seqResolver{refs: []orb.ObjectRef{ref1, ref2}}
	proxy, err := ft.NewProxy(context.Background(), client, naming.NewName("counter"),
		resolver, ft.NewMemStore(), ft.Policy{CheckpointEvery: 1, MaxRecoveries: 3})
	if err != nil {
		t.Fatal(err)
	}

	inc := func(ctx context.Context, by int64) (int64, error) {
		var v int64
		err := proxy.Invoke(ctx, "inc",
			func(e *cdr.Encoder) { e.PutInt64(by) },
			func(d *cdr.Decoder) error { v = d.GetInt64(); return d.Err() })
		return v, err
	}

	ctx, root := ob.Tracer.Start(context.Background(), "test.root")

	// Call 1 succeeds on w1 and checkpoints value=10 into the store.
	if v, err := inc(ctx, 10); err != nil || v != 10 {
		t.Fatalf("first inc = %d, %v", v, err)
	}

	// Tear down every byte to w1 from now on: the pooled connection
	// observes the rule on its next write and resets mid-call.
	chaos.SetRule(faultnet.Rule{Route: ref1.Addr, ResetProb: 1})

	// Call 2 hits COMM_FAILURE on w1, recovers onto w2 (restore 10),
	// replays inc(5) → 15.
	v, err := inc(ctx, 5)
	if err != nil {
		t.Fatalf("inc after reset: %v", err)
	}
	if v != 15 {
		t.Fatalf("value after recovery = %d, want 15 (checkpoint not restored?)", v)
	}
	if got := ctr2.value; got != 15 {
		t.Fatalf("survivor state = %d, want 15", got)
	}
	if c := chaos.Counters(); c.Resets == 0 {
		t.Fatal("chaos injected no reset — the failure path never ran")
	}
	root.End()

	// The server-side replay span ends asynchronously after the reply is
	// on the wire; give it a moment to land in the ring. Call 1 left a
	// successful server inc span on this trace too, so the replayed one
	// is identified by its parent chain: server inc → client inc →
	// "replay" span.
	traceID := root.Context().TraceID
	var spans []*obs.Span
	var byID map[obs.SpanID]*obs.Span
	var serverInc *obs.Span
	deadline := time.Now().Add(2 * time.Second)
	for {
		spans = nil
		for _, s := range ob.Ring.Spans() {
			if s.Context().TraceID == traceID {
				spans = append(spans, s)
			}
		}
		byID = make(map[obs.SpanID]*obs.Span, len(spans))
		for _, s := range spans {
			byID[s.Context().SpanID] = s
		}
		serverInc = findSpan(spans, func(s *obs.Span) bool {
			if s.Name() != "inc" || attr(s, "side") != "server" || s.Err() != "" {
				return false
			}
			parent := byID[s.Parent()]
			return parent != nil && byID[parent.Parent()] != nil &&
				byID[parent.Parent()].Name() == "replay"
		})
		if serverInc != nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(spans) == 0 {
		t.Fatal("no spans recorded for the root trace")
	}

	failed := findSpan(spans, func(s *obs.Span) bool {
		return s.Name() == "ft.invoke" && hasEvent(s, "comm_failure")
	})
	if failed == nil {
		t.Fatal("no ft.invoke span carries the comm_failure event")
	}
	if failed.Parent() != root.Context().SpanID {
		t.Errorf("failed ft.invoke parent = %v, want root %v", failed.Parent(), root.Context().SpanID)
	}

	recover := findSpan(spans, func(s *obs.Span) bool { return s.Name() == "ft.recover" })
	if recover == nil {
		t.Fatal("no ft.recover span on the trace")
	}
	resolve := findSpan(spans, func(s *obs.Span) bool { return s.Name() == "ft.resolve" })
	if resolve == nil {
		t.Fatal("no ft.resolve span on the trace")
	}
	if got := attr(resolve, "addr"); got != ref2.Addr {
		t.Errorf("ft.resolve addr = %q, want survivor %q", got, ref2.Addr)
	}
	restore := findSpan(spans, func(s *obs.Span) bool { return s.Name() == "ft.restore" })
	if restore == nil {
		t.Fatal("no ft.restore span on the trace")
	}

	replay := findSpan(spans, func(s *obs.Span) bool { return s.Name() == "replay" })
	if replay == nil {
		t.Fatal("no replay span on the trace")
	}
	if attr(replay, "op") != "inc" {
		t.Errorf("replay op = %q, want inc", attr(replay, "op"))
	}

	// Parentage chain across the process boundary: server replay span →
	// client replay span → "replay" → ft.invoke → root.
	if serverInc == nil {
		t.Fatal("no server-side inc span parented under the replay span")
	}
	clientInc := byID[serverInc.Parent()]
	if clientInc == nil || attr(clientInc, "side") != "client" || clientInc.Name() != "inc" {
		t.Fatalf("server inc span's parent is not the client inc span (got %+v)", clientInc)
	}
	if clientInc.Parent() != replay.Context().SpanID {
		t.Errorf("replayed client inc parent = %v, want replay span %v",
			clientInc.Parent(), replay.Context().SpanID)
	}

	// The first (failed) client attempt is on the same trace too, marked
	// with the injected failure.
	failedAttempt := findSpan(spans, func(s *obs.Span) bool {
		return s.Name() == "inc" && attr(s, "side") == "client" && s.Err() != ""
	})
	if failedAttempt == nil {
		t.Error("the failed client attempt left no span on the trace")
	} else if !strings.Contains(failedAttempt.Err(), "reset") &&
		attr(failedAttempt, "error_kind") != "COMM_FAILURE" {
		t.Errorf("failed attempt error = %q kind=%q, expected an injected reset",
			failedAttempt.Err(), attr(failedAttempt, "error_kind"))
	}

	// Satellite counters: the client ORB recorded the retry and the
	// successful recovery.
	st := client.Stats()
	if st.RetriesAttempted == 0 {
		t.Errorf("RetriesAttempted = 0, want > 0")
	}
	if st.RecoveriesSucceeded == 0 {
		t.Errorf("RecoveriesSucceeded = 0, want > 0")
	}

	// And the metrics registry exported the failure by kind.
	var b strings.Builder
	ob.Registry.WritePrometheus(&b)
	if out := b.String(); !strings.Contains(out, `rpc_errors_total{side="client",method="inc"`) {
		t.Errorf("registry missing client inc error counter:\n%s", out)
	}
}
