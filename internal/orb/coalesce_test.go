package orb

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cdr"
)

// slowDialer delays every dial so concurrent getConn callers genuinely
// overlap with the in-flight dial.
type slowDialer struct {
	delay time.Duration
	d     net.Dialer
}

func (s *slowDialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	time.Sleep(s.delay)
	return s.d.DialContext(ctx, network, addr)
}

// seqServant counts invocations and echoes the int64 argument.
type seqServant struct {
	calls atomic.Int64
}

func (s *seqServant) TypeID() string { return "IDL:repro/Seq:1.0" }

func (s *seqServant) Invoke(_ *ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	switch op {
	case "echo":
		v := in.GetInt64()
		if err := in.Err(); err != nil {
			return &SystemException{Kind: ExMarshal, Detail: err.Error()}
		}
		s.calls.Add(1)
		out.PutInt64(v)
		return nil
	case "note":
		_ = in.GetInt64()
		s.calls.Add(1)
		return in.Err()
	default:
		return BadOperation(op)
	}
}

// TestDialSingleflight launches many concurrent first calls to one
// address: exactly one TCP connection must be dialed, with every other
// caller coalescing onto the in-flight dial.
func TestDialSingleflight(t *testing.T) {
	srv := New(Options{Name: "sf-srv"})
	defer srv.Shutdown()
	ad, err := srv.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ref := ad.Activate("seq", &seqServant{})

	cli := New(Options{Name: "sf-cli", Dialer: &slowDialer{delay: 50 * time.Millisecond}})
	defer cli.Shutdown()

	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = cli.Call(context.Background(), ref, "echo",
				func(e *cdr.Encoder) { e.PutInt64(int64(i)) },
				func(d *cdr.Decoder) error { _ = d.GetInt64(); return d.Err() })
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	st := cli.Stats()
	if st.ConnectionsDialed != 1 {
		t.Fatalf("ConnectionsDialed = %d, want 1", st.ConnectionsDialed)
	}
	if st.DialsCoalesced < callers-1 {
		t.Fatalf("DialsCoalesced = %d, want >= %d", st.DialsCoalesced, callers-1)
	}
}

// TestCoalescedFlushOrdering mixes a oneway storm with synchronous calls
// on one coalescing connection: every sync reply must match its own
// request (no cross-wiring through the shared flush), every oneway must
// eventually arrive, and the window must actually coalesce some flushes.
// Run with -race this also hammers the flushTimer/flushScheduled state
// against concurrent senders.
func TestCoalescedFlushOrdering(t *testing.T) {
	srv := New(Options{Name: "co-srv"})
	defer srv.Shutdown()
	ad, err := srv.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sv := &seqServant{}
	ref := ad.Activate("seq", sv)

	cli := New(Options{Name: "co-cli", CoalesceWindow: 500 * time.Microsecond})
	defer cli.Shutdown()
	ctx := context.Background()

	const (
		notifiers = 4
		perWorker = 50
		syncCalls = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < notifiers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := cli.Notify(ctx, ref, "note",
					func(e *cdr.Encoder) { e.PutInt64(int64(i)) }); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	var mismatch atomic.Int64
	go func() {
		defer wg.Done()
		for i := 0; i < syncCalls; i++ {
			want := int64(i * 31)
			var got int64
			if err := cli.Call(ctx, ref, "echo",
				func(e *cdr.Encoder) { e.PutInt64(want) },
				func(d *cdr.Decoder) error { got = d.GetInt64(); return d.Err() }); err != nil {
				t.Error(err)
				return
			}
			if got != want {
				mismatch.Add(1)
			}
		}
	}()
	wg.Wait()
	if n := mismatch.Load(); n != 0 {
		t.Fatalf("%d sync replies did not match their requests", n)
	}

	// Every oneway eventually lands (coalesced flushes may defer them
	// briefly, never lose them).
	deadline := time.Now().Add(5 * time.Second)
	total := int64(notifiers*perWorker + syncCalls)
	for sv.calls.Load() != total {
		if time.Now().After(deadline) {
			t.Fatalf("servant saw %d calls, want %d", sv.calls.Load(), total)
		}
		time.Sleep(time.Millisecond)
	}
	if st := cli.Stats(); st.FlushesCoalesced == 0 {
		t.Fatal("no flushes were coalesced despite the window")
	}
}

// TestWithoutCoalescingFlushesImmediately verifies the per-call opt-out
// still round-trips correctly on a coalescing connection.
func TestWithoutCoalescingFlushesImmediately(t *testing.T) {
	srv := New(Options{Name: "nc-srv"})
	defer srv.Shutdown()
	ad, err := srv.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ref := ad.Activate("seq", &seqServant{})

	cli := New(Options{Name: "nc-cli", CoalesceWindow: 50 * time.Millisecond})
	defer cli.Shutdown()

	// With a 50ms window, an immediate reply proves the request did not
	// wait for the deferred flush.
	start := time.Now()
	var got int64
	if err := cli.Call(context.Background(), ref, "echo",
		func(e *cdr.Encoder) { e.PutInt64(7) },
		func(d *cdr.Decoder) error { got = d.GetInt64(); return d.Err() },
		WithoutCoalescing()); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("echo = %d", got)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Fatalf("opt-out call took %v — it waited for the coalescing window", elapsed)
	}
}
