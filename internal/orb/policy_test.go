package orb

import (
	"context"
	"errors"
	"testing"
)

// TestCallerRetriesFailedRecovery: a transiently failing Recover hook (the
// naming service is partitioned mid-recovery) consumes budget rounds
// instead of aborting the call, so recovery paths that heal within the
// budget still save the call.
func TestCallerRetriesFailedRecovery(t *testing.T) {
	resolveFails := 2
	recovers := 0
	attempts := 0
	c := &Caller{
		Recover: func(ctx context.Context, dead ObjectRef, cause error) (ObjectRef, error) {
			recovers++
			if resolveFails > 0 {
				resolveFails--
				return ObjectRef{}, errors.New("naming partitioned")
			}
			return ObjectRef{TypeID: "T", Addr: "fresh:1", Key: "k"}, nil
		},
		RetryOn: func(err error) bool { return IsCommFailure(err) },
		Opts:    CallOptions{RetryBudget: 5},
	}
	c.SetRef(ObjectRef{TypeID: "T", Addr: "dead:1", Key: "k"})

	err := c.Do(context.Background(), "op", func(_ context.Context, ref ObjectRef) error {
		attempts++
		if ref.Addr == "dead:1" {
			return CommFailure("server crashed")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v, want success after recovery heals", err)
	}
	if recovers != 3 {
		t.Fatalf("recover attempts = %d, want 3 (two failures, one success)", recovers)
	}
	if attempts != 2 {
		t.Fatalf("call attempts = %d, want 2 (dead then fresh)", attempts)
	}
	if got := c.Ref().Addr; got != "fresh:1" {
		t.Fatalf("caller ref = %s, want fresh:1", got)
	}
}

// TestCallerRecoveryFailuresExhaustBudget: a recovery path that never
// heals still terminates with a RetryError carrying the recovery cause.
func TestCallerRecoveryFailuresExhaustBudget(t *testing.T) {
	recovers := 0
	c := &Caller{
		Recover: func(ctx context.Context, dead ObjectRef, cause error) (ObjectRef, error) {
			recovers++
			return ObjectRef{}, errors.New("naming still down")
		},
		RetryOn: func(err error) bool { return IsCommFailure(err) },
		Opts:    CallOptions{RetryBudget: 3},
	}
	c.SetRef(ObjectRef{TypeID: "T", Addr: "dead:1", Key: "k"})

	err := c.Do(context.Background(), "op", func(_ context.Context, ref ObjectRef) error {
		return CommFailure("gone")
	})
	var re *RetryError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RetryError", err)
	}
	if re.Attempts != 3 {
		t.Fatalf("attempts = %d, want the full budget of 3", re.Attempts)
	}
	if recovers != 3 {
		t.Fatalf("recover attempts = %d, want 3", recovers)
	}
	if want := "naming still down"; re.Last == nil || re.Last.Error() != want {
		t.Fatalf("last error = %v, want %q", re.Last, want)
	}
}
