package orb

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/giop"
)

// TestConcurrentActivateDuringBatchedDispatch hammers servant
// registration while pipelined calls flow through the shared worker pool:
// the adapter's servant table must stay race-free against batched
// dispatch (run with -race). Calls target both a stable key and a
// flapping one; the latter may legally see OBJECT_NOT_EXIST but nothing
// else may go wrong.
func TestConcurrentActivateDuringBatchedDispatch(t *testing.T) {
	o, a, ref, _ := newTestPair(t, Options{Name: "flap"})

	stop := make(chan struct{})
	var flappers sync.WaitGroup
	flappers.Add(1)
	go func() {
		defer flappers.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				a.Activate("flappy", &calcServant{})
			} else {
				a.Deactivate("flappy")
			}
		}
	}()

	flappyRef := ObjectRef{TypeID: "IDL:repro/Calc:1.0", Addr: a.Addr(), Key: "flappy"}
	var callers sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		callers.Add(1)
		go func(g int) {
			defer callers.Done()
			for i := 0; i < 50; i++ {
				if _, err := callAdd(o, ref, int64(g), int64(i)); err != nil {
					errs <- fmt.Errorf("stable key: %w", err)
					return
				}
				_, err := callAdd(o, flappyRef, 1, 2)
				if err != nil && !IsSystemException(err, ExObjectNotExist) {
					errs <- fmt.Errorf("flapping key: %w", err)
					return
				}
			}
		}(g)
	}
	callers.Wait()
	close(stop)
	flappers.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestCancelRequestWhileQueued cancels a request that is still waiting
// for a dispatch worker: with a single-worker pool held by a blocking
// call, the queued request's wire-level cancel must find it in the
// inflight table (registered at admission, not at dequeue) and shed it
// without the servant ever running it.
func TestCancelRequestWhileQueued(t *testing.T) {
	o, _, ref, sv := newCtxPair(t, Options{Name: "queued-cancel", WorkerPool: 1})

	// Occupy the only worker.
	blockErr := make(chan error, 1)
	go func() { blockErr <- o.Call(context.Background(), ref, "block", nil, nil) }()
	<-sv.started

	// Queue a second call behind it, then cancel it while queued.
	ctx, cancel := context.WithCancel(context.Background())
	queuedErr := make(chan error, 1)
	go func() { queuedErr <- o.Call(ctx, ref, "fast", nil, nil) }()
	waitStats(t, o, func(st Stats) bool { return st.RequestsSent >= 2 })
	cancel()
	if err := <-queuedErr; !IsSystemException(err, ExCancelled) {
		t.Fatalf("queued call err = %v, want CANCELLED", err)
	}
	waitStats(t, o, func(st Stats) bool { return st.CancelsReceived >= 1 })

	// Release the blocker; the cancelled request must never have reached
	// the servant.
	close(sv.release)
	if err := <-blockErr; err != nil {
		t.Fatalf("blocking call: %v", err)
	}
	if n := sv.fast.Load(); n != 0 {
		t.Fatalf("cancelled queued request was dispatched %d times", n)
	}
}

// TestReplyOrderingUnderCoalescedFlush pipelines many concurrent calls
// over one connection with server-side reply coalescing enabled and
// checks every reply against its request: deferred flushes may batch
// replies but must never cross their payloads.
func TestReplyOrderingUnderCoalescedFlush(t *testing.T) {
	srv := New(Options{Name: "coalesce-srv", ReplyCoalesceWindow: 2 * time.Millisecond})
	t.Cleanup(srv.Shutdown)
	a, err := srv.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ref := a.Activate("calc", &calcServant{})
	cli := New(Options{Name: "coalesce-cli"})
	t.Cleanup(cli.Shutdown)

	const calls = 256
	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sum, err := callAdd(cli, ref, int64(i), int64(i)*1000)
			if err != nil {
				errs <- err
				return
			}
			if want := int64(i) + int64(i)*1000; sum != want {
				errs <- fmt.Errorf("call %d: sum = %d, want %d (reply crossed)", i, sum, want)
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	st := srv.Stats()
	if st.FramesRead < calls {
		t.Fatalf("FramesRead = %d, want >= %d", st.FramesRead, calls)
	}
	if st.FrameReads == 0 || st.FramesPerRead < 1 {
		t.Fatalf("FrameReads = %d FramesPerRead = %v, want reads with ratio >= 1", st.FrameReads, st.FramesPerRead)
	}
	t.Logf("frames/read = %.2f, server flushes coalesced = %d", st.FramesPerRead, st.ServerFlushesCoalesced)
}

// TestOversizeRequestRejectedConnectionSurvives sends a request whose
// body exceeds the server's MaxRequestBody: the server must answer with
// a MARSHAL system exception after draining the frame with bounded reads
// — never buffering it — and the connection must keep working.
func TestOversizeRequestRejectedConnectionSurvives(t *testing.T) {
	srv := New(Options{Name: "cap-srv", MaxRequestBody: 64 << 10})
	t.Cleanup(srv.Shutdown)
	a, err := srv.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ref := a.Activate("echo", benchEchoServant{})
	cli := New(Options{Name: "cap-cli"})
	t.Cleanup(cli.Shutdown)

	big := make([]float64, 1<<17) // ~1 MiB on the wire
	err = cli.Call(context.Background(), ref, "note",
		func(e *cdr.Encoder) { e.PutFloat64Seq(big) }, nil)
	if !IsSystemException(err, ExMarshal) {
		t.Fatalf("oversize call err = %v, want MARSHAL", err)
	}

	// Same pooled connection must still carry normal traffic.
	small := []float64{1, 2, 3}
	var out []float64
	err = cli.Call(context.Background(), ref, "echo",
		func(e *cdr.Encoder) { e.PutFloat64Seq(small) },
		func(d *cdr.Decoder) error { out = d.GetFloat64Seq(); return d.Err() })
	if err != nil {
		t.Fatalf("follow-up call: %v", err)
	}
	if len(out) != 3 || out[2] != 3 {
		t.Fatalf("follow-up echo = %v", out)
	}
	if st := srv.Stats(); st.OversizeRejected != 1 {
		t.Fatalf("OversizeRejected = %d, want 1", st.OversizeRejected)
	}
}

// TestSlowLorisConnectionReaped starts a frame and then stalls: the
// frame-timeout guard must drop the connection. An idle connection that
// never starts a frame stays up — the guard only arms once bytes of an
// incomplete frame are pending.
func TestSlowLorisConnectionReaped(t *testing.T) {
	srv := New(Options{Name: "loris-srv", FrameTimeout: 100 * time.Millisecond})
	t.Cleanup(srv.Shutdown)
	a, err := srv.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a.Activate("calc", &calcServant{})

	// Attacker: half a header, then silence.
	loris, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer loris.Close()
	if _, err := loris.Write([]byte{'S', 'G', 'O', 'P'}); err != nil {
		t.Fatal(err)
	}

	// Bystander: connects, stays idle past the frame timeout, then issues
	// a request — must still be served.
	idle, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	loris.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := io.ReadAll(loris); err != nil {
		t.Fatalf("expected server to close the stalled connection cleanly, read err = %v", err)
	}

	if err := giop.Write(idle, &giop.Message{Type: giop.MsgLocateRequest, RequestID: 7, ObjectKey: "calc"}); err != nil {
		t.Fatal(err)
	}
	idle.SetReadDeadline(time.Now().Add(2 * time.Second))
	reply, err := giop.Read(idle)
	if err != nil {
		t.Fatalf("idle connection was reaped: %v", err)
	}
	if reply.Type != giop.MsgLocateReply || reply.LocateStatus != giop.LocateObjectHere {
		t.Fatalf("locate reply = %+v", reply)
	}
}
