package orb

import (
	"context"
	"testing"

	"repro/internal/cdr"
)

// echoServant returns its float64 sequence argument unchanged — a minimal
// marshal-heavy operation for data-path microbenchmarks.
type benchEchoServant struct{}

func (benchEchoServant) TypeID() string { return "IDL:repro/Echo:1.0" }

func (benchEchoServant) Invoke(_ *ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	switch op {
	case "echo":
		v := in.GetFloat64Seq()
		if err := in.Err(); err != nil {
			return &SystemException{Kind: ExMarshal, Detail: err.Error()}
		}
		out.PutFloat64Seq(v)
		return nil
	case "note":
		_ = in.GetFloat64Seq()
		return in.Err()
	default:
		return BadOperation(op)
	}
}

// newBenchWorld wires a client and a server ORB over loopback TCP with an
// echo servant activated.
func newBenchWorld(b *testing.B, clientOpts Options) (*ORB, ObjectRef) {
	b.Helper()
	srv := New(Options{Name: "bench-srv"})
	b.Cleanup(srv.Shutdown)
	ad, err := srv.NewAdapter("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ref := ad.Activate("echo", benchEchoServant{})
	clientOpts.Name = "bench-cli"
	cli := New(clientOpts)
	b.Cleanup(cli.Shutdown)
	return cli, ref
}

// BenchmarkCallPath measures the synchronous invocation hot path end to
// end (marshal, wire round trip, unmarshal) over loopback TCP. This is
// the microbenchmark the PR-level allocation gate (cmd/benchgate) tracks.
func BenchmarkCallPath(b *testing.B) {
	args := make([]float64, 16)
	for i := range args {
		args[i] = float64(i)
	}
	writeArgs := func(e *cdr.Encoder) { e.PutFloat64Seq(args) }

	b.Run("sync", func(b *testing.B) {
		cli, ref := newBenchWorld(b, Options{})
		ctx := context.Background()
		var out []float64
		readReply := func(d *cdr.Decoder) error {
			out = d.GetFloat64Seq()
			return d.Err()
		}
		// Warm the connection so the dial is not measured.
		if err := cli.Call(ctx, ref, "echo", writeArgs, readReply); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cli.Call(ctx, ref, "echo", writeArgs, readReply); err != nil {
				b.Fatal(err)
			}
		}
		_ = out
	})

	b.Run("oneway", func(b *testing.B) {
		cli, ref := newBenchWorld(b, Options{})
		ctx := context.Background()
		if err := cli.Notify(ctx, ref, "note", writeArgs); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cli.Notify(ctx, ref, "note", writeArgs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
