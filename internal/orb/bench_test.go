package orb

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/giop"
	"repro/internal/obs"
)

// echoServant returns its float64 sequence argument unchanged — a minimal
// marshal-heavy operation for data-path microbenchmarks.
type benchEchoServant struct{}

func (benchEchoServant) TypeID() string { return "IDL:repro/Echo:1.0" }

func (benchEchoServant) Invoke(_ *ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	switch op {
	case "echo":
		v := in.GetFloat64Seq()
		if err := in.Err(); err != nil {
			return &SystemException{Kind: ExMarshal, Detail: err.Error()}
		}
		out.PutFloat64Seq(v)
		return nil
	case "note":
		_ = in.GetFloat64Seq()
		return in.Err()
	default:
		return BadOperation(op)
	}
}

// newBenchWorld wires a client and a server ORB over loopback TCP with an
// echo servant activated.
func newBenchWorld(b *testing.B, clientOpts Options) (*ORB, ObjectRef) {
	return newBenchWorldOpts(b, clientOpts, Options{Name: "bench-srv"})
}

func newBenchWorldOpts(b *testing.B, clientOpts, srvOpts Options) (*ORB, ObjectRef) {
	b.Helper()
	srv := New(srvOpts)
	b.Cleanup(srv.Shutdown)
	ad, err := srv.NewAdapter("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ref := ad.Activate("echo", benchEchoServant{})
	clientOpts.Name = "bench-cli"
	cli := New(clientOpts)
	b.Cleanup(cli.Shutdown)
	return cli, ref
}

// BenchmarkCallPath measures the synchronous invocation hot path end to
// end (marshal, wire round trip, unmarshal) over loopback TCP. This is
// the microbenchmark the PR-level allocation gate (cmd/benchgate) tracks.
func BenchmarkCallPath(b *testing.B) {
	args := make([]float64, 16)
	for i := range args {
		args[i] = float64(i)
	}
	writeArgs := func(e *cdr.Encoder) { e.PutFloat64Seq(args) }

	b.Run("sync", func(b *testing.B) {
		cli, ref := newBenchWorld(b, Options{})
		ctx := context.Background()
		var out []float64
		readReply := func(d *cdr.Decoder) error {
			out = d.GetFloat64Seq()
			return d.Err()
		}
		// Warm the connection so the dial is not measured.
		if err := cli.Call(ctx, ref, "echo", writeArgs, readReply); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cli.Call(ctx, ref, "echo", writeArgs, readReply); err != nil {
				b.Fatal(err)
			}
		}
		_ = out
	})

	b.Run("oneway", func(b *testing.B) {
		cli, ref := newBenchWorld(b, Options{})
		ctx := context.Background()
		if err := cli.Notify(ctx, ref, "note", writeArgs); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cli.Notify(ctx, ref, "note", writeArgs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSyncCall measures concurrent synchronous calls end to end
// over loopback TCP — the reactor's design point: pipelined requests let
// the server drain multiple frames per read syscall and coalesce reply
// flushes, so per-call cost amortizes well below the serial round-trip
// floor. This is the PR6 latency gate (cmd/benchgate tracks ns/op and
// allocs/op).
func BenchmarkSyncCall(b *testing.B) {
	cli, ref := newBenchWorldOpts(b,
		Options{},
		Options{Name: "bench-srv", ReplyCoalesceWindow: 100 * time.Microsecond})
	ctx := context.Background()
	args := []float64{1, 2, 3, 4}
	writeArgs := func(e *cdr.Encoder) { e.PutFloat64Seq(args) }
	if err := cli.Call(ctx, ref, "echo", writeArgs, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var out []float64
		readReply := func(d *cdr.Decoder) error {
			out = d.GetFloat64Seq()
			return d.Err()
		}
		for pb.Next() {
			if err := cli.Call(ctx, ref, "echo", writeArgs, readReply); err != nil {
				b.Error(err)
				return
			}
		}
		_ = out
	})
}

// BenchmarkSyncCallObserved is BenchmarkSyncCall with the full signal
// plane attached: tracing interceptor (head sampling off, so the fast
// path is measured), ORB stats exported, queue-wait/service histograms
// live and both ORBs feeding one flight recorder. The benchgate budget
// for this path is ≤2 allocs/op over BenchmarkSyncCall — observability
// must not tax the data path it observes.
func BenchmarkSyncCallObserved(b *testing.B) {
	srv := New(Options{Name: "bench-srv", ReplyCoalesceWindow: 100 * time.Microsecond})
	b.Cleanup(srv.Shutdown)
	ad, err := srv.NewAdapter("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ref := ad.Activate("echo", benchEchoServant{})
	cli := New(Options{Name: "bench-cli"})
	b.Cleanup(cli.Shutdown)

	ob := obs.NewObserverOpts("bench", obs.ObserverOptions{Sample: obs.SampleNone})
	cli.AddCallInterceptor(ob)
	srv.AddCallInterceptor(ob)
	srv.ExportStats(ob.Registry)
	srv.AttachFlightRecorder(ob.Flight)
	cli.AttachFlightRecorder(ob.Flight)

	ctx := context.Background()
	args := []float64{1, 2, 3, 4}
	writeArgs := func(e *cdr.Encoder) { e.PutFloat64Seq(args) }
	if err := cli.Call(ctx, ref, "echo", writeArgs, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var out []float64
		readReply := func(d *cdr.Decoder) error {
			out = d.GetFloat64Seq()
			return d.Err()
		}
		for pb.Next() {
			if err := cli.Call(ctx, ref, "echo", writeArgs, readReply); err != nil {
				b.Error(err)
				return
			}
		}
		_ = out
	})
}

// BenchmarkSyncCallQoS is BenchmarkSyncCall with the QoS plane engaged
// on both sides: every call is stamped with a priority class and a
// tenant id (one SCQoS service context per request), the server decodes
// it at admission, runs the tenant token bucket and routes through the
// per-class weighted queues. The client folds its options once and uses
// CallOpts per call — the pattern of every long-lived stamped caller
// (Caller.Opts, naming.Client.SetCallOptions). The benchgate budget for
// this path is ≤2 allocs/op over BenchmarkSyncCallObserved — admission
// control must not tax the calls it admits.
func BenchmarkSyncCallQoS(b *testing.B) {
	cli, ref := newBenchWorldOpts(b,
		Options{},
		Options{
			Name:                "bench-srv",
			ReplyCoalesceWindow: 100 * time.Microsecond,
			QoS:                 QoSOptions{TenantRate: 1e9},
		})
	ctx := context.Background()
	args := []float64{1, 2, 3, 4}
	writeArgs := func(e *cdr.Encoder) { e.PutFloat64Seq(args) }
	qos := NewCallOptions(WithPriority(ClassNormal), WithTenant("bench-tenant"))
	if err := cli.CallOpts(ctx, ref, "echo", writeArgs, nil, qos); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var out []float64
		readReply := func(d *cdr.Decoder) error {
			out = d.GetFloat64Seq()
			return d.Err()
		}
		for pb.Next() {
			if err := cli.CallOpts(ctx, ref, "echo", writeArgs, readReply, qos); err != nil {
				b.Error(err)
				return
			}
		}
		_ = out
	})
}

// loopReader replays one wire frame forever, so a FrameReader sees an
// endless pipelined stream without any socket in the way.
type loopReader struct {
	data []byte
	off  int
}

func (r *loopReader) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// BenchmarkOnewayDispatch measures the server-side oneway path in
// isolation — frame ingest through the FrameReader plus servant dispatch,
// no socket: this is the reactor's zero-allocation steady state, gated at
// 0 allocs/op by cmd/benchgate.
func BenchmarkOnewayDispatch(b *testing.B) {
	srv := New(Options{Name: "bench-dispatch"})
	b.Cleanup(srv.Shutdown)
	a, err := srv.NewAdapter("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	a.Activate("echo", benchEchoServant{})

	body := cdr.NewEncoder(8)
	body.PutFloat64Seq(nil)
	var wire bytes.Buffer
	if err := giop.Write(&wire, &giop.Message{
		Type:      giop.MsgRequest,
		RequestID: 1,
		ObjectKey: "echo",
		Operation: "note",
		Body:      body.Bytes(),
	}); err != nil {
		b.Fatal(err)
	}

	fr := giop.NewFrameReader(&loopReader{data: wire.Bytes()}, giop.FrameReaderConfig{})
	defer fr.Close()
	batch := make([]*giop.Message, 32)
	t := &dispatchTask{a: a, rctx: context.Background()}

	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n, err := fr.ReadBatch(batch)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range batch[:n] {
			a.dispatchOneway(t, "bench", m, &t.sctx)
			m.Release()
			done++
		}
	}
}
