// Package orb implements a compact Object Request Broker: the runtime the
// paper assumes from omniORB, rebuilt from scratch on net/TCP. It provides
// object adapters hosting servants, interoperable object references,
// synchronous remote invocation, DII-style deferred requests, pluggable
// request interceptors (used for virtual-time propagation), and CORBA-style
// system exceptions — in particular COMM_FAILURE semantics on broken
// transports, which the fault-tolerance layer depends on.
package orb

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/giop"
	"repro/internal/obs"
)

// Dialer opens client-side transport connections — the ORB's outbound
// seam. *net.Dialer satisfies it; fault-injection transports
// (internal/faultnet) wrap it to impose failures without touching any
// ORB code.
type Dialer interface {
	DialContext(ctx context.Context, network, addr string) (net.Conn, error)
}

// ListenFunc creates server-side listeners — the ORB's inbound seam.
// net.Listen satisfies it; fault-injection transports wrap it to impose
// failures on accepted connections.
type ListenFunc func(network, addr string) (net.Listener, error)

// Interceptor observes and may mutate protocol messages at the four
// classical interception points (CORBA portable interceptor analogue).
// Implementations must be safe for concurrent use.
type Interceptor interface {
	// SendRequest runs on the client before a request is written.
	SendRequest(m *giop.Message)
	// ReceiveReply runs on the client after a reply is read.
	ReceiveReply(m *giop.Message)
	// ReceiveRequest runs on the server after a request is read.
	ReceiveRequest(m *giop.Message)
	// SendReply runs on the server before a reply is written.
	SendReply(m *giop.Message)
}

// CallInterceptor observes invocations with their contexts at the four
// interception points, after the message-level Interceptors have run. It
// exists for cross-cutting concerns that need request correlation —
// distributed tracing (obs.Observer) injects and extracts the SCTrace
// service context here. The context returned by RequestSent flows to the
// matching ReplyReceived; the context returned by DispatchStart is the
// one the servant sees via ServerContext.Context, and flows to
// DispatchEnd. Implementations must be safe for concurrent use.
type CallInterceptor interface {
	// RequestSent runs on the client after a request is assembled and
	// message-intercepted, before it is written to the wire.
	RequestSent(ctx context.Context, m *giop.Message) context.Context
	// ReplyReceived runs on the client when the invocation completes:
	// reply is nil for oneways and transport failures, err is the
	// transport-level failure if any.
	ReplyReceived(ctx context.Context, req, reply *giop.Message, err error)
	// DispatchStart runs on the server before the servant is invoked.
	DispatchStart(ctx context.Context, req *giop.Message) context.Context
	// DispatchEnd runs on the server after the reply is assembled and
	// message-intercepted (reply is nil for oneway dispatches).
	DispatchEnd(ctx context.Context, req, reply *giop.Message)
}

// Options configure an ORB.
type Options struct {
	// Name identifies this ORB (process) in service contexts and logs.
	Name string
	// CallTimeout is the default per-call deadline, applied whenever a
	// call's CallOptions.Deadline is zero and its context carries no
	// tighter deadline of its own. Zero means no default timeout.
	CallTimeout time.Duration
	// DialTimeout bounds connection establishment. Zero means 10s.
	DialTimeout time.Duration
	// Interceptors are applied in order on send and in reverse on receive.
	Interceptors []Interceptor
	// CallInterceptors run after Interceptors at each hook, in order on
	// the outbound points and in reverse on the inbound ones.
	CallInterceptors []CallInterceptor
	// MaxServerWorkers is the legacy name for WorkerPool and is honoured
	// only when WorkerPool is zero. Unlike the pre-reactor ORB, the limit
	// is process-wide, not per connection.
	MaxServerWorkers int
	// WorkerPool sizes the ORB-wide dispatch pool shared by every adapter
	// connection: at most this many servant invocations run concurrently.
	// Zero means max(8, 2×GOMAXPROCS) (after MaxServerWorkers, see above).
	WorkerPool int
	// ReadBatch caps how many request frames one connection's read loop
	// hands to the dispatch pool per wakeup. Larger batches amortize
	// syscalls under pipelining; smaller ones reduce burst latency skew
	// across connections. Zero means 32.
	ReadBatch int
	// DispatchQueueDepth caps the total number of admitted requests
	// waiting for a dispatch worker across all priority classes. Zero
	// means max(256, 16×workers).
	DispatchQueueDepth int
	// QoS shapes the server adapter's admission control: per-class
	// dequeue weights, the batch queue share, per-tenant token-bucket
	// rates and the retry-after hint attached to sheds. The zero value
	// enables class-aware dispatch with defaults and no tenant
	// throttling.
	QoS QoSOptions
	// ReplyCoalesceWindow enables server-side reply coalescing: while more
	// replies are owed on a connection, a written reply may wait up to
	// this long for them to share its flush syscall. The reply that
	// empties the pipeline always flushes immediately, so the window only
	// delays replies that have concurrent company. Zero disables
	// coalescing — every reply is flushed immediately.
	ReplyCoalesceWindow time.Duration
	// MaxRequestBody caps the declared body size of inbound frames. An
	// oversized request is drained with bounded reads (never buffered)
	// and answered with a MARSHAL system exception; the connection
	// survives. Zero means giop.MaxMessageSize.
	MaxRequestBody int
	// FrameTimeout bounds how long an inbound frame may sit partially
	// received (slow-loris guard): the read deadline arms when a frame's
	// first byte arrives and disarms at the frame boundary, so idle
	// connections are unaffected. Zero means 30s; negative disables the
	// guard.
	FrameTimeout time.Duration
	// CoalesceWindow enables client-side write coalescing: instead of
	// flushing the socket once per request, a written request waits up to
	// this long for concurrent callers on the same connection to share the
	// flush (and its syscall). Zero disables coalescing — every request is
	// flushed immediately. Individual calls opt out with
	// WithoutCoalescing / CallOptions.NoCoalesce.
	CoalesceWindow time.Duration
	// Dialer opens outbound connections. Nil means a plain net.Dialer.
	// This is the transport seam fault-injection layers plug into.
	Dialer Dialer
	// Listen creates adapter listeners. Nil means net.Listen.
	Listen ListenFunc
}

// ORB is the object request broker runtime: it owns the client connection
// pool and the server-side object adapters created from it.
type ORB struct {
	opts Options

	reqID    atomic.Uint32
	counters orbCounters

	// batchHist, when set by ExportStats, receives one observation per
	// reactor read batch (the batch size in frames).
	batchHist atomic.Pointer[obs.Histogram]

	// signals, when set by ExportStats, carries the reactor's per-request
	// load-signal instruments (queue-wait and service-time histograms);
	// flight, when set by AttachFlightRecorder, receives one black-box
	// record per request. Both are atomic pointers so an unobserved ORB
	// pays one load and a branch per request.
	signals atomic.Pointer[loadSignals]
	flight  atomic.Pointer[obs.FlightRecorder]

	// qos is the resolved admission-control configuration; tenants is the
	// per-tenant token-bucket table (nil when tenant throttling is off);
	// admissionShed counts QoS rejections per class and reason.
	qos           QoSOptions
	tenants       *tenantBuckets
	admissionShed shedCounters

	// degrade is the adaptive-degradation mode (a DegradeMode); every
	// admission decision loads it. replyCoalesce is the effective
	// server-side reply-coalescing window in nanoseconds — the base
	// Options value widened by the degradation controller under load.
	degrade       atomic.Int32
	replyCoalesce atomic.Int64
	degradeHooks  []func(DegradeMode) // registered at setup, called on transitions

	mu       sync.Mutex
	conns    map[string]*clientConn // keyed by remote address
	dials    map[string]*dialWait   // in-flight dials, keyed by address
	adapters []*Adapter
	pool     *workerPool // shared dispatch pool, started by the first adapter
	shutdown bool
}

// dialWait is one in-flight dial: concurrent callers for the same address
// wait on done instead of racing their own dials (per-address
// singleflight).
type dialWait struct {
	done chan struct{}
	conn *clientConn
	err  error
}

// New creates an ORB (the CORBA ORB_init analogue).
func New(opts Options) *ORB {
	if opts.DialTimeout == 0 {
		opts.DialTimeout = 10 * time.Second
	}
	if opts.ReadBatch == 0 {
		opts.ReadBatch = 32
	}
	if opts.FrameTimeout == 0 {
		opts.FrameTimeout = 30 * time.Second
	}
	if opts.Dialer == nil {
		opts.Dialer = &net.Dialer{}
	}
	if opts.Listen == nil {
		opts.Listen = net.Listen
	}
	o := &ORB{
		opts:  opts,
		qos:   opts.QoS.withDefaults(),
		conns: make(map[string]*clientConn),
		dials: make(map[string]*dialWait),
	}
	if o.qos.TenantRate > 0 {
		o.tenants = newTenantBuckets(o.qos.TenantRate, o.qos.TenantBurst)
	}
	o.replyCoalesce.Store(int64(opts.ReplyCoalesceWindow))
	return o
}

// Name returns the ORB's configured name.
func (o *ORB) Name() string { return o.opts.Name }

// nextRequestID allocates a process-unique request id.
func (o *ORB) nextRequestID() uint32 { return o.reqID.Add(1) }

// AddInterceptor registers an interceptor after construction. It is not
// safe to call concurrently with active invocations; register interceptors
// during setup.
func (o *ORB) AddInterceptor(i Interceptor) {
	o.opts.Interceptors = append(o.opts.Interceptors, i)
}

// AddCallInterceptor registers a context-aware interceptor after
// construction. Like AddInterceptor, register during setup only.
func (o *ORB) AddCallInterceptor(ci CallInterceptor) {
	o.opts.CallInterceptors = append(o.opts.CallInterceptors, ci)
}

func (o *ORB) callRequestSent(ctx context.Context, m *giop.Message) context.Context {
	for _, ci := range o.opts.CallInterceptors {
		ctx = ci.RequestSent(ctx, m)
	}
	return ctx
}

func (o *ORB) callReplyReceived(ctx context.Context, req, reply *giop.Message, err error) {
	for k := len(o.opts.CallInterceptors) - 1; k >= 0; k-- {
		o.opts.CallInterceptors[k].ReplyReceived(ctx, req, reply, err)
	}
}

func (o *ORB) callDispatchStart(ctx context.Context, req *giop.Message) context.Context {
	for k := len(o.opts.CallInterceptors) - 1; k >= 0; k-- {
		ctx = o.opts.CallInterceptors[k].DispatchStart(ctx, req)
	}
	return ctx
}

func (o *ORB) callDispatchEnd(ctx context.Context, req, reply *giop.Message) {
	for _, ci := range o.opts.CallInterceptors {
		ci.DispatchEnd(ctx, req, reply)
	}
}

func (o *ORB) interceptSendRequest(m *giop.Message) {
	for _, i := range o.opts.Interceptors {
		i.SendRequest(m)
	}
}

func (o *ORB) interceptReceiveReply(m *giop.Message) {
	for k := len(o.opts.Interceptors) - 1; k >= 0; k-- {
		o.opts.Interceptors[k].ReceiveReply(m)
	}
}

func (o *ORB) interceptReceiveRequest(m *giop.Message) {
	for k := len(o.opts.Interceptors) - 1; k >= 0; k-- {
		o.opts.Interceptors[k].ReceiveRequest(m)
	}
}

func (o *ORB) interceptSendReply(m *giop.Message) {
	for _, i := range o.opts.Interceptors {
		i.SendReply(m)
	}
}

// Shutdown closes all adapters and client connections. Outstanding calls
// fail with COMM_FAILURE.
func (o *ORB) Shutdown() {
	o.mu.Lock()
	if o.shutdown {
		o.mu.Unlock()
		return
	}
	o.shutdown = true
	adapters := o.adapters
	o.adapters = nil
	conns := o.conns
	o.conns = make(map[string]*clientConn)
	pool := o.pool
	o.pool = nil
	o.mu.Unlock()

	for _, a := range adapters {
		a.Close()
	}
	for _, c := range conns {
		c.close(CommFailure("orb shutdown"))
	}
	if pool != nil {
		// Adapters have drained their tasks, so the queue is empty and
		// closing it releases every worker.
		pool.stop()
	}
}

// observeBatchSize records one reactor batch size when a metrics registry
// is attached (no-op otherwise; the hot path pays one atomic load).
func (o *ORB) observeBatchSize(n int) {
	if h := o.batchHist.Load(); h != nil {
		h.Observe(float64(n))
	}
}

// dropConn removes a connection from the pool if it is still the pooled
// entry for its address.
func (o *ORB) dropConn(c *clientConn) {
	o.mu.Lock()
	if o.conns[c.addr] == c {
		delete(o.conns, c.addr)
	}
	o.mu.Unlock()
}

// removeAdapter forgets a closed adapter.
func (o *ORB) removeAdapter(a *Adapter) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for i, x := range o.adapters {
		if x == a {
			o.adapters = append(o.adapters[:i], o.adapters[i+1:]...)
			return
		}
	}
}
