package orb

import (
	"net"

	"repro/internal/obs"
)

// Observe is the one-call observability hookup for a daemon process: it
// attaches a fresh obs.Observer to this ORB's call-interceptor chain
// (tracing + per-method RPC metrics), exports the ORB's own counters
// into the observer's registry, and serves /metrics and /debug/traces
// on addr in the background. The returned listener reports the bound
// address (useful with ":0") and stops the endpoint when closed.
func (o *ORB) Observe(service, addr string) (*obs.Observer, net.Listener, error) {
	ob := obs.NewObserver(service)
	o.AddCallInterceptor(ob)
	o.ExportStats(ob.Registry)
	ln, err := obs.Serve(addr, ob.Handler())
	if err != nil {
		return nil, nil, err
	}
	return ob, ln, nil
}
