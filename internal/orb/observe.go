package orb

import (
	"net"

	"repro/internal/obs"
)

// Observe is the one-call observability hookup for a daemon process: it
// attaches a fresh obs.Observer to this ORB's call-interceptor chain
// (tracing + per-method RPC metrics), exports the ORB's own counters and
// load signals into the observer's registry, wires the black-box flight
// recorder and anomaly plane into the request paths, registers the ORB's
// health probe, and serves /metrics, /debug/traces, /debug/flightrec,
// /debug/pprof, /healthz and /readyz on addr in the background. The
// returned listener reports the bound address (useful with ":0") and
// stops the endpoint when closed.
func (o *ORB) Observe(service, addr string) (*obs.Observer, net.Listener, error) {
	return o.ObserveOpts(service, addr, obs.ObserverOptions{})
}

// ObserveOpts is Observe with explicit observer options (sampling rate,
// ring and recorder sizes, anomaly dump directory and burst rules).
func (o *ORB) ObserveOpts(service, addr string, opts obs.ObserverOptions) (*obs.Observer, net.Listener, error) {
	ob := obs.NewObserverOpts(service, opts)
	o.AddCallInterceptor(ob)
	o.ExportStats(ob.Registry)
	o.AttachFlightRecorder(ob.Flight)
	ob.Health.Register("orb", o.HealthProbe)
	// The QoS probe fails (with the mode name) whenever the adaptive-
	// degradation controller has the runtime below normal, so /healthz
	// mirrors every transition the anomaly log records.
	ob.Health.Register("qos", o.QoSHealthProbe)
	obs.SetDefaultAnomalies(ob.Anomalies)
	ln, err := obs.Serve(addr, ob.Handler())
	if err != nil {
		return nil, nil, err
	}
	return ob, ln, nil
}
