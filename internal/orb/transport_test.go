package orb

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"

	"repro/internal/cdr"
)

// echoServant replies with its string argument.
type echoServant struct{}

func (echoServant) TypeID() string { return "IDL:repro/Echo:1.0" }

func (echoServant) Invoke(_ *ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	if op != "echo" {
		return BadOperation(op)
	}
	s := in.GetString()
	if err := in.Err(); err != nil {
		return &SystemException{Kind: ExMarshal, Detail: err.Error()}
	}
	out.PutString(s)
	return nil
}

// countingDialer wraps net.Dialer and counts DialContext calls.
type countingDialer struct {
	net.Dialer
	calls atomic.Int64
}

func (d *countingDialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	d.calls.Add(1)
	return d.Dialer.DialContext(ctx, network, addr)
}

// refusingDialer fails every dial.
type refusingDialer struct{}

func (refusingDialer) DialContext(context.Context, string, string) (net.Conn, error) {
	return nil, errors.New("injected refusal")
}

func TestCustomDialerIsUsed(t *testing.T) {
	server := New(Options{Name: "seam-server"})
	defer server.Shutdown()
	ad, err := server.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ref := ad.Activate("echo", echoServant{})

	d := &countingDialer{}
	client := New(Options{Name: "seam-client", Dialer: d})
	defer client.Shutdown()

	var got string
	err = client.Call(context.Background(), ref, "echo",
		func(e *cdr.Encoder) { e.PutString("hi") },
		func(dec *cdr.Decoder) error { got = dec.GetString(); return dec.Err() })
	if err != nil {
		t.Fatal(err)
	}
	if got != "hi" {
		t.Fatalf("echo = %q", got)
	}
	if d.calls.Load() != 1 {
		t.Fatalf("dialer calls = %d, want 1", d.calls.Load())
	}
}

func TestRefusingDialerSurfacesCommFailure(t *testing.T) {
	client := New(Options{Name: "refused-client", Dialer: refusingDialer{}})
	defer client.Shutdown()
	ref := ObjectRef{TypeID: "T", Addr: "127.0.0.1:1", Key: "x"}
	err := client.Call(context.Background(), ref, "op", nil, nil)
	if !IsCommFailure(err) {
		t.Fatalf("err = %v, want COMM_FAILURE", err)
	}
}

func TestCustomListenIsUsed(t *testing.T) {
	var listens atomic.Int64
	server := New(Options{
		Name: "listen-server",
		Listen: func(network, addr string) (net.Listener, error) {
			listens.Add(1)
			return net.Listen(network, addr)
		},
	})
	defer server.Shutdown()
	ad, err := server.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if listens.Load() != 1 {
		t.Fatalf("listen calls = %d, want 1", listens.Load())
	}
	ref := ad.Activate("echo", echoServant{})

	client := New(Options{Name: "listen-client"})
	defer client.Shutdown()
	if err := client.Ping(context.Background(), ref); err != nil {
		t.Fatal(err)
	}
}
