package orb

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func newTestBreaker(th int, cd time.Duration, c *fakeClock) *Breaker {
	return NewBreaker(BreakerOptions{Threshold: th, Cooldown: cd, Clock: c.now})
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(3, time.Second, clk)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		b.Failure()
		if got := b.State(); got != BreakerClosed {
			t.Fatalf("state after %d failures = %v, want closed", i+1, got)
		}
	}
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(1, time.Second, clk)
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker admitted a call immediately")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not admit the half-open probe after cooldown")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", got)
	}
	if b.Allow() {
		t.Fatal("breaker admitted a second call while the probe is in flight")
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected a call")
	}
}

func TestBreakerReopensOnFailedProbe(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(1, time.Second, clk)
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("no probe admitted")
	}
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	// The cooldown restarted at the probe failure.
	clk.advance(500 * time.Millisecond)
	if b.Allow() {
		t.Fatal("breaker admitted a call before the restarted cooldown elapsed")
	}
	clk.advance(500 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker did not admit a probe after the restarted cooldown")
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(2, time.Second, clk)
	b.Failure()
	b.Success()
	b.Failure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed (success should reset the streak)", got)
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(BreakerOptions{})
	if !b.Allow() {
		t.Fatal("fresh breaker rejected a call")
	}
	b.Failure() // default threshold 1
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open with default threshold 1", got)
	}
}
