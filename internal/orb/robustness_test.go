package orb

import (
	"context"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/giop"
)

func TestStatsCounters(t *testing.T) {
	o, _, ref, _ := newTestPair(t, Options{})
	server := ref // same process hosts the adapter; o is also the client
	_ = server
	for i := 0; i < 3; i++ {
		if _, err := callAdd(o, ref, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	st := o.Stats()
	if st.RequestsSent != 3 || st.RepliesReceived != 3 {
		t.Fatalf("client counters: %+v", st)
	}
	if st.RequestsServed != 3 {
		t.Fatalf("server counters: %+v", st)
	}
	if st.ConnectionsDialed != 1 || st.ConnectionsAccepted != 1 {
		t.Fatalf("connection counters: %+v", st)
	}
}

func TestStatsCountOneway(t *testing.T) {
	o, _, ref, sv := newTestPair(t, Options{})
	if err := o.Notify(context.Background(), ref, "add", nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sv.calls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := o.Stats()
	if st.RequestsSent != 1 || st.RepliesReceived != 0 {
		t.Fatalf("counters: %+v", st)
	}
}

// TestServerSurvivesGarbageBytes fires random byte streams at the
// adapter's port: the server must never crash, must drop the hostile
// connections, and must keep serving legitimate clients.
func TestServerSurvivesGarbageBytes(t *testing.T) {
	o, a, ref, _ := newTestPair(t, Options{})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		conn, err := net.Dial("tcp", a.Addr())
		if err != nil {
			t.Fatal(err)
		}
		n := rng.Intn(200)
		buf := make([]byte, n)
		rng.Read(buf)
		// Half the probes start with valid magic to exercise deeper
		// parsing paths.
		if i%2 == 0 && n >= 4 {
			copy(buf, giop.Magic[:])
		}
		conn.Write(buf)
		conn.Close()
	}
	// A legitimate call still succeeds.
	if _, err := callAdd(o, ref, 2, 3); err != nil {
		t.Fatalf("server degraded after garbage: %v", err)
	}
}

// TestServerSurvivesHugeDeclaredBody sends a header declaring a massive
// body; the server must reject it without allocating or hanging.
func TestServerSurvivesHugeDeclaredBody(t *testing.T) {
	o, a, ref, _ := newTestPair(t, Options{})
	conn, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	hdr := append([]byte{}, giop.Magic[:]...)
	hdr = append(hdr, giop.Version, byte(giop.MsgRequest), 0, 0, 0xff, 0xff, 0xff, 0xff)
	conn.Write(hdr)
	conn.Close()
	if _, err := callAdd(o, ref, 1, 1); err != nil {
		t.Fatalf("server degraded: %v", err)
	}
}

// TestServerHandlesSlowClient verifies that a stalled half-written
// request does not block other clients (each connection has its own
// reader).
func TestServerHandlesSlowClient(t *testing.T) {
	o, a, ref, _ := newTestPair(t, Options{})
	conn, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Write half a header and stall.
	conn.Write(giop.Magic[:2])
	done := make(chan error, 1)
	go func() {
		_, err := callAdd(o, ref, 4, 4)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stalled client blocked the adapter")
	}
}

// TestServerWorkerCapRespected floods the adapter with slow calls and
// checks the configured dispatch cap is never exceeded.
func TestServerWorkerCapRespected(t *testing.T) {
	o := New(Options{MaxServerWorkers: 2})
	defer o.Shutdown()
	a, err := o.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var active, peak atomic.Int64
	sv := &gaugeServant{active: &active, peak: &peak}
	ref := a.Activate("gauge", sv)

	client := New(Options{})
	defer client.Shutdown()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = client.Call(context.Background(), ref, "work", nil, nil)
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 2 {
		t.Fatalf("peak concurrent dispatches = %d, cap 2", got)
	}
}

// gaugeServant tracks concurrent invocations.
type gaugeServant struct {
	active, peak *atomic.Int64
}

func (g *gaugeServant) TypeID() string { return "IDL:repro/Gauge:1.0" }

func (g *gaugeServant) Invoke(_ *ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	cur := g.active.Add(1)
	defer g.active.Add(-1)
	for {
		p := g.peak.Load()
		if cur <= p || g.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	time.Sleep(10 * time.Millisecond)
	return nil
}

// TestClientRejectsOversizedReply ensures a hostile server cannot make
// the client allocate unbounded memory.
func TestClientRejectsOversizedReply(t *testing.T) {
	// A fake "server" that replies with a huge declared length.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Read the request header + body, then reply with garbage length.
		buf := make([]byte, 4096)
		conn.Read(buf)
		evil := append([]byte{}, giop.Magic[:]...)
		evil = append(evil, giop.Version, byte(giop.MsgReply), 0, 0, 0xff, 0xff, 0xff, 0xff)
		conn.Write(evil)
	}()

	o := New(Options{CallTimeout: 5 * time.Second})
	defer o.Shutdown()
	ref := ObjectRef{TypeID: "T", Addr: ln.Addr().String(), Key: "k"}
	err = o.Call(context.Background(), ref, "op", nil, nil)
	if !IsCommFailure(err) && !IsSystemException(err, ExTimeout) {
		t.Fatalf("err = %v", err)
	}
}
