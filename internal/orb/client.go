package orb

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/cdr"
	"repro/internal/giop"
	"repro/internal/obs"
)

// clientConn is a multiplexed client-side connection: many in-flight
// requests share one TCP stream, matched to replies by request id.
type clientConn struct {
	orb  *ORB
	addr string
	conn net.Conn

	writeMu        sync.Mutex
	bw             *bufio.Writer
	flushScheduled bool        // a deferred flush will run; writes may ride it
	flushTimer     *time.Timer // the scheduled flush (nil when none)

	mu      sync.Mutex
	pending map[uint32]chan *giop.Message
	err     error // set once the connection is dead
}

// getConn returns the pooled connection for addr, dialing if necessary.
// Concurrent callers for an un-pooled address coalesce onto a single
// in-flight dial (per-address singleflight) instead of racing duplicate
// connections and discarding the losers.
func (o *ORB) getConn(addr string) (*clientConn, error) {
	o.mu.Lock()
	if o.shutdown {
		o.mu.Unlock()
		return nil, CommFailure("orb is shut down")
	}
	if c, ok := o.conns[addr]; ok {
		o.mu.Unlock()
		return c, nil
	}
	if w, ok := o.dials[addr]; ok {
		o.mu.Unlock()
		o.counters.dialsCoalesced.Add(1)
		<-w.done
		return w.conn, w.err
	}
	w := &dialWait{done: make(chan struct{})}
	o.dials[addr] = w
	o.mu.Unlock()

	c, err := o.dialConn(addr)

	o.mu.Lock()
	delete(o.dials, addr)
	if err == nil {
		if o.shutdown {
			err = CommFailure("orb is shut down")
			c.conn.Close()
			c = nil
		} else {
			o.conns[addr] = c
		}
	}
	o.mu.Unlock()

	w.conn, w.err = c, err
	close(w.done)
	if err != nil {
		return nil, err
	}
	go c.readLoop()
	return c, nil
}

// dialConn establishes one outbound connection (no pooling).
func (o *ORB) dialConn(addr string) (*clientConn, error) {
	dctx, dcancel := context.WithTimeout(context.Background(), o.opts.DialTimeout)
	nc, err := o.opts.Dialer.DialContext(dctx, "tcp", addr)
	dcancel()
	if err != nil {
		return nil, CommFailure(fmt.Sprintf("dial %s: %v", addr, err))
	}
	o.counters.connectionsDialed.Add(1)
	return &clientConn{
		orb:     o,
		addr:    addr,
		conn:    nc,
		bw:      bufio.NewWriter(nc),
		pending: make(map[uint32]chan *giop.Message),
	}, nil
}

// Prewarm establishes connections to addrs ahead of first use, so a
// subsequent fan-out finds warm connections instead of serialising behind
// dials. Managers call it with a resolver's offer set (the worker
// addresses they are about to spread calls over). Already-pooled
// addresses are skipped; dial failures are ignored (the call path simply
// dials later). It returns the number of connections actually
// established.
func (o *ORB) Prewarm(ctx context.Context, addrs ...string) int {
	var wg sync.WaitGroup
	warmed := make([]bool, len(addrs))
	for i, addr := range addrs {
		if ctx != nil && ctx.Err() != nil {
			break
		}
		o.mu.Lock()
		_, pooled := o.conns[addr]
		o.mu.Unlock()
		if pooled || addr == "" {
			continue
		}
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			if _, err := o.getConn(addr); err == nil {
				warmed[i] = true
			}
		}(i, addr)
	}
	wg.Wait()
	n := 0
	for _, ok := range warmed {
		if ok {
			n++
		}
	}
	o.counters.connectionsPrewarmed.Add(uint64(n))
	return n
}

// readLoop dispatches replies to waiting callers until the stream dies.
func (c *clientConn) readLoop() {
	br := bufio.NewReader(c.conn)
	for {
		m, err := giop.Read(br)
		if err != nil {
			c.close(CommFailure(fmt.Sprintf("read from %s: %v", c.addr, err)))
			return
		}
		switch m.Type {
		case giop.MsgReply, giop.MsgLocateReply:
			c.mu.Lock()
			ch := c.pending[m.RequestID]
			delete(c.pending, m.RequestID)
			c.mu.Unlock()
			if ch != nil {
				c.orb.counters.repliesReceived.Add(1)
				ch <- m
			}
		case giop.MsgCloseConnection:
			c.close(CommFailure(fmt.Sprintf("%s closed connection", c.addr)))
			return
		case giop.MsgError:
			c.close(CommFailure(fmt.Sprintf("%s reported protocol error", c.addr)))
			return
		default:
			// Clients ignore other message kinds.
		}
	}
}

// close marks the connection dead, fails all pending calls with cause and
// removes it from the ORB's pool.
func (c *clientConn) close(cause error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = cause
	pending := c.pending
	c.pending = nil
	c.mu.Unlock()

	c.conn.Close()
	c.orb.dropConn(c)
	for id, ch := range pending {
		_ = id
		// Non-blocking: each waiter has a 1-buffered channel.
		select {
		case ch <- nil:
		default:
		}
	}
}

// replyChanPool recycles the 1-buffered reply channels used to hand a
// reply from the read loop to the waiting caller. A channel is recycled
// only after its caller has received from it: exactly one sender can ever
// claim a pending entry (the map entry is removed under mu before the
// send), so once the receive completes the channel is empty and unshared.
// Abandoned channels (cancellation/timeout paths) are never recycled —
// the read loop or close may still be mid-send on them.
var replyChanPool = sync.Pool{New: func() any { return make(chan *giop.Message, 1) }}

// register adds a reply channel for a request id. It fails if the
// connection is already dead.
func (c *clientConn) register(id uint32) (chan *giop.Message, error) {
	ch := replyChanPool.Get().(chan *giop.Message)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		replyChanPool.Put(ch)
		return nil, c.err
	}
	c.pending[id] = ch
	return ch, nil
}

// unregister abandons a pending request (cancellation/timeout path).
func (c *clientConn) unregister(id uint32) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// deadErr returns the recorded death cause, if any.
func (c *clientConn) deadErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// send writes one message under the write lock. With flushNow false and a
// configured CoalesceWindow the buffered bytes may wait up to the window
// for concurrent writers to share the flush; message bytes are always
// copied into the buffer synchronously, so callers may release pooled
// encoders backing m.Body as soon as send returns.
func (c *clientConn) send(m *giop.Message, flushNow bool) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if err := c.deadErr(); err != nil {
		return err
	}
	if err := giop.Write(c.bw, m); err != nil {
		c.close(CommFailure(fmt.Sprintf("write to %s: %v", c.addr, err)))
		return c.deadErr()
	}
	window := c.orb.opts.CoalesceWindow
	switch {
	case flushNow || window <= 0:
		if c.flushTimer != nil {
			c.flushTimer.Stop()
			c.flushTimer = nil
			c.flushScheduled = false
		}
		if err := c.bw.Flush(); err != nil {
			c.close(CommFailure(fmt.Sprintf("flush to %s: %v", c.addr, err)))
			return c.deadErr()
		}
	case c.flushScheduled:
		// A flush is already on its way; this write rides it for free.
		c.orb.counters.flushesCoalesced.Add(1)
	default:
		c.flushScheduled = true
		c.flushTimer = time.AfterFunc(window, c.flushDeferred)
	}
	if m.Type == giop.MsgRequest {
		c.orb.counters.requestsSent.Add(1)
	}
	return nil
}

// flushDeferred runs the scheduled coalesced flush.
func (c *clientConn) flushDeferred() {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.flushScheduled = false
	c.flushTimer = nil
	if c.deadErr() != nil {
		return
	}
	if err := c.bw.Flush(); err != nil {
		c.close(CommFailure(fmt.Sprintf("flush to %s: %v", c.addr, err)))
	}
}

// abandonError maps a context's termination cause to the system exception
// surfaced to the caller.
func abandonError(ctx context.Context, m *giop.Message) error {
	kind := ExCancelled
	if ctx.Err() == context.DeadlineExceeded {
		kind = ExTimeout
	}
	return &SystemException{Kind: kind, Detail: fmt.Sprintf("%s.%s: %v", m.ObjectKey, m.Operation, ctx.Err())}
}

// roundTrip sends a request and waits for its reply, honoring ctx: when the
// context is cancelled or its deadline passes before the reply arrives, the
// pending entry is abandoned and a MsgCancelRequest is sent so the server
// can abort the dispatch. Requests with a context deadline carry the
// remaining time in the SCDeadline service context.
func (c *clientConn) roundTrip(ctx context.Context, m *giop.Message, noCoalesce bool) (*giop.Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, abandonError(ctx, m)
	}
	if dl, ok := ctx.Deadline(); ok && m.Type == giop.MsgRequest {
		m.SetContext(giop.SCDeadline, giop.EncodeDeadline(time.Until(dl)))
	}
	ch, err := c.register(m.RequestID)
	if err != nil {
		return nil, err
	}
	if err := c.send(m, noCoalesce); err != nil {
		c.unregister(m.RequestID)
		return nil, err
	}
	select {
	case reply := <-ch:
		// The single possible send has completed, so the drained channel
		// can go back to the pool.
		replyChanPool.Put(ch)
		if reply == nil {
			err := c.deadErr()
			if err == nil {
				err = CommFailure("connection closed")
			}
			return nil, err
		}
		return reply, nil
	case <-ctx.Done():
		c.unregister(m.RequestID)
		// Tell the server to abort the dispatch; best-effort (the reply,
		// if any, is discarded by the read loop since we unregistered).
		_ = c.send(&giop.Message{Type: giop.MsgCancelRequest, RequestID: m.RequestID}, true)
		c.orb.counters.cancelsSent.Add(1)
		return nil, abandonError(ctx, m)
	}
}

// callContext derives the per-call context: the tighter of ctx's own
// deadline, opts.Deadline and the ORB's default CallTimeout.
func (o *ORB) callContext(ctx context.Context, opts CallOptions) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	timeout := opts.Deadline
	if timeout <= 0 {
		timeout = o.opts.CallTimeout
	}
	if timeout > 0 {
		return context.WithTimeout(ctx, timeout)
	}
	return ctx, func() {}
}

// invokeOnce is the single-attempt core under Call/CallOpts: one wire
// round trip, reply decoded, no retries or forward-following. writeArgs
// fills the request body, readReply (which may be nil for void results)
// consumes the reply body. The call is bounded by ctx and the ORB's
// default CallTimeout; cancelling ctx abandons the reply and sends a
// wire-level cancel. Transport failures surface as COMM_FAILURE; servant
// exceptions surface as *UserException or *SystemException.
func (o *ORB) invokeOnce(ctx context.Context, ref ObjectRef, op string, writeArgs func(*cdr.Encoder), readReply func(*cdr.Decoder) error, opts CallOptions) error {
	if ref.IsNil() {
		return &SystemException{Kind: ExObjectNotExist, Detail: "nil object reference"}
	}
	reply, err := o.invokeRaw(ctx, ref, op, writeArgs, opts)
	if err != nil {
		return err
	}
	err = decodeReply(reply, readReply)
	reply.Release()
	return err
}

// invokeRaw performs the wire round trip and returns the raw reply
// (which the caller releases once decoded). The request message and its
// body ride pooled storage released before return — safe because send
// copies the bytes into the connection buffer synchronously and all
// interceptors have run by then.
func (o *ORB) invokeRaw(ctx context.Context, ref ObjectRef, op string, writeArgs func(*cdr.Encoder), opts CallOptions) (*giop.Message, error) {
	fl := o.flight.Load()
	var start time.Time
	if fl != nil {
		start = time.Now()
	}
	m, enc := o.buildRequest(ref, op, writeArgs)
	// QoS coordinates ride the SCQoS service context. Default traffic
	// (normal class, no tenant) sends none — byte-identical to a pre-QoS
	// client, and the attach cost is only paid by calls that opted in.
	if opts.Priority != ClassNormal || opts.Tenant != "" {
		m.SetContext(giop.SCQoS, giop.EncodeQoS(uint8(opts.Priority), opts.Tenant))
	}
	o.interceptSendRequest(m)
	ctx = o.callRequestSent(ctx, m)
	reply, err := o.transferRequest(ctx, ref, m, opts)
	if err != nil {
		o.callReplyReceived(ctx, m, nil, err)
		o.recordClientCall(fl, m, ref.Addr, start, obs.OutcomeTransportError)
		enc.Release()
		m.Release()
		return nil, err
	}
	o.interceptReceiveReply(reply)
	o.callReplyReceived(ctx, m, reply, nil)
	o.recordClientCall(fl, m, ref.Addr, start, replyOutcome(reply.ReplyStatus))
	enc.Release()
	m.Release()
	return reply, nil
}

// recordClientCall appends one client-side flight record for a finished
// outbound call. fl is the recorder loaded at call start (nil-safe).
// Client records have no queue-wait; Service is the full round trip as the
// caller experienced it. The trace id is copied only from sampled calls —
// unsampled ones carry the process-constant placeholder context, which
// would link every record to the same meaningless trace.
func (o *ORB) recordClientCall(fl *obs.FlightRecorder, m *giop.Message, peer string, start time.Time, outcome obs.Outcome) {
	if fl == nil {
		return
	}
	rec := obs.FlightRecord{
		Time:    time.Now().UnixNano(),
		Op:      m.Operation,
		Peer:    peer,
		Side:    obs.SideClient,
		Bytes:   int32(len(m.Body)),
		Service: int64(time.Since(start)),
		Outcome: outcome,
	}
	if tc, ok := obs.DecodeTraceContext(m.Context(giop.SCTrace)); ok && tc.Sampled {
		rec.Trace = tc.TraceID
	}
	fl.Record(rec)
}

// buildRequest assembles an un-intercepted request message. The message
// is pooled (callers that complete synchronously release it; the DII path
// retains its message and simply never recycles it). The returned encoder
// (nil when writeArgs is nil) backs m.Body; the caller must Release it
// once the message has been handed to send and all observers of m.Body
// have run.
func (o *ORB) buildRequest(ref ObjectRef, op string, writeArgs func(*cdr.Encoder)) (*giop.Message, *cdr.Encoder) {
	m := giop.AcquireMessage()
	m.Type = giop.MsgRequest
	m.RequestID = o.nextRequestID()
	m.ResponseExpected = true
	m.ObjectKey = ref.Key
	m.Operation = op
	var e *cdr.Encoder
	if writeArgs != nil {
		e = cdr.AcquireEncoder()
		writeArgs(e)
		m.Body = e.Bytes()
	}
	return m, e
}

// transferRequest sends an already-intercepted request and returns the
// raw, un-intercepted reply. Interception is split from transfer so that
// DII requests can run both interception points synchronously in the
// caller's goroutine — send interceptors at Send time, receive
// interceptors at GetResponse time — keeping interceptor state (e.g.
// virtual-time stamps and merges) causally tied to when the caller issues
// and consumes the call, independent of goroutine scheduling.
func (o *ORB) transferRequest(ctx context.Context, ref ObjectRef, m *giop.Message, opts CallOptions) (*giop.Message, error) {
	c, err := o.getConn(ref.Addr)
	if err != nil {
		return nil, err
	}
	cctx, cancel := o.callContext(ctx, opts)
	defer cancel()
	return c.roundTrip(cctx, m, opts.NoCoalesce)
}

// Notify performs a oneway invocation (IDL "oneway" semantics): the
// request is written with ResponseExpected=false and the call returns as
// soon as it is on the wire. Delivery is best-effort; servant errors are
// not reported. A ctx deadline is still propagated so the server can shed
// the request if it arrives expired.
func (o *ORB) Notify(ctx context.Context, ref ObjectRef, op string, writeArgs func(*cdr.Encoder)) error {
	if ref.IsNil() {
		return &SystemException{Kind: ExObjectNotExist, Detail: "nil object reference"}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	fl := o.flight.Load()
	var start time.Time
	if fl != nil {
		start = time.Now()
	}
	m, enc := o.buildRequest(ref, op, writeArgs)
	m.ResponseExpected = false
	o.interceptSendRequest(m)
	ctx = o.callRequestSent(ctx, m)
	err := o.notifyTransfer(ctx, ref, m)
	// Oneways have no reply; completion for the call interceptors is the
	// moment the request is on the wire (or failed to get there).
	o.callReplyReceived(ctx, m, nil, err)
	if err != nil {
		o.recordClientCall(fl, m, ref.Addr, start, obs.OutcomeTransportError)
	} else {
		o.recordClientCall(fl, m, ref.Addr, start, obs.OutcomeOneway)
	}
	enc.Release()
	m.Release()
	return err
}

// notifyTransfer puts an already-intercepted oneway request on the wire.
// Oneways are the natural coalescing customer: with a CoalesceWindow set,
// a burst of notifications shares one flush.
func (o *ORB) notifyTransfer(ctx context.Context, ref ObjectRef, m *giop.Message) error {
	if err := ctx.Err(); err != nil {
		return abandonError(ctx, m)
	}
	if dl, ok := ctx.Deadline(); ok {
		m.SetContext(giop.SCDeadline, giop.EncodeDeadline(time.Until(dl)))
	}
	c, err := o.getConn(ref.Addr)
	if err != nil {
		return err
	}
	return c.send(m, false)
}

// decodeReply maps a reply message to the caller's result or error. The
// reply body is walked with a pooled decoder; decoded values are copies,
// so nothing aliases the pool after return.
func decodeReply(reply *giop.Message, readReply func(*cdr.Decoder) error) error {
	switch reply.ReplyStatus {
	case giop.ReplyNoException:
		if readReply == nil {
			return nil
		}
		d := cdr.AcquireDecoder(reply.Body)
		err := readReply(d)
		if err == nil {
			err = d.Err()
		}
		d.Release()
		return err
	case giop.ReplyUserException:
		ue := new(UserException)
		d := cdr.AcquireDecoder(reply.Body)
		err := ue.UnmarshalCDR(d)
		d.Release()
		if err != nil {
			return &SystemException{Kind: ExMarshal, Detail: "undecodable user exception"}
		}
		return ue
	case giop.ReplySystemException:
		se := new(SystemException)
		d := cdr.AcquireDecoder(reply.Body)
		err := se.UnmarshalCDR(d)
		d.Release()
		if err != nil {
			return &SystemException{Kind: ExMarshal, Detail: "undecodable system exception"}
		}
		// An admission shed carries the server's backoff hint in a reply
		// service context; surface it on the exception for the resilient
		// call engine.
		if ra, ok := giop.DecodeRetryAfter(reply.Context(giop.SCRetryAfter)); ok {
			se.RetryAfter = ra
		}
		return se
	case giop.ReplyLocationForward:
		var fwd ObjectRef
		d := cdr.AcquireDecoder(reply.Body)
		err := fwd.UnmarshalCDR(d)
		d.Release()
		if err != nil {
			return &SystemException{Kind: ExMarshal, Detail: "undecodable forward reference"}
		}
		return &ForwardError{Target: fwd}
	default:
		return &SystemException{Kind: ExInternal, Detail: fmt.Sprintf("bad reply status %v", reply.ReplyStatus)}
	}
}

// ForwardError reports a LOCATION_FORWARD reply; callers reissue the
// request against Target.
type ForwardError struct {
	Target ObjectRef
}

func (e *ForwardError) Error() string {
	return fmt.Sprintf("orb: location forward to %v", e.Target)
}

// Locate asks the adapter at ref.Addr whether it hosts ref.Key (GIOP
// LocateRequest analogue).
func (o *ORB) Locate(ctx context.Context, ref ObjectRef) (bool, error) {
	c, err := o.getConn(ref.Addr)
	if err != nil {
		return false, err
	}
	m := &giop.Message{
		Type:      giop.MsgLocateRequest,
		RequestID: o.nextRequestID(),
		ObjectKey: ref.Key,
	}
	cctx, cancel := o.callContext(ctx, CallOptions{})
	defer cancel()
	// Locate is a latency-sensitive liveness probe; never coalesce it.
	reply, err := c.roundTrip(cctx, m, true)
	if err != nil {
		return false, err
	}
	here := reply.LocateStatus == giop.LocateObjectHere
	reply.Release()
	return here, nil
}

// OpIsA is the reserved type-check operation every adapter answers on
// behalf of its servants (CORBA Object::_is_a analogue).
const OpIsA = "_is_a"

// IsA asks the servant at ref whether it implements typeID. Unlike the
// TypeID recorded inside the reference (which may be stale after a
// rebind), this asks the live object.
func (o *ORB) IsA(ctx context.Context, ref ObjectRef, typeID string) (bool, error) {
	var ok bool
	err := o.Call(ctx, ref, OpIsA,
		func(e *cdr.Encoder) { e.PutString(typeID) },
		func(d *cdr.Decoder) error { ok = d.GetBool(); return d.Err() })
	return ok, err
}

// Ping performs a connectivity probe against ref ("_non_existent"
// analogue): it returns nil when the servant is reachable and dispatchable.
func (o *ORB) Ping(ctx context.Context, ref ObjectRef) error {
	ok, err := o.Locate(ctx, ref)
	if err != nil {
		return err
	}
	if !ok {
		return ObjectNotExist(ref.Key)
	}
	return nil
}
