package orb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/giop"
)

// calcServant is a test servant: add(a,b), div(a,b) raising a user
// exception on b==0, sleep(ms), boom() panicking, state() returning an
// internal counter.
type calcServant struct {
	calls atomic.Int64
}

func (c *calcServant) TypeID() string { return "IDL:repro/Calc:1.0" }

func (c *calcServant) Invoke(ctx *ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	c.calls.Add(1)
	switch op {
	case "add":
		a, b := in.GetInt64(), in.GetInt64()
		if err := in.Err(); err != nil {
			return &SystemException{Kind: ExMarshal, Detail: err.Error()}
		}
		out.PutInt64(a + b)
		return nil
	case "div":
		a, b := in.GetFloat64(), in.GetFloat64()
		if b == 0 {
			return &UserException{RepoID: "IDL:repro/DivByZero:1.0", Detail: "division by zero"}
		}
		out.PutFloat64(a / b)
		return nil
	case "sleep":
		ms := in.GetInt64()
		time.Sleep(time.Duration(ms) * time.Millisecond)
		return nil
	case "boom":
		panic("servant exploded")
	case "calls":
		out.PutInt64(c.calls.Load())
		return nil
	default:
		return BadOperation(op)
	}
}

func newTestPair(t *testing.T, opts Options) (*ORB, *Adapter, ObjectRef, *calcServant) {
	t.Helper()
	o := New(opts)
	t.Cleanup(o.Shutdown)
	a, err := o.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sv := &calcServant{}
	ref := a.Activate("calc", sv)
	return o, a, ref, sv
}

func callAdd(o *ORB, ref ObjectRef, a, b int64) (int64, error) {
	var sum int64
	err := o.Call(context.Background(), ref, "add",
		func(e *cdr.Encoder) { e.PutInt64(a); e.PutInt64(b) },
		func(d *cdr.Decoder) error { sum = d.GetInt64(); return d.Err() })
	return sum, err
}

func TestSynchronousInvoke(t *testing.T) {
	o, _, ref, _ := newTestPair(t, Options{Name: "client"})
	sum, err := callAdd(o, ref, 20, 22)
	if err != nil {
		t.Fatal(err)
	}
	if sum != 42 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestVoidReply(t *testing.T) {
	o, _, ref, _ := newTestPair(t, Options{})
	if err := o.Call(context.Background(), ref, "sleep", func(e *cdr.Encoder) { e.PutInt64(0) }, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUserException(t *testing.T) {
	o, _, ref, _ := newTestPair(t, Options{})
	err := o.Call(context.Background(), ref, "div",
		func(e *cdr.Encoder) { e.PutFloat64(1); e.PutFloat64(0) },
		func(d *cdr.Decoder) error { d.GetFloat64(); return d.Err() })
	var ue *UserException
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want UserException", err)
	}
	if ue.RepoID != "IDL:repro/DivByZero:1.0" {
		t.Fatalf("repo id = %q", ue.RepoID)
	}
	if !IsUserException(err, "IDL:repro/DivByZero:1.0") || !IsUserException(err, "") {
		t.Fatal("IsUserException misclassified")
	}
}

func TestBadOperation(t *testing.T) {
	o, _, ref, _ := newTestPair(t, Options{})
	err := o.Call(context.Background(), ref, "no_such_op", nil, nil)
	if !IsSystemException(err, ExBadOperation) {
		t.Fatalf("err = %v, want BAD_OPERATION", err)
	}
}

func TestObjectNotExist(t *testing.T) {
	o, _, ref, _ := newTestPair(t, Options{})
	ref.Key = "ghost"
	err := o.Call(context.Background(), ref, "add", func(e *cdr.Encoder) { e.PutInt64(1); e.PutInt64(1) }, nil)
	if !IsSystemException(err, ExObjectNotExist) {
		t.Fatalf("err = %v, want OBJECT_NOT_EXIST", err)
	}
}

func TestDeactivateRaisesObjectNotExist(t *testing.T) {
	o, a, ref, _ := newTestPair(t, Options{})
	if _, err := callAdd(o, ref, 1, 1); err != nil {
		t.Fatal(err)
	}
	a.Deactivate("calc")
	_, err := callAdd(o, ref, 1, 1)
	if !IsSystemException(err, ExObjectNotExist) {
		t.Fatalf("err = %v, want OBJECT_NOT_EXIST", err)
	}
}

func TestNilReferenceRejected(t *testing.T) {
	o := New(Options{})
	defer o.Shutdown()
	err := o.Call(context.Background(), ObjectRef{}, "op", nil, nil)
	if !IsSystemException(err, ExObjectNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestServantPanicBecomesInternal(t *testing.T) {
	o, _, ref, _ := newTestPair(t, Options{})
	err := o.Call(context.Background(), ref, "boom", nil, nil)
	if !IsSystemException(err, ExInternal) {
		t.Fatalf("err = %v, want INTERNAL", err)
	}
	// The adapter must survive: a second call still works.
	if _, err := callAdd(o, ref, 1, 2); err != nil {
		t.Fatalf("call after panic: %v", err)
	}
}

func TestCommFailureOnClosedAdapter(t *testing.T) {
	o, a, ref, _ := newTestPair(t, Options{})
	if _, err := callAdd(o, ref, 1, 1); err != nil {
		t.Fatal(err)
	}
	a.Close()
	_, err := callAdd(o, ref, 1, 1)
	if !IsCommFailure(err) {
		t.Fatalf("err = %v, want COMM_FAILURE", err)
	}
}

func TestCommFailureOnUnreachableAddress(t *testing.T) {
	o := New(Options{DialTimeout: 200 * time.Millisecond})
	defer o.Shutdown()
	ref := ObjectRef{TypeID: "x", Addr: "127.0.0.1:1", Key: "k"}
	err := o.Call(context.Background(), ref, "op", nil, nil)
	if !IsCommFailure(err) {
		t.Fatalf("err = %v, want COMM_FAILURE", err)
	}
}

func TestReconnectAfterServerRestart(t *testing.T) {
	o, a, ref, _ := newTestPair(t, Options{})
	if _, err := callAdd(o, ref, 1, 1); err != nil {
		t.Fatal(err)
	}
	addr := a.Addr()
	a.Close()
	if _, err := callAdd(o, ref, 1, 1); !IsCommFailure(err) {
		t.Fatalf("expected COMM_FAILURE, got %v", err)
	}
	// Restart on the same port and verify the pool re-dials.
	a2, err := o.NewAdapter(addr)
	if err != nil {
		t.Skipf("port %s not immediately reusable: %v", addr, err)
	}
	defer a2.Close()
	a2.Activate("calc", &calcServant{})
	if _, err := callAdd(o, ref, 2, 3); err != nil {
		t.Fatalf("call after restart: %v", err)
	}
}

func TestConcurrentInvocationsMultiplex(t *testing.T) {
	o, _, ref, sv := newTestPair(t, Options{})
	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sum, err := callAdd(o, ref, int64(i), int64(i))
			if err == nil && sum != int64(2*i) {
				err = fmt.Errorf("sum = %d, want %d", sum, 2*i)
			}
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := sv.calls.Load(); got != n {
		t.Fatalf("servant saw %d calls, want %d", got, n)
	}
}

func TestCallTimeout(t *testing.T) {
	o, _, ref, _ := newTestPair(t, Options{CallTimeout: 50 * time.Millisecond})
	err := o.Call(context.Background(), ref, "sleep", func(e *cdr.Encoder) { e.PutInt64(2000) }, nil)
	if !IsSystemException(err, ExTimeout) {
		t.Fatalf("err = %v, want TIMEOUT", err)
	}
}

func TestDeferredRequest(t *testing.T) {
	o, _, ref, _ := newTestPair(t, Options{})
	req := o.CreateRequest(context.Background(), ref, "add")
	req.Args().PutInt64(40)
	req.Args().PutInt64(2)
	req.Send()
	var sum int64
	if err := req.GetResponse(func(d *cdr.Decoder) error { sum = d.GetInt64(); return d.Err() }); err != nil {
		t.Fatal(err)
	}
	if sum != 42 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestDeferredRequestPoll(t *testing.T) {
	o, _, ref, _ := newTestPair(t, Options{})
	req := o.CreateRequest(context.Background(), ref, "sleep")
	req.Args().PutInt64(100)
	if req.PollResponse() {
		t.Fatal("poll true before send")
	}
	req.Send()
	deadline := time.Now().Add(5 * time.Second)
	for !req.PollResponse() {
		if time.Now().After(deadline) {
			t.Fatal("response never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	if err := req.GetResponse(nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeferredRequestGetBeforeSend(t *testing.T) {
	o, _, ref, _ := newTestPair(t, Options{})
	req := o.CreateRequest(context.Background(), ref, "add")
	if err := req.GetResponse(nil); !IsSystemException(err, ExBadOperation) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeferredRequestsOverlap(t *testing.T) {
	o, _, ref, _ := newTestPair(t, Options{})
	const n = 16
	reqs := make([]*Request, n)
	for i := range reqs {
		reqs[i] = o.CreateRequest(context.Background(), ref, "add")
		reqs[i].Args().PutInt64(int64(i))
		reqs[i].Args().PutInt64(1)
		reqs[i].Send()
	}
	for i, req := range reqs {
		var sum int64
		if err := req.GetResponse(func(d *cdr.Decoder) error { sum = d.GetInt64(); return d.Err() }); err != nil {
			t.Fatal(err)
		}
		if sum != int64(i+1) {
			t.Fatalf("req %d: sum = %d", i, sum)
		}
	}
}

func TestIsA(t *testing.T) {
	o, _, ref, _ := newTestPair(t, Options{})
	ok, err := o.IsA(context.Background(), ref, "IDL:repro/Calc:1.0")
	if err != nil || !ok {
		t.Fatalf("IsA = %v, %v", ok, err)
	}
	ok, err = o.IsA(context.Background(), ref, "IDL:repro/Other:1.0")
	if err != nil || ok {
		t.Fatalf("IsA other = %v, %v", ok, err)
	}
	ghost := ref
	ghost.Key = "ghost"
	if _, err := o.IsA(context.Background(), ghost, "x"); !IsSystemException(err, ExObjectNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestOnewayNotify(t *testing.T) {
	o, _, ref, sv := newTestPair(t, Options{})
	if err := o.Notify(context.Background(), ref, "add", func(e *cdr.Encoder) { e.PutInt64(1); e.PutInt64(2) }); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sv.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("oneway request never dispatched")
		}
		time.Sleep(time.Millisecond)
	}
	// Errors at the servant are not reported: a oneway to a ghost key
	// still returns nil once written.
	ghost := ref
	ghost.Key = "ghost"
	if err := o.Notify(context.Background(), ghost, "add", nil); err != nil {
		t.Fatalf("oneway to ghost errored locally: %v", err)
	}
	// The nil reference is still rejected client-side.
	if err := o.Notify(context.Background(), ObjectRef{}, "x", nil); !IsSystemException(err, ExObjectNotExist) {
		t.Fatalf("err = %v", err)
	}
	// Subsequent synchronous calls on the same connection still work.
	if _, err := callAdd(o, ref, 2, 2); err != nil {
		t.Fatal(err)
	}
}

func TestLocateAndPing(t *testing.T) {
	o, _, ref, _ := newTestPair(t, Options{})
	ok, err := o.Locate(context.Background(), ref)
	if err != nil || !ok {
		t.Fatalf("Locate = %v, %v", ok, err)
	}
	ghost := ref
	ghost.Key = "ghost"
	ok, err = o.Locate(context.Background(), ghost)
	if err != nil || ok {
		t.Fatalf("Locate ghost = %v, %v", ok, err)
	}
	if err := o.Ping(context.Background(), ref); err != nil {
		t.Fatalf("Ping = %v", err)
	}
	if err := o.Ping(context.Background(), ghost); !IsSystemException(err, ExObjectNotExist) {
		t.Fatalf("Ping ghost = %v", err)
	}
}

// forwardServant always replies LOCATION_FORWARD to its target.
type forwardServant struct{ target ObjectRef }

func (f *forwardServant) TypeID() string { return "IDL:repro/Forward:1.0" }
func (f *forwardServant) Invoke(ctx *ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	return &ForwardError{Target: f.target}
}

func TestLocationForwardFollowed(t *testing.T) {
	o, a, ref, _ := newTestPair(t, Options{})
	fwdRef := a.Activate("fwd", &forwardServant{target: ref})
	sum := int64(0)
	err := o.Call(context.Background(), fwdRef, "add",
		func(e *cdr.Encoder) { e.PutInt64(5); e.PutInt64(6) },
		func(d *cdr.Decoder) error { sum = d.GetInt64(); return d.Err() },
		WithFollowForwards())
	if err != nil {
		t.Fatal(err)
	}
	if sum != 11 {
		t.Fatalf("sum = %d", sum)
	}
	// A plain Call must surface the ForwardError.
	err = o.Call(context.Background(), fwdRef, "add", func(e *cdr.Encoder) { e.PutInt64(1); e.PutInt64(1) }, nil)
	var fe *ForwardError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want ForwardError", err)
	}
}

func TestForwardLoopBounded(t *testing.T) {
	o := New(Options{})
	defer o.Shutdown()
	a, err := o.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	self := ObjectRef{TypeID: "loop", Addr: a.Addr(), Key: "loop"}
	a.Activate("loop", &forwardServant{target: self})
	err = o.Call(context.Background(), self, "op", nil, nil, WithFollowForwards())
	if !IsSystemException(err, ExTransient) {
		t.Fatalf("err = %v, want TRANSIENT", err)
	}
}

// countingInterceptor records interception-point hits.
type countingInterceptor struct {
	sendReq, recvReply, recvReq, sendReply atomic.Int64
}

func (c *countingInterceptor) SendRequest(m *giop.Message)    { c.sendReq.Add(1) }
func (c *countingInterceptor) ReceiveReply(m *giop.Message)   { c.recvReply.Add(1) }
func (c *countingInterceptor) ReceiveRequest(m *giop.Message) { c.recvReq.Add(1) }
func (c *countingInterceptor) SendReply(m *giop.Message)      { c.sendReply.Add(1) }

func TestInterceptorsRunAtAllPoints(t *testing.T) {
	ic := &countingInterceptor{}
	o, _, ref, _ := newTestPair(t, Options{Interceptors: []Interceptor{ic}})
	if _, err := callAdd(o, ref, 1, 1); err != nil {
		t.Fatal(err)
	}
	if ic.sendReq.Load() != 1 || ic.recvReply.Load() != 1 || ic.recvReq.Load() != 1 || ic.sendReply.Load() != 1 {
		t.Fatalf("interceptor counts: %d %d %d %d",
			ic.sendReq.Load(), ic.recvReply.Load(), ic.recvReq.Load(), ic.sendReply.Load())
	}
}

// ctxInterceptor stamps a service context on requests and checks it
// server-side.
type ctxInterceptor struct {
	sawContext atomic.Bool
}

func (c *ctxInterceptor) SendRequest(m *giop.Message) { m.SetContext(7, []byte("stamp")) }
func (c *ctxInterceptor) ReceiveReply(m *giop.Message) {
	if string(m.Context(8)) == "pmats" {
		c.sawContext.Store(true)
	}
}
func (c *ctxInterceptor) ReceiveRequest(m *giop.Message) {}
func (c *ctxInterceptor) SendReply(m *giop.Message) {
	m.SetContext(8, []byte("pmats"))
}

func TestServiceContextsPropagate(t *testing.T) {
	ic := &ctxInterceptor{}
	o, _, ref, _ := newTestPair(t, Options{Interceptors: []Interceptor{ic}})
	if _, err := callAdd(o, ref, 1, 1); err != nil {
		t.Fatal(err)
	}
	if !ic.sawContext.Load() {
		t.Fatal("reply service context did not round trip")
	}
}

func TestShutdownFailsCalls(t *testing.T) {
	o, _, ref, _ := newTestPair(t, Options{})
	if _, err := callAdd(o, ref, 1, 1); err != nil {
		t.Fatal(err)
	}
	o.Shutdown()
	_, err := callAdd(o, ref, 1, 1)
	if !IsCommFailure(err) {
		t.Fatalf("err after shutdown = %v", err)
	}
}

func TestShutdownIdempotent(t *testing.T) {
	o := New(Options{})
	o.Shutdown()
	o.Shutdown()
}

func TestStringifiedRefRoundTrip(t *testing.T) {
	in := ObjectRef{TypeID: "IDL:repro/Calc:1.0", Addr: "10.0.0.1:9999", Key: "poa/calc#1"}
	s := in.ToString()
	out, err := RefFromString(s)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestRefFromStringErrors(t *testing.T) {
	cases := []string{"", "IOR:00", "SIOR:zz", "SIOR:01"}
	for _, s := range cases {
		if _, err := RefFromString(s); err == nil {
			t.Errorf("RefFromString(%q) succeeded", s)
		}
	}
}

func TestStringifiedRefUsableForCalls(t *testing.T) {
	o, _, ref, _ := newTestPair(t, Options{})
	parsed, err := RefFromString(ref.ToString())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := callAdd(o, parsed, 3, 4); err != nil {
		t.Fatal(err)
	}
}

func TestExceptionKindStrings(t *testing.T) {
	for k := ExUnknown; k <= ExTimeout; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty string", k)
		}
	}
	se := CommFailure("x")
	if se.Error() == "" || !IsCommFailure(se) {
		t.Fatal("CommFailure construction")
	}
}

func BenchmarkLoopbackInvoke(b *testing.B) {
	o := New(Options{})
	defer o.Shutdown()
	a, err := o.NewAdapter("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ref := a.Activate("calc", &calcServant{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := callAdd(o, ref, 1, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoopbackInvokeParallel(b *testing.B) {
	o := New(Options{})
	defer o.Shutdown()
	a, err := o.NewAdapter("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ref := a.Activate("calc", &calcServant{})
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := callAdd(o, ref, 1, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}
