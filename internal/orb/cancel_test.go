package orb

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/giop"
)

// ctxServant observes its request context: "block" parks until the context
// is cancelled (or the test releases it), "fast" just counts dispatches.
type ctxServant struct {
	started  chan struct{}
	release  chan struct{}
	observed chan error
	fast     atomic.Int64
}

func newCtxServant() *ctxServant {
	return &ctxServant{
		started:  make(chan struct{}, 4),
		release:  make(chan struct{}),
		observed: make(chan error, 4),
	}
}

func (s *ctxServant) TypeID() string { return "IDL:repro/CtxProbe:1.0" }

func (s *ctxServant) Invoke(sctx *ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	switch op {
	case "block":
		s.started <- struct{}{}
		ctx := sctx.Context()
		select {
		case <-ctx.Done():
			s.observed <- ctx.Err()
		case <-s.release:
			s.observed <- nil
		case <-time.After(5 * time.Second):
			s.observed <- errors.New("servant never saw cancellation")
		}
		return nil
	case "fast":
		s.fast.Add(1)
		return nil
	default:
		return BadOperation(op)
	}
}

func newCtxPair(t *testing.T, opts Options) (*ORB, *Adapter, ObjectRef, *ctxServant) {
	t.Helper()
	o := New(opts)
	t.Cleanup(o.Shutdown)
	a, err := o.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sv := newCtxServant()
	ref := a.Activate("probe", sv)
	return o, a, ref, sv
}

func waitStats(t *testing.T, o *ORB, ok func(Stats) bool) Stats {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := o.Stats()
		if ok(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats condition never met: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCancelMidCallPropagatesToServant is the end-to-end cancellation
// path: the client cancels mid-call, a MsgCancelRequest crosses the wire,
// the servant observes ctx.Done(), and the in-flight gauge drains to zero.
func TestCancelMidCallPropagatesToServant(t *testing.T) {
	o, _, ref, sv := newCtxPair(t, Options{Name: "cancel-e2e"})

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- o.Call(ctx, ref, "block", nil, nil) }()
	<-sv.started
	cancel()

	if err := <-errc; !IsSystemException(err, ExCancelled) {
		t.Fatalf("client err = %v, want CANCELLED", err)
	}
	if obs := <-sv.observed; obs != context.Canceled {
		t.Fatalf("servant observed %v, want context.Canceled", obs)
	}
	st := waitStats(t, o, func(st Stats) bool {
		return st.InFlight == 0 && st.CancelsSent >= 1 && st.CancelsReceived >= 1
	})
	if st.InFlight != 0 {
		t.Fatalf("in-flight gauge = %d after cancellation", st.InFlight)
	}
}

// expiredDeadlineStamper forges an already-expired SCDeadline on outgoing
// requests, simulating a request that spent its whole budget in transit.
type expiredDeadlineStamper struct{}

func (expiredDeadlineStamper) SendRequest(m *giop.Message) {
	if m.Type == giop.MsgRequest {
		m.SetContext(giop.SCDeadline, giop.EncodeDeadline(0))
	}
}
func (expiredDeadlineStamper) ReceiveReply(*giop.Message)   {}
func (expiredDeadlineStamper) ReceiveRequest(*giop.Message) {}
func (expiredDeadlineStamper) SendReply(*giop.Message)      {}

// TestExpiredRequestShedBeforeDispatch proves deadline-aware admission: a
// request whose propagated deadline has already expired on arrival is
// answered with TIMEOUT and the servant is never invoked.
func TestExpiredRequestShedBeforeDispatch(t *testing.T) {
	o, _, ref, sv := newCtxPair(t, Options{
		Name:         "shed",
		Interceptors: []Interceptor{expiredDeadlineStamper{}},
	})

	err := o.Call(context.Background(), ref, "fast", nil, nil)
	if !IsSystemException(err, ExTimeout) {
		t.Fatalf("err = %v, want TIMEOUT", err)
	}
	if n := sv.fast.Load(); n != 0 {
		t.Fatalf("servant invoked %d times despite expired deadline", n)
	}
	if st := o.Stats(); st.RequestsShed < 1 {
		t.Fatalf("RequestsShed = %d, want >= 1", st.RequestsShed)
	}
}

// TestDeadlineExpiresWhileQueuedOnBusyServer covers the paper-style busy
// case: with a single worker slot held by a long call, a 50ms-deadline
// request times out while queued and is shed without touching the servant.
func TestDeadlineExpiresWhileQueuedOnBusyServer(t *testing.T) {
	o, _, ref, sv := newCtxPair(t, Options{Name: "busy", MaxServerWorkers: 1})

	blockErr := make(chan error, 1)
	go func() { blockErr <- o.Call(context.Background(), ref, "block", nil, nil) }()
	<-sv.started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := o.Call(ctx, ref, "fast", nil, nil)
	if !IsSystemException(err, ExTimeout) {
		t.Fatalf("err = %v, want TIMEOUT", err)
	}

	close(sv.release)
	if err := <-blockErr; err != nil {
		t.Fatal(err)
	}
	<-sv.observed
	if n := sv.fast.Load(); n != 0 {
		t.Fatalf("servant invoked %d times despite expired deadline", n)
	}
	// The queued request dies either by its rebased deadline (RequestsShed)
	// or by the client's wire-level cancel racing it (CancelsReceived) —
	// both legitimate, and in neither case does the servant run.
	if st := o.Stats(); st.RequestsShed+st.CancelsReceived < 1 {
		t.Fatalf("no shed or cancel recorded: %+v", st)
	}
}

// TestNotifyFailurePaths covers oneway error reporting: nil references,
// already-terminated contexts, a shut-down ORB, and a dead peer must all
// surface as immediate local errors rather than silent drops or hangs.
func TestNotifyFailurePaths(t *testing.T) {
	server := New(Options{Name: "oneway-server"})
	a, err := server.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ref := a.Activate("probe", newCtxServant())

	client := New(Options{Name: "oneway-client"})
	t.Cleanup(client.Shutdown)

	// Baseline: a oneway against a live server succeeds.
	if err := client.Notify(context.Background(), ref, "fast", nil); err != nil {
		t.Fatalf("live notify: %v", err)
	}

	// Nil reference.
	if err := client.Notify(context.Background(), ObjectRef{}, "fast", nil); !IsSystemException(err, ExObjectNotExist) {
		t.Fatalf("nil ref err = %v, want OBJECT_NOT_EXIST", err)
	}

	// Pre-cancelled context: rejected before touching the wire.
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	if err := client.Notify(cctx, ref, "fast", nil); !IsSystemException(err, ExCancelled) {
		t.Fatalf("cancelled ctx err = %v, want CANCELLED", err)
	}

	// Dead peer: shut the server down; the pooled connection dies and
	// redials fail, so notifies start erroring (the first write after
	// close may still land in the OS buffer, hence the retry loop).
	server.Shutdown()
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := client.Notify(context.Background(), ref, "fast", nil)
		if err != nil {
			if !IsSystemException(err, ExCommFailure) {
				t.Fatalf("dead peer err = %v, want COMM_FAILURE", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("notify never failed after server shutdown")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Shut-down ORB: local, immediate COMM_FAILURE.
	client.Shutdown()
	if err := client.Notify(context.Background(), ref, "fast", nil); !IsSystemException(err, ExCommFailure) {
		t.Fatalf("shut-down orb err = %v, want COMM_FAILURE", err)
	}
}

// TestCancelRacesReplyDelivery hammers roundTrip with deadlines straddling
// the loopback round-trip time so cancellation and reply delivery race in
// both orders. Every call must resolve to success or TIMEOUT — never a
// hang, panic, or mismatched reply — and the pool must stay usable.
func TestCancelRacesReplyDelivery(t *testing.T) {
	o, _, ref, _ := newTestPair(t, Options{Name: "race"})

	// Warm the connection and estimate the round-trip time.
	if _, err := callAdd(o, ref, 1, 1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 10; i++ {
		if _, err := callAdd(o, ref, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	rtt := time.Since(start) / 10

	for i := 0; i < 200; i++ {
		// Sweep timeouts from well under to well over the RTT.
		timeout := rtt * time.Duration(i%20) / 10
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		sum, err := callAdd2(ctx, o, ref, 20, 22)
		cancel()
		switch {
		case err == nil:
			if sum != 42 {
				t.Fatalf("iteration %d: sum = %d", i, sum)
			}
		case IsSystemException(err, ExTimeout) || IsSystemException(err, ExCancelled):
			// Abandoned before the reply won the race; fine.
		default:
			t.Fatalf("iteration %d: err = %v", i, err)
		}
	}

	// The connection pool must have survived the abandoned calls.
	sum, err := callAdd(o, ref, 40, 2)
	if err != nil || sum != 42 {
		t.Fatalf("post-race call: sum = %d, err = %v", sum, err)
	}
	st := waitStats(t, o, func(st Stats) bool { return st.InFlight == 0 })
	if st.InFlight != 0 {
		t.Fatalf("in-flight gauge = %d after races", st.InFlight)
	}
}

func callAdd2(ctx context.Context, o *ORB, ref ObjectRef, a, b int64) (int64, error) {
	var sum int64
	err := o.Call(ctx, ref, "add",
		func(e *cdr.Encoder) { e.PutInt64(a); e.PutInt64(b) },
		func(d *cdr.Decoder) error { sum = d.GetInt64(); return d.Err() })
	return sum, err
}
