package orb

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// DegradeMode is the runtime's adaptive-degradation state. Under
// sustained overload the controller walks the ORB down the ladder —
// normal → degraded → critical-only — trading optional work (batch
// admission, expensive winner ranking, tight checkpoint sync, eager
// reply flushes) for headroom, then walks it back up as load recedes.
type DegradeMode int32

// Degradation modes, least to most degraded.
const (
	// ModeNormal: full service, every class admitted.
	ModeNormal DegradeMode = iota
	// ModeDegraded: batch admission closed; checkpoint sync relaxed,
	// winner selection on its cheap fallback, reply coalescing widened.
	ModeDegraded
	// ModeCriticalOnly: only critical-class requests are admitted; all
	// ModeDegraded measures stay in force.
	ModeCriticalOnly
	numDegradeModes = 3
)

// String returns the mode's wire-stable name.
func (m DegradeMode) String() string {
	switch m {
	case ModeDegraded:
		return "degraded"
	case ModeCriticalOnly:
		return "critical-only"
	default:
		return "normal"
	}
}

// DegradeMode returns the ORB's current degradation mode.
func (o *ORB) DegradeMode() DegradeMode { return DegradeMode(o.degrade.Load()) }

// OnDegrade registers fn to run on every degradation transition (with
// the new mode). Layers above the ORB — the checkpointing proxy, the
// winner selector — hook their own degraded behaviour here. Register
// during setup only.
func (o *ORB) OnDegrade(fn func(DegradeMode)) {
	o.mu.Lock()
	o.degradeHooks = append(o.degradeHooks, fn)
	o.mu.Unlock()
}

// SetDegradeMode forces a degradation mode, applying every side effect
// of a controller-driven transition (coalescing window, hooks, anomaly,
// admission gate). The controller uses it internally; tests and
// operators use it to force a mode.
func (o *ORB) SetDegradeMode(mode DegradeMode) {
	if mode < ModeNormal || mode >= numDegradeModes {
		mode = ModeCriticalOnly
	}
	prev := DegradeMode(o.degrade.Swap(int32(mode)))
	if prev == mode {
		return
	}
	// Widen the reply-coalescing window with the mode: shedding load is
	// also about spending fewer syscalls per surviving reply. A zero base
	// window stays zero — degradation never turns coalescing on where the
	// operator disabled it.
	base := int64(o.opts.ReplyCoalesceWindow)
	o.replyCoalesce.Store(base * coalesceFactor(mode))
	o.mu.Lock()
	hooks := make([]func(DegradeMode), len(o.degradeHooks))
	copy(hooks, o.degradeHooks)
	o.mu.Unlock()
	for _, fn := range hooks {
		fn(mode)
	}
	obs.SignalTrip(obs.AnomalyDegradeMode, fmt.Sprintf("%s: %s -> %s", o.opts.Name, prev, mode))
}

// coalesceFactor is the reply-coalescing widening per mode.
func coalesceFactor(mode DegradeMode) int64 {
	switch mode {
	case ModeDegraded:
		return 2
	case ModeCriticalOnly:
		return 4
	default:
		return 1
	}
}

// replyCoalesceWindow is the effective server-side coalescing window
// (base widened by the degradation mode).
func (o *ORB) replyCoalesceWindow() time.Duration {
	return time.Duration(o.replyCoalesce.Load())
}

// LoadScore is the ORB's default degradation signal: the worse of
// dispatch-queue occupancy and worker-pool occupancy, in [0, 1]. It is
// derived from the same reactor state PR 8's gauges export, so what the
// controller acts on is what /obs shows.
func (o *ORB) LoadScore() float64 {
	o.mu.Lock()
	pool := o.pool
	o.mu.Unlock()
	if pool == nil {
		return 0
	}
	var queue, busy float64
	if pool.capacity > 0 {
		queue = float64(pool.depth()) / float64(pool.capacity)
	}
	if pool.size > 0 {
		busy = float64(pool.busy.Load()) / float64(pool.size)
	}
	if queue > busy {
		return queue
	}
	return busy
}

// DegradeConfig shapes the adaptive-degradation controller.
type DegradeConfig struct {
	// High is the load score at or above which the controller steps one
	// mode down the ladder (normal → degraded → critical-only). Zero
	// means 0.85.
	High float64
	// Low is the load score at or below which it steps back up. Zero
	// means 0.5; keep Low < High or the mode flaps.
	Low float64
	// Interval is the sampling period. Zero means 250ms.
	Interval time.Duration
	// HoldTicks is how many consecutive samples must agree before a
	// transition fires (debounce). Zero means 2.
	HoldTicks int
	// Source supplies the load score each tick. Nil means ORB.LoadScore.
	// Tests inject synthetic signal sources here.
	Source func() float64
}

func (c DegradeConfig) withDefaults(o *ORB) DegradeConfig {
	if c.High <= 0 {
		c.High = 0.85
	}
	if c.Low <= 0 {
		c.Low = 0.5
	}
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.HoldTicks <= 0 {
		c.HoldTicks = 2
	}
	if c.Source == nil {
		c.Source = o.LoadScore
	}
	return c
}

// StartDegradeController runs the adaptive-degradation control loop:
// every Interval it samples the load score and, after HoldTicks
// agreeing samples, moves the ORB one mode at a time along
// normal ↔ degraded ↔ critical-only. The returned stop func halts the
// loop (leaving the current mode in place; callers wanting a clean exit
// call SetDegradeMode(ModeNormal) after stopping).
func (o *ORB) StartDegradeController(cfg DegradeConfig) (stop func()) {
	cfg = cfg.withDefaults(o)
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(cfg.Interval)
		defer ticker.Stop()
		var hotTicks, coolTicks int
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
			}
			score := cfg.Source()
			mode := o.DegradeMode()
			switch {
			case score >= cfg.High:
				hotTicks++
				coolTicks = 0
				if hotTicks >= cfg.HoldTicks && mode < ModeCriticalOnly {
					o.SetDegradeMode(mode + 1)
					hotTicks = 0
				}
			case score <= cfg.Low:
				coolTicks++
				hotTicks = 0
				if coolTicks >= cfg.HoldTicks && mode > ModeNormal {
					o.SetDegradeMode(mode - 1)
					coolTicks = 0
				}
			default:
				// Between the thresholds: hold the current mode (hysteresis).
				hotTicks, coolTicks = 0, 0
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// QoSHealthProbe is the degradation-aware component probe for
// obs.Health: healthy in normal mode, failing with the mode name while
// degraded — so /healthz surfaces every transition the anomaly log
// records.
func (o *ORB) QoSHealthProbe() error {
	if mode := o.DegradeMode(); mode != ModeNormal {
		return fmt.Errorf("degraded: mode %s", mode)
	}
	return nil
}
