package orb

import (
	"encoding/hex"
	"errors"
	"fmt"
	"strings"

	"repro/internal/cdr"
)

// ObjectRef is an interoperable object reference (IOR analogue). It names a
// servant by transport address plus object key and records the interface's
// repository id. The zero value is the nil object reference.
type ObjectRef struct {
	// TypeID is the repository id of the most derived interface,
	// e.g. "IDL:repro/NamingContext:1.0".
	TypeID string
	// Addr is the TCP endpoint ("host:port") of the object adapter.
	Addr string
	// Key identifies the servant within its adapter.
	Key string
}

// IsNil reports whether r is the nil object reference.
func (r ObjectRef) IsNil() bool { return r.Addr == "" && r.Key == "" }

func (r ObjectRef) String() string {
	if r.IsNil() {
		return "ObjectRef(nil)"
	}
	return fmt.Sprintf("ObjectRef(%s @%s key=%q)", r.TypeID, r.Addr, r.Key)
}

// MarshalCDR encodes the reference (used when references travel inside
// request/reply bodies, e.g. naming-service resolve results).
func (r ObjectRef) MarshalCDR(e *cdr.Encoder) {
	e.PutString(r.TypeID)
	e.PutString(r.Addr)
	e.PutString(r.Key)
}

// UnmarshalCDR decodes a reference.
func (r *ObjectRef) UnmarshalCDR(d *cdr.Decoder) error {
	r.TypeID = d.GetString()
	r.Addr = d.GetString()
	r.Key = d.GetString()
	return d.Err()
}

// siorPrefix marks stringified references (analogue of "IOR:").
const siorPrefix = "SIOR:"

// ErrBadRef is reported when a stringified reference cannot be parsed.
var ErrBadRef = errors.New("orb: malformed stringified object reference")

// ToString renders the reference in the stringified-IOR style: the prefix
// "SIOR:" followed by the hex encoding of a CDR encapsulation. The format
// survives copy/paste through configuration files and command lines.
func (r ObjectRef) ToString() string {
	blob := cdr.Encapsulate(func(e *cdr.Encoder) { r.MarshalCDR(e) })
	return siorPrefix + hex.EncodeToString(blob)
}

// RefFromString parses a reference produced by ToString.
func RefFromString(s string) (ObjectRef, error) {
	var r ObjectRef
	if !strings.HasPrefix(s, siorPrefix) {
		return r, fmt.Errorf("%w: missing %q prefix", ErrBadRef, siorPrefix)
	}
	blob, err := hex.DecodeString(s[len(siorPrefix):])
	if err != nil {
		return r, fmt.Errorf("%w: %v", ErrBadRef, err)
	}
	d, err := cdr.OpenEncapsulation(blob)
	if err != nil {
		return r, fmt.Errorf("%w: %v", ErrBadRef, err)
	}
	if err := r.UnmarshalCDR(d); err != nil {
		return r, fmt.Errorf("%w: %v", ErrBadRef, err)
	}
	return r, nil
}
