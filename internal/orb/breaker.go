package orb

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// BreakerState is the circuit breaker's current disposition.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed lets all calls through (the healthy steady state).
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects calls until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe call through; its outcome
	// decides whether the breaker closes again or re-opens.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerOptions tune a Breaker.
type BreakerOptions struct {
	// Threshold is how many consecutive failures open the breaker
	// (default 1: a naming replica that refused one call is probably down,
	// and probing it again costs a full connect timeout).
	Threshold int
	// Cooldown is how long the breaker stays open before allowing a
	// half-open probe (default 1s).
	Cooldown time.Duration
	// Name identifies the guarded endpoint in anomaly reports. Empty
	// breakers still signal, just anonymously.
	Name string
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// Breaker is a per-endpoint circuit breaker: closed → (Threshold
// consecutive failures) → open → (Cooldown) → half-open, where a single
// probe call decides between closed and open again. Callers ask Allow
// before attempting and must report the attempt's outcome via Success or
// Failure. All methods are safe for concurrent use.
type Breaker struct {
	mu       sync.Mutex
	opts     BreakerOptions
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
}

// NewBreaker creates a closed breaker.
func NewBreaker(opts BreakerOptions) *Breaker {
	if opts.Threshold <= 0 {
		opts.Threshold = 1
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = time.Second
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	return &Breaker{opts: opts}
}

// Allow reports whether a call may be attempted now. In the open state it
// transitions to half-open once the cooldown has elapsed and admits that
// single probe; further calls are rejected until the probe reports back.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.opts.Clock().Sub(b.openedAt) < b.opts.Cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		// Only one in-flight probe at a time; if the probe's outcome was
		// already reported the breaker has left this state.
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Success records a successful call: the breaker closes and the failure
// count resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
}

// Failure records a failed call. In the closed state it counts toward the
// threshold; in half-open it re-opens immediately (the probe failed).
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.opts.Threshold {
			b.trip()
		}
	case BreakerHalfOpen, BreakerOpen:
		// A failure while open can happen when several calls were admitted
		// before the first failure was reported; either way the endpoint is
		// still down — restart the cooldown.
		b.trip()
	}
}

// trip opens the breaker (caller holds the lock). The closed/half-open →
// open transition raises the breaker anomaly; re-trips while already open
// stay quiet so one flapping endpoint cannot spam the diagnostics plane.
func (b *Breaker) trip() {
	if b.state != BreakerOpen {
		obs.SignalTrip(obs.AnomalyBreakerOpen, b.opts.Name)
	}
	b.state = BreakerOpen
	b.failures = 0
	b.probing = false
	b.openedAt = b.opts.Clock()
}

// State returns the breaker's current state (open flips to half-open only
// on the Allow that admits the probe).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
