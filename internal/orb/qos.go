package orb

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Priority is a request's admission class. The zero value is ClassNormal
// so a zero CallOptions means default traffic; importance order is the
// dispatchOrder table, not the numeric value. The class travels from
// client to server in the SCQoS service context; servers use it to order
// dispatch and to decide who is shed first under overload, so a
// saturated adapter degrades batch work long before it touches critical
// traffic.
type Priority uint8

// Priority classes. Numeric values are wire format and array indices
// only — see dispatchOrder for importance.
const (
	// ClassNormal is the default: the class of a zero CallOptions and of
	// requests carrying no SCQoS context — i.e. every pre-QoS client.
	ClassNormal Priority = iota
	// ClassCritical is never shed by admission control (only by its own
	// deadline) and is dispatched ahead of everything else at saturation.
	ClassCritical
	// ClassBatch is background work: first to queue-cap, first to shed,
	// dispatched only on spare capacity at saturation.
	ClassBatch
	// NumClasses is the number of priority classes.
	NumClasses = 3
)

// dispatchOrder lists the classes most- to least-important; queue scans
// (strict priority, WRR credit spending) walk it instead of assuming the
// numeric order means anything.
var dispatchOrder = [NumClasses]Priority{ClassCritical, ClassNormal, ClassBatch}

// String returns the class's wire-stable name ("critical", "normal",
// "batch"). The returned strings are constants, so labelling hot paths
// with them never allocates.
func (p Priority) String() string {
	switch p {
	case ClassCritical:
		return "critical"
	case ClassBatch:
		return "batch"
	default:
		return "normal"
	}
}

// ParsePriority maps a class name to its Priority.
func ParsePriority(s string) (Priority, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "critical":
		return ClassCritical, nil
	case "normal", "":
		return ClassNormal, nil
	case "batch":
		return ClassBatch, nil
	}
	return ClassNormal, fmt.Errorf("orb: unknown priority class %q", s)
}

// classFromWire clamps a wire byte to a valid Priority (unknown future
// classes degrade to batch rather than gaining priority).
func classFromWire(b uint8) Priority {
	if b >= NumClasses {
		return ClassBatch
	}
	return Priority(b)
}

// Shed reasons, the "reason" label of orb_admission_shed_total.
const (
	// ShedQueueFull: the class's queue share was exhausted.
	ShedQueueFull = "queue_full"
	// ShedTenantThrottle: the tenant's token bucket was empty.
	ShedTenantThrottle = "tenant_throttle"
	// ShedDegradedMode: the degradation controller has closed admission
	// for this class (batch in degraded mode, batch+normal in
	// critical-only mode).
	ShedDegradedMode = "degraded_mode"
	// NumShedReasons is the number of admission shed reasons.
	NumShedReasons = 3
)

// shedReasonIndex maps a reason to its counter slot.
func shedReasonIndex(reason string) int {
	switch reason {
	case ShedTenantThrottle:
		return 1
	case ShedDegradedMode:
		return 2
	default:
		return 0
	}
}

var shedReasonNames = [NumShedReasons]string{ShedQueueFull, ShedTenantThrottle, ShedDegradedMode}

// shedCounters is the fixed class×reason admission-shed counter matrix
// behind orb_admission_shed_total{class,reason}: always counting (tests
// and Stats read it without a registry), exported at scrape time.
type shedCounters [NumClasses][NumShedReasons]atomic.Uint64

func (s *shedCounters) add(class Priority, reason string) {
	s[class][shedReasonIndex(reason)].Add(1)
}

func (s *shedCounters) get(class Priority, reason string) uint64 {
	return s[class][shedReasonIndex(reason)].Load()
}

func (s *shedCounters) total() uint64 {
	var n uint64
	for c := range s {
		for r := range s[c] {
			n += s[c][r].Load()
		}
	}
	return n
}

// QoSOptions shape the server adapter's admission control.
type QoSOptions struct {
	// Weights are the per-class dequeue weights (critical, normal, batch)
	// of the weighted-round-robin scheduler that replaced the FIFO
	// dispatch queue. While the queue is comfortable, classes share
	// workers proportionally (so batch is not starved by a busy normal
	// stream); once the queue saturates, dequeue turns strictly
	// priority-ordered — batch is never dispatched while critical work is
	// queued. Zero values mean {16, 4, 1}.
	Weights [NumClasses]int
	// BatchShare divides the dispatch queue's capacity to get the batch
	// class's queue cap: batch requests beyond capacity/BatchShare are
	// fast-rejected with a retry-after hint instead of crowding out
	// higher classes. Zero means 4 (batch may hold at most a quarter of
	// the queue); 1 gives batch the full queue.
	BatchShare int
	// TenantRate is the per-tenant sustained admission rate in requests
	// per second, enforced by a token bucket per tenant id. Zero disables
	// tenant throttling. Requests carrying no tenant id share the
	// anonymous bucket.
	TenantRate float64
	// TenantBurst is the token-bucket depth (instantaneous burst above
	// the sustained rate). Zero means max(1, TenantRate).
	TenantBurst float64
	// RetryAfter is the backoff hint attached to queue-full and
	// degraded-mode rejections (tenant-throttle rejections compute the
	// exact time until a token accrues). Zero means 50ms.
	RetryAfter time.Duration
}

func (q QoSOptions) withDefaults() QoSOptions {
	if q.Weights == ([NumClasses]int{}) {
		q.Weights = DefaultClassWeights
	}
	for c := range q.Weights {
		if q.Weights[c] <= 0 {
			q.Weights[c] = 1
		}
	}
	if q.BatchShare <= 0 {
		q.BatchShare = 4
	}
	if q.TenantBurst <= 0 {
		q.TenantBurst = q.TenantRate
		if q.TenantBurst < 1 {
			q.TenantBurst = 1
		}
	}
	if q.RetryAfter <= 0 {
		q.RetryAfter = 50 * time.Millisecond
	}
	return q
}

// DefaultClassWeights are the dequeue weights applied when none are
// configured: critical 16, normal 4, batch 1.
var DefaultClassWeights = [NumClasses]int{ClassCritical: 16, ClassNormal: 4, ClassBatch: 1}

// ParseClassWeights parses a "critical:16,normal:4,batch:1" spec (the
// daemons' -qos-classes flag). Omitted classes keep their default weight.
func ParseClassWeights(spec string) ([NumClasses]int, error) {
	w := DefaultClassWeights
	if strings.TrimSpace(spec) == "" {
		return w, nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(part, ":")
		if !ok {
			return w, fmt.Errorf("orb: bad class weight %q (want class:weight)", part)
		}
		p, err := ParsePriority(name)
		if err != nil {
			return w, err
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n <= 0 {
			return w, fmt.Errorf("orb: bad weight in %q", part)
		}
		w[p] = n
	}
	return w, nil
}

// tenantBucket is one tenant's token bucket. Tokens refill continuously
// at the configured rate and cap at burst.
type tenantBucket struct {
	tokens float64
	last   time.Time
}

// maxTenantBuckets bounds the bucket table. A peer inventing unbounded
// tenant ids degrades to a table reset (everyone refills), never to
// unbounded memory.
const maxTenantBuckets = 4096

// tenantBuckets enforces per-tenant admission rates. All methods are
// safe for concurrent use; the common admit path is one mutex, a map
// probe and a little float arithmetic.
type tenantBuckets struct {
	rate  float64 // tokens per second
	burst float64

	mu sync.Mutex
	m  map[string]*tenantBucket
}

func newTenantBuckets(rate, burst float64) *tenantBuckets {
	return &tenantBuckets{rate: rate, burst: burst, m: make(map[string]*tenantBucket)}
}

// admit spends one token from tenant's bucket. When the bucket is empty
// it reports the time until the next token accrues — the retry-after
// hint sent back to the caller.
func (tb *tenantBuckets) admit(tenant string, now time.Time) (ok bool, retryAfter time.Duration) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	b := tb.m[tenant]
	if b == nil {
		if len(tb.m) >= maxTenantBuckets {
			tb.m = make(map[string]*tenantBucket)
		}
		b = &tenantBucket{tokens: tb.burst, last: now}
		tb.m[tenant] = b
	} else {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens += elapsed * tb.rate
			if b.tokens > tb.burst {
				b.tokens = tb.burst
			}
			b.last = now
		}
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	missing := 1 - b.tokens
	return false, time.Duration(missing / tb.rate * float64(time.Second))
}

// size returns the number of tracked tenants.
func (tb *tenantBuckets) size() int {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return len(tb.m)
}
