package orb

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/giop"
)

// dispatchTask is one admitted request on its way through the shared
// worker pool. Tasks are pooled; the embedded ServerContext is the
// per-dispatch scratch that lets the servant-facing context live without
// a steady-state allocation.
type dispatchTask struct {
	a       *Adapter
	sc      *serverConn
	req     *giop.Message
	rctx    context.Context
	rcancel context.CancelFunc
	// admitted is the request's admission instant (the FrameReader's
	// batch stamp); dequeue minus admitted is the queue-wait signal.
	admitted time.Time
	sctx     ServerContext
}

var taskPool = sync.Pool{New: func() any { return new(dispatchTask) }}

func acquireTask() *dispatchTask { return taskPool.Get().(*dispatchTask) }

func releaseTask(t *dispatchTask) {
	rc := t.sctx.replyContexts[:0]
	*t = dispatchTask{}
	t.sctx.replyContexts = rc
	taskPool.Put(t)
}

// workerPool is the ORB-wide bounded dispatch executor: a fixed set of
// workers draining one queue shared by every adapter connection. It
// replaces the old per-adapter semaphore — concurrency is a property of
// the process (how many dispatches the hardware should run), not of any
// single adapter.
type workerPool struct {
	queue chan *dispatchTask
	wg    sync.WaitGroup
	size  int
	// busy counts workers currently executing a dispatch — with size,
	// the worker-pool occupancy gauge the admission controller needs.
	busy atomic.Int64
}

// poolSize resolves the worker count: WorkerPool wins, then the legacy
// MaxServerWorkers cap, then a GOMAXPROCS-derived default with a floor
// that keeps blocking servants from serializing small machines.
func poolSize(opts *Options) int {
	if opts.WorkerPool > 0 {
		return opts.WorkerPool
	}
	if opts.MaxServerWorkers > 0 {
		return opts.MaxServerWorkers
	}
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return n
}

func newWorkerPool(workers int) *workerPool {
	depth := 16 * workers
	if depth < 256 {
		depth = 256
	}
	p := &workerPool{queue: make(chan *dispatchTask, depth), size: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.run()
	}
	return p
}

func (p *workerPool) run() {
	defer p.wg.Done()
	for t := range p.queue {
		p.busy.Add(1)
		t.a.serveRequest(t)
		p.busy.Add(-1)
	}
}

// stop drains the pool: adapters have already waited for their tasks, so
// closing the queue lets every worker exit.
func (p *workerPool) stop() {
	close(p.queue)
	p.wg.Wait()
}

// depth reports how many admitted requests are waiting for a worker.
func (p *workerPool) depth() int { return len(p.queue) }

// ensurePool lazily starts the dispatch pool (client-only ORBs never pay
// for it).
func (o *ORB) ensurePool() (*workerPool, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.shutdown {
		return nil, CommFailure("orb is shut down")
	}
	if o.pool == nil {
		o.pool = newWorkerPool(poolSize(&o.opts))
	}
	return o.pool, nil
}
