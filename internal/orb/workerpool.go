package orb

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/giop"
	"repro/internal/obs"
)

// dispatchTask is one admitted request on its way through the shared
// worker pool. Tasks are pooled; the embedded ServerContext is the
// per-dispatch scratch that lets the servant-facing context live without
// a steady-state allocation.
type dispatchTask struct {
	a       *Adapter
	sc      *serverConn
	req     *giop.Message
	rctx    context.Context
	rcancel context.CancelFunc
	// admitted is the request's admission instant (the FrameReader's
	// batch stamp); dequeue minus admitted is the queue-wait signal.
	admitted time.Time
	// class and tenant are the request's QoS coordinates, decoded once
	// from the SCQoS service context at admission.
	class  Priority
	tenant string
	sctx   ServerContext
}

var taskPool = sync.Pool{New: func() any { return new(dispatchTask) }}

func acquireTask() *dispatchTask { return taskPool.Get().(*dispatchTask) }

func releaseTask(t *dispatchTask) {
	rc := t.sctx.replyContexts[:0]
	*t = dispatchTask{}
	t.sctx.replyContexts = rc
	taskPool.Put(t)
}

// classQueue is one class's FIFO of admitted tasks: a fixed circular
// buffer sized to the class's queue cap.
type classQueue struct {
	buf  []*dispatchTask
	head int
	n    int
}

func (q *classQueue) push(t *dispatchTask) {
	q.buf[(q.head+q.n)%len(q.buf)] = t
	q.n++
}

func (q *classQueue) pop() *dispatchTask {
	t := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return t
}

// admitResult is the outcome of offering a task to the pool.
type admitResult int

const (
	// admitQueued: the task is owned by the pool and will reach a worker.
	admitQueued admitResult = iota
	// admitRejected: fast-reject — the class's queue share is exhausted.
	// The caller sends the shed reply with a retry-after hint.
	admitRejected
	// admitCtxDead: the task's context died while it waited for space;
	// the caller runs the task inline so it takes the shed path.
	admitCtxDead
	// admitClosed: the pool is stopping; the caller runs the task inline
	// (the closed adapter answers OBJECT_NOT_EXIST).
	admitClosed
)

// workerPool is the ORB-wide bounded dispatch executor: a fixed set of
// workers draining per-class weighted queues shared by every adapter
// connection. It replaces the old single FIFO channel — dispatch order
// is now a QoS policy, not arrival order: weighted round-robin across
// priority classes while the queue is comfortable (batch is not starved),
// strict priority once it saturates (batch never runs while critical is
// queued), per-class queue caps so batch overload fast-rejects instead of
// crowding out interactive work.
type workerPool struct {
	size int
	wg   sync.WaitGroup
	// busy counts workers currently executing a dispatch — with size,
	// the worker-pool occupancy gauge the degradation controller needs.
	busy atomic.Int64

	qos QoSOptions

	mu       sync.Mutex
	notEmpty *sync.Cond // workers wait: something to dequeue
	notFull  *sync.Cond // blocking enqueuers wait: a slot freed (or ctx died)
	queues   [NumClasses]classQueue
	credit   [NumClasses]int
	capacity int
	caps     [NumClasses]int
	queued   int
	closed   bool
}

// poolSize resolves the worker count: WorkerPool wins, then the legacy
// MaxServerWorkers cap, then a GOMAXPROCS-derived default with a floor
// that keeps blocking servants from serializing small machines.
func poolSize(opts *Options) int {
	if opts.WorkerPool > 0 {
		return opts.WorkerPool
	}
	if opts.MaxServerWorkers > 0 {
		return opts.MaxServerWorkers
	}
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return n
}

// poolDepth resolves the total queue capacity: the explicit
// DispatchQueueDepth knob, else 16 slots per worker with a 256 floor.
func poolDepth(opts *Options, workers int) int {
	if opts.DispatchQueueDepth > 0 {
		return opts.DispatchQueueDepth
	}
	depth := 16 * workers
	if depth < 256 {
		depth = 256
	}
	return depth
}

func newWorkerPool(workers, depth int, qos QoSOptions) *workerPool {
	qos = qos.withDefaults()
	p := &workerPool{size: workers, capacity: depth, qos: qos}
	p.notEmpty = sync.NewCond(&p.mu)
	p.notFull = sync.NewCond(&p.mu)
	for c := 0; c < NumClasses; c++ {
		cap := depth
		if Priority(c) == ClassBatch {
			cap = depth / qos.BatchShare
			if cap < 1 {
				cap = 1
			}
		}
		p.caps[c] = cap
		p.queues[c].buf = make([]*dispatchTask, cap)
		p.credit[c] = qos.Weights[c]
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.run()
	}
	return p
}

// enqueue offers t (class already stamped) to its class queue. Batch
// tasks past their cap — and any task past total capacity when the class
// is batch — are rejected immediately; critical and normal tasks block
// for a slot like the pre-QoS FIFO did, escaping when their context dies
// or the pool closes.
func (p *workerPool) enqueue(t *dispatchTask) admitResult {
	c := t.class
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return admitClosed
	}
	if p.queues[c].n >= p.caps[c] || p.queued >= p.capacity {
		if c == ClassBatch {
			p.mu.Unlock()
			return admitRejected
		}
		// The queue is full right now — the saturation signal the anomaly
		// sink watches for — but critical/normal requests wait their turn
		// rather than shed (pre-QoS admission semantics preserved).
		obs.Signal(obs.AnomalyQueueSaturated)
		// A context death cannot wake a cond wait on its own; hook the
		// broadcast up for the duration of the wait. This allocates, but
		// only on the saturated blocking path.
		stop := context.AfterFunc(t.rctx, p.notFull.Broadcast)
		for !p.closed && t.rctx.Err() == nil &&
			(p.queues[c].n >= p.caps[c] || p.queued >= p.capacity) {
			p.notFull.Wait()
		}
		stop()
		switch {
		case p.closed:
			p.mu.Unlock()
			return admitClosed
		case t.rctx.Err() != nil:
			p.mu.Unlock()
			return admitCtxDead
		}
	}
	p.queues[c].push(t)
	p.queued++
	p.notEmpty.Signal()
	p.mu.Unlock()
	return admitQueued
}

// saturated reports whether dequeue is in strict-priority territory:
// three quarters of the queue occupied.
func (p *workerPool) saturatedLocked() bool { return p.queued*4 >= p.capacity*3 }

// pickLocked chooses the next task per the QoS dequeue policy, or nil
// when every queue is empty.
func (p *workerPool) pickLocked() *dispatchTask {
	if p.queued == 0 {
		return nil
	}
	if p.saturatedLocked() {
		// Strict priority at saturation: batch is never dispatched while
		// a higher class has queued work.
		for _, c := range dispatchOrder {
			if p.queues[c].n > 0 {
				return p.popLocked(int(c))
			}
		}
		return nil
	}
	// Weighted round-robin with credits: classes spend their weight in
	// priority order; when every non-empty class is out of credit, all
	// credits replenish. Lower classes therefore get a bounded share even
	// under sustained higher-class traffic — until saturation flips the
	// policy above.
	for tries := 0; tries < 2; tries++ {
		for _, c := range dispatchOrder {
			if p.queues[c].n > 0 && p.credit[c] > 0 {
				p.credit[c]--
				return p.popLocked(int(c))
			}
		}
		for c := 0; c < NumClasses; c++ {
			p.credit[c] = p.qos.Weights[c]
		}
	}
	return nil
}

func (p *workerPool) popLocked(c int) *dispatchTask {
	t := p.queues[c].pop()
	p.queued--
	p.notFull.Broadcast()
	return t
}

// next blocks until a task is available or the pool is closed and
// drained (nil).
func (p *workerPool) next() *dispatchTask {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if t := p.pickLocked(); t != nil {
			return t
		}
		if p.closed {
			return nil
		}
		p.notEmpty.Wait()
	}
}

func (p *workerPool) run() {
	defer p.wg.Done()
	for {
		t := p.next()
		if t == nil {
			return
		}
		p.busy.Add(1)
		t.a.serveRequest(t)
		p.busy.Add(-1)
	}
}

// stop drains the pool: adapters have already waited for their tasks, so
// marking it closed lets every worker finish the backlog and exit.
func (p *workerPool) stop() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.notEmpty.Broadcast()
	p.notFull.Broadcast()
	p.wg.Wait()
}

// depth reports how many admitted requests are waiting for a worker.
func (p *workerPool) depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued
}

// classDepth reports one class's queued requests.
func (p *workerPool) classDepth(c Priority) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queues[c].n
}

// ensurePool lazily starts the dispatch pool (client-only ORBs never pay
// for it).
func (o *ORB) ensurePool() (*workerPool, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.shutdown {
		return nil, CommFailure("orb is shut down")
	}
	if o.pool == nil {
		workers := poolSize(&o.opts)
		o.pool = newWorkerPool(workers, poolDepth(&o.opts, workers), o.opts.QoS)
	}
	return o.pool, nil
}
