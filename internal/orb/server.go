package orb

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/cdr"
	"repro/internal/giop"
)

// Servant is the server-side implementation contract (the skeleton
// dispatch analogue). Invoke decodes op's arguments from in and writes
// results to out. Returning a *UserException sends a USER_EXCEPTION reply;
// any other non-nil error sends a SYSTEM_EXCEPTION reply.
type Servant interface {
	// TypeID returns the repository id of the servant's interface.
	TypeID() string
	// Invoke dispatches one operation.
	Invoke(ctx *ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error
}

// ServerContext carries per-request server-side information to servants
// and gives them access to the request's service contexts.
type ServerContext struct {
	// ORB is the hosting broker.
	ORB *ORB
	// Adapter is the dispatching object adapter.
	Adapter *Adapter
	// Peer is the remote address of the calling connection.
	Peer string
	// Request is the raw request message (service contexts readable).
	Request *giop.Message
	// ctx is the request's cancellation context (see Context).
	ctx context.Context
	// replyContexts accumulates service contexts for the reply.
	replyContexts []giop.ServiceContext
}

// Context returns the request's context. It is cancelled when the client
// sends a MsgCancelRequest for this call, when the calling connection
// dies, when the adapter shuts down, or when the deadline propagated in
// the SCDeadline service context expires. Long-running servants should
// check ctx.Done() in their iteration loops and abort early.
func (c *ServerContext) Context() context.Context {
	if c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// AddReplyContext attaches a service context to the outgoing reply.
func (c *ServerContext) AddReplyContext(id uint32, data []byte) {
	c.replyContexts = append(c.replyContexts, giop.ServiceContext{ID: id, Data: data})
}

// Adapter is an object adapter (POA analogue): a TCP listener plus a table
// of active servants keyed by object key.
type Adapter struct {
	orb *ORB
	ln  net.Listener

	mu       sync.RWMutex
	servants map[string]Servant
	closed   bool

	connMu sync.Mutex
	conns  map[*serverConn]struct{}

	wg  sync.WaitGroup
	sem chan struct{}
}

// serverConn is one inbound connection with its serialized writer and the
// cancellation state of its in-flight requests.
type serverConn struct {
	conn    net.Conn
	writeMu sync.Mutex
	bw      *bufio.Writer

	// mu guards inflight: request id -> cancel func for every request
	// currently queued or dispatching on this connection. MsgCancelRequest
	// and connection death cancel through it.
	mu       sync.Mutex
	inflight map[uint32]context.CancelFunc
}

// addInflight registers the cancel func for a request id.
func (c *serverConn) addInflight(id uint32, cancel context.CancelFunc) {
	c.mu.Lock()
	c.inflight[id] = cancel
	c.mu.Unlock()
}

// removeInflight drops a finished request.
func (c *serverConn) removeInflight(id uint32) {
	c.mu.Lock()
	delete(c.inflight, id)
	c.mu.Unlock()
}

// cancelInflight cancels the request with the given id, reporting whether
// it was in flight.
func (c *serverConn) cancelInflight(id uint32) bool {
	c.mu.Lock()
	cancel, ok := c.inflight[id]
	c.mu.Unlock()
	if ok {
		cancel()
	}
	return ok
}

// write sends one message under the connection's write lock.
func (c *serverConn) write(m *giop.Message) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if err := giop.Write(c.bw, m); err == nil {
		c.bw.Flush()
	}
}

// shutdown sends a CloseConnection notice (best effort, bounded by a
// write deadline) and closes the socket.
func (c *serverConn) shutdown() {
	c.conn.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
	c.write(&giop.Message{Type: giop.MsgCloseConnection})
	c.conn.Close()
}

// NewAdapter creates an object adapter listening on addr (use
// "127.0.0.1:0" for an ephemeral port).
func (o *ORB) NewAdapter(addr string) (*Adapter, error) {
	ln, err := o.opts.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("orb: adapter listen %s: %w", addr, err)
	}
	a := &Adapter{
		orb:      o,
		ln:       ln,
		servants: make(map[string]Servant),
		conns:    make(map[*serverConn]struct{}),
		sem:      make(chan struct{}, o.opts.MaxServerWorkers),
	}
	o.mu.Lock()
	o.adapters = append(o.adapters, a)
	o.mu.Unlock()
	a.wg.Add(1)
	go a.acceptLoop()
	return a, nil
}

// Addr returns the adapter's bound listen address ("host:port").
func (a *Adapter) Addr() string { return a.ln.Addr().String() }

// Activate registers servant under key and returns its object reference
// (POA activate_object_with_id analogue). Activating an existing key
// replaces the previous servant.
func (a *Adapter) Activate(key string, s Servant) ObjectRef {
	a.mu.Lock()
	a.servants[key] = s
	a.mu.Unlock()
	return ObjectRef{TypeID: s.TypeID(), Addr: a.Addr(), Key: key}
}

// Deactivate removes the servant under key. Subsequent requests for it
// raise OBJECT_NOT_EXIST.
func (a *Adapter) Deactivate(key string) {
	a.mu.Lock()
	delete(a.servants, key)
	a.mu.Unlock()
}

// Resolve returns the servant registered under key, if any.
func (a *Adapter) Resolve(key string) (Servant, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	s, ok := a.servants[key]
	return s, ok
}

// ServantCount returns the number of active servants.
func (a *Adapter) ServantCount() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.servants)
}

// Close stops the listener, notifies connected clients with a GIOP
// CloseConnection message, closes all server-side connections and waits
// for in-flight dispatches. Clients observe COMM_FAILURE on their next
// call.
func (a *Adapter) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	a.mu.Unlock()
	a.ln.Close()
	a.connMu.Lock()
	conns := make([]*serverConn, 0, len(a.conns))
	for c := range a.conns {
		conns = append(conns, c)
	}
	a.connMu.Unlock()
	for _, c := range conns {
		c.shutdown()
	}
	a.orb.removeAdapter(a)
	a.wg.Wait()
}

// trackConn registers a live server connection; it returns false when the
// adapter is already closed (the connection is closed immediately).
func (a *Adapter) trackConn(c *serverConn) bool {
	a.connMu.Lock()
	defer a.connMu.Unlock()
	if a.isClosed() {
		c.conn.Close()
		return false
	}
	a.conns[c] = struct{}{}
	return true
}

// untrackConn removes a finished connection.
func (a *Adapter) untrackConn(c *serverConn) {
	a.connMu.Lock()
	delete(a.conns, c)
	a.connMu.Unlock()
}

func (a *Adapter) isClosed() bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.closed
}

func (a *Adapter) acceptLoop() {
	defer a.wg.Done()
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			return // listener closed
		}
		a.orb.counters.connectionsAccepted.Add(1)
		a.wg.Add(1)
		go a.serveConn(conn)
	}
}

// requestContext derives the per-request context from the connection
// context: if the request carries an SCDeadline service context, the
// remaining duration is rebased onto the server's clock (the wire format
// carries remaining time, not an absolute instant, so it tolerates clock
// skew between peers).
func requestContext(parent context.Context, m *giop.Message) (context.Context, context.CancelFunc) {
	if remaining, ok := giop.DecodeDeadline(m.Context(giop.SCDeadline)); ok {
		return context.WithTimeout(parent, remaining)
	}
	return context.WithCancel(parent)
}

// shedReply builds the TIMEOUT reply for a request rejected by
// deadline-aware admission.
func shedReply(req *giop.Message) *giop.Message {
	reply := &giop.Message{Type: giop.MsgReply, RequestID: req.RequestID}
	setReplyError(reply, &SystemException{
		Kind:   ExTimeout,
		Detail: fmt.Sprintf("%s.%s: deadline expired before dispatch", req.ObjectKey, req.Operation),
	})
	return reply
}

// serveConn reads requests off one connection and dispatches each in its
// own goroutine, bounded by the adapter's worker semaphore. Replies are
// serialized through a write mutex. Every request gets a context derived
// from the connection's: MsgCancelRequest cancels one request, connection
// death cancels them all, and requests whose propagated deadline has
// already expired are shed without reaching a servant.
func (a *Adapter) serveConn(conn net.Conn) {
	defer a.wg.Done()
	sc := &serverConn{conn: conn, bw: bufio.NewWriter(conn), inflight: make(map[uint32]context.CancelFunc)}
	if !a.trackConn(sc) {
		return
	}
	defer a.untrackConn(sc)
	defer conn.Close()

	// connCtx parents every request context on this connection; cancelling
	// it (connection death, adapter close) aborts all in-flight dispatches.
	connCtx, connCancel := context.WithCancel(context.Background())
	defer connCancel()

	br := bufio.NewReader(conn)
	peer := conn.RemoteAddr().String()
	var connWG sync.WaitGroup
	defer connWG.Wait()

	write := sc.write

	for {
		m, err := giop.Read(br)
		if err != nil {
			return
		}
		switch m.Type {
		case giop.MsgRequest:
			rctx, rcancel := requestContext(connCtx, m)
			if rctx.Err() != nil {
				// Deadline-aware admission: the propagated deadline expired
				// before dispatch, so the servant is never invoked.
				a.orb.counters.requestsShed.Add(1)
				if m.ResponseExpected {
					write(shedReply(m))
				}
				rcancel()
				continue
			}
			sc.addInflight(m.RequestID, rcancel)
			connWG.Add(1)
			go func(req *giop.Message, rctx context.Context, rcancel context.CancelFunc) {
				defer connWG.Done()
				defer sc.removeInflight(req.RequestID)
				defer rcancel()
				// Acquire a worker slot, but stay cancellable while queued
				// so a cancel or expiry does not waste a dispatch.
				select {
				case a.sem <- struct{}{}:
				case <-rctx.Done():
					if rctx.Err() == context.DeadlineExceeded {
						a.orb.counters.requestsShed.Add(1)
					}
					if req.ResponseExpected {
						write(shedReply(req))
					}
					return
				}
				defer func() { <-a.sem }()
				if rctx.Err() != nil {
					// Expired or cancelled between queueing and acquiring
					// the slot; shed before touching the servant.
					if rctx.Err() == context.DeadlineExceeded {
						a.orb.counters.requestsShed.Add(1)
					}
					if req.ResponseExpected {
						write(shedReply(req))
					}
					return
				}
				a.orb.counters.inFlight.Add(1)
				reply, release := a.dispatch(rctx, peer, req)
				a.orb.counters.inFlight.Add(-1)
				if req.ResponseExpected {
					write(reply)
				}
				release()
			}(m, rctx, rcancel)
		case giop.MsgLocateRequest:
			status := giop.LocateUnknownObject
			if _, ok := a.Resolve(m.ObjectKey); ok {
				status = giop.LocateObjectHere
			}
			write(&giop.Message{Type: giop.MsgLocateReply, RequestID: m.RequestID, LocateStatus: status})
		case giop.MsgCancelRequest:
			if sc.cancelInflight(m.RequestID) {
				a.orb.counters.cancelsReceived.Add(1)
			}
		case giop.MsgCloseConnection:
			return
		default:
			write(&giop.Message{Type: giop.MsgError})
			return
		}
	}
}

// dispatch runs one request through interceptors and the target servant,
// translating panics and errors into exception replies. The reply body
// rides a pooled encoder: the returned release func must be called after
// the reply has been written (or discarded, for oneways).
func (a *Adapter) dispatch(rctx context.Context, peer string, req *giop.Message) (*giop.Message, func()) {
	a.orb.counters.requestsServed.Add(1)
	a.orb.interceptReceiveRequest(req)
	rctx = a.orb.callDispatchStart(rctx, req)

	reply := &giop.Message{Type: giop.MsgReply, RequestID: req.RequestID}
	ctx := &ServerContext{ORB: a.orb, Adapter: a, Peer: peer, Request: req, ctx: rctx}

	out := cdr.AcquireEncoder()
	in := cdr.AcquireDecoder(req.Body)
	sv, ok := a.Resolve(req.ObjectKey)
	if !ok || a.isClosed() {
		encodeReplyError(reply, ObjectNotExist(req.ObjectKey), out)
	} else if req.Operation == OpIsA {
		// Reserved operation handled by the adapter for every servant
		// (CORBA Object::_is_a analogue): type compatibility check.
		want := in.GetString()
		if err := in.Err(); err != nil {
			encodeReplyError(reply, &SystemException{Kind: ExMarshal, Detail: err.Error()}, out)
		} else {
			out.PutBool(want == sv.TypeID())
			reply.ReplyStatus = giop.ReplyNoException
			reply.Body = out.Bytes()
		}
	} else {
		err := safeInvoke(sv, ctx, req.Operation, in, out)
		if err != nil {
			encodeReplyError(reply, err, out)
		} else {
			reply.ReplyStatus = giop.ReplyNoException
			reply.Body = out.Bytes()
		}
	}
	in.Release()
	reply.Contexts = append(reply.Contexts, ctx.replyContexts...)
	a.orb.interceptSendReply(reply)
	a.orb.callDispatchEnd(rctx, req, reply)
	return reply, out.Release
}

// safeInvoke shields the dispatcher from servant panics, converting them
// to INTERNAL system exceptions (a crashed servant must not take down the
// adapter, only the one call).
func safeInvoke(sv Servant, ctx *ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &SystemException{Kind: ExInternal, Detail: fmt.Sprintf("servant panic in %s: %v", op, r)}
		}
	}()
	return sv.Invoke(ctx, op, in, out)
}

// setReplyError encodes err into reply as a user or system exception.
func setReplyError(reply *giop.Message, err error) {
	encodeReplyError(reply, err, cdr.NewEncoder(64))
}

// encodeReplyError encodes err into reply using e (reset first), so the
// dispatch hot path can reuse its pooled encoder for error bodies.
func encodeReplyError(reply *giop.Message, err error, e *cdr.Encoder) {
	e.Reset()
	switch x := err.(type) {
	case *UserException:
		reply.ReplyStatus = giop.ReplyUserException
		x.MarshalCDR(e)
	case *SystemException:
		reply.ReplyStatus = giop.ReplySystemException
		x.MarshalCDR(e)
	case *ForwardError:
		reply.ReplyStatus = giop.ReplyLocationForward
		x.Target.MarshalCDR(e)
	default:
		reply.ReplyStatus = giop.ReplySystemException
		se := &SystemException{Kind: ExUnknown, Detail: err.Error()}
		se.MarshalCDR(e)
	}
	reply.Body = e.Bytes()
}
