package orb

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cdr"
	"repro/internal/giop"
	"repro/internal/obs"
)

// Servant is the server-side implementation contract (the skeleton
// dispatch analogue). Invoke decodes op's arguments from in and writes
// results to out. Returning a *UserException sends a USER_EXCEPTION reply;
// any other non-nil error sends a SYSTEM_EXCEPTION reply.
type Servant interface {
	// TypeID returns the repository id of the servant's interface.
	TypeID() string
	// Invoke dispatches one operation.
	Invoke(ctx *ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error
}

// ServerContext carries per-request server-side information to servants
// and gives them access to the request's service contexts. It is scratch
// owned by the dispatch machinery: servants must not retain it (or the
// Request message it points at) past Invoke.
type ServerContext struct {
	// ORB is the hosting broker.
	ORB *ORB
	// Adapter is the dispatching object adapter.
	Adapter *Adapter
	// Peer is the remote address of the calling connection.
	Peer string
	// Priority is the request's QoS class, decoded from the SCQoS service
	// context at admission (ClassNormal when the caller sent none).
	Priority Priority
	// Tenant is the caller's tenant id from SCQoS (empty when absent).
	Tenant string
	// Request is the raw request message (service contexts readable).
	Request *giop.Message
	// ctx is the request's cancellation context (see Context).
	ctx context.Context
	// replyContexts accumulates service contexts for the reply.
	replyContexts []giop.ServiceContext
}

// Context returns the request's context. It is cancelled when the client
// sends a MsgCancelRequest for this call, when the calling connection
// dies, when the adapter shuts down, or when the deadline propagated in
// the SCDeadline service context expires. Long-running servants should
// check ctx.Done() in their iteration loops and abort early.
func (c *ServerContext) Context() context.Context {
	if c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// AddReplyContext attaches a service context to the outgoing reply.
func (c *ServerContext) AddReplyContext(id uint32, data []byte) {
	c.replyContexts = append(c.replyContexts, giop.ServiceContext{ID: id, Data: data})
}

// Adapter is an object adapter (POA analogue): a TCP listener plus a table
// of active servants keyed by object key. Dispatch concurrency comes from
// the ORB's shared worker pool, not from per-adapter goroutines.
type Adapter struct {
	orb  *ORB
	ln   net.Listener
	pool *workerPool

	mu       sync.RWMutex
	servants map[string]Servant
	closed   bool

	connMu sync.Mutex
	conns  map[*serverConn]struct{}

	wg     sync.WaitGroup // accept loop + connection read loops
	taskWG sync.WaitGroup // admitted requests not yet finished by a worker
}

// serverConn is one inbound connection: its coalescing writer and the
// cancellation state of its in-flight requests.
type serverConn struct {
	a    *Adapter
	conn net.Conn
	peer string

	writeMu        sync.Mutex
	bw             *bufio.Writer
	dead           bool        // a write or flush failed; drop further output
	flushScheduled bool        // a deferred coalesced flush will run
	flushTimer     *time.Timer // reusable timer driving deferred flushes

	// pendingReplies counts admitted response-expected requests whose
	// replies are still owed. The reply that takes it to zero always
	// flushes immediately — a batch costs one flush without adding
	// latency when the pipeline empties.
	pendingReplies atomic.Int64

	// mu guards inflight: request id -> cancel func for every cancellable
	// request currently queued or dispatching on this connection.
	// MsgCancelRequest and connection death cancel through it.
	mu       sync.Mutex
	inflight map[uint32]context.CancelFunc
}

// addInflight registers the cancel func for a request id.
func (c *serverConn) addInflight(id uint32, cancel context.CancelFunc) {
	c.mu.Lock()
	c.inflight[id] = cancel
	c.mu.Unlock()
}

// removeInflight drops a finished request.
func (c *serverConn) removeInflight(id uint32) {
	c.mu.Lock()
	delete(c.inflight, id)
	c.mu.Unlock()
}

// cancelInflight cancels the request with the given id, reporting whether
// it was in flight.
func (c *serverConn) cancelInflight(id uint32) bool {
	c.mu.Lock()
	cancel, ok := c.inflight[id]
	c.mu.Unlock()
	if ok {
		cancel()
	}
	return ok
}

// writeNow sends one message and flushes immediately (locate replies,
// admission sheds, protocol errors: standalone writes that never ride a
// coalesced batch).
func (c *serverConn) writeNow(m *giop.Message) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.dead {
		return
	}
	if err := giop.Write(c.bw, m); err != nil {
		c.dead = true
		return
	}
	if err := c.bw.Flush(); err != nil {
		c.dead = true
	}
}

// writeReply sends a dispatch reply through the server-side coalescing
// window: while more replies are owed on this connection, the flush may
// wait up to ReplyCoalesceWindow for them, so a batch of requests costs
// one flush syscall instead of one per reply. The reply that empties the
// pipeline flushes immediately.
func (c *serverConn) writeReply(m *giop.Message) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	pending := c.pendingReplies.Add(-1)
	if c.dead {
		return
	}
	if err := giop.Write(c.bw, m); err != nil {
		c.dead = true
		return
	}
	window := c.a.orb.replyCoalesceWindow()
	switch {
	case window <= 0 || pending <= 0:
		if c.flushTimer != nil {
			c.flushTimer.Stop()
		}
		c.flushScheduled = false
		if err := c.bw.Flush(); err != nil {
			c.dead = true
		}
	case c.flushScheduled:
		// A flush is already on its way; this reply rides it for free.
		c.a.orb.counters.serverFlushesCoalesced.Add(1)
	default:
		c.flushScheduled = true
		if c.flushTimer == nil {
			c.flushTimer = time.AfterFunc(window, c.flushDeferred)
		} else {
			c.flushTimer.Reset(window)
		}
	}
}

// flushDeferred runs the scheduled coalesced flush (the safety net for
// replies deferred behind a slow dispatch).
func (c *serverConn) flushDeferred() {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.flushScheduled = false
	if c.dead {
		return
	}
	if err := c.bw.Flush(); err != nil {
		c.dead = true
	}
}

// shutdown sends a CloseConnection notice (best effort, bounded by a
// write deadline) and closes the socket.
func (c *serverConn) shutdown() {
	c.conn.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
	c.writeNow(&giop.Message{Type: giop.MsgCloseConnection})
	c.conn.Close()
}

// NewAdapter creates an object adapter listening on addr (use
// "127.0.0.1:0" for an ephemeral port).
func (o *ORB) NewAdapter(addr string) (*Adapter, error) {
	pool, err := o.ensurePool()
	if err != nil {
		return nil, err
	}
	ln, err := o.opts.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("orb: adapter listen %s: %w", addr, err)
	}
	a := &Adapter{
		orb:      o,
		ln:       ln,
		pool:     pool,
		servants: make(map[string]Servant),
		conns:    make(map[*serverConn]struct{}),
	}
	o.mu.Lock()
	o.adapters = append(o.adapters, a)
	o.mu.Unlock()
	a.wg.Add(1)
	go a.acceptLoop()
	return a, nil
}

// Addr returns the adapter's bound listen address ("host:port").
func (a *Adapter) Addr() string { return a.ln.Addr().String() }

// Activate registers servant under key and returns its object reference
// (POA activate_object_with_id analogue). Activating an existing key
// replaces the previous servant.
func (a *Adapter) Activate(key string, s Servant) ObjectRef {
	a.mu.Lock()
	a.servants[key] = s
	a.mu.Unlock()
	return ObjectRef{TypeID: s.TypeID(), Addr: a.Addr(), Key: key}
}

// Deactivate removes the servant under key. Subsequent requests for it
// raise OBJECT_NOT_EXIST.
func (a *Adapter) Deactivate(key string) {
	a.mu.Lock()
	delete(a.servants, key)
	a.mu.Unlock()
}

// Resolve returns the servant registered under key, if any.
func (a *Adapter) Resolve(key string) (Servant, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	s, ok := a.servants[key]
	return s, ok
}

// ServantCount returns the number of active servants.
func (a *Adapter) ServantCount() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.servants)
}

// Close stops the listener, notifies connected clients with a GIOP
// CloseConnection message, closes all server-side connections and waits
// for in-flight dispatches. Clients observe COMM_FAILURE on their next
// call.
func (a *Adapter) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	a.mu.Unlock()
	a.ln.Close()
	a.connMu.Lock()
	conns := make([]*serverConn, 0, len(a.conns))
	for c := range a.conns {
		conns = append(conns, c)
	}
	a.connMu.Unlock()
	for _, c := range conns {
		c.shutdown()
	}
	a.orb.removeAdapter(a)
	a.wg.Wait()
	// The read loops are gone; whatever they admitted drains through the
	// shared pool (connection death has cancelled every request context,
	// so blocked servants abort promptly).
	a.taskWG.Wait()
}

// trackConn registers a live server connection; it returns false when the
// adapter is already closed (the connection is closed immediately).
func (a *Adapter) trackConn(c *serverConn) bool {
	a.connMu.Lock()
	defer a.connMu.Unlock()
	if a.isClosed() {
		c.conn.Close()
		return false
	}
	a.conns[c] = struct{}{}
	return true
}

// untrackConn removes a finished connection.
func (a *Adapter) untrackConn(c *serverConn) {
	a.connMu.Lock()
	delete(a.conns, c)
	a.connMu.Unlock()
}

func (a *Adapter) isClosed() bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.closed
}

func (a *Adapter) acceptLoop() {
	defer a.wg.Done()
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			return // listener closed
		}
		a.orb.counters.connectionsAccepted.Add(1)
		a.wg.Add(1)
		go a.serveConn(conn)
	}
}

// shedReply builds the TIMEOUT reply for a request rejected by
// deadline-aware admission.
func shedReply(req *giop.Message) *giop.Message {
	reply := &giop.Message{Type: giop.MsgReply, RequestID: req.RequestID}
	setReplyError(reply, &SystemException{
		Kind:   ExTimeout,
		Detail: fmt.Sprintf("%s.%s: deadline expired before dispatch", req.ObjectKey, req.Operation),
	})
	return reply
}

// qosShedReply builds the TRANSIENT reply for a request rejected by QoS
// admission control, carrying the retry-after hint in an SCRetryAfter
// service context so resilient callers back off for the right amount of
// time instead of hammering a saturated server.
func qosShedReply(req *giop.Message, class Priority, reason string, retryAfter time.Duration) *giop.Message {
	reply := &giop.Message{Type: giop.MsgReply, RequestID: req.RequestID}
	setReplyError(reply, &SystemException{
		Kind:   ExTransient,
		Detail: fmt.Sprintf("%s.%s: admission shed (class %s, %s)", req.ObjectKey, req.Operation, class, reason),
	})
	if retryAfter > 0 {
		reply.Contexts = append(reply.Contexts, giop.ServiceContext{
			ID: giop.SCRetryAfter, Data: giop.EncodeRetryAfter(retryAfter),
		})
	}
	return reply
}

// isProtocolError reports whether err is a peer protocol violation worth
// answering with MsgError before dropping the connection (as opposed to a
// plain transport failure).
func isProtocolError(err error) bool {
	return errors.Is(err, giop.ErrBadMagic) ||
		errors.Is(err, giop.ErrBadVersion) ||
		errors.Is(err, giop.ErrTooBig) ||
		errors.Is(err, giop.ErrOrphanFragment)
}

// serveConn is the per-connection reactor loop: it drains batches of
// frames from the connection (many frames per read syscall via the
// FrameReader), handles control messages inline, and hands requests to
// the ORB's shared worker pool. Every request gets a context derived from
// the connection's: MsgCancelRequest cancels one request, connection
// death cancels them all, and requests whose propagated deadline has
// already expired are shed without reaching a servant.
func (a *Adapter) serveConn(conn net.Conn) {
	defer a.wg.Done()
	o := a.orb
	sc := &serverConn{
		a:        a,
		conn:     conn,
		peer:     conn.RemoteAddr().String(),
		bw:       bufio.NewWriter(conn),
		inflight: make(map[uint32]context.CancelFunc),
	}
	if !a.trackConn(sc) {
		return
	}
	defer a.untrackConn(sc)
	defer conn.Close()

	// connCtx parents every request context on this connection. The defer
	// runs before the socket teardown above it, so connection death
	// cancels queued and in-flight dispatches immediately.
	connCtx, connCancel := context.WithCancel(context.Background())
	defer connCancel()

	frameTimeout := o.opts.FrameTimeout
	if frameTimeout < 0 {
		frameTimeout = 0 // guard disabled explicitly
	}
	fr := giop.NewFrameReader(conn, giop.FrameReaderConfig{
		MaxBody:         o.opts.MaxRequestBody,
		FrameTimeout:    frameTimeout,
		SetReadDeadline: conn.SetReadDeadline,
	})
	defer fr.Close()
	batch := make([]*giop.Message, o.opts.ReadBatch)
	var lastReads, lastFrames uint64

	for {
		n, err := fr.ReadBatch(batch)
		if n > 0 {
			reads, frames := fr.Stats()
			o.counters.frameReads.Add(reads - lastReads)
			o.counters.framesRead.Add(frames - lastFrames)
			lastReads, lastFrames = reads, frames
			o.observeBatchSize(n)
		}
		for i, m := range batch[:n] {
			if !a.handleMessage(sc, connCtx, m) {
				for _, rest := range batch[i+1 : n] {
					rest.Release()
				}
				return
			}
		}
		if err != nil {
			var tbe *giop.TooBigError
			if errors.As(err, &tbe) {
				// Slow-loris / oversize guard: the frame was drained with
				// bounded reads, so the connection survives; the caller
				// learns its request was too big via MARSHAL.
				o.counters.oversizeRejected.Add(1)
				if tbe.ResponseExpected {
					reply := &giop.Message{Type: giop.MsgReply, RequestID: tbe.RequestID}
					setReplyError(reply, &SystemException{Kind: ExMarshal, Detail: err.Error()})
					sc.writeNow(reply)
				}
				continue
			}
			if isProtocolError(err) {
				sc.writeNow(&giop.Message{Type: giop.MsgError})
			}
			return
		}
	}
}

// handleMessage routes one inbound message; a false return abandons the
// connection. Request messages pass ownership to the dispatch machinery;
// everything else is handled inline and released here.
func (a *Adapter) handleMessage(sc *serverConn, connCtx context.Context, m *giop.Message) bool {
	switch m.Type {
	case giop.MsgRequest:
		a.admitRequest(sc, connCtx, m)
		return true
	case giop.MsgLocateRequest:
		status := giop.LocateUnknownObject
		if _, ok := a.Resolve(m.ObjectKey); ok {
			status = giop.LocateObjectHere
		}
		sc.writeNow(&giop.Message{Type: giop.MsgLocateReply, RequestID: m.RequestID, LocateStatus: status})
		m.Release()
		return true
	case giop.MsgCancelRequest:
		if sc.cancelInflight(m.RequestID) {
			a.orb.counters.cancelsReceived.Add(1)
		}
		m.Release()
		return true
	case giop.MsgCloseConnection:
		m.Release()
		return false
	default:
		m.Release()
		sc.writeNow(&giop.Message{Type: giop.MsgError})
		return false
	}
}

// admitRequest derives the request's context, applies the admission
// pipeline — deadline check, degradation-mode gate, per-tenant token
// bucket, per-class queue — and hands the request to the shared worker
// pool. It takes ownership of m.
func (a *Adapter) admitRequest(sc *serverConn, connCtx context.Context, m *giop.Message) {
	o := a.orb
	// Decode the QoS coordinates once; requests without SCQoS (every
	// pre-QoS client) are normal-class anonymous traffic.
	class, tenant := ClassNormal, ""
	if data := m.Context(giop.SCQoS); data != nil {
		if c, tn, ok := giop.DecodeQoS(data); ok {
			class, tenant = classFromWire(c), tn
		}
	}
	// Degradation-mode gate: a degraded runtime closes admission for
	// batch, a critical-only runtime for everything below critical.
	// Critical traffic is never shed here — that is what the class means.
	if mode := o.DegradeMode(); mode != ModeNormal && class != ClassCritical {
		if class == ClassBatch || mode == ModeCriticalOnly {
			a.shedQoS(sc, m, class, ShedDegradedMode, o.qos.RetryAfter)
			return
		}
	}
	// Per-tenant fairness: one token per admitted request. Critical is
	// exempt (admission control never sheds it); the hint is the exact
	// time until the tenant's next token accrues.
	if o.tenants != nil && class != ClassCritical {
		if ok, retryAfter := o.tenants.admit(tenant, time.Now()); !ok {
			a.shedQoS(sc, m, class, ShedTenantThrottle, retryAfter)
			return
		}
	}
	var rctx context.Context
	var rcancel context.CancelFunc
	if remaining, ok := giop.DecodeDeadline(m.Context(giop.SCDeadline)); ok {
		// The wire carries remaining time, not an absolute instant, so the
		// deadline is rebased onto the server's clock (tolerating skew).
		rctx, rcancel = context.WithTimeout(connCtx, remaining)
	} else if m.ResponseExpected {
		rctx, rcancel = context.WithCancel(connCtx)
	} else {
		// Zero-allocation oneway fast path: no per-request context.
		// Connection death and adapter close still cancel via connCtx;
		// wire-level cancel of an individual oneway is not supported (it
		// has no reply to save).
		rctx = connCtx
	}
	if rctx.Err() != nil {
		// Deadline-aware admission: the propagated deadline expired before
		// dispatch, so the servant is never invoked.
		o.counters.requestsShed.Add(1)
		obs.Signal(obs.AnomalyDeadlineShed)
		o.recordRequest(m, sc.peer, 0, 0, obs.OutcomeShed, class)
		if m.ResponseExpected {
			sc.writeNow(shedReply(m))
		}
		if rcancel != nil {
			rcancel()
		}
		m.Release()
		return
	}
	if rcancel != nil {
		sc.addInflight(m.RequestID, rcancel)
	}
	if m.ResponseExpected {
		sc.pendingReplies.Add(1)
	}
	t := acquireTask()
	t.a, t.sc, t.req, t.rctx, t.rcancel = a, sc, m, rctx, rcancel
	t.admitted = m.Received
	t.class, t.tenant = class, tenant
	a.taskWG.Add(1)
	switch a.pool.enqueue(t) {
	case admitQueued:
	case admitRejected:
		// Batch queue share exhausted: fast-reject with the configured
		// retry-after hint. The admission state registered above is
		// unwound here; the reply rides the coalescing path because
		// pendingReplies already counts it.
		o.counters.requestsShed.Add(1)
		o.admissionShed.add(t.class, ShedQueueFull)
		obs.Signal(obs.AnomalyAdmissionShed)
		o.recordRequest(m, sc.peer, 0, 0, obs.OutcomeShed, t.class)
		if m.ResponseExpected {
			sc.writeReply(qosShedReply(m, t.class, ShedQueueFull, o.qos.RetryAfter))
		}
		if rcancel != nil {
			sc.removeInflight(m.RequestID)
			rcancel()
		}
		m.Release()
		a.taskWG.Done()
		releaseTask(t)
	default:
		// admitCtxDead / admitClosed: serveRequest takes the shed path
		// (dead context) or answers for the closing adapter.
		a.serveRequest(t)
	}
}

// shedQoS rejects one request before any admission state is registered:
// count it, record it, answer with a TRANSIENT + retry-after reply.
func (a *Adapter) shedQoS(sc *serverConn, m *giop.Message, class Priority, reason string, retryAfter time.Duration) {
	o := a.orb
	o.counters.requestsShed.Add(1)
	o.admissionShed.add(class, reason)
	obs.Signal(obs.AnomalyAdmissionShed)
	o.recordRequest(m, sc.peer, 0, 0, obs.OutcomeShed, class)
	if m.ResponseExpected {
		sc.writeNow(qosShedReply(m, class, reason, retryAfter))
	}
	m.Release()
}

// serveRequest is the worker-side execution of one admitted request: shed
// if its context died while queued, dispatch otherwise, then clean up the
// task's cancellation state and pooled resources. The dequeue and
// dispatch-done stamps taken here, against the admission stamp carried by
// the task, feed the queue-wait and service-time signal plane — but only
// when instruments are attached, so an unobserved ORB skips the clock
// reads entirely.
func (a *Adapter) serveRequest(t *dispatchTask) {
	o := a.orb
	sc, req := t.sc, t.req
	observed := o.signals.Load() != nil || o.flight.Load() != nil
	var dequeued time.Time
	var queueWait time.Duration
	if observed {
		dequeued = time.Now()
		if !t.admitted.IsZero() {
			queueWait = dequeued.Sub(t.admitted)
		}
	}
	outcome := obs.OutcomeOK
	if err := t.rctx.Err(); err != nil {
		// Cancelled or expired between admission and dequeue: shed without
		// touching the servant.
		if err == context.DeadlineExceeded {
			o.counters.requestsShed.Add(1)
			obs.Signal(obs.AnomalyDeadlineShed)
		}
		if req.ResponseExpected {
			sc.writeReply(shedReply(req))
		}
		outcome = obs.OutcomeShed
	} else if req.ResponseExpected {
		o.counters.inFlight.Add(1)
		reply, release := a.dispatch(t, sc.peer, req, &t.sctx)
		outcome = replyOutcome(reply.ReplyStatus)
		sc.writeReply(reply)
		release()
		reply.Release()
		o.counters.inFlight.Add(-1)
	} else {
		o.counters.inFlight.Add(1)
		a.dispatchOneway(t, sc.peer, req, &t.sctx)
		o.counters.inFlight.Add(-1)
		outcome = obs.OutcomeOneway
	}
	if observed {
		o.recordRequest(req, sc.peer, queueWait, time.Since(dequeued), outcome, t.class)
	}
	if t.rcancel != nil {
		sc.removeInflight(req.RequestID)
		t.rcancel()
	}
	req.Release()
	a.taskWG.Done()
	releaseTask(t)
}

// replyOutcome maps a reply status to a flight-record outcome.
func replyOutcome(st giop.ReplyStatus) obs.Outcome {
	switch st {
	case giop.ReplyUserException:
		return obs.OutcomeUserException
	case giop.ReplySystemException:
		return obs.OutcomeSystemException
	case giop.ReplyLocationForward:
		return obs.OutcomeForward
	default:
		return obs.OutcomeOK
	}
}

// recordRequest feeds the load-signal histograms and the flight recorder
// for one finished (or shed) server-side request. Zero-alloc at steady
// state: interned strings, value-type records, single-label fast paths.
func (o *ORB) recordRequest(req *giop.Message, peer string, queueWait, service time.Duration, outcome obs.Outcome, class Priority) {
	sig := o.signals.Load()
	fl := o.flight.Load()
	if sig == nil && fl == nil {
		return
	}
	tc, ok := obs.DecodeTraceContext(req.Context(giop.SCTrace))
	sampled := ok && tc.Sampled
	if sig != nil {
		qh := sig.queueWait.With1(req.Operation)
		sh := sig.service.With1(req.Operation)
		if sampled {
			qh.ObserveExemplar(queueWait.Seconds(), tc.TraceID)
			sh.ObserveExemplar(service.Seconds(), tc.TraceID)
		} else {
			qh.Observe(queueWait.Seconds())
			sh.Observe(service.Seconds())
		}
	}
	if fl != nil {
		rec := obs.FlightRecord{
			Time:      time.Now().UnixNano(),
			Op:        req.Operation,
			Peer:      peer,
			Side:      obs.SideServer,
			Bytes:     int32(len(req.Body)),
			QueueWait: int64(queueWait),
			Service:   int64(service),
			Outcome:   outcome,
			Class:     class.String(),
		}
		if sampled {
			rec.Trace = tc.TraceID
		}
		fl.Record(rec)
	}
}

// exportConnInflight emits the per-connection inflight gauge series at
// scrape time, across every adapter's live connections.
func (o *ORB) exportConnInflight(emit func(labelValues []string, v float64)) {
	o.mu.Lock()
	adapters := append([]*Adapter(nil), o.adapters...)
	o.mu.Unlock()
	for _, a := range adapters {
		a.connMu.Lock()
		conns := make([]*serverConn, 0, len(a.conns))
		for c := range a.conns {
			conns = append(conns, c)
		}
		a.connMu.Unlock()
		for _, c := range conns {
			c.mu.Lock()
			n := len(c.inflight)
			c.mu.Unlock()
			emit([]string{c.peer}, float64(n))
		}
	}
}

// dispatch runs one request through interceptors and the target servant,
// translating panics and errors into exception replies. The reply is a
// pooled message whose body rides a pooled encoder: the caller writes the
// reply, then calls the returned release func, then releases the reply.
// sctx is the caller-owned ServerContext scratch for this dispatch.
func (a *Adapter) dispatch(t *dispatchTask, peer string, req *giop.Message, sctx *ServerContext) (*giop.Message, func()) {
	a.orb.counters.requestsServed.Add(1)
	a.orb.interceptReceiveRequest(req)
	rctx := a.orb.callDispatchStart(t.rctx, req)

	reply := giop.AcquireMessage()
	reply.Type = giop.MsgReply
	reply.RequestID = req.RequestID
	*sctx = ServerContext{ORB: a.orb, Adapter: a, Peer: peer, Priority: t.class, Tenant: t.tenant, Request: req, ctx: rctx, replyContexts: sctx.replyContexts[:0]}

	out := cdr.AcquireEncoder()
	in := cdr.AcquireDecoder(req.Body)
	sv, ok := a.Resolve(req.ObjectKey)
	if !ok || a.isClosed() {
		encodeReplyError(reply, ObjectNotExist(req.ObjectKey), out)
	} else if req.Operation == OpIsA {
		// Reserved operation handled by the adapter for every servant
		// (CORBA Object::_is_a analogue): type compatibility check.
		want := in.GetString()
		if err := in.Err(); err != nil {
			encodeReplyError(reply, &SystemException{Kind: ExMarshal, Detail: err.Error()}, out)
		} else {
			out.PutBool(want == sv.TypeID())
			reply.ReplyStatus = giop.ReplyNoException
			reply.Body = out.Bytes()
		}
	} else {
		err := safeInvoke(sv, sctx, req.Operation, in, out)
		if err != nil {
			encodeReplyError(reply, err, out)
		} else {
			reply.ReplyStatus = giop.ReplyNoException
			reply.Body = out.Bytes()
		}
	}
	in.Release()
	reply.Contexts = append(reply.Contexts, sctx.replyContexts...)
	a.orb.interceptSendReply(reply)
	a.orb.callDispatchEnd(rctx, req, reply)
	return reply, out.Release
}

// dispatchOneway runs a oneway request: the same interception points as
// dispatch, but no reply is assembled (DispatchEnd receives a nil reply,
// per the CallInterceptor contract) and servant errors have nowhere to
// go. This path is allocation-free in the steady state.
func (a *Adapter) dispatchOneway(t *dispatchTask, peer string, req *giop.Message, sctx *ServerContext) {
	a.orb.counters.requestsServed.Add(1)
	a.orb.interceptReceiveRequest(req)
	rctx := a.orb.callDispatchStart(t.rctx, req)

	*sctx = ServerContext{ORB: a.orb, Adapter: a, Peer: peer, Priority: t.class, Tenant: t.tenant, Request: req, ctx: rctx, replyContexts: sctx.replyContexts[:0]}

	out := cdr.AcquireEncoder()
	in := cdr.AcquireDecoder(req.Body)
	if sv, ok := a.Resolve(req.ObjectKey); ok && !a.isClosed() && req.Operation != OpIsA {
		_ = safeInvoke(sv, sctx, req.Operation, in, out)
	}
	in.Release()
	out.Release()
	a.orb.callDispatchEnd(rctx, req, nil)
}

// safeInvoke shields the dispatcher from servant panics, converting them
// to INTERNAL system exceptions (a crashed servant must not take down the
// adapter, only the one call).
func safeInvoke(sv Servant, ctx *ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &SystemException{Kind: ExInternal, Detail: fmt.Sprintf("servant panic in %s: %v", op, r)}
		}
	}()
	return sv.Invoke(ctx, op, in, out)
}

// setReplyError encodes err into reply as a user or system exception.
func setReplyError(reply *giop.Message, err error) {
	encodeReplyError(reply, err, cdr.NewEncoder(64))
}

// encodeReplyError encodes err into reply using e (reset first), so the
// dispatch hot path can reuse its pooled encoder for error bodies.
func encodeReplyError(reply *giop.Message, err error, e *cdr.Encoder) {
	e.Reset()
	switch x := err.(type) {
	case *UserException:
		reply.ReplyStatus = giop.ReplyUserException
		x.MarshalCDR(e)
	case *SystemException:
		reply.ReplyStatus = giop.ReplySystemException
		x.MarshalCDR(e)
	case *ForwardError:
		reply.ReplyStatus = giop.ReplyLocationForward
		x.Target.MarshalCDR(e)
	default:
		reply.ReplyStatus = giop.ReplySystemException
		se := &SystemException{Kind: ExUnknown, Detail: err.Error()}
		se.MarshalCDR(e)
	}
	reply.Body = e.Bytes()
}
