package orb

import (
	"math/rand"
	"testing"
	"time"
)

func TestBackoffDeterministicWithoutJitter(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{
		0,
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
	}
	for n, w := range want {
		if got := b.delay(n); got != w {
			t.Fatalf("delay(%d) = %v, want %v", n, got, w)
		}
	}
}

func TestBackoffFullJitterBounds(t *testing.T) {
	b := Backoff{
		Base:       10 * time.Millisecond,
		Max:        200 * time.Millisecond,
		Multiplier: 2,
		Jitter:     1,
		Rand:       rand.New(rand.NewSource(7)),
	}
	for n := 1; n <= 6; n++ {
		ceiling := Backoff{Base: b.Base, Max: b.Max, Multiplier: b.Multiplier}.delay(n)
		for i := 0; i < 200; i++ {
			d := b.delay(n)
			if d < 0 || d > ceiling {
				t.Fatalf("delay(%d) = %v outside [0, %v]", n, d, ceiling)
			}
		}
	}
}

func TestBackoffJitterSpread(t *testing.T) {
	b := Backoff{
		Base:       20 * time.Millisecond,
		Multiplier: 2,
		Jitter:     1,
		Rand:       rand.New(rand.NewSource(42)),
	}
	const samples = 200
	ceiling := Backoff{Base: b.Base, Multiplier: b.Multiplier}.delay(3)
	min, max := time.Duration(1<<62), time.Duration(0)
	for i := 0; i < samples; i++ {
		d := b.delay(3)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min == max {
		t.Fatalf("full jitter produced a constant delay %v over %d samples", min, samples)
	}
	// Full jitter draws uniformly over (0, ceiling]: with 200 samples the
	// observed range must cover well over half the interval.
	if spread := max - min; spread < ceiling/2 {
		t.Fatalf("jitter spread %v over %d samples, want at least %v (ceiling %v)", spread, samples, ceiling/2, ceiling)
	}
}

func TestBackoffPartialJitterFloor(t *testing.T) {
	b := Backoff{
		Base:       100 * time.Millisecond,
		Multiplier: 2,
		Jitter:     0.25,
		Rand:       rand.New(rand.NewSource(3)),
	}
	// Jitter 0.25 keeps every delay within [0.75·d, d].
	floor := 75 * time.Millisecond
	for i := 0; i < 200; i++ {
		if d := b.delay(1); d < floor || d > 100*time.Millisecond {
			t.Fatalf("delay(1) = %v outside [%v, 100ms]", d, floor)
		}
	}
}

func TestBackoffSeededJitterReproducible(t *testing.T) {
	run := func() []time.Duration {
		b := Backoff{Base: 10 * time.Millisecond, Multiplier: 2, Jitter: 1, Rand: rand.New(rand.NewSource(99))}
		out := make([]time.Duration, 0, 8)
		for n := 1; n <= 8; n++ {
			out = append(out, b.delay(n))
		}
		return out
	}
	a, c := run(), run()
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("seeded jitter not reproducible at round %d: %v vs %v", i+1, a[i], c[i])
		}
	}
}
