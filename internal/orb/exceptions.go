package orb

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cdr"
)

// ExceptionKind enumerates the CORBA system exception kinds used by this
// runtime. COMM_FAILURE is central: the paper's fault-tolerance layer keys
// entirely off clients observing CORBA::COMM_FAILURE.
type ExceptionKind uint32

// System exception kinds (a subset of the CORBA standard set).
const (
	ExUnknown ExceptionKind = iota
	ExCommFailure
	ExObjectNotExist
	ExBadOperation
	ExTransient
	ExMarshal
	ExNoImplement
	ExInternal
	ExTimeout
	// ExCancelled reports that the caller's context was cancelled while
	// the invocation was in flight (CORBA has no direct analogue; gRPC's
	// CANCELLED). The client abandons the reply and sends a
	// MsgCancelRequest so the server can abort the dispatch.
	ExCancelled
)

func (k ExceptionKind) String() string {
	switch k {
	case ExCommFailure:
		return "COMM_FAILURE"
	case ExObjectNotExist:
		return "OBJECT_NOT_EXIST"
	case ExBadOperation:
		return "BAD_OPERATION"
	case ExTransient:
		return "TRANSIENT"
	case ExMarshal:
		return "MARSHAL"
	case ExNoImplement:
		return "NO_IMPLEMENT"
	case ExInternal:
		return "INTERNAL"
	case ExTimeout:
		return "TIMEOUT"
	case ExCancelled:
		return "CANCELLED"
	default:
		return "UNKNOWN"
	}
}

// SystemException is the CORBA system exception analogue. It is raised by
// the runtime itself (not by application code) for transport, dispatch and
// marshalling failures.
type SystemException struct {
	Kind   ExceptionKind
	Minor  uint32
	Detail string
	// RetryAfter is the server's backoff hint for TRANSIENT admission
	// sheds. It travels in the SCRetryAfter reply service context, not in
	// the CDR exception body, and is populated client-side when the reply
	// is decoded; zero means no hint.
	RetryAfter time.Duration
}

// SystemKind returns the exception kind's CORBA name ("COMM_FAILURE",
// "TIMEOUT", ...). The observability layer classifies failures through
// this method structurally, without importing orb.
func (e *SystemException) SystemKind() string { return e.Kind.String() }

func (e *SystemException) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("orb: system exception %v (minor %d)", e.Kind, e.Minor)
	}
	return fmt.Sprintf("orb: system exception %v (minor %d): %s", e.Kind, e.Minor, e.Detail)
}

// CommFailure constructs a COMM_FAILURE system exception wrapping detail.
func CommFailure(detail string) *SystemException {
	return &SystemException{Kind: ExCommFailure, Detail: detail}
}

// ObjectNotExist constructs an OBJECT_NOT_EXIST system exception.
func ObjectNotExist(key string) *SystemException {
	return &SystemException{Kind: ExObjectNotExist, Detail: key}
}

// BadOperation constructs a BAD_OPERATION system exception.
func BadOperation(op string) *SystemException {
	return &SystemException{Kind: ExBadOperation, Detail: op}
}

// IsSystemException reports whether err is (or wraps) a SystemException of
// the given kind.
func IsSystemException(err error, kind ExceptionKind) bool {
	var se *SystemException
	if errors.As(err, &se) {
		return se.Kind == kind
	}
	return false
}

// IsCommFailure reports whether err is a COMM_FAILURE — the condition the
// paper's proxy classes intercept to trigger checkpoint/restart recovery.
func IsCommFailure(err error) bool { return IsSystemException(err, ExCommFailure) }

// RetryAfterHint extracts the server's retry-after backoff hint from an
// admission-shed failure (zero when err carries none).
func RetryAfterHint(err error) time.Duration {
	var se *SystemException
	if errors.As(err, &se) {
		return se.RetryAfter
	}
	return 0
}

// IsAdmissionShed reports whether err is a QoS admission rejection: a
// TRANSIENT system exception carrying a retry-after hint. Sheds happen
// strictly before the servant runs, so replaying one is always safe —
// the resilient-call engine retries them even for non-idempotent
// operations.
func IsAdmissionShed(err error) bool {
	var se *SystemException
	return errors.As(err, &se) && se.Kind == ExTransient && se.RetryAfter > 0
}

// MarshalCDR encodes the exception as a system-exception reply body.
func (e *SystemException) MarshalCDR(enc *cdr.Encoder) {
	enc.PutUint32(uint32(e.Kind))
	enc.PutUint32(e.Minor)
	enc.PutString(e.Detail)
}

// UnmarshalCDR decodes a system-exception reply body.
func (e *SystemException) UnmarshalCDR(d *cdr.Decoder) error {
	e.Kind = ExceptionKind(d.GetUint32())
	e.Minor = d.GetUint32()
	e.Detail = d.GetString()
	return d.Err()
}

// UserException is an application-level exception declared by a service
// interface (the IDL "raises" clause analogue). Servants return one to send
// a USER_EXCEPTION reply; client stubs surface it as the call's error.
type UserException struct {
	// RepoID identifies the exception type, e.g. "IDL:repro/NotFound:1.0".
	RepoID string
	// Detail is a human-readable message.
	Detail string
	// Data optionally carries CDR-encoded exception members.
	Data []byte
}

func (e *UserException) Error() string {
	return fmt.Sprintf("orb: user exception %s: %s", e.RepoID, e.Detail)
}

// MarshalCDR encodes the exception as a user-exception reply body.
func (e *UserException) MarshalCDR(enc *cdr.Encoder) {
	enc.PutString(e.RepoID)
	enc.PutString(e.Detail)
	enc.PutBytes(e.Data)
}

// UnmarshalCDR decodes a user-exception reply body.
func (e *UserException) UnmarshalCDR(d *cdr.Decoder) error {
	e.RepoID = d.GetString()
	e.Detail = d.GetString()
	e.Data = d.GetBytes()
	return d.Err()
}

// IsUserException reports whether err is a UserException with the given
// repository id ("" matches any user exception).
func IsUserException(err error, repoID string) bool {
	var ue *UserException
	if errors.As(err, &ue) {
		return repoID == "" || ue.RepoID == repoID
	}
	return false
}
