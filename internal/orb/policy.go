package orb

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cdr"
	"repro/internal/obs"
)

// CallOptions bound and shape a single invocation. They replace the old
// single global Options.CallTimeout knob: every call can carry its own
// deadline, retry budget and backoff, with the ORB-level CallTimeout kept
// only as the default when Deadline is zero.
type CallOptions struct {
	// Deadline bounds the call end to end, measured from the moment the
	// call is issued. Zero falls back to the ORB's Options.CallTimeout;
	// the tighter of this and any deadline already carried by the caller's
	// context wins. The remaining time is propagated to the server in the
	// SCDeadline service context so expired requests are shed there.
	Deadline time.Duration
	// RetryBudget is the number of recover-and-replay rounds the resilient
	// call engine may spend after the first attempt fails. Zero means no
	// retries.
	RetryBudget int
	// Backoff spaces successive replay rounds.
	Backoff Backoff
	// Idempotent marks the operation safe to replay even when the failure
	// leaves the first attempt's outcome unknown (connection died after
	// the request was written, COMM_FAILURE). When false — and no
	// explicit RetryOn classifier overrides it — the engine only replays
	// failures that provably happened before the servant ran
	// (OBJECT_NOT_EXIST: the dispatch was rejected). The ft proxies set
	// their own classifier because checkpoint/restore makes replay safe.
	Idempotent bool
	// FollowForwards makes the call transparently follow LOCATION_FORWARD
	// replies (bounded by the engine's MaxHops to break forwarding loops).
	FollowForwards bool
	// NoCoalesce flushes this call's request immediately instead of riding
	// the connection's write-coalescing window (Options.CoalesceWindow).
	NoCoalesce bool
	// Checkpoint overrides a fault-tolerant proxy's checkpoint behaviour
	// for this call. The plain ORB ignores it; ft.Proxy.Call interprets it.
	Checkpoint CheckpointMode
	// Priority is the call's QoS class, carried to the server in the
	// SCQoS service context. The zero value (ClassNormal) with an empty
	// Tenant sends no context at all — indistinguishable from a pre-QoS
	// client on the wire.
	Priority Priority
	// Tenant identifies the caller for per-tenant admission fairness
	// (token buckets at the server adapter). Empty means the anonymous
	// tenant.
	Tenant string
}

// Backoff is a bounded exponential backoff schedule with optional jitter.
type Backoff struct {
	// Base is the delay before the first replay. Zero disables sleeping.
	Base time.Duration
	// Max caps the grown delay (0 = uncapped).
	Max time.Duration
	// Multiplier grows the delay between rounds (default 2 when Base > 0).
	Multiplier float64
	// Jitter randomises each delay downward: the sleep is drawn uniformly
	// from [(1-Jitter)·d, d] where d is the deterministic exponential
	// delay. 0 keeps the schedule deterministic; 1 is full jitter. Values
	// outside [0, 1] are clamped. Without jitter, workers that died
	// together replay in lockstep against the replacement server.
	Jitter float64
	// Rand supplies the jitter randomness; nil uses a process-global
	// time-seeded source. Tests pass a seeded source for reproducibility.
	// Access is serialised internally, so a shared *rand.Rand is safe.
	Rand *rand.Rand
}

// backoffRand guards all Backoff jitter draws: Backoff values are copied
// freely across goroutines while sharing the same underlying source.
var backoffRandMu sync.Mutex

// backoffRand is the process-global jitter source for Backoff values with
// no explicit Rand.
var backoffRand = rand.New(rand.NewSource(time.Now().UnixNano()))

// Delay returns the sleep before retry round n (1-based): the exported
// view of the engine's schedule, for components that run their own retry
// loops (e.g. naming re-subscription) but want the same bounded
// exponential-with-jitter behaviour.
func (b Backoff) Delay(n int) time.Duration { return b.delay(n) }

// delay returns the sleep before replay round n (1-based).
func (b Backoff) delay(n int) time.Duration {
	if b.Base <= 0 || n <= 0 {
		return 0
	}
	mult := b.Multiplier
	if mult <= 1 {
		mult = 2
	}
	d := float64(b.Base)
	for i := 1; i < n; i++ {
		d *= mult
		if b.Max > 0 && d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Max > 0 && d > float64(b.Max) {
		d = float64(b.Max)
	}
	if j := b.Jitter; j > 0 {
		if j > 1 {
			j = 1
		}
		src := b.Rand
		if src == nil {
			src = backoffRand
		}
		backoffRandMu.Lock()
		f := src.Float64()
		backoffRandMu.Unlock()
		d *= 1 - j*f
	}
	return time.Duration(d)
}

// sleepCtx waits for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RetryError reports that a resilient call failed and its retry budget was
// exhausted (or a recovery step itself failed).
type RetryError struct {
	// Op is the operation name.
	Op string
	// Attempts is the number of recovery rounds spent.
	Attempts int
	// Last is the final underlying failure.
	Last error
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("orb: %s failed after %d recovery attempts: %v", e.Op, e.Attempts, e.Last)
}

func (e *RetryError) Unwrap() error { return e.Last }

// DefaultRetryOn is the engine's default failure classifier: COMM_FAILURE
// (the paper's recovery trigger), OBJECT_NOT_EXIST (server restarted
// without state) and QoS admission sheds (rejected before dispatch, with
// a retry-after hint) are retryable; everything else — user exceptions,
// bad operations, marshal errors — is returned to the caller unchanged.
func DefaultRetryOn(err error) bool {
	return IsCommFailure(err) || IsSystemException(err, ExObjectNotExist) || IsAdmissionShed(err)
}

// Caller is the unified resilient-call engine: one implementation of the
// resolve → invoke → on-failure → re-resolve → backoff → replay loop that
// every layer above the ORB used to hand-roll separately (ft.Proxy,
// ft.RequestProxy, naming federation hop-following, rosen.Manager). It
// also follows budget-free redirects (LOCATION_FORWARD and, via the
// Redirect hook, naming-federation continuations) bounded by MaxHops.
//
// A Caller is safe for concurrent use; the current target reference is the
// only mutable state.
type Caller struct {
	// ORB performs the transport invocations.
	ORB *ORB
	// Resolve obtains a (fresh) target reference; used when the Caller is
	// unbound and, by default, to recover after retryable failures.
	Resolve func(ctx context.Context) (ObjectRef, error)
	// Recover maps a dead reference to a replacement before a replay.
	// When nil, Resolve is used; when that is nil too, the dead reference
	// is retried as-is (pure retry).
	Recover func(ctx context.Context, dead ObjectRef, cause error) (ObjectRef, error)
	// Redirect classifies err as a budget-free redirect and returns the
	// new target. When nil, only *ForwardError (LOCATION_FORWARD) counts.
	Redirect func(err error) (ObjectRef, bool)
	// RetryOn classifies retryable failures (default DefaultRetryOn).
	RetryOn func(error) bool
	// OnRetry is invoked before each replay round (1-based), after the
	// recovery for that round succeeded. Layers hang their replay
	// counters here.
	OnRetry func(round int, cause error)
	// Opts carry the per-call deadline, retry budget and backoff.
	Opts CallOptions
	// MaxHops bounds redirect chains (default 8).
	MaxHops int

	mu    sync.Mutex
	ref   ObjectRef
	bound bool
}

// Ref returns the current target reference (zero when unbound).
func (c *Caller) Ref() ObjectRef {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ref
}

// SetRef binds the caller to ref without resolving.
func (c *Caller) SetRef(ref ObjectRef) {
	c.mu.Lock()
	c.ref = ref
	c.bound = !ref.IsNil()
	c.mu.Unlock()
}

// Bind returns the current reference, resolving first if unbound.
func (c *Caller) Bind(ctx context.Context) (ObjectRef, error) {
	c.mu.Lock()
	if c.bound {
		ref := c.ref
		c.mu.Unlock()
		return ref, nil
	}
	c.mu.Unlock()
	if c.Resolve == nil {
		return ObjectRef{}, &SystemException{Kind: ExObjectNotExist, Detail: "caller has no reference and no resolver"}
	}
	ref, err := c.Resolve(ctx)
	if err != nil {
		return ObjectRef{}, err
	}
	c.SetRef(ref)
	return ref, nil
}

// redirect applies the redirect classifier (ForwardError by default).
func (c *Caller) redirect(err error) (ObjectRef, bool) {
	if c.Redirect != nil {
		return c.Redirect(err)
	}
	var fe *ForwardError
	if errors.As(err, &fe) {
		return fe.Target, true
	}
	return ObjectRef{}, false
}

// recoverRef obtains the replacement reference for a replay round.
func (c *Caller) recoverRef(ctx context.Context, dead ObjectRef, cause error) (ObjectRef, error) {
	if c.Recover != nil {
		return c.Recover(ctx, dead, cause)
	}
	if c.Resolve != nil {
		return c.Resolve(ctx)
	}
	return dead, nil
}

// Do runs one resilient call: attempt is invoked against the current
// reference; redirects are followed without consuming budget; retryable
// failures trigger recover-backoff-replay until the budget is spent. op is
// only used in error reports.
func (c *Caller) Do(ctx context.Context, op string, attempt func(ctx context.Context, ref ObjectRef) error) error {
	ref, err := c.Bind(ctx)
	if err != nil {
		return err
	}
	retryOn := c.RetryOn
	if retryOn == nil {
		if c.Opts.Idempotent {
			retryOn = DefaultRetryOn
		} else {
			// Unknown-outcome failures (COMM_FAILURE) are not replayed
			// for non-idempotent operations; see CallOptions.Idempotent.
			// Admission sheds provably happened before dispatch, so they
			// are replay-safe regardless of idempotency.
			retryOn = func(err error) bool {
				return IsSystemException(err, ExObjectNotExist) || IsAdmissionShed(err)
			}
		}
	}
	maxHops := c.MaxHops
	if maxHops <= 0 {
		maxHops = 8
	}
	hops := 0
	span := obs.SpanFromContext(ctx)
	var last error
	for round := 0; ; {
		err := c.runAttempt(ctx, op, round, ref, attempt)
		if err == nil {
			return nil
		}
		if fwd, ok := c.redirect(err); ok {
			hops++
			if hops > maxHops {
				return &SystemException{Kind: ExTransient, Detail: fmt.Sprintf("%s: too many redirect hops", op)}
			}
			span.AddEvent("redirect", obs.String("op", op), obs.String("addr", fwd.Addr))
			ref = fwd
			continue
		}
		if ctx.Err() != nil || !retryOn(err) {
			return err
		}
		// The failure is retryable: annotate the live span so a failover
		// reads as one linked trace — COMM_FAILURE is the paper's crash
		// signal and gets its own event name.
		if IsCommFailure(err) {
			span.AddEvent("comm_failure",
				obs.String("op", op), obs.String("addr", ref.Addr), obs.String("err", err.Error()))
		} else {
			span.AddEvent("call_failed", obs.String("op", op), obs.String("err", err.Error()))
		}
		last = err
		if round >= c.Opts.RetryBudget {
			return &RetryError{Op: op, Attempts: round, Last: last}
		}
		round++
		c.countRetry()
		if serr := sleepCtx(ctx, c.retryDelay(round, last)); serr != nil {
			return &RetryError{Op: op, Attempts: round, Last: last}
		}
		// Recovery itself may fail transiently — the naming service can be
		// partitioned or mid-restart exactly when we need a fresh reference.
		// A failed recovery consumes budget rounds like a failed call, so a
		// recovery path that heals within the budget still saves the call.
		fresh, rerr := c.recoverRef(ctx, ref, err)
		for rerr != nil {
			c.countRecovery(false)
			span.AddEvent("recovery_failed", obs.String("op", op), obs.String("err", rerr.Error()))
			last = rerr
			if ctx.Err() != nil || round >= c.Opts.RetryBudget {
				return &RetryError{Op: op, Attempts: round, Last: rerr}
			}
			round++
			c.countRetry()
			if serr := sleepCtx(ctx, c.retryDelay(round, last)); serr != nil {
				return &RetryError{Op: op, Attempts: round, Last: last}
			}
			fresh, rerr = c.recoverRef(ctx, ref, err)
		}
		c.countRecovery(true)
		span.AddEvent("recovered", obs.String("op", op), obs.String("addr", fresh.Addr))
		ref = fresh
		c.SetRef(fresh)
		if c.OnRetry != nil {
			c.OnRetry(round, err)
		}
	}
}

// retryDelay is the sleep before replay round n: the engine's backoff
// schedule widened to at least the server's retry-after hint (carried by
// admission-shed failures), so shed callers come back when the server
// said it would have capacity, not sooner.
func (c *Caller) retryDelay(n int, cause error) time.Duration {
	d := c.Opts.Backoff.delay(n)
	if ra := RetryAfterHint(cause); ra > d {
		d = ra
	}
	return d
}

// runAttempt invokes attempt; replay rounds (round > 0) under a traced
// caller get their own "replay" child span so recovered re-invocations
// show as distinct nodes of the same trace.
func (c *Caller) runAttempt(ctx context.Context, op string, round int, ref ObjectRef, attempt func(ctx context.Context, ref ObjectRef) error) error {
	if round == 0 || obs.SpanFromContext(ctx) == nil {
		return attempt(ctx, ref)
	}
	sctx, span := obs.StartSpan(ctx, "replay", obs.String("op", op), obs.Int("round", int64(round)))
	err := attempt(sctx, ref)
	span.EndErr(err)
	return err
}

// countRetry bumps the ORB's replay-round counter.
func (c *Caller) countRetry() {
	if c.ORB != nil {
		c.ORB.counters.retriesAttempted.Add(1)
	}
}

// countRecovery bumps the ORB's recovery outcome counters. Every recover
// step also feeds the recovery-storm anomaly: a burst of them — even
// successful ones — means the process is churning through replicas.
func (c *Caller) countRecovery(ok bool) {
	obs.Signal(obs.AnomalyRecovery)
	if c.ORB == nil {
		return
	}
	if ok {
		c.ORB.counters.recoveriesSucceeded.Add(1)
	} else {
		c.ORB.counters.recoveriesFailed.Add(1)
	}
}

// Invoke is the engine's synchronous convenience: a resilient single-shot
// invocation of op with the caller's options per attempt.
func (c *Caller) Invoke(ctx context.Context, op string, writeArgs func(*cdr.Encoder), readReply func(*cdr.Decoder) error) error {
	return c.Do(ctx, op, func(ctx context.Context, ref ObjectRef) error {
		return c.ORB.invokeOnce(ctx, ref, op, writeArgs, readReply, c.Opts)
	})
}

// Notify forwards a oneway operation to the current reference. Oneways
// carry no reply, so failure detection — and therefore recovery — does not
// apply; the call is best-effort by construction.
func (c *Caller) Notify(ctx context.Context, op string, writeArgs func(*cdr.Encoder)) error {
	ref, err := c.Bind(ctx)
	if err != nil {
		return err
	}
	return c.ORB.Notify(ctx, ref, op, writeArgs)
}
