package orb

import "sync/atomic"

// Stats are cumulative ORB-level counters (monitoring hook for
// production deployments; every counter is updated atomically).
type Stats struct {
	// RequestsSent counts client requests written (including oneways).
	RequestsSent uint64
	// RepliesReceived counts replies matched to pending requests.
	RepliesReceived uint64
	// RequestsServed counts server-side dispatches across all adapters.
	RequestsServed uint64
	// ConnectionsAccepted counts inbound connections across all adapters.
	ConnectionsAccepted uint64
	// ConnectionsDialed counts outbound connections established.
	ConnectionsDialed uint64
	// CancelsSent counts MsgCancelRequest messages written after a call
	// was abandoned (context cancelled or deadline expired).
	CancelsSent uint64
	// CancelsReceived counts MsgCancelRequest messages the server side
	// acted on (the in-flight dispatch's context was cancelled).
	CancelsReceived uint64
	// RequestsShed counts requests rejected by deadline-aware admission:
	// their propagated deadline had already expired before dispatch, so
	// the servant was never invoked.
	RequestsShed uint64
	// InFlight is the number of server-side dispatches currently running
	// across all adapters (a gauge, not a counter).
	InFlight int64
}

// orbCounters is the internal atomic representation.
type orbCounters struct {
	requestsSent        atomic.Uint64
	repliesReceived     atomic.Uint64
	requestsServed      atomic.Uint64
	connectionsAccepted atomic.Uint64
	connectionsDialed   atomic.Uint64
	cancelsSent         atomic.Uint64
	cancelsReceived     atomic.Uint64
	requestsShed        atomic.Uint64
	inFlight            atomic.Int64
}

// Stats returns a snapshot of the ORB's counters.
func (o *ORB) Stats() Stats {
	return Stats{
		RequestsSent:        o.counters.requestsSent.Load(),
		RepliesReceived:     o.counters.repliesReceived.Load(),
		RequestsServed:      o.counters.requestsServed.Load(),
		ConnectionsAccepted: o.counters.connectionsAccepted.Load(),
		ConnectionsDialed:   o.counters.connectionsDialed.Load(),
		CancelsSent:         o.counters.cancelsSent.Load(),
		CancelsReceived:     o.counters.cancelsReceived.Load(),
		RequestsShed:        o.counters.requestsShed.Load(),
		InFlight:            o.counters.inFlight.Load(),
	}
}
