package orb

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
)

// loadSignals are the reactor's per-request instruments, installed by
// ExportStats and read on every dispatch via one atomic pointer load.
type loadSignals struct {
	// queueWait observes admission → dequeue per operation.
	queueWait *obs.HistogramVec
	// service observes dequeue → dispatch-done per operation.
	service *obs.HistogramVec
}

// queueWaitBuckets span 10µs (an uncontended handoff) to ~5s; queue
// waits sit well below the RPC latency floor when the pool is healthy,
// so the latency defaults would collapse the signal into one bucket.
var queueWaitBuckets = obs.ExponentialBuckets(10e-6, 2, 20)

// Stats are cumulative ORB-level counters (monitoring hook for
// production deployments; every counter is updated atomically).
type Stats struct {
	// RequestsSent counts client requests written (including oneways).
	RequestsSent uint64
	// RepliesReceived counts replies matched to pending requests.
	RepliesReceived uint64
	// RequestsServed counts server-side dispatches across all adapters.
	RequestsServed uint64
	// ConnectionsAccepted counts inbound connections across all adapters.
	ConnectionsAccepted uint64
	// ConnectionsDialed counts outbound connections established.
	ConnectionsDialed uint64
	// DialsCoalesced counts getConn calls that joined another caller's
	// in-flight dial instead of racing a duplicate connection (per-address
	// dial singleflight).
	DialsCoalesced uint64
	// FlushesCoalesced counts request writes that rode an already-scheduled
	// flush inside the write-coalescing window instead of paying their own
	// flush syscall (see Options.CoalesceWindow).
	FlushesCoalesced uint64
	// ConnectionsPrewarmed counts connections established ahead of first
	// use by ORB.Prewarm.
	ConnectionsPrewarmed uint64
	// CancelsSent counts MsgCancelRequest messages written after a call
	// was abandoned (context cancelled or deadline expired).
	CancelsSent uint64
	// CancelsReceived counts MsgCancelRequest messages the server side
	// acted on (the in-flight dispatch's context was cancelled).
	CancelsReceived uint64
	// RequestsShed counts requests rejected by deadline-aware admission:
	// their propagated deadline had already expired before dispatch, so
	// the servant was never invoked.
	RequestsShed uint64
	// ServerFlushesCoalesced counts server replies that rode an
	// already-scheduled coalesced flush instead of paying their own flush
	// syscall (see Options.ReplyCoalesceWindow).
	ServerFlushesCoalesced uint64
	// FramesRead counts GIOP frames delivered by server-side reactor read
	// loops across all adapters.
	FramesRead uint64
	// FrameReads counts read syscalls those frames arrived in.
	FrameReads uint64
	// FramesPerRead is FramesRead/FrameReads — the reactor's batching
	// ratio (1.0 means no pipelining benefit; higher means multiple
	// frames drained per syscall).
	FramesPerRead float64
	// OversizeRejected counts inbound frames rejected by the request-body
	// cap (drained and answered with MARSHAL, connection kept).
	OversizeRejected uint64
	// DispatchQueueDepth is the number of admitted requests currently
	// waiting for a dispatch worker (a gauge, not a counter).
	DispatchQueueDepth int
	// RetriesAttempted counts replay rounds entered by the resilient-call
	// engine (Caller), including rounds consumed by failed recoveries.
	RetriesAttempted uint64
	// RecoveriesSucceeded counts recover steps (re-resolve / failover)
	// that produced a replacement reference.
	RecoveriesSucceeded uint64
	// RecoveriesFailed counts recover steps that themselves failed.
	RecoveriesFailed uint64
	// InFlight is the number of server-side dispatches currently running
	// across all adapters (a gauge, not a counter).
	InFlight int64
	// AdmissionShed counts requests rejected by QoS admission control
	// across every class and reason (per-class/reason counts via
	// ORB.AdmissionShed).
	AdmissionShed uint64
	// DegradeMode is the adaptive-degradation mode name at snapshot time.
	DegradeMode string
}

// orbCounters is the internal atomic representation.
type orbCounters struct {
	requestsSent           atomic.Uint64
	repliesReceived        atomic.Uint64
	requestsServed         atomic.Uint64
	connectionsAccepted    atomic.Uint64
	connectionsDialed      atomic.Uint64
	dialsCoalesced         atomic.Uint64
	flushesCoalesced       atomic.Uint64
	connectionsPrewarmed   atomic.Uint64
	cancelsSent            atomic.Uint64
	cancelsReceived        atomic.Uint64
	requestsShed           atomic.Uint64
	serverFlushesCoalesced atomic.Uint64
	framesRead             atomic.Uint64
	frameReads             atomic.Uint64
	oversizeRejected       atomic.Uint64
	retriesAttempted       atomic.Uint64
	recoveriesSucceeded    atomic.Uint64
	recoveriesFailed       atomic.Uint64
	inFlight               atomic.Int64
}

// Stats returns a snapshot of the ORB's counters.
func (o *ORB) Stats() Stats {
	o.mu.Lock()
	queueDepth := 0
	if o.pool != nil {
		queueDepth = o.pool.depth()
	}
	o.mu.Unlock()
	framesRead := o.counters.framesRead.Load()
	frameReads := o.counters.frameReads.Load()
	framesPerRead := 0.0
	if frameReads > 0 {
		framesPerRead = float64(framesRead) / float64(frameReads)
	}
	return Stats{
		RequestsSent:           o.counters.requestsSent.Load(),
		RepliesReceived:        o.counters.repliesReceived.Load(),
		RequestsServed:         o.counters.requestsServed.Load(),
		ConnectionsAccepted:    o.counters.connectionsAccepted.Load(),
		ConnectionsDialed:      o.counters.connectionsDialed.Load(),
		DialsCoalesced:         o.counters.dialsCoalesced.Load(),
		FlushesCoalesced:       o.counters.flushesCoalesced.Load(),
		ConnectionsPrewarmed:   o.counters.connectionsPrewarmed.Load(),
		CancelsSent:            o.counters.cancelsSent.Load(),
		CancelsReceived:        o.counters.cancelsReceived.Load(),
		RequestsShed:           o.counters.requestsShed.Load(),
		ServerFlushesCoalesced: o.counters.serverFlushesCoalesced.Load(),
		FramesRead:             framesRead,
		FrameReads:             frameReads,
		FramesPerRead:          framesPerRead,
		OversizeRejected:       o.counters.oversizeRejected.Load(),
		DispatchQueueDepth:     queueDepth,
		RetriesAttempted:       o.counters.retriesAttempted.Load(),
		RecoveriesSucceeded:    o.counters.recoveriesSucceeded.Load(),
		RecoveriesFailed:       o.counters.recoveriesFailed.Load(),
		InFlight:               o.counters.inFlight.Load(),
		AdmissionShed:          o.admissionShed.total(),
		DegradeMode:            o.DegradeMode().String(),
	}
}

// AdmissionShed returns the count of QoS admission rejections for one
// class and reason (see the Shed* reason constants).
func (o *ORB) AdmissionShed(class Priority, reason string) uint64 {
	return o.admissionShed.get(class, reason)
}

// ExportStats registers every Stats counter with reg as a scrape-time
// metric (orb_*_total counters plus the orb_inflight_requests gauge), so
// a daemon's -obs endpoint surfaces ORB health without sampling loops.
func (o *ORB) ExportStats(reg *obs.Registry) {
	counters := []struct {
		name, help string
		v          *atomic.Uint64
	}{
		{"orb_requests_sent_total", "Client requests written (including oneways).", &o.counters.requestsSent},
		{"orb_replies_received_total", "Replies matched to pending requests.", &o.counters.repliesReceived},
		{"orb_requests_served_total", "Server-side dispatches across all adapters.", &o.counters.requestsServed},
		{"orb_connections_accepted_total", "Inbound connections accepted.", &o.counters.connectionsAccepted},
		{"orb_connections_dialed_total", "Outbound connections established.", &o.counters.connectionsDialed},
		{"orb_dials_coalesced_total", "getConn calls that joined an in-flight dial.", &o.counters.dialsCoalesced},
		{"orb_flushes_coalesced_total", "Request writes that shared a coalesced flush.", &o.counters.flushesCoalesced},
		{"orb_connections_prewarmed_total", "Connections established ahead of first use by Prewarm.", &o.counters.connectionsPrewarmed},
		{"orb_cancels_sent_total", "Wire-level cancels written for abandoned calls.", &o.counters.cancelsSent},
		{"orb_cancels_received_total", "Wire-level cancels acted on by the server side.", &o.counters.cancelsReceived},
		{"orb_requests_shed_total", "Requests rejected by deadline-aware admission.", &o.counters.requestsShed},
		{"orb_server_flushes_coalesced_total", "Server replies that shared a coalesced flush.", &o.counters.serverFlushesCoalesced},
		{"orb_frames_read_total", "GIOP frames delivered by reactor read loops.", &o.counters.framesRead},
		{"orb_frame_reads_total", "Read syscalls those frames arrived in.", &o.counters.frameReads},
		{"orb_oversize_rejected_total", "Inbound frames rejected by the request-body cap.", &o.counters.oversizeRejected},
		{"orb_retries_attempted_total", "Replay rounds entered by the resilient-call engine.", &o.counters.retriesAttempted},
		{"orb_recoveries_succeeded_total", "Recover steps that produced a replacement reference.", &o.counters.recoveriesSucceeded},
		{"orb_recoveries_failed_total", "Recover steps that themselves failed.", &o.counters.recoveriesFailed},
	}
	for _, c := range counters {
		v := c.v
		reg.NewCounterFunc(c.name, c.help, v.Load)
	}
	reg.NewGaugeFunc("orb_inflight_requests", "Server-side dispatches currently running.",
		func() float64 { return float64(o.counters.inFlight.Load()) })
	reg.NewGaugeFunc("orb_dispatch_queue_depth", "Admitted requests waiting for a dispatch worker.",
		func() float64 {
			o.mu.Lock()
			defer o.mu.Unlock()
			if o.pool == nil {
				return 0
			}
			return float64(o.pool.depth())
		})
	reg.NewGaugeFunc("orb_worker_pool_size", "Dispatch workers in the shared pool.",
		func() float64 {
			o.mu.Lock()
			defer o.mu.Unlock()
			if o.pool == nil {
				return 0
			}
			return float64(o.pool.size)
		})
	reg.NewGaugeFunc("orb_worker_pool_busy", "Dispatch workers currently executing a request.",
		func() float64 {
			o.mu.Lock()
			defer o.mu.Unlock()
			if o.pool == nil {
				return 0
			}
			return float64(o.pool.busy.Load())
		})
	reg.NewGaugeFunc("orb_dispatch_queue_capacity", "Dispatch queue slots.",
		func() float64 {
			o.mu.Lock()
			defer o.mu.Unlock()
			if o.pool == nil {
				return 0
			}
			return float64(o.pool.capacity)
		})
	reg.NewMultiGaugeFunc("orb_dispatch_queue_class_depth",
		"Admitted requests waiting for a worker, per priority class.",
		[]string{"class"}, func(emit func(labelValues []string, v float64)) {
			o.mu.Lock()
			pool := o.pool
			o.mu.Unlock()
			if pool == nil {
				return
			}
			for c := Priority(0); c < NumClasses; c++ {
				emit([]string{c.String()}, float64(pool.classDepth(c)))
			}
		})
	reg.NewMultiCounterFunc("orb_admission_shed_total",
		"Requests rejected by QoS admission control, per class and reason.",
		[]string{"class", "reason"}, func(emit func(labelValues []string, v uint64)) {
			for c := Priority(0); c < NumClasses; c++ {
				for r := 0; r < NumShedReasons; r++ {
					emit([]string{c.String(), shedReasonNames[r]}, o.admissionShed[c][r].Load())
				}
			}
		})
	reg.NewGaugeFunc("orb_degrade_mode",
		"Adaptive-degradation mode (0=normal, 1=degraded, 2=critical-only).",
		func() float64 { return float64(o.DegradeMode()) })
	reg.NewGaugeFunc("orb_qos_tenant_buckets", "Tenants tracked by the admission token-bucket table.",
		func() float64 {
			if o.tenants == nil {
				return 0
			}
			return float64(o.tenants.size())
		})
	reg.NewMultiGaugeFunc("orb_connection_inflight_requests",
		"Cancellable requests queued or dispatching, per inbound connection.",
		[]string{"peer"}, o.exportConnInflight)
	// Batch sizes are frame counts, not seconds, so the histogram gets
	// power-of-two count buckets instead of the latency defaults.
	hist := reg.NewHistogramVec("orb_read_batch_frames",
		"Frames delivered per reactor read-loop wakeup.",
		[]float64{1, 2, 4, 8, 16, 32, 64}).With()
	o.batchHist.Store(&hist)
	// The request lifecycle histograms: stamped at admission (the frame
	// batch timestamp), dequeue and dispatch-done by the reactor.
	o.signals.Store(&loadSignals{
		queueWait: reg.NewHistogramVec("orb_request_queue_wait_seconds",
			"Admission to dequeue wait per operation.", queueWaitBuckets, "op"),
		service: reg.NewHistogramVec("orb_request_service_seconds",
			"Dequeue to dispatch-done time per operation.", queueWaitBuckets, "op"),
	})
}

// AttachFlightRecorder wires the black-box recorder into the ORB's
// request paths: the reactor records every finished dispatch and the
// client records every outbound call. Attach once during setup.
func (o *ORB) AttachFlightRecorder(f *obs.FlightRecorder) { o.flight.Store(f) }

// HealthProbe is the ORB's component probe for obs.Health: it degrades
// after shutdown and while the dispatch queue is nearly saturated (≥90%
// of capacity) — the same condition that trips the queue-saturation
// anomaly.
func (o *ORB) HealthProbe() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.shutdown {
		return errors.New("orb shut down")
	}
	if o.pool != nil {
		if d, c := o.pool.depth(), o.pool.capacity; c > 0 && d >= c*9/10 {
			return fmt.Errorf("dispatch queue %d/%d", d, c)
		}
	}
	return nil
}
