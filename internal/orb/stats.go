package orb

import "sync/atomic"

// Stats are cumulative ORB-level counters (monitoring hook for
// production deployments; every counter is updated atomically).
type Stats struct {
	// RequestsSent counts client requests written (including oneways).
	RequestsSent uint64
	// RepliesReceived counts replies matched to pending requests.
	RepliesReceived uint64
	// RequestsServed counts server-side dispatches across all adapters.
	RequestsServed uint64
	// ConnectionsAccepted counts inbound connections across all adapters.
	ConnectionsAccepted uint64
	// ConnectionsDialed counts outbound connections established.
	ConnectionsDialed uint64
}

// orbCounters is the internal atomic representation.
type orbCounters struct {
	requestsSent        atomic.Uint64
	repliesReceived     atomic.Uint64
	requestsServed      atomic.Uint64
	connectionsAccepted atomic.Uint64
	connectionsDialed   atomic.Uint64
}

// Stats returns a snapshot of the ORB's counters.
func (o *ORB) Stats() Stats {
	return Stats{
		RequestsSent:        o.counters.requestsSent.Load(),
		RepliesReceived:     o.counters.repliesReceived.Load(),
		RequestsServed:      o.counters.requestsServed.Load(),
		ConnectionsAccepted: o.counters.connectionsAccepted.Load(),
		ConnectionsDialed:   o.counters.connectionsDialed.Load(),
	}
}
