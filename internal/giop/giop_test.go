package giop

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/cdr"
)

func roundTrip(t *testing.T, in *Message) *Message {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatalf("Write: %v", err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return out
}

func TestRequestRoundTrip(t *testing.T) {
	in := &Message{
		Type:             MsgRequest,
		RequestID:        42,
		ResponseExpected: true,
		ObjectKey:        "poa/worker-3",
		Operation:        "solve",
		Contexts: []ServiceContext{
			{ID: SCVirtualTime, Data: []byte{0, 0, 0, 0, 0, 0, 0, 9}},
			{ID: SCHostName, Data: []byte("node07")},
		},
		Body: []byte{1, 2, 3, 4, 5},
	}
	out := roundTrip(t, in)
	if out.Type != MsgRequest || out.RequestID != 42 || !out.ResponseExpected {
		t.Fatalf("header fields: %+v", out)
	}
	if out.ObjectKey != in.ObjectKey || out.Operation != in.Operation {
		t.Fatalf("key/op: %q %q", out.ObjectKey, out.Operation)
	}
	if len(out.Contexts) != 2 || out.Contexts[0].ID != SCVirtualTime {
		t.Fatalf("contexts: %+v", out.Contexts)
	}
	if !bytes.Equal(out.Body, in.Body) {
		t.Fatalf("body = %v", out.Body)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	for _, st := range []ReplyStatus{ReplyNoException, ReplyUserException, ReplySystemException, ReplyLocationForward} {
		in := &Message{Type: MsgReply, RequestID: 7, ReplyStatus: st, Body: []byte("result")}
		out := roundTrip(t, in)
		if out.ReplyStatus != st || out.RequestID != 7 || !bytes.Equal(out.Body, in.Body) {
			t.Fatalf("status %v: %+v", st, out)
		}
	}
}

func TestEmptyBodyMessages(t *testing.T) {
	for _, typ := range []MsgType{MsgCloseConnection, MsgError} {
		out := roundTrip(t, &Message{Type: typ})
		if out.Type != typ || out.Body != nil {
			t.Fatalf("%v: %+v", typ, out)
		}
	}
}

func TestCancelRequestRoundTrip(t *testing.T) {
	out := roundTrip(t, &Message{Type: MsgCancelRequest, RequestID: 99})
	if out.RequestID != 99 {
		t.Fatalf("cancel id = %d", out.RequestID)
	}
}

func TestLocateRoundTrip(t *testing.T) {
	req := roundTrip(t, &Message{Type: MsgLocateRequest, RequestID: 5, ObjectKey: "k"})
	if req.ObjectKey != "k" {
		t.Fatalf("locate key = %q", req.ObjectKey)
	}
	rep := roundTrip(t, &Message{Type: MsgLocateReply, RequestID: 5, LocateStatus: LocateObjectForward, Body: []byte("ior")})
	if rep.LocateStatus != LocateObjectForward || !bytes.Equal(rep.Body, []byte("ior")) {
		t.Fatalf("locate reply: %+v", rep)
	}
}

func TestBodyIsEightAligned(t *testing.T) {
	// Bodies must decode as independent CDR streams: a float64 written at
	// offset 0 of the body must survive regardless of header field sizes.
	for _, key := range []string{"", "x", "xy", "xyz", "abcd", "abcde"} {
		e := cdr.NewEncoder(16)
		e.PutFloat64(3.25)
		in := &Message{Type: MsgRequest, ObjectKey: key, Operation: "op", Body: e.Bytes()}
		out := roundTrip(t, in)
		d := cdr.NewDecoder(out.Body)
		if got := d.GetFloat64(); got != 3.25 {
			t.Fatalf("key %q: float in body = %v", key, got)
		}
	}
}

func TestBadMagic(t *testing.T) {
	data := []byte("XXXX\x01\x00\x00\x00\x00\x00\x00\x00")
	if _, err := Read(bytes.NewReader(data)); err != ErrBadMagic {
		t.Fatalf("err = %v", err)
	}
}

func TestBadVersion(t *testing.T) {
	data := append([]byte{}, Magic[:]...)
	data = append(data, 99, 0, 0, 0, 0, 0, 0, 0)
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("expected version error")
	}
}

func TestUnknownType(t *testing.T) {
	data := append([]byte{}, Magic[:]...)
	data = append(data, Version, 200, 0, 0, 0, 0, 0, 0)
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("expected type error")
	}
}

func TestOversizedMessageRejected(t *testing.T) {
	data := append([]byte{}, Magic[:]...)
	data = append(data, Version, byte(MsgRequest), 0, 0, 0xff, 0xff, 0xff, 0xff)
	if _, err := Read(bytes.NewReader(data)); err != ErrTooBig {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	if _, err := Read(bytes.NewReader(Magic[:])); err != ErrShortHeader {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Message{Type: MsgRequest, ObjectKey: "k", Operation: "op"}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-2]
	if _, err := Read(bytes.NewReader(data)); err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v", err)
	}
}

func TestEOFAtMessageBoundaryIsCleanEOF(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("err = %v", err)
	}
}

func TestMultipleMessagesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	for i := uint32(0); i < 10; i++ {
		if err := Write(&buf, &Message{Type: MsgRequest, RequestID: i, ObjectKey: "k", Operation: "op"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint32(0); i < 10; i++ {
		m, err := Read(&buf)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if m.RequestID != i {
			t.Fatalf("msg %d: id = %d", i, m.RequestID)
		}
	}
	if _, err := Read(&buf); err != io.EOF {
		t.Fatalf("trailing read err = %v", err)
	}
}

func TestSetAndGetContext(t *testing.T) {
	m := &Message{}
	if m.Context(1) != nil {
		t.Fatal("missing context should be nil")
	}
	m.SetContext(1, []byte("a"))
	m.SetContext(2, []byte("b"))
	m.SetContext(1, []byte("c")) // replace
	if string(m.Context(1)) != "c" || string(m.Context(2)) != "b" {
		t.Fatalf("contexts: %+v", m.Contexts)
	}
	if len(m.Contexts) != 2 {
		t.Fatalf("context count = %d", len(m.Contexts))
	}
}

func TestStatusStrings(t *testing.T) {
	if MsgRequest.String() != "Request" || MsgError.String() != "MessageError" {
		t.Fatal("MsgType strings")
	}
	if ReplySystemException.String() != "SYSTEM_EXCEPTION" {
		t.Fatal("ReplyStatus string")
	}
	if MsgType(77).String() == "" || ReplyStatus(77).String() == "" {
		t.Fatal("unknown enum strings must be nonempty")
	}
}

// Property: request messages round trip for arbitrary keys, operations and
// bodies.
func TestQuickRequestRoundTrip(t *testing.T) {
	f := func(id uint32, key, op string, body []byte, resp bool) bool {
		in := &Message{Type: MsgRequest, RequestID: id, ResponseExpected: resp,
			ObjectKey: key, Operation: op, Body: body}
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			return false
		}
		out, err := Read(&buf)
		if err != nil {
			return false
		}
		bodyEqual := bytes.Equal(out.Body, body) || (len(out.Body) == 0 && len(body) == 0)
		return out.RequestID == id && out.ObjectKey == key &&
			out.Operation == op && out.ResponseExpected == resp && bodyEqual
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Read never panics on arbitrary byte streams.
func TestQuickReadNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Read(bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteRequest(b *testing.B) {
	m := &Message{Type: MsgRequest, RequestID: 1, ResponseExpected: true,
		ObjectKey: "poa/worker", Operation: "solve", Body: make([]byte, 256)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Write(io.Discard, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadRequest(b *testing.B) {
	var buf bytes.Buffer
	m := &Message{Type: MsgRequest, RequestID: 1, ResponseExpected: true,
		ObjectKey: "poa/worker", Operation: "solve", Body: make([]byte, 256)}
	if err := Write(&buf, m); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
