// Package giop implements a message protocol modelled on the CORBA General
// Inter-ORB Protocol (GIOP 1.0/1.1): a fixed 12-byte header followed by a
// CDR-encoded message body. Message kinds, reply statuses and service
// contexts follow the GIOP structure closely enough that the runtime layers
// above (ORB, naming, fault tolerance) can be written exactly as the paper
// describes them for omniORB.
package giop

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/cdr"
)

// Magic is the 4-byte message signature ("SGOP" — simple GIOP — to avoid
// claiming interoperability with real GIOP implementations).
var Magic = [4]byte{'S', 'G', 'O', 'P'}

// Version is the protocol version carried in every header.
const Version = 1

// MsgType enumerates protocol message kinds (GIOP MsgType analogue).
type MsgType uint8

// Message kinds.
const (
	MsgRequest MsgType = iota
	MsgReply
	MsgCancelRequest
	MsgLocateRequest
	MsgLocateReply
	MsgCloseConnection
	MsgError
	// MsgFragment continues the body of the preceding fragmented message
	// on the same connection (GIOP 1.1 Fragment analogue).
	MsgFragment
)

func (t MsgType) String() string {
	switch t {
	case MsgRequest:
		return "Request"
	case MsgReply:
		return "Reply"
	case MsgCancelRequest:
		return "CancelRequest"
	case MsgLocateRequest:
		return "LocateRequest"
	case MsgLocateReply:
		return "LocateReply"
	case MsgCloseConnection:
		return "CloseConnection"
	case MsgError:
		return "MessageError"
	case MsgFragment:
		return "Fragment"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// ReplyStatus enumerates the outcome field of a Reply message.
type ReplyStatus uint32

// Reply statuses (GIOP ReplyStatusType analogue).
const (
	ReplyNoException ReplyStatus = iota
	ReplyUserException
	ReplySystemException
	ReplyLocationForward
)

func (s ReplyStatus) String() string {
	switch s {
	case ReplyNoException:
		return "NO_EXCEPTION"
	case ReplyUserException:
		return "USER_EXCEPTION"
	case ReplySystemException:
		return "SYSTEM_EXCEPTION"
	case ReplyLocationForward:
		return "LOCATION_FORWARD"
	default:
		return fmt.Sprintf("ReplyStatus(%d)", uint32(s))
	}
}

// LocateStatus enumerates the outcome field of a LocateReply message.
type LocateStatus uint32

// Locate statuses.
const (
	LocateUnknownObject LocateStatus = iota
	LocateObjectHere
	LocateObjectForward
)

// MaxMessageSize bounds a single protocol message. Larger declared bodies
// abort the connection rather than exhausting memory.
const MaxMessageSize = 64 << 20

// HeaderSize is the fixed encoded header length in bytes.
const HeaderSize = 12

// Errors surfaced by the message layer.
var (
	ErrBadMagic    = errors.New("giop: bad magic")
	ErrBadVersion  = errors.New("giop: unsupported version")
	ErrTooBig      = errors.New("giop: message exceeds MaxMessageSize")
	ErrShortHeader = errors.New("giop: truncated header")
)

// ServiceContext is an opaque tagged blob piggy-backed on requests and
// replies (GIOP service context analogue). The fault-tolerance and
// virtual-time layers ride in service contexts.
type ServiceContext struct {
	ID   uint32
	Data []byte
}

// Well-known service context IDs used by this repository.
const (
	// SCVirtualTime carries a cluster virtual-time stamp (uint64 ticks).
	SCVirtualTime uint32 = 0x56544d45 // "VTME"
	// SCHostName carries the simulated host name of the sender.
	SCHostName uint32 = 0x484f5354 // "HOST"
	// SCDeadline carries the caller's remaining per-call deadline as a
	// uint64 nanosecond count, measured at send time. It is encoded as a
	// *remaining duration* rather than an absolute wall-clock instant so
	// the receiver needs no clock synchronization with the sender: the
	// server rebases the remainder onto its own clock on arrival. Servers
	// shed requests whose deadline has already expired before dispatching
	// them, and propagate the (shrinking) remainder into nested calls via
	// the request context.
	SCDeadline uint32 = 0x444c4e45 // "DLNE"
	// SCTrace carries a distributed-tracing context: 16-byte trace id,
	// 8-byte parent span id and one flag byte (bit 0 = sampled). See
	// internal/obs for the codec. Peers that predate tracing relay the
	// context untouched — unknown service-context IDs are preserved
	// verbatim through encode/decode.
	SCTrace uint32 = 0x54524143 // "TRAC"
	// SCQoS carries the caller's quality-of-service intent on requests:
	// one priority-class byte (0 critical, 1 normal, 2 batch) followed by
	// the tenant id as raw bytes. Absence means normal class, anonymous
	// tenant — so QoS-unaware clients keep their pre-QoS behaviour and
	// QoS-unaware servers relay the context verbatim like any unknown id.
	SCQoS uint32 = 0x514f5331 // "QOS1"
	// SCRetryAfter rides on admission-rejected replies: a uint64
	// nanosecond hint telling the caller how long to wait before
	// reoffering the request. The resilient-call engine folds it into its
	// backoff schedule, so shed traffic spreads out instead of hammering
	// an overloaded adapter.
	SCRetryAfter uint32 = 0x52545259 // "RTRY"
)

// EncodeDeadline renders a remaining-duration deadline for SCDeadline.
// Non-positive durations encode as an already-expired deadline (zero).
func EncodeDeadline(remaining time.Duration) []byte {
	if remaining < 0 {
		remaining = 0
	}
	e := cdr.NewEncoder(8)
	e.PutUint64(uint64(remaining))
	return e.Bytes()
}

// DecodeDeadline parses an SCDeadline payload. ok is false when data is
// absent or malformed (callers then treat the request as unbounded).
func DecodeDeadline(data []byte) (remaining time.Duration, ok bool) {
	if len(data) == 0 {
		return 0, false
	}
	d := cdr.NewDecoder(data)
	ns := d.GetUint64()
	if d.Err() != nil || ns > uint64(1<<62) {
		return 0, false
	}
	return time.Duration(ns), true
}

// EncodeQoS renders an SCQoS payload: the priority-class byte followed by
// the tenant id verbatim. The layout is deliberately trivial — one
// allocation, no CDR framing — because it is attached on the client hot
// path of every prioritized call.
func EncodeQoS(class uint8, tenant string) []byte {
	data := make([]byte, 1+len(tenant))
	data[0] = class
	copy(data[1:], tenant)
	return data
}

// DecodeQoS parses an SCQoS payload. ok is false when the context is
// absent; callers then fall back to normal class and anonymous tenant.
// The tenant string aliases nothing — it is copied out of the (pooled)
// frame buffer, since admission bookkeeping outlives the request message.
func DecodeQoS(data []byte) (class uint8, tenant string, ok bool) {
	if len(data) == 0 {
		return 0, "", false
	}
	return data[0], string(data[1:]), true
}

// EncodeRetryAfter renders an SCRetryAfter payload (nanoseconds).
func EncodeRetryAfter(d time.Duration) []byte {
	if d < 0 {
		d = 0
	}
	e := cdr.NewEncoder(8)
	e.PutUint64(uint64(d))
	return e.Bytes()
}

// DecodeRetryAfter parses an SCRetryAfter payload. ok is false when data
// is absent or malformed (callers then back off on their own schedule).
func DecodeRetryAfter(data []byte) (d time.Duration, ok bool) {
	if len(data) == 0 {
		return 0, false
	}
	dec := cdr.NewDecoder(data)
	ns := dec.GetUint64()
	if dec.Err() != nil || ns > uint64(1<<62) {
		return 0, false
	}
	return time.Duration(ns), true
}

// Message is a fully parsed protocol message. Exactly the fields relevant
// to its Type are populated.
type Message struct {
	Type MsgType

	// Request / Reply / Locate fields.
	RequestID uint32

	// Request fields.
	ResponseExpected bool
	ObjectKey        string
	Operation        string

	// Reply fields.
	ReplyStatus ReplyStatus

	// LocateReply fields.
	LocateStatus LocateStatus

	// Request and Reply carry service contexts.
	Contexts []ServiceContext

	// Body is the CDR-encoded operation arguments or results.
	Body []byte

	// Received is when the FrameReader delivered this message (one clock
	// read per batch, shared by every message in it). It is the
	// admission stamp the reactor's queue-wait measurement starts from;
	// zero for locally built messages.
	Received time.Time

	// buf is the refcounted read buffer Body aliases when this message
	// was produced by a FrameReader; Release drops the reference.
	buf *frameBuf
}

// Context returns the data of the first service context with the given id,
// or nil if absent.
func (m *Message) Context(id uint32) []byte {
	for _, c := range m.Contexts {
		if c.ID == id {
			return c.Data
		}
	}
	return nil
}

// SetContext replaces or appends the service context with the given id.
func (m *Message) SetContext(id uint32, data []byte) {
	for i := range m.Contexts {
		if m.Contexts[i].ID == id {
			m.Contexts[i].Data = data
			return
		}
	}
	m.Contexts = append(m.Contexts, ServiceContext{ID: id, Data: data})
}

func putContexts(e *cdr.Encoder, ctxs []ServiceContext) {
	e.PutUint32(uint32(len(ctxs)))
	for _, c := range ctxs {
		e.PutUint32(c.ID)
		e.PutBytes(c.Data)
	}
}

// getContexts decodes a service-context list. IDs are opaque here:
// unknown contexts are preserved verbatim so they survive a round trip
// through a peer that does not understand them (forward compatibility
// for SCTrace and future contexts). A count beyond the sanity bound is a
// hard decode error — silently dropping the list would leave the decoder
// misaligned and corrupt every field after it.
func getContexts(d *cdr.Decoder) ([]ServiceContext, error) {
	return getContextsIn(d, nil)
}

// getContextsIn is getContexts appending into dst (retained capacity from
// a pooled Message), so steady-state decode does not allocate the list.
func getContextsIn(d *cdr.Decoder, dst []ServiceContext) ([]ServiceContext, error) {
	n := d.GetUint32()
	if n > 1024 { // sanity bound; contexts are small and few
		return nil, fmt.Errorf("giop: service context count %d exceeds limit", n)
	}
	if n == 0 {
		return dst, d.Err()
	}
	if dst == nil {
		dst = make([]ServiceContext, 0, n)
	}
	for i := uint32(0); i < n; i++ {
		id := d.GetUint32()
		data := d.GetBytes()
		if err := d.Err(); err != nil {
			return dst, err
		}
		dst = append(dst, ServiceContext{ID: id, Data: data})
	}
	return dst, nil
}

// encodeBody renders the type-specific portion of m (everything after the
// fixed header).
func (m *Message) encodeBody() []byte {
	e := cdr.NewEncoder(64 + len(m.Body))
	m.encodeBodyInto(e)
	return e.Bytes()
}

// encodeBodyInto renders the type-specific portion of m into e, so Write
// can ride a pooled encoder instead of allocating per message.
func (m *Message) encodeBodyInto(e *cdr.Encoder) {
	switch m.Type {
	case MsgRequest:
		putContexts(e, m.Contexts)
		e.PutUint32(m.RequestID)
		e.PutBool(m.ResponseExpected)
		e.PutString(m.ObjectKey)
		e.PutString(m.Operation)
		e.PutRaw(alignPad(e.Len()))
		e.PutRaw(m.Body)
	case MsgReply:
		putContexts(e, m.Contexts)
		e.PutUint32(m.RequestID)
		e.PutUint32(uint32(m.ReplyStatus))
		e.PutRaw(alignPad(e.Len()))
		e.PutRaw(m.Body)
	case MsgCancelRequest:
		e.PutUint32(m.RequestID)
	case MsgLocateRequest:
		e.PutUint32(m.RequestID)
		e.PutString(m.ObjectKey)
	case MsgLocateReply:
		e.PutUint32(m.RequestID)
		e.PutUint32(uint32(m.LocateStatus))
		e.PutRaw(alignPad(e.Len()))
		e.PutRaw(m.Body)
	case MsgCloseConnection, MsgError:
		// no body
	}
}

// alignPad returns the zero padding needed to bring off to an 8-byte
// boundary, so that a message Body always starts 8-aligned and can be
// decoded as an independent CDR stream.
func alignPad(off int) []byte {
	pad := (8 - off%8) % 8
	return make([]byte, pad)
}

// decodeBody parses the type-specific portion into m.
func (m *Message) decodeBody(data []byte) error {
	return m.decodeBodyIn(data, nil)
}

// getString reads a string, interning it when it is non-nil so the
// request hot path reuses one canonical string per object key/operation
// instead of allocating a fresh copy per frame.
func getString(d *cdr.Decoder, it *Interner) string {
	if it == nil {
		return d.GetString()
	}
	return it.Intern(d.GetStringBytes())
}

// decodeBodyIn is decodeBody with an optional string Interner; pooled
// messages additionally reuse their retained Contexts capacity.
func (m *Message) decodeBodyIn(data []byte, it *Interner) error {
	d := cdr.AcquireDecoder(data)
	defer d.Release()
	consumeBody := func() {
		// Skip alignment padding; the remainder is the operation body. The
		// body aliases the read buffer rather than copying it — safe
		// because the buffer is either never reused (Read) or refcounted
		// until every message aliasing it is released (FrameReader).
		off := len(data) - d.Remaining()
		pad := (8 - off%8) % 8
		if d.Remaining() >= pad {
			m.Body = data[off+pad:]
		}
	}
	switch m.Type {
	case MsgRequest:
		var err error
		if m.Contexts, err = getContextsIn(d, m.Contexts); err != nil {
			return err
		}
		m.RequestID = d.GetUint32()
		m.ResponseExpected = d.GetBool()
		m.ObjectKey = getString(d, it)
		m.Operation = getString(d, it)
		if err := d.Err(); err != nil {
			return err
		}
		consumeBody()
	case MsgReply:
		var err error
		if m.Contexts, err = getContextsIn(d, m.Contexts); err != nil {
			return err
		}
		m.RequestID = d.GetUint32()
		m.ReplyStatus = ReplyStatus(d.GetUint32())
		if err := d.Err(); err != nil {
			return err
		}
		consumeBody()
	case MsgCancelRequest:
		m.RequestID = d.GetUint32()
	case MsgLocateRequest:
		m.RequestID = d.GetUint32()
		m.ObjectKey = getString(d, it)
	case MsgLocateReply:
		m.RequestID = d.GetUint32()
		m.LocateStatus = LocateStatus(d.GetUint32())
		if err := d.Err(); err != nil {
			return err
		}
		consumeBody()
	case MsgCloseConnection, MsgError:
		// no body
	}
	return d.Err()
}

// flagMoreFragments in the header flags byte marks a message whose body
// continues in subsequent MsgFragment messages on the same stream.
const flagMoreFragments = 0x01

// FragmentSize is the body size above which Write splits a message into
// an initial fragment plus MsgFragment continuations. Large solver states
// and checkpoints thus never require a single huge buffer on the wire.
// It is a variable so tests can exercise fragmentation with small bodies.
var FragmentSize = 4 << 20

// writeBufPool recycles header+body scratch buffers across writeOne
// calls. Oversized buffers (large checkpoint fragments) are dropped on
// release so the pool retains only call-sized scratch.
var writeBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

const writeBufRetain = 1 << 20

// writeOne emits one raw protocol message as a single w.Write of header
// plus body, assembled in a pooled scratch buffer (w copies the bytes
// synchronously, so the scratch is safe to recycle on return).
func writeOne(w io.Writer, typ MsgType, flags byte, body []byte) error {
	bp := writeBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = append(buf, Magic[:]...)
	buf = append(buf, Version, byte(typ), flags, 0)
	n := uint32(len(body))
	buf = append(buf, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	buf = append(buf, body...)
	_, err := w.Write(buf)
	if cap(buf) <= writeBufRetain {
		*bp = buf[:0]
		writeBufPool.Put(bp)
	}
	return err
}

// Write encodes m to w, fragmenting bodies larger than FragmentSize.
// Callers multiplexing a connection must serialize whole Write calls (a
// fragment train may not interleave with other messages).
func Write(w io.Writer, m *Message) error {
	e := cdr.AcquireEncoder()
	defer e.Release()
	m.encodeBodyInto(e)
	body := e.Bytes()
	if len(body) > MaxMessageSize {
		return ErrTooBig
	}
	frag := FragmentSize
	if frag < HeaderSize {
		frag = HeaderSize
	}
	if len(body) <= frag {
		return writeOne(w, m.Type, 0, body)
	}
	chunk := body[:frag]
	rest := body[frag:]
	if err := writeOne(w, m.Type, flagMoreFragments, chunk); err != nil {
		return err
	}
	for len(rest) > 0 {
		n := frag
		if n > len(rest) {
			n = len(rest)
		}
		flags := byte(0)
		if n < len(rest) {
			flags = flagMoreFragments
		}
		if err := writeOne(w, MsgFragment, flags, rest[:n]); err != nil {
			return err
		}
		rest = rest[n:]
	}
	return nil
}

// ErrOrphanFragment is reported when a MsgFragment arrives without a
// preceding fragmented message.
var ErrOrphanFragment = errors.New("giop: fragment without initial message")

// hdrPool recycles header scratch arrays: reading into a stack array
// through the io.Reader interface forces it to the heap, so readOne
// borrows a pooled one instead of allocating per message.
var hdrPool = sync.Pool{New: func() any { return new([HeaderSize]byte) }}

// readOne reads one raw protocol message: its type, flags and body.
func readOne(r io.Reader) (MsgType, byte, []byte, error) {
	hp := hdrPool.Get().(*[HeaderSize]byte)
	defer hdrPool.Put(hp)
	hdr := hp[:]
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, 0, nil, ErrShortHeader
		}
		return 0, 0, nil, err
	}
	if [4]byte(hdr[:4]) != Magic {
		return 0, 0, nil, ErrBadMagic
	}
	if hdr[4] != Version {
		return 0, 0, nil, fmt.Errorf("%w: %d", ErrBadVersion, hdr[4])
	}
	typ := MsgType(hdr[5])
	if typ > MsgFragment {
		return 0, 0, nil, fmt.Errorf("giop: unknown message type %d", hdr[5])
	}
	n := uint32(hdr[8])<<24 | uint32(hdr[9])<<16 | uint32(hdr[10])<<8 | uint32(hdr[11])
	if n > MaxMessageSize {
		return 0, 0, nil, ErrTooBig
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, nil, err
	}
	return typ, hdr[6], body, nil
}

// Read decodes the next protocol message from r, transparently
// reassembling fragment trains.
func Read(r io.Reader) (*Message, error) {
	typ, flags, body, err := readOne(r)
	if err != nil {
		return nil, err
	}
	if typ == MsgFragment {
		return nil, ErrOrphanFragment
	}
	for flags&flagMoreFragments != 0 {
		ft, fFlags, chunk, err := readOne(r)
		if err != nil {
			return nil, err
		}
		if ft != MsgFragment {
			return nil, fmt.Errorf("giop: expected Fragment continuation, got %v", ft)
		}
		if len(body)+len(chunk) > MaxMessageSize {
			return nil, ErrTooBig
		}
		body = append(body, chunk...)
		flags = fFlags
	}
	m := &Message{Type: typ}
	if err := m.decodeBody(body); err != nil {
		return nil, fmt.Errorf("giop: decoding %v: %w", m.Type, err)
	}
	return m, nil
}
