package giop

import (
	"bytes"
	"testing"
	"time"
)

// roundTripMessage encodes m and decodes it back.
func roundTripMessage(t *testing.T, m *Message) *Message {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatalf("write: %v", err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return out
}

func TestQoSRoundTrip(t *testing.T) {
	cases := []struct {
		class  uint8
		tenant string
	}{
		{0, ""},
		{1, "acme"},
		{2, "tenant-with-a-long-id-0123456789"},
	}
	for _, c := range cases {
		class, tenant, ok := DecodeQoS(EncodeQoS(c.class, c.tenant))
		if !ok || class != c.class || tenant != c.tenant {
			t.Fatalf("DecodeQoS(EncodeQoS(%d, %q)) = (%d, %q, %v)", c.class, c.tenant, class, tenant, ok)
		}
	}
	if _, _, ok := DecodeQoS(nil); ok {
		t.Fatal("DecodeQoS(nil) reported ok")
	}
}

// TestQoSDecodeDoesNotAlias checks the decoded tenant survives the
// payload buffer being recycled — admission bookkeeping (token buckets)
// retains tenant strings past the request message's pooled lifetime.
func TestQoSDecodeDoesNotAlias(t *testing.T) {
	data := EncodeQoS(2, "tenant-a")
	_, tenant, _ := DecodeQoS(data)
	for i := range data {
		data[i] = 0xFF
	}
	if tenant != "tenant-a" {
		t.Fatalf("tenant aliases payload buffer: %q", tenant)
	}
}

func TestRetryAfterRoundTrip(t *testing.T) {
	for _, d := range []time.Duration{0, time.Millisecond, 2500 * time.Millisecond} {
		got, ok := DecodeRetryAfter(EncodeRetryAfter(d))
		if !ok || got != d {
			t.Fatalf("DecodeRetryAfter(EncodeRetryAfter(%v)) = (%v, %v)", d, got, ok)
		}
	}
	if got, ok := DecodeRetryAfter(EncodeRetryAfter(-time.Second)); !ok || got != 0 {
		t.Fatalf("negative retry-after should clamp to zero, got (%v, %v)", got, ok)
	}
	if _, ok := DecodeRetryAfter(nil); ok {
		t.Fatal("DecodeRetryAfter(nil) reported ok")
	}
	if _, ok := DecodeRetryAfter([]byte{1, 2}); ok {
		t.Fatal("DecodeRetryAfter(short) reported ok")
	}
}

// TestQoSContextRelayedVerbatim pins the forward-compatibility story: a
// QoS-unaware peer must relay SCQoS/SCRetryAfter contexts untouched.
func TestQoSContextRelayedVerbatim(t *testing.T) {
	m := &Message{
		Type:             MsgRequest,
		RequestID:        7,
		ResponseExpected: true,
		ObjectKey:        "k",
		Operation:        "op",
		Contexts: []ServiceContext{
			{ID: SCQoS, Data: EncodeQoS(2, "acme")},
			{ID: SCRetryAfter, Data: EncodeRetryAfter(time.Second)},
		},
	}
	out := roundTripMessage(t, m)
	if len(out.Contexts) != 2 || out.Contexts[0].ID != SCQoS || out.Contexts[1].ID != SCRetryAfter {
		t.Fatalf("contexts not preserved: %+v", out.Contexts)
	}
	class, tenant, ok := DecodeQoS(out.Context(SCQoS))
	if !ok || class != 2 || tenant != "acme" {
		t.Fatalf("SCQoS mangled in transit: (%d, %q, %v)", class, tenant, ok)
	}
}
