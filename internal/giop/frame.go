package giop

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the server-side reactor's ingest path: a FrameReader
// that drains as many protocol frames as one read syscall delivers into a
// pooled, refcounted buffer, and hands out pooled Messages whose bodies
// alias that buffer instead of copying it. Together with the Message pool
// (AcquireMessage/Release) and the string Interner this takes the steady
// state of oneway dispatch to zero allocations per frame.

// defaultFrameBufSize is the read-window size: large enough that a burst of
// call-sized frames arrives in one syscall, small enough to pool freely.
const defaultFrameBufSize = 64 << 10

// frameBuf is a refcounted read buffer. The FrameReader holds one
// reference while it parses out of the buffer; every Message whose body
// aliases the buffer holds another. The buffer returns to the pool when
// the last reference is released, which is what makes body aliasing safe
// even though dispatches complete out of order.
type frameBuf struct {
	data []byte
	refs atomic.Int32
}

var frameBufPool = sync.Pool{
	New: func() any { return &frameBuf{data: make([]byte, defaultFrameBufSize)} },
}

func newFrameBuf(size int) *frameBuf {
	b := frameBufPool.Get().(*frameBuf)
	if len(b.data) < size {
		b.data = make([]byte, size)
	}
	b.refs.Store(1)
	return b
}

func (b *frameBuf) ref() { b.refs.Add(1) }

func (b *frameBuf) unref() {
	if b.refs.Add(-1) == 0 {
		frameBufPool.Put(b)
	}
}

// msgPool recycles Message structs across the request/reply hot paths.
var msgPool = sync.Pool{New: func() any { return new(Message) }}

// AcquireMessage returns a zeroed pooled Message. Pair with Release once
// the message (and anything aliasing its Body) is no longer referenced.
// Messages built with plain struct literals remain fully supported; the
// pool is an optimization for the hot paths.
func AcquireMessage() *Message {
	return msgPool.Get().(*Message)
}

// Release returns m to the message pool, dropping its reference on the
// read buffer its Body may alias. m must not be used afterwards, and no
// slice reachable from it (Body, context Data) may be read. Calling
// Release on a message that was not acquired from the pool is safe as
// long as the caller owns it exclusively.
func (m *Message) Release() {
	if m == nil {
		return
	}
	b := m.buf
	for i := range m.Contexts {
		m.Contexts[i] = ServiceContext{}
	}
	*m = Message{Contexts: m.Contexts[:0]}
	msgPool.Put(m)
	if b != nil {
		b.unref()
	}
}

// Interner deduplicates the small, highly repetitive strings of the
// request path (object keys, operation names) so steady-state decoding
// does not allocate a fresh string per frame. The map lookup on a []byte
// key compiles to a no-allocation probe. Entries are capped: a peer
// sending unbounded distinct names degrades to plain allocation, never to
// unbounded memory. An Interner is not safe for concurrent use; each
// FrameReader owns one.
type Interner struct {
	m map[string]string
}

const (
	maxInternEntries = 4096
	maxInternLen     = 256
)

// NewInterner returns an empty Interner.
func NewInterner() *Interner {
	return &Interner{m: make(map[string]string, 16)}
}

// Intern returns the canonical string for b, remembering it if new.
func (it *Interner) Intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := it.m[string(b)]; ok { // no-alloc lookup
		return s
	}
	s := string(b)
	if len(s) <= maxInternLen && len(it.m) < maxInternEntries {
		it.m[s] = s
	}
	return s
}

// TooBigError reports a request frame whose header-declared body exceeds
// the reader's configured cap. The oversized payload has been drained from
// the stream (bounded reads, never a matching allocation), so the
// connection remains usable: servers reply with a MARSHAL system
// exception instead of closing. Identity fields are populated when the
// request prefix could be parsed.
type TooBigError struct {
	RequestID        uint32
	ResponseExpected bool
	ObjectKey        string
	Operation        string
	Declared         int
	Limit            int
}

func (e *TooBigError) Error() string {
	return fmt.Sprintf("giop: request %s.%s declares %d byte body, limit %d",
		e.ObjectKey, e.Operation, e.Declared, e.Limit)
}

// errWouldBlock signals that completing the next frame needs a read that
// may block; batch assembly stops there rather than stalling parsed work.
var errWouldBlock = errors.New("giop: would block")

// FrameReaderConfig tunes a FrameReader.
type FrameReaderConfig struct {
	// MaxBody caps the header-declared body size of a single message
	// (and of a reassembled fragment train). Zero means MaxMessageSize.
	// Oversized requests surface as *TooBigError after being drained.
	MaxBody int
	// FrameTimeout bounds how long a frame that has started arriving may
	// take to finish (slow-loris guard). Zero disables the guard. The
	// guard never applies to an idle connection waiting at a frame
	// boundary.
	FrameTimeout time.Duration
	// SetReadDeadline arms and clears the transport read deadline for the
	// slow-loris guard (net.Conn.SetReadDeadline). Nil disables the guard.
	SetReadDeadline func(time.Time) error
	// BufSize overrides the read-window size. Zero means 64 KiB.
	BufSize int
}

// FrameReader scans a buffered read window and parses every complete
// frame it holds, so one syscall can yield a whole batch of messages.
// Bodies alias the refcounted window buffer; callers release each message
// (Message.Release) when its dispatch completes. A FrameReader is not
// safe for concurrent use.
type FrameReader struct {
	r   io.Reader
	cfg FrameReaderConfig

	buf        *frameBuf
	start, end int

	it         *Interner
	guardArmed bool

	err error // sticky fatal error, returned forever after

	reads  uint64 // transport reads issued
	frames uint64 // frames parsed
}

// NewFrameReader wraps r. See FrameReaderConfig for the knobs.
func NewFrameReader(r io.Reader, cfg FrameReaderConfig) *FrameReader {
	if cfg.MaxBody <= 0 || cfg.MaxBody > MaxMessageSize {
		cfg.MaxBody = MaxMessageSize
	}
	size := cfg.BufSize
	if size <= 0 {
		size = defaultFrameBufSize
	}
	return &FrameReader{
		r:   r,
		cfg: cfg,
		buf: newFrameBuf(size),
		it:  NewInterner(),
	}
}

// Stats reports cumulative transport reads and parsed frames; their ratio
// is the frames-per-read amortization the reactor achieves.
func (fr *FrameReader) Stats() (reads, frames uint64) { return fr.reads, fr.frames }

func (fr *FrameReader) avail() int { return fr.end - fr.start }

// armGuard starts the slow-loris clock: a frame has started arriving and
// must complete within FrameTimeout.
func (fr *FrameReader) armGuard() {
	if fr.guardArmed || fr.cfg.FrameTimeout <= 0 || fr.cfg.SetReadDeadline == nil {
		return
	}
	fr.cfg.SetReadDeadline(time.Now().Add(fr.cfg.FrameTimeout))
	fr.guardArmed = true
}

// disarmGuard clears the deadline once the window sits at a frame
// boundary again, so idle connections may idle forever.
func (fr *FrameReader) disarmGuard() {
	if !fr.guardArmed {
		return
	}
	fr.cfg.SetReadDeadline(time.Time{})
	fr.guardArmed = false
}

// ensureSpace makes room to buffer need more bytes, swapping to a fresh
// pooled buffer when parsed-out regions are still pinned by undelivered
// messages (the window never rewinds over referenced bytes).
func (fr *FrameReader) ensureSpace(need int) {
	if len(fr.buf.data)-fr.end >= need {
		return
	}
	if fr.start == fr.end && fr.buf.refs.Load() == 1 {
		// Nothing buffered and nobody aliases the buffer: rewind in place.
		fr.start, fr.end = 0, 0
		if len(fr.buf.data) >= need {
			return
		}
	}
	size := len(fr.buf.data)
	if fr.avail()+need > size {
		size = fr.avail() + need
	}
	nb := newFrameBuf(size)
	copy(nb.data, fr.buf.data[fr.start:fr.end])
	fr.end -= fr.start
	fr.start = 0
	fr.buf.unref()
	fr.buf = nb
}

// fill blocks until at least min bytes are buffered.
func (fr *FrameReader) fill(min int) error {
	fr.ensureSpace(min - fr.avail())
	for fr.avail() < min {
		if fr.avail() > 0 {
			fr.armGuard()
		}
		k, err := fr.r.Read(fr.buf.data[fr.end:])
		if k > 0 {
			fr.reads++
			fr.end += k
		}
		if err != nil {
			if k == 0 {
				return err
			}
			// Deliver what arrived; the error resurfaces on the next read.
		}
	}
	return nil
}

// header validates the 12-byte header at the window start and returns its
// fields. The header is not consumed.
func (fr *FrameReader) header() (typ MsgType, flags byte, n int, err error) {
	h := fr.buf.data[fr.start : fr.start+HeaderSize]
	if [4]byte(h[:4]) != Magic {
		return 0, 0, 0, ErrBadMagic
	}
	if h[4] != Version {
		return 0, 0, 0, fmt.Errorf("%w: %d", ErrBadVersion, h[4])
	}
	typ = MsgType(h[5])
	if typ > MsgFragment {
		return 0, 0, 0, fmt.Errorf("giop: unknown message type %d", h[5])
	}
	size := uint32(h[8])<<24 | uint32(h[9])<<16 | uint32(h[10])<<8 | uint32(h[11])
	if size > MaxMessageSize {
		return 0, 0, 0, ErrTooBig
	}
	return typ, h[6], int(size), nil
}

// ReadBatch parses frames into dst, blocking only for the first one:
// subsequent slots are filled from bytes already buffered, so the batch
// size tracks what the transport actually delivered per syscall. It
// returns the number of messages stored. Fatal errors are sticky;
// *TooBigError is not fatal (the offending frame was drained) and is
// returned on the call after any already-parsed frames are delivered.
func (fr *FrameReader) ReadBatch(dst []*Message) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if fr.err != nil {
		err := fr.err
		if _, ok := err.(*TooBigError); ok {
			fr.err = nil // drained and reported: the stream is still good
		}
		return 0, err
	}
	n := 0
	for n < len(dst) {
		m, err := fr.next(n == 0)
		if err == errWouldBlock {
			break
		}
		if err != nil {
			if n == 0 {
				if _, ok := err.(*TooBigError); !ok {
					fr.err = err
				}
				return 0, err
			}
			fr.err = err // deliver parsed frames first, error next call
			break
		}
		dst[n] = m
		n++
	}
	if n > 0 {
		// One clock read stamps the whole batch: the admission timestamp
		// queue-wait measurements start from, cheap enough to be
		// unconditional.
		now := time.Now()
		for i := 0; i < n; i++ {
			dst[i].Received = now
		}
	}
	if fr.avail() == 0 {
		fr.disarmGuard()
	}
	return n, nil
}

// next parses one frame. With block false it never issues a transport
// read, returning errWouldBlock when the buffered bytes do not hold a
// complete frame.
func (fr *FrameReader) next(block bool) (*Message, error) {
	if fr.avail() < HeaderSize {
		if !block {
			return nil, errWouldBlock
		}
		if err := fr.fill(HeaderSize); err != nil {
			if fr.avail() > 0 && (err == io.EOF) {
				return nil, ErrShortHeader
			}
			return nil, err
		}
	}
	typ, flags, n, err := fr.header()
	if err != nil {
		return nil, err
	}
	if typ == MsgFragment {
		return nil, ErrOrphanFragment
	}
	if n > fr.cfg.MaxBody {
		if !block {
			return nil, errWouldBlock
		}
		return nil, fr.drainOversize(typ, flags, n)
	}
	total := HeaderSize + n
	if total > len(fr.buf.data) {
		// Too big for the window: read the body into its own buffer,
		// grown incrementally so a lying header cannot force a giant
		// allocation up front.
		if !block {
			return nil, errWouldBlock
		}
		return fr.readLarge(typ, flags, n)
	}
	if fr.avail() < total {
		if !block {
			return nil, errWouldBlock
		}
		if err := fr.fill(total); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	if flags&flagMoreFragments != 0 {
		if !block {
			return nil, errWouldBlock
		}
		body := fr.buf.data[fr.start+HeaderSize : fr.start+total]
		fr.start += total
		fr.frames++
		return fr.assembleFragments(typ, body)
	}
	body := fr.buf.data[fr.start+HeaderSize : fr.start+total]
	fr.start += total
	fr.frames++
	return fr.deliver(typ, body, fr.buf)
}

// deliver decodes body into a pooled message. When the body aliases a
// window buffer, the message takes a reference on it.
func (fr *FrameReader) deliver(typ MsgType, body []byte, buf *frameBuf) (*Message, error) {
	m := AcquireMessage()
	m.Type = typ
	if err := m.decodeBodyIn(body, fr.it); err != nil {
		m.Release()
		return nil, fmt.Errorf("giop: decoding %v: %w", typ, err)
	}
	if buf != nil {
		buf.ref()
		m.buf = buf
	}
	return m, nil
}

// readLarge reads an n-byte body that exceeds the window, growing the
// destination geometrically as bytes actually arrive.
func (fr *FrameReader) readLarge(typ MsgType, flags byte, n int) (*Message, error) {
	body, err := fr.consumeBody(nil, n)
	if err != nil {
		return nil, err
	}
	fr.frames++
	if flags&flagMoreFragments != 0 {
		return fr.assembleFragments(typ, body)
	}
	return fr.deliver(typ, body, nil)
}

// consumeBody consumes the header at the window start plus its n-byte
// body, appending the body to dst. Buffered bytes are drained first; the
// remainder is read directly, bypassing the window, with the allocation
// growing stepwise from 1 MiB so a lying header never forces a giant
// up-front allocation.
func (fr *FrameReader) consumeBody(dst []byte, n int) ([]byte, error) {
	const step = 1 << 20
	want := len(dst) + n
	if cap(dst) < want {
		c := cap(dst)
		if c < step {
			c = step
		}
		if c > want {
			c = want
		}
		nb := make([]byte, len(dst), c)
		copy(nb, dst)
		dst = nb
	}
	fr.start += HeaderSize
	for n > 0 {
		if k := fr.avail(); k > 0 {
			if k > n {
				k = n
			}
			dst = append(dst, fr.buf.data[fr.start:fr.start+k]...)
			fr.start += k
			n -= k
			continue
		}
		if len(dst) == cap(dst) {
			c := 2 * cap(dst)
			if c > len(dst)+n {
				c = len(dst) + n
			}
			nb := make([]byte, len(dst), c)
			copy(nb, dst)
			dst = nb
		}
		fr.armGuard()
		room := cap(dst) - len(dst)
		if room > n {
			room = n
		}
		k, err := fr.r.Read(dst[len(dst) : len(dst)+room])
		if k > 0 {
			fr.reads++
			dst = dst[:len(dst)+k]
			n -= k
		}
		if err != nil && k == 0 {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return dst, nil
}

// assembleFragments reassembles a fragment train whose initial chunk is
// initial (copied: the result owns its memory). The reassembled body is
// bounded by MaxBody.
func (fr *FrameReader) assembleFragments(typ MsgType, initial []byte) (*Message, error) {
	body := append(make([]byte, 0, 2*len(initial)), initial...)
	for {
		if err := fr.fill(HeaderSize); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		ftyp, fflags, n, err := fr.header()
		if err != nil {
			return nil, err
		}
		if ftyp != MsgFragment {
			return nil, fmt.Errorf("giop: expected Fragment continuation, got %v", ftyp)
		}
		if len(body)+n > fr.cfg.MaxBody {
			if len(body)+n > MaxMessageSize {
				return nil, ErrTooBig
			}
			return nil, fr.drainOversizeTrain(typ, body, fflags, n)
		}
		if body, err = fr.consumeBody(body, n); err != nil {
			return nil, err
		}
		fr.frames++
		if fflags&flagMoreFragments == 0 {
			return fr.deliver(typ, body, nil)
		}
	}
}

// drainOversize handles a frame whose declared body exceeds MaxBody: the
// bytes are read and discarded in window-sized chunks (never a matching
// allocation), and for identifiable requests a *TooBigError carries the
// request identity so the server can answer with a MARSHAL exception
// instead of dropping the connection.
func (fr *FrameReader) drainOversize(typ MsgType, flags byte, n int) error {
	if typ != MsgRequest {
		return ErrTooBig // only requests get the courtesy reply
	}
	// Parse the request prefix (contexts + ids + names) out of the first
	// window-load to learn who to blame.
	prefix := len(fr.buf.data) - HeaderSize
	if prefix > n {
		prefix = n
	}
	if err := fr.fill(HeaderSize + prefix); err != nil {
		return err
	}
	m := AcquireMessage()
	terr := &TooBigError{Declared: n, Limit: fr.cfg.MaxBody}
	if m.decodeBodyIn(fr.buf.data[fr.start+HeaderSize:fr.start+HeaderSize+prefix], fr.it) == nil {
		terr.RequestID = m.RequestID
		terr.ResponseExpected = m.ResponseExpected
		terr.ObjectKey = m.ObjectKey
		terr.Operation = m.Operation
	}
	m.Release()
	fr.start += HeaderSize + prefix
	if err := fr.discard(n - prefix); err != nil {
		return err
	}
	if flags&flagMoreFragments != 0 {
		if err := fr.drainFragmentTail(); err != nil {
			return err
		}
	}
	return terr
}

// drainOversizeTrain handles a fragment train that grew past MaxBody
// mid-assembly: the already-assembled prefix identifies the request, the
// rest of the train is discarded.
func (fr *FrameReader) drainOversizeTrain(typ MsgType, body []byte, flags byte, n int) error {
	terr := &TooBigError{Declared: len(body) + n, Limit: fr.cfg.MaxBody}
	if typ == MsgRequest {
		m := AcquireMessage()
		if m.decodeBodyIn(body, fr.it) == nil {
			terr.RequestID = m.RequestID
			terr.ResponseExpected = m.ResponseExpected
			terr.ObjectKey = m.ObjectKey
			terr.Operation = m.Operation
		}
		m.Release()
	}
	fr.start += HeaderSize
	if err := fr.discard(n); err != nil {
		return err
	}
	if flags&flagMoreFragments != 0 {
		if err := fr.drainFragmentTail(); err != nil {
			return err
		}
	}
	if typ != MsgRequest {
		return ErrTooBig
	}
	return terr
}

// drainFragmentTail discards MsgFragment continuations through the end of
// the train.
func (fr *FrameReader) drainFragmentTail() error {
	for {
		if err := fr.fill(HeaderSize); err != nil {
			return err
		}
		ftyp, fflags, n, err := fr.header()
		if err != nil {
			return err
		}
		if ftyp != MsgFragment {
			return fmt.Errorf("giop: expected Fragment continuation, got %v", ftyp)
		}
		fr.start += HeaderSize
		if err := fr.discard(n); err != nil {
			return err
		}
		if fflags&flagMoreFragments == 0 {
			return nil
		}
	}
}

// discard consumes and drops n bytes, reusing the window as scratch.
func (fr *FrameReader) discard(n int) error {
	for n > 0 {
		if k := fr.avail(); k > 0 {
			if k > n {
				k = n
			}
			fr.start += k
			n -= k
			continue
		}
		fr.armGuard()
		fr.ensureSpace(1)
		room := len(fr.buf.data) - fr.end
		if room > n {
			room = n
		}
		k, err := fr.r.Read(fr.buf.data[fr.end : fr.end+room])
		if k > 0 {
			fr.reads++
			fr.end += k
			fr.start = fr.end // consumed immediately
			n -= k
		}
		if err != nil && k == 0 {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}

// Close releases the reader's buffer reference. Outstanding messages keep
// theirs; the buffer is pooled when the last one releases.
func (fr *FrameReader) Close() {
	if fr.buf != nil {
		fr.buf.unref()
		fr.buf = nil
	}
}
