package giop

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"
	"unsafe"
)

// unsafeStringData exposes a string's backing pointer so tests can assert
// two strings are the same interned allocation, not merely equal.
func unsafeStringData(s string) *byte { return unsafe.StringData(s) }

// encodeStream renders msgs back to back the way they appear on a wire.
func encodeStream(t *testing.T, msgs ...*Message) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	return buf.Bytes()
}

func req(id uint32, op string, body []byte) *Message {
	return &Message{
		Type:             MsgRequest,
		RequestID:        id,
		ResponseExpected: true,
		ObjectKey:        "poa/obj",
		Operation:        op,
		Body:             body,
	}
}

// chunkReader returns its data in fixed-size chunks, one per Read call,
// simulating a transport that delivers several frames per syscall (large
// chunks) or dribbles bytes (chunk 1).
type chunkReader struct {
	data  []byte
	chunk int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.chunk
	if n <= 0 || n > len(r.data) {
		n = len(r.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

func TestFrameReaderBatchesBufferedFrames(t *testing.T) {
	msgs := make([]*Message, 8)
	for i := range msgs {
		msgs[i] = req(uint32(i+1), "echo", []byte{byte(i)})
	}
	stream := encodeStream(t, msgs...)
	fr := NewFrameReader(&chunkReader{data: stream}, FrameReaderConfig{})
	defer fr.Close()

	batch := make([]*Message, 16)
	n, err := fr.ReadBatch(batch)
	if err != nil {
		t.Fatalf("ReadBatch: %v", err)
	}
	if n != 8 {
		t.Fatalf("batch size = %d, want 8 (all buffered frames in one batch)", n)
	}
	for i, m := range batch[:n] {
		if m.RequestID != uint32(i+1) || m.Operation != "echo" || m.ObjectKey != "poa/obj" {
			t.Fatalf("frame %d decoded wrong: %+v", i, m)
		}
		if !bytes.Equal(m.Body, []byte{byte(i)}) {
			t.Fatalf("frame %d body = %v", i, m.Body)
		}
	}
	reads, frames := fr.Stats()
	if reads != 1 || frames != 8 {
		t.Fatalf("stats reads=%d frames=%d, want 1 read carrying 8 frames", reads, frames)
	}
	for _, m := range batch[:n] {
		m.Release()
	}
}

func TestFrameReaderDribbledBytes(t *testing.T) {
	stream := encodeStream(t, req(1, "slow", []byte("abcdefgh")), req(2, "slow", nil))
	fr := NewFrameReader(&chunkReader{data: stream, chunk: 1}, FrameReaderConfig{})
	defer fr.Close()

	var got []uint32
	batch := make([]*Message, 4)
	for {
		n, err := fr.ReadBatch(batch)
		if err != nil {
			if err == io.EOF {
				break
			}
			t.Fatalf("ReadBatch: %v", err)
		}
		for _, m := range batch[:n] {
			got = append(got, m.RequestID)
			m.Release()
		}
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got ids %v, want [1 2]", got)
	}
}

func TestFrameReaderInternsHotStrings(t *testing.T) {
	stream := encodeStream(t, req(1, "echo", nil), req(2, "echo", nil))
	fr := NewFrameReader(&chunkReader{data: stream}, FrameReaderConfig{})
	defer fr.Close()

	batch := make([]*Message, 4)
	n, err := fr.ReadBatch(batch)
	if err != nil || n != 2 {
		t.Fatalf("ReadBatch: n=%d err=%v", n, err)
	}
	// Interned strings are the same allocation, not merely equal.
	if unsafeStringData(batch[0].Operation) != unsafeStringData(batch[1].Operation) {
		t.Fatalf("operation strings not interned")
	}
	if unsafeStringData(batch[0].ObjectKey) != unsafeStringData(batch[1].ObjectKey) {
		t.Fatalf("object key strings not interned")
	}
	batch[0].Release()
	batch[1].Release()
}

func TestFrameReaderFragmentTrain(t *testing.T) {
	old := FragmentSize
	FragmentSize = 64
	defer func() { FragmentSize = old }()

	body := bytes.Repeat([]byte("0123456789abcdef"), 40) // 640 bytes: several fragments
	stream := encodeStream(t, req(7, "bulk", body), req(8, "after", nil))
	FragmentSize = old // only fragment the writes above

	fr := NewFrameReader(&chunkReader{data: stream}, FrameReaderConfig{})
	defer fr.Close()

	var got []*Message
	batch := make([]*Message, 4)
	for len(got) < 2 {
		n, err := fr.ReadBatch(batch)
		if err != nil {
			t.Fatalf("ReadBatch: %v", err)
		}
		got = append(got, batch[:n]...)
	}
	if got[0].RequestID != 7 || !bytes.Equal(got[0].Body, body) {
		t.Fatalf("fragmented message wrong: id=%d len=%d", got[0].RequestID, len(got[0].Body))
	}
	if got[1].RequestID != 8 {
		t.Fatalf("message after train: %+v", got[1])
	}
	for _, m := range got {
		m.Release()
	}
}

func TestFrameReaderLargeBody(t *testing.T) {
	body := bytes.Repeat([]byte{0xAB}, 200<<10) // 200 KiB > 64 KiB window
	stream := encodeStream(t, req(3, "big", body))
	fr := NewFrameReader(&chunkReader{data: stream, chunk: 8 << 10}, FrameReaderConfig{})
	defer fr.Close()

	batch := make([]*Message, 1)
	n, err := fr.ReadBatch(batch)
	if err != nil || n != 1 {
		t.Fatalf("ReadBatch: n=%d err=%v", n, err)
	}
	if !bytes.Equal(batch[0].Body, body) {
		t.Fatalf("large body corrupted: len=%d", len(batch[0].Body))
	}
	batch[0].Release()
}

func TestFrameReaderOversizeRequestSurvives(t *testing.T) {
	big := req(9, "upload", bytes.Repeat([]byte{1}, 8<<10))
	stream := encodeStream(t, big, req(10, "after", nil))
	fr := NewFrameReader(&chunkReader{data: stream}, FrameReaderConfig{MaxBody: 1 << 10})
	defer fr.Close()

	batch := make([]*Message, 4)
	_, err := fr.ReadBatch(batch)
	var tbe *TooBigError
	if !errors.As(err, &tbe) {
		t.Fatalf("ReadBatch err = %v, want *TooBigError", err)
	}
	if tbe.RequestID != 9 || !tbe.ResponseExpected || tbe.Operation != "upload" {
		t.Fatalf("TooBigError identity wrong: %+v", tbe)
	}
	if tbe.Limit != 1<<10 || tbe.Declared < 8<<10 {
		t.Fatalf("TooBigError sizes wrong: %+v", tbe)
	}
	// The oversized frame was drained: the stream keeps working.
	n, err := fr.ReadBatch(batch)
	if err != nil || n != 1 || batch[0].RequestID != 10 {
		t.Fatalf("stream after oversize: n=%d err=%v", n, err)
	}
	batch[0].Release()
}

func TestFrameReaderOversizeFragmentTrain(t *testing.T) {
	old := FragmentSize
	FragmentSize = 512
	body := bytes.Repeat([]byte{2}, 4<<10)
	stream := encodeStream(t, req(11, "train", body), req(12, "after", nil))
	FragmentSize = old

	fr := NewFrameReader(&chunkReader{data: stream}, FrameReaderConfig{MaxBody: 1 << 10})
	defer fr.Close()

	batch := make([]*Message, 4)
	_, err := fr.ReadBatch(batch)
	var tbe *TooBigError
	if !errors.As(err, &tbe) {
		t.Fatalf("ReadBatch err = %v, want *TooBigError", err)
	}
	if tbe.RequestID != 11 || tbe.Operation != "train" {
		t.Fatalf("TooBigError identity wrong: %+v", tbe)
	}
	n, err := fr.ReadBatch(batch)
	if err != nil || n != 1 || batch[0].RequestID != 12 {
		t.Fatalf("stream after oversized train: n=%d err=%v", n, err)
	}
	batch[0].Release()
}

func TestFrameReaderHugeDeclaredBodyIsFatal(t *testing.T) {
	raw := append([]byte{}, Magic[:]...)
	raw = append(raw, Version, byte(MsgRequest), 0, 0, 0xFF, 0xFF, 0xFF, 0xFF)
	fr := NewFrameReader(&chunkReader{data: raw}, FrameReaderConfig{})
	defer fr.Close()

	batch := make([]*Message, 1)
	if _, err := fr.ReadBatch(batch); !errors.Is(err, ErrTooBig) {
		t.Fatalf("err = %v, want ErrTooBig", err)
	}
	// Fatal errors are sticky.
	if _, err := fr.ReadBatch(batch); !errors.Is(err, ErrTooBig) {
		t.Fatalf("sticky err = %v, want ErrTooBig", err)
	}
}

func TestFrameReaderBadMagicIsFatal(t *testing.T) {
	fr := NewFrameReader(&chunkReader{data: []byte("garbage-not-a-header")}, FrameReaderConfig{})
	defer fr.Close()
	batch := make([]*Message, 1)
	if _, err := fr.ReadBatch(batch); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

// guardReader hands out a frame in two halves so the reader must issue a
// mid-frame read, then records the deadline calls the guard makes.
func TestFrameReaderSlowLorisGuard(t *testing.T) {
	stream := encodeStream(t, req(1, "drip", []byte("0123456789abcdef")))
	half := len(stream) / 2
	var deadlines []time.Time
	r := &chunkReader{data: stream, chunk: half}
	fr := NewFrameReader(r, FrameReaderConfig{
		FrameTimeout:    time.Second,
		SetReadDeadline: func(d time.Time) error { deadlines = append(deadlines, d); return nil },
	})
	defer fr.Close()

	batch := make([]*Message, 1)
	n, err := fr.ReadBatch(batch)
	if err != nil || n != 1 {
		t.Fatalf("ReadBatch: n=%d err=%v", n, err)
	}
	batch[0].Release()
	if len(deadlines) < 2 {
		t.Fatalf("deadline calls = %d, want arm + disarm", len(deadlines))
	}
	if deadlines[0].IsZero() {
		t.Fatalf("guard armed with zero deadline")
	}
	if !deadlines[len(deadlines)-1].IsZero() {
		t.Fatalf("guard not disarmed at frame boundary: %v", deadlines)
	}
}

func TestFrameReaderReplyMessages(t *testing.T) {
	reply := &Message{Type: MsgReply, RequestID: 5, ReplyStatus: ReplySystemException, Body: []byte("boom")}
	stream := encodeStream(t, reply)
	fr := NewFrameReader(&chunkReader{data: stream}, FrameReaderConfig{})
	defer fr.Close()
	batch := make([]*Message, 1)
	n, err := fr.ReadBatch(batch)
	if err != nil || n != 1 {
		t.Fatalf("ReadBatch: n=%d err=%v", n, err)
	}
	m := batch[0]
	if m.Type != MsgReply || m.RequestID != 5 || m.ReplyStatus != ReplySystemException || string(m.Body) != "boom" {
		t.Fatalf("reply decoded wrong: %+v", m)
	}
	m.Release()
}

// TestFrameReaderBufferRecycling releases messages out of order across a
// window swap and checks nothing corrupts: the refcounting must keep the
// first window alive while its last message is outstanding.
func TestFrameReaderBufferRecycling(t *testing.T) {
	// Frames sized so several windows' worth stream through a small window.
	var msgs []*Message
	for i := 0; i < 64; i++ {
		msgs = append(msgs, req(uint32(i), fmt.Sprintf("op%d", i%4), bytes.Repeat([]byte{byte(i)}, 300)))
	}
	stream := encodeStream(t, msgs...)
	fr := NewFrameReader(&chunkReader{data: stream, chunk: 700}, FrameReaderConfig{BufSize: 1024})
	defer fr.Close()

	var held []*Message
	batch := make([]*Message, 8)
	for {
		n, err := fr.ReadBatch(batch)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("ReadBatch: %v", err)
		}
		held = append(held, batch[:n]...)
		// Release every other message immediately; hold the rest.
		if len(held) >= 2 {
			m := held[len(held)-2]
			if int(m.RequestID)%2 == 0 {
				if !bytes.Equal(m.Body, bytes.Repeat([]byte{byte(m.RequestID)}, 300)) {
					t.Fatalf("body corrupted for %d before release", m.RequestID)
				}
			}
		}
	}
	if len(held) != 64 {
		t.Fatalf("parsed %d frames, want 64", len(held))
	}
	for _, m := range held {
		if !bytes.Equal(m.Body, bytes.Repeat([]byte{byte(m.RequestID)}, 300)) {
			t.Fatalf("body corrupted for held message %d", m.RequestID)
		}
		m.Release()
	}
}

func TestReadBatchStampsAdmission(t *testing.T) {
	msgs := make([]*Message, 3)
	for i := range msgs {
		msgs[i] = req(uint32(i+1), "echo", []byte{byte(i)})
	}
	stream := encodeStream(t, msgs...)
	fr := NewFrameReader(&chunkReader{data: stream}, FrameReaderConfig{})
	defer fr.Close()

	before := time.Now()
	batch := make([]*Message, 8)
	n, err := fr.ReadBatch(batch)
	after := time.Now()
	if err != nil || n != 3 {
		t.Fatalf("ReadBatch = %d, %v", n, err)
	}
	stamp := batch[0].Received
	if stamp.IsZero() {
		t.Fatal("delivered message has a zero Received stamp")
	}
	if stamp.Before(before) || stamp.After(after) {
		t.Fatalf("Received %v outside [%v, %v]", stamp, before, after)
	}
	// One clock read per batch: every message in the batch shares it.
	for i, m := range batch[:n] {
		if !m.Received.Equal(stamp) {
			t.Fatalf("frame %d Received %v != batch stamp %v", i, m.Received, stamp)
		}
	}
	// Release must clear the stamp so pooled reuse can't leak an old
	// admission time into a locally built message.
	m := batch[0]
	m.Release()
	fresh := AcquireMessage()
	if !fresh.Received.IsZero() {
		t.Fatal("pooled message carries a stale Received stamp")
	}
	fresh.Release()
	for _, m := range batch[1:n] {
		m.Release()
	}
}
