package giop

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/cdr"
)

// Unknown service-context IDs must survive encode/decode verbatim:
// forward compatibility demands an SCTrace-unaware peer relay the
// context untouched rather than drop or corrupt it.
func TestUnknownServiceContextsPreserved(t *testing.T) {
	contexts := []ServiceContext{
		{ID: SCTrace, Data: bytes.Repeat([]byte{0xAB}, 25)},
		{ID: 0xDEADBEEF, Data: []byte("opaque-future-context")},
		{ID: 0x00000000, Data: nil},
		{ID: 0xFFFFFFFF, Data: []byte{1, 2, 3}},
	}
	for _, typ := range []MsgType{MsgRequest, MsgReply} {
		m := &Message{
			Type:      typ,
			RequestID: 7,
			Contexts:  append([]ServiceContext(nil), contexts...),
			Body:      []byte("payload"),
		}
		if typ == MsgRequest {
			m.ResponseExpected = true
			m.ObjectKey = "obj"
			m.Operation = "op"
		}
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatalf("%v write: %v", typ, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("%v read: %v", typ, err)
		}
		if len(got.Contexts) != len(contexts) {
			t.Fatalf("%v: %d contexts survived, want %d", typ, len(got.Contexts), len(contexts))
		}
		for i, c := range got.Contexts {
			if c.ID != contexts[i].ID {
				t.Errorf("%v context %d: id %#x, want %#x", typ, i, c.ID, contexts[i].ID)
			}
			if !bytes.Equal(c.Data, contexts[i].Data) {
				t.Errorf("%v context %d: data %x, want %x", typ, i, c.Data, contexts[i].Data)
			}
		}
		if !bytes.Equal(got.Body, m.Body) {
			t.Errorf("%v: body corrupted after contexts: %q", typ, got.Body)
		}
	}
}

// A context count beyond the sanity bound must be a decode error, not a
// silently dropped list (which would leave the decoder misaligned and
// corrupt every field after it).
func TestOversizedContextCountIsError(t *testing.T) {
	e := cdr.NewEncoder(64)
	e.PutUint32(5000) // way past the 1024 bound
	e.PutUint32(42)   // would-be request id
	body := e.Bytes()

	var buf bytes.Buffer
	if err := writeOne(&buf, MsgReply, 0, body); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("oversized context count decoded without error")
	}
}

func TestDeadlineRoundTrip(t *testing.T) {
	cases := []time.Duration{time.Nanosecond, time.Millisecond, 5 * time.Second, time.Hour}
	for _, d := range cases {
		got, ok := DecodeDeadline(EncodeDeadline(d))
		if !ok || got != d {
			t.Errorf("DecodeDeadline(EncodeDeadline(%v)) = %v, %v", d, got, ok)
		}
	}
}

func TestDeadlineZeroAndNegative(t *testing.T) {
	// Zero and negative remaining time encode as already-expired (zero):
	// decodable, with ok=true — the server sheds immediately.
	for _, d := range []time.Duration{0, -time.Second} {
		got, ok := DecodeDeadline(EncodeDeadline(d))
		if !ok || got != 0 {
			t.Errorf("deadline %v decoded to %v, %v; want 0, true", d, got, ok)
		}
	}
}

func TestDeadlineMalformedAndOverflow(t *testing.T) {
	if _, ok := DecodeDeadline(nil); ok {
		t.Error("nil payload decoded")
	}
	if _, ok := DecodeDeadline([]byte{1, 2, 3}); ok {
		t.Error("short payload decoded")
	}
	// Overflow: durations beyond 1<<62 ns are rejected (they would wrap
	// time.Duration arithmetic); the boundary value itself is accepted.
	enc := func(ns uint64) []byte {
		e := cdr.NewEncoder(8)
		e.PutUint64(ns)
		return e.Bytes()
	}
	if _, ok := DecodeDeadline(enc(uint64(1<<62) + 1)); ok {
		t.Error("overflow duration decoded")
	}
	if _, ok := DecodeDeadline(enc(^uint64(0))); ok {
		t.Error("max uint64 duration decoded")
	}
	if got, ok := DecodeDeadline(enc(uint64(1) << 62)); !ok || got != time.Duration(uint64(1)<<62) {
		t.Errorf("boundary duration = %v, %v", got, ok)
	}
}

func TestSetContextReplacesInPlace(t *testing.T) {
	m := &Message{Type: MsgRequest}
	m.SetContext(SCTrace, []byte("one"))
	m.SetContext(0xDEADBEEF, []byte("keep"))
	m.SetContext(SCTrace, []byte("two"))
	want := []ServiceContext{
		{ID: SCTrace, Data: []byte("two")},
		{ID: 0xDEADBEEF, Data: []byte("keep")},
	}
	if !reflect.DeepEqual(m.Contexts, want) {
		t.Fatalf("contexts = %v, want %v", m.Contexts, want)
	}
}
