package giop

import (
	"bytes"
	"testing"
)

// withFragmentSize temporarily lowers the fragmentation threshold.
func withFragmentSize(t *testing.T, n int) {
	t.Helper()
	old := FragmentSize
	FragmentSize = n
	t.Cleanup(func() { FragmentSize = old })
}

func TestFragmentedRoundTrip(t *testing.T) {
	withFragmentSize(t, 64)
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i)
	}
	in := &Message{Type: MsgRequest, RequestID: 9, ResponseExpected: true,
		ObjectKey: "key", Operation: "op", Body: payload}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	// The stream must actually contain multiple protocol messages.
	if buf.Len() < len(payload)+5*HeaderSize {
		t.Fatalf("stream too small for fragmentation: %d bytes", buf.Len())
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Operation != "op" || !bytes.Equal(out.Body, payload) {
		t.Fatalf("reassembly failed: op=%q len=%d", out.Operation, len(out.Body))
	}
	if buf.Len() != 0 {
		t.Fatalf("%d trailing bytes", buf.Len())
	}
}

func TestFragmentedReplyRoundTrip(t *testing.T) {
	withFragmentSize(t, 32)
	in := &Message{Type: MsgReply, RequestID: 4, ReplyStatus: ReplyNoException,
		Body: bytes.Repeat([]byte{0xAB}, 500)}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.RequestID != 4 || len(out.Body) != 500 {
		t.Fatalf("out = %+v", out)
	}
}

func TestSmallMessagesNotFragmented(t *testing.T) {
	withFragmentSize(t, 1<<20)
	in := &Message{Type: MsgRequest, ObjectKey: "k", Operation: "op", Body: []byte{1, 2, 3}}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	// Exactly one header.
	if buf.Bytes()[6]&flagMoreFragments != 0 {
		t.Fatal("small message flagged as fragmented")
	}
	if _, err := Read(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestOrphanFragmentRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := writeOne(&buf, MsgFragment, 0, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err != ErrOrphanFragment {
		t.Fatalf("err = %v", err)
	}
}

func TestTornFragmentTrain(t *testing.T) {
	withFragmentSize(t, 16)
	in := &Message{Type: MsgRequest, ObjectKey: "k", Operation: "op",
		Body: bytes.Repeat([]byte{7}, 100)}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	// Drop the tail of the stream mid-train.
	torn := buf.Bytes()[:buf.Len()-20]
	if _, err := Read(bytes.NewReader(torn)); err == nil {
		t.Fatal("torn fragment train read successfully")
	}
}

func TestNonFragmentInterleavedRejected(t *testing.T) {
	withFragmentSize(t, 16)
	in := &Message{Type: MsgRequest, ObjectKey: "k", Operation: "op",
		Body: bytes.Repeat([]byte{7}, 64)}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	// Replace the second protocol message's type byte with CloseConnection.
	raw := buf.Bytes()
	// First message: header + 16-byte... find second header offset: the
	// initial fragment body is FragmentSize (16) bytes? No: the encoded
	// body includes request header fields, so locate the second magic.
	second := bytes.Index(raw[1:], Magic[:]) + 1
	if second <= 0 {
		t.Fatal("no second message found")
	}
	raw[second+5] = byte(MsgCloseConnection)
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("interleaved non-fragment accepted")
	}
}

func TestFragmentedLargeBodyThroughORBPath(t *testing.T) {
	// End-to-end sanity at the message layer with a fragment size smaller
	// than typical checkpoint payloads.
	withFragmentSize(t, 128)
	body := make([]byte, 10_000)
	for i := range body {
		body[i] = byte(i * 7)
	}
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		in := &Message{Type: MsgReply, RequestID: uint32(i), Body: body}
		if err := Write(&buf, in); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		out, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if out.RequestID != uint32(i) || !bytes.Equal(out.Body, body) {
			t.Fatalf("message %d corrupted", i)
		}
	}
}
