package opt

import (
	"math/rand"
	"testing"
)

func TestSplitAssembleRoundTrip(t *testing.T) {
	// Split must invert Assemble for every valid (n, w) pair up to a
	// representative size — the elastic re-decomposition carry-over relies
	// on it to move state between worker counts without loss.
	rng := rand.New(rand.NewSource(7))
	for n := 2; n <= 40; n++ {
		for w := 1; w <= MaxWorkers(n); w++ {
			d, err := NewDecomposition(n, w)
			if err != nil {
				t.Fatalf("n=%d w=%d: %v", n, w, err)
			}
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			boundary, blocks, err := d.Split(x)
			if err != nil {
				t.Fatalf("n=%d w=%d split: %v", n, w, err)
			}
			if len(boundary) != d.ManagerDim() || len(blocks) != w {
				t.Fatalf("n=%d w=%d: boundary %d blocks %d", n, w, len(boundary), len(blocks))
			}
			back, err := d.Assemble(boundary, blocks)
			if err != nil {
				t.Fatalf("n=%d w=%d assemble: %v", n, w, err)
			}
			for i := range x {
				if back[i] != x[i] {
					t.Fatalf("n=%d w=%d: x[%d] = %v != %v", n, w, i, back[i], x[i])
				}
			}
		}
	}
}

func TestSplitCarriesStateAcrossWidths(t *testing.T) {
	// Assemble under one decomposition, Split under another: every
	// variable must land somewhere (sum preserved), modelling the elastic
	// rebalance from w1 workers to w2.
	const n = 30
	for w1 := 1; w1 <= MaxWorkers(n); w1++ {
		for w2 := 1; w2 <= MaxWorkers(n); w2++ {
			d1, err := NewDecomposition(n, w1)
			if err != nil {
				t.Fatal(err)
			}
			d2, err := NewDecomposition(n, w2)
			if err != nil {
				t.Fatal(err)
			}
			x := make([]float64, n)
			for i := range x {
				x[i] = float64(i + 1)
			}
			b1, bl1, err := d1.Split(x)
			if err != nil {
				t.Fatal(err)
			}
			full, err := d1.Assemble(b1, bl1)
			if err != nil {
				t.Fatal(err)
			}
			b2, bl2, err := d2.Split(full)
			if err != nil {
				t.Fatal(err)
			}
			var sum float64
			for _, v := range b2 {
				sum += v
			}
			for _, bl := range bl2 {
				for _, v := range bl {
					sum += v
				}
			}
			want := float64(n*(n+1)) / 2
			if sum != want {
				t.Fatalf("w1=%d w2=%d: sum %v != %v (variables lost in transit)", w1, w2, sum, want)
			}
		}
	}
}

func TestSplitRejectsWrongDim(t *testing.T) {
	d, err := NewDecomposition(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Split(make([]float64, 11)); err == nil {
		t.Fatal("short vector accepted")
	}
}

func TestMaxWorkersMatchesDecompositionLimit(t *testing.T) {
	for n := 1; n <= 60; n++ {
		w := MaxWorkers(n)
		if w < 1 {
			t.Fatalf("MaxWorkers(%d) = %d", n, w)
		}
		if n >= 2 {
			if _, err := NewDecomposition(n, w); err != nil {
				t.Fatalf("MaxWorkers(%d) = %d rejected: %v", n, w, err)
			}
		}
		if _, err := NewDecomposition(n, w+1); err == nil {
			t.Fatalf("NewDecomposition(%d, %d) accepted beyond MaxWorkers", n, w+1)
		}
	}
}
