package opt

import (
	"fmt"
	"math/rand"
)

// ComplexBoxOptions tune the Complex Box optimizer.
type ComplexBoxOptions struct {
	// PopulationFactor sets the complex size k = factor·n (Box recommends
	// 2; minimum population is n+1). Default 2.
	PopulationFactor int
	// Alpha is the over-reflection coefficient (Box recommends 1.3).
	Alpha float64
	// MaxIterations bounds the main loop; it is the worker's stopping
	// criterion the paper varies in Table 1. Default 1000.
	MaxIterations int
	// Tolerance stops early when the complex's objective spread falls
	// below it. Zero disables early stopping (deterministic work, used by
	// the benchmarks).
	Tolerance float64
	// Seed makes the run reproducible.
	Seed int64
	// Start optionally seeds the complex with a known point.
	Start []float64
	// MaxRetractions bounds the move-toward-centroid retries for a
	// reflected point that stays worst. Default 10.
	MaxRetractions int
	// Feasible, when set, is Box's implicit constraint test: candidate
	// points violating it are pulled toward the centroid until feasible
	// (initial points are resampled). The feasible region must be convex
	// for the retraction to be guaranteed to terminate; as a safeguard an
	// infeasible point is rejected after MaxRetractions pulls.
	Feasible func(x []float64) bool
	// Stop, when set, is polled before each main-loop iteration; returning
	// true ends the run early with the best point found so far. Servants
	// hook their request context's Done here so a cancelled caller stops
	// burning CPU.
	Stop func() bool
}

func (o ComplexBoxOptions) withDefaults() ComplexBoxOptions {
	if o.PopulationFactor <= 0 {
		o.PopulationFactor = 2
	}
	if o.Alpha <= 0 {
		o.Alpha = 1.3
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 1000
	}
	if o.MaxRetractions <= 0 {
		o.MaxRetractions = 10
	}
	return o
}

// Result reports the outcome of an optimization run.
type Result struct {
	// X is the best point found.
	X []float64
	// F is the objective value at X.
	F float64
	// Iterations is the number of main-loop iterations executed.
	Iterations int
	// Evaluations is the number of objective evaluations performed.
	Evaluations int
	// Converged reports whether the tolerance criterion stopped the run.
	Converged bool
}

// MinimizeComplexBox runs Box's complex method: maintain a "complex" of k
// points inside the bounds; repeatedly reflect the worst point through the
// centroid of the others by factor alpha, retracting it halfway toward the
// centroid while it remains worst.
func MinimizeComplexBox(obj Objective, bounds Bounds, opts ComplexBoxOptions) (Result, error) {
	if err := bounds.Validate(); err != nil {
		return Result{}, err
	}
	opts = opts.withDefaults()
	n := bounds.Dim()
	k := opts.PopulationFactor * n
	if k < n+1 {
		k = n + 1
	}
	if k < 2 {
		k = 2
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	var res Result
	eval := func(x []float64) float64 {
		res.Evaluations++
		return obj(x)
	}

	feasible := opts.Feasible
	if feasible == nil {
		feasible = func([]float64) bool { return true }
	}

	// Initial complex: random points in the box, optionally seeded with a
	// start point. Infeasible random points are resampled (Box pulls them
	// toward the centroid of the feasible ones; resampling is equivalent
	// for initialization and simpler to reason about).
	points := make([][]float64, k)
	values := make([]float64, k)
	const maxResamples = 1000
	for j := 0; j < k; j++ {
		p := make([]float64, n)
		if j == 0 && len(opts.Start) == n {
			copy(p, opts.Start)
			bounds.Clip(p)
			if !feasible(p) {
				return Result{}, fmt.Errorf("opt: start point violates the implicit constraints")
			}
		} else {
			found := false
			for try := 0; try < maxResamples; try++ {
				for i := 0; i < n; i++ {
					p[i] = bounds.Lo[i] + rng.Float64()*(bounds.Hi[i]-bounds.Lo[i])
				}
				if feasible(p) {
					found = true
					break
				}
			}
			if !found {
				return Result{}, fmt.Errorf("opt: could not sample a feasible point in %d tries", maxResamples)
			}
		}
		points[j] = p
		values[j] = eval(p)
	}

	worstAndBest := func() (worst, best int) {
		for j := 1; j < k; j++ {
			if values[j] > values[worst] {
				worst = j
			}
			if values[j] < values[best] {
				best = j
			}
		}
		return
	}

	centroidExcluding := func(skip int) []float64 {
		c := make([]float64, n)
		for j := 0; j < k; j++ {
			if j == skip {
				continue
			}
			for i := 0; i < n; i++ {
				c[i] += points[j][i]
			}
		}
		for i := 0; i < n; i++ {
			c[i] /= float64(k - 1)
		}
		return c
	}

	for it := 0; it < opts.MaxIterations; it++ {
		if opts.Stop != nil && opts.Stop() {
			break
		}
		res.Iterations = it + 1
		worst, best := worstAndBest()
		if opts.Tolerance > 0 && values[worst]-values[best] < opts.Tolerance {
			res.Converged = true
			break
		}
		c := centroidExcluding(worst)
		// Over-reflection of the worst point through the centroid.
		cand := make([]float64, n)
		for i := 0; i < n; i++ {
			cand[i] = c[i] + opts.Alpha*(c[i]-points[worst][i])
		}
		bounds.Clip(cand)
		// Pull an implicitly infeasible candidate halfway toward the
		// centroid (Box's constraint handling). If it never becomes
		// feasible, keep the old worst point for this iteration.
		okPoint := true
		for r := 0; !feasible(cand); r++ {
			if r >= opts.MaxRetractions {
				okPoint = false
				break
			}
			for i := 0; i < n; i++ {
				cand[i] = (cand[i] + c[i]) / 2
			}
		}
		if !okPoint {
			continue
		}
		f := eval(cand)
		// Retract toward the centroid while the candidate stays worst.
		for r := 0; f > values[worst] && r < opts.MaxRetractions; r++ {
			for i := 0; i < n; i++ {
				cand[i] = (cand[i] + c[i]) / 2
			}
			if feasible(cand) {
				f = eval(cand)
			}
		}
		if !feasible(cand) {
			// Retraction left a non-convex region's boundary between the
			// candidate and the centroid; keep the old point.
			continue
		}
		points[worst] = cand
		values[worst] = f
	}

	_, best := worstAndBest()
	res.X = append([]float64(nil), points[best]...)
	res.F = values[best]
	return res, nil
}

// String renders a result compactly.
func (r Result) String() string {
	return fmt.Sprintf("f=%.6g after %d iterations / %d evaluations (converged=%v)",
		r.F, r.Iterations, r.Evaluations, r.Converged)
}
