package opt

import (
	"fmt"
)

// Decomposition splits an n-dimensional Rosenbrock problem into w worker
// blocks linked by w-1 manager-owned boundary variables, the paper's
// "decomposed formulation": the global variable vector is laid out as
//
//	[block₀ | m₀ | block₁ | m₁ | … | m_{w-2} | block_{w-1}]
//
// Workers minimize their block's interior variables with the adjacent
// boundary values held fixed; the manager minimizes over the boundary
// variables, each evaluation of its (w-1)-dimensional problem requiring
// one parallel round of worker solves. For n=30, w=3 this yields worker
// dimensions 10,9,9 and a 2-dimensional manager problem — exactly the
// paper's configuration.
type Decomposition struct {
	n       int
	workers int
	// blockIdx[j] lists the global indices of worker j's variables.
	blockIdx [][]int
	// boundaryIdx lists the global indices of the manager's variables.
	boundaryIdx []int
}

// NewDecomposition builds the decomposition of an n-dimensional problem
// over w workers.
func NewDecomposition(n, workers int) (*Decomposition, error) {
	if workers < 1 {
		return nil, fmt.Errorf("opt: need at least 1 worker, got %d", workers)
	}
	interior := n - (workers - 1)
	if interior < workers {
		return nil, fmt.Errorf("opt: dimension %d too small for %d workers", n, workers)
	}
	d := &Decomposition{n: n, workers: workers}
	base := interior / workers
	extra := interior % workers
	idx := 0
	for j := 0; j < workers; j++ {
		size := base
		if j < extra {
			size++
		}
		block := make([]int, 0, size)
		for i := 0; i < size; i++ {
			block = append(block, idx)
			idx++
		}
		d.blockIdx = append(d.blockIdx, block)
		if j < workers-1 {
			d.boundaryIdx = append(d.boundaryIdx, idx)
			idx++
		}
	}
	if idx != n {
		return nil, fmt.Errorf("opt: internal layout error: %d != %d", idx, n)
	}
	return d, nil
}

// Dim returns the global dimension n.
func (d *Decomposition) Dim() int { return d.n }

// Workers returns the worker count w.
func (d *Decomposition) Workers() int { return d.workers }

// ManagerDim returns the manager problem's dimension (w-1).
func (d *Decomposition) ManagerDim() int { return len(d.boundaryIdx) }

// WorkerDims returns each worker subproblem's dimension.
func (d *Decomposition) WorkerDims() []int {
	out := make([]int, d.workers)
	for j, b := range d.blockIdx {
		out[j] = len(b)
	}
	return out
}

// Assemble builds the full variable vector from the manager's boundary
// values and each worker's block values.
func (d *Decomposition) Assemble(boundary []float64, blocks [][]float64) ([]float64, error) {
	if len(boundary) != len(d.boundaryIdx) {
		return nil, fmt.Errorf("opt: boundary dim %d != %d", len(boundary), len(d.boundaryIdx))
	}
	if len(blocks) != d.workers {
		return nil, fmt.Errorf("opt: %d blocks != %d workers", len(blocks), d.workers)
	}
	x := make([]float64, d.n)
	for j, block := range d.blockIdx {
		if len(blocks[j]) != len(block) {
			return nil, fmt.Errorf("opt: block %d dim %d != %d", j, len(blocks[j]), len(block))
		}
		for i, gi := range block {
			x[gi] = blocks[j][i]
		}
	}
	for i, gi := range d.boundaryIdx {
		x[gi] = boundary[i]
	}
	return x, nil
}

// Split decomposes a full variable vector into the manager's boundary
// values and per-worker block values — the exact inverse of Assemble.
// Elastic re-decomposition carries state between worker counts with it:
// assemble the best point under the outgoing decomposition, split it
// under the incoming one, and every variable lands in its new owner's
// block (or on the manager's boundary) without loss.
func (d *Decomposition) Split(x []float64) ([]float64, [][]float64, error) {
	if len(x) != d.n {
		return nil, nil, fmt.Errorf("opt: vector dim %d != %d", len(x), d.n)
	}
	boundary := make([]float64, len(d.boundaryIdx))
	for i, gi := range d.boundaryIdx {
		boundary[i] = x[gi]
	}
	blocks := make([][]float64, d.workers)
	for j, block := range d.blockIdx {
		blocks[j] = make([]float64, len(block))
		for i, gi := range block {
			blocks[j][i] = x[gi]
		}
	}
	return boundary, blocks, nil
}

// MaxWorkers returns the largest worker count a problem of dimension n
// supports (NewDecomposition requires n-(w-1) ≥ w interior variables).
func MaxWorkers(n int) int {
	w := (n + 1) / 2
	if w < 1 {
		w = 1
	}
	return w
}

// SubproblemObjective returns worker j's objective over its block
// variables, with the given boundary values fixed. Each global Rosenbrock
// term (x_i, x_{i+1}) is charged to exactly one worker — the one owning a
// block variable of the pair, with ties (both in blocks) impossible and
// manager-manager pairs impossible for w ≥ 1 — so the worker objectives
// sum to the full Rosenbrock value.
func (d *Decomposition) SubproblemObjective(j int, boundary []float64) (Objective, error) {
	if j < 0 || j >= d.workers {
		return nil, fmt.Errorf("opt: worker %d out of range", j)
	}
	if len(boundary) != len(d.boundaryIdx) {
		return nil, fmt.Errorf("opt: boundary dim %d != %d", len(boundary), len(d.boundaryIdx))
	}
	block := d.blockIdx[j]
	// Boundary values adjacent to this block, when they exist. Every
	// global term is charged to exactly one worker: interior terms to
	// their own block, the (m_{j-1}, first) term to worker j, and the
	// (last, m_j) term also to worker j; adjacent boundary variables
	// never form a term because every block has at least one variable.
	var leftVal, rightVal float64
	hasLeft, hasRight := false, false
	if j > 0 {
		leftVal = boundary[j-1]
		hasLeft = true
	}
	if j < d.workers-1 {
		rightVal = boundary[j]
		hasRight = true
	}
	blockLen := len(block)
	return func(v []float64) float64 {
		var sum float64
		// Terms between consecutive block variables.
		for i := 0; i+1 < blockLen; i++ {
			sum += RosenbrockTerm(v[i], v[i+1])
		}
		// Term linking the left boundary variable to the block's first
		// variable (assigned to this worker: the pair's second element is
		// ours).
		if hasLeft {
			sum += RosenbrockTerm(leftVal, v[0])
		}
		// Term linking the block's last variable to the right boundary
		// variable (assigned to this worker: the pair's first element is
		// ours).
		if hasRight {
			sum += RosenbrockTerm(v[blockLen-1], rightVal)
		}
		return sum
	}, nil
}

// SubproblemBounds returns the box constraints of worker j's block given
// global bounds.
func (d *Decomposition) SubproblemBounds(j int, global Bounds) (Bounds, error) {
	if j < 0 || j >= d.workers {
		return Bounds{}, fmt.Errorf("opt: worker %d out of range", j)
	}
	if global.Dim() != d.n {
		return Bounds{}, fmt.Errorf("opt: global bounds dim %d != %d", global.Dim(), d.n)
	}
	block := d.blockIdx[j]
	b := Bounds{Lo: make([]float64, len(block)), Hi: make([]float64, len(block))}
	for i, gi := range block {
		b.Lo[i] = global.Lo[gi]
		b.Hi[i] = global.Hi[gi]
	}
	return b, nil
}

// ManagerBounds returns the box constraints of the manager's boundary
// variables.
func (d *Decomposition) ManagerBounds(global Bounds) (Bounds, error) {
	if global.Dim() != d.n {
		return Bounds{}, fmt.Errorf("opt: global bounds dim %d != %d", global.Dim(), d.n)
	}
	b := Bounds{Lo: make([]float64, len(d.boundaryIdx)), Hi: make([]float64, len(d.boundaryIdx))}
	for i, gi := range d.boundaryIdx {
		b.Lo[i] = global.Lo[gi]
		b.Hi[i] = global.Hi[gi]
	}
	return b, nil
}
