// Package opt provides the paper's numerical workload: the Rosenbrock
// benchmark function (Schittkowski 1980 test set), a decomposed
// formulation splitting it into worker subproblems linked by manager-owned
// boundary variables, and the Complex Box constrained optimizer (Box 1965,
// as used in Boden/Gehne/Grauer 1991) that the paper's workers run.
package opt

import (
	"errors"
	"fmt"
)

// Objective is a real-valued function to minimize.
type Objective func(x []float64) float64

// Bounds are box constraints lo[i] <= x[i] <= hi[i].
type Bounds struct {
	Lo, Hi []float64
}

// UniformBounds builds n-dimensional bounds [lo,hi]^n.
func UniformBounds(n int, lo, hi float64) Bounds {
	b := Bounds{Lo: make([]float64, n), Hi: make([]float64, n)}
	for i := 0; i < n; i++ {
		b.Lo[i] = lo
		b.Hi[i] = hi
	}
	return b
}

// Dim returns the dimensionality.
func (b Bounds) Dim() int { return len(b.Lo) }

// Validate checks structural consistency.
func (b Bounds) Validate() error {
	if len(b.Lo) == 0 {
		return errors.New("opt: empty bounds")
	}
	if len(b.Lo) != len(b.Hi) {
		return fmt.Errorf("opt: bounds length mismatch %d != %d", len(b.Lo), len(b.Hi))
	}
	for i := range b.Lo {
		if b.Lo[i] >= b.Hi[i] {
			return fmt.Errorf("opt: bounds[%d] empty: [%g,%g]", i, b.Lo[i], b.Hi[i])
		}
	}
	return nil
}

// Clip projects x into the bounds in place.
func (b Bounds) Clip(x []float64) {
	for i := range x {
		if x[i] < b.Lo[i] {
			x[i] = b.Lo[i]
		}
		if x[i] > b.Hi[i] {
			x[i] = b.Hi[i]
		}
	}
}

// Contains reports whether x lies within the bounds.
func (b Bounds) Contains(x []float64) bool {
	for i := range x {
		if x[i] < b.Lo[i] || x[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// RosenbrockTerm is one summand of the generalized Rosenbrock function:
// 100*(b - a²)² + (1 - a)².
func RosenbrockTerm(a, b float64) float64 {
	d := b - a*a
	e := 1 - a
	return 100*d*d + e*e
}

// Rosenbrock is the generalized n-dimensional Rosenbrock function
// f(x) = Σ_{i=0}^{n-2} 100(x_{i+1} - x_i²)² + (1 - x_i)², the paper's
// benchmark. Its global minimum is 0 at x = (1, …, 1).
func Rosenbrock(x []float64) float64 {
	var sum float64
	for i := 0; i+1 < len(x); i++ {
		sum += RosenbrockTerm(x[i], x[i+1])
	}
	return sum
}

// Sphere is Σ x_i², a trivial convex test objective.
func Sphere(x []float64) float64 {
	var sum float64
	for _, v := range x {
		sum += v * v
	}
	return sum
}
