package opt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRosenbrockMinimum(t *testing.T) {
	for _, n := range []int{2, 5, 30, 100} {
		x := make([]float64, n)
		for i := range x {
			x[i] = 1
		}
		if f := Rosenbrock(x); f != 0 {
			t.Errorf("Rosenbrock(ones(%d)) = %v", n, f)
		}
	}
}

func TestRosenbrockKnownValues(t *testing.T) {
	// f(0,0) = 100*0 + 1 = 1
	if f := Rosenbrock([]float64{0, 0}); f != 1 {
		t.Errorf("f(0,0) = %v", f)
	}
	// f(-1,1) = 100*(1-1)^2 + (1-(-1))^2 = 4
	if f := Rosenbrock([]float64{-1, 1}); f != 4 {
		t.Errorf("f(-1,1) = %v", f)
	}
	// One-dimensional input has no terms.
	if f := Rosenbrock([]float64{3}); f != 0 {
		t.Errorf("f([3]) = %v", f)
	}
}

func TestRosenbrockNonNegative(t *testing.T) {
	f := func(x []float64) bool {
		for i := range x {
			// Clamp to a sane range to avoid inf.
			if math.IsNaN(x[i]) || math.Abs(x[i]) > 1e6 {
				x[i] = 1
			}
		}
		return Rosenbrock(x) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsValidate(t *testing.T) {
	if err := (Bounds{}).Validate(); err == nil {
		t.Error("empty bounds validated")
	}
	if err := (Bounds{Lo: []float64{0}, Hi: []float64{0, 1}}).Validate(); err == nil {
		t.Error("mismatched bounds validated")
	}
	if err := (Bounds{Lo: []float64{1}, Hi: []float64{0}}).Validate(); err == nil {
		t.Error("inverted bounds validated")
	}
	if err := UniformBounds(3, -5, 10).Validate(); err != nil {
		t.Errorf("valid bounds rejected: %v", err)
	}
}

func TestBoundsClipContains(t *testing.T) {
	b := UniformBounds(2, -1, 1)
	x := []float64{-3, 0.5}
	b.Clip(x)
	if x[0] != -1 || x[1] != 0.5 {
		t.Fatalf("clip = %v", x)
	}
	if !b.Contains(x) || b.Contains([]float64{2, 0}) {
		t.Fatal("contains")
	}
}

func TestComplexBoxSolvesSphere(t *testing.T) {
	res, err := MinimizeComplexBox(Sphere, UniformBounds(4, -5, 5), ComplexBoxOptions{
		MaxIterations: 3000, Seed: 1, Tolerance: 1e-12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 1e-6 {
		t.Fatalf("sphere not solved: %v", res)
	}
}

func TestComplexBoxSolvesRosenbrock2D(t *testing.T) {
	res, err := MinimizeComplexBox(Rosenbrock, UniformBounds(2, -2.048, 2.048), ComplexBoxOptions{
		MaxIterations: 5000, Seed: 7, Tolerance: 1e-14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 1e-5 {
		t.Fatalf("rosenbrock 2d not solved: %v", res)
	}
	for i, v := range res.X {
		if math.Abs(v-1) > 0.05 {
			t.Fatalf("x[%d] = %v", i, v)
		}
	}
}

func TestComplexBoxDeterministicWithSeed(t *testing.T) {
	run := func() Result {
		r, err := MinimizeComplexBox(Rosenbrock, UniformBounds(3, -2, 2), ComplexBoxOptions{
			MaxIterations: 200, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.F != b.F || a.Evaluations != b.Evaluations {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatalf("x differs at %d", i)
		}
	}
}

func TestComplexBoxRespectsBounds(t *testing.T) {
	b := UniformBounds(3, 2, 3) // minimum of sphere outside the box
	res, err := MinimizeComplexBox(Sphere, b, ComplexBoxOptions{MaxIterations: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Contains(res.X) {
		t.Fatalf("result outside bounds: %v", res.X)
	}
	// Constrained optimum is at (2,2,2) with f=12.
	if math.Abs(res.F-12) > 0.5 {
		t.Fatalf("constrained optimum f = %v", res.F)
	}
}

func TestComplexBoxIterationBudgetRespected(t *testing.T) {
	res, err := MinimizeComplexBox(Rosenbrock, UniformBounds(5, -2, 2), ComplexBoxOptions{
		MaxIterations: 37, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 37 || res.Converged {
		t.Fatalf("iterations = %d converged=%v", res.Iterations, res.Converged)
	}
}

func TestComplexBoxStartPointUsed(t *testing.T) {
	start := []float64{1, 1}
	res, err := MinimizeComplexBox(Rosenbrock, UniformBounds(2, -2, 2), ComplexBoxOptions{
		MaxIterations: 50, Seed: 1, Start: start,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Seeded with the global optimum, the best value can only be 0.
	if res.F != 0 {
		t.Fatalf("f = %v", res.F)
	}
}

func TestComplexBoxInvalidBounds(t *testing.T) {
	if _, err := MinimizeComplexBox(Sphere, Bounds{}, ComplexBoxOptions{}); err == nil {
		t.Fatal("invalid bounds accepted")
	}
}

func TestComplexBoxEvaluationsCounted(t *testing.T) {
	count := 0
	obj := func(x []float64) float64 { count++; return Sphere(x) }
	res, err := MinimizeComplexBox(obj, UniformBounds(2, -1, 1), ComplexBoxOptions{MaxIterations: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != count {
		t.Fatalf("reported %d evaluations, actual %d", res.Evaluations, count)
	}
}

func TestComplexBoxImplicitConstraint(t *testing.T) {
	// Minimize sphere centered at origin subject to staying outside is
	// non-convex; use the convex constraint x+y >= 1 instead: the
	// constrained optimum of x²+y² is (0.5, 0.5) with f = 0.5.
	feasible := func(x []float64) bool { return x[0]+x[1] >= 1 }
	res, err := MinimizeComplexBox(Sphere, UniformBounds(2, -2, 2), ComplexBoxOptions{
		MaxIterations: 3000, Seed: 11, Tolerance: 1e-12, Feasible: feasible,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !feasible(res.X) {
		t.Fatalf("result infeasible: %v", res.X)
	}
	if math.Abs(res.F-0.5) > 0.02 {
		t.Fatalf("constrained optimum f = %v, want ~0.5", res.F)
	}
}

func TestComplexBoxInfeasibleStartRejected(t *testing.T) {
	_, err := MinimizeComplexBox(Sphere, UniformBounds(2, -2, 2), ComplexBoxOptions{
		MaxIterations: 10, Seed: 1,
		Start:    []float64{-1, -1},
		Feasible: func(x []float64) bool { return x[0]+x[1] >= 1 },
	})
	if err == nil {
		t.Fatal("infeasible start accepted")
	}
}

func TestComplexBoxUnsatisfiableConstraint(t *testing.T) {
	_, err := MinimizeComplexBox(Sphere, UniformBounds(2, -1, 1), ComplexBoxOptions{
		MaxIterations: 10, Seed: 1,
		Feasible: func([]float64) bool { return false },
	})
	if err == nil {
		t.Fatal("unsatisfiable constraint accepted")
	}
}

func TestComplexBoxConstraintNeverViolatedDuringSearch(t *testing.T) {
	feasible := func(x []float64) bool { return x[0] >= 0 }
	violations := 0
	obj := func(x []float64) float64 {
		if !feasible(x) {
			violations++
		}
		return Rosenbrock(x)
	}
	if _, err := MinimizeComplexBox(obj, UniformBounds(2, -2, 2), ComplexBoxOptions{
		MaxIterations: 500, Seed: 5, Feasible: feasible,
	}); err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		t.Fatalf("objective evaluated at %d infeasible points", violations)
	}
}

func TestDecompositionPaperConfigurations(t *testing.T) {
	// 30-dim / 3 workers: dims 10,9,9 with a 2-dim manager problem.
	d, err := NewDecomposition(30, 3)
	if err != nil {
		t.Fatal(err)
	}
	dims := d.WorkerDims()
	if dims[0] != 10 || dims[1] != 9 || dims[2] != 9 {
		t.Fatalf("30/3 dims = %v", dims)
	}
	if d.ManagerDim() != 2 {
		t.Fatalf("30/3 manager dim = %d", d.ManagerDim())
	}
	// 100-dim / 7 workers: manager dim 6, interiors sum to 94.
	d7, err := NewDecomposition(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d7.ManagerDim() != 6 {
		t.Fatalf("100/7 manager dim = %d", d7.ManagerDim())
	}
	sum := 0
	for _, w := range d7.WorkerDims() {
		sum += w
	}
	if sum != 94 {
		t.Fatalf("100/7 interior sum = %d", sum)
	}
}

func TestDecompositionErrors(t *testing.T) {
	if _, err := NewDecomposition(3, 0); err == nil {
		t.Error("0 workers accepted")
	}
	if _, err := NewDecomposition(3, 4); err == nil {
		t.Error("too many workers accepted")
	}
}

func TestDecompositionObjectiveSumsToGlobal(t *testing.T) {
	for _, cfg := range []struct{ n, w int }{{30, 3}, {100, 7}, {10, 1}, {7, 3}} {
		d, err := NewDecomposition(cfg.n, cfg.w)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		x := make([]float64, cfg.n)
		for i := range x {
			x[i] = rng.Float64()*4 - 2
		}
		// Extract boundary and blocks from x, evaluate each worker
		// objective, and compare the sum with the global Rosenbrock.
		boundary := make([]float64, d.ManagerDim())
		for i, gi := range d.boundaryIdx {
			boundary[i] = x[gi]
		}
		var sum float64
		blocks := make([][]float64, cfg.w)
		for j := 0; j < cfg.w; j++ {
			block := make([]float64, len(d.blockIdx[j]))
			for i, gi := range d.blockIdx[j] {
				block[i] = x[gi]
			}
			blocks[j] = block
			obj, err := d.SubproblemObjective(j, boundary)
			if err != nil {
				t.Fatal(err)
			}
			sum += obj(block)
		}
		want := Rosenbrock(x)
		if math.Abs(sum-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("n=%d w=%d: sum %v != global %v", cfg.n, cfg.w, sum, want)
		}
		// Assemble must reproduce x.
		back, err := d.Assemble(boundary, blocks)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if back[i] != x[i] {
				t.Fatalf("assemble mismatch at %d", i)
			}
		}
	}
}

// Property: decomposition objectives sum to the global objective for
// random configurations and points.
func TestQuickDecompositionConsistency(t *testing.T) {
	f := func(nRaw, wRaw uint8, seed int64) bool {
		n := 4 + int(nRaw%60)
		w := 1 + int(wRaw%5)
		if n-(w-1) < w {
			return true // invalid configuration, skipped
		}
		d, err := NewDecomposition(n, w)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()*4 - 2
		}
		boundary := make([]float64, d.ManagerDim())
		for i, gi := range d.boundaryIdx {
			boundary[i] = x[gi]
		}
		var sum float64
		for j := 0; j < w; j++ {
			block := make([]float64, len(d.blockIdx[j]))
			for i, gi := range d.blockIdx[j] {
				block[i] = x[gi]
			}
			obj, err := d.SubproblemObjective(j, boundary)
			if err != nil {
				return false
			}
			sum += obj(block)
		}
		want := Rosenbrock(x)
		return math.Abs(sum-want) <= 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecompositionArgumentValidation(t *testing.T) {
	d, err := NewDecomposition(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.SubproblemObjective(-1, []float64{0, 0}); err == nil {
		t.Error("negative worker accepted")
	}
	if _, err := d.SubproblemObjective(0, []float64{0}); err == nil {
		t.Error("short boundary accepted")
	}
	if _, err := d.Assemble([]float64{0}, nil); err == nil {
		t.Error("bad assemble accepted")
	}
	if _, err := d.SubproblemBounds(5, UniformBounds(10, -1, 1)); err == nil {
		t.Error("bad worker bounds accepted")
	}
	if _, err := d.SubproblemBounds(0, UniformBounds(3, -1, 1)); err == nil {
		t.Error("bad global bounds accepted")
	}
	if _, err := d.ManagerBounds(UniformBounds(3, -1, 1)); err == nil {
		t.Error("bad manager bounds accepted")
	}
}

func TestBilevelDecomposedSolveImprovesObjective(t *testing.T) {
	// A small end-to-end bilevel solve (sequential, in-process): the
	// manager optimizes boundary variables; each evaluation solves the
	// worker subproblems. This validates the machinery the distributed
	// layer (internal/rosen) runs over the ORB.
	const n, w = 12, 3
	d, err := NewDecomposition(n, w)
	if err != nil {
		t.Fatal(err)
	}
	global := UniformBounds(n, -2.048, 2.048)
	mb, err := d.ManagerBounds(global)
	if err != nil {
		t.Fatal(err)
	}
	managerObj := func(boundary []float64) float64 {
		var total float64
		for j := 0; j < w; j++ {
			obj, err := d.SubproblemObjective(j, boundary)
			if err != nil {
				t.Fatal(err)
			}
			sb, err := d.SubproblemBounds(j, global)
			if err != nil {
				t.Fatal(err)
			}
			res, err := MinimizeComplexBox(obj, sb, ComplexBoxOptions{
				MaxIterations: 300, Seed: int64(j + 1),
			})
			if err != nil {
				t.Fatal(err)
			}
			total += res.F
		}
		return total
	}
	res, err := MinimizeComplexBox(managerObj, mb, ComplexBoxOptions{
		MaxIterations: 25, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A random point in the box scores ~hundreds; the bilevel solve must
	// get at least below 5.
	if res.F > 5 {
		t.Fatalf("bilevel solve too poor: %v", res)
	}
}
