package ft

import (
	"context"
	"sync"
	"testing"

	"repro/internal/cdr"
	"repro/internal/naming"
	"repro/internal/orb"
)

// benchResolver hands out a fixed reference without a naming service.
type benchResolver struct {
	mu  sync.Mutex
	ref orb.ObjectRef
}

func (r *benchResolver) Resolve(context.Context, naming.Name) (orb.ObjectRef, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ref, nil
}

// benchState is a checkpointable servant with a vector payload sized like
// a worker warm-start blob; each bump call perturbs one element, so delta
// checkpoints stay small while full snapshots do not.
type benchState struct {
	mu  sync.Mutex
	vec []float64
	n   int64
}

func newBenchState(dim int) *benchState { return &benchState{vec: make([]float64, dim)} }

func (s *benchState) TypeID() string { return "IDL:repro/BenchState:1.0" }

func (s *benchState) Invoke(_ *orb.ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	if op != "bump" {
		return orb.BadOperation(op)
	}
	i := in.GetInt64()
	if err := in.Err(); err != nil {
		return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
	}
	s.mu.Lock()
	s.n++
	s.vec[int(i)%len(s.vec)] += 1
	v := s.n
	s.mu.Unlock()
	out.PutInt64(v)
	return nil
}

func (s *benchState) Checkpoint() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := cdr.NewEncoder(16 + 8*len(s.vec))
	e.PutFloat64Seq(s.vec)
	e.PutInt64(s.n)
	return e.Bytes(), nil
}

func (s *benchState) Restore(data []byte) error {
	d := cdr.NewDecoder(data)
	vec := d.GetFloat64Seq()
	n := d.GetInt64()
	if err := d.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	s.vec, s.n = vec, n
	s.mu.Unlock()
	return nil
}

// newBenchProxy wires servant + store service over loopback TCP and
// builds a proxy with the given policy.
func newBenchProxy(b *testing.B, policy Policy) *Proxy {
	b.Helper()
	srv := orb.New(orb.Options{Name: "bench-srv"})
	b.Cleanup(srv.Shutdown)
	ad, err := srv.NewAdapter("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ref := ad.Activate("state", Wrap(newBenchState(64)))
	storeRef := ad.Activate(StoreDefaultKey, NewStoreServant(NewMemStore()))

	cli := orb.New(orb.Options{Name: "bench-cli"})
	b.Cleanup(cli.Shutdown)
	store := NewStoreClient(cli, storeRef)

	p, err := NewProxy(context.Background(), cli, naming.NewName("bench"),
		&benchResolver{ref: ref}, store, policy)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkProxyCall measures the fault-tolerant proxy invocation path —
// business call plus checkpoint-after-call — the per-call overhead the
// paper's Table 1 quantifies. Tracked by the PR-level allocation gate.
func BenchmarkProxyCall(b *testing.B) {
	run := func(b *testing.B, policy Policy) {
		p := newBenchProxy(b, policy)
		ctx := context.Background()
		var i int64
		call := func() error {
			return p.Call(ctx, "bump",
				func(e *cdr.Encoder) { e.PutInt64(i) },
				func(d *cdr.Decoder) error { _ = d.GetInt64(); return d.Err() })
		}
		if err := call(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i = 0; i < int64(b.N); i++ {
			if err := call(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		_ = p.Close()
		if st := p.Stats(); st.Checkpoints > 0 {
			b.ReportMetric(float64(st.CheckpointBytes)/float64(st.Checkpoints), "ckpt_B/op")
		}
	}

	b.Run("every=1", func(b *testing.B) {
		run(b, Policy{CheckpointEvery: 1})
	})
	b.Run("every=1/delta", func(b *testing.B) {
		run(b, Policy{CheckpointEvery: 1, DeltaCheckpoint: true})
	})
	b.Run("every=1/async", func(b *testing.B) {
		run(b, Policy{CheckpointEvery: 1, AsyncCheckpoint: true, QueueDepth: 8})
	})
	b.Run("every=1/async/delta", func(b *testing.B) {
		run(b, Policy{CheckpointEvery: 1, AsyncCheckpoint: true, QueueDepth: 8, DeltaCheckpoint: true})
	})
	b.Run("nockpt", func(b *testing.B) {
		run(b, Policy{CheckpointEvery: 0})
	})
}
