package ft

import (
	"context"
	"testing"

	"repro/internal/cdr"
)

// putFull and getFull keep the (epoch, data) shape of the pre-Checkpoint
// Store API for tests that exercise plain full-snapshot semantics; the
// delta/codec paths are tested against the Checkpoint type directly.

func putFull(ctx context.Context, s Store, key string, epoch uint64, data []byte) error {
	return s.Put(ctx, key, Full(epoch, data))
}

func getFull(ctx context.Context, s Store, key string) (uint64, []byte, error) {
	cp, err := s.Get(ctx, key)
	return cp.Epoch, cp.Data, err
}

// decodeCounterState decodes a counterServant checkpoint payload.
func decodeCounterState(t *testing.T, data []byte) int64 {
	t.Helper()
	d := cdr.NewDecoder(data)
	v := d.GetInt64()
	if err := d.Err(); err != nil {
		t.Fatalf("decoding counter state: %v", err)
	}
	return v
}

// encodeInt64Arg / discardInt64Reply are the marshal halves of a counter
// "inc" call for tests that go through Proxy.Call directly.
func encodeInt64Arg(v int64) func(*cdr.Encoder) {
	return func(e *cdr.Encoder) { e.PutInt64(v) }
}

func discardInt64Reply(d *cdr.Decoder) error {
	_ = d.GetInt64()
	return d.Err()
}
