// Package ft implements the paper's fault-tolerance contribution:
// client-side proxy classes that checkpoint a server object's state after
// each successful method call and, on CORBA::COMM_FAILURE, obtain a fresh
// reference from the naming service (getting load-aware placement for
// free), restore the last checkpoint into the new server object, and
// replay the failed call. The same recovery wraps DII deferred requests
// via request proxies, and a checkpoint storage service holds the state
// blobs (memory-backed like the paper's prototype, or disk-backed — the
// persistence the paper lists as future work).
package ft

import (
	"context"

	"repro/internal/cdr"
	"repro/internal/orb"
)

// Checkpointing operations every fault-tolerant service exposes. The
// underscore prefix mirrors CORBA's reserved pseudo-operations; the
// Wrapper adds them to any servant.
const (
	// OpCheckpoint returns the servant's serialized state.
	OpCheckpoint = "_get_checkpoint"
	// OpRestore replaces the servant's state with a serialized blob.
	OpRestore = "_restore"
)

// Checkpointable is the state contract a service implementation provides
// so its servant can be wrapped: serialize the internal state, and replace
// it from a serialized blob (the paper's "method to create a checkpoint
// for restarting the service").
type Checkpointable interface {
	Checkpoint() ([]byte, error)
	Restore(data []byte) error
}

// ExCheckpointFailed is raised when a servant cannot produce or apply a
// checkpoint.
const ExCheckpointFailed = "IDL:repro/FT/CheckpointFailed:1.0"

// Wrapper extends any servant with the checkpointing operations. Business
// operations pass through to Inner; OpCheckpoint/OpRestore go to State.
// Inner and State are typically the same object.
type Wrapper struct {
	Inner orb.Servant
	State Checkpointable
}

// Wrap builds a Wrapper for a servant that implements both orb.Servant and
// Checkpointable.
func Wrap[S interface {
	orb.Servant
	Checkpointable
}](s S) *Wrapper {
	return &Wrapper{Inner: s, State: s}
}

// TypeID implements orb.Servant.
func (w *Wrapper) TypeID() string { return w.Inner.TypeID() }

// Invoke implements orb.Servant.
func (w *Wrapper) Invoke(ctx *orb.ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	switch op {
	case OpCheckpoint:
		data, err := w.State.Checkpoint()
		if err != nil {
			return &orb.UserException{RepoID: ExCheckpointFailed, Detail: err.Error()}
		}
		out.PutBytes(data)
		return nil
	case OpRestore:
		data := in.GetBytes()
		if err := in.Err(); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		if err := w.State.Restore(data); err != nil {
			return &orb.UserException{RepoID: ExCheckpointFailed, Detail: err.Error()}
		}
		return nil
	default:
		return w.Inner.Invoke(ctx, op, in, out)
	}
}

// FetchCheckpoint pulls the current state blob from the servant at ref.
func FetchCheckpoint(ctx context.Context, o *orb.ORB, ref orb.ObjectRef) ([]byte, error) {
	var data []byte
	err := o.Call(ctx, ref, OpCheckpoint, nil, func(d *cdr.Decoder) error {
		data = d.GetBytes()
		return d.Err()
	})
	return data, err
}

// PushRestore installs a state blob into the servant at ref.
func PushRestore(ctx context.Context, o *orb.ORB, ref orb.ObjectRef, data []byte) error {
	return o.Call(ctx, ref, OpRestore, func(e *cdr.Encoder) { e.PutBytes(data) }, nil)
}
