package ft

import (
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"

	"repro/internal/naming"
	"repro/internal/obs"
	"repro/internal/orb"
)

// deadPinger fails every probe — the whole group looks dead.
type deadPinger struct{}

func (deadPinger) Ping(context.Context, orb.ObjectRef) error { return errPingFailed }

// syncBuf is a goroutine-safe byte buffer for slog output.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestDetectorEvictionObservability(t *testing.T) {
	w := newFTWorld(t)
	var buf syncBuf
	logger := slog.New(slog.NewTextHandler(&buf, nil))

	type eviction struct {
		name       naming.Name
		host       string
		suspicions int
	}
	var evictions []eviction
	det := NewDetector(deadPinger{}, w.naming, DetectorOptions{
		Suspicions: 2,
		Logger:     logger,
		OnEvict: func(name naming.Name, o naming.Offer, suspicions int) {
			evictions = append(evictions, eviction{name, o.Host, suspicions})
		},
	})
	det.Watch(w.name)

	reg := obs.NewRegistry()
	det.ExportMetrics(reg)

	det.Step(context.Background()) // suspicion 1 on both offers
	if det.Evicted() != 0 {
		t.Fatalf("evicted after one suspicion: %d", det.Evicted())
	}
	if n := det.Step(context.Background()); n != 2 {
		t.Fatalf("second step unbound %d offers, want 2", n)
	}

	if det.Evicted() != 2 || det.Removed() != 2 {
		t.Fatalf("evicted=%d removed=%d", det.Evicted(), det.Removed())
	}
	if len(evictions) != 2 {
		t.Fatalf("OnEvict fired %d times", len(evictions))
	}
	for _, e := range evictions {
		if e.suspicions != 2 {
			t.Fatalf("eviction at suspicion count %d, want 2", e.suspicions)
		}
		if e.name.String() != w.name.String() {
			t.Fatalf("evicted name %q", e.name)
		}
	}

	// The slog line carries the full offer key and the suspicion count.
	out := buf.String()
	if !strings.Contains(out, "ft: dead offer evicted") {
		t.Fatalf("no eviction log line in:\n%s", out)
	}
	if !strings.Contains(out, "suspicions=2") {
		t.Fatalf("suspicion count missing from log:\n%s", out)
	}
	if !strings.Contains(out, w.name.String()+"|") {
		t.Fatalf("offer key missing from log:\n%s", out)
	}

	// The counter is scrapable under the shared eviction metric name.
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "naming_offers_evicted_total 2") {
		t.Fatalf("metric not exported:\n%s", sb.String())
	}
}
