package ft

import (
	"errors"

	"repro/internal/cdr"
)

// Delta encoding for incremental checkpoints: a delta is the list of byte
// ranges of the new state that differ from the base state, plus the new
// total length. Iterative numerical services (the rosen workers) mutate a
// fixed-size state vector of which only some coordinates move per round,
// so shipping the changed ranges instead of the whole blob cuts
// checkpoint bytes-on-wire roughly by the fraction of state untouched.
//
// Wire format (CDR):
//
//	u64 baseLen   — len(base) the delta was computed against (sanity)
//	u64 newLen    — length of the materialized result
//	u32 count     — number of patch segments
//	count × { u64 offset, bytes chunk }
//
// Materialization starts from base truncated/extended to newLen (new
// bytes zero-filled) and overlays each segment.

// deltaMergeGap is the run-merging threshold: differing ranges separated
// by fewer than this many equal bytes are emitted as one segment, trading
// a few redundant payload bytes for fewer segment headers.
const deltaMergeGap = 16

// ComputeDelta encodes next as a delta against base. The result is only
// useful with ApplyDelta(base, …); callers should fall back to a full
// snapshot when the delta is not actually smaller.
func ComputeDelta(base, next []byte) []byte {
	type seg struct{ start, end int }
	var segs []seg
	n := len(next)
	common := len(base)
	if n < common {
		common = n
	}
	i := 0
	for i < common {
		if base[i] == next[i] {
			i++
			continue
		}
		start := i
		last := i
		for i < common {
			if base[i] != next[i] {
				last = i
				i++
				continue
			}
			// Equal byte: look ahead — close the segment only when a run of
			// at least deltaMergeGap equal bytes follows.
			j := i
			for j < common && base[j] == next[j] && j-i < deltaMergeGap {
				j++
			}
			if j-i >= deltaMergeGap || j == common {
				break
			}
			i = j
			last = j - 1
		}
		segs = append(segs, seg{start: start, end: last + 1})
	}
	if n > len(base) {
		// Appended tail beyond the base length.
		segs = append(segs, seg{start: len(base), end: n})
	}

	size := 8 + 8 + 4
	for _, s := range segs {
		size += 12 + (s.end - s.start)
	}
	e := cdr.NewEncoder(size)
	e.PutUint64(uint64(len(base)))
	e.PutUint64(uint64(n))
	e.PutUint32(uint32(len(segs)))
	for _, s := range segs {
		e.PutUint64(uint64(s.start))
		e.PutBytes(next[s.start:s.end])
	}
	return e.Bytes()
}

// ApplyDelta materializes a delta produced by ComputeDelta(base, next),
// returning next. It fails when the delta was computed against a
// different base length or is structurally damaged.
func ApplyDelta(base, delta []byte) ([]byte, error) {
	d := cdr.NewDecoder(delta)
	baseLen := d.GetUint64()
	newLen := d.GetUint64()
	count := d.GetUint32()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if baseLen != uint64(len(base)) {
		return nil, errors.New("ft: delta computed against a different base length")
	}
	out := make([]byte, newLen)
	copy(out, base)
	for k := uint32(0); k < count; k++ {
		off := d.GetUint64()
		chunk := d.GetBytes()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if off+uint64(len(chunk)) > newLen {
			return nil, errors.New("ft: delta segment out of range")
		}
		copy(out[off:], chunk)
	}
	return out, nil
}
