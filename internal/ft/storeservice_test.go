package ft

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/orb"
)

// newRemoteStore serves backing via a StoreServant on its own ORB and
// returns a StoreClient stub talking to it over TCP.
func newRemoteStore(t *testing.T, backing Store) *StoreClient {
	t.Helper()
	server := orb.New(orb.Options{Name: "store-server"})
	t.Cleanup(server.Shutdown)
	ad, err := server.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ref := ad.Activate(StoreDefaultKey, NewStoreServant(backing))

	client := orb.New(orb.Options{Name: "store-client"})
	t.Cleanup(client.Shutdown)
	return NewStoreClient(client, ref)
}

// TestStoreClientWireRoundTrip: the typed sentinels must survive the
// GIOP round trip — errors.Is must work identically against a remote
// store and a local one.
func TestStoreClientWireRoundTrip(t *testing.T) {
	sc := newRemoteStore(t, NewMemStore())
	ctx := context.Background()

	if err := putFull(ctx, sc, "svc", 2, []byte("state")); err != nil {
		t.Fatal(err)
	}
	epoch, data, err := getFull(ctx, sc, "svc")
	if err != nil || epoch != 2 || string(data) != "state" {
		t.Fatalf("got %d %q %v", epoch, data, err)
	}

	// Stale epoch comes back typed.
	if err := putFull(ctx, sc, "svc", 2, []byte("again")); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale put err = %v, want ErrStaleEpoch", err)
	}
	if err := putFull(ctx, sc, "svc", 1, []byte("older")); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("rollback put err = %v, want ErrStaleEpoch", err)
	}

	// Missing checkpoint comes back typed.
	if _, _, err := getFull(ctx, sc, "ghost"); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing get err = %v, want ErrNoCheckpoint", err)
	}

	if err := sc.Delete(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := getFull(ctx, sc, "svc"); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("deleted get err = %v, want ErrNoCheckpoint", err)
	}
	keys, err := sc.Keys(ctx)
	if err != nil || len(keys) != 0 {
		t.Fatalf("keys = %v, %v", keys, err)
	}
}

// TestStoreClientCorruptCheckpointOnWire: a corrupt on-disk checkpoint
// must surface to the remote client as a distinguishable typed error —
// not ErrNoCheckpoint, and never a zero-epoch success.
func TestStoreClientCorruptCheckpointOnWire(t *testing.T) {
	dir := t.TempDir()
	disk, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sc := newRemoteStore(t, disk)
	ctx := context.Background()

	if err := putFull(ctx, sc, "svc", 1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored file behind the daemon's back.
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("dir = %v, %v", entries, err)
	}
	if err := os.WriteFile(filepath.Join(dir, entries[0].Name()), []byte{0xff}, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = getFull(ctx, sc, "svc")
	if err == nil {
		t.Fatal("corrupt checkpoint read succeeded over the wire")
	}
	if !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
	}
	if errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("corruption reported as missing checkpoint: %v", err)
	}
}

// TestStoreClientHonoursContext: the stub is ctx-first — an expired
// deadline fails the call promptly instead of stalling a recovery path
// on a dead store daemon.
func TestStoreClientHonoursContext(t *testing.T) {
	sc := newRemoteStore(t, NewMemStore())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := putFull(ctx, sc, "svc", 1, []byte("x"))
	if err == nil {
		t.Fatal("put with cancelled ctx succeeded")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancelled put took %v", el)
	}
}

// TestReplicatedStoreOverWire: the quorum client composed of three real
// remote replicas (separate ORBs, separate TCP endpoints) keeps serving
// reads and writes when one daemon crashes mid-run.
func TestReplicatedStoreOverWire(t *testing.T) {
	backings := []*MemStore{NewMemStore(), NewMemStore(), NewMemStore()}
	var orbs []*orb.ORB
	stores := make([]Store, len(backings))
	client := orb.New(orb.Options{Name: "quorum-client"})
	t.Cleanup(client.Shutdown)
	for i, b := range backings {
		server := orb.New(orb.Options{Name: "replica"})
		orbs = append(orbs, server)
		t.Cleanup(server.Shutdown)
		ad, err := server.NewAdapter("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ref := ad.Activate(StoreDefaultKey, NewStoreServant(b))
		stores[i] = NewStoreClient(client, ref)
	}
	rs, err := NewReplicatedStore(stores)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if err := putFull(ctx, rs, "svc", 1, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Crash replica 0's whole ORB.
	orbs[0].Shutdown()
	if err := putFull(ctx, rs, "svc", 2, []byte("v2")); err != nil {
		t.Fatalf("put with a dead replica: %v", err)
	}
	epoch, data, err := getFull(ctx, rs, "svc")
	if err != nil || epoch != 2 || string(data) != "v2" {
		t.Fatalf("get with a dead replica: %d %q %v", epoch, data, err)
	}
	rs.WaitRepairs()
	// The surviving backings both hold the newest epoch.
	for i := 1; i < len(backings); i++ {
		epoch, _, err := getFull(ctx, backings[i], "svc")
		if err != nil || epoch != 2 {
			t.Fatalf("backing %d holds epoch %d, %v", i, epoch, err)
		}
	}
}
