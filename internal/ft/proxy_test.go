package ft

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/naming"
	"repro/internal/orb"
)

// counterServant is a stateful test service: inc(by) returns the new
// value, get() returns it. State is the single int64.
type counterServant struct {
	mu    sync.Mutex
	value int64
}

func (c *counterServant) TypeID() string { return "IDL:repro/Counter:1.0" }

func (c *counterServant) Invoke(_ *orb.ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch op {
	case "inc":
		by := in.GetInt64()
		if err := in.Err(); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		c.value += by
		out.PutInt64(c.value)
		return nil
	case "get":
		out.PutInt64(c.value)
		return nil
	case "fail_user":
		return &orb.UserException{RepoID: "IDL:repro/Boom:1.0", Detail: "requested"}
	default:
		return orb.BadOperation(op)
	}
}

func (c *counterServant) Checkpoint() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := cdr.NewEncoder(8)
	e.PutInt64(c.value)
	return e.Bytes(), nil
}

func (c *counterServant) Restore(data []byte) error {
	d := cdr.NewDecoder(data)
	v := d.GetInt64()
	if err := d.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	c.value = v
	c.mu.Unlock()
	return nil
}

// ftWorld is a complete fault-tolerance test fixture: a services process
// (naming + checkpoint store), two server processes each hosting a wrapped
// counter servant registered as offers of one name, and a client ORB.
type ftWorld struct {
	t        *testing.T
	client   *orb.ORB
	services *orb.ORB
	srvA     *orb.ORB
	srvB     *orb.ORB
	adA      *orb.Adapter
	adB      *orb.Adapter
	ctrA     *counterServant
	ctrB     *counterServant
	naming   *naming.Client
	nsSrv    *naming.Servant
	nsHub    *naming.Hub
	store    *StoreClient
	name     naming.Name
}

func newFTWorld(t *testing.T) *ftWorld {
	t.Helper()
	w := &ftWorld{t: t, name: naming.NewName("counter")}

	w.services = orb.New(orb.Options{Name: "services"})
	t.Cleanup(w.services.Shutdown)
	svcAd, err := w.services.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := naming.NewRegistry()
	w.nsSrv = naming.NewServant(reg, naming.RoundRobinSelector())
	w.nsHub = naming.NewHub(w.services, reg, naming.HubOptions{})
	w.nsHub.Start()
	t.Cleanup(w.nsHub.Stop)
	w.nsSrv.SetHub(w.nsHub)
	nsRef := svcAd.Activate(naming.DefaultKey, w.nsSrv)
	storeRef := svcAd.Activate(StoreDefaultKey, NewStoreServant(NewMemStore()))

	w.client = orb.New(orb.Options{Name: "client"})
	t.Cleanup(w.client.Shutdown)
	w.naming = naming.NewClient(w.client, nsRef)
	w.store = NewStoreClient(w.client, storeRef)

	w.srvA = orb.New(orb.Options{Name: "srvA"})
	t.Cleanup(w.srvA.Shutdown)
	w.adA, err = w.srvA.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w.ctrA = &counterServant{}
	refA := w.adA.Activate("ctr", Wrap(w.ctrA))

	w.srvB = orb.New(orb.Options{Name: "srvB"})
	t.Cleanup(w.srvB.Shutdown)
	w.adB, err = w.srvB.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w.ctrB = &counterServant{}
	refB := w.adB.Activate("ctr", Wrap(w.ctrB))

	if err := w.naming.BindOffer(context.Background(), w.name, refA, "hostA"); err != nil {
		t.Fatal(err)
	}
	if err := w.naming.BindOffer(context.Background(), w.name, refB, "hostB"); err != nil {
		t.Fatal(err)
	}
	return w
}

func (w *ftWorld) newProxy(policy Policy, opts ...ProxyOption) *Proxy {
	w.t.Helper()
	opts = append(opts, WithUnbinder(w.naming))
	p, err := NewProxy(context.Background(), w.client, w.name, w.naming, w.store, policy, opts...)
	if err != nil {
		w.t.Fatal(err)
	}
	return p
}

func inc(p *Proxy, by int64) (int64, error) {
	var v int64
	err := p.Invoke(context.Background(), "inc",
		func(e *cdr.Encoder) { e.PutInt64(by) },
		func(d *cdr.Decoder) error { v = d.GetInt64(); return d.Err() })
	return v, err
}

func TestProxyForwardsCalls(t *testing.T) {
	w := newFTWorld(t)
	p := w.newProxy(Policy{CheckpointEvery: 1})
	for i := int64(1); i <= 3; i++ {
		v, err := inc(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if v != i {
			t.Fatalf("value = %d, want %d", v, i)
		}
	}
	st := p.Stats()
	if st.Calls != 3 || st.Checkpoints != 3 || st.Recoveries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProxyCheckpointsLandInStore(t *testing.T) {
	w := newFTWorld(t)
	p := w.newProxy(Policy{CheckpointEvery: 1})
	if _, err := inc(p, 41); err != nil {
		t.Fatal(err)
	}
	epoch, data, err := getFull(context.Background(), w.store, w.name.String())
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("epoch = %d", epoch)
	}
	d := cdr.NewDecoder(data)
	if got := d.GetInt64(); got != 41 {
		t.Fatalf("checkpointed value = %d", got)
	}
}

func TestProxyRecoversAcrossServerCrash(t *testing.T) {
	w := newFTWorld(t)
	p := w.newProxy(Policy{CheckpointEvery: 1})
	// Round-robin resolve: the proxy starts on server A.
	if _, err := inc(p, 10); err != nil {
		t.Fatal(err)
	}
	// Kill A: the next call hits COMM_FAILURE, recovery resolves B,
	// restores value=10 there, and replays inc(5) → 15.
	w.adA.Close()
	w.srvA.Shutdown()
	v, err := inc(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v != 15 {
		t.Fatalf("value after recovery = %d, want 15", v)
	}
	st := p.Stats()
	if st.Recoveries != 1 || st.Replays != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The dead offer was unbound: only hostB remains.
	offers, err := w.naming.ListOffers(context.Background(), w.name)
	if err != nil || len(offers) != 1 || offers[0].Host != "hostB" {
		t.Fatalf("offers = %+v, %v", offers, err)
	}
	// Server B carries the restored state.
	if w.ctrB.value != 15 {
		t.Fatalf("ctrB = %d", w.ctrB.value)
	}
	// Server A's state is obsolete but untouched (it is dead).
	if w.ctrA.value != 10 {
		t.Fatalf("ctrA = %d", w.ctrA.value)
	}
}

func TestProxyCrashBeforeAnyCheckpoint(t *testing.T) {
	w := newFTWorld(t)
	p := w.newProxy(Policy{CheckpointEvery: 1})
	w.adA.Close()
	w.srvA.Shutdown()
	// No checkpoint exists; recovery resolves B and replays against its
	// zero state — the stateless-service path the paper describes first.
	v, err := inc(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Fatalf("value = %d", v)
	}
}

func TestProxyCheckpointEveryN(t *testing.T) {
	w := newFTWorld(t)
	p := w.newProxy(Policy{CheckpointEvery: 3})
	for i := 0; i < 7; i++ {
		if _, err := inc(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Checkpoints != 2 { // after calls 3 and 6
		t.Fatalf("checkpoints = %d", st.Checkpoints)
	}
}

func TestProxyNoCheckpointingWhenDisabled(t *testing.T) {
	w := newFTWorld(t)
	p := w.newProxy(Policy{CheckpointEvery: 0})
	for i := 0; i < 5; i++ {
		if _, err := inc(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	if st := p.Stats(); st.Checkpoints != 0 {
		t.Fatalf("checkpoints = %d", st.Checkpoints)
	}
	if _, _, err := getFull(context.Background(), w.store, w.name.String()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("store err = %v", err)
	}
}

func TestProxyUserExceptionNotRecovered(t *testing.T) {
	w := newFTWorld(t)
	p := w.newProxy(Policy{CheckpointEvery: 1})
	err := p.Invoke(context.Background(), "fail_user", nil, nil)
	if !orb.IsUserException(err, "IDL:repro/Boom:1.0") {
		t.Fatalf("err = %v", err)
	}
	if st := p.Stats(); st.Recoveries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProxyRecoveryExhausted(t *testing.T) {
	w := newFTWorld(t)
	p := w.newProxy(Policy{CheckpointEvery: 1, MaxRecoveries: 2})
	// Kill both servers: recovery cannot succeed.
	w.adA.Close()
	w.srvA.Shutdown()
	w.adB.Close()
	w.srvB.Shutdown()
	_, err := inc(p, 1)
	var re *RecoveryError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v", err)
	}
	// The terminal cause is either the transport failure itself or — once
	// the proxy has unbound every dead offer — the naming service
	// reporting that no server is left.
	cause := errors.Unwrap(re)
	if !orb.IsCommFailure(cause) && !orb.IsUserException(cause, naming.ExNotFound) {
		t.Fatalf("unwrapped = %v", cause)
	}
}

func TestProxyEpochAdoption(t *testing.T) {
	w := newFTWorld(t)
	// Simulate a previous proxy incarnation having stored epoch 9.
	if err := putFull(context.Background(), w.store, w.name.String(), 9, []byte{0, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	p := w.newProxy(Policy{CheckpointEvery: 1})
	if _, err := inc(p, 1); err != nil {
		t.Fatal(err)
	}
	epoch, _, err := getFull(context.Background(), w.store, w.name.String())
	if err != nil || epoch != 10 {
		t.Fatalf("epoch = %d, %v", epoch, err)
	}
}

func TestProxyStrictCheckpointPropagatesFailure(t *testing.T) {
	w := newFTWorld(t)
	// A store that always rejects puts.
	bad := &rejectingStore{}
	p, err := NewProxy(context.Background(), w.client, w.name, w.naming, bad, Policy{CheckpointEvery: 1, StrictCheckpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc(p, 1); err == nil {
		t.Fatal("strict checkpoint failure not propagated")
	}
	// Non-strict: same failure is absorbed, call succeeds.
	p2, err := NewProxy(context.Background(), w.client, w.name, w.naming, bad, Policy{CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc(p2, 1); err != nil {
		t.Fatal(err)
	}
	if st := p2.Stats(); st.CheckpointFailures != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

type rejectingStore struct{}

func (rejectingStore) Put(context.Context, string, Checkpoint) error {
	return errors.New("store full")
}
func (rejectingStore) Get(context.Context, string) (Checkpoint, error) {
	return Checkpoint{}, ErrNoCheckpoint
}
func (rejectingStore) Delete(context.Context, string) error   { return nil }
func (rejectingStore) Keys(context.Context) ([]string, error) { return nil, nil }

func TestProxyMigrate(t *testing.T) {
	w := newFTWorld(t)
	p := w.newProxy(Policy{CheckpointEvery: 1})
	if _, err := inc(p, 30); err != nil {
		t.Fatal(err)
	}
	// Migrate the service from A to B due to "a changing load situation".
	offers, err := w.naming.ListOffers(context.Background(), w.name)
	if err != nil {
		t.Fatal(err)
	}
	var target orb.ObjectRef
	for _, o := range offers {
		if o.Host == "hostB" {
			target = o.Ref
		}
	}
	if err := p.Migrate(context.Background(), target); err != nil {
		t.Fatal(err)
	}
	if w.ctrB.value != 30 {
		t.Fatalf("migrated value = %d", w.ctrB.value)
	}
	v, err := inc(p, 1)
	if err != nil || v != 31 {
		t.Fatalf("post-migration inc = %d, %v", v, err)
	}
	if w.ctrA.value != 30 {
		t.Fatalf("ctrA mutated after migration: %d", w.ctrA.value)
	}
}

func TestProxyConcurrentCallsDuringCrash(t *testing.T) {
	w := newFTWorld(t)
	p := w.newProxy(Policy{CheckpointEvery: 0, MaxRecoveries: 5})
	if _, err := inc(p, 0); err != nil {
		t.Fatal(err)
	}
	w.adA.Close()
	w.srvA.Shutdown()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := inc(p, 1)
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if w.ctrB.value != 8 {
		t.Fatalf("ctrB = %d, want 8", w.ctrB.value)
	}
}

func TestRequestProxyAsyncRecovery(t *testing.T) {
	w := newFTWorld(t)
	p := w.newProxy(Policy{CheckpointEvery: 1})
	// Seed state via a sync call (checkpoint lands in the store).
	if _, err := inc(p, 100); err != nil {
		t.Fatal(err)
	}
	w.adA.Close()
	w.srvA.Shutdown()
	req := p.NewRequest(context.Background(), "inc")
	req.Args().PutInt64(1)
	req.Send()
	var v int64
	if err := req.GetResponse(func(d *cdr.Decoder) error { v = d.GetInt64(); return d.Err() }); err != nil {
		t.Fatal(err)
	}
	if v != 101 {
		t.Fatalf("async recovered value = %d", v)
	}
}

func TestRequestProxyNormalFlow(t *testing.T) {
	w := newFTWorld(t)
	p := w.newProxy(Policy{CheckpointEvery: 1})
	req := p.NewRequest(context.Background(), "inc")
	req.Args().PutInt64(2)
	if req.PollResponse() {
		t.Fatal("poll before send")
	}
	req.Send()
	req.Send() // idempotent
	var v int64
	if err := req.GetResponse(func(d *cdr.Decoder) error { v = d.GetInt64(); return d.Err() }); err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("v = %d", v)
	}
	if st := p.Stats(); st.Calls != 1 || st.Checkpoints != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProxyWithInitialRef(t *testing.T) {
	w := newFTWorld(t)
	offers, err := w.naming.ListOffers(context.Background(), w.name)
	if err != nil {
		t.Fatal(err)
	}
	// Pin the proxy to the second offer; no initial resolve happens.
	p, err := NewProxy(context.Background(), w.client, w.name, w.naming, w.store,
		Policy{CheckpointEvery: 1}, WithInitialRef(offers[1].Ref))
	if err != nil {
		t.Fatal(err)
	}
	if p.Ref() != offers[1].Ref {
		t.Fatalf("ref = %v", p.Ref())
	}
	if v, err := inc(p, 3); err != nil || v != 3 {
		t.Fatalf("inc = %d, %v", v, err)
	}
	if w.ctrB.value != 3 {
		t.Fatalf("call went to the wrong servant: A=%d B=%d", w.ctrA.value, w.ctrB.value)
	}
}

func TestProxyNotifyOneway(t *testing.T) {
	w := newFTWorld(t)
	p := w.newProxy(Policy{})
	// The counter servant ignores unknown ops for oneways (no reply), so
	// just verify the call is written without error.
	if err := p.Notify(context.Background(), "inc", func(e *cdr.Encoder) { e.PutInt64(5) }); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		w.ctrA.mu.Lock()
		v := w.ctrA.value
		w.ctrA.mu.Unlock()
		if v == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("oneway never arrived")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRequestProxyOperation(t *testing.T) {
	w := newFTWorld(t)
	p := w.newProxy(Policy{})
	if op := p.NewRequest(context.Background(), "inc").Operation(); op != "inc" {
		t.Fatalf("operation = %q", op)
	}
	if w.store.Ref().IsNil() {
		t.Fatal("store ref nil")
	}
}

func TestRequestProxyGetBeforeSend(t *testing.T) {
	w := newFTWorld(t)
	p := w.newProxy(Policy{})
	req := p.NewRequest(context.Background(), "inc")
	if err := req.GetResponse(nil); !orb.IsSystemException(err, orb.ExBadOperation) {
		t.Fatalf("err = %v", err)
	}
}

func TestWrapperCheckpointRestoreOps(t *testing.T) {
	w := newFTWorld(t)
	offers, err := w.naming.ListOffers(context.Background(), w.name)
	if err != nil {
		t.Fatal(err)
	}
	refA := offers[0].Ref
	w.ctrA.value = 5
	data, err := FetchCheckpoint(context.Background(), w.client, refA)
	if err != nil {
		t.Fatal(err)
	}
	w.ctrA.value = 0
	if err := PushRestore(context.Background(), w.client, refA, data); err != nil {
		t.Fatal(err)
	}
	if w.ctrA.value != 5 {
		t.Fatalf("restored = %d", w.ctrA.value)
	}
}

func TestWrapperRestoreGarbageFails(t *testing.T) {
	w := newFTWorld(t)
	offers, _ := w.naming.ListOffers(context.Background(), w.name)
	err := PushRestore(context.Background(), w.client, offers[0].Ref, []byte{1, 2, 3})
	if !orb.IsUserException(err, ExCheckpointFailed) {
		t.Fatalf("err = %v", err)
	}
}

func TestFactoryCreatesServants(t *testing.T) {
	w := newFTWorld(t)
	factory := NewFactory(w.adB, "ctr", func() orb.Servant { return Wrap(&counterServant{}) })
	factoryRef := w.adB.Activate("ctr-factory", factory)

	ref, err := CreateViaFactory(context.Background(), w.client, factoryRef)
	if err != nil {
		t.Fatal(err)
	}
	if ref.IsNil() {
		t.Fatal("nil ref from factory")
	}
	// The created servant is live and checkpointable.
	if err := PushRestore(context.Background(), w.client, ref, mustCheckpoint(t, &counterServant{value: 9})); err != nil {
		t.Fatal(err)
	}
	var v int64
	if err := w.client.Call(context.Background(), ref, "get", nil, func(d *cdr.Decoder) error { v = d.GetInt64(); return d.Err() }); err != nil {
		t.Fatal(err)
	}
	if v != 9 {
		t.Fatalf("v = %d", v)
	}
	if len(factory.Created()) != 1 {
		t.Fatalf("created = %d", len(factory.Created()))
	}
	if err := w.client.Call(context.Background(), factoryRef, "bogus", nil, nil); !orb.IsSystemException(err, orb.ExBadOperation) {
		t.Fatalf("err = %v", err)
	}
}

func mustCheckpoint(t *testing.T, c Checkpointable) []byte {
	t.Helper()
	data, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestStoreServiceRemote(t *testing.T) {
	w := newFTWorld(t)
	if err := putFull(context.Background(), w.store, "k", 1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	epoch, data, err := getFull(context.Background(), w.store, "k")
	if err != nil || epoch != 1 || string(data) != "v" {
		t.Fatalf("get = %d %q %v", epoch, data, err)
	}
	if err := putFull(context.Background(), w.store, "k", 1, []byte("v2")); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("err = %v", err)
	}
	keys, err := w.store.Keys(context.Background())
	if err != nil || len(keys) != 1 || keys[0] != "k" {
		t.Fatalf("keys = %v, %v", keys, err)
	}
	if err := w.store.Delete(context.Background(), "k"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := getFull(context.Background(), w.store, "k"); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v", err)
	}
}
