package ft

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/cdr"
)

func TestComputeApplyDeltaRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randBytes := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	base512 := randBytes(512)
	mutate := func(b []byte, idxs ...int) []byte {
		out := append([]byte(nil), b...)
		for _, i := range idxs {
			out[i] ^= 0xff
		}
		return out
	}

	cases := []struct {
		name       string
		base, next []byte
	}{
		{"identical", base512, append([]byte(nil), base512...)},
		{"single-byte", base512, mutate(base512, 100)},
		{"scattered", base512, mutate(base512, 0, 17, 18, 130, 131, 132, 511)},
		{"adjacent-runs", base512, mutate(base512, 10, 11, 12, 20, 21, 22)},
		{"grow", base512, append(append([]byte(nil), base512...), randBytes(64)...)},
		{"shrink", base512, append([]byte(nil), base512[:300]...)},
		{"empty-base", nil, randBytes(32)},
		{"empty-next", base512, []byte{}},
		{"all-different", base512, randBytes(512)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			delta := ComputeDelta(tc.base, tc.next)
			got, err := ApplyDelta(tc.base, delta)
			if err != nil {
				t.Fatalf("ApplyDelta: %v", err)
			}
			if !bytes.Equal(got, tc.next) {
				t.Fatalf("roundtrip mismatch: got %d bytes, want %d", len(got), len(tc.next))
			}
		})
	}
}

func TestDeltaSmallerForLocalizedChange(t *testing.T) {
	base := make([]byte, 4096)
	next := append([]byte(nil), base...)
	next[1000] = 1
	next[1001] = 2
	delta := ComputeDelta(base, next)
	if len(delta) >= len(next) {
		t.Fatalf("delta (%d bytes) not smaller than full state (%d bytes)", len(delta), len(next))
	}
}

func TestApplyDeltaBaseLengthMismatch(t *testing.T) {
	base := []byte("0123456789")
	next := []byte("0123456x89")
	delta := ComputeDelta(base, next)
	if _, err := ApplyDelta(base[:5], delta); err == nil {
		t.Fatal("ApplyDelta accepted a delta computed against a different base length")
	}
}

func TestApplyDeltaRejectsDamage(t *testing.T) {
	base := bytes.Repeat([]byte{7}, 100)
	next := append([]byte(nil), base...)
	next[50] = 0
	delta := ComputeDelta(base, next)
	// Truncation and bit-flips must fail cleanly, never panic or return
	// silently wrong state of a different shape than an error.
	for cut := 1; cut < len(delta); cut += 7 {
		if out, err := ApplyDelta(base, delta[:cut]); err == nil && !bytes.Equal(out, next) {
			t.Fatalf("truncated delta (len %d) produced wrong state without error", cut)
		}
	}
}

func TestCheckpointWireRoundtrip(t *testing.T) {
	in := Checkpoint{Epoch: 9, Base: 8, Codec: CodecFlate, Data: []byte("payload")}
	e := cdr.NewEncoder(64)
	in.MarshalCDR(e)
	var out Checkpoint
	d := cdr.NewDecoder(e.Bytes())
	if err := out.UnmarshalCDR(d); err != nil {
		t.Fatal(err)
	}
	if out.Epoch != in.Epoch || out.Base != in.Base || out.Codec != in.Codec || !bytes.Equal(out.Data, in.Data) {
		t.Fatalf("roundtrip = %+v, want %+v", out, in)
	}
}

func TestCheckpointCompressedRoundtrip(t *testing.T) {
	compressible := bytes.Repeat([]byte("abcdefgh"), 512)
	cp := Full(3, compressible).Compressed()
	if cp.Codec != CodecFlate {
		t.Fatalf("compressible payload stayed codec %d", cp.Codec)
	}
	if len(cp.Data) >= len(compressible) {
		t.Fatalf("compression grew the payload: %d >= %d", len(cp.Data), len(compressible))
	}
	got, err := cp.Payload()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, compressible) {
		t.Fatal("decompressed payload differs from original")
	}

	// Incompressible (random) payloads must stay raw.
	rng := rand.New(rand.NewSource(1))
	random := make([]byte, 1024)
	rng.Read(random)
	if cp := Full(4, random).Compressed(); cp.Codec != CodecRaw {
		t.Fatalf("incompressible payload was recoded to %d", cp.Codec)
	}
}

func TestMemStoreMaterializesDelta(t *testing.T) {
	ctx := context.Background()
	s := NewMemStore()
	base := []byte("state-version-one---------------")
	next := []byte("state-version-TWO---------------")

	if err := s.Put(ctx, "k", Full(1, base)); err != nil {
		t.Fatal(err)
	}
	delta := Checkpoint{Epoch: 2, Base: 1, Data: ComputeDelta(base, next)}
	if err := s.Put(ctx, "k", delta); err != nil {
		t.Fatal(err)
	}
	cp, err := s.Get(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if cp.Epoch != 2 || cp.IsDelta() {
		t.Fatalf("Get = %+v, want materialized full at epoch 2", cp)
	}
	if !bytes.Equal(cp.Data, next) {
		t.Fatalf("materialized state = %q, want %q", cp.Data, next)
	}
}

func TestMemStoreRejectsBadBaseDelta(t *testing.T) {
	ctx := context.Background()
	s := NewMemStore()
	if err := s.Put(ctx, "k", Full(1, []byte("one"))); err != nil {
		t.Fatal(err)
	}
	// Delta claims base epoch 5; the store holds epoch 1.
	bad := Checkpoint{Epoch: 6, Base: 5, Data: ComputeDelta([]byte("xxx"), []byte("yyy"))}
	if err := s.Put(ctx, "k", bad); !errors.Is(err, ErrBadBase) {
		t.Fatalf("Put(bad base) = %v, want ErrBadBase", err)
	}
	// The stored state is untouched.
	cp, err := s.Get(ctx, "k")
	if err != nil || cp.Epoch != 1 || string(cp.Data) != "one" {
		t.Fatalf("state after rejected delta = %+v, %v", cp, err)
	}
}
