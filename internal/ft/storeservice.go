package ft

import (
	"context"
	"errors"

	"repro/internal/cdr"
	"repro/internal/orb"
)

// StoreTypeID is the repository id of the checkpoint storage service.
const StoreTypeID = "IDL:repro/FT/CheckpointStore:1.0"

// StoreDefaultKey is the conventional object key of the store service.
const StoreDefaultKey = "CheckpointStore"

// User-exception repository ids of the store service.
const (
	ExNoCheckpoint = "IDL:repro/FT/NoCheckpoint:1.0"
	ExStaleEpoch   = "IDL:repro/FT/StaleEpoch:1.0"
)

// Operation names of the store wire contract.
const (
	opPut    = "put"
	opGet    = "get"
	opDelete = "delete"
	opKeys   = "keys"
)

// StoreServant exposes any Store as the paper's checkpoint storage
// service ("a simple service for storing checkpointing data ... functions
// to store/retrieve arbitrary values").
type StoreServant struct {
	store Store
}

// NewStoreServant wraps store.
func NewStoreServant(store Store) *StoreServant { return &StoreServant{store: store} }

// TypeID implements orb.Servant.
func (s *StoreServant) TypeID() string { return StoreTypeID }

// Invoke implements orb.Servant.
func (s *StoreServant) Invoke(_ *orb.ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	switch op {
	case opPut:
		key := in.GetString()
		epoch := in.GetUint64()
		data := in.GetBytes()
		if err := in.Err(); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		if err := s.store.Put(key, epoch, data); err != nil {
			if errors.Is(err, ErrStaleEpoch) {
				return &orb.UserException{RepoID: ExStaleEpoch, Detail: err.Error()}
			}
			return &orb.SystemException{Kind: orb.ExInternal, Detail: err.Error()}
		}
		return nil

	case opGet:
		key := in.GetString()
		if err := in.Err(); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		epoch, data, err := s.store.Get(key)
		if err != nil {
			if errors.Is(err, ErrNoCheckpoint) {
				return &orb.UserException{RepoID: ExNoCheckpoint, Detail: err.Error()}
			}
			return &orb.SystemException{Kind: orb.ExInternal, Detail: err.Error()}
		}
		out.PutUint64(epoch)
		out.PutBytes(data)
		return nil

	case opDelete:
		key := in.GetString()
		if err := in.Err(); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		if err := s.store.Delete(key); err != nil {
			return &orb.SystemException{Kind: orb.ExInternal, Detail: err.Error()}
		}
		return nil

	case opKeys:
		keys, err := s.store.Keys()
		if err != nil {
			return &orb.SystemException{Kind: orb.ExInternal, Detail: err.Error()}
		}
		out.PutStringSeq(keys)
		return nil

	default:
		return orb.BadOperation(op)
	}
}

// StoreClient is the typed stub for the checkpoint storage service. It
// implements Store itself, so proxies work identically against a remote
// store service or a local Store. Because the Store interface is
// deliberately context-free (local stores have no cancellation surface),
// the stub bounds each remote call only by the ORB's default CallTimeout.
type StoreClient struct {
	orb *orb.ORB
	ref orb.ObjectRef
}

// NewStoreClient builds a stub for the store at ref.
func NewStoreClient(o *orb.ORB, ref orb.ObjectRef) *StoreClient {
	return &StoreClient{orb: o, ref: ref}
}

// Ref returns the service's object reference.
func (c *StoreClient) Ref() orb.ObjectRef { return c.ref }

var _ Store = (*StoreClient)(nil)

// Put implements Store.
func (c *StoreClient) Put(key string, epoch uint64, data []byte) error {
	err := c.orb.Invoke(context.Background(), c.ref, opPut, func(e *cdr.Encoder) {
		e.PutString(key)
		e.PutUint64(epoch)
		e.PutBytes(data)
	}, nil)
	if orb.IsUserException(err, ExStaleEpoch) {
		return ErrStaleEpoch
	}
	return err
}

// Get implements Store.
func (c *StoreClient) Get(key string) (uint64, []byte, error) {
	var epoch uint64
	var data []byte
	err := c.orb.Invoke(context.Background(), c.ref, opGet,
		func(e *cdr.Encoder) { e.PutString(key) },
		func(d *cdr.Decoder) error {
			epoch = d.GetUint64()
			data = d.GetBytes()
			return d.Err()
		})
	if orb.IsUserException(err, ExNoCheckpoint) {
		return 0, nil, ErrNoCheckpoint
	}
	return epoch, data, err
}

// Delete implements Store.
func (c *StoreClient) Delete(key string) error {
	return c.orb.Invoke(context.Background(), c.ref, opDelete, func(e *cdr.Encoder) { e.PutString(key) }, nil)
}

// Keys implements Store.
func (c *StoreClient) Keys() ([]string, error) {
	var keys []string
	err := c.orb.Invoke(context.Background(), c.ref, opKeys, nil, func(d *cdr.Decoder) error {
		keys = d.GetStringSeq()
		return d.Err()
	})
	return keys, err
}
