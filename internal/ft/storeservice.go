package ft

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cdr"
	"repro/internal/orb"
)

// StoreTypeID is the repository id of the checkpoint storage service.
const StoreTypeID = "IDL:repro/FT/CheckpointStore:1.0"

// StoreDefaultKey is the conventional object key of the store service.
const StoreDefaultKey = "CheckpointStore"

// User-exception repository ids of the store service.
const (
	ExNoCheckpoint      = "IDL:repro/FT/NoCheckpoint:1.0"
	ExStaleEpoch        = "IDL:repro/FT/StaleEpoch:1.0"
	ExCorruptCheckpoint = "IDL:repro/FT/CorruptCheckpoint:1.0"
	ExBadBase           = "IDL:repro/FT/BadBase:1.0"
)

// Operation names of the store wire contract.
const (
	opPut    = "put"
	opGet    = "get"
	opDelete = "delete"
	opKeys   = "keys"
)

// StoreServant exposes any Store as the paper's checkpoint storage
// service ("a simple service for storing checkpointing data ... functions
// to store/retrieve arbitrary values").
type StoreServant struct {
	store Store
}

// NewStoreServant wraps store.
func NewStoreServant(store Store) *StoreServant { return &StoreServant{store: store} }

// TypeID implements orb.Servant.
func (s *StoreServant) TypeID() string { return StoreTypeID }

// Invoke implements orb.Servant. Store calls run under the request's
// server context, so a client deadline (SCDeadline) or cancel bounds the
// backing store's work too.
func (s *StoreServant) Invoke(sctx *orb.ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	ctx := sctx.Context()
	switch op {
	case opPut:
		key := in.GetString()
		var cp Checkpoint
		if err := cp.UnmarshalCDR(in); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		if err := s.store.Put(ctx, key, cp); err != nil {
			switch {
			case errors.Is(err, ErrStaleEpoch):
				return &orb.UserException{RepoID: ExStaleEpoch, Detail: err.Error()}
			case errors.Is(err, ErrBadBase):
				return &orb.UserException{RepoID: ExBadBase, Detail: err.Error()}
			case errors.Is(err, ErrCorruptCheckpoint):
				return &orb.UserException{RepoID: ExCorruptCheckpoint, Detail: err.Error()}
			}
			return &orb.SystemException{Kind: orb.ExInternal, Detail: err.Error()}
		}
		return nil

	case opGet:
		key := in.GetString()
		if err := in.Err(); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		cp, err := s.store.Get(ctx, key)
		if err != nil {
			if errors.Is(err, ErrNoCheckpoint) {
				return &orb.UserException{RepoID: ExNoCheckpoint, Detail: err.Error()}
			}
			if errors.Is(err, ErrCorruptCheckpoint) {
				return &orb.UserException{RepoID: ExCorruptCheckpoint, Detail: err.Error()}
			}
			return &orb.SystemException{Kind: orb.ExInternal, Detail: err.Error()}
		}
		cp.MarshalCDR(out)
		return nil

	case opDelete:
		key := in.GetString()
		if err := in.Err(); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		if err := s.store.Delete(ctx, key); err != nil {
			return &orb.SystemException{Kind: orb.ExInternal, Detail: err.Error()}
		}
		return nil

	case opKeys:
		keys, err := s.store.Keys(ctx)
		if err != nil {
			return &orb.SystemException{Kind: orb.ExInternal, Detail: err.Error()}
		}
		out.PutStringSeq(keys)
		return nil

	default:
		return orb.BadOperation(op)
	}
}

// StoreClient is the typed stub for the checkpoint storage service. It
// implements Store itself, so proxies work identically against a remote
// store service or a local Store. Each call is bounded by the caller's
// ctx (propagated on the wire as an SCDeadline service context) on top of
// the ORB's default CallTimeout.
type StoreClient struct {
	orb *orb.ORB
	ref orb.ObjectRef
}

// NewStoreClient builds a stub for the store at ref.
func NewStoreClient(o *orb.ORB, ref orb.ObjectRef) *StoreClient {
	return &StoreClient{orb: o, ref: ref}
}

// Ref returns the service's object reference.
func (c *StoreClient) Ref() orb.ObjectRef { return c.ref }

var _ Store = (*StoreClient)(nil)

// mapStoreErr converts the service's wire exceptions back to the typed
// sentinels, so errors.Is works identically against a remote store and a
// local one.
func mapStoreErr(err error) error {
	var ue *orb.UserException
	if !errors.As(err, &ue) {
		return err
	}
	switch ue.RepoID {
	case ExStaleEpoch:
		return fmt.Errorf("%w: %s", ErrStaleEpoch, ue.Detail)
	case ExNoCheckpoint:
		return fmt.Errorf("%w: %s", ErrNoCheckpoint, ue.Detail)
	case ExCorruptCheckpoint:
		return fmt.Errorf("%w: %s", ErrCorruptCheckpoint, ue.Detail)
	case ExBadBase:
		return fmt.Errorf("%w: %s", ErrBadBase, ue.Detail)
	}
	return err
}

// Put implements Store. Delta and compressed payloads travel verbatim —
// materialization happens in the daemon's backing store, so the wire
// carries only the (small) encoded payload.
func (c *StoreClient) Put(ctx context.Context, key string, cp Checkpoint) error {
	err := c.orb.Call(ctx, c.ref, opPut, func(e *cdr.Encoder) {
		e.PutString(key)
		cp.MarshalCDR(e)
	}, nil)
	return mapStoreErr(err)
}

// Get implements Store.
func (c *StoreClient) Get(ctx context.Context, key string) (Checkpoint, error) {
	var cp Checkpoint
	err := c.orb.Call(ctx, c.ref, opGet,
		func(e *cdr.Encoder) { e.PutString(key) },
		func(d *cdr.Decoder) error { return cp.UnmarshalCDR(d) })
	if err != nil {
		return Checkpoint{}, mapStoreErr(err)
	}
	return cp, nil
}

// Delete implements Store.
func (c *StoreClient) Delete(ctx context.Context, key string) error {
	return mapStoreErr(c.orb.Call(ctx, c.ref, opDelete, func(e *cdr.Encoder) { e.PutString(key) }, nil))
}

// Keys implements Store.
func (c *StoreClient) Keys(ctx context.Context) ([]string, error) {
	var keys []string
	err := c.orb.Call(ctx, c.ref, opKeys, nil, func(d *cdr.Decoder) error {
		keys = d.GetStringSeq()
		return d.Err()
	})
	if err != nil {
		return nil, mapStoreErr(err)
	}
	return keys, nil
}
