package ft

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/orb"
)

// DefaultRepairTimeout bounds one background read-repair write.
const DefaultRepairTimeout = 5 * time.Second

// ReplicatedStore is a quorum client over N checkpoint store replicas,
// removing the single point of failure the paper's storage service has
// ("no real persistency ... has been implemented, yet" — and one daemon,
// at that). It implements Store, so proxies and managers use it exactly
// like a single store.
//
// Semantics:
//
//   - Put is write-all / ack-majority: the write fans out to every
//     replica concurrently and succeeds once a majority acks. A majority
//     of ErrStaleEpoch verdicts makes the Put stale (some replica holds a
//     newer epoch — the caller's view has been superseded).
//   - Get is read-newest-epoch: every replica is asked, a majority must
//     answer (ErrNoCheckpoint counts as an answer of epoch 0), and the
//     newest epoch among the answers wins. Because every acked Put
//     reached a majority, any read majority intersects it — the newest
//     acked checkpoint is never missed.
//   - After a Get, replicas that answered with an older epoch (or none,
//     or an error) are repaired in the background with the newest data,
//     so a replica that was down catches up as soon as it is read past.
//
// With N=3 the store serves reads and writes with any single replica
// down, crashed, or partitioned.
type ReplicatedStore struct {
	replicas []Store
	// repairTimeout bounds each background repair write.
	repairTimeout time.Duration

	mu      sync.Mutex
	repairs sync.WaitGroup
	stats   ReplicatedStats
}

// ReplicatedStats counts quorum-level events.
type ReplicatedStats struct {
	// Puts / Gets count quorum operations that succeeded.
	Puts uint64
	Gets uint64
	// QuorumFailures counts operations that could not reach a majority.
	QuorumFailures uint64
	// Repairs counts background read-repair writes issued.
	Repairs uint64
}

// ReplicatedOption customizes a ReplicatedStore.
type ReplicatedOption func(*ReplicatedStore)

// WithRepairTimeout overrides the background read-repair deadline.
func WithRepairTimeout(d time.Duration) ReplicatedOption {
	return func(r *ReplicatedStore) { r.repairTimeout = d }
}

// NewReplicatedStore builds a quorum client over replicas (local stores,
// StoreClients, or any mix). At least one replica is required; an even
// count works but tolerates no more failures than the next odd count
// down.
func NewReplicatedStore(replicas []Store, opts ...ReplicatedOption) (*ReplicatedStore, error) {
	if len(replicas) == 0 {
		return nil, errors.New("ft: replicated store needs at least one replica")
	}
	r := &ReplicatedStore{
		replicas:      append([]Store(nil), replicas...),
		repairTimeout: DefaultRepairTimeout,
	}
	for _, o := range opts {
		o(r)
	}
	return r, nil
}

// NewReplicatedStoreClient is the common wiring: a quorum client over
// remote checkpointd replicas at refs, all invoked through o.
func NewReplicatedStoreClient(o *orb.ORB, refs []orb.ObjectRef, opts ...ReplicatedOption) (*ReplicatedStore, error) {
	stores := make([]Store, len(refs))
	for i, ref := range refs {
		stores[i] = NewStoreClient(o, ref)
	}
	return NewReplicatedStore(stores, opts...)
}

var _ Store = (*ReplicatedStore)(nil)

// Replicas returns the number of replicas.
func (r *ReplicatedStore) Replicas() int { return len(r.replicas) }

// Quorum returns the majority size.
func (r *ReplicatedStore) Quorum() int { return len(r.replicas)/2 + 1 }

// Stats returns a snapshot of the quorum counters.
func (r *ReplicatedStore) Stats() ReplicatedStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// WaitRepairs blocks until all in-flight background repairs finish —
// for tests and orderly shutdown.
func (r *ReplicatedStore) WaitRepairs() { r.repairs.Wait() }

func (r *ReplicatedStore) countQuorumFailure() {
	r.mu.Lock()
	r.stats.QuorumFailures++
	r.mu.Unlock()
}

// Put implements Store: write-all, ack-majority. Delta checkpoints fan
// out verbatim — each replica materializes against its own stored state.
// A replica that missed the previous epoch rejects the delta with
// ErrBadBase; as long as a majority applied it the Put still succeeds and
// the laggard converges via read-repair. A majority of bad-base verdicts
// surfaces ErrBadBase so the producer re-sends a full snapshot.
func (r *ReplicatedStore) Put(ctx context.Context, key string, cp Checkpoint) error {
	errs := make([]error, len(r.replicas))
	var wg sync.WaitGroup
	for i, rep := range r.replicas {
		wg.Add(1)
		go func(i int, rep Store) {
			defer wg.Done()
			errs[i] = rep.Put(ctx, key, cp)
		}(i, rep)
	}
	wg.Wait()

	acks, stales, badBases := 0, 0, 0
	var firstErr error
	for _, err := range errs {
		switch {
		case err == nil:
			acks++
		case errors.Is(err, ErrStaleEpoch):
			stales++
		case errors.Is(err, ErrBadBase):
			badBases++
		default:
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	q := r.Quorum()
	if acks >= q {
		r.mu.Lock()
		r.stats.Puts++
		r.mu.Unlock()
		return nil
	}
	r.countQuorumFailure()
	if stales >= q {
		return fmt.Errorf("%w: key %q epoch %d rejected by %d/%d replicas", ErrStaleEpoch, key, cp.Epoch, stales, len(r.replicas))
	}
	if badBases > 0 {
		// Any bad-base verdict without an ack majority: make the producer
		// retry with a full snapshot, which every replica can apply.
		return fmt.Errorf("%w: key %q epoch %d rejected by %d/%d replicas", ErrBadBase, key, cp.Epoch, badBases, len(r.replicas))
	}
	if firstErr == nil {
		// Mixed acks and stales, neither a majority: report the stale
		// verdict, the only failure observed.
		return fmt.Errorf("%w: key %q epoch %d (split verdict: %d acks, %d stale)", ErrStaleEpoch, key, cp.Epoch, acks, stales)
	}
	return fmt.Errorf("ft: replicated put %q: %d/%d acks (need %d): %w", key, acks, len(r.replicas), q, firstErr)
}

// getResult is one replica's answer to a Get.
type getResult struct {
	cp  Checkpoint
	err error
	// answered is true for a definitive reply: a checkpoint, or a typed
	// "I have none" (epoch 0). Transport errors and corruption are not
	// answers.
	answered bool
}

// Get implements Store: read-newest-epoch over a majority of answers,
// with background read-repair of lagging replicas.
func (r *ReplicatedStore) Get(ctx context.Context, key string) (Checkpoint, error) {
	results := make([]getResult, len(r.replicas))
	var wg sync.WaitGroup
	for i, rep := range r.replicas {
		wg.Add(1)
		go func(i int, rep Store) {
			defer wg.Done()
			cp, err := rep.Get(ctx, key)
			res := getResult{cp: cp, err: err}
			switch {
			case err == nil:
				res.answered = true
			case errors.Is(err, ErrNoCheckpoint):
				res.answered = true // definitive: nothing stored (epoch 0)
				res.cp = Checkpoint{}
			}
			results[i] = res
		}(i, rep)
	}
	wg.Wait()

	answers := 0
	best := -1
	var firstErr error
	for i, res := range results {
		if !res.answered {
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		answers++
		if res.err == nil && (best < 0 || res.cp.Epoch > results[best].cp.Epoch) {
			best = i
		}
	}
	q := r.Quorum()
	if answers < q {
		r.countQuorumFailure()
		if firstErr == nil {
			firstErr = errors.New("no replica reachable")
		}
		return Checkpoint{}, fmt.Errorf("ft: replicated get %q: %d/%d answers (need %d): %w", key, answers, len(r.replicas), q, firstErr)
	}
	if best < 0 {
		// A majority definitively has nothing.
		r.mu.Lock()
		r.stats.Gets++
		r.mu.Unlock()
		return Checkpoint{}, fmt.Errorf("%w: key %q (per %d/%d replicas)", ErrNoCheckpoint, key, answers, len(r.replicas))
	}

	newest := results[best]
	r.mu.Lock()
	r.stats.Gets++
	r.mu.Unlock()
	r.repair(key, newest.cp, results)
	return newest.cp, nil
}

// repair launches background Puts of the newest checkpoint into every
// replica that does not have it, so a replica that missed writes (down,
// partitioned, fresh disk) converges on the next read that touches the
// key. Repairs always ship the materialized full snapshot (Get returns
// full state), so a replica that missed delta epochs can still apply
// them. Repairs are best-effort: a stale rejection means the replica
// already advanced past us, any other failure will be retried by a later
// read.
func (r *ReplicatedStore) repair(key string, newest Checkpoint, results []getResult) {
	if newest.Epoch == 0 {
		return
	}
	for i, res := range results {
		if res.answered && res.err == nil && res.cp.Epoch >= newest.Epoch {
			continue
		}
		rep := r.replicas[i]
		r.mu.Lock()
		r.stats.Repairs++
		r.mu.Unlock()
		r.repairs.Add(1)
		go func(rep Store) {
			defer r.repairs.Done()
			rctx, cancel := context.WithTimeout(context.Background(), r.repairTimeout)
			defer cancel()
			_ = rep.Put(rctx, key, newest)
		}(rep)
	}
}

// Delete implements Store: fan out, succeed on a majority of acks.
func (r *ReplicatedStore) Delete(ctx context.Context, key string) error {
	errs := make([]error, len(r.replicas))
	var wg sync.WaitGroup
	for i, rep := range r.replicas {
		wg.Add(1)
		go func(i int, rep Store) {
			defer wg.Done()
			errs[i] = rep.Delete(ctx, key)
		}(i, rep)
	}
	wg.Wait()
	acks := 0
	var firstErr error
	for _, err := range errs {
		if err == nil {
			acks++
		} else if firstErr == nil {
			firstErr = err
		}
	}
	if q := r.Quorum(); acks < q {
		r.countQuorumFailure()
		return fmt.Errorf("ft: replicated delete %q: %d/%d acks (need %d): %w", key, acks, len(r.replicas), q, firstErr)
	}
	return nil
}

// Keys implements Store: the union of keys over a majority of answers
// (a key acked by any Put reached a majority, so the union over any
// majority is complete).
func (r *ReplicatedStore) Keys(ctx context.Context) ([]string, error) {
	type keysResult struct {
		keys []string
		err  error
	}
	results := make([]keysResult, len(r.replicas))
	var wg sync.WaitGroup
	for i, rep := range r.replicas {
		wg.Add(1)
		go func(i int, rep Store) {
			defer wg.Done()
			keys, err := rep.Keys(ctx)
			results[i] = keysResult{keys: keys, err: err}
		}(i, rep)
	}
	wg.Wait()
	answers := 0
	seen := make(map[string]bool)
	var firstErr error
	for _, res := range results {
		if res.err != nil {
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		answers++
		for _, k := range res.keys {
			seen[k] = true
		}
	}
	if q := r.Quorum(); answers < q {
		r.countQuorumFailure()
		return nil, fmt.Errorf("ft: replicated keys: %d/%d answers (need %d): %w", answers, len(r.replicas), q, firstErr)
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}
