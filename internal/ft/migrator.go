package ft

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/naming"
	"repro/internal/obs"
	"repro/internal/orb"
)

// OfferLister reads the offers of a group binding (naming.Client
// satisfies it).
type OfferLister interface {
	ListOffers(ctx context.Context, name naming.Name) ([]naming.Offer, error)
}

// RankedLoads provides per-host effective speeds for migration decisions.
// The in-process winner.Manager satisfies it; callers consulting a remote
// system manager wrap winner.Client with their own context/timeout policy.
type RankedLoads interface {
	HostEffectiveSpeed(host string) (float64, bool)
}

// Claimer coordinates exclusive ownership of offers between proxies
// sharing one group binding: Claim must atomically reserve ref (returning
// false when another owner holds it), Release returns it to the pool. A
// migrator with a Claimer only migrates onto targets it wins, and
// releases the source once the move lands.
type Claimer interface {
	Claim(ref orb.ObjectRef) bool
	Release(ref orb.ObjectRef)
}

// MigrateOption customizes a Migrator, mirroring the option style of
// orb.Call.
type MigrateOption func(*Migrator)

// MigrateOffers sets the offer source the migrator picks targets from.
func MigrateOffers(l OfferLister) MigrateOption {
	return func(m *Migrator) { m.offers = l }
}

// MigrateLoads supplies Winner load data for ranking candidate hosts.
func MigrateLoads(r RankedLoads) MigrateOption {
	return func(m *Migrator) { m.ranker = r }
}

// MigrateMinImprovement sets the factor by which a candidate host's
// effective speed must beat the current host's before a load-triggered
// Step migrates (default 1.5 — migration costs a checkpoint transfer, so
// don't chase noise). Proactive moves off a Degrading host ignore it: the
// source is going away, any healthy target beats staying.
func MigrateMinImprovement(f float64) MigrateOption {
	return func(m *Migrator) {
		if f > 1 {
			m.minImprovement = f
		}
	}
}

// MigrateMembership subscribes the migrator to the cluster membership
// view: a Degrading event for the proxy's current host triggers a
// proactive move to a healthy host while the source can still checkpoint
// — the trace then shows zero replayed calls, unlike reactive recovery.
// The watch goroutine runs until the constructor ctx is cancelled.
func MigrateMembership(ms *cluster.Membership) MigrateOption {
	return func(m *Migrator) { m.membership = ms }
}

// MigrateTargetFilter restricts candidate offers (e.g. to unclaimed
// spares). Offers for which ok returns false are never migration targets.
func MigrateTargetFilter(ok func(naming.Offer) bool) MigrateOption {
	return func(m *Migrator) { m.filter = ok }
}

// MigrateClaims makes the migrator claim targets through c before moving
// and release the source afterwards.
func MigrateClaims(c Claimer) MigrateOption {
	return func(m *Migrator) { m.claimer = c }
}

// MigrateLogger records migration decisions on l.
func MigrateLogger(l *slog.Logger) MigrateOption {
	return func(m *Migrator) { m.logger = l }
}

// Migrator implements the paper's load-triggered migration extension
// ("it is in principle possible to migrate a service from one host to
// another one ... also due to a changing load situation"), in two modes:
// pull-based reassessment (Step compares the current host against the
// other offers using Winner load data and migrates when a sufficiently
// better host exists) and, with MigrateMembership, push-based proactive
// migration — a Degrading event for the current host moves the service's
// checkpointed state to a healthy host before the source dies.
type Migrator struct {
	proxy          *Proxy
	offers         OfferLister
	ranker         RankedLoads
	membership     *cluster.Membership
	filter         func(naming.Offer) bool
	claimer        Claimer
	logger         *slog.Logger
	minImprovement float64

	// migrateMu serializes whole migration decisions so a Step racing a
	// Degrading event cannot move the proxy twice.
	migrateMu sync.Mutex

	migrations atomic.Uint64
	proactive  atomic.Uint64

	done chan struct{}
}

// NewMigrator builds a migrator for proxy. ctx bounds the optional
// membership watch goroutine (started when MigrateMembership is given);
// cancelling it stops proactive migration. Step remains callable
// regardless.
func NewMigrator(ctx context.Context, proxy *Proxy, opts ...MigrateOption) *Migrator {
	m := &Migrator{proxy: proxy, minImprovement: 1.5, done: make(chan struct{})}
	for _, opt := range opts {
		opt(m)
	}
	if m.membership != nil {
		if ctx == nil {
			ctx = context.Background()
		}
		ch, cancel := m.membership.Subscribe()
		go m.watch(ctx, ch, cancel)
	} else {
		close(m.done)
	}
	return m
}

// NewMigratorWithOptions builds a migrator from the pre-elastic
// positional configuration.
//
// Deprecated: use NewMigrator with MigrateOffers/MigrateLoads/
// MigrateMinImprovement options. This shim remains for one release and
// will not grow new capabilities.
func NewMigratorWithOptions(proxy *Proxy, offers OfferLister, loads RankedLoads, opts MigratorOptions) *Migrator {
	mo := []MigrateOption{MigrateOffers(offers), MigrateLoads(loads)}
	if opts.MinImprovement > 1 {
		mo = append(mo, MigrateMinImprovement(opts.MinImprovement))
	}
	return NewMigrator(context.Background(), proxy, mo...)
}

// MigratorOptions tune a Migrator.
//
// Deprecated: configure through MigrateOption functions instead; this
// struct exists only for the NewMigratorWithOptions shim.
type MigratorOptions struct {
	// MinImprovement is the factor by which a candidate host's effective
	// speed must beat the current host's before migrating (default 1.5).
	MinImprovement float64
}

// Migrations returns the total number of migrations performed (reactive
// and proactive).
func (m *Migrator) Migrations() int { return int(m.migrations.Load()) }

// Proactive returns the number of proactive (Degrading-triggered)
// migrations performed.
func (m *Migrator) Proactive() uint64 { return m.proactive.Load() }

// Done is closed when the membership watch goroutine has exited (tests
// and teardown synchronization).
func (m *Migrator) Done() <-chan struct{} { return m.done }

// ExportMetrics registers the migration counters on reg.
func (m *Migrator) ExportMetrics(reg *obs.Registry) {
	reg.NewCounterFunc("ft_migrations_total",
		"Service-state migrations performed (reactive and proactive).",
		func() uint64 { return m.migrations.Load() })
	reg.NewCounterFunc("ft_proactive_migrations_total",
		"Proactive migrations triggered by membership Degrading events.",
		m.Proactive)
}

// watch consumes membership events and reacts to Degrading on the
// proxy's current host.
func (m *Migrator) watch(ctx context.Context, ch <-chan cluster.Event, cancel func()) {
	defer close(m.done)
	defer cancel()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if ev.Kind != cluster.Degrading {
				continue
			}
			if _, err := m.MoveOff(ctx, ev.Host); err != nil && m.logger != nil {
				m.logger.Warn("ft: proactive migration failed",
					"host", ev.Host, "trend", ev.Trend, "err", err)
			}
		}
	}
}

// MoveOff proactively migrates the service away from host if that is
// where it currently runs, onto the best healthy offer. Unlike Step it
// applies no improvement threshold — the source is degrading, any healthy
// target beats staying. It returns the chosen host ("" if the proxy was
// not on host, or no healthy target exists).
func (m *Migrator) MoveOff(ctx context.Context, host string) (string, error) {
	m.migrateMu.Lock()
	defer m.migrateMu.Unlock()
	if m.offers == nil {
		return "", nil
	}
	cur := m.proxy.Ref()
	offers, err := m.offers.ListOffers(ctx, m.proxy.name)
	if err != nil {
		return "", fmt.Errorf("ft: migrator: list offers: %w", err)
	}
	curHost := ""
	for _, o := range offers {
		if o.Ref == cur {
			curHost = o.Host
		}
	}
	if curHost != host {
		return "", nil
	}
	ctx, span := obs.StartSpan(ctx, "ft.migrate.proactive",
		obs.String("name", m.proxy.name.String()), obs.String("from_host", host))
	target, targetHost := m.pickTarget(cur, curHost, offers, false)
	if targetHost == "" {
		span.SetAttr("no_target", "true")
		span.End()
		return "", nil
	}
	if err := m.moveTo(ctx, cur, target); err != nil {
		span.EndErr(err)
		return "", err
	}
	m.proactive.Add(1)
	span.SetAttr("to_host", targetHost)
	span.End()
	if m.logger != nil {
		m.logger.Info("ft: proactive migration",
			"name", m.proxy.name.String(), "from", host, "to", targetHost)
	}
	return targetHost, nil
}

// Step reassesses placement once: if another offer's host is at least
// MinImprovement times faster than the current one, the service state is
// migrated there. It returns the new host name ("" if no migration
// happened).
func (m *Migrator) Step(ctx context.Context) (string, error) {
	m.migrateMu.Lock()
	defer m.migrateMu.Unlock()
	if m.offers == nil || m.ranker == nil {
		return "", nil
	}
	cur := m.proxy.Ref()
	offers, err := m.offers.ListOffers(ctx, m.proxy.name)
	if err != nil {
		return "", fmt.Errorf("ft: migrator: list offers: %w", err)
	}
	var curHost string
	for _, o := range offers {
		if o.Ref == cur {
			curHost = o.Host
		}
	}
	if curHost == "" {
		// The current reference is not among the offers (e.g. obtained
		// via a factory); nothing to compare against.
		return "", nil
	}
	curEff, ok := m.ranker.HostEffectiveSpeed(curHost)
	if !ok {
		return "", nil
	}
	target, targetHost := m.pickTarget(cur, curHost, offers, true)
	if targetHost == "" {
		return "", nil
	}
	eff, _ := m.ranker.HostEffectiveSpeed(targetHost)
	if eff < curEff*m.minImprovement {
		return "", nil
	}
	if err := m.moveTo(ctx, cur, target); err != nil {
		return "", err
	}
	return targetHost, nil
}

// pickTarget chooses the best candidate offer: not the current reference,
// passing the filter, on a healthy host (when a membership view is
// attached), ranked by effective speed when load data is available
// (rankRequired demands it), ties broken by host name for determinism.
func (m *Migrator) pickTarget(cur orb.ObjectRef, curHost string, offers []naming.Offer, rankRequired bool) (naming.Offer, string) {
	var best naming.Offer
	bestEff := -1.0
	for _, o := range offers {
		if o.Ref == cur || o.Host == "" || o.Host == curHost {
			continue
		}
		if m.filter != nil && !m.filter(o) {
			continue
		}
		if m.membership != nil && !m.membership.Healthy(o.Host) {
			continue
		}
		eff := 0.0
		if m.ranker != nil {
			e, ok := m.ranker.HostEffectiveSpeed(o.Host)
			if !ok {
				if rankRequired {
					continue
				}
			} else {
				eff = e
			}
		}
		if best.Host == "" || eff > bestEff || (eff == bestEff && o.Host < best.Host) {
			best, bestEff = o, eff
		}
	}
	return best, best.Host
}

// moveTo claims target (when a Claimer is configured), migrates the
// proxy's checkpointed state onto it, and releases the source claim.
func (m *Migrator) moveTo(ctx context.Context, cur orb.ObjectRef, target naming.Offer) error {
	if m.claimer != nil {
		if !m.claimer.Claim(target.Ref) {
			return fmt.Errorf("ft: migrator: target %s already claimed", target.Ref.Addr)
		}
	}
	if err := m.proxy.Migrate(ctx, target.Ref); err != nil {
		if m.claimer != nil {
			m.claimer.Release(target.Ref)
		}
		return fmt.Errorf("ft: migrator: %w", err)
	}
	if m.claimer != nil {
		m.claimer.Release(cur)
	}
	m.migrations.Add(1)
	return nil
}
