package ft

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/naming"
)

// OfferLister reads the offers of a group binding (naming.Client
// satisfies it).
type OfferLister interface {
	ListOffers(ctx context.Context, name naming.Name) ([]naming.Offer, error)
}

// MigratorOptions tune a Migrator.
type MigratorOptions struct {
	// MinImprovement is the factor by which a candidate host's effective
	// speed must beat the current host's before migrating (default 1.5 —
	// migration costs a checkpoint transfer, so don't chase noise).
	MinImprovement float64
}

// Migrator implements the paper's load-triggered migration extension
// ("it is in principle possible to migrate a service from one host to
// another one ... also due to a changing load situation"): it compares
// the proxy's current host against the other offers using Winner load
// data and migrates the service state when a sufficiently better host
// exists. Decisions are pull-based — call Step whenever a reassessment is
// wanted (a timer, after N calls, after a load alarm).
type Migrator struct {
	proxy  *Proxy
	offers OfferLister
	ranker RankedLoads
	opts   MigratorOptions

	mu         sync.Mutex
	migrations int
}

// RankedLoads provides per-host effective speeds for migration decisions.
// The in-process winner.Manager satisfies it; callers consulting a remote
// system manager wrap winner.Client with their own context/timeout policy.
type RankedLoads interface {
	HostEffectiveSpeed(host string) (float64, bool)
}

// NewMigrator builds a migrator for proxy using the naming service's
// offer list and Winner load data.
func NewMigrator(proxy *Proxy, offers OfferLister, loads RankedLoads, opts MigratorOptions) *Migrator {
	if opts.MinImprovement <= 1 {
		opts.MinImprovement = 1.5
	}
	return &Migrator{proxy: proxy, offers: offers, ranker: loads, opts: opts}
}

// Migrations returns the number of migrations performed.
func (m *Migrator) Migrations() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.migrations
}

// Step reassesses placement once: if another offer's host is at least
// MinImprovement times faster than the current one, the service state is
// migrated there. It returns the new host name ("" if no migration
// happened).
func (m *Migrator) Step(ctx context.Context) (string, error) {
	cur := m.proxy.Ref()
	offers, err := m.offers.ListOffers(ctx, m.proxy.name)
	if err != nil {
		return "", fmt.Errorf("ft: migrator: list offers: %w", err)
	}
	var curHost string
	for _, o := range offers {
		if o.Ref == cur {
			curHost = o.Host
		}
	}
	if curHost == "" {
		// The current reference is not among the offers (e.g. obtained
		// via a factory); nothing to compare against.
		return "", nil
	}
	curEff, ok := m.ranker.HostEffectiveSpeed(curHost)
	if !ok {
		return "", nil
	}
	var best naming.Offer
	bestEff := curEff
	for _, o := range offers {
		if o.Ref == cur || o.Host == "" {
			continue
		}
		eff, ok := m.ranker.HostEffectiveSpeed(o.Host)
		if !ok {
			continue
		}
		if eff > bestEff || (eff == bestEff && best.Host != "" && o.Host < best.Host) {
			best = o
			bestEff = eff
		}
	}
	if best.Host == "" || bestEff < curEff*m.opts.MinImprovement {
		return "", nil
	}
	if err := m.proxy.Migrate(ctx, best.Ref); err != nil {
		return "", fmt.Errorf("ft: migrator: %w", err)
	}
	m.mu.Lock()
	m.migrations++
	m.mu.Unlock()
	return best.Host, nil
}
