package ft

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cdr"
	"repro/internal/naming"
	"repro/internal/obs"
	"repro/internal/orb"
)

// asyncPutTimeout bounds one pipelined store write: the producing call
// has already returned, so the worker supplies its own deadline.
const asyncPutTimeout = 10 * time.Second

// Resolver obtains a (fresh) object reference for a service name — the
// naming service indirection the proxy uses for recovery. naming.Client
// satisfies it.
type Resolver interface {
	Resolve(ctx context.Context, name naming.Name) (orb.ObjectRef, error)
}

// Unbinder removes a dead offer from a group binding so the naming
// service stops handing out references to a crashed server. Optional;
// naming.Client satisfies it.
type Unbinder interface {
	UnbindOffer(ctx context.Context, name naming.Name, ref orb.ObjectRef) error
}

// PushedResolver is a Resolver whose membership is maintained by pushed
// naming invalidations (naming.GroupRef). Recovery then marks the dead
// member locally and re-resolves from the cached membership — no naming
// RPC at all on the common failover path; the nameserver learns of the
// death through the lease mesh and pushes the removal to everyone.
type PushedResolver interface {
	Resolver
	MarkDead(ref orb.ObjectRef)
}

// Policy tunes proxy behaviour.
type Policy struct {
	// CheckpointEvery stores a checkpoint after every Nth successful
	// call. 1 (the paper's default) checkpoints after each call; 0
	// disables checkpointing (stateless services).
	CheckpointEvery int
	// MaxRecoveries bounds recovery attempts per call (default 3). It maps
	// onto the call engine's retry budget.
	MaxRecoveries int
	// Backoff spaces successive recovery rounds. Zero means immediate
	// replay (the paper's behaviour).
	Backoff orb.Backoff
	// RecoverOn classifies errors as triggering recovery. The default
	// recovers on COMM_FAILURE (the paper's trigger) and OBJECT_NOT_EXIST
	// (server restarted without state) — replay is safe for ft proxies
	// regardless of idempotency because the restored checkpoint rewinds
	// the server to the pre-call state.
	RecoverOn func(error) bool
	// StrictCheckpoint makes a failed post-call checkpoint fail the call.
	// Off by default: the business result is already known; the failure
	// is still counted in Stats. Only synchronous checkpoints can fail the
	// call; pipelined ones surface failures through Stats alone.
	StrictCheckpoint bool
	// AsyncCheckpoint pipelines checkpoint store writes off the critical
	// path: the state fetch stays synchronous (the servant's state at the
	// moment of the call is what gets checkpointed), but the store Put is
	// queued to a background worker, so fsync/quorum/network latency no
	// longer extends every call. The pipeline drains before any recovery
	// restore or migration, preserving exact recovery semantics.
	AsyncCheckpoint bool
	// QueueDepth bounds the async pipeline (default 4). A full queue
	// applies backpressure: the call blocks until the worker frees a slot.
	QueueDepth int
	// SyncEvery forces every Nth checkpoint to be stored synchronously
	// even in async mode (the pipeline is drained first), bounding the
	// window of unacknowledged state. 0 never forces.
	SyncEvery int
	// DeltaCheckpoint encodes each checkpoint as a delta against the
	// previously produced state when that is smaller, cutting checkpoint
	// bytes on the wire. Store backends materialize deltas at Put time; a
	// base mismatch (ErrBadBase) makes the proxy re-send a full snapshot.
	DeltaCheckpoint bool
	// CompressCheckpoint flate-compresses checkpoint payloads when that
	// shrinks them.
	CompressCheckpoint bool
}

func (p Policy) withDefaults() Policy {
	if p.MaxRecoveries == 0 {
		p.MaxRecoveries = 3
	}
	if p.RecoverOn == nil {
		p.RecoverOn = orb.DefaultRetryOn
	}
	if p.QueueDepth <= 0 {
		p.QueueDepth = 4
	}
	return p
}

// Stats are cumulative proxy counters.
type Stats struct {
	Calls              uint64 // successful business calls
	Checkpoints        uint64 // checkpoints stored
	CheckpointFailures uint64 // checkpoint attempts that failed
	Recoveries         uint64 // successful recoveries (re-resolve+restore)
	Replays            uint64 // calls re-issued after recovery
	CheckpointBytes    uint64 // payload bytes actually written to the store
	DeltaCheckpoints   uint64 // checkpoints encoded as deltas
	AsyncCheckpoints   uint64 // checkpoints queued to the async pipeline
}

// RecoveryError reports that a call failed and every recovery attempt was
// exhausted. It is the call engine's retry error under its historical ft
// name, so errors.As works across both layers.
type RecoveryError = orb.RetryError

// Proxy is the paper's client-side proxy class, generalized: it stands in
// for the IDL stub, forwards every operation, checkpoints the server state
// after successful calls, and on failure re-resolves the service name,
// restores the last checkpoint into the fresh server object and replays
// the call. The forward/recover/replay loop itself is the ORB's resilient
// call engine; the proxy contributes the recovery step (unbind dead offer,
// re-resolve, restore checkpoint). Proxies are safe for concurrent use;
// recovery is serialized.
type Proxy struct {
	orb      *orb.ORB
	name     naming.Name
	resolver Resolver
	store    Store
	unbinder Unbinder
	policy   Policy

	mu        sync.Mutex
	ref       orb.ObjectRef
	epoch     uint64
	sinceCkpt int
	stats     Stats

	// recoverMu serializes whole recovery sequences.
	recoverMu sync.Mutex

	// degraded, set by the ORB's adaptive-degradation controller via
	// DegradeHook, relaxes the forced-sync cadence: a degraded runtime
	// spends its checkpoint budget on throughput, widening SyncEvery by
	// degradeSyncFactor instead of fsyncing on schedule.
	degraded atomic.Bool

	// ckptMu serializes checkpoint production — epoch allocation, delta
	// encoding against lastFull, and pipeline enqueue — so queued epochs
	// are strictly FIFO. Lock order: ckptMu before mu, never the reverse.
	ckptMu     sync.Mutex
	lastFull   []byte // full state of the newest produced checkpoint
	lastEpoch  uint64 // epoch of lastFull
	asyncSince int    // async checkpoints since the last forced sync
	ckptCh     chan ckptJob
	ckptDone   chan struct{}
	ckptClosed bool
}

// ckptJob is one pipelined store write: the encoded checkpoint plus the
// materialized full state, retained so a delta rejected with ErrBadBase
// can be re-sent as a full snapshot without refetching.
type ckptJob struct {
	cp   Checkpoint
	full []byte
	// flush, when non-nil, marks a drain barrier instead of a write: the
	// worker closes it once every job queued before it has been stored.
	flush chan struct{}
}

// ProxyOption customizes a Proxy.
type ProxyOption func(*Proxy)

// WithUnbinder lets the proxy remove dead offers from the naming service
// during recovery.
func WithUnbinder(u Unbinder) ProxyOption {
	return func(p *Proxy) { p.unbinder = u }
}

// WithInitialRef skips the initial resolve and starts at ref.
func WithInitialRef(ref orb.ObjectRef) ProxyOption {
	return func(p *Proxy) { p.ref = ref }
}

// NewProxy builds a proxy for the service registered under name. Unless
// WithInitialRef is given, the name is resolved immediately (bounded by
// ctx).
func NewProxy(ctx context.Context, o *orb.ORB, name naming.Name, resolver Resolver, store Store, policy Policy, opts ...ProxyOption) (*Proxy, error) {
	p := &Proxy{
		orb:      o,
		name:     name,
		resolver: resolver,
		store:    store,
		policy:   policy.withDefaults(),
	}
	for _, opt := range opts {
		opt(p)
	}
	if p.ref.IsNil() {
		ref, err := resolver.Resolve(ctx, name)
		if err != nil {
			return nil, fmt.Errorf("ft: initial resolve of %s: %w", name, err)
		}
		p.ref = ref
	}
	if p.store != nil {
		// Adopt any pre-existing checkpoint so our next Put is newer (a
		// previous proxy incarnation may have written some) and the first
		// delta has a base the store actually holds.
		if cp, err := p.store.Get(ctx, p.key()); err == nil {
			p.epoch = cp.Epoch
			p.lastFull, p.lastEpoch = cp.Data, cp.Epoch
		}
	}
	return p, nil
}

// key is the checkpoint key: the service name.
func (p *Proxy) key() string { return p.name.String() }

// Ref returns the reference currently used.
func (p *Proxy) Ref() orb.ObjectRef {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ref
}

// Stats returns a snapshot of the proxy counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// caller builds the per-call engine configuration: the proxy's recovery
// sequence as the engine's Recover hook, its policy as the retry budget.
func (p *Proxy) caller() *orb.Caller {
	c := &orb.Caller{
		ORB: p.orb,
		Recover: func(ctx context.Context, dead orb.ObjectRef, cause error) (orb.ObjectRef, error) {
			return p.recoverFrom(ctx, dead)
		},
		RetryOn: p.policy.RecoverOn,
		OnRetry: func(round int, cause error) {
			p.mu.Lock()
			p.stats.Replays++
			p.mu.Unlock()
		},
		Opts: orb.CallOptions{
			RetryBudget: p.policy.MaxRecoveries,
			Backoff:     p.policy.Backoff,
		},
	}
	c.SetRef(p.Ref())
	return c
}

// Call performs op through the proxy: forward, checkpoint on success,
// recover and replay on failure. Per-call options overlay the proxy's
// policy — WithDeadline, WithIdempotent and friends pass straight to the
// call engine, WithCheckpointMode overrides how (and whether) this call's
// post-call checkpoint is taken.
func (p *Proxy) Call(ctx context.Context, op string, writeArgs func(*cdr.Encoder), readReply func(*cdr.Decoder) error, opts ...orb.CallOption) error {
	sctx, span := obs.StartSpan(ctx, "ft.invoke",
		obs.String("op", op), obs.String("name", p.name.String()))
	c := p.caller()
	c.Opts.Apply(opts...)
	err := c.Invoke(sctx, op, writeArgs, readReply)
	if err == nil {
		err = p.afterSuccess(sctx, c.Ref(), op, c.Opts.Checkpoint)
	}
	span.EndErr(err)
	return err
}

// Invoke is Call without per-call options. It has the same shape as
// orb.Invoke, so switching a client from the plain stub to the proxy is
// the one-line change the paper advertises.
func (p *Proxy) Invoke(ctx context.Context, op string, writeArgs func(*cdr.Encoder), readReply func(*cdr.Decoder) error) error {
	return p.Call(ctx, op, writeArgs, readReply)
}

// afterSuccess counts the call and checkpoints per policy, as overridden
// by the call's CheckpointMode.
func (p *Proxy) afterSuccess(ctx context.Context, ref orb.ObjectRef, op string, mode orb.CheckpointMode) error {
	p.mu.Lock()
	p.stats.Calls++
	doCkpt := false
	switch mode {
	case orb.CheckpointSkip:
		// Explicitly suppressed; the cadence counter does not advance.
	case orb.CheckpointSync, orb.CheckpointAsync:
		doCkpt = true
		p.sinceCkpt = 0
	default:
		if p.policy.CheckpointEvery > 0 {
			p.sinceCkpt++
			if p.sinceCkpt >= p.policy.CheckpointEvery {
				doCkpt = true
				p.sinceCkpt = 0
			}
		}
	}
	p.mu.Unlock()
	if !doCkpt {
		return nil
	}
	async := p.policy.AsyncCheckpoint
	switch mode {
	case orb.CheckpointSync:
		async = false
	case orb.CheckpointAsync:
		async = true
	}
	if err := p.checkpoint(ctx, ref, async); err != nil {
		if p.policy.StrictCheckpoint {
			return fmt.Errorf("ft: post-call checkpoint of %s after %s: %w", p.name, op, err)
		}
		return nil
	}
	return nil
}

// checkpoint pulls the server state and stores it under the next epoch.
// The state fetch is always synchronous — what gets checkpointed is the
// servant's state at this point in the call sequence — but with async
// true the store write itself is queued to the pipeline worker, so store
// latency stays off the call's critical path.
func (p *Proxy) checkpoint(ctx context.Context, ref orb.ObjectRef, async bool) (err error) {
	ctx, span := obs.StartSpan(ctx, "ft.checkpoint",
		obs.String("name", p.name.String()), obs.String("target", ref.Addr))
	defer func() { span.EndErr(err) }()
	if p.store == nil {
		return errors.New("ft: no checkpoint store configured")
	}
	data, err := FetchCheckpoint(ctx, p.orb, ref)
	if err != nil {
		p.mu.Lock()
		p.stats.CheckpointFailures++
		p.mu.Unlock()
		return err
	}

	p.ckptMu.Lock()
	p.mu.Lock()
	p.epoch++
	epoch := p.epoch
	p.mu.Unlock()
	cp := Full(epoch, data)
	if p.policy.DeltaCheckpoint && p.lastFull != nil && p.lastEpoch == epoch-1 {
		if d := ComputeDelta(p.lastFull, data); len(d) < len(data) {
			cp = Checkpoint{Epoch: epoch, Base: epoch - 1, Data: d}
			p.mu.Lock()
			p.stats.DeltaCheckpoints++
			p.mu.Unlock()
		}
	}
	if p.policy.CompressCheckpoint {
		cp = cp.Compressed()
	}
	p.lastFull, p.lastEpoch = data, epoch
	if async && !p.ckptClosed {
		p.asyncSince++
		if se := p.effectiveSyncEvery(); se > 0 && p.asyncSince >= se {
			async, p.asyncSince = false, 0
		}
	}
	span.SetAttr("epoch", fmt.Sprintf("%d", epoch))
	if async && !p.ckptClosed {
		ch := p.pipeline()
		p.mu.Lock()
		p.stats.AsyncCheckpoints++
		p.mu.Unlock()
		span.SetAttr("async", "true")
		// Enqueue under ckptMu so pipelined epochs stay FIFO; a full queue
		// applies backpressure here (the worker never takes ckptMu).
		ch <- ckptJob{cp: cp, full: data}
		p.ckptMu.Unlock()
		return nil
	}
	p.ckptMu.Unlock()
	// Synchronous store: drain pipelined epochs first so the store sees
	// epochs in order and this one lands newest.
	p.drainCheckpoints()
	return p.storePut(ctx, cp, data)
}

// degradeSyncFactor widens Policy.SyncEvery while the runtime is
// degraded: forced synchronous checkpoints happen 4× less often, buying
// call throughput at the cost of a longer unacknowledged-state window.
const degradeSyncFactor = 4

// effectiveSyncEvery is the forced-sync cadence after degradation widening.
func (p *Proxy) effectiveSyncEvery() int {
	se := p.policy.SyncEvery
	if se > 0 && p.degraded.Load() {
		se *= degradeSyncFactor
	}
	return se
}

// SetDegraded switches the proxy's degraded checkpointing behaviour
// (see effectiveSyncEvery). Normally driven through DegradeHook.
func (p *Proxy) SetDegraded(on bool) { p.degraded.Store(on) }

// Degraded reports whether degraded checkpointing is in force.
func (p *Proxy) Degraded() bool { return p.degraded.Load() }

// DegradeHook adapts the proxy to the ORB's degradation controller:
// register the returned func with orb.ORB.OnDegrade and the proxy
// relaxes its checkpoint sync cadence in any mode below normal.
func (p *Proxy) DegradeHook() func(orb.DegradeMode) {
	return func(mode orb.DegradeMode) { p.SetDegraded(mode != orb.ModeNormal) }
}

// storePut writes cp to the store, re-sending a full snapshot when a
// delta's base is not what the store holds (replica lag, lost epoch —
// full snapshots always apply), and keeps the checkpoint counters.
func (p *Proxy) storePut(ctx context.Context, cp Checkpoint, full []byte) error {
	err := p.store.Put(ctx, p.key(), cp)
	wrote := len(cp.Data)
	if err != nil && cp.IsDelta() && errors.Is(err, ErrBadBase) {
		fullCp := Full(cp.Epoch, full)
		if p.policy.CompressCheckpoint {
			fullCp = fullCp.Compressed()
		}
		err = p.store.Put(ctx, p.key(), fullCp)
		wrote += len(fullCp.Data)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err != nil {
		p.stats.CheckpointFailures++
		return err
	}
	p.stats.Checkpoints++
	p.stats.CheckpointBytes += uint64(wrote)
	return nil
}

// pipeline returns the async queue, starting the worker on first use.
// Callers must hold ckptMu.
func (p *Proxy) pipeline() chan ckptJob {
	if p.ckptCh == nil {
		p.ckptCh = make(chan ckptJob, p.policy.QueueDepth)
		p.ckptDone = make(chan struct{})
		go p.ckptWorker(p.ckptCh)
	}
	return p.ckptCh
}

// ckptWorker is the single pipeline goroutine: it preserves enqueue
// (= epoch) order and supplies its own per-write deadline, since the
// producing call has long returned.
func (p *Proxy) ckptWorker(ch chan ckptJob) {
	defer close(p.ckptDone)
	for job := range ch {
		if job.flush != nil {
			close(job.flush)
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), asyncPutTimeout)
		_ = p.storePut(ctx, job.cp, job.full)
		cancel()
	}
}

// drainCheckpoints blocks until every checkpoint queued so far has been
// written (or failed). Recovery, migration and forced-sync checkpoints
// call it before touching the store, so restores always see the newest
// produced epoch.
func (p *Proxy) drainCheckpoints() {
	p.ckptMu.Lock()
	if p.ckptCh == nil || p.ckptClosed {
		p.ckptMu.Unlock()
		return
	}
	flushed := make(chan struct{})
	p.ckptCh <- ckptJob{flush: flushed}
	p.ckptMu.Unlock()
	<-flushed
}

// Close drains and stops the async checkpoint pipeline. It is safe to
// call on a proxy that never pipelined, and calls made after Close
// checkpoint synchronously.
func (p *Proxy) Close() error {
	p.ckptMu.Lock()
	if p.ckptCh == nil || p.ckptClosed {
		p.ckptClosed = true
		p.ckptMu.Unlock()
		return nil
	}
	p.ckptClosed = true
	close(p.ckptCh)
	done := p.ckptDone
	p.ckptMu.Unlock()
	<-done
	return nil
}

// recoverFrom performs the paper's recovery sequence starting from the
// dead reference: drop the dead offer from the naming service, resolve a
// fresh reference (the load-aware naming service places the replacement),
// and restore the last checkpoint into it.
func (p *Proxy) recoverFrom(ctx context.Context, dead orb.ObjectRef) (orb.ObjectRef, error) {
	p.recoverMu.Lock()
	defer p.recoverMu.Unlock()

	// Another goroutine may have completed recovery while we waited for
	// the lock; reuse its fresh reference instead of recovering twice.
	if cur := p.Ref(); cur != dead {
		return cur, nil
	}

	// Land every pipelined checkpoint before reading the store: the
	// restore below must see the newest epoch this proxy produced.
	p.drainCheckpoints()

	ctx, span := obs.StartSpan(ctx, "ft.recover",
		obs.String("name", p.name.String()), obs.String("dead", dead.Addr))
	if pr, ok := p.resolver.(PushedResolver); ok {
		// Push-maintained membership: sideline the dead member locally and
		// skip the unbind RPC — the resolve below is local too, so this
		// recovery touches the naming service zero times.
		pr.MarkDead(dead)
		span.AddEvent("marked_dead_local", obs.String("addr", dead.Addr))
	} else if p.unbinder != nil {
		// Best effort: the offer may already be gone.
		_ = p.unbinder.UnbindOffer(ctx, p.name, dead)
		span.AddEvent("unbound_dead_offer", obs.String("addr", dead.Addr))
	}
	fresh, err := p.resolveFresh(ctx)
	if err != nil {
		span.EndErr(err)
		return orb.ObjectRef{}, err
	}
	span.SetAttr("fresh", fresh.Addr)
	if err := p.restoreInto(ctx, fresh); err != nil {
		span.EndErr(err)
		return orb.ObjectRef{}, err
	}
	p.mu.Lock()
	p.ref = fresh
	p.stats.Recoveries++
	p.mu.Unlock()
	span.End()
	return fresh, nil
}

// resolveFresh re-resolves the service name under its own span, so the
// trace shows which replacement host the naming service picked.
func (p *Proxy) resolveFresh(ctx context.Context) (orb.ObjectRef, error) {
	ctx, span := obs.StartSpan(ctx, "ft.resolve", obs.String("name", p.name.String()))
	fresh, err := p.resolver.Resolve(ctx, p.name)
	if err != nil {
		err = fmt.Errorf("re-resolve %s: %w", p.name, err)
		span.EndErr(err)
		return orb.ObjectRef{}, err
	}
	span.SetAttr("addr", fresh.Addr)
	span.End()
	return fresh, nil
}

// restoreInto pushes the newest stored checkpoint into ref. A missing
// checkpoint is fine (stateless service, or no call completed yet).
func (p *Proxy) restoreInto(ctx context.Context, ref orb.ObjectRef) error {
	if p.store == nil {
		return nil
	}
	ctx, span := obs.StartSpan(ctx, "ft.restore",
		obs.String("name", p.name.String()), obs.String("target", ref.Addr))
	cp, err := p.store.Get(ctx, p.key())
	if errors.Is(err, ErrNoCheckpoint) {
		span.SetAttr("no_checkpoint", "true")
		span.End()
		return nil
	}
	if err != nil {
		err = fmt.Errorf("fetch checkpoint for %s: %w", p.name, err)
		span.EndErr(err)
		return err
	}
	span.SetAttr("epoch", fmt.Sprintf("%d", cp.Epoch))
	if err := PushRestore(ctx, p.orb, ref, cp.Data); err != nil {
		err = fmt.Errorf("restore %s into %v: %w", p.name, ref, err)
		span.EndErr(err)
		return err
	}
	// The server's state is now exactly the store's newest snapshot; base
	// the next delta on it. (If the producer-side epoch ran ahead of the
	// store — failed puts — the base check in checkpoint() falls back to a
	// full snapshot on its own.)
	p.ckptMu.Lock()
	p.lastFull, p.lastEpoch = cp.Data, cp.Epoch
	p.ckptMu.Unlock()
	p.mu.Lock()
	if cp.Epoch > p.epoch {
		p.epoch = cp.Epoch
	}
	p.mu.Unlock()
	span.End()
	return nil
}

// Notify forwards a oneway operation to the current reference. Oneway
// calls carry no reply, so failure detection — and therefore recovery —
// does not apply; the call is best-effort by construction.
func (p *Proxy) Notify(ctx context.Context, op string, writeArgs func(*cdr.Encoder)) error {
	return p.orb.Notify(ctx, p.Ref(), op, writeArgs)
}

// Migrate moves the service state to target: checkpoint the current
// server, restore into target, and switch the proxy over. This is the
// paper's observation that a checkpoint/restore-capable service "can in
// principle be migrated from one host to another ... also due to a
// changing load situation".
func (p *Proxy) Migrate(ctx context.Context, target orb.ObjectRef) (err error) {
	cur := p.Ref()
	ctx, span := obs.StartSpan(ctx, "ft.migrate",
		obs.String("name", p.name.String()),
		obs.String("from", cur.Addr), obs.String("to", target.Addr))
	defer func() { span.EndErr(err) }()
	// Migration is a synchronous checkpoint by construction: the restore
	// into target must see this exact state (the sync path drains any
	// pipelined epochs first).
	if err := p.checkpoint(ctx, cur, false); err != nil {
		return fmt.Errorf("ft: migrate checkpoint: %w", err)
	}
	if err := p.restoreInto(ctx, target); err != nil {
		return fmt.Errorf("ft: migrate restore: %w", err)
	}
	p.mu.Lock()
	p.ref = target
	p.mu.Unlock()
	return nil
}

// Seed installs state as the service's authoritative current state: it
// pushes the blob into the live servant and stores it as the newest
// checkpoint epoch, so both the running object and any later recovery
// restore start from exactly this state. The elastic manager uses it to
// reset workers at a re-decomposition boundary — stale warm-start state
// from the previous topology must not leak into the new segment, whether
// through the live servant or through a crash-restore of an old epoch.
func (p *Proxy) Seed(ctx context.Context, state []byte) (err error) {
	cur := p.Ref()
	ctx, span := obs.StartSpan(ctx, "ft.seed",
		obs.String("name", p.name.String()), obs.String("target", cur.Addr))
	defer func() { span.EndErr(err) }()
	if err := PushRestore(ctx, p.orb, cur, state); err != nil {
		return fmt.Errorf("ft: seed %s into %v: %w", p.name, cur, err)
	}
	if p.store == nil {
		return nil
	}
	// Land pipelined epochs first so the seed lands strictly newest.
	p.drainCheckpoints()
	p.ckptMu.Lock()
	p.mu.Lock()
	p.epoch++
	epoch := p.epoch
	p.mu.Unlock()
	cp := Full(epoch, state)
	if p.policy.CompressCheckpoint {
		cp = cp.Compressed()
	}
	p.lastFull, p.lastEpoch = state, epoch
	p.ckptMu.Unlock()
	span.SetAttr("epoch", fmt.Sprintf("%d", epoch))
	return p.storePut(ctx, cp, state)
}
