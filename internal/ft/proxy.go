package ft

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/cdr"
	"repro/internal/naming"
	"repro/internal/obs"
	"repro/internal/orb"
)

// Resolver obtains a (fresh) object reference for a service name — the
// naming service indirection the proxy uses for recovery. naming.Client
// satisfies it.
type Resolver interface {
	Resolve(ctx context.Context, name naming.Name) (orb.ObjectRef, error)
}

// Unbinder removes a dead offer from a group binding so the naming
// service stops handing out references to a crashed server. Optional;
// naming.Client satisfies it.
type Unbinder interface {
	UnbindOffer(ctx context.Context, name naming.Name, ref orb.ObjectRef) error
}

// Policy tunes proxy behaviour.
type Policy struct {
	// CheckpointEvery stores a checkpoint after every Nth successful
	// call. 1 (the paper's default) checkpoints after each call; 0
	// disables checkpointing (stateless services).
	CheckpointEvery int
	// MaxRecoveries bounds recovery attempts per call (default 3). It maps
	// onto the call engine's retry budget.
	MaxRecoveries int
	// Backoff spaces successive recovery rounds. Zero means immediate
	// replay (the paper's behaviour).
	Backoff orb.Backoff
	// RecoverOn classifies errors as triggering recovery. The default
	// recovers on COMM_FAILURE (the paper's trigger) and OBJECT_NOT_EXIST
	// (server restarted without state) — replay is safe for ft proxies
	// regardless of idempotency because the restored checkpoint rewinds
	// the server to the pre-call state.
	RecoverOn func(error) bool
	// StrictCheckpoint makes a failed post-call checkpoint fail the call.
	// Off by default: the business result is already known; the failure
	// is still counted in Stats.
	StrictCheckpoint bool
}

func (p Policy) withDefaults() Policy {
	if p.MaxRecoveries == 0 {
		p.MaxRecoveries = 3
	}
	if p.RecoverOn == nil {
		p.RecoverOn = orb.DefaultRetryOn
	}
	return p
}

// Stats are cumulative proxy counters.
type Stats struct {
	Calls              uint64 // successful business calls
	Checkpoints        uint64 // checkpoints stored
	CheckpointFailures uint64 // checkpoint attempts that failed
	Recoveries         uint64 // successful recoveries (re-resolve+restore)
	Replays            uint64 // calls re-issued after recovery
}

// RecoveryError reports that a call failed and every recovery attempt was
// exhausted. It is the call engine's retry error under its historical ft
// name, so errors.As works across both layers.
type RecoveryError = orb.RetryError

// Proxy is the paper's client-side proxy class, generalized: it stands in
// for the IDL stub, forwards every operation, checkpoints the server state
// after successful calls, and on failure re-resolves the service name,
// restores the last checkpoint into the fresh server object and replays
// the call. The forward/recover/replay loop itself is the ORB's resilient
// call engine; the proxy contributes the recovery step (unbind dead offer,
// re-resolve, restore checkpoint). Proxies are safe for concurrent use;
// recovery is serialized.
type Proxy struct {
	orb      *orb.ORB
	name     naming.Name
	resolver Resolver
	store    Store
	unbinder Unbinder
	policy   Policy

	mu        sync.Mutex
	ref       orb.ObjectRef
	epoch     uint64
	sinceCkpt int
	stats     Stats

	// recoverMu serializes whole recovery sequences.
	recoverMu sync.Mutex
}

// ProxyOption customizes a Proxy.
type ProxyOption func(*Proxy)

// WithUnbinder lets the proxy remove dead offers from the naming service
// during recovery.
func WithUnbinder(u Unbinder) ProxyOption {
	return func(p *Proxy) { p.unbinder = u }
}

// WithInitialRef skips the initial resolve and starts at ref.
func WithInitialRef(ref orb.ObjectRef) ProxyOption {
	return func(p *Proxy) { p.ref = ref }
}

// NewProxy builds a proxy for the service registered under name. Unless
// WithInitialRef is given, the name is resolved immediately (bounded by
// ctx).
func NewProxy(ctx context.Context, o *orb.ORB, name naming.Name, resolver Resolver, store Store, policy Policy, opts ...ProxyOption) (*Proxy, error) {
	p := &Proxy{
		orb:      o,
		name:     name,
		resolver: resolver,
		store:    store,
		policy:   policy.withDefaults(),
	}
	for _, opt := range opts {
		opt(p)
	}
	if p.ref.IsNil() {
		ref, err := resolver.Resolve(ctx, name)
		if err != nil {
			return nil, fmt.Errorf("ft: initial resolve of %s: %w", name, err)
		}
		p.ref = ref
	}
	if p.store != nil {
		// Adopt any pre-existing checkpoint epoch so our next Put is
		// newer (a previous proxy incarnation may have written some).
		if epoch, _, err := p.store.Get(ctx, p.key()); err == nil {
			p.epoch = epoch
		}
	}
	return p, nil
}

// key is the checkpoint key: the service name.
func (p *Proxy) key() string { return p.name.String() }

// Ref returns the reference currently used.
func (p *Proxy) Ref() orb.ObjectRef {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ref
}

// Stats returns a snapshot of the proxy counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// caller builds the per-call engine configuration: the proxy's recovery
// sequence as the engine's Recover hook, its policy as the retry budget.
func (p *Proxy) caller() *orb.Caller {
	c := &orb.Caller{
		ORB: p.orb,
		Recover: func(ctx context.Context, dead orb.ObjectRef, cause error) (orb.ObjectRef, error) {
			return p.recoverFrom(ctx, dead)
		},
		RetryOn: p.policy.RecoverOn,
		OnRetry: func(round int, cause error) {
			p.mu.Lock()
			p.stats.Replays++
			p.mu.Unlock()
		},
		Opts: orb.CallOptions{
			RetryBudget: p.policy.MaxRecoveries,
			Backoff:     p.policy.Backoff,
		},
	}
	c.SetRef(p.Ref())
	return c
}

// Invoke performs op through the proxy: forward, checkpoint on success,
// recover and replay on failure. It has the same shape as orb.Invoke, so
// switching a client from the plain stub to the proxy is the one-line
// change the paper advertises.
func (p *Proxy) Invoke(ctx context.Context, op string, writeArgs func(*cdr.Encoder), readReply func(*cdr.Decoder) error) error {
	sctx, span := obs.StartSpan(ctx, "ft.invoke",
		obs.String("op", op), obs.String("name", p.name.String()))
	c := p.caller()
	err := c.Invoke(sctx, op, writeArgs, readReply)
	if err == nil {
		err = p.afterSuccess(sctx, c.Ref(), op)
	}
	span.EndErr(err)
	return err
}

// afterSuccess counts the call and checkpoints per policy.
func (p *Proxy) afterSuccess(ctx context.Context, ref orb.ObjectRef, op string) error {
	p.mu.Lock()
	p.stats.Calls++
	doCkpt := false
	if p.policy.CheckpointEvery > 0 {
		p.sinceCkpt++
		if p.sinceCkpt >= p.policy.CheckpointEvery {
			doCkpt = true
			p.sinceCkpt = 0
		}
	}
	p.mu.Unlock()
	if !doCkpt {
		return nil
	}
	if err := p.checkpoint(ctx, ref); err != nil {
		p.mu.Lock()
		p.stats.CheckpointFailures++
		p.mu.Unlock()
		if p.policy.StrictCheckpoint {
			return fmt.Errorf("ft: post-call checkpoint of %s after %s: %w", p.name, op, err)
		}
		return nil
	}
	return nil
}

// checkpoint pulls the server state and stores it under the next epoch.
func (p *Proxy) checkpoint(ctx context.Context, ref orb.ObjectRef) (err error) {
	ctx, span := obs.StartSpan(ctx, "ft.checkpoint",
		obs.String("name", p.name.String()), obs.String("target", ref.Addr))
	defer func() { span.EndErr(err) }()
	if p.store == nil {
		return errors.New("ft: no checkpoint store configured")
	}
	data, err := FetchCheckpoint(ctx, p.orb, ref)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.epoch++
	epoch := p.epoch
	p.mu.Unlock()
	span.SetAttr("epoch", fmt.Sprintf("%d", epoch))
	if err := p.store.Put(ctx, p.key(), epoch, data); err != nil {
		return err
	}
	p.mu.Lock()
	p.stats.Checkpoints++
	p.mu.Unlock()
	return nil
}

// recoverFrom performs the paper's recovery sequence starting from the
// dead reference: drop the dead offer from the naming service, resolve a
// fresh reference (the load-aware naming service places the replacement),
// and restore the last checkpoint into it.
func (p *Proxy) recoverFrom(ctx context.Context, dead orb.ObjectRef) (orb.ObjectRef, error) {
	p.recoverMu.Lock()
	defer p.recoverMu.Unlock()

	// Another goroutine may have completed recovery while we waited for
	// the lock; reuse its fresh reference instead of recovering twice.
	if cur := p.Ref(); cur != dead {
		return cur, nil
	}

	ctx, span := obs.StartSpan(ctx, "ft.recover",
		obs.String("name", p.name.String()), obs.String("dead", dead.Addr))
	if p.unbinder != nil {
		// Best effort: the offer may already be gone.
		_ = p.unbinder.UnbindOffer(ctx, p.name, dead)
		span.AddEvent("unbound_dead_offer", obs.String("addr", dead.Addr))
	}
	fresh, err := p.resolveFresh(ctx)
	if err != nil {
		span.EndErr(err)
		return orb.ObjectRef{}, err
	}
	span.SetAttr("fresh", fresh.Addr)
	if err := p.restoreInto(ctx, fresh); err != nil {
		span.EndErr(err)
		return orb.ObjectRef{}, err
	}
	p.mu.Lock()
	p.ref = fresh
	p.stats.Recoveries++
	p.mu.Unlock()
	span.End()
	return fresh, nil
}

// resolveFresh re-resolves the service name under its own span, so the
// trace shows which replacement host the naming service picked.
func (p *Proxy) resolveFresh(ctx context.Context) (orb.ObjectRef, error) {
	ctx, span := obs.StartSpan(ctx, "ft.resolve", obs.String("name", p.name.String()))
	fresh, err := p.resolver.Resolve(ctx, p.name)
	if err != nil {
		err = fmt.Errorf("re-resolve %s: %w", p.name, err)
		span.EndErr(err)
		return orb.ObjectRef{}, err
	}
	span.SetAttr("addr", fresh.Addr)
	span.End()
	return fresh, nil
}

// restoreInto pushes the newest stored checkpoint into ref. A missing
// checkpoint is fine (stateless service, or no call completed yet).
func (p *Proxy) restoreInto(ctx context.Context, ref orb.ObjectRef) error {
	if p.store == nil {
		return nil
	}
	ctx, span := obs.StartSpan(ctx, "ft.restore",
		obs.String("name", p.name.String()), obs.String("target", ref.Addr))
	epoch, data, err := p.store.Get(ctx, p.key())
	if errors.Is(err, ErrNoCheckpoint) {
		span.SetAttr("no_checkpoint", "true")
		span.End()
		return nil
	}
	if err != nil {
		err = fmt.Errorf("fetch checkpoint for %s: %w", p.name, err)
		span.EndErr(err)
		return err
	}
	span.SetAttr("epoch", fmt.Sprintf("%d", epoch))
	if err := PushRestore(ctx, p.orb, ref, data); err != nil {
		err = fmt.Errorf("restore %s into %v: %w", p.name, ref, err)
		span.EndErr(err)
		return err
	}
	p.mu.Lock()
	if epoch > p.epoch {
		p.epoch = epoch
	}
	p.mu.Unlock()
	span.End()
	return nil
}

// Notify forwards a oneway operation to the current reference. Oneway
// calls carry no reply, so failure detection — and therefore recovery —
// does not apply; the call is best-effort by construction.
func (p *Proxy) Notify(ctx context.Context, op string, writeArgs func(*cdr.Encoder)) error {
	return p.orb.Notify(ctx, p.Ref(), op, writeArgs)
}

// Migrate moves the service state to target: checkpoint the current
// server, restore into target, and switch the proxy over. This is the
// paper's observation that a checkpoint/restore-capable service "can in
// principle be migrated from one host to another ... also due to a
// changing load situation".
func (p *Proxy) Migrate(ctx context.Context, target orb.ObjectRef) error {
	cur := p.Ref()
	if err := p.checkpoint(ctx, cur); err != nil {
		return fmt.Errorf("ft: migrate checkpoint: %w", err)
	}
	if err := p.restoreInto(ctx, target); err != nil {
		return fmt.Errorf("ft: migrate restore: %w", err)
	}
	p.mu.Lock()
	p.ref = target
	p.mu.Unlock()
	return nil
}
