package ft

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cdr"
	"repro/internal/naming"
	"repro/internal/orb"
)

func groupInc(g *ReplicaGroup, by int64) (int64, error) {
	var v int64
	err := g.Invoke(context.Background(), "inc",
		func(e *cdr.Encoder) { e.PutInt64(by) },
		func(d *cdr.Decoder) error { v = d.GetInt64(); return d.Err() })
	return v, err
}

func TestReplicaGroupKeepsReplicasInLockstep(t *testing.T) {
	w := newFTWorld(t)
	g, err := NewReplicaGroup(context.Background(), w.client, w.name, w.naming)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 2 {
		t.Fatalf("size = %d", g.Size())
	}
	for i := int64(1); i <= 3; i++ {
		v, err := groupInc(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		if v != i {
			t.Fatalf("value = %d, want %d", v, i)
		}
	}
	// Both replicas executed every call: identical state, no restore.
	if w.ctrA.value != 3 || w.ctrB.value != 3 {
		t.Fatalf("replica states: A=%d B=%d", w.ctrA.value, w.ctrB.value)
	}
	st := g.Stats()
	if st.Calls != 3 || st.Fanout != 6 || st.Failures != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReplicaGroupSurvivesReplicaCrashWithoutRestore(t *testing.T) {
	w := newFTWorld(t)
	g, err := NewReplicaGroup(context.Background(), w.client, w.name, w.naming)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := groupInc(g, 10); err != nil {
		t.Fatal(err)
	}
	// Kill replica A: the next call still succeeds via B, and A is
	// dropped. No checkpoint/restore happened anywhere.
	w.adA.Close()
	w.srvA.Shutdown()
	v, err := groupInc(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v != 15 {
		t.Fatalf("value = %d", v)
	}
	if g.Size() != 1 {
		t.Fatalf("size after crash = %d", g.Size())
	}
	st := g.Stats()
	if st.Dropped != 1 || st.Failures == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReplicaGroupAllReplicasDead(t *testing.T) {
	w := newFTWorld(t)
	g, err := NewReplicaGroup(context.Background(), w.client, w.name, w.naming)
	if err != nil {
		t.Fatal(err)
	}
	w.adA.Close()
	w.srvA.Shutdown()
	w.adB.Close()
	w.srvB.Shutdown()
	_, err = groupInc(g, 1)
	if err == nil || !strings.Contains(err.Error(), "replicas") {
		t.Fatalf("err = %v", err)
	}
	if g.Size() != 0 {
		t.Fatalf("size = %d", g.Size())
	}
}

func TestReplicaGroupUserExceptionSurfaces(t *testing.T) {
	w := newFTWorld(t)
	g, err := NewReplicaGroup(context.Background(), w.client, w.name, w.naming)
	if err != nil {
		t.Fatal(err)
	}
	err = g.Invoke(context.Background(), "fail_user", nil, nil)
	if !orb.IsUserException(err, "IDL:repro/Boom:1.0") {
		t.Fatalf("err = %v", err)
	}
	// Application exceptions must not shrink the group.
	if g.Size() != 2 {
		t.Fatalf("size = %d", g.Size())
	}
}

func TestReplicaGroupDeferredRequest(t *testing.T) {
	w := newFTWorld(t)
	g, err := NewReplicaGroup(context.Background(), w.client, w.name, w.naming)
	if err != nil {
		t.Fatal(err)
	}
	req := g.NewRequest(context.Background(), "inc")
	req.Args().PutInt64(7)
	if err := req.GetResponse(nil); !orb.IsSystemException(err, orb.ExBadOperation) {
		t.Fatalf("GetResponse before Send: %v", err)
	}
	req.Send()
	req.Send() // idempotent
	var v int64
	if err := req.GetResponse(func(d *cdr.Decoder) error { v = d.GetInt64(); return d.Err() }); err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Fatalf("v = %d", v)
	}
}

func TestReplicaGroupFromRefs(t *testing.T) {
	w := newFTWorld(t)
	offers, err := w.naming.ListOffers(context.Background(), w.name)
	if err != nil {
		t.Fatal(err)
	}
	refs := []orb.ObjectRef{offers[0].Ref}
	g, err := NewReplicaGroupFromRefs(w.client, w.name, refs)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := groupInc(g, 2); err != nil || v != 2 {
		t.Fatalf("inc = %d, %v", v, err)
	}
	if _, err := NewReplicaGroupFromRefs(w.client, w.name, nil); err == nil {
		t.Fatal("empty ref list accepted")
	}
}

func TestReplicaGroupNoOffers(t *testing.T) {
	w := newFTWorld(t)
	if _, err := NewReplicaGroup(context.Background(), w.client, naming.NewName("ghost"), w.naming); err == nil {
		t.Fatal("missing name accepted")
	}
}
