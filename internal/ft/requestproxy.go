package ft

import (
	"repro/internal/cdr"
	"repro/internal/orb"
)

// RequestProxy is the fault-tolerant counterpart of orb.Request: the
// paper's "request proxies are used just like the object proxies" for DII
// asynchronous invocations. The argument stream is retained so the request
// can be replayed transparently against a recovered server object.
type RequestProxy struct {
	proxy *Proxy
	op    string
	args  *cdr.Encoder
	req   *orb.Request
}

// NewRequest creates a deferred request for op through the proxy.
func (p *Proxy) NewRequest(op string) *RequestProxy {
	return &RequestProxy{proxy: p, op: op, args: cdr.NewEncoder(128)}
}

// Operation returns the operation name.
func (r *RequestProxy) Operation() string { return r.op }

// Args exposes the argument encoder. Write all arguments before Send.
func (r *RequestProxy) Args() *cdr.Encoder { return r.args }

// send issues a fresh underlying DII request against ref.
func (r *RequestProxy) send(ref orb.ObjectRef) {
	req := r.proxy.orb.CreateRequest(ref, r.op)
	req.Args().PutRaw(r.args.Bytes())
	req.Send()
	r.req = req
}

// Send initiates the invocation without blocking. Calling Send twice is a
// no-op.
func (r *RequestProxy) Send() {
	if r.req != nil {
		return
	}
	r.send(r.proxy.Ref())
}

// PollResponse reports whether the (current) underlying request finished.
func (r *RequestProxy) PollResponse() bool {
	return r.req != nil && r.req.PollResponse()
}

// GetResponse waits for the response, driving checkpoint-on-success and
// recover-and-replay-on-failure exactly like Proxy.Invoke. The replayed
// request is re-sent asynchronously against the recovered server.
func (r *RequestProxy) GetResponse(readReply func(*cdr.Decoder) error) error {
	if r.req == nil {
		return &orb.SystemException{Kind: orb.ExBadOperation, Detail: "GetResponse before Send"}
	}
	p := r.proxy
	var lastErr error
	for attempt := 0; ; attempt++ {
		ref := r.req.Ref()
		err := r.req.GetResponse(readReply)
		if err == nil {
			return p.afterSuccess(ref, r.op)
		}
		if !p.policy.RecoverOn(err) {
			return err
		}
		lastErr = err
		if attempt >= p.policy.MaxRecoveries {
			return &RecoveryError{Op: r.op, Attempts: attempt, Last: lastErr}
		}
		fresh, rerr := p.recoverFrom(ref)
		if rerr != nil {
			return &RecoveryError{Op: r.op, Attempts: attempt + 1, Last: rerr}
		}
		p.mu.Lock()
		p.stats.Replays++
		p.mu.Unlock()
		r.send(fresh)
	}
}
