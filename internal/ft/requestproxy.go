package ft

import (
	"context"

	"repro/internal/cdr"
	"repro/internal/obs"
	"repro/internal/orb"
)

// RequestProxy is the fault-tolerant counterpart of orb.Request: the
// paper's "request proxies are used just like the object proxies" for DII
// asynchronous invocations. The argument stream is retained so the request
// can be replayed transparently against a recovered server object.
type RequestProxy struct {
	proxy *Proxy
	ctx   context.Context
	op    string
	args  *cdr.Encoder
	req   *orb.Request
	span  *obs.Span // "ft.invoke", opened at NewRequest, closed at GetResponse
}

// NewRequest creates a deferred request for op through the proxy. ctx
// bounds the whole deferred call — sending, the wait in GetResponse and
// any recovery replays — following the same capture-at-construction
// convention as orb.CreateRequest.
func (p *Proxy) NewRequest(ctx context.Context, op string) *RequestProxy {
	if ctx == nil {
		ctx = context.Background()
	}
	// The deferred call's whole lifetime — send, wait, recovery replays —
	// runs under one ft.invoke span, mirroring the synchronous path.
	sctx, span := obs.StartSpan(ctx, "ft.invoke",
		obs.String("op", op), obs.String("name", p.name.String()))
	return &RequestProxy{proxy: p, ctx: sctx, op: op, args: cdr.NewEncoder(128), span: span}
}

// Operation returns the operation name.
func (r *RequestProxy) Operation() string { return r.op }

// Args exposes the argument encoder. Write all arguments before Send.
func (r *RequestProxy) Args() *cdr.Encoder { return r.args }

// send issues a fresh underlying DII request against ref.
func (r *RequestProxy) send(ref orb.ObjectRef) {
	req := r.proxy.orb.CreateRequest(r.ctx, ref, r.op)
	req.Args().PutRaw(r.args.Bytes())
	req.Send()
	r.req = req
}

// Send initiates the invocation without blocking. Calling Send twice is a
// no-op.
func (r *RequestProxy) Send() {
	if r.req != nil {
		return
	}
	r.send(r.proxy.Ref())
}

// PollResponse reports whether the (current) underlying request finished.
func (r *RequestProxy) PollResponse() bool {
	return r.req != nil && r.req.PollResponse()
}

// GetResponse waits for the response, driving checkpoint-on-success and
// recover-and-replay-on-failure exactly like Proxy.Invoke — both run the
// same call engine; here each replay re-sends the retained argument
// stream asynchronously against the recovered server.
func (r *RequestProxy) GetResponse(readReply func(*cdr.Decoder) error) error {
	if r.req == nil {
		return &orb.SystemException{Kind: orb.ExBadOperation, Detail: "GetResponse before Send"}
	}
	p := r.proxy
	c := p.caller()
	c.SetRef(r.req.Ref())
	first := true
	err := c.Do(r.ctx, r.op, func(_ context.Context, ref orb.ObjectRef) error {
		if !first {
			r.send(ref)
		}
		first = false
		return r.req.GetResponse(readReply)
	})
	if err == nil {
		err = p.afterSuccess(r.ctx, c.Ref(), r.op, orb.CheckpointDefault)
	}
	r.span.EndErr(err)
	return err
}
