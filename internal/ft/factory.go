package ft

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cdr"
	"repro/internal/orb"
)

// FactoryTypeID is the repository id of the service factory interface.
const FactoryTypeID = "IDL:repro/FT/ServiceFactory:1.0"

// ExCreateFailed is raised when a factory cannot create a servant.
const ExCreateFailed = "IDL:repro/FT/CreateFailed:1.0"

const opCreate = "_create"

// Factory creates fresh servants of one service type — the "start a new
// server (using the checkpoint)" half of the paper's restart story when no
// standby instance is already running. A factory servant runs on each host
// willing to accept restarted services.
type Factory struct {
	adapter *orb.Adapter
	make    func() orb.Servant
	prefix  string
	counter atomic.Uint64

	mu      sync.Mutex
	created []orb.ObjectRef
}

// NewFactory builds a factory that activates servants produced by make on
// adapter, under object keys derived from prefix.
func NewFactory(adapter *orb.Adapter, prefix string, make func() orb.Servant) *Factory {
	return &Factory{adapter: adapter, make: make, prefix: prefix}
}

// TypeID implements orb.Servant.
func (f *Factory) TypeID() string { return FactoryTypeID }

// Created returns the references created so far.
func (f *Factory) Created() []orb.ObjectRef {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]orb.ObjectRef, len(f.created))
	copy(out, f.created)
	return out
}

// Invoke implements orb.Servant.
func (f *Factory) Invoke(_ *orb.ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	if op != opCreate {
		return orb.BadOperation(op)
	}
	sv := f.make()
	if sv == nil {
		return &orb.UserException{RepoID: ExCreateFailed, Detail: "factory returned no servant"}
	}
	key := fmt.Sprintf("%s-%d", f.prefix, f.counter.Add(1))
	ref := f.adapter.Activate(key, sv)
	f.mu.Lock()
	f.created = append(f.created, ref)
	f.mu.Unlock()
	ref.MarshalCDR(out)
	return nil
}

// CreateViaFactory asks the factory at factoryRef to create a new servant
// and returns its reference.
func CreateViaFactory(ctx context.Context, o *orb.ORB, factoryRef orb.ObjectRef) (orb.ObjectRef, error) {
	var ref orb.ObjectRef
	err := o.Call(ctx, factoryRef, opCreate, nil, func(d *cdr.Decoder) error {
		return ref.UnmarshalCDR(d)
	})
	return ref, err
}
