package ft

import (
	"context"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/naming"
	"repro/internal/obs"
	"repro/internal/orb"
)

// Pinger probes an object reference for liveness; orb.ORB satisfies it
// (GIOP LocateRequest underneath).
type Pinger interface {
	Ping(ctx context.Context, ref orb.ObjectRef) error
}

// DetectorOptions tune a Detector.
type DetectorOptions struct {
	// Suspicions is how many consecutive failed probes declare an offer
	// dead (default 2; transient hiccups shouldn't unbind servers).
	Suspicions int
	// Period is the probe interval for the background loop (default 1s).
	Period time.Duration
	// Logger, when set, records each eviction with the offer key and the
	// suspicion count that condemned it. Nil disables logging.
	Logger *slog.Logger
	// OnEvict, when set, is called after each successful unbind (metrics
	// hooks, tests).
	OnEvict func(name naming.Name, offer naming.Offer, suspicions int)
	// Membership, when set, receives a host-level death report for every
	// evicted offer. Routing detector evictions and lease expiries through
	// the same cluster membership view means a single death produces one
	// coherent Leave event no matter which mechanism noticed it first —
	// the membership dedups the racing reports.
	Membership DeathReporter
}

// DeathReporter consumes host death notices; cluster.Feeder satisfies it.
type DeathReporter interface {
	ReportDead(host string)
}

// Detector is a proactive failure detector for group bindings: it probes
// every offer of a set of names and unbinds offers that stay unreachable,
// so the naming service stops handing out dead references *before* a
// client trips over COMM_FAILURE. The paper's proxies recover reactively;
// systems it compares against (Piranha) monitor proactively — the
// detector provides that complementary path with no ORB extensions,
// exactly in the spirit of the paper's portability argument.
type Detector struct {
	pinger Pinger
	nsList OfferLister
	nsBind Unbinder
	opts   DetectorOptions

	mu        sync.Mutex
	names     []naming.Name
	suspicion map[string]int // offer key -> consecutive failures
	removed   int
	evicted   atomic.Uint64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	started  bool
}

// NewDetector builds a detector probing with pinger and editing bindings
// through the naming client (which satisfies both OfferLister and
// Unbinder).
func NewDetector(pinger Pinger, ns interface {
	OfferLister
	Unbinder
}, opts DetectorOptions) *Detector {
	if opts.Suspicions <= 0 {
		opts.Suspicions = 2
	}
	if opts.Period <= 0 {
		opts.Period = time.Second
	}
	return &Detector{
		pinger:    pinger,
		nsList:    ns,
		nsBind:    ns,
		opts:      opts,
		suspicion: make(map[string]int),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// Watch adds a group name to the probe set.
func (d *Detector) Watch(name naming.Name) {
	d.mu.Lock()
	d.names = append(d.names, name)
	d.mu.Unlock()
}

// Removed returns how many dead offers the detector has unbound.
func (d *Detector) Removed() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.removed
}

// Evicted returns the same count as Removed through a lock-free counter,
// safe to read from a metrics scrape while a probe sweep holds the mutex.
func (d *Detector) Evicted() uint64 { return d.evicted.Load() }

// ExportMetrics registers the detector's eviction counter on reg. Like
// the nameserver's lease sweeper, evictions surface as
// naming_offers_evicted_total — both mechanisms remove dead offers from
// the group, they just notice death differently (probe vs lease expiry).
func (d *Detector) ExportMetrics(reg *obs.Registry) {
	reg.NewCounterFunc("naming_offers_evicted_total",
		"Dead offers unbound by the failure detector.", d.Evicted)
}

// offerKey identifies an offer within a name for suspicion counting.
func offerKey(name naming.Name, ref orb.ObjectRef) string {
	return name.String() + "|" + ref.Addr + "|" + ref.Key
}

// Step probes every watched offer once and unbinds those whose suspicion
// counter reaches the threshold. It returns the number of offers unbound
// in this step. Tests and simulations call Step directly; production use
// runs Start.
func (d *Detector) Step(ctx context.Context) int {
	d.mu.Lock()
	names := append([]naming.Name(nil), d.names...)
	d.mu.Unlock()

	unbound := 0
	for _, name := range names {
		offers, err := d.nsList.ListOffers(ctx, name)
		if err != nil {
			continue
		}
		for _, o := range offers {
			key := offerKey(name, o.Ref)
			if err := d.pinger.Ping(ctx, o.Ref); err == nil {
				d.mu.Lock()
				delete(d.suspicion, key)
				d.mu.Unlock()
				continue
			}
			d.mu.Lock()
			d.suspicion[key]++
			suspicions := d.suspicion[key]
			guilty := suspicions >= d.opts.Suspicions
			if guilty {
				delete(d.suspicion, key)
			}
			d.mu.Unlock()
			if guilty {
				if err := d.nsBind.UnbindOffer(ctx, name, o.Ref); err == nil {
					d.mu.Lock()
					d.removed++
					d.mu.Unlock()
					d.evicted.Add(1)
					unbound++
					if d.opts.Logger != nil {
						d.opts.Logger.Warn("ft: dead offer evicted",
							"offer", key,
							"host", o.Host,
							"suspicions", suspicions)
					}
					if d.opts.OnEvict != nil {
						d.opts.OnEvict(name, o, suspicions)
					}
					if d.opts.Membership != nil && o.Host != "" {
						d.opts.Membership.ReportDead(o.Host)
					}
				}
			}
		}
	}
	return unbound
}

// Start launches the periodic probe loop. Start is idempotent.
func (d *Detector) Start() {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.mu.Unlock()
	go func() {
		defer close(d.done)
		t := time.NewTicker(d.opts.Period)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				// One probe sweep must not outlive its period, or sweeps
				// pile up behind a hung host.
				ctx, cancel := context.WithTimeout(context.Background(), d.opts.Period)
				d.Step(ctx)
				cancel()
			case <-d.stop:
				return
			}
		}
	}()
}

// Stop halts the probe loop and waits for it to exit.
func (d *Detector) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	d.mu.Lock()
	started := d.started
	d.mu.Unlock()
	if started {
		<-d.done
	}
}
