package ft

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/orb"
	"repro/internal/winner"
)

var errPingFailed = errors.New("probe failed")

// loadTable is a static RankedLoads for tests.
type loadTable map[string]float64

func (l loadTable) HostEffectiveSpeed(host string) (float64, bool) {
	v, ok := l[host]
	return v, ok
}

func TestMigratorMovesToMuchBetterHost(t *testing.T) {
	w := newFTWorld(t)
	p := w.newProxy(Policy{CheckpointEvery: 1})
	if _, err := inc(p, 42); err != nil {
		t.Fatal(err)
	}
	// Proxy sits on hostA. hostB is 4x faster → migrate.
	mig := NewMigrator(context.Background(), p,
		MigrateOffers(w.naming), MigrateLoads(loadTable{"hostA": 0.25, "hostB": 1.0}),
		MigrateMinImprovement(2))
	host, err := mig.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if host != "hostB" {
		t.Fatalf("migrated to %q", host)
	}
	if w.ctrB.value != 42 {
		t.Fatalf("state not migrated: %d", w.ctrB.value)
	}
	if mig.Migrations() != 1 {
		t.Fatalf("migrations = %d", mig.Migrations())
	}
	// Calls continue against the new host.
	if v, err := inc(p, 1); err != nil || v != 43 {
		t.Fatalf("post-migration inc = %d, %v", v, err)
	}
}

func TestMigratorStaysOnSlightImprovement(t *testing.T) {
	w := newFTWorld(t)
	p := w.newProxy(Policy{CheckpointEvery: 1})
	if _, err := inc(p, 1); err != nil {
		t.Fatal(err)
	}
	mig := NewMigrator(context.Background(), p,
		MigrateOffers(w.naming), MigrateLoads(loadTable{"hostA": 1.0, "hostB": 1.2}),
		MigrateMinImprovement(1.5))
	host, err := mig.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if host != "" {
		t.Fatalf("migrated to %q for a 1.2x gain", host)
	}
	if mig.Migrations() != 0 {
		t.Fatal("migration counted")
	}
}

func TestMigratorUnknownLoadsNoMove(t *testing.T) {
	w := newFTWorld(t)
	p := w.newProxy(Policy{CheckpointEvery: 1})
	mig := NewMigratorWithOptions(p, w.naming, loadTable{}, MigratorOptions{}) // deprecated shim stays covered
	host, err := mig.Step(context.Background())
	if err != nil || host != "" {
		t.Fatalf("step = %q, %v", host, err)
	}
}

func TestMigratorWithWinnerManager(t *testing.T) {
	w := newFTWorld(t)
	p := w.newProxy(Policy{CheckpointEvery: 1})
	if _, err := inc(p, 5); err != nil {
		t.Fatal(err)
	}
	mgr := winner.NewManager()
	mgr.Report(winner.LoadSample{Host: "hostA", Speed: 1, RunQueue: 3, Seq: 1}) // eff 0.25
	mgr.Report(winner.LoadSample{Host: "hostB", Speed: 1, RunQueue: 0, Seq: 1}) // eff 1.0
	mig := NewMigrator(context.Background(), p,
		MigrateOffers(w.naming), MigrateLoads(mgr), MigrateMinImprovement(2))
	host, err := mig.Step(context.Background())
	if err != nil || host != "hostB" {
		t.Fatalf("step = %q, %v", host, err)
	}
}

func TestDetectorUnbindsDeadOffer(t *testing.T) {
	w := newFTWorld(t)
	det := NewDetector(w.client, w.naming, DetectorOptions{Suspicions: 2})
	det.Watch(w.name)

	// All alive: nothing happens.
	if n := det.Step(context.Background()); n != 0 {
		t.Fatalf("step removed %d offers", n)
	}
	// Kill server A. First step only raises suspicion, second unbinds.
	w.adA.Close()
	w.srvA.Shutdown()
	if n := det.Step(context.Background()); n != 0 {
		t.Fatalf("unbound after one suspicion: %d", n)
	}
	if n := det.Step(context.Background()); n != 1 {
		t.Fatalf("second step unbound %d", n)
	}
	offers, err := w.naming.ListOffers(context.Background(), w.name)
	if err != nil || len(offers) != 1 || offers[0].Host != "hostB" {
		t.Fatalf("offers = %+v, %v", offers, err)
	}
	if det.Removed() != 1 {
		t.Fatalf("removed = %d", det.Removed())
	}
}

func TestDetectorRecoveredServerClearsSuspicion(t *testing.T) {
	w := newFTWorld(t)
	det := NewDetector(&flakyPinger{orb: w.client, failures: 1}, w.naming, DetectorOptions{Suspicions: 2})
	det.Watch(w.name)
	det.Step(context.Background()) // every offer fails once (suspicion 1)
	det.Step(context.Background()) // pinger healthy again: suspicion cleared
	if n := det.Removed(); n != 0 {
		t.Fatalf("removed = %d after transient failure", n)
	}
	det.Step(context.Background())
	if n := det.Removed(); n != 0 {
		t.Fatalf("removed = %d", n)
	}
}

// flakyPinger fails the first `failures` probes of every offer, then
// delegates to the real ORB.
type flakyPinger struct {
	orb   Pinger
	count int
	// failures is the number of initial global probe rounds that fail.
	failures int
}

func (f *flakyPinger) Ping(ctx context.Context, ref orb.ObjectRef) error {
	if f.count < f.failures*2 { // 2 offers per round in ftWorld
		f.count++
		return errPingFailed
	}
	return f.orb.Ping(ctx, ref)
}

func TestDetectorStartStop(t *testing.T) {
	w := newFTWorld(t)
	det := NewDetector(w.client, w.naming, DetectorOptions{Suspicions: 1, Period: 5 * time.Millisecond})
	det.Watch(w.name)
	det.Start()
	det.Start() // idempotent
	w.adA.Close()
	w.srvA.Shutdown()
	deadline := time.Now().Add(5 * time.Second)
	for det.Removed() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("detector never unbound the dead offer")
		}
		time.Sleep(time.Millisecond)
	}
	det.Stop()
	det.Stop() // idempotent
}

func TestDetectorStopWithoutStart(t *testing.T) {
	w := newFTWorld(t)
	det := NewDetector(w.client, w.naming, DetectorOptions{})
	det.Stop() // must not hang
}
