package ft

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/naming"
	"repro/internal/orb"
)

// recordingStore wraps a Store and keeps every Put it saw, optionally
// failing selected Puts to exercise the proxy's fallback paths.
type recordingStore struct {
	inner Store

	mu   sync.Mutex
	puts []Checkpoint
	// failPut, when non-nil, is consulted before each Put; a non-nil
	// return fails the Put without reaching the inner store.
	failPut func(cp Checkpoint) error
}

func (s *recordingStore) Put(ctx context.Context, key string, cp Checkpoint) error {
	s.mu.Lock()
	s.puts = append(s.puts, cp)
	fail := s.failPut
	s.mu.Unlock()
	if fail != nil {
		if err := fail(cp); err != nil {
			return err
		}
	}
	return s.inner.Put(ctx, key, cp)
}

func (s *recordingStore) Get(ctx context.Context, key string) (Checkpoint, error) {
	return s.inner.Get(ctx, key)
}

func (s *recordingStore) Delete(ctx context.Context, key string) error {
	return s.inner.Delete(ctx, key)
}

func (s *recordingStore) Keys(ctx context.Context) ([]string, error) {
	return s.inner.Keys(ctx)
}

func (s *recordingStore) history() []Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Checkpoint(nil), s.puts...)
}

// TestAsyncCheckpointPipelineDrainsOnClose checks that every pipelined
// checkpoint lands in the store once Close returns, in epoch order, and
// that the async counter reflects the queued writes.
func TestAsyncCheckpointPipelineDrainsOnClose(t *testing.T) {
	w := newFTWorld(t)
	p := w.newProxy(Policy{CheckpointEvery: 1, AsyncCheckpoint: true, QueueDepth: 2})
	const calls = 8
	for i := 0; i < calls; i++ {
		if _, err := inc(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	epoch, data, err := getFull(context.Background(), w.store, w.name.String())
	if err != nil {
		t.Fatal(err)
	}
	if epoch != calls {
		t.Fatalf("store epoch after Close = %d, want %d", epoch, calls)
	}
	if v := decodeCounterState(t, data); v != calls {
		t.Fatalf("checkpointed value = %d, want %d", v, calls)
	}
	st := p.Stats()
	if st.AsyncCheckpoints != calls || st.Checkpoints != calls {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAsyncCheckpointDrainsBeforeRecovery crashes the server with
// checkpoints still in flight: recovery must drain the pipeline before
// reading the store, so the restored state reflects every completed call.
func TestAsyncCheckpointDrainsBeforeRecovery(t *testing.T) {
	w := newFTWorld(t)
	p := w.newProxy(Policy{CheckpointEvery: 1, AsyncCheckpoint: true, QueueDepth: 8})
	defer p.Close()
	for i := 0; i < 5; i++ {
		if _, err := inc(p, 10); err != nil {
			t.Fatal(err)
		}
	}
	w.adA.Close()
	w.srvA.Shutdown()
	v, err := inc(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if v != 60 {
		t.Fatalf("value after recovery = %d, want 60", v)
	}
	if st := p.Stats(); st.Recoveries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSyncEveryBoundsUnackedWindow checks that with SyncEvery=N every Nth
// checkpoint is stored synchronously: by the time the call returns, the
// store holds that epoch without any drain or Close.
func TestSyncEveryBoundsUnackedWindow(t *testing.T) {
	w := newFTWorld(t)
	p := w.newProxy(Policy{CheckpointEvery: 1, AsyncCheckpoint: true, QueueDepth: 8, SyncEvery: 2})
	defer p.Close()
	for i := 1; i <= 4; i++ {
		if _, err := inc(p, 1); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			epoch, _, err := getFull(context.Background(), w.store, w.name.String())
			if err != nil {
				t.Fatal(err)
			}
			if epoch != uint64(i) {
				t.Fatalf("after call %d store epoch = %d, want %d (forced sync)", i, epoch, i)
			}
		}
	}
}

// TestDeltaBadBaseFallsBackToFull rejects a delta Put with ErrBadBase and
// checks the proxy re-sends the same epoch as a full snapshot, so one
// stale replica never wedges checkpointing.
func TestDeltaBadBaseFallsBackToFull(t *testing.T) {
	// A counter's 8-byte state never yields a smaller delta, so this test
	// uses the 64-float vector servant (bench fixture): one element moves
	// per call, making deltas genuinely smaller than full snapshots.
	srv := orb.New(orb.Options{Name: "delta-srv"})
	t.Cleanup(srv.Shutdown)
	ad, err := srv.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ref := ad.Activate("state", Wrap(newBenchState(64)))
	cli := orb.New(orb.Options{Name: "delta-cli"})
	t.Cleanup(cli.Shutdown)

	rec := &recordingStore{inner: NewMemStore()}
	rejectOnce := true
	rec.failPut = func(cp Checkpoint) error {
		if cp.IsDelta() && rejectOnce {
			rejectOnce = false
			return ErrBadBase
		}
		return nil
	}
	p, err := NewProxy(context.Background(), cli, naming.NewName("delta"),
		&benchResolver{ref: ref}, rec, Policy{CheckpointEvery: 1, DeltaCheckpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if err := p.Call(context.Background(), "bump",
			encodeInt64Arg(i), discardInt64Reply); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Checkpoints != 3 || st.CheckpointFailures != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.DeltaCheckpoints == 0 {
		t.Fatalf("no delta checkpoints produced: %+v", st)
	}
	// History: the rejected delta is immediately followed by a full
	// snapshot at the same epoch.
	var sawFallback bool
	hist := rec.history()
	for i := 0; i+1 < len(hist); i++ {
		if hist[i].IsDelta() && !hist[i+1].IsDelta() && hist[i].Epoch == hist[i+1].Epoch {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Fatalf("no delta→full fallback in put history: %+v", hist)
	}
	cp, err := rec.Get(context.Background(), "delta")
	if err != nil || cp.Epoch != 3 {
		t.Fatalf("final store state = %+v, %v", cp, err)
	}
}

// TestCheckpointModePerCallOverride exercises WithCheckpointMode: Sync
// forces a checkpoint with cadence disabled, Skip suppresses one with
// cadence enabled.
func TestCheckpointModePerCallOverride(t *testing.T) {
	w := newFTWorld(t)

	// No cadence: only the forced-sync call checkpoints.
	p := w.newProxy(Policy{CheckpointEvery: 0})
	if _, err := inc(p, 1); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Checkpoints != 0 {
		t.Fatalf("stats with cadence off = %+v", st)
	}
	err := p.Call(context.Background(), "inc",
		encodeInt64Arg(1), discardInt64Reply, orb.WithCheckpointMode(orb.CheckpointSync))
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Checkpoints != 1 {
		t.Fatalf("stats after forced sync = %+v", st)
	}

	// Cadence 1: a Skip call must not checkpoint or advance the counter.
	before := p.Stats().Checkpoints
	err = p.Call(context.Background(), "inc",
		encodeInt64Arg(1), discardInt64Reply, orb.WithCheckpointMode(orb.CheckpointSkip))
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Checkpoints != before {
		t.Fatalf("skip call checkpointed: %+v", st)
	}
}

// TestDeltaRestoreEquivalence runs the same call sequence through a
// delta+compress proxy and a full-snapshot proxy, with checkpoint Puts
// failing intermittently (transport corruption analogue), and a server
// crash mid-sequence. Both runs must recover to identical servant state:
// delta encoding is an encoding, never a semantic fork.
func TestDeltaRestoreEquivalence(t *testing.T) {
	run := func(policy Policy) (final int64, stored []byte) {
		w := newFTWorld(t)
		rec := &recordingStore{inner: NewMemStore()}
		n := 0
		commFail := errors.New("injected: checkpoint transport corrupted")
		rec.failPut = func(cp Checkpoint) error {
			n++
			if n%3 == 0 { // every 3rd Put dies on the wire
				return commFail
			}
			return nil
		}
		p, err := NewProxy(context.Background(), w.client, w.name, w.naming, rec, policy)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		for i := 0; i < 6; i++ {
			if _, err := inc(p, 2); err != nil {
				t.Fatal(err)
			}
		}
		w.adA.Close()
		w.srvA.Shutdown()
		var v int64
		for i := 0; i < 4; i++ {
			if v, err = inc(p, 2); err != nil {
				t.Fatal(err)
			}
		}
		cp, err := rec.Get(context.Background(), w.name.String())
		if err != nil {
			t.Fatal(err)
		}
		return v, cp.Data
	}

	fullV, fullState := run(Policy{CheckpointEvery: 1, StrictCheckpoint: false})
	deltaV, deltaState := run(Policy{CheckpointEvery: 1, DeltaCheckpoint: true, CompressCheckpoint: true})
	if fullV != deltaV {
		t.Fatalf("final value diverged: full=%d delta=%d", fullV, deltaV)
	}
	if !bytes.Equal(fullState, deltaState) {
		t.Fatalf("stored state diverged: full=%x delta=%x", fullState, deltaState)
	}
}
