package ft

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/naming"
	"repro/internal/orb"
)

// A GroupRef is usable directly as a proxy's resolver.
var _ PushedResolver = (*naming.GroupRef)(nil)

// fakePushed is a PushedResolver over a fixed member list: Resolve
// returns the first member not marked dead, MarkDead records the call.
type fakePushed struct {
	mu    sync.Mutex
	refs  []orb.ObjectRef
	dead  map[orb.ObjectRef]bool
	marks int
}

func (f *fakePushed) Resolve(ctx context.Context, name naming.Name) (orb.ObjectRef, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.refs {
		if !f.dead[r] {
			return r, nil
		}
	}
	return orb.ObjectRef{}, errors.New("no live members")
}

func (f *fakePushed) MarkDead(ref orb.ObjectRef) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead == nil {
		f.dead = make(map[orb.ObjectRef]bool)
	}
	f.dead[ref] = true
	f.marks++
}

type countingUnbinder struct{ calls atomic.Int64 }

func (u *countingUnbinder) UnbindOffer(ctx context.Context, name naming.Name, ref orb.ObjectRef) error {
	u.calls.Add(1)
	return nil
}

// TestRecoverySkipsUnbinderForPushedResolver: with a push-maintained
// resolver, recovery marks the dead member locally and never issues the
// unbind RPC — even when an unbinder is configured.
func TestRecoverySkipsUnbinderForPushedResolver(t *testing.T) {
	w := newFTWorld(t)
	ctx := context.Background()
	offers, err := w.naming.ListOffers(ctx, w.name)
	if err != nil || len(offers) != 2 {
		t.Fatalf("offers: %v, %v", offers, err)
	}
	fp := &fakePushed{refs: []orb.ObjectRef{offers[0].Ref, offers[1].Ref}}
	cu := &countingUnbinder{}
	p, err := NewProxy(ctx, w.client, w.name, fp, w.store, Policy{CheckpointEvery: 1}, WithUnbinder(cu))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc(p, 5); err != nil {
		t.Fatal(err)
	}

	w.adA.Close()
	w.srvA.Shutdown()
	v, err := inc(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v != 10 {
		t.Fatalf("value after recovery = %d, want 10", v)
	}

	fp.mu.Lock()
	marks, deadA := fp.marks, fp.dead[offers[0].Ref]
	fp.mu.Unlock()
	if marks != 1 || !deadA {
		t.Fatalf("MarkDead: calls=%d deadA=%v, want 1/true", marks, deadA)
	}
	if n := cu.calls.Load(); n != 0 {
		t.Fatalf("unbinder called %d times; pushed resolver must skip it", n)
	}
	if st := p.Stats(); st.Recoveries == 0 {
		t.Fatalf("stats = %+v, want a recovery", st)
	}
}

// TestProxyRecoversViaPushedMembership is the end-to-end zero-RPC
// failover path: a proxy resolving through a GroupRef subscribes once,
// then survives a server crash with no resolve and no further watch
// traffic at the nameserver.
func TestProxyRecoversViaPushedMembership(t *testing.T) {
	w := newFTWorld(t)
	ctx := context.Background()
	ad, err := w.client.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cache := naming.NewGroupCache(ad, w.naming, naming.GroupCacheOptions{Refresh: -1})
	t.Cleanup(cache.Close)
	g := cache.Group(w.name, naming.SpreadSticky)

	p, err := NewProxy(ctx, w.client, w.name, g, w.store, Policy{CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := inc(p, 1); err != nil {
			t.Fatal(err)
		}
	}

	// Crash whichever server the sticky ref pinned; the replica is the
	// other one.
	if p.Ref().Addr == w.adA.Addr() {
		w.adA.Close()
		w.srvA.Shutdown()
	} else {
		w.adB.Close()
		w.srvB.Shutdown()
	}
	v, err := inc(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 4 {
		t.Fatalf("value after crash = %d, want 4", v)
	}
	if st := p.Stats(); st.Recoveries == 0 {
		t.Fatalf("stats = %+v, want a recovery", st)
	}

	// The whole episode cost the nameserver one watch call and zero
	// resolves: the initial subscription doubles as the resolve, and the
	// failover ran entirely on cached membership.
	if n := w.nsSrv.Resolves(); n != 0 {
		t.Fatalf("nameserver served %d resolves, want 0", n)
	}
	if n := w.nsSrv.WatchRequests(); n != 1 {
		t.Fatalf("nameserver served %d watch requests, want 1", n)
	}
}
