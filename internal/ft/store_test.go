package ft

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

// storeImpls enumerates the Store implementations under test.
func storeImpls(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"mem":  NewMemStore(),
		"disk": disk,
	}
}

func TestStorePutGet(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if err := putFull(context.Background(), s, "svc", 1, []byte("state-1")); err != nil {
				t.Fatal(err)
			}
			epoch, data, err := getFull(context.Background(), s, "svc")
			if err != nil {
				t.Fatal(err)
			}
			if epoch != 1 || string(data) != "state-1" {
				t.Fatalf("got %d %q", epoch, data)
			}
		})
	}
}

func TestStoreNewerEpochReplaces(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if err := putFull(context.Background(), s, "svc", 1, []byte("old")); err != nil {
				t.Fatal(err)
			}
			if err := putFull(context.Background(), s, "svc", 2, []byte("new")); err != nil {
				t.Fatal(err)
			}
			epoch, data, _ := getFull(context.Background(), s, "svc")
			if epoch != 2 || string(data) != "new" {
				t.Fatalf("got %d %q", epoch, data)
			}
		})
	}
}

func TestStoreStaleEpochRejected(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if err := putFull(context.Background(), s, "svc", 5, []byte("v5")); err != nil {
				t.Fatal(err)
			}
			err := putFull(context.Background(), s, "svc", 5, []byte("v5-again"))
			if !errors.Is(err, ErrStaleEpoch) {
				t.Fatalf("err = %v", err)
			}
			err = putFull(context.Background(), s, "svc", 4, []byte("v4"))
			if !errors.Is(err, ErrStaleEpoch) {
				t.Fatalf("err = %v", err)
			}
			_, data, _ := getFull(context.Background(), s, "svc")
			if string(data) != "v5" {
				t.Fatalf("state rolled back to %q", data)
			}
		})
	}
}

func TestStoreGetMissing(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if _, _, err := getFull(context.Background(), s, "ghost"); !errors.Is(err, ErrNoCheckpoint) {
				t.Fatalf("err = %v", err)
			}
		})
	}
}

func TestStoreDelete(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if err := putFull(context.Background(), s, "svc", 1, []byte("x")); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete(context.Background(), "svc"); err != nil {
				t.Fatal(err)
			}
			if _, _, err := getFull(context.Background(), s, "svc"); !errors.Is(err, ErrNoCheckpoint) {
				t.Fatalf("err = %v", err)
			}
			if err := s.Delete(context.Background(), "svc"); err != nil {
				t.Fatalf("delete not idempotent: %v", err)
			}
		})
	}
}

func TestStoreKeys(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			for _, k := range []string{"b", "a", "c/with.weird\\chars"} {
				if err := putFull(context.Background(), s, k, 1, []byte(k)); err != nil {
					t.Fatal(err)
				}
			}
			keys, err := s.Keys(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"a", "b", "c/with.weird\\chars"}
			if len(keys) != len(want) {
				t.Fatalf("keys = %v", keys)
			}
			for i := range want {
				if keys[i] != want[i] {
					t.Fatalf("keys = %v", keys)
				}
			}
		})
	}
}

func TestStoreEmptyKeys(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			keys, err := s.Keys(context.Background())
			if err != nil || len(keys) != 0 {
				t.Fatalf("keys = %v, %v", keys, err)
			}
		})
	}
}

func TestMemStoreReturnsCopies(t *testing.T) {
	s := NewMemStore()
	orig := []byte("abc")
	if err := putFull(context.Background(), s, "k", 1, orig); err != nil {
		t.Fatal(err)
	}
	orig[0] = 'X' // caller mutates its buffer afterwards
	_, data, _ := getFull(context.Background(), s, "k")
	if string(data) != "abc" {
		t.Fatalf("store aliased caller buffer: %q", data)
	}
	data[0] = 'Y' // reader mutates the returned buffer
	_, data2, _ := getFull(context.Background(), s, "k")
	if string(data2) != "abc" {
		t.Fatalf("store aliased reader buffer: %q", data2)
	}
}

func TestDiskStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := putFull(context.Background(), s1, "svc", 7, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	epoch, data, err := getFull(context.Background(), s2, "svc")
	if err != nil || epoch != 7 || string(data) != "persisted" {
		t.Fatalf("got %d %q %v", epoch, data, err)
	}
}

func TestDiskStoreCorruptFile(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := putFull(context.Background(), s, "svc", 1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	// Truncate the file to corrupt it.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte{1, 2}, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err = getFull(context.Background(), s, "svc")
	if err == nil {
		t.Fatal("corrupt checkpoint read succeeded")
	}
	// Corruption must be distinguishable — typed, not ErrNoCheckpoint and
	// never a zero-epoch success.
	if !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
	}
	if errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("corrupt checkpoint reported as missing: %v", err)
	}
}

// TestDiskStorePutIsAtomicAndTidy: Put commits via temp file + rename, so
// a directory snapshot after any number of Puts holds exactly the
// committed checkpoint files — no .tmp residue that a crash-recovery scan
// could mistake for state.
func TestDiskStorePutIsAtomicAndTidy(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := putFull(context.Background(), s, "svc", uint64(i), []byte("state")); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want exactly one committed checkpoint", names)
	}
	if filepath.Ext(entries[0].Name()) != ".ckpt" {
		t.Fatalf("committed file %q is not a .ckpt", entries[0].Name())
	}
}

// TestDiskStoreSurvivesTornTempWrite: a crash mid-write leaves a partial
// temp file; the previously acked checkpoint must still be served intact
// by a reopened store.
func TestDiskStoreSurvivesTornTempWrite(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := putFull(context.Background(), s1, "svc", 3, []byte("acked")); err != nil {
		t.Fatal(err)
	}
	// Simulate a writer that died before its rename: garbage temp file
	// next to the committed checkpoint.
	entries, _ := os.ReadDir(dir)
	torn := filepath.Join(dir, entries[0].Name()+".tmp")
	if err := os.WriteFile(torn, []byte{0xde, 0xad}, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	epoch, data, err := getFull(context.Background(), s2, "svc")
	if err != nil || epoch != 3 || string(data) != "acked" {
		t.Fatalf("got %d %q %v, want the acked checkpoint", epoch, data, err)
	}
	keys, err := s2.Keys(context.Background())
	if err != nil || len(keys) != 1 || keys[0] != "svc" {
		t.Fatalf("keys = %v, %v; torn temp file leaked into the key space", keys, err)
	}
	// The next Put replaces the torn temp and commits cleanly.
	if err := putFull(context.Background(), s2, "svc", 4, []byte("newer")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("temp file still present after commit: %v", err)
	}
}

// TestStoreHonoursCancelledContext: every operation refuses an already
// cancelled ctx instead of doing work.
func TestStoreHonoursCancelledContext(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if err := putFull(ctx, s, "k", 1, []byte("x")); !errors.Is(err, context.Canceled) {
				t.Fatalf("Put err = %v", err)
			}
			if _, _, err := getFull(ctx, s, "k"); !errors.Is(err, context.Canceled) {
				t.Fatalf("Get err = %v", err)
			}
			if err := s.Delete(ctx, "k"); !errors.Is(err, context.Canceled) {
				t.Fatalf("Delete err = %v", err)
			}
			if _, err := s.Keys(ctx); !errors.Is(err, context.Canceled) {
				t.Fatalf("Keys err = %v", err)
			}
		})
	}
}

func TestDiskStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "zz-not-hex.ckpt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := putFull(context.Background(), s, "real", 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	keys, err := s.Keys(context.Background())
	if err != nil || len(keys) != 1 || keys[0] != "real" {
		t.Fatalf("keys = %v, %v", keys, err)
	}
}

// Property: for any sequence of monotone puts, Get returns the last one —
// on both implementations.
func TestQuickStoreLastWriteWins(t *testing.T) {
	for name, mk := range map[string]func(t *testing.T) Store{
		"mem": func(*testing.T) Store { return NewMemStore() },
		"disk": func(t *testing.T) Store {
			s, err := NewDiskStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	} {
		t.Run(name, func(t *testing.T) {
			f := func(blobs [][]byte) bool {
				if len(blobs) > 12 {
					blobs = blobs[:12]
				}
				s := mk(t)
				for i, b := range blobs {
					if err := putFull(context.Background(), s, "k", uint64(i+1), b); err != nil {
						return false
					}
				}
				if len(blobs) == 0 {
					_, _, err := getFull(context.Background(), s, "k")
					return errors.Is(err, ErrNoCheckpoint)
				}
				epoch, data, err := getFull(context.Background(), s, "k")
				if err != nil || epoch != uint64(len(blobs)) {
					return false
				}
				last := blobs[len(blobs)-1]
				if len(data) != len(last) {
					return false
				}
				for i := range last {
					if data[i] != last[i] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
