package ft

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

// storeImpls enumerates the Store implementations under test.
func storeImpls(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"mem":  NewMemStore(),
		"disk": disk,
	}
}

func TestStorePutGet(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("svc", 1, []byte("state-1")); err != nil {
				t.Fatal(err)
			}
			epoch, data, err := s.Get("svc")
			if err != nil {
				t.Fatal(err)
			}
			if epoch != 1 || string(data) != "state-1" {
				t.Fatalf("got %d %q", epoch, data)
			}
		})
	}
}

func TestStoreNewerEpochReplaces(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("svc", 1, []byte("old")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("svc", 2, []byte("new")); err != nil {
				t.Fatal(err)
			}
			epoch, data, _ := s.Get("svc")
			if epoch != 2 || string(data) != "new" {
				t.Fatalf("got %d %q", epoch, data)
			}
		})
	}
}

func TestStoreStaleEpochRejected(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("svc", 5, []byte("v5")); err != nil {
				t.Fatal(err)
			}
			err := s.Put("svc", 5, []byte("v5-again"))
			if !errors.Is(err, ErrStaleEpoch) {
				t.Fatalf("err = %v", err)
			}
			err = s.Put("svc", 4, []byte("v4"))
			if !errors.Is(err, ErrStaleEpoch) {
				t.Fatalf("err = %v", err)
			}
			_, data, _ := s.Get("svc")
			if string(data) != "v5" {
				t.Fatalf("state rolled back to %q", data)
			}
		})
	}
}

func TestStoreGetMissing(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if _, _, err := s.Get("ghost"); !errors.Is(err, ErrNoCheckpoint) {
				t.Fatalf("err = %v", err)
			}
		})
	}
}

func TestStoreDelete(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("svc", 1, []byte("x")); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete("svc"); err != nil {
				t.Fatal(err)
			}
			if _, _, err := s.Get("svc"); !errors.Is(err, ErrNoCheckpoint) {
				t.Fatalf("err = %v", err)
			}
			if err := s.Delete("svc"); err != nil {
				t.Fatalf("delete not idempotent: %v", err)
			}
		})
	}
}

func TestStoreKeys(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			for _, k := range []string{"b", "a", "c/with.weird\\chars"} {
				if err := s.Put(k, 1, []byte(k)); err != nil {
					t.Fatal(err)
				}
			}
			keys, err := s.Keys()
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"a", "b", "c/with.weird\\chars"}
			if len(keys) != len(want) {
				t.Fatalf("keys = %v", keys)
			}
			for i := range want {
				if keys[i] != want[i] {
					t.Fatalf("keys = %v", keys)
				}
			}
		})
	}
}

func TestStoreEmptyKeys(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			keys, err := s.Keys()
			if err != nil || len(keys) != 0 {
				t.Fatalf("keys = %v, %v", keys, err)
			}
		})
	}
}

func TestMemStoreReturnsCopies(t *testing.T) {
	s := NewMemStore()
	orig := []byte("abc")
	if err := s.Put("k", 1, orig); err != nil {
		t.Fatal(err)
	}
	orig[0] = 'X' // caller mutates its buffer afterwards
	_, data, _ := s.Get("k")
	if string(data) != "abc" {
		t.Fatalf("store aliased caller buffer: %q", data)
	}
	data[0] = 'Y' // reader mutates the returned buffer
	_, data2, _ := s.Get("k")
	if string(data2) != "abc" {
		t.Fatalf("store aliased reader buffer: %q", data2)
	}
}

func TestDiskStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("svc", 7, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	epoch, data, err := s2.Get("svc")
	if err != nil || epoch != 7 || string(data) != "persisted" {
		t.Fatalf("got %d %q %v", epoch, data, err)
	}
}

func TestDiskStoreCorruptFile(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("svc", 1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	// Truncate the file to corrupt it.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte{1, 2}, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.Get("svc"); err == nil {
		t.Fatal("corrupt checkpoint read succeeded")
	}
}

func TestDiskStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "zz-not-hex.ckpt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("real", 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	keys, err := s.Keys()
	if err != nil || len(keys) != 1 || keys[0] != "real" {
		t.Fatalf("keys = %v, %v", keys, err)
	}
}

// Property: for any sequence of monotone puts, Get returns the last one —
// on both implementations.
func TestQuickStoreLastWriteWins(t *testing.T) {
	for name, mk := range map[string]func(t *testing.T) Store{
		"mem": func(*testing.T) Store { return NewMemStore() },
		"disk": func(t *testing.T) Store {
			s, err := NewDiskStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	} {
		t.Run(name, func(t *testing.T) {
			f := func(blobs [][]byte) bool {
				if len(blobs) > 12 {
					blobs = blobs[:12]
				}
				s := mk(t)
				for i, b := range blobs {
					if err := s.Put("k", uint64(i+1), b); err != nil {
						return false
					}
				}
				if len(blobs) == 0 {
					_, _, err := s.Get("k")
					return errors.Is(err, ErrNoCheckpoint)
				}
				epoch, data, err := s.Get("k")
				if err != nil || epoch != uint64(len(blobs)) {
					return false
				}
				last := blobs[len(blobs)-1]
				if len(data) != len(last) {
					return false
				}
				for i := range last {
					if data[i] != last[i] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
