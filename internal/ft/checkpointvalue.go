package ft

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"

	"repro/internal/cdr"
)

// ErrBadBase is returned by Put when a delta checkpoint's Base does not
// match the epoch the store currently holds — the store cannot apply the
// delta. Producers react by re-sending the checkpoint as a full snapshot.
var ErrBadBase = errors.New("ft: delta base mismatch")

// Codec identifies the encoding of a Checkpoint's payload bytes.
type Codec uint32

const (
	// CodecRaw is the uncompressed payload.
	CodecRaw Codec = 0
	// CodecFlate is a DEFLATE-compressed payload (stdlib compress/flate).
	CodecFlate Codec = 1
)

// Checkpoint is the versioned checkpoint value carried through Store: the
// epoch that orders it, an optional delta base, a payload codec, and the
// payload itself. It replaces the historical raw (epoch, data) pair so
// incremental and compressed checkpoints travel through every store
// implementation — local, remote, replicated — without the backends
// agreeing on anything beyond this one type.
//
// A Checkpoint with Base == 0 is a full snapshot. With Base > 0 the
// payload is a delta (see ComputeDelta) against the full state stored at
// epoch Base; store backends materialize deltas at Put time and always
// return full snapshots from Get, so restore never needs delta replay.
type Checkpoint struct {
	// Epoch orders checkpoints of one key; Puts must be strictly newer
	// than the stored epoch.
	Epoch uint64
	// Base is the epoch the delta payload applies to. 0 marks a full
	// snapshot (epoch 0 is never a valid checkpoint epoch).
	Base uint64
	// Codec identifies the payload encoding.
	Codec Codec
	// Data is the (possibly delta-encoded, possibly compressed) payload.
	Data []byte
}

// Full builds a full-snapshot checkpoint at epoch.
func Full(epoch uint64, data []byte) Checkpoint {
	return Checkpoint{Epoch: epoch, Data: data}
}

// IsDelta reports whether the payload is delta-encoded.
func (c Checkpoint) IsDelta() bool { return c.Base != 0 }

// MarshalCDR writes the checkpoint in its wire format.
func (c Checkpoint) MarshalCDR(e *cdr.Encoder) {
	e.PutUint64(c.Epoch)
	e.PutUint64(c.Base)
	e.PutUint32(uint32(c.Codec))
	e.PutBytes(c.Data)
}

// UnmarshalCDR reads the wire format back.
func (c *Checkpoint) UnmarshalCDR(d *cdr.Decoder) error {
	c.Epoch = d.GetUint64()
	c.Base = d.GetUint64()
	c.Codec = Codec(d.GetUint32())
	c.Data = d.GetBytes()
	return d.Err()
}

// Payload returns the decoded (decompressed) payload bytes — still a
// delta when IsDelta.
func (c Checkpoint) Payload() ([]byte, error) {
	switch c.Codec {
	case CodecRaw:
		return c.Data, nil
	case CodecFlate:
		r := flate.NewReader(bytes.NewReader(c.Data))
		out, err := io.ReadAll(r)
		if cerr := r.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("%w: flate: %v", ErrCorruptCheckpoint, err)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown codec %d", ErrCorruptCheckpoint, c.Codec)
	}
}

// Compressed returns c with its payload flate-compressed, when that
// actually shrinks it; otherwise c is returned unchanged. Only raw
// payloads are considered.
func (c Checkpoint) Compressed() Checkpoint {
	if c.Codec != CodecRaw || len(c.Data) < 64 {
		return c
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return c
	}
	if _, err := w.Write(c.Data); err != nil {
		return c
	}
	if err := w.Close(); err != nil {
		return c
	}
	if buf.Len() >= len(c.Data) {
		return c
	}
	out := c
	out.Codec = CodecFlate
	out.Data = buf.Bytes()
	return out
}

// materialize resolves cp into full raw state bytes, given the full state
// the store currently holds for the key (prev at prevEpoch; havePrev
// false when nothing is stored). Delta checkpoints whose Base does not
// match the stored epoch fail with ErrBadBase.
func materialize(cp Checkpoint, prevEpoch uint64, prev []byte, havePrev bool) ([]byte, error) {
	payload, err := cp.Payload()
	if err != nil {
		return nil, err
	}
	if !cp.IsDelta() {
		return payload, nil
	}
	if !havePrev {
		return nil, fmt.Errorf("%w: delta base %d but nothing stored", ErrBadBase, cp.Base)
	}
	if cp.Base != prevEpoch {
		return nil, fmt.Errorf("%w: delta base %d, stored epoch %d", ErrBadBase, cp.Base, prevEpoch)
	}
	full, err := ApplyDelta(prev, payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptCheckpoint, err)
	}
	return full, nil
}
