package ft

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// downStore fails every operation while down — a crashed/partitioned
// replica.
type downStore struct {
	inner Store
	down  atomic.Bool
}

var errReplicaDown = errors.New("replica down")

func (d *downStore) Put(ctx context.Context, key string, cp Checkpoint) error {
	if d.down.Load() {
		return errReplicaDown
	}
	return d.inner.Put(ctx, key, cp)
}

func (d *downStore) Get(ctx context.Context, key string) (Checkpoint, error) {
	if d.down.Load() {
		return Checkpoint{}, errReplicaDown
	}
	return d.inner.Get(ctx, key)
}

func (d *downStore) Delete(ctx context.Context, key string) error {
	if d.down.Load() {
		return errReplicaDown
	}
	return d.inner.Delete(ctx, key)
}

func (d *downStore) Keys(ctx context.Context) ([]string, error) {
	if d.down.Load() {
		return nil, errReplicaDown
	}
	return d.inner.Keys(ctx)
}

// newReplicaSet builds a 3-replica quorum store over downStore-wrapped
// MemStores.
func newReplicaSet(t *testing.T) (*ReplicatedStore, []*downStore) {
	t.Helper()
	wrapped := make([]*downStore, 3)
	stores := make([]Store, 3)
	for i := range wrapped {
		wrapped[i] = &downStore{inner: NewMemStore()}
		stores[i] = wrapped[i]
	}
	r, err := NewReplicatedStore(stores)
	if err != nil {
		t.Fatal(err)
	}
	return r, wrapped
}

func TestReplicatedStoreRoundTrip(t *testing.T) {
	r, _ := newReplicaSet(t)
	ctx := context.Background()
	if err := putFull(ctx, r, "svc", 1, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	epoch, data, err := getFull(ctx, r, "svc")
	if err != nil || epoch != 1 || string(data) != "v1" {
		t.Fatalf("got %d %q %v", epoch, data, err)
	}
	if _, _, err := getFull(ctx, r, "ghost"); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing key err = %v", err)
	}
	if err := putFull(ctx, r, "svc", 1, []byte("again")); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale put err = %v", err)
	}
}

// TestReplicatedStoreSurvivesSingleReplicaDown is the headline guarantee:
// with 1 of 3 replicas down, both reads and writes still serve.
func TestReplicatedStoreSurvivesSingleReplicaDown(t *testing.T) {
	r, reps := newReplicaSet(t)
	ctx := context.Background()
	if err := putFull(ctx, r, "svc", 1, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	for i := range reps {
		reps[i].down.Store(true)
		if err := putFull(ctx, r, "svc", uint64(i+2), []byte("newer")); err != nil {
			t.Fatalf("put with replica %d down: %v", i, err)
		}
		epoch, data, err := getFull(ctx, r, "svc")
		if err != nil || epoch != uint64(i+2) || string(data) != "newer" {
			t.Fatalf("get with replica %d down: %d %q %v", i, epoch, data, err)
		}
		if _, err := r.Keys(ctx); err != nil {
			t.Fatalf("keys with replica %d down: %v", i, err)
		}
		reps[i].down.Store(false)
		r.WaitRepairs()
	}
}

func TestReplicatedStoreLosesQuorum(t *testing.T) {
	r, reps := newReplicaSet(t)
	ctx := context.Background()
	reps[0].down.Store(true)
	reps[1].down.Store(true)
	if err := putFull(ctx, r, "svc", 1, []byte("v")); err == nil {
		t.Fatal("put succeeded without a quorum")
	} else if errors.Is(err, ErrStaleEpoch) || errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("quorum loss mapped to a typed verdict: %v", err)
	}
	if _, _, err := getFull(ctx, r, "svc"); err == nil {
		t.Fatal("get succeeded without a quorum")
	} else if errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("quorum loss reported as missing checkpoint: %v", err)
	}
	if r.Stats().QuorumFailures < 2 {
		t.Fatalf("stats = %+v, want quorum failures counted", r.Stats())
	}
}

// TestReplicatedStoreReadRepair: a replica that was down during writes is
// brought back to the newest epoch by the next read that touches the key.
func TestReplicatedStoreReadRepair(t *testing.T) {
	r, reps := newReplicaSet(t)
	ctx := context.Background()

	// Replica 2 misses two epochs.
	reps[2].down.Store(true)
	if err := putFull(ctx, r, "svc", 1, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := putFull(ctx, r, "svc", 2, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	reps[2].down.Store(false)
	if _, _, err := getFull(ctx, reps[2].inner, "svc"); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("lagging replica unexpectedly has state: %v", err)
	}

	// A quorum read repairs it in the background.
	epoch, data, err := getFull(ctx, r, "svc")
	if err != nil || epoch != 2 || string(data) != "v2" {
		t.Fatalf("got %d %q %v", epoch, data, err)
	}
	r.WaitRepairs()
	epoch, data, err = getFull(ctx, reps[2].inner, "svc")
	if err != nil || epoch != 2 || string(data) != "v2" {
		t.Fatalf("repaired replica holds %d %q %v, want epoch 2", epoch, data, err)
	}
	if r.Stats().Repairs == 0 {
		t.Fatalf("stats = %+v, want repairs counted", r.Stats())
	}
}

// TestReplicatedStoreNewestEpochWins: replicas diverged (one missed the
// last write); the read must return the newest epoch, never the stale
// majority-older value.
func TestReplicatedStoreNewestEpochWins(t *testing.T) {
	r, reps := newReplicaSet(t)
	ctx := context.Background()
	if err := putFull(ctx, r, "svc", 1, []byte("old")); err != nil {
		t.Fatal(err)
	}
	// Epoch 2 lands on replicas 0 and 1 only.
	reps[2].down.Store(true)
	if err := putFull(ctx, r, "svc", 2, []byte("new")); err != nil {
		t.Fatal(err)
	}
	reps[2].down.Store(false)
	epoch, data, err := getFull(ctx, r, "svc")
	if err != nil || epoch != 2 || string(data) != "new" {
		t.Fatalf("got %d %q %v, want the newest epoch", epoch, data, err)
	}
	r.WaitRepairs()
}

func TestReplicatedStoreDeleteAndKeys(t *testing.T) {
	r, _ := newReplicaSet(t)
	ctx := context.Background()
	for _, k := range []string{"b", "a"} {
		if err := putFull(ctx, r, k, 1, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := r.Keys(ctx)
	if err != nil || len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys = %v, %v", keys, err)
	}
	if err := r.Delete(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := getFull(ctx, r, "a"); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("deleted key err = %v", err)
	}
}

func TestReplicatedStoreNeedsReplicas(t *testing.T) {
	if _, err := NewReplicatedStore(nil); err == nil {
		t.Fatal("empty replica set accepted")
	}
	r, err := NewReplicatedStore([]Store{NewMemStore()})
	if err != nil {
		t.Fatal(err)
	}
	if r.Quorum() != 1 || r.Replicas() != 1 {
		t.Fatalf("quorum/replicas = %d/%d", r.Quorum(), r.Replicas())
	}
	r3, _ := NewReplicatedStore([]Store{NewMemStore(), NewMemStore(), NewMemStore()})
	if r3.Quorum() != 2 {
		t.Fatalf("3-replica quorum = %d, want 2", r3.Quorum())
	}
}
