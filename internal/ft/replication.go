package ft

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cdr"
	"repro/internal/naming"
	"repro/internal/orb"
)

// ReplicaGroup implements *active replication*, the fault-tolerance style
// of the systems the paper compares against (Piranha, IGOR): every call
// is multicast to all replicas, keeping their states in lockstep, and the
// first successful reply is the result. No checkpointing is needed — but
// every replica burns a host for the whole lifetime of the service, which
// is exactly the resource cost the paper's checkpoint/restart design
// avoids ("it is not desirable to use a large amount of the computational
// resources exclusively for availability purposes").
//
// The group is driven by one client goroutine at a time per call slot;
// concurrent calls from multiple goroutines are safe but their relative
// order across replicas is then unspecified (as with any active
// replication without a total-order multicast).
type ReplicaGroup struct {
	orb  *orb.ORB
	name naming.Name

	mu    sync.Mutex
	refs  []orb.ObjectRef
	stats ReplicaStats
}

// ReplicaStats are cumulative counters of a ReplicaGroup.
type ReplicaStats struct {
	// Calls counts logical invocations.
	Calls uint64
	// Fanout counts physical invocations (Calls × live replicas).
	Fanout uint64
	// Failures counts replica invocations that failed.
	Failures uint64
	// Dropped counts replicas removed from the group after failing.
	Dropped uint64
}

// NewReplicaGroup builds a group over all current offers of name.
func NewReplicaGroup(ctx context.Context, o *orb.ORB, name naming.Name, lister OfferLister) (*ReplicaGroup, error) {
	offers, err := lister.ListOffers(ctx, name)
	if err != nil {
		return nil, fmt.Errorf("ft: replica group %s: %w", name, err)
	}
	g := &ReplicaGroup{orb: o, name: name}
	for _, of := range offers {
		g.refs = append(g.refs, of.Ref)
	}
	if len(g.refs) == 0 {
		return nil, fmt.Errorf("ft: replica group %s: no offers", name)
	}
	return g, nil
}

// NewReplicaGroupFromRefs builds a group over explicit references.
func NewReplicaGroupFromRefs(o *orb.ORB, name naming.Name, refs []orb.ObjectRef) (*ReplicaGroup, error) {
	if len(refs) == 0 {
		return nil, fmt.Errorf("ft: replica group %s: no replicas", name)
	}
	g := &ReplicaGroup{orb: o, name: name}
	g.refs = append(g.refs, refs...)
	return g, nil
}

// Size returns the number of live replicas.
func (g *ReplicaGroup) Size() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.refs)
}

// Refs returns the live replica references.
func (g *ReplicaGroup) Refs() []orb.ObjectRef {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]orb.ObjectRef(nil), g.refs...)
}

// Stats returns a snapshot of the counters.
func (g *ReplicaGroup) Stats() ReplicaStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// replicaOutcome is one replica's result of a multicast round.
type replicaOutcome struct {
	ref orb.ObjectRef
	err error
}

// Invoke multicasts op to every replica and decodes the first successful
// reply. Replicas that fail are dropped from the group; the call fails
// only when every replica failed.
func (g *ReplicaGroup) Invoke(ctx context.Context, op string, writeArgs func(*cdr.Encoder), readReply func(*cdr.Decoder) error) error {
	req := g.NewRequest(ctx, op)
	if writeArgs != nil {
		writeArgs(req.Args())
	}
	req.Send()
	return req.GetResponse(readReply)
}

// ReplicaRequest is the DII-style deferred form of a multicast call.
type ReplicaRequest struct {
	group *ReplicaGroup
	ctx   context.Context
	op    string
	args  *cdr.Encoder
	reqs  []*orb.Request
	refs  []orb.ObjectRef
	sent  bool
}

// NewRequest creates a deferred multicast request. ctx bounds every
// replica's invocation (capture-at-construction, like orb.CreateRequest).
func (g *ReplicaGroup) NewRequest(ctx context.Context, op string) *ReplicaRequest {
	if ctx == nil {
		ctx = context.Background()
	}
	return &ReplicaRequest{group: g, ctx: ctx, op: op, args: cdr.NewEncoder(128)}
}

// Args exposes the argument encoder. Write all arguments before Send.
func (r *ReplicaRequest) Args() *cdr.Encoder { return r.args }

// Send dispatches the call to every live replica without blocking.
func (r *ReplicaRequest) Send() {
	if r.sent {
		return
	}
	r.sent = true
	r.refs = r.group.Refs()
	for _, ref := range r.refs {
		req := r.group.orb.CreateRequest(r.ctx, ref, r.op)
		req.Args().PutRaw(r.args.Bytes())
		req.Send()
		r.reqs = append(r.reqs, req)
	}
	r.group.mu.Lock()
	r.group.stats.Calls++
	r.group.stats.Fanout += uint64(len(r.reqs))
	r.group.mu.Unlock()
}

// GetResponse waits for all replicas (keeping survivors in lockstep),
// decodes the first successful reply, and drops replicas that failed with
// a communication error.
func (r *ReplicaRequest) GetResponse(readReply func(*cdr.Decoder) error) error {
	if !r.sent {
		return &orb.SystemException{Kind: orb.ExBadOperation, Detail: "GetResponse before Send"}
	}
	// Await every reply (lockstep); the first success is decoded below,
	// the others only awaited and discarded.
	outcomes := make([]replicaOutcome, len(r.reqs))
	for i, req := range r.reqs {
		outcomes[i] = replicaOutcome{ref: r.refs[i], err: req.GetResponse(nil)}
	}

	var firstErr error
	decoded := false
	var dead []orb.ObjectRef
	for i, out := range outcomes {
		if out.err == nil {
			if !decoded && readReply != nil {
				// Re-issue decoding against the captured reply: requests
				// cache their reply, so GetResponse with a reader is
				// idempotent for decoding purposes.
				if err := r.reqs[i].GetResponse(readReply); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					continue
				}
			}
			decoded = true
			continue
		}
		if firstErr == nil {
			firstErr = out.err
		}
		if orb.IsCommFailure(out.err) || orb.IsSystemException(out.err, orb.ExObjectNotExist) {
			dead = append(dead, out.ref)
		}
	}

	g := r.group
	g.mu.Lock()
	for _, d := range dead {
		for i, ref := range g.refs {
			if ref == d {
				g.refs = append(g.refs[:i], g.refs[i+1:]...)
				g.stats.Dropped++
				break
			}
		}
	}
	g.stats.Failures += uint64(len(r.reqs) - countSuccesses(outcomes))
	g.mu.Unlock()

	if decoded {
		return nil
	}
	if anySuccess(outcomes) {
		// Replies arrived but every decode failed.
		return firstErr
	}
	if orb.IsUserException(firstErr, "") {
		// Every replica raised the same application exception; surface it
		// as the call's outcome rather than as a replication failure.
		return firstErr
	}
	return fmt.Errorf("ft: all %d replicas of %s failed: %w", len(r.reqs), g.name, firstErr)
}

func countSuccesses(outs []replicaOutcome) int {
	n := 0
	for _, o := range outs {
		if o.err == nil {
			n++
		}
	}
	return n
}

func anySuccess(outs []replicaOutcome) bool { return countSuccesses(outs) > 0 }
