package ft

import (
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// TestProactiveMigrationZeroReplay is the tentpole's trace-level claim: a
// Degrading membership event moves the service's checkpointed state to a
// healthy host while the source still answers, so — unlike reactive
// crash recovery — the trace contains no "replay" spans at all.
func TestProactiveMigrationZeroReplay(t *testing.T) {
	ring := obs.NewRing(4096)
	old := obs.Default()
	obs.SetDefault(obs.NewTracer("ft-test", obs.WithRing(ring)))
	t.Cleanup(func() { obs.SetDefault(old) })

	w := newFTWorld(t)
	p := w.newProxy(Policy{CheckpointEvery: 1})
	if _, err := inc(p, 42); err != nil {
		t.Fatal(err)
	}

	ms := cluster.NewMembership(cluster.WithDegradeTrend(0.5), cluster.WithDegradeSamples(2))
	ms.ReportAlive("hostA", "test")
	ms.ReportAlive("hostB", "test")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mig := NewMigrator(ctx, p, MigrateOffers(w.naming), MigrateMembership(ms))

	// hostA's effective speed collapses: peak 2.0, then two samples at
	// 0.2 (trend 0.1 < 0.5) → Degrading → the watch goroutine moves off.
	ms.ReportLoad("hostA", 2.0, "winner")
	ms.ReportLoad("hostA", 0.2, "winner")
	ms.ReportLoad("hostA", 0.2, "winner")

	// Wait for the proactive span to land in the ring (it is added at
	// span End, strictly after the migration completed).
	deadline := time.Now().Add(5 * time.Second)
	for !hasSpan(ring, "ft.migrate.proactive") {
		if time.Now().After(deadline) {
			t.Fatal("proactive migration never happened")
		}
		time.Sleep(time.Millisecond)
	}
	if mig.Proactive() != 1 {
		t.Fatalf("proactive = %d", mig.Proactive())
	}

	// State travelled via checkpoint, not replay.
	w.ctrB.mu.Lock()
	got := w.ctrB.value
	w.ctrB.mu.Unlock()
	if got != 42 {
		t.Fatalf("hostB state = %d, want 42", got)
	}
	if v, err := inc(p, 1); err != nil || v != 43 {
		t.Fatalf("post-migration inc = %d, %v", v, err)
	}
	if s := p.Stats(); s.Replays != 0 || s.Recoveries != 0 {
		t.Fatalf("proactive move must not recover/replay: %+v", s)
	}

	// Trace-level assertion: a proactive span exists, and no replay span
	// shares its trace (in fact none exists at all — the source never
	// died, nothing was re-driven).
	var sawProactive bool
	for _, sp := range ring.Spans() {
		switch sp.Name() {
		case "ft.migrate.proactive":
			sawProactive = true
			if to, _ := sp.Attr("to_host"); to != "hostB" {
				t.Fatalf("proactive span to_host = %q", to)
			}
		case "replay":
			t.Fatalf("replay span in a proactive-migration trace: %+v", sp)
		}
	}
	if !sawProactive {
		t.Fatal("no ft.migrate.proactive span recorded")
	}

	cancel()
	select {
	case <-mig.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("watch goroutine did not exit")
	}
}

func hasSpan(ring *obs.Ring, name string) bool {
	for _, sp := range ring.Spans() {
		if sp.Name() == name {
			return true
		}
	}
	return false
}

// TestProactiveMigrationSkipsUnhealthyTargets pins target selection to
// the membership view: the only other offer's host is itself degrading,
// so MoveOff must decline rather than hop onto a sinking ship.
func TestProactiveMigrationSkipsUnhealthyTargets(t *testing.T) {
	w := newFTWorld(t)
	p := w.newProxy(Policy{CheckpointEvery: 1})
	if _, err := inc(p, 7); err != nil {
		t.Fatal(err)
	}
	ms := cluster.NewMembership(cluster.WithDegradeSamples(1))
	ms.ReportAlive("hostA", "t")
	ms.ReportLoad("hostB", 1.0, "t")
	ms.ReportLoad("hostB", 0.1, "t") // hostB degraded too

	mig := NewMigrator(context.Background(), p,
		MigrateOffers(w.naming), MigrateMembership(ms))
	host, err := mig.MoveOff(context.Background(), "hostA")
	if err != nil {
		t.Fatal(err)
	}
	if host != "" {
		t.Fatalf("moved to unhealthy host %q", host)
	}
	if mig.Migrations() != 0 {
		t.Fatalf("migrations = %d", mig.Migrations())
	}
}
