package ft

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/cdr"
)

// ErrNoCheckpoint is returned by Get for keys with no stored checkpoint.
var ErrNoCheckpoint = errors.New("ft: no checkpoint stored")

// ErrStaleEpoch is returned by Put when a newer checkpoint already exists.
var ErrStaleEpoch = errors.New("ft: stale checkpoint epoch")

// ErrCorruptCheckpoint is returned by Get when a stored checkpoint exists
// but cannot be decoded (torn write, media fault, truncation). It is
// distinct from ErrNoCheckpoint so recovery can tell "nothing was ever
// stored" from "something was stored and is now damaged" — the latter
// must never surface as a zero-epoch success.
var ErrCorruptCheckpoint = errors.New("ft: corrupt checkpoint")

// Store persists the latest checkpoint per key. Epochs order checkpoints
// of one key; a Put whose epoch is not newer than the stored one fails
// with ErrStaleEpoch, so late writes from a superseded proxy cannot roll
// state back. Puts may carry delta-encoded payloads (Checkpoint.Base):
// backends materialize them against the stored full state at Put time —
// rejecting mismatched bases with ErrBadBase — and Get always returns a
// materialized full snapshot, so restore paths never replay deltas.
// Every operation is bounded by ctx: remote implementations
// (StoreClient, ReplicatedStore) honour its deadline/cancellation, so a
// dead or partitioned store daemon cannot stall a recovery path past its
// deadline; local implementations only check it on entry.
// Implementations must be safe for concurrent use.
type Store interface {
	// Put stores cp as the checkpoint for key.
	Put(ctx context.Context, key string, cp Checkpoint) error
	// Get returns the newest checkpoint for key, materialized to a full
	// snapshot (Base 0, CodecRaw).
	Get(ctx context.Context, key string) (Checkpoint, error)
	// Delete removes key's checkpoint (idempotent).
	Delete(ctx context.Context, key string) error
	// Keys lists all keys with checkpoints, sorted.
	Keys(ctx context.Context) ([]string, error)
}

// MemStore is the in-memory store — the paper's prototype ("no real
// persistency like storing checkpoints on disk media has been
// implemented, yet").
type MemStore struct {
	mu   sync.RWMutex
	data map[string]memEntry
}

type memEntry struct {
	epoch uint64
	data  []byte // always materialized full state
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{data: make(map[string]memEntry)}
}

// Put implements Store.
func (s *MemStore) Put(ctx context.Context, key string, cp Checkpoint) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.data[key]
	if ok && cp.Epoch <= cur.epoch {
		return fmt.Errorf("%w: key %q epoch %d <= stored %d", ErrStaleEpoch, key, cp.Epoch, cur.epoch)
	}
	full, err := materialize(cp, cur.epoch, cur.data, ok)
	if err != nil {
		return fmt.Errorf("%w (key %q)", err, key)
	}
	stored := make([]byte, len(full))
	copy(stored, full)
	s.data[key] = memEntry{epoch: cp.Epoch, data: stored}
	return nil
}

// Get implements Store.
func (s *MemStore) Get(ctx context.Context, key string) (Checkpoint, error) {
	if err := ctx.Err(); err != nil {
		return Checkpoint{}, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.data[key]
	if !ok {
		return Checkpoint{}, fmt.Errorf("%w: key %q", ErrNoCheckpoint, key)
	}
	cp := make([]byte, len(e.data))
	copy(cp, e.data)
	return Full(e.epoch, cp), nil
}

// Delete implements Store.
func (s *MemStore) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.data, key)
	s.mu.Unlock()
	return nil
}

// Keys implements Store.
func (s *MemStore) Keys(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out, nil
}

// DiskStore persists checkpoints as one file per key under a directory —
// the real persistence the paper defers to future work. Writes are
// write-to-temp + fsync + rename + directory fsync, so neither a crash
// mid-write nor a host power loss right after the acknowledgement can
// lose or corrupt an acked checkpoint. Delta Puts are materialized before
// the durable write: each file always holds a full snapshot, so restore
// after a crash never depends on a chain of delta files.
type DiskStore struct {
	dir string
	mu  sync.Mutex
}

// NewDiskStore opens (creating if needed) a disk-backed store in dir.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ft: disk store: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// path hex-encodes the key so arbitrary service names map to safe file
// names.
func (s *DiskStore) path(key string) string {
	return filepath.Join(s.dir, hex.EncodeToString([]byte(key))+".ckpt")
}

func encodeCheckpointFile(epoch uint64, data []byte) []byte {
	e := cdr.NewEncoder(16 + len(data))
	e.PutUint64(epoch)
	e.PutBytes(data)
	return e.Bytes()
}

func decodeCheckpointFile(raw []byte) (uint64, []byte, error) {
	d := cdr.NewDecoder(raw)
	epoch := d.GetUint64()
	data := d.GetBytes()
	if err := d.Err(); err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrCorruptCheckpoint, err)
	}
	return epoch, data, nil
}

// writeDurable writes content to path via a temp file, fsyncing both the
// file and its directory, so the rename — and therefore the checkpoint —
// survives a host crash.
func writeDurable(path string, content []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(content); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Durability of the rename itself requires the directory entry to be
	// on stable storage.
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Put implements Store.
func (s *DiskStore) Put(ctx context.Context, key string, cp Checkpoint) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.path(key)
	var curEpoch uint64
	var curData []byte
	haveCur := false
	if raw, err := os.ReadFile(p); err == nil {
		if e, d, derr := decodeCheckpointFile(raw); derr == nil {
			curEpoch, curData, haveCur = e, d, true
		}
	}
	if haveCur && cp.Epoch <= curEpoch {
		return fmt.Errorf("%w: key %q epoch %d <= stored %d", ErrStaleEpoch, key, cp.Epoch, curEpoch)
	}
	full, err := materialize(cp, curEpoch, curData, haveCur)
	if err != nil {
		return fmt.Errorf("%w (key %q)", err, key)
	}
	if err := writeDurable(p, encodeCheckpointFile(cp.Epoch, full)); err != nil {
		return fmt.Errorf("ft: commit checkpoint: %w", err)
	}
	return nil
}

// Get implements Store.
func (s *DiskStore) Get(ctx context.Context, key string) (Checkpoint, error) {
	if err := ctx.Err(); err != nil {
		return Checkpoint{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return Checkpoint{}, fmt.Errorf("%w: key %q", ErrNoCheckpoint, key)
		}
		return Checkpoint{}, fmt.Errorf("ft: read checkpoint: %w", err)
	}
	epoch, data, err := decodeCheckpointFile(raw)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("%w (key %q)", err, key)
	}
	return Full(epoch, data), nil
}

// Delete implements Store.
func (s *DiskStore) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	err := os.Remove(s.path(key))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("ft: delete checkpoint: %w", err)
	}
	return nil
}

// Keys implements Store.
func (s *DiskStore) Keys(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ft: list checkpoints: %w", err)
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) != ".ckpt" {
			continue
		}
		raw, err := hex.DecodeString(name[:len(name)-len(".ckpt")])
		if err != nil {
			continue
		}
		out = append(out, string(raw))
	}
	sort.Strings(out)
	return out, nil
}
