// Package core implements the paper's primary contribution: load
// distribution integrated transparently into the CORBA naming service.
//
// Servers on each workstation of a NOW register their object references as
// *offers* under one name. Clients resolve that name exactly as they would
// against an unmodified naming service — no client code changes — but the
// service's resolve consults the Winner resource management system and
// returns the offer on the host with the currently best performance
// (Figure 1 of the paper). The plain baseline and the Winner-enhanced
// service differ only in the Selector plugged into the same servant,
// mirroring the paper's claim that the extension is interface-compatible
// and reusable with any ORB.
package core

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/naming"
	"repro/internal/orb"
	"repro/internal/winner"
)

// HostRanker answers "which of these hosts is currently best?". The
// in-process winner.Manager satisfies it directly; wrap the remote
// winner.Client in a ClientRanker so the naming service can colocate with
// the system manager or consult it over the ORB.
type HostRanker interface {
	BestOf(candidates []string) (string, error)
}

var (
	_ HostRanker = (*winner.Manager)(nil)
	_ HostRanker = ClientRanker{}
)

// ClientRanker adapts the remote winner.Client to HostRanker, bounding
// each ranking query so a slow system manager degrades resolve latency by
// at most Timeout instead of stalling it (the selector falls back to
// round-robin on error).
type ClientRanker struct {
	C *winner.Client
	// Timeout bounds one ranking query. Zero means 1s.
	Timeout time.Duration
}

// BestOf implements HostRanker.
func (r ClientRanker) BestOf(candidates []string) (string, error) {
	timeout := r.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return r.C.BestOf(ctx, candidates)
}

// WinnerSelector is the load-distribution policy: among a name's offers it
// picks the one on the host Winner ranks best. Offers on hosts unknown to
// Winner are still eligible as a fallback — the paper's requirement that
// the enhanced service is never worse than the plain one means resolve
// must keep working when load data is missing or the system manager is
// unreachable.
//
// The selector degrades gracefully when the manager itself dies: a
// circuit breaker guards the ranker, so after a transport-class ranking
// failure (COMM_FAILURE, timeout) resolves fall back to round-robin
// immediately instead of paying a connect timeout each, probing the
// manager again only after the breaker's cooldown. Every fallback is
// counted (exported as winner_fallback_total) and tagged with its reason
// on the resolve trace.
type WinnerSelector struct {
	ranker HostRanker
	// Fallback handles offers when Winner cannot rank (no data, system
	// manager down). Defaults to registration-order round-robin, i.e.
	// plain-naming behaviour.
	fallback naming.Selector
	// breaker guards the ranker against an unreachable system manager.
	breaker *orb.Breaker
	// fallbacks counts resolves that degraded to the fallback selector.
	fallbacks atomic.Uint64
	// degraded, set by the ORB's adaptive-degradation controller, routes
	// every resolve straight to the cheap fallback — under overload the
	// ranking round trip to the system manager is the first cost to shed.
	degraded atomic.Bool
}

// NewWinnerSelector builds a selector backed by ranker. fallback may be
// nil for the round-robin default.
func NewWinnerSelector(ranker HostRanker, fallback naming.Selector) *WinnerSelector {
	if fallback == nil {
		fallback = naming.RoundRobinSelector()
	}
	return &WinnerSelector{
		ranker:   ranker,
		fallback: fallback,
		breaker:  orb.NewBreaker(orb.BreakerOptions{Threshold: 1, Cooldown: 2 * time.Second}),
	}
}

// ConfigureBreaker replaces the breaker guarding the ranker (tests and
// daemons with non-default cooldowns). Call before serving resolves.
func (s *WinnerSelector) ConfigureBreaker(opts orb.BreakerOptions) {
	s.breaker = orb.NewBreaker(opts)
}

// Fallbacks returns how many resolves degraded to the fallback selector —
// the nameserver exports it as winner_fallback_total.
func (s *WinnerSelector) Fallbacks() uint64 { return s.fallbacks.Load() }

// SetDegraded forces (or lifts) degraded selection: while set, resolves
// skip the ranker entirely and use the cheap fallback policy, tagged
// ReasonFallbackDegraded. Normally driven through DegradeHook.
func (s *WinnerSelector) SetDegraded(on bool) { s.degraded.Store(on) }

// Degraded reports whether degraded selection is in force.
func (s *WinnerSelector) Degraded() bool { return s.degraded.Load() }

// DegradeHook adapts the selector to the ORB's degradation controller:
// register the returned func with orb.ORB.OnDegrade and the selector
// switches to its cheap fallback in any mode below normal.
func (s *WinnerSelector) DegradeHook() func(orb.DegradeMode) {
	return func(mode orb.DegradeMode) { s.SetDegraded(mode != orb.ModeNormal) }
}

// Select implements naming.Selector.
func (s *WinnerSelector) Select(name naming.Name, offers []naming.Offer) (naming.Offer, error) {
	o, _, err := s.SelectExplain(name, offers)
	return o, err
}

// rankerUnreachable classifies a ranking error as transport-class: the
// manager process (not its answer) failed. Only these trip the breaker —
// an authoritative NoHosts/AllStale answer proves the manager is alive.
func rankerUnreachable(err error) bool {
	return orb.IsCommFailure(err) ||
		orb.IsSystemException(err, orb.ExTimeout) ||
		orb.IsSystemException(err, orb.ExTransient) ||
		orb.IsSystemException(err, orb.ExObjectNotExist) ||
		errors.Is(err, context.DeadlineExceeded)
}

// SelectExplain implements naming.ExplainingSelector: the decision
// reason records whether Winner ranked the host or a fallback applied,
// so resolve traces show why a host won.
func (s *WinnerSelector) SelectExplain(name naming.Name, offers []naming.Offer) (naming.Offer, naming.Decision, error) {
	hosts := make([]string, 0, len(offers))
	seen := make(map[string]bool, len(offers))
	for _, o := range offers {
		if o.Host != "" && !seen[o.Host] {
			seen[o.Host] = true
			hosts = append(hosts, o.Host)
		}
	}
	if len(hosts) == 0 {
		return s.fallbackExplain(name, offers, naming.ReasonFallbackNoHosts)
	}
	if s.degraded.Load() {
		// Degraded mode: the runtime is shedding load, and the ranking
		// round trip is optional work — round-robin is never worse than
		// plain naming.
		return s.fallbackExplain(name, offers, naming.ReasonFallbackDegraded)
	}
	if !s.breaker.Allow() {
		// The manager is known-dead and the cooldown hasn't elapsed:
		// degrade without paying another connect timeout.
		return s.fallbackExplain(name, offers, naming.ReasonFallbackWinnerDown)
	}
	best, err := s.ranker.BestOf(hosts)
	if err != nil {
		// No ranking available: degrade to plain behaviour rather than
		// failing the resolve.
		if rankerUnreachable(err) {
			s.breaker.Failure()
			return s.fallbackExplain(name, offers, naming.ReasonFallbackWinnerDown)
		}
		s.breaker.Success()
		if winner.IsAllStale(err) {
			return s.fallbackExplain(name, offers, naming.ReasonFallbackStale)
		}
		return s.fallbackExplain(name, offers, naming.ReasonFallbackRankerError)
	}
	s.breaker.Success()
	for _, o := range offers {
		if o.Host == best {
			return o, naming.Decision{Reason: naming.ReasonWinnerBest}, nil
		}
	}
	return s.fallbackExplain(name, offers, naming.ReasonFallbackHostUnknown)
}

// fallbackExplain runs the fallback selector and tags the decision.
func (s *WinnerSelector) fallbackExplain(name naming.Name, offers []naming.Offer, reason string) (naming.Offer, naming.Decision, error) {
	s.fallbacks.Add(1)
	o, err := s.fallback.Select(name, offers)
	return o, naming.Decision{Reason: reason}, err
}

// NewLoadNamingServant assembles the paper's enhanced naming service: a
// standard naming servant whose group resolution is driven by Winner.
func NewLoadNamingServant(reg *naming.Registry, ranker HostRanker) *naming.Servant {
	return naming.NewServant(reg, NewWinnerSelector(ranker, nil))
}

// NewPlainNamingServant assembles the unmodified baseline: the same
// servant with registration-order round-robin resolution.
func NewPlainNamingServant(reg *naming.Registry) *naming.Servant {
	return naming.NewServant(reg, naming.RoundRobinSelector())
}

// Resolver is the client-side dependency of the fault-tolerance layer: a
// way to obtain a (fresh) reference for a service name. naming.Client
// implements it; tests may substitute local resolvers.
type Resolver interface {
	Resolve(ctx context.Context, name naming.Name) (orb.ObjectRef, error)
}

var _ Resolver = (*naming.Client)(nil)
