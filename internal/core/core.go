// Package core implements the paper's primary contribution: load
// distribution integrated transparently into the CORBA naming service.
//
// Servers on each workstation of a NOW register their object references as
// *offers* under one name. Clients resolve that name exactly as they would
// against an unmodified naming service — no client code changes — but the
// service's resolve consults the Winner resource management system and
// returns the offer on the host with the currently best performance
// (Figure 1 of the paper). The plain baseline and the Winner-enhanced
// service differ only in the Selector plugged into the same servant,
// mirroring the paper's claim that the extension is interface-compatible
// and reusable with any ORB.
package core

import (
	"context"
	"time"

	"repro/internal/naming"
	"repro/internal/orb"
	"repro/internal/winner"
)

// HostRanker answers "which of these hosts is currently best?". The
// in-process winner.Manager satisfies it directly; wrap the remote
// winner.Client in a ClientRanker so the naming service can colocate with
// the system manager or consult it over the ORB.
type HostRanker interface {
	BestOf(candidates []string) (string, error)
}

var (
	_ HostRanker = (*winner.Manager)(nil)
	_ HostRanker = ClientRanker{}
)

// ClientRanker adapts the remote winner.Client to HostRanker, bounding
// each ranking query so a slow system manager degrades resolve latency by
// at most Timeout instead of stalling it (the selector falls back to
// round-robin on error).
type ClientRanker struct {
	C *winner.Client
	// Timeout bounds one ranking query. Zero means 1s.
	Timeout time.Duration
}

// BestOf implements HostRanker.
func (r ClientRanker) BestOf(candidates []string) (string, error) {
	timeout := r.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return r.C.BestOf(ctx, candidates)
}

// WinnerSelector is the load-distribution policy: among a name's offers it
// picks the one on the host Winner ranks best. Offers on hosts unknown to
// Winner are still eligible as a fallback — the paper's requirement that
// the enhanced service is never worse than the plain one means resolve
// must keep working when load data is missing or the system manager is
// unreachable.
type WinnerSelector struct {
	ranker HostRanker
	// Fallback handles offers when Winner cannot rank (no data, system
	// manager down). Defaults to registration-order round-robin, i.e.
	// plain-naming behaviour.
	fallback naming.Selector
}

// NewWinnerSelector builds a selector backed by ranker. fallback may be
// nil for the round-robin default.
func NewWinnerSelector(ranker HostRanker, fallback naming.Selector) *WinnerSelector {
	if fallback == nil {
		fallback = naming.RoundRobinSelector()
	}
	return &WinnerSelector{ranker: ranker, fallback: fallback}
}

// Select implements naming.Selector.
func (s *WinnerSelector) Select(name naming.Name, offers []naming.Offer) (naming.Offer, error) {
	o, _, err := s.SelectExplain(name, offers)
	return o, err
}

// SelectExplain implements naming.ExplainingSelector: the decision
// reason records whether Winner ranked the host or a fallback applied,
// so resolve traces show why a host won.
func (s *WinnerSelector) SelectExplain(name naming.Name, offers []naming.Offer) (naming.Offer, naming.Decision, error) {
	hosts := make([]string, 0, len(offers))
	seen := make(map[string]bool, len(offers))
	for _, o := range offers {
		if o.Host != "" && !seen[o.Host] {
			seen[o.Host] = true
			hosts = append(hosts, o.Host)
		}
	}
	if len(hosts) == 0 {
		return s.fallbackExplain(name, offers, "fallback-no-hosts")
	}
	best, err := s.ranker.BestOf(hosts)
	if err != nil {
		// No ranking available: degrade to plain behaviour rather than
		// failing the resolve.
		return s.fallbackExplain(name, offers, "fallback-ranker-error")
	}
	for _, o := range offers {
		if o.Host == best {
			return o, naming.Decision{Reason: "winner-best"}, nil
		}
	}
	return s.fallbackExplain(name, offers, "fallback-host-unknown")
}

// fallbackExplain runs the fallback selector and tags the decision.
func (s *WinnerSelector) fallbackExplain(name naming.Name, offers []naming.Offer, reason string) (naming.Offer, naming.Decision, error) {
	o, err := s.fallback.Select(name, offers)
	return o, naming.Decision{Reason: reason}, err
}

// NewLoadNamingServant assembles the paper's enhanced naming service: a
// standard naming servant whose group resolution is driven by Winner.
func NewLoadNamingServant(reg *naming.Registry, ranker HostRanker) *naming.Servant {
	return naming.NewServant(reg, NewWinnerSelector(ranker, nil))
}

// NewPlainNamingServant assembles the unmodified baseline: the same
// servant with registration-order round-robin resolution.
func NewPlainNamingServant(reg *naming.Registry) *naming.Servant {
	return naming.NewServant(reg, naming.RoundRobinSelector())
}

// Resolver is the client-side dependency of the fault-tolerance layer: a
// way to obtain a (fresh) reference for a service name. naming.Client
// implements it; tests may substitute local resolvers.
type Resolver interface {
	Resolve(ctx context.Context, name naming.Name) (orb.ObjectRef, error)
}

var _ Resolver = (*naming.Client)(nil)
