package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/naming"
	"repro/internal/orb"
	"repro/internal/winner"
)

func offer(i int, host string) naming.Offer {
	return naming.Offer{
		Ref:  orb.ObjectRef{TypeID: "T", Addr: fmt.Sprintf("127.0.0.1:%d", 1000+i), Key: "w"},
		Host: host,
	}
}

func TestWinnerSelectorPicksBestHost(t *testing.T) {
	m := winner.NewManager()
	m.Report(winner.LoadSample{Host: "busy", Speed: 1, RunQueue: 2, Seq: 1})
	m.Report(winner.LoadSample{Host: "idle", Speed: 1, RunQueue: 0, Seq: 1})
	sel := NewWinnerSelector(m, nil)
	offers := []naming.Offer{offer(0, "busy"), offer(1, "idle")}
	got, err := sel.Select(naming.NewName("w"), offers)
	if err != nil {
		t.Fatal(err)
	}
	if got.Host != "idle" {
		t.Fatalf("selected %q", got.Host)
	}
}

func TestWinnerSelectorSpreadsPlacements(t *testing.T) {
	m := winner.NewManager()
	for i := 0; i < 4; i++ {
		m.Report(winner.LoadSample{Host: fmt.Sprintf("h%d", i), Speed: 1, Seq: 1})
	}
	sel := NewWinnerSelector(m, nil)
	offers := make([]naming.Offer, 4)
	for i := range offers {
		offers[i] = offer(i, fmt.Sprintf("h%d", i))
	}
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		got, err := sel.Select(naming.NewName("w"), offers)
		if err != nil {
			t.Fatal(err)
		}
		seen[got.Host] = true
	}
	if len(seen) != 4 {
		t.Fatalf("placements dog-piled: %v", seen)
	}
}

func TestWinnerSelectorFallsBackWithoutLoadData(t *testing.T) {
	m := winner.NewManager() // knows no hosts
	sel := NewWinnerSelector(m, nil)
	offers := []naming.Offer{offer(0, "a"), offer(1, "b")}
	got1, err := sel.Select(naming.NewName("w"), offers)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := sel.Select(naming.NewName("w"), offers)
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin fallback: two resolves hit two different offers.
	if got1.Host == got2.Host {
		t.Fatalf("fallback not round-robin: %q %q", got1.Host, got2.Host)
	}
}

func TestWinnerSelectorFallsBackOnHostlessOffers(t *testing.T) {
	m := winner.NewManager()
	m.Report(winner.LoadSample{Host: "known", Speed: 1, Seq: 1})
	sel := NewWinnerSelector(m, nil)
	offers := []naming.Offer{offer(0, ""), offer(1, "")}
	if _, err := sel.Select(naming.NewName("w"), offers); err != nil {
		t.Fatal(err)
	}
}

type failingRanker struct{}

func (failingRanker) BestOf([]string) (string, error) { return "", errors.New("down") }

func TestWinnerSelectorSurvivesRankerFailure(t *testing.T) {
	sel := NewWinnerSelector(failingRanker{}, nil)
	offers := []naming.Offer{offer(0, "a"), offer(1, "b")}
	got, err := sel.Select(naming.NewName("w"), offers)
	if err != nil {
		t.Fatal(err)
	}
	if got.Host == "" {
		t.Fatal("no offer selected")
	}
}

type wrongHostRanker struct{}

func (wrongHostRanker) BestOf([]string) (string, error) { return "not-an-offer-host", nil }

func TestWinnerSelectorFallsBackOnForeignBestHost(t *testing.T) {
	sel := NewWinnerSelector(wrongHostRanker{}, nil)
	offers := []naming.Offer{offer(0, "a")}
	got, err := sel.Select(naming.NewName("w"), offers)
	if err != nil || got.Host != "a" {
		t.Fatalf("got %+v, %v", got, err)
	}
}

func startEnv(t *testing.T, useWinner bool, hosts int) *Environment {
	t.Helper()
	env, err := Start(EnvironmentOptions{Hosts: hosts, UseWinner: useWinner})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	return env
}

func TestEnvironmentWinnerResolvesLeastLoaded(t *testing.T) {
	env := startEnv(t, true, 4)
	// Register one offer per host under one name.
	name := naming.NewName("workers")
	for i, h := range env.Cluster.Hosts() {
		ref := orb.ObjectRef{TypeID: "T", Addr: fmt.Sprintf("127.0.0.1:%d", 2000+i), Key: "w"}
		if err := env.Naming.BindOffer(context.Background(), name, ref, h.Name()); err != nil {
			t.Fatal(err)
		}
	}
	// Load the first two hosts, refresh samples.
	env.Cluster.ApplyBackgroundLoad(2, 1)
	env.SampleAll()

	got, err := env.Naming.Resolve(context.Background(), name)
	if err != nil {
		t.Fatal(err)
	}
	// Best hosts are node02/node03 (unloaded); offer addr ports 2002/2003.
	if got.Addr != "127.0.0.1:2002" && got.Addr != "127.0.0.1:2003" {
		t.Fatalf("resolved %v, want an unloaded host's offer", got)
	}
}

func TestEnvironmentPlainIgnoresLoad(t *testing.T) {
	env := startEnv(t, false, 4)
	name := naming.NewName("workers")
	for i, h := range env.Cluster.Hosts() {
		ref := orb.ObjectRef{TypeID: "T", Addr: fmt.Sprintf("127.0.0.1:%d", 2000+i), Key: "w"}
		if err := env.Naming.BindOffer(context.Background(), name, ref, h.Name()); err != nil {
			t.Fatal(err)
		}
	}
	env.Cluster.ApplyBackgroundLoad(2, 1)
	env.SampleAll()

	// Plain naming round-robins from the head: first resolve returns the
	// first-registered (loaded) host.
	got, err := env.Naming.Resolve(context.Background(), name)
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != "127.0.0.1:2000" {
		t.Fatalf("resolved %v, want the first offer", got)
	}
}

func TestEnvironmentSamplingReflectsJobs(t *testing.T) {
	env := startEnv(t, true, 2)
	h := env.Cluster.Hosts()[1]
	h.BeginJob()
	env.SampleAll()
	info, err := env.Winner.HostInfo(context.Background(), h.Name())
	if err != nil {
		t.Fatal(err)
	}
	if info.Sample.RunQueue != 1 {
		t.Fatalf("runq = %v", info.Sample.RunQueue)
	}
	h.EndJob()
}

func TestEnvironmentNewNode(t *testing.T) {
	env := startEnv(t, true, 2)
	n, err := env.NewNode("node01")
	if err != nil {
		t.Fatal(err)
	}
	nc := env.NamingClientFor(n)
	if err := nc.Bind(context.Background(), naming.NewName("x"), orb.ObjectRef{TypeID: "T", Addr: "a:1", Key: "k"}); err != nil {
		t.Fatal(err)
	}
	got, err := env.Naming.Resolve(context.Background(), naming.NewName("x"))
	if err != nil || got.Key != "k" {
		t.Fatalf("resolve = %v, %v", got, err)
	}
	if _, err := env.NewNode("ghost"); err == nil {
		t.Fatal("unknown host accepted")
	}
}

func TestEnvironmentLatencyPropagatesToNodes(t *testing.T) {
	env, err := Start(EnvironmentOptions{Hosts: 2, UseWinner: true, Latency: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	n, err := env.NewNode("node01")
	if err != nil {
		t.Fatal(err)
	}
	// A resolve from the node crosses two latency-charged messages.
	nc := env.NamingClientFor(n)
	if err := nc.Bind(context.Background(), naming.NewName("x"), orb.ObjectRef{TypeID: "T", Addr: "a:1", Key: "k"}); err != nil {
		t.Fatal(err)
	}
	if got := n.Host.Clock().Now(); got < 1.0-1e-9 {
		t.Fatalf("node clock = %v, want >= 1.0 (two 0.5s hops)", got)
	}
}

func TestEnvironmentDefaultsToTenHosts(t *testing.T) {
	env, err := Start(EnvironmentOptions{Hosts: -1, UseWinner: true})
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	defer env.Close()
	if env.Cluster.Size() != 10 {
		t.Fatalf("hosts = %d, want the paper's 10", env.Cluster.Size())
	}
}
