package core

import (
	"testing"
	"time"

	"repro/internal/naming"
	"repro/internal/orb"
	"repro/internal/winner"
)

// countingRanker scripts ranking outcomes and counts invocations.
type countingRanker struct {
	calls int
	next  func() (string, error)
}

func (r *countingRanker) BestOf([]string) (string, error) {
	r.calls++
	return r.next()
}

func degradeOffers() []naming.Offer {
	return []naming.Offer{
		{Ref: orb.ObjectRef{Addr: "a:1", Key: "a"}, Host: "a"},
		{Ref: orb.ObjectRef{Addr: "b:1", Key: "b"}, Host: "b"},
	}
}

func TestWinnerSelectorBreakerOnUnreachableManager(t *testing.T) {
	clk := time.Unix(100, 0)
	ranker := &countingRanker{next: func() (string, error) {
		return "", &orb.SystemException{Kind: orb.ExCommFailure, Detail: "manager down"}
	}}
	s := NewWinnerSelector(ranker, nil)
	s.ConfigureBreaker(orb.BreakerOptions{Threshold: 1, Cooldown: time.Second, Clock: func() time.Time { return clk }})
	name := naming.NewName("svc")

	// First resolve pays the transport error and trips the breaker.
	_, dec, err := s.SelectExplain(name, degradeOffers())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Reason != naming.ReasonFallbackWinnerDown {
		t.Fatalf("reason = %q, want %q", dec.Reason, naming.ReasonFallbackWinnerDown)
	}
	if ranker.calls != 1 {
		t.Fatalf("ranker calls = %d, want 1", ranker.calls)
	}

	// While the breaker is open, resolves degrade WITHOUT consulting the
	// ranker — no connect timeout per resolve.
	for i := 0; i < 3; i++ {
		_, dec, err = s.SelectExplain(name, degradeOffers())
		if err != nil || dec.Reason != naming.ReasonFallbackWinnerDown {
			t.Fatalf("open-breaker resolve %d: reason=%q err=%v", i, dec.Reason, err)
		}
	}
	if ranker.calls != 1 {
		t.Fatalf("ranker consulted through an open breaker: calls = %d", ranker.calls)
	}
	if s.Fallbacks() != 4 {
		t.Fatalf("Fallbacks = %d, want 4", s.Fallbacks())
	}

	// Manager comes back; after the cooldown the half-open probe restores
	// winner-best selection.
	ranker.next = func() (string, error) { return "b", nil }
	clk = clk.Add(time.Second)
	got, dec, err := s.SelectExplain(name, degradeOffers())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Reason != naming.ReasonWinnerBest || got.Host != "b" {
		t.Fatalf("after recovery: host=%q reason=%q", got.Host, dec.Reason)
	}
}

func TestWinnerSelectorAllStaleFallsBackWithoutTripping(t *testing.T) {
	ranker := &countingRanker{next: func() (string, error) { return "", winner.ErrAllStale }}
	s := NewWinnerSelector(ranker, nil)
	name := naming.NewName("svc")

	for i := 0; i < 2; i++ {
		_, dec, err := s.SelectExplain(name, degradeOffers())
		if err != nil {
			t.Fatal(err)
		}
		if dec.Reason != naming.ReasonFallbackStale {
			t.Fatalf("reason = %q, want %q", dec.Reason, naming.ReasonFallbackStale)
		}
	}
	// Authoritative answers keep the breaker closed: the ranker was
	// consulted both times.
	if ranker.calls != 2 {
		t.Fatalf("ranker calls = %d, want 2 (breaker must stay closed)", ranker.calls)
	}
	if s.Fallbacks() != 2 {
		t.Fatalf("Fallbacks = %d, want 2", s.Fallbacks())
	}
}

func TestWinnerSelectorAllStaleOverTheWire(t *testing.T) {
	// The all-stale condition must survive the ORB hop: manager → user
	// exception → client → IsAllStale.
	o := orb.New(orb.Options{Name: "stale-test"})
	t.Cleanup(o.Shutdown)
	a, err := o.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mgr := winner.NewManager()
	now := time.Unix(500, 0)
	mgr.SetMaxSampleAge(time.Second, func() time.Time { return now })
	mgr.Report(winner.LoadSample{Host: "a", Speed: 1, Seq: 1})
	now = now.Add(time.Minute)
	ref := a.Activate(winner.DefaultKey, winner.NewServant(mgr))

	c := winner.NewClient(o, ref)
	_, err = c.BestOf(t.Context(), []string{"a"})
	if !winner.IsAllStale(err) {
		t.Fatalf("remote all-stale err = %v, want IsAllStale", err)
	}

	s := NewWinnerSelector(ClientRanker{C: c}, nil)
	_, dec, err := s.SelectExplain(naming.NewName("svc"), []naming.Offer{
		{Ref: orb.ObjectRef{Addr: "a:1", Key: "x"}, Host: "a"},
		{Ref: orb.ObjectRef{Addr: "a:2", Key: "y"}, Host: "a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Reason != naming.ReasonFallbackStale {
		t.Fatalf("reason = %q, want %q", dec.Reason, naming.ReasonFallbackStale)
	}
}
