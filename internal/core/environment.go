package core

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/naming"
	"repro/internal/winner"
)

// Environment is a fully wired simulated NOW runtime: the cluster, one
// service node hosting the (plain or Winner-enhanced) naming service and
// the Winner system manager, and per-host Winner node managers. It is the
// setup Figure 1 of the paper draws, ready for experiments and examples.
type Environment struct {
	Cluster *cluster.Cluster
	// ServiceHost is the workstation running the shared services.
	ServiceHost *cluster.Host
	// ServiceNode is the ORB process hosting naming + system manager.
	ServiceNode *cluster.Node
	// Naming is a client stub bound to the naming service.
	Naming *naming.Client
	// Winner is a client stub bound to the system manager.
	Winner *winner.Client
	// Manager is the system manager core (for in-process feeding).
	Manager *winner.Manager
	// NodeManagers are the per-host Winner daemons, in host order.
	NodeManagers []*winner.NodeManager

	latency float64
	nodes   []*cluster.Node
}

// EnvironmentOptions configure Start.
type EnvironmentOptions struct {
	// Hosts is the number of workstations (default 10, the paper's NOW).
	Hosts int
	// UseWinner selects the enhanced naming service; false gives the
	// plain round-robin baseline.
	UseWinner bool
	// Latency is the virtual one-way network latency in seconds.
	Latency float64
	// SamplePeriod is the real-time node-manager period. Zero disables
	// the periodic loop; experiments then drive sampling explicitly via
	// SampleAll, keeping virtual-time runs deterministic.
	SamplePeriod time.Duration
}

// Start boots an environment on a fresh uniform cluster.
func Start(opts EnvironmentOptions) (*Environment, error) {
	if opts.Hosts <= 0 {
		opts.Hosts = 10
	}
	c := cluster.NewUniform(opts.Hosts, "node")
	return StartOn(c, opts)
}

// StartOn boots an environment on an existing cluster. The first host
// doubles as the service host (running naming + system manager), matching
// the paper's deployment where services share the NOW with the workers.
func StartOn(c *cluster.Cluster, opts EnvironmentOptions) (*Environment, error) {
	hosts := c.Hosts()
	if len(hosts) == 0 {
		return nil, fmt.Errorf("core: empty cluster")
	}
	serviceHost := hosts[0]
	serviceNode, err := cluster.NewNode(serviceHost, cluster.NodeOptions{Latency: opts.Latency})
	if err != nil {
		return nil, err
	}

	mgr := winner.NewManager()
	winnerRef := serviceNode.Adapter.Activate(winner.DefaultKey, winner.NewServant(mgr))

	reg := naming.NewRegistry()
	var servant *naming.Servant
	if opts.UseWinner {
		servant = NewLoadNamingServant(reg, mgr)
	} else {
		servant = NewPlainNamingServant(reg)
	}
	namingRef := serviceNode.Adapter.Activate(naming.DefaultKey, servant)

	env := &Environment{
		Cluster:     c,
		ServiceHost: serviceHost,
		ServiceNode: serviceNode,
		Naming:      naming.NewClient(serviceNode.ORB, namingRef),
		Winner:      winner.NewClient(serviceNode.ORB, winnerRef),
		Manager:     mgr,
		latency:     opts.Latency,
	}

	for _, h := range hosts {
		nm := winner.NewNodeManager(h, winner.ManagerReporter{M: mgr}, opts.SamplePeriod)
		env.NodeManagers = append(env.NodeManagers, nm)
		if opts.SamplePeriod > 0 {
			nm.Start()
		} else if err := nm.ReportOnce(); err != nil {
			env.Close()
			return nil, err
		}
	}
	return env, nil
}

// SampleAll makes every node manager report once immediately (the
// deterministic stand-in for the periodic measurement loop in virtual-time
// experiments).
func (e *Environment) SampleAll() {
	for _, nm := range e.NodeManagers {
		_ = nm.ReportOnce()
	}
}

// NewNode boots an application process on the named host, wired into the
// environment's virtual-time fabric.
func (e *Environment) NewNode(host string) (*cluster.Node, error) {
	h := e.Cluster.Host(host)
	if h == nil {
		return nil, fmt.Errorf("core: unknown host %q", host)
	}
	n, err := cluster.NewNode(h, cluster.NodeOptions{Latency: e.latency})
	if err != nil {
		return nil, err
	}
	e.nodes = append(e.nodes, n)
	return n, nil
}

// NamingClientFor returns a naming stub that calls the environment's
// naming service through the given node's ORB (so the node's clock merges
// with the service's on every resolve).
func (e *Environment) NamingClientFor(n *cluster.Node) *naming.Client {
	return naming.NewClient(n.ORB, e.Naming.Ref())
}

// Close stops node managers and shuts down every node it created.
func (e *Environment) Close() {
	for _, nm := range e.NodeManagers {
		nm.Stop()
	}
	for _, n := range e.nodes {
		n.Close()
	}
	e.ServiceNode.Close()
}
