package idl

import "fmt"

// BasicKind enumerates the supported primitive IDL types.
type BasicKind int

// Primitive kinds.
const (
	KindVoid BasicKind = iota
	KindBoolean
	KindOctet
	KindShort
	KindLong
	KindLongLong
	KindUShort
	KindULong
	KindULongLong
	KindFloat
	KindDouble
	KindString
)

// Type is an IDL type: a basic kind, optionally wrapped in one level of
// sequence<...>.
type Type struct {
	Kind     BasicKind
	Sequence bool
}

// IDL renders the type in IDL syntax.
func (t Type) IDL() string {
	base := map[BasicKind]string{
		KindVoid: "void", KindBoolean: "boolean", KindOctet: "octet",
		KindShort: "short", KindLong: "long", KindLongLong: "long long",
		KindUShort: "unsigned short", KindULong: "unsigned long",
		KindULongLong: "unsigned long long",
		KindFloat:     "float", KindDouble: "double", KindString: "string",
	}[t.Kind]
	if t.Sequence {
		return fmt.Sprintf("sequence<%s>", base)
	}
	return base
}

// Go renders the corresponding Go type.
func (t Type) Go() string {
	base := map[BasicKind]string{
		KindVoid: "", KindBoolean: "bool", KindOctet: "byte",
		KindShort: "int16", KindLong: "int32", KindLongLong: "int64",
		KindUShort: "uint16", KindULong: "uint32", KindULongLong: "uint64",
		KindFloat: "float32", KindDouble: "float64", KindString: "string",
	}[t.Kind]
	if t.Sequence {
		return "[]" + base
	}
	return base
}

// IsVoid reports whether the type is plain void.
func (t Type) IsVoid() bool { return t.Kind == KindVoid && !t.Sequence }

// Param is one operation parameter (direction is always "in").
type Param struct {
	Name string
	Type Type
}

// Operation is one interface operation.
type Operation struct {
	Name   string
	Result Type
	Params []Param
	// Raises lists the declared user exceptions by name.
	Raises []string
	// Oneway marks fire-and-forget operations (no reply).
	Oneway bool
	Line   int
}

// Member is one exception member field.
type Member struct {
	Name string
	Type Type
}

// Exception is a user exception declaration.
type Exception struct {
	Name    string
	Members []Member
	Line    int
}

// Interface is an IDL interface declaration.
type Interface struct {
	Name       string
	Operations []Operation
	Line       int
}

// Module is the root AST node: one named module per file.
type Module struct {
	Name       string
	Exceptions []Exception
	Interfaces []Interface
}

// RepoID derives the repository id of a declaration inside the module.
func (m *Module) RepoID(name string) string {
	return fmt.Sprintf("IDL:%s/%s:1.0", m.Name, name)
}
