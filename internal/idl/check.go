package idl

import "fmt"

// CheckError reports a semantic error.
type CheckError struct {
	Line int
	Msg  string
}

func (e *CheckError) Error() string {
	return fmt.Sprintf("idl: line %d: %s", e.Line, e.Msg)
}

// Check validates a parsed module: identifier validity, duplicate names,
// raises clauses referencing declared exceptions, oneway constraints.
func Check(m *Module) error {
	if !validIdent(m.Name) {
		return &CheckError{Line: 1, Msg: fmt.Sprintf("invalid module name %q", m.Name)}
	}
	declared := map[string]int{}
	exceptions := map[string]bool{}
	for _, ex := range m.Exceptions {
		if !validIdent(ex.Name) {
			return &CheckError{Line: ex.Line, Msg: fmt.Sprintf("invalid exception name %q", ex.Name)}
		}
		if prev, dup := declared[ex.Name]; dup {
			return &CheckError{Line: ex.Line, Msg: fmt.Sprintf("%q already declared at line %d", ex.Name, prev)}
		}
		declared[ex.Name] = ex.Line
		exceptions[ex.Name] = true
		seen := map[string]bool{}
		for _, mem := range ex.Members {
			if !validIdent(mem.Name) {
				return &CheckError{Line: ex.Line, Msg: fmt.Sprintf("invalid member name %q in exception %s", mem.Name, ex.Name)}
			}
			if seen[mem.Name] {
				return &CheckError{Line: ex.Line, Msg: fmt.Sprintf("duplicate member %q in exception %s", mem.Name, ex.Name)}
			}
			seen[mem.Name] = true
			if mem.Type.IsVoid() {
				return &CheckError{Line: ex.Line, Msg: fmt.Sprintf("void member %q in exception %s", mem.Name, ex.Name)}
			}
		}
	}
	for _, ifc := range m.Interfaces {
		if !validIdent(ifc.Name) {
			return &CheckError{Line: ifc.Line, Msg: fmt.Sprintf("invalid interface name %q", ifc.Name)}
		}
		if prev, dup := declared[ifc.Name]; dup {
			return &CheckError{Line: ifc.Line, Msg: fmt.Sprintf("%q already declared at line %d", ifc.Name, prev)}
		}
		declared[ifc.Name] = ifc.Line
		if len(ifc.Operations) == 0 {
			return &CheckError{Line: ifc.Line, Msg: fmt.Sprintf("interface %s has no operations", ifc.Name)}
		}
		ops := map[string]bool{}
		for _, op := range ifc.Operations {
			if !validIdent(op.Name) {
				return &CheckError{Line: op.Line, Msg: fmt.Sprintf("invalid operation name %q", op.Name)}
			}
			if ops[op.Name] {
				return &CheckError{Line: op.Line, Msg: fmt.Sprintf("duplicate operation %q in interface %s", op.Name, ifc.Name)}
			}
			ops[op.Name] = true
			if op.Oneway {
				if !op.Result.IsVoid() {
					return &CheckError{Line: op.Line, Msg: fmt.Sprintf("oneway operation %q must return void", op.Name)}
				}
				if len(op.Raises) > 0 {
					return &CheckError{Line: op.Line, Msg: fmt.Sprintf("oneway operation %q cannot raise exceptions", op.Name)}
				}
			}
			params := map[string]bool{}
			for _, pa := range op.Params {
				if !validIdent(pa.Name) {
					return &CheckError{Line: op.Line, Msg: fmt.Sprintf("invalid parameter name %q in %s", pa.Name, op.Name)}
				}
				if params[pa.Name] {
					return &CheckError{Line: op.Line, Msg: fmt.Sprintf("duplicate parameter %q in %s", pa.Name, op.Name)}
				}
				params[pa.Name] = true
				if pa.Type.IsVoid() {
					return &CheckError{Line: op.Line, Msg: fmt.Sprintf("void parameter %q in %s", pa.Name, op.Name)}
				}
			}
			for _, r := range op.Raises {
				if !exceptions[r] {
					return &CheckError{Line: op.Line, Msg: fmt.Sprintf("operation %q raises undeclared exception %q", op.Name, r)}
				}
			}
		}
	}
	if len(m.Interfaces) == 0 {
		return &CheckError{Line: 1, Msg: "module declares no interfaces"}
	}
	return nil
}
