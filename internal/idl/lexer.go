// Package idl implements a compiler for a small CORBA-IDL dialect: lexer,
// parser, semantic checker and Go code generator. For every interface it
// emits a typed client stub, a server skeleton, and — automating the
// paper's hand-written proxy classes — a fault-tolerant proxy whose
// methods checkpoint and recover through internal/ft.
//
// Supported IDL subset:
//
//	module M { ... };
//	exception E { string reason; long code; };
//	interface I {
//	    long long add(in long long a, in long long b);
//	    void ping() raises (E);
//	    sequence<double> solve(in sequence<double> x);
//	};
//
// Types: void, boolean, octet, short, long, "long long", float, double,
// string, and sequence<basic>. Parameters are "in" only (results travel
// via return values, the Go idiom).
package idl

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind enumerates lexical token kinds.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokLBrace // {
	TokRBrace // }
	TokLParen // (
	TokRParen // )
	TokLAngle // <
	TokRAngle // >
	TokSemi   // ;
	TokComma  // ,
	TokScope  // ::
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of file"
	case TokIdent:
		return "identifier"
	case TokKeyword:
		return "keyword"
	case TokLBrace:
		return "'{'"
	case TokRBrace:
		return "'}'"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokLAngle:
		return "'<'"
	case TokRAngle:
		return "'>'"
	case TokSemi:
		return "';'"
	case TokComma:
		return "','"
	case TokScope:
		return "'::'"
	default:
		return fmt.Sprintf("TokenKind(%d)", int(k))
	}
}

// keywords of the supported dialect.
var keywords = map[string]bool{
	"module": true, "interface": true, "exception": true, "raises": true,
	"in": true, "void": true, "boolean": true, "octet": true,
	"short": true, "long": true, "float": true, "double": true,
	"string": true, "sequence": true, "unsigned": true, "oneway": true,
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Kind == TokIdent || t.Kind == TokKeyword {
		return fmt.Sprintf("%q", t.Text)
	}
	return t.Kind.String()
}

// LexError reports a lexical error with position.
type LexError struct {
	Line, Col int
	Msg       string
}

func (e *LexError) Error() string {
	return fmt.Sprintf("idl: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lex tokenizes src. Comments (// and /* */) and whitespace are skipped.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)
	advance := func(k int) {
		for j := 0; j < k && i < n; j++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			startLine, startCol := line, col
			advance(2)
			closed := false
			for i < n {
				if src[i] == '*' && i+1 < n && src[i+1] == '/' {
					advance(2)
					closed = true
					break
				}
				advance(1)
			}
			if !closed {
				return nil, &LexError{Line: startLine, Col: startCol, Msg: "unterminated block comment"}
			}
		case c == '{':
			toks = append(toks, Token{TokLBrace, "{", line, col})
			advance(1)
		case c == '}':
			toks = append(toks, Token{TokRBrace, "}", line, col})
			advance(1)
		case c == '(':
			toks = append(toks, Token{TokLParen, "(", line, col})
			advance(1)
		case c == ')':
			toks = append(toks, Token{TokRParen, ")", line, col})
			advance(1)
		case c == '<':
			toks = append(toks, Token{TokLAngle, "<", line, col})
			advance(1)
		case c == '>':
			toks = append(toks, Token{TokRAngle, ">", line, col})
			advance(1)
		case c == ';':
			toks = append(toks, Token{TokSemi, ";", line, col})
			advance(1)
		case c == ',':
			toks = append(toks, Token{TokComma, ",", line, col})
			advance(1)
		case c == ':':
			if i+1 < n && src[i+1] == ':' {
				toks = append(toks, Token{TokScope, "::", line, col})
				advance(2)
			} else {
				return nil, &LexError{Line: line, Col: col, Msg: "unexpected ':'"}
			}
		case isIdentStart(rune(c)):
			startLine, startCol := line, col
			j := i
			for j < n && isIdentPart(rune(src[j])) {
				j++
			}
			word := src[i:j]
			advance(j - i)
			kind := TokIdent
			if keywords[word] {
				kind = TokKeyword
			}
			toks = append(toks, Token{kind, word, startLine, startCol})
		default:
			return nil, &LexError{Line: line, Col: col, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, Token{TokEOF, "", line, col})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// validIdent rejects identifiers that would break generated Go code.
func validIdent(s string) bool {
	if s == "" || strings.HasPrefix(s, "_") {
		return false
	}
	for _, r := range s {
		if !isIdentPart(r) {
			return false
		}
	}
	return true
}
