package idl

import (
	"os"
	"strings"
	"testing"
	"testing/quick"
)

const minimal = `
module M {
    interface I {
        void ping();
    };
};
`

func TestLexBasics(t *testing.T) {
	toks, err := Lex("module M { interface I ; } :: <>,()")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{TokKeyword, TokIdent, TokLBrace, TokKeyword, TokIdent,
		TokSemi, TokRBrace, TokScope, TokLAngle, TokRAngle, TokComma, TokLParen, TokRParen, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want %v", i, toks[i], k)
		}
	}
}

func TestLexComments(t *testing.T) {
	src := `// line comment
module /* inline */ M { } ;`
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "module" || toks[1].Text != "M" {
		t.Fatalf("tokens = %v", toks)
	}
	if toks[0].Line != 2 {
		t.Fatalf("line = %d", toks[0].Line)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"§", "a : b", "/* unterminated"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded", src)
		}
	}
}

func TestParseMinimal(t *testing.T) {
	mod, err := Parse(minimal)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Name != "M" || len(mod.Interfaces) != 1 {
		t.Fatalf("mod = %+v", mod)
	}
	op := mod.Interfaces[0].Operations[0]
	if op.Name != "ping" || !op.Result.IsVoid() || len(op.Params) != 0 {
		t.Fatalf("op = %+v", op)
	}
}

func TestParseFullSample(t *testing.T) {
	src, err := os.ReadFile("sample/bank.idl")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if mod.Name != "Bank" || len(mod.Interfaces) != 2 || len(mod.Exceptions) != 2 {
		t.Fatalf("mod = %+v", mod)
	}
	acct := mod.Interfaces[0]
	if acct.Name != "Account" || len(acct.Operations) != 6 {
		t.Fatalf("account = %+v", acct)
	}
	withdraw := acct.Operations[1]
	if len(withdraw.Raises) != 1 || withdraw.Raises[0] != "InsufficientFunds" {
		t.Fatalf("withdraw = %+v", withdraw)
	}
	audit := acct.Operations[4]
	if !audit.Oneway {
		t.Fatalf("audit = %+v", audit)
	}
	hist := acct.Operations[5]
	if !hist.Result.Sequence || hist.Result.Kind != KindDouble {
		t.Fatalf("history result = %+v", hist.Result)
	}
	teller := mod.Interfaces[1]
	codes := teller.Operations[3]
	if !codes.Result.Sequence || codes.Result.Kind != KindShort {
		t.Fatalf("codes result = %+v", codes.Result)
	}
	if !codes.Params[0].Type.Sequence || codes.Params[0].Type.Kind != KindOctet {
		t.Fatalf("codes param = %+v", codes.Params[0])
	}
	count := teller.Operations[2]
	if count.Result.Kind != KindULong {
		t.Fatalf("count result = %+v", count.Result)
	}
}

func TestParseTypeTable(t *testing.T) {
	cases := map[string]Type{
		"boolean":                  {Kind: KindBoolean},
		"octet":                    {Kind: KindOctet},
		"short":                    {Kind: KindShort},
		"long":                     {Kind: KindLong},
		"long long":                {Kind: KindLongLong},
		"unsigned short":           {Kind: KindUShort},
		"unsigned long":            {Kind: KindULong},
		"unsigned long long":       {Kind: KindULongLong},
		"float":                    {Kind: KindFloat},
		"double":                   {Kind: KindDouble},
		"string":                   {Kind: KindString},
		"sequence<double>":         {Kind: KindDouble, Sequence: true},
		"sequence<long long>":      {Kind: KindLongLong, Sequence: true},
		"sequence<unsigned short>": {Kind: KindUShort, Sequence: true},
	}
	for idlType, want := range cases {
		src := "module M { interface I { " + idlType + " get(); }; };"
		mod, err := Parse(src)
		if err != nil {
			t.Errorf("%s: %v", idlType, err)
			continue
		}
		got := mod.Interfaces[0].Operations[0].Result
		if got != want {
			t.Errorf("%s parsed to %+v, want %+v", idlType, got, want)
		}
		if got.IDL() != idlType {
			t.Errorf("IDL round trip %q -> %q", idlType, got.IDL())
		}
	}
}

func TestTypeGoMapping(t *testing.T) {
	cases := map[Type]string{
		{Kind: KindBoolean}:                "bool",
		{Kind: KindOctet, Sequence: true}:  "[]byte",
		{Kind: KindLongLong}:               "int64",
		{Kind: KindULongLong}:              "uint64",
		{Kind: KindDouble, Sequence: true}: "[]float64",
		{Kind: KindString}:                 "string",
	}
	for typ, want := range cases {
		if got := typ.Go(); got != want {
			t.Errorf("%v.Go() = %q, want %q", typ, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                               // empty
		"interface I { void p(); };",     // no module
		"module M { interface I { }; };", // empty interface
		"module M { };",                  // no interfaces
		"module M { interface I { void p() raises (X); }; };",                                     // unknown exception
		"module M { interface I { void p(in void v); }; };",                                       // void param
		"module M { interface I { oneway long p(); }; };",                                         // oneway non-void
		"module M { interface I { void p(); void p(); }; };",                                      // dup op
		"module M { interface I { void p(in long a, in long a); }; };",                            // dup param
		"module M { interface I { sequence<sequence<long>> p(); }; };",                            // nested seq
		"module M { exception E { }; exception E { }; interface I { void p(); }; };",              // dup decl
		"module M { exception E { void v; }; interface I { void p(); }; };",                       // void member
		"module M { interface I { void p(); };",                                                   // missing closing
		"module M { interface I { unsigned double p(); }; };",                                     // bad unsigned
		"module M { exception E { string reason; string reason; }; interface I { void p(); }; };", // dup member
		"module M { interface I { oneway void p() raises (E); }; exception E {}; };",              // oneway raises (and order)
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse succeeded for %q", src)
		}
	}
}

func TestGenerateGoldenMatchesCheckedIn(t *testing.T) {
	src, err := os.ReadFile("sample/bank.idl")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	code, err := Generate(mod, GenOptions{Package: "sample", Source: "internal/idl/sample/bank.idl"})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("sample/bank_gen.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(code) != string(golden) {
		t.Fatal("generated code differs from checked-in sample/bank_gen.go; re-run " +
			"`go run ./cmd/idlgen -in internal/idl/sample/bank.idl -package sample -out internal/idl/sample/bank_gen.go`")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	mod, err := Parse(minimal)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Generate(mod, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(mod, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("nondeterministic generation")
	}
	if !strings.Contains(string(a), "package m") {
		t.Fatalf("default package name missing:\n%s", a)
	}
}

func TestGeneratedCodeContainsAllArtifacts(t *testing.T) {
	src, _ := os.ReadFile("sample/bank.idl")
	mod, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	code, err := Generate(mod, GenOptions{Package: "sample"})
	if err != nil {
		t.Fatal(err)
	}
	text := string(code)
	for _, want := range []string{
		"const AccountTypeID = \"IDL:Bank/Account:1.0\"",
		"type Account interface",
		"type AccountServant struct",
		"type AccountStub struct",
		"type AccountProxy struct",
		"type TellerServant struct",
		"type InsufficientFunds struct",
		"func decodeUnknownAccount",
		"func (s *AccountStub) Audit(", // oneway
		"orb.BadOperation(op)",
		"cdr.GetSeq(d, 2, (*cdr.Decoder).GetInt16)", // sequence<short>
	} {
		if !strings.Contains(text, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
}

// Property: any module built from sanitized identifiers parses and
// generates formattable Go code.
func TestQuickGenerateAlwaysFormats(t *testing.T) {
	kinds := []BasicKind{KindBoolean, KindOctet, KindShort, KindLong, KindLongLong,
		KindUShort, KindULong, KindULongLong, KindFloat, KindDouble, KindString}
	f := func(opCount uint8, seqFlags uint16, kindSel uint64) bool {
		n := 1 + int(opCount%6)
		mod := &Module{Name: "Q"}
		ifc := Interface{Name: "Svc"}
		for i := 0; i < n; i++ {
			k := kinds[int((kindSel>>(4*uint(i)))%uint64(len(kinds)))]
			op := Operation{
				Name:   "op" + string(rune('a'+i)),
				Result: Type{Kind: k, Sequence: seqFlags>>(2*uint(i))&1 == 1},
				Params: []Param{{Name: "x", Type: Type{Kind: k, Sequence: seqFlags>>(2*uint(i)+1)&1 == 1}}},
			}
			ifc.Operations = append(ifc.Operations, op)
		}
		mod.Interfaces = []Interface{ifc}
		if err := Check(mod); err != nil {
			return false
		}
		_, err := Generate(mod, GenOptions{Package: "q"})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
