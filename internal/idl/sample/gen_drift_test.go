package sample

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/idl"
)

// TestGeneratedCodeUpToDate regenerates the bindings from bank.idl in
// memory and fails if the checked-in bank_gen.go differs — i.e. someone
// edited the IDL or the generator without running `go generate`.
func TestGeneratedCodeUpToDate(t *testing.T) {
	src, err := os.ReadFile("bank.idl")
	if err != nil {
		t.Fatalf("read bank.idl: %v", err)
	}
	mod, err := idl.Parse(string(src))
	if err != nil {
		t.Fatalf("parse bank.idl: %v", err)
	}
	want, err := idl.Generate(mod, idl.GenOptions{Package: "sample", Source: "internal/idl/sample/bank.idl"})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	got, err := os.ReadFile("bank_gen.go")
	if err != nil {
		t.Fatalf("read bank_gen.go: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("bank_gen.go is stale: run `go generate ./internal/idl/sample` (checked-in %d bytes, generator now produces %d bytes)", len(got), len(want))
	}
}
