// Package sample holds the generated bindings for the example Bank IDL
// module. bank_gen.go is produced from bank.idl by cmd/idlgen; run
// `go generate ./internal/idl/sample` after editing bank.idl or the
// generator. TestGeneratedCodeUpToDate fails when the checked-in file
// drifts from the generator's output.
package sample

//go:generate go run repro/cmd/idlgen -in bank.idl -out bank_gen.go -package sample -source internal/idl/sample/bank.idl
