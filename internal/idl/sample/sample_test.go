// End-to-end tests of the GENERATED code: the bank_gen.go stubs,
// skeletons and fault-tolerant proxies produced by idlgen from bank.idl,
// exercised over a live ORB.
package sample

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/ft"
	"repro/internal/naming"
	"repro/internal/orb"
)

// accountImpl implements the generated Account contract plus
// ft.Checkpointable.
type accountImpl struct {
	mu      sync.Mutex
	balance int64
	notes   []string
	audits  []string
	history []float64
}

func (a *accountImpl) Deposit(_ context.Context, amount int64) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.balance += amount
	a.history = append(a.history, float64(a.balance))
	return a.balance, nil
}

func (a *accountImpl) Withdraw(_ context.Context, amount int64) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if amount > a.balance {
		return 0, &InsufficientFunds{Reason: "balance too low", Missing: amount - a.balance}
	}
	a.balance -= amount
	a.history = append(a.history, float64(a.balance))
	return a.balance, nil
}

func (a *accountImpl) Balance(context.Context) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.balance, nil
}

func (a *accountImpl) Annotate(_ context.Context, note string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.notes = append(a.notes, note)
	return nil
}

func (a *accountImpl) Audit(_ context.Context, event string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.audits = append(a.audits, event)
	return nil
}

func (a *accountImpl) History(_ context.Context, limit int32) ([]float64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if int(limit) < len(a.history) {
		return a.history[len(a.history)-int(limit):], nil
	}
	return a.history, nil
}

// Checkpoint/Restore persist only the balance (sufficient for the tests).
func (a *accountImpl) Checkpoint() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return []byte{byte(a.balance >> 8), byte(a.balance)}, nil
}

func (a *accountImpl) Restore(data []byte) error {
	if len(data) != 2 {
		return errors.New("bad checkpoint")
	}
	a.mu.Lock()
	a.balance = int64(data[0])<<8 | int64(data[1])
	a.mu.Unlock()
	return nil
}

var _ Account = (*accountImpl)(nil)

func startAccount(t *testing.T) (*orb.ORB, *AccountStub, *accountImpl) {
	t.Helper()
	server := orb.New(orb.Options{Name: "bank-server"})
	t.Cleanup(server.Shutdown)
	ad, err := server.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	impl := &accountImpl{}
	ref := ad.Activate("acct", NewAccountServant(impl))

	client := orb.New(orb.Options{Name: "bank-client"})
	t.Cleanup(client.Shutdown)
	return client, NewAccountStub(client, ref), impl
}

func TestGeneratedStubRoundTrip(t *testing.T) {
	_, stub, _ := startAccount(t)
	if b, err := stub.Deposit(context.Background(), 100); err != nil || b != 100 {
		t.Fatalf("deposit = %d, %v", b, err)
	}
	if b, err := stub.Withdraw(context.Background(), 30); err != nil || b != 70 {
		t.Fatalf("withdraw = %d, %v", b, err)
	}
	if b, err := stub.Balance(context.Background()); err != nil || b != 70 {
		t.Fatalf("balance = %d, %v", b, err)
	}
	if err := stub.Annotate(context.Background(), "rent"); err != nil {
		t.Fatal(err)
	}
	h, err := stub.History(context.Background(), 1)
	if err != nil || len(h) != 1 || h[0] != 70 {
		t.Fatalf("history = %v, %v", h, err)
	}
}

func TestGeneratedTypedException(t *testing.T) {
	_, stub, _ := startAccount(t)
	_, err := stub.Withdraw(context.Background(), 500)
	var ife *InsufficientFunds
	if !errors.As(err, &ife) {
		t.Fatalf("err = %T %v, want *InsufficientFunds", err, err)
	}
	if ife.Missing != 500 || ife.Reason != "balance too low" {
		t.Fatalf("exception members: %+v", ife)
	}
}

func TestGeneratedOneway(t *testing.T) {
	_, stub, impl := startAccount(t)
	if err := stub.Audit(context.Background(), "login"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		impl.mu.Lock()
		n := len(impl.audits)
		impl.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("oneway call never arrived")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestGeneratedProxyRecovers(t *testing.T) {
	// Services: naming + store.
	services := orb.New(orb.Options{Name: "services"})
	t.Cleanup(services.Shutdown)
	svcAd, err := services.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := naming.NewRegistry()
	nsRef := svcAd.Activate(naming.DefaultKey, naming.NewServant(reg, naming.RoundRobinSelector()))
	storeRef := svcAd.Activate(ft.StoreDefaultKey, ft.NewStoreServant(ft.NewMemStore()))

	client := orb.New(orb.Options{Name: "client"})
	t.Cleanup(client.Shutdown)
	ns := naming.NewClient(client, nsRef)
	store := ft.NewStoreClient(client, storeRef)

	// Two account servers as offers of one name. The servants combine the
	// generated skeleton with the checkpoint wrapper.
	name := naming.NewName("acct")
	srvA := orb.New(orb.Options{Name: "srvA"})
	t.Cleanup(srvA.Shutdown)
	adA, _ := srvA.NewAdapter("127.0.0.1:0")
	implA := &accountImpl{}
	refA := adA.Activate("a", &ft.Wrapper{Inner: NewAccountServant(implA), State: implA})
	if err := ns.BindOffer(context.Background(), name, refA, "hostA"); err != nil {
		t.Fatal(err)
	}
	srvB := orb.New(orb.Options{Name: "srvB"})
	t.Cleanup(srvB.Shutdown)
	adB, _ := srvB.NewAdapter("127.0.0.1:0")
	implB := &accountImpl{}
	refB := adB.Activate("b", &ft.Wrapper{Inner: NewAccountServant(implB), State: implB})
	if err := ns.BindOffer(context.Background(), name, refB, "hostB"); err != nil {
		t.Fatal(err)
	}

	proxy, err := NewAccountProxy(context.Background(), client, name, ns, store,
		ft.Policy{CheckpointEvery: 1}, ft.WithUnbinder(ns))
	if err != nil {
		t.Fatal(err)
	}
	if b, err := proxy.Deposit(context.Background(), 200); err != nil || b != 200 {
		t.Fatalf("deposit = %d, %v", b, err)
	}
	// Typed exceptions pass through the proxy too.
	if _, err := proxy.Withdraw(context.Background(), 1000); err == nil {
		t.Fatal("expected InsufficientFunds")
	} else {
		var ife *InsufficientFunds
		if !errors.As(err, &ife) {
			t.Fatalf("err = %T", err)
		}
	}
	// Crash server A; the generated proxy recovers and replays.
	srvA.Shutdown()
	b, err := proxy.Withdraw(context.Background(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if b != 150 {
		t.Fatalf("recovered balance = %d, want 150", b)
	}
	if implB.balance != 150 {
		t.Fatalf("implB balance = %d", implB.balance)
	}
	st := proxy.Stats()
	if st.Recoveries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if proxy.Ref().Addr != refB.Addr {
		t.Fatalf("proxy ref = %v", proxy.Ref())
	}
	// Migration through the generated proxy.
	if err := proxy.Migrate(context.Background(), refB); err != nil {
		t.Fatal(err)
	}
}

// tellerImpl exercises the second generated interface (multi-exception
// raises, unsigned and short-sequence marshalling).
type tellerImpl struct{}

func (tellerImpl) Transfer(_ context.Context, from, to string, amount int64) error {
	switch {
	case from == "ghost":
		return &UnknownAccount{Id: from}
	case amount > 100:
		return &InsufficientFunds{Reason: "limit", Missing: amount - 100}
	default:
		return nil
	}
}

func (tellerImpl) Accounts(context.Context) ([]string, error) { return []string{"a", "b"}, nil }

func (tellerImpl) Count(_ context.Context, activeOnly bool) (uint32, error) {
	if activeOnly {
		return 1, nil
	}
	return 2, nil
}

func (tellerImpl) Codes(_ context.Context, raw []byte) ([]int16, error) {
	out := make([]int16, len(raw))
	for i, b := range raw {
		out[i] = int16(b) * 2
	}
	return out, nil
}

var _ Teller = tellerImpl{}

func TestGeneratedTellerInterface(t *testing.T) {
	server := orb.New(orb.Options{Name: "teller-server"})
	t.Cleanup(server.Shutdown)
	ad, err := server.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ref := ad.Activate("teller", NewTellerServant(tellerImpl{}))
	client := orb.New(orb.Options{Name: "teller-client"})
	t.Cleanup(client.Shutdown)
	stub := NewTellerStub(client, ref)

	if err := stub.Transfer(context.Background(), "a", "b", 10); err != nil {
		t.Fatal(err)
	}
	var ua *UnknownAccount
	if err := stub.Transfer(context.Background(), "ghost", "b", 10); !errors.As(err, &ua) || ua.Id != "ghost" {
		t.Fatalf("err = %v", err)
	}
	var ife *InsufficientFunds
	if err := stub.Transfer(context.Background(), "a", "b", 150); !errors.As(err, &ife) || ife.Missing != 50 {
		t.Fatalf("err = %v", err)
	}
	accts, err := stub.Accounts(context.Background())
	if err != nil || len(accts) != 2 || accts[0] != "a" {
		t.Fatalf("accounts = %v, %v", accts, err)
	}
	n, err := stub.Count(context.Background(), true)
	if err != nil || n != 1 {
		t.Fatalf("count = %d, %v", n, err)
	}
	codes, err := stub.Codes(context.Background(), []byte{1, 2, 3})
	if err != nil || len(codes) != 3 || codes[2] != 6 {
		t.Fatalf("codes = %v, %v", codes, err)
	}
}

func TestGeneratedServantRejectsUnknownOp(t *testing.T) {
	client, stub, _ := startAccount(t)
	err := client.Call(context.Background(), stub.Ref(), "no_such_op", nil, nil)
	if !orb.IsSystemException(err, orb.ExBadOperation) {
		t.Fatalf("err = %v", err)
	}
}
