package idl

import (
	"fmt"
)

// ParseError reports a syntax or semantic error with position.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("idl: %d:%d: %s", e.Line, e.Col, e.Msg)
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t Token, format string, args ...any) error {
	return &ParseError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

// expect consumes a token of the given kind (and text, if nonempty).
func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	t := p.next()
	if t.Kind != kind || (text != "" && t.Text != text) {
		want := kind.String()
		if text != "" {
			want = fmt.Sprintf("%q", text)
		}
		return t, p.errf(t, "expected %s, got %v", want, t)
	}
	return t, nil
}

// Parse compiles IDL source text to its module AST and runs semantic
// checks.
func Parse(src string) (*Module, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	mod, err := p.parseModule()
	if err != nil {
		return nil, err
	}
	if err := Check(mod); err != nil {
		return nil, err
	}
	return mod, nil
}

func (p *parser) parseModule() (*Module, error) {
	if _, err := p.expect(TokKeyword, "module"); err != nil {
		return nil, err
	}
	nameTok, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	mod := &Module{Name: nameTok.Text}
	if _, err := p.expect(TokLBrace, ""); err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch {
		case t.Kind == TokRBrace:
			p.next()
			if _, err := p.expect(TokSemi, ""); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokEOF, ""); err != nil {
				return nil, err
			}
			return mod, nil
		case t.Kind == TokKeyword && t.Text == "exception":
			ex, err := p.parseException()
			if err != nil {
				return nil, err
			}
			mod.Exceptions = append(mod.Exceptions, *ex)
		case t.Kind == TokKeyword && t.Text == "interface":
			ifc, err := p.parseInterface()
			if err != nil {
				return nil, err
			}
			mod.Interfaces = append(mod.Interfaces, *ifc)
		default:
			return nil, p.errf(t, "expected exception, interface or '}', got %v", t)
		}
	}
}

func (p *parser) parseException() (*Exception, error) {
	kw, _ := p.expect(TokKeyword, "exception")
	nameTok, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	ex := &Exception{Name: nameTok.Text, Line: kw.Line}
	if _, err := p.expect(TokLBrace, ""); err != nil {
		return nil, err
	}
	for p.peek().Kind != TokRBrace {
		typ, err := p.parseType(false)
		if err != nil {
			return nil, err
		}
		mTok, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi, ""); err != nil {
			return nil, err
		}
		ex.Members = append(ex.Members, Member{Name: mTok.Text, Type: typ})
	}
	p.next() // '}'
	if _, err := p.expect(TokSemi, ""); err != nil {
		return nil, err
	}
	return ex, nil
}

func (p *parser) parseInterface() (*Interface, error) {
	kw, _ := p.expect(TokKeyword, "interface")
	nameTok, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	ifc := &Interface{Name: nameTok.Text, Line: kw.Line}
	if _, err := p.expect(TokLBrace, ""); err != nil {
		return nil, err
	}
	for p.peek().Kind != TokRBrace {
		op, err := p.parseOperation()
		if err != nil {
			return nil, err
		}
		ifc.Operations = append(ifc.Operations, *op)
	}
	p.next() // '}'
	if _, err := p.expect(TokSemi, ""); err != nil {
		return nil, err
	}
	return ifc, nil
}

func (p *parser) parseOperation() (*Operation, error) {
	op := &Operation{Line: p.peek().Line}
	if t := p.peek(); t.Kind == TokKeyword && t.Text == "oneway" {
		p.next()
		op.Oneway = true
	}
	result, err := p.parseType(true)
	if err != nil {
		return nil, err
	}
	op.Result = result
	nameTok, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	op.Name = nameTok.Text
	if _, err := p.expect(TokLParen, ""); err != nil {
		return nil, err
	}
	for p.peek().Kind != TokRParen {
		if len(op.Params) > 0 {
			if _, err := p.expect(TokComma, ""); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokKeyword, "in"); err != nil {
			return nil, err
		}
		typ, err := p.parseType(false)
		if err != nil {
			return nil, err
		}
		pTok, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		op.Params = append(op.Params, Param{Name: pTok.Text, Type: typ})
	}
	p.next() // ')'
	if t := p.peek(); t.Kind == TokKeyword && t.Text == "raises" {
		p.next()
		if _, err := p.expect(TokLParen, ""); err != nil {
			return nil, err
		}
		for {
			exTok, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			op.Raises = append(op.Raises, exTok.Text)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(TokRParen, ""); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemi, ""); err != nil {
		return nil, err
	}
	return op, nil
}

// parseType parses a type; allowVoid permits the bare "void" result type.
func (p *parser) parseType(allowVoid bool) (Type, error) {
	t := p.next()
	if t.Kind != TokKeyword {
		return Type{}, p.errf(t, "expected a type, got %v", t)
	}
	switch t.Text {
	case "void":
		if !allowVoid {
			return Type{}, p.errf(t, "void is only valid as a result type")
		}
		return Type{Kind: KindVoid}, nil
	case "sequence":
		if _, err := p.expect(TokLAngle, ""); err != nil {
			return Type{}, err
		}
		elem, err := p.parseBasic()
		if err != nil {
			return Type{}, err
		}
		if _, err := p.expect(TokRAngle, ""); err != nil {
			return Type{}, err
		}
		return Type{Kind: elem, Sequence: true}, nil
	default:
		p.pos-- // re-read as a basic type
		k, err := p.parseBasic()
		if err != nil {
			return Type{}, err
		}
		return Type{Kind: k}, nil
	}
}

// parseBasic parses a primitive type name, handling the two-word forms
// "long long", "unsigned short/long/long long".
func (p *parser) parseBasic() (BasicKind, error) {
	t := p.next()
	if t.Kind != TokKeyword {
		return 0, p.errf(t, "expected a primitive type, got %v", t)
	}
	switch t.Text {
	case "boolean":
		return KindBoolean, nil
	case "octet":
		return KindOctet, nil
	case "short":
		return KindShort, nil
	case "float":
		return KindFloat, nil
	case "double":
		return KindDouble, nil
	case "string":
		return KindString, nil
	case "long":
		if n := p.peek(); n.Kind == TokKeyword && n.Text == "long" {
			p.next()
			return KindLongLong, nil
		}
		return KindLong, nil
	case "unsigned":
		n := p.next()
		if n.Kind != TokKeyword {
			return 0, p.errf(n, "expected short or long after unsigned")
		}
		switch n.Text {
		case "short":
			return KindUShort, nil
		case "long":
			if nn := p.peek(); nn.Kind == TokKeyword && nn.Text == "long" {
				p.next()
				return KindULongLong, nil
			}
			return KindULong, nil
		default:
			return 0, p.errf(n, "expected short or long after unsigned, got %v", n)
		}
	default:
		return 0, p.errf(t, "%q is not a primitive type", t.Text)
	}
}
