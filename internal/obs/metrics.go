package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format. Families register once (by name) and record with
// atomics; WritePrometheus reads a consistent-enough snapshot without
// stopping writers.
type Registry struct {
	mu       sync.Mutex
	families []family
	byName   map[string]bool
}

type family interface {
	name() string
	write(w io.Writer, exemplars bool)
}

// NewRegistry creates an empty metric registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]bool)}
}

func (r *Registry) register(f family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[f.name()] {
		panic("obs: duplicate metric family " + f.name())
	}
	r.byName[f.name()] = true
	r.families = append(r.families, f)
}

// WritePrometheus renders every registered family to w in Prometheus
// text exposition format (0.0.4) — no exemplars, parseable by every
// scraper.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.writeAll(w, false)
}

// WriteOpenMetrics renders the same families with OpenMetrics-style
// exemplar annotations on histogram buckets (`# {trace_id="..."} v ts`)
// so a hot bucket links to a /debug/traces entry. Serve it only to
// clients that ask (Accept: application/openmetrics-text or
// /metrics?exemplars=1) — 0.0.4-only parsers reject the `#` suffix.
func (r *Registry) WriteOpenMetrics(w io.Writer) {
	r.writeAll(w, true)
	io.WriteString(w, "# EOF\n")
}

func (r *Registry) writeAll(w io.Writer, exemplars bool) {
	r.mu.Lock()
	fams := append([]family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		f.write(w, exemplars)
	}
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// labelString renders {k1="v1",k2="v2"}; empty for no labels.
func labelString(keys, values []string, extra ...string) string {
	if len(keys) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, k, escapeLabel(values[i]))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if b.Len() > 1 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, extra[i], escapeLabel(extra[i+1]))
	}
	b.WriteByte('}')
	return b.String()
}

// seriesKey joins label values with an unprintable separator so distinct
// label tuples can't collide.
func seriesKey(values []string) string { return strings.Join(values, "\xff") }

// Counter is one monotonically increasing series.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct {
	fname  string
	help   string
	labels []string

	mu     sync.Mutex
	series map[string]*counterSeries
}

type counterSeries struct {
	values []string
	c      Counter
}

// NewCounterVec registers a counter family with the given label names.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	cv := &CounterVec{fname: name, help: help, labels: labels, series: make(map[string]*counterSeries)}
	r.register(cv)
	return cv
}

// With returns the counter for the given label values, creating it on
// first use. The number of values must match the declared labels.
func (cv *CounterVec) With(values ...string) *Counter {
	if len(values) != len(cv.labels) {
		panic(fmt.Sprintf("obs: %s wants %d labels, got %d", cv.fname, len(cv.labels), len(values)))
	}
	key := seriesKey(values)
	cv.mu.Lock()
	defer cv.mu.Unlock()
	s, ok := cv.series[key]
	if !ok {
		s = &counterSeries{values: append([]string(nil), values...)}
		cv.series[key] = s
	}
	return &s.c
}

// With1 is With for single-label families without the variadic slice,
// which escapes and costs one allocation per call — the hot-path form.
func (cv *CounterVec) With1(value string) *Counter {
	if len(cv.labels) != 1 {
		panic(fmt.Sprintf("obs: %s wants %d labels, got 1", cv.fname, len(cv.labels)))
	}
	cv.mu.Lock()
	s, ok := cv.series[value]
	if !ok {
		s = &counterSeries{values: []string{value}}
		cv.series[value] = s
	}
	cv.mu.Unlock()
	return &s.c
}

func (cv *CounterVec) name() string { return cv.fname }

func (cv *CounterVec) write(w io.Writer, _ bool) {
	cv.mu.Lock()
	keys := make([]string, 0, len(cv.series))
	for k := range cv.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	series := make([]*counterSeries, len(keys))
	for i, k := range keys {
		series[i] = cv.series[k]
	}
	cv.mu.Unlock()

	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", cv.fname, cv.help, cv.fname)
	for _, s := range series {
		fmt.Fprintf(w, "%s%s %d\n", cv.fname, labelString(cv.labels, s.values), s.c.Value())
	}
}

// HistogramVec is a family of latency histograms with shared buckets,
// distinguished by label values. Observations are in seconds.
type HistogramVec struct {
	fname   string
	help    string
	labels  []string
	buckets []float64 // upper bounds, ascending, +Inf implicit

	mu     sync.Mutex
	series map[string]*histogramSeries
}

type histogramSeries struct {
	values  []string
	counts  []atomic.Uint64 // one per bucket + one for +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 sum via math.Float64bits CAS
	// exemplars holds the most recent sampled observation per bucket
	// (one slot per bucket + one for +Inf), linking the bucket to a
	// trace in /debug/traces. Populated only by ObserveExemplar.
	exemplars []exemplarSlot
}

// exemplarSlot is one bucket's exemplar: the latest sampled observation
// that landed there. Overwriting keeps it allocation-free and biased
// toward recent traffic, which is what incident debugging wants.
type exemplarSlot struct {
	mu    sync.Mutex
	set   bool
	value float64
	trace TraceID
	nanos int64
}

// ExponentialBuckets returns n upper bounds starting at start, each
// factor times the previous — the standard layout for RPC latency.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// DefaultLatencyBuckets spans 100µs to ~3.3s in powers of two — wide
// enough for in-process calls and checkpoint restores alike.
var DefaultLatencyBuckets = ExponentialBuckets(100e-6, 2, 16)

// NewHistogramVec registers a histogram family with the given bucket
// upper bounds (ascending; +Inf is implicit) and label names.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefaultLatencyBuckets
	}
	hv := &HistogramVec{
		fname:   name,
		help:    help,
		labels:  labels,
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*histogramSeries),
	}
	r.register(hv)
	return hv
}

// Histogram is one labeled series of a HistogramVec.
type Histogram struct {
	hv *HistogramVec
	s  *histogramSeries
}

// With returns the histogram for the given label values, creating it on
// first use.
func (hv *HistogramVec) With(values ...string) Histogram {
	if len(values) != len(hv.labels) {
		panic(fmt.Sprintf("obs: %s wants %d labels, got %d", hv.fname, len(hv.labels), len(values)))
	}
	key := seriesKey(values)
	hv.mu.Lock()
	defer hv.mu.Unlock()
	s, ok := hv.series[key]
	if !ok {
		s = newHistogramSeries(append([]string(nil), values...), len(hv.buckets))
		hv.series[key] = s
	}
	return Histogram{hv: hv, s: s}
}

// With1 is With for single-label families without the variadic slice,
// which escapes and costs one allocation per call — the hot-path form.
func (hv *HistogramVec) With1(value string) Histogram {
	if len(hv.labels) != 1 {
		panic(fmt.Sprintf("obs: %s wants %d labels, got 1", hv.fname, len(hv.labels)))
	}
	hv.mu.Lock()
	s, ok := hv.series[value]
	if !ok {
		s = newHistogramSeries([]string{value}, len(hv.buckets))
		hv.series[value] = s
	}
	hv.mu.Unlock()
	return Histogram{hv: hv, s: s}
}

func newHistogramSeries(values []string, buckets int) *histogramSeries {
	return &histogramSeries{
		values:    values,
		counts:    make([]atomic.Uint64, buckets+1),
		exemplars: make([]exemplarSlot, buckets+1),
	}
}

// Observe records one value (in seconds for latency families).
func (h Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.hv.buckets, v)
	h.s.counts[i].Add(1)
	h.s.count.Add(1)
	for {
		old := h.s.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.s.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one value and pins it as the bucket's exemplar
// under the given trace id, so a slow /metrics bucket points at a
// concrete /debug/traces entry. Call it only for sampled observations —
// an exemplar must reference a findable trace. A zero trace id degrades
// to a plain Observe. Never allocates.
func (h Histogram) ObserveExemplar(v float64, trace TraceID) {
	i := sort.SearchFloat64s(h.hv.buckets, v)
	h.s.counts[i].Add(1)
	h.s.count.Add(1)
	for {
		old := h.s.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.s.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	if trace.IsZero() {
		return
	}
	e := &h.s.exemplars[i]
	e.mu.Lock()
	e.set = true
	e.value = v
	e.trace = trace
	e.nanos = time.Now().UnixNano()
	e.mu.Unlock()
}

func (hv *HistogramVec) name() string { return hv.fname }

func (hv *HistogramVec) write(w io.Writer, exemplars bool) {
	hv.mu.Lock()
	keys := make([]string, 0, len(hv.series))
	for k := range hv.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	series := make([]*histogramSeries, len(keys))
	for i, k := range keys {
		series[i] = hv.series[k]
	}
	hv.mu.Unlock()

	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", hv.fname, hv.help, hv.fname)
	for _, s := range series {
		var cum uint64
		for i, ub := range hv.buckets {
			cum += s.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket%s %d%s\n",
				hv.fname, labelString(hv.labels, s.values, "le", formatFloat(ub)), cum,
				s.exemplarSuffix(i, exemplars))
		}
		cum += s.counts[len(hv.buckets)].Load()
		fmt.Fprintf(w, "%s_bucket%s %d%s\n", hv.fname, labelString(hv.labels, s.values, "le", "+Inf"), cum,
			s.exemplarSuffix(len(hv.buckets), exemplars))
		fmt.Fprintf(w, "%s_sum%s %g\n", hv.fname, labelString(hv.labels, s.values), math.Float64frombits(s.sumBits.Load()))
		fmt.Fprintf(w, "%s_count%s %d\n", hv.fname, labelString(hv.labels, s.values), s.count.Load())
	}
}

// exemplarSuffix renders ` # {trace_id="..."} value timestamp` for the
// bucket when exemplar output is requested and the slot is populated.
func (s *histogramSeries) exemplarSuffix(i int, enabled bool) string {
	if !enabled || i >= len(s.exemplars) {
		return ""
	}
	e := &s.exemplars[i]
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.set {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %g %.3f", e.trace.String(), e.value, float64(e.nanos)/1e9)
}

func formatFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", f), "0"), ".")
}

// HistogramSnapshot is a point-in-time copy of one histogram series,
// used by rosenbench's latency table.
type HistogramSnapshot struct {
	Labels  []string
	Buckets []float64 // upper bounds
	Counts  []uint64  // per-bucket (non-cumulative), last entry is +Inf
	Count   uint64
	Sum     float64
}

// Snapshot copies every series of the family.
func (hv *HistogramVec) Snapshot() []HistogramSnapshot {
	hv.mu.Lock()
	keys := make([]string, 0, len(hv.series))
	for k := range hv.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]HistogramSnapshot, 0, len(keys))
	for _, k := range keys {
		s := hv.series[k]
		snap := HistogramSnapshot{
			Labels:  append([]string(nil), s.values...),
			Buckets: append([]float64(nil), hv.buckets...),
			Counts:  make([]uint64, len(s.counts)),
			Count:   s.count.Load(),
			Sum:     math.Float64frombits(s.sumBits.Load()),
		}
		for i := range s.counts {
			snap.Counts[i] = s.counts[i].Load()
		}
		out = append(out, snap)
	}
	hv.mu.Unlock()
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts,
// returning the upper bound of the bucket holding that rank. With no
// observations it returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(s.Buckets) {
				return s.Buckets[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// Mean returns the average observed value, 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// CounterFunc exports a value read from fn at scrape time — used to
// surface existing atomic counters (orb.Stats) without double counting.
type CounterFunc struct {
	fname string
	help  string
	fn    func() uint64
}

// NewCounterFunc registers a scrape-time counter backed by fn.
func (r *Registry) NewCounterFunc(name, help string, fn func() uint64) {
	r.register(&CounterFunc{fname: name, help: help, fn: fn})
}

func (cf *CounterFunc) name() string { return cf.fname }

func (cf *CounterFunc) write(w io.Writer, _ bool) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", cf.fname, cf.help, cf.fname, cf.fname, cf.fn())
}

// GaugeFunc exports a float gauge read from fn at scrape time.
type GaugeFunc struct {
	fname string
	help  string
	fn    func() float64
}

// NewGaugeFunc registers a scrape-time gauge backed by fn.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(&GaugeFunc{fname: name, help: help, fn: fn})
}

func (gf *GaugeFunc) name() string { return gf.fname }

func (gf *GaugeFunc) write(w io.Writer, _ bool) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", gf.fname, gf.help, gf.fname, gf.fname, gf.fn())
}

// MultiGaugeFunc exports a labeled gauge family whose series are
// enumerated at scrape time — e.g. per-connection inflight counts, where
// the set of live connections changes constantly and a hot-path
// series-per-peer registry would be waste.
type MultiGaugeFunc struct {
	fname  string
	help   string
	labels []string
	fn     func(emit func(labelValues []string, v float64))
}

// NewMultiGaugeFunc registers a scrape-time labeled gauge family. fn is
// called per scrape and emits one series per call to emit; the number of
// label values must match the declared labels.
func (r *Registry) NewMultiGaugeFunc(name, help string, labels []string, fn func(emit func(labelValues []string, v float64))) {
	r.register(&MultiGaugeFunc{fname: name, help: help, labels: labels, fn: fn})
}

func (mg *MultiGaugeFunc) name() string { return mg.fname }

func (mg *MultiGaugeFunc) write(w io.Writer, _ bool) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", mg.fname, mg.help, mg.fname)
	mg.fn(func(values []string, v float64) {
		if len(values) != len(mg.labels) {
			return
		}
		fmt.Fprintf(w, "%s%s %g\n", mg.fname, labelString(mg.labels, values), v)
	})
}

// MultiCounterFunc is the counter analogue of MultiGaugeFunc: a labeled
// counter family enumerated at scrape time, for counters kept in fixed
// atomic arrays on the hot path (e.g. per-class admission sheds) rather
// than in a series map.
type MultiCounterFunc struct {
	fname  string
	help   string
	labels []string
	fn     func(emit func(labelValues []string, v uint64))
}

// NewMultiCounterFunc registers a scrape-time labeled counter family. fn
// is called per scrape and emits one series per call to emit; the number
// of label values must match the declared labels.
func (r *Registry) NewMultiCounterFunc(name, help string, labels []string, fn func(emit func(labelValues []string, v uint64))) {
	r.register(&MultiCounterFunc{fname: name, help: help, labels: labels, fn: fn})
}

func (mc *MultiCounterFunc) name() string { return mc.fname }

func (mc *MultiCounterFunc) write(w io.Writer, _ bool) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", mc.fname, mc.help, mc.fname)
	mc.fn(func(values []string, v uint64) {
		if len(values) != len(mc.labels) {
			return
		}
		fmt.Fprintf(w, "%s%s %d\n", mc.fname, labelString(mc.labels, values), v)
	})
}
