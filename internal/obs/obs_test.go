package obs

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestSpanParentage(t *testing.T) {
	tr := NewTracer("test")
	ctx, root := tr.Start(context.Background(), "root")
	cctx, child := tr.Start(ctx, "child")
	_, grand := tr.Start(cctx, "grandchild")

	if root.Context().TraceID.IsZero() {
		t.Fatal("root has no trace id")
	}
	if child.Context().TraceID != root.Context().TraceID || grand.Context().TraceID != root.Context().TraceID {
		t.Fatal("children changed trace id")
	}
	if child.Parent() != root.Context().SpanID {
		t.Fatalf("child parent = %v, want root %v", child.Parent(), root.Context().SpanID)
	}
	if grand.Parent() != child.Context().SpanID {
		t.Fatalf("grandchild parent = %v, want child %v", grand.Parent(), child.Context().SpanID)
	}
	if !root.Parent().IsZero() {
		t.Fatal("root should have no parent")
	}
}

func TestRemoteParent(t *testing.T) {
	client := NewTracer("client")
	server := NewTracer("server")
	_, cs := client.Start(context.Background(), "call")

	sc, ok := DecodeTraceContext(EncodeTraceContext(cs.Context()))
	if !ok {
		t.Fatal("trace context did not round-trip")
	}
	_, ss := server.Start(context.Background(), "dispatch", WithRemoteParent(sc))
	if ss.Context().TraceID != cs.Context().TraceID {
		t.Fatal("remote parent did not propagate trace id")
	}
	if ss.Parent() != cs.Context().SpanID {
		t.Fatal("remote parent did not become the parent span")
	}
}

func TestDecodeTraceContextRejectsMalformed(t *testing.T) {
	if _, ok := DecodeTraceContext(nil); ok {
		t.Fatal("nil decoded")
	}
	if _, ok := DecodeTraceContext(make([]byte, 10)); ok {
		t.Fatal("short payload decoded")
	}
	if _, ok := DecodeTraceContext(make([]byte, 25)); ok {
		t.Fatal("all-zero payload decoded")
	}
}

func TestRingEvictsOldest(t *testing.T) {
	tr := NewTracer("test", WithRing(NewRing(2)))
	for i := 0; i < 3; i++ {
		_, s := tr.Start(context.Background(), "s")
		s.End()
	}
	if got := tr.Ring().Len(); got != 2 {
		t.Fatalf("ring holds %d spans, want 2", got)
	}
}

func TestSpanEndIdempotentAndNilSafe(t *testing.T) {
	tr := NewTracer("test", WithRing(NewRing(8)))
	_, s := tr.Start(context.Background(), "once")
	s.End()
	s.EndErr(errors.New("late"))
	if s.Err() != "" {
		t.Fatal("second End mutated the span")
	}
	if tr.Ring().Len() != 1 {
		t.Fatalf("span recorded %d times", tr.Ring().Len())
	}

	var nilSpan *Span
	nilSpan.End()
	nilSpan.AddEvent("e")
	nilSpan.SetAttr("k", "v")
	if nilSpan.Name() != "" || nilSpan.Duration() != 0 {
		t.Fatal("nil span accessors")
	}
}

func TestTracesGroupsByTraceID(t *testing.T) {
	tr := NewTracer("test", WithRing(NewRing(16)))
	ctx, root := tr.Start(context.Background(), "root")
	_, child := tr.Start(ctx, "child")
	child.End()
	root.End()
	_, other := tr.Start(context.Background(), "other")
	other.End()

	traces := tr.Ring().Traces()
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	for _, g := range traces {
		if g.TraceID == root.Context().TraceID && len(g.Spans) != 2 {
			t.Fatalf("root trace has %d spans, want 2", len(g.Spans))
		}
	}
}

func TestSamplingDeterministic(t *testing.T) {
	never := NewTracer("never", WithSample(0))
	_, s := never.Start(context.Background(), "x")
	s.End()
	if never.Ring().Len() != 0 {
		t.Fatal("sample=0 recorded a span")
	}
	// Children inherit the root's decision even under a sampling tracer.
	ctx, root := never.Start(context.Background(), "root")
	_, child := never.Start(ctx, "child")
	if child.Context().Sampled != root.Context().Sampled {
		t.Fatal("child sampling decision diverged from root")
	}
}

func TestRegistryPrometheusText(t *testing.T) {
	reg := NewRegistry()
	cv := reg.NewCounterVec("widget_total", "Widgets.", "kind")
	cv.With("round").Add(3)
	cv.With("square").Inc()
	hv := reg.NewHistogramVec("lat_seconds", "Latency.", []float64{0.1, 1}, "method")
	hv.With("solve").Observe(0.05)
	hv.With("solve").Observe(0.5)
	hv.With("solve").Observe(5)
	reg.NewCounterFunc("fn_total", "Fn.", func() uint64 { return 7 })
	reg.NewGaugeFunc("g", "G.", func() float64 { return 1.5 })

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`widget_total{kind="round"} 3`,
		`widget_total{kind="square"} 1`,
		`lat_seconds_bucket{method="solve",le="0.1"} 1`,
		`lat_seconds_bucket{method="solve",le="1"} 2`,
		`lat_seconds_bucket{method="solve",le="+Inf"} 3`,
		`lat_seconds_count{method="solve"} 3`,
		"# TYPE lat_seconds histogram",
		"fn_total 7",
		"g 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramSnapshotQuantile(t *testing.T) {
	reg := NewRegistry()
	hv := reg.NewHistogramVec("h", "H.", []float64{0.001, 0.01, 0.1}, "m")
	h := hv.With("op")
	for i := 0; i < 90; i++ {
		h.Observe(0.0005)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.05)
	}
	snaps := hv.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshots", len(snaps))
	}
	s := snaps[0]
	if q := s.Quantile(0.5); q != 0.001 {
		t.Fatalf("p50 = %v, want 0.001", q)
	}
	if q := s.Quantile(0.99); q != 0.1 {
		t.Fatalf("p99 = %v, want 0.1", q)
	}
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v", b)
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	ob := NewObserver("test-svc")
	ob.ClientLatency().With("solve").Observe(0.01)
	_, s := ob.Tracer.Start(context.Background(), "solve")
	s.End()

	ln, err := Serve("127.0.0.1:0", ob.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	base := "http://" + ln.Addr().String()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, "rpc_client_latency_seconds_bucket") {
		t.Errorf("/metrics missing latency histogram:\n%s", metrics)
	}
	traces := get("/debug/traces?n=5")
	if !strings.Contains(traces, s.Context().TraceID.String()) {
		t.Errorf("/debug/traces missing trace id:\n%s", traces)
	}
}

func TestStartSpanUsesParentTracer(t *testing.T) {
	tr := NewTracer("svc", WithRing(NewRing(8)))
	ctx, root := tr.Start(context.Background(), "root")
	_, child := StartSpan(ctx, "lib-span")
	child.End()
	root.End()
	if tr.Ring().Len() != 2 {
		t.Fatalf("library span did not land in the parent's ring (len=%d)", tr.Ring().Len())
	}
}

func TestSpanDuration(t *testing.T) {
	tr := NewTracer("t")
	_, s := tr.Start(context.Background(), "x")
	time.Sleep(time.Millisecond)
	s.End()
	if s.Duration() <= 0 {
		t.Fatal("non-positive duration")
	}
}
