package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// traceJSON is the /debug/traces wire shape for one trace.
type traceJSON struct {
	TraceID    string     `json:"trace_id"`
	Start      time.Time  `json:"start"`
	DurationMS float64    `json:"duration_ms"`
	Spans      []spanJSON `json:"spans"`
}

type spanJSON struct {
	SpanID     string  `json:"span_id"`
	Parent     string  `json:"parent,omitempty"`
	Name       string  `json:"name"`
	Service    string  `json:"service"`
	DurationMS float64 `json:"duration_ms"`
	Err        string  `json:"err,omitempty"`
	Attrs      []Attr  `json:"attrs,omitempty"`
	Events     []Event `json:"events,omitempty"`
}

func spanToJSON(s *Span) spanJSON {
	j := spanJSON{
		SpanID:     s.Context().SpanID.String(),
		Name:       s.Name(),
		Service:    s.Service(),
		DurationMS: float64(s.Duration()) / float64(time.Millisecond),
		Err:        s.Err(),
		Attrs:      s.Attrs(),
		Events:     s.Events(),
	}
	if !s.Parent().IsZero() {
		j.Parent = s.Parent().String()
	}
	return j
}

// Handler serves the observability endpoints over reg and ring:
//
//	/metrics       — Prometheus text exposition format; ?exemplars=1 (or
//	                 Accept: application/openmetrics-text) adds
//	                 OpenMetrics exemplar annotations linking hot
//	                 histogram buckets to trace ids
//	/debug/traces  — recent traces as JSON, slowest first (?n= limits)
func Handler(reg *Registry, ring *Ring) http.Handler {
	mux := http.NewServeMux()
	registerMetricsAndTraces(mux, reg, ring)
	return mux
}

func registerMetricsAndTraces(mux *http.ServeMux, reg *Registry, ring *Ring) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("exemplars") == "1" ||
			strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			reg.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		n := 50
		if v := r.URL.Query().Get("n"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
				n = parsed
			}
		}
		traces := ring.Traces()
		if len(traces) > n {
			traces = traces[:n]
		}
		out := make([]traceJSON, 0, len(traces))
		for _, tr := range traces {
			tj := traceJSON{
				TraceID:    tr.TraceID.String(),
				Start:      tr.Start,
				DurationMS: float64(tr.Duration) / float64(time.Millisecond),
			}
			for _, s := range tr.Spans {
				tj.Spans = append(tj.Spans, spanToJSON(s))
			}
			out = append(out, tj)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
}

// flightJSON is the /debug/flightrec document.
type flightJSON struct {
	Service string             `json:"service"`
	Total   uint64             `json:"total"`
	Records []flightRecordJSON `json:"records"`
}

// Handler returns the observer's full HTTP surface:
//
//	/metrics          — Prometheus text format (?exemplars=1 for OpenMetrics)
//	/debug/traces     — recent traces, slowest first
//	/debug/flightrec  — the black-box ring as JSON, oldest first (?n= keeps
//	                    only the newest n)
//	/debug/pprof/     — the standard runtime profiles
//	/healthz          — structured component health, always 200
//	/readyz           — 200 when every probe passes, 503 otherwise
func (ob *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	registerMetricsAndTraces(mux, ob.Registry, ob.Ring)

	mux.HandleFunc("/debug/flightrec", func(w http.ResponseWriter, r *http.Request) {
		recs := ob.Flight.Snapshot()
		if v := r.URL.Query().Get("n"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n >= 0 && n < len(recs) {
				recs = recs[len(recs)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(flightJSON{Service: ob.Service, Total: ob.Flight.Total(), Records: recordsToJSON(recs)})
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		rep := ob.healthReport()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		rep := ob.healthReport()
		w.Header().Set("Content-Type", "application/json")
		if !rep.OK() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
	return mux
}

func (ob *Observer) healthReport() HealthReport {
	rep := ob.Health.Check()
	rep.Service = ob.Service
	if ob.Anomalies != nil {
		rep.Anomalies = ob.Anomalies.Recent()
	}
	return rep
}

// Serve binds addr (":0" picks a free port) and serves handler in the
// background; the returned listener reports the bound address. Callers
// close the listener to stop.
func Serve(addr string, handler http.Handler) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: handler}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}
