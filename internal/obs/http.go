package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"strconv"
	"time"
)

// traceJSON is the /debug/traces wire shape for one trace.
type traceJSON struct {
	TraceID    string     `json:"trace_id"`
	Start      time.Time  `json:"start"`
	DurationMS float64    `json:"duration_ms"`
	Spans      []spanJSON `json:"spans"`
}

type spanJSON struct {
	SpanID     string  `json:"span_id"`
	Parent     string  `json:"parent,omitempty"`
	Name       string  `json:"name"`
	Service    string  `json:"service"`
	DurationMS float64 `json:"duration_ms"`
	Err        string  `json:"err,omitempty"`
	Attrs      []Attr  `json:"attrs,omitempty"`
	Events     []Event `json:"events,omitempty"`
}

func spanToJSON(s *Span) spanJSON {
	j := spanJSON{
		SpanID:     s.Context().SpanID.String(),
		Name:       s.Name(),
		Service:    s.Service(),
		DurationMS: float64(s.Duration()) / float64(time.Millisecond),
		Err:        s.Err(),
		Attrs:      s.Attrs(),
		Events:     s.Events(),
	}
	if !s.Parent().IsZero() {
		j.Parent = s.Parent().String()
	}
	return j
}

// Handler serves the observability endpoints over reg and ring:
//
//	/metrics       — Prometheus text exposition format
//	/debug/traces  — recent traces as JSON, slowest first (?n= limits)
func Handler(reg *Registry, ring *Ring) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		n := 50
		if v := r.URL.Query().Get("n"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
				n = parsed
			}
		}
		traces := ring.Traces()
		if len(traces) > n {
			traces = traces[:n]
		}
		out := make([]traceJSON, 0, len(traces))
		for _, tr := range traces {
			tj := traceJSON{
				TraceID:    tr.TraceID.String(),
				Start:      tr.Start,
				DurationMS: float64(tr.Duration) / float64(time.Millisecond),
			}
			for _, s := range tr.Spans {
				tj.Spans = append(tj.Spans, spanToJSON(s))
			}
			out = append(out, tj)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	return mux
}

// Handler returns the observer's HTTP endpoints.
func (ob *Observer) Handler() http.Handler { return Handler(ob.Registry, ob.Ring) }

// Serve binds addr (":0" picks a free port) and serves handler in the
// background; the returned listener reports the bound address. Callers
// close the listener to stop.
func Serve(addr string, handler http.Handler) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: handler}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}
