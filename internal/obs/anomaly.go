package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// AnomalyKind names one class of runtime anomaly that can trip the
// flight-recorder dump.
type AnomalyKind string

// Anomaly kinds. Breaker opens and queue saturation are reported as
// occurrences and trip once their burst rule fires; a single breaker
// open has a rule threshold of 1, so it trips immediately.
const (
	// AnomalyBreakerOpen fires when a circuit breaker transitions to open.
	AnomalyBreakerOpen AnomalyKind = "breaker_open"
	// AnomalyQueueSaturated fires when the reactor finds the dispatch
	// queue full at admission.
	AnomalyQueueSaturated AnomalyKind = "dispatch_queue_saturated"
	// AnomalyDeadlineShed accumulates deadline-expired sheds; a burst
	// trips as "deadline_shed".
	AnomalyDeadlineShed AnomalyKind = "deadline_shed"
	// AnomalyRecovery accumulates client-side recoveries (failover +
	// checkpoint restore); a burst trips as a recovery storm.
	AnomalyRecovery AnomalyKind = "recovery"
	// AnomalyAdmissionShed accumulates QoS admission rejections (queue
	// caps, tenant throttles, degraded-mode gates); a burst trips when
	// shedding turns from incidental into sustained.
	AnomalyAdmissionShed AnomalyKind = "admission_shed"
	// AnomalyDegradeMode fires on every degradation-controller mode
	// transition (via SignalTrip, with the transition as detail).
	AnomalyDegradeMode AnomalyKind = "degrade_mode"
)

// BurstRule trips an anomaly when Threshold occurrences land within
// Window. Threshold 1 trips on every (cooldown-limited) occurrence.
type BurstRule struct {
	Threshold int
	Window    time.Duration
}

// Anomaly is one tripped anomaly: what fired and why.
type Anomaly struct {
	Kind   AnomalyKind `json:"kind"`
	Detail string      `json:"detail,omitempty"`
	Time   time.Time   `json:"time"`
	// Count is how many occurrences accumulated inside the burst window.
	Count int `json:"count"`
}

// AnomalyOptions configures the sink.
type AnomalyOptions struct {
	// DumpDir is where flight-recorder dumps are written; empty disables
	// dumping (anomalies are still counted and reported to OnAnomaly).
	DumpDir string
	// Cooldown is the minimum interval between dumps of the same kind
	// (default 30s) so a flapping breaker can't fill the disk.
	Cooldown time.Duration
	// Bursts overrides the per-kind burst rules (see defaultBurstRules).
	Bursts map[AnomalyKind]BurstRule
	// OnAnomaly, when set, is called (on the tripping goroutine, before
	// the asynchronous dump) for every tripped anomaly.
	OnAnomaly func(Anomaly)
}

func defaultBurstRules() map[AnomalyKind]BurstRule {
	return map[AnomalyKind]BurstRule{
		AnomalyBreakerOpen:    {Threshold: 1, Window: time.Second},
		AnomalyQueueSaturated: {Threshold: 4, Window: 5 * time.Second},
		AnomalyDeadlineShed:   {Threshold: 16, Window: 10 * time.Second},
		AnomalyRecovery:       {Threshold: 8, Window: 10 * time.Second},
		AnomalyAdmissionShed:  {Threshold: 32, Window: 10 * time.Second},
		AnomalyDegradeMode:    {Threshold: 1, Window: time.Second},
	}
}

// Anomalies is the anomaly sink: hot paths report occurrences, the sink
// applies burst rules, and a trip snapshots the flight recorder (plus
// goroutine and heap profiles) into a JSON dump — the black box is
// written out the moment something goes wrong, not when an operator
// gets around to it.
type Anomalies struct {
	service string
	flight  *FlightRecorder
	opts    AnomalyOptions
	rules   map[AnomalyKind]BurstRule

	mu       sync.Mutex
	windows  map[AnomalyKind][]time.Time
	lastDump map[AnomalyKind]time.Time
	recent   []Anomaly // last few trips, newest last, for /healthz
	dumps    []string  // paths of dumps written

	trips   CounterVec
	tripped atomic.Uint64
	wg      sync.WaitGroup
}

// NewAnomalies builds a sink that snapshots flight (may be nil: dumps
// then carry no records).
func NewAnomalies(service string, flight *FlightRecorder, opts AnomalyOptions) *Anomalies {
	if opts.Cooldown <= 0 {
		opts.Cooldown = 30 * time.Second
	}
	rules := defaultBurstRules()
	for k, r := range opts.Bursts {
		rules[k] = r
	}
	return &Anomalies{
		service:  service,
		flight:   flight,
		opts:     opts,
		rules:    rules,
		windows:  make(map[AnomalyKind][]time.Time),
		lastDump: make(map[AnomalyKind]time.Time),
		trips:    CounterVec{fname: "obs_anomaly_trips_total", labels: []string{"kind"}, series: make(map[string]*counterSeries)},
	}
}

// ExportMetrics registers obs_anomaly_trips_total{kind} with reg.
func (a *Anomalies) ExportMetrics(reg *Registry) {
	a.trips.help = "Anomalies tripped, by kind."
	reg.register(&a.trips)
}

// Occur reports one occurrence of kind; the burst rule decides whether
// it trips. Safe from hot paths — the common (non-tripping) case is one
// mutex and a slice append into a reused window buffer.
func (a *Anomalies) Occur(kind AnomalyKind) { a.occur(kind, "") }

// Trip reports an anomaly that should fire regardless of burst
// accounting (threshold-1 semantics) with a human-readable detail.
func (a *Anomalies) Trip(kind AnomalyKind, detail string) {
	a.fire(kind, detail, 1, time.Now())
}

func (a *Anomalies) occur(kind AnomalyKind, detail string) {
	rule, ok := a.rules[kind]
	if !ok {
		rule = BurstRule{Threshold: 1, Window: time.Second}
	}
	now := time.Now()
	a.mu.Lock()
	w := a.windows[kind]
	// Drop occurrences that fell out of the window.
	keep := w[:0]
	for _, t := range w {
		if now.Sub(t) <= rule.Window {
			keep = append(keep, t)
		}
	}
	keep = append(keep, now)
	a.windows[kind] = keep
	n := len(keep)
	burst := n >= rule.Threshold
	if burst {
		// Reset the window so a sustained condition re-trips only after
		// accumulating a fresh burst (the cooldown limits dumping anyway).
		a.windows[kind] = keep[:0]
	}
	a.mu.Unlock()
	if burst {
		a.fire(kind, detail, n, now)
	}
}

// fire records a tripped anomaly and, cooldown permitting, dumps.
func (a *Anomalies) fire(kind AnomalyKind, detail string, count int, now time.Time) {
	an := Anomaly{Kind: kind, Detail: detail, Time: now, Count: count}
	a.tripped.Add(1)
	a.trips.With1(string(kind)).Inc()

	a.mu.Lock()
	a.recent = append(a.recent, an)
	if len(a.recent) > 32 {
		a.recent = a.recent[len(a.recent)-32:]
	}
	dump := a.opts.DumpDir != "" && now.Sub(a.lastDump[kind]) >= a.opts.Cooldown
	if dump {
		a.lastDump[kind] = now
	}
	a.mu.Unlock()

	if a.opts.OnAnomaly != nil {
		a.opts.OnAnomaly(an)
	}
	if dump {
		// Dump off the tripping goroutine: trips come from hot paths and
		// breaker-internal locks, and the dump does file IO and profile
		// collection.
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			if path, err := a.writeDump(an); err != nil {
				log.Printf("obs: anomaly dump failed: %v", err)
			} else {
				a.mu.Lock()
				a.dumps = append(a.dumps, path)
				a.mu.Unlock()
				log.Printf("obs: anomaly %s tripped, flight recorder dumped to %s", kind, path)
			}
		}()
	}
}

// Tripped returns the total number of anomalies tripped.
func (a *Anomalies) Tripped() uint64 { return a.tripped.Load() }

// Recent returns the most recent trips, oldest first.
func (a *Anomalies) Recent() []Anomaly {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Anomaly(nil), a.recent...)
}

// Dumps returns the paths of dump artifacts written so far.
func (a *Anomalies) Dumps() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.dumps...)
}

// Wait blocks until in-flight dump writes finish — for tests and
// orderly shutdown.
func (a *Anomalies) Wait() { a.wg.Wait() }

// anomalyDump is the JSON artifact layout.
type anomalyDump struct {
	Service    string             `json:"service"`
	Anomaly    Anomaly            `json:"anomaly"`
	DumpedAt   time.Time          `json:"dumped_at"`
	Records    []flightRecordJSON `json:"records"`
	Goroutines string             `json:"goroutines"`
	HeapFile   string             `json:"heap_profile,omitempty"`
}

// writeDump writes the flight-recorder snapshot, an aggregated goroutine
// profile and a heap profile for anomaly an, returning the JSON path.
func (a *Anomalies) writeDump(an Anomaly) (string, error) {
	if err := os.MkdirAll(a.opts.DumpDir, 0o755); err != nil {
		return "", err
	}
	stem := fmt.Sprintf("flightrec-%s-%s-%d", sanitize(a.service), sanitize(string(an.Kind)), an.Time.UnixNano())
	path := filepath.Join(a.opts.DumpDir, stem+".json")

	var recs []FlightRecord
	if a.flight != nil {
		recs = a.flight.Snapshot()
	}
	var gbuf bytes.Buffer
	if p := pprof.Lookup("goroutine"); p != nil {
		_ = p.WriteTo(&gbuf, 1)
	}
	d := anomalyDump{
		Service:    a.service,
		Anomaly:    an,
		DumpedAt:   time.Now(),
		Records:    recordsToJSON(recs),
		Goroutines: gbuf.String(),
	}
	// Heap profile rides along as a sibling pprof file (binary format;
	// useless inlined in JSON).
	heapPath := filepath.Join(a.opts.DumpDir, stem+".heap.pb.gz")
	if hf, err := os.Create(heapPath); err == nil {
		if p := pprof.Lookup("heap"); p != nil && p.WriteTo(hf, 0) == nil {
			d.HeapFile = filepath.Base(heapPath)
		}
		hf.Close()
	}
	raw, err := json.MarshalIndent(&d, "", " ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// sanitize keeps dump filenames shell-friendly.
func sanitize(s string) string {
	out := []byte(s)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// defaultAnomalies is the process-wide sink that library layers (orb's
// breaker and reactor, ft's recovery path) report into without plumbing
// a handle through every constructor — same pattern as the Default
// tracer. Nil until a daemon wires one; reporting is then a single
// atomic load and nil check.
var defaultAnomalies atomic.Pointer[Anomalies]

// SetDefaultAnomalies installs (or, with nil, clears) the process-wide
// anomaly sink.
func SetDefaultAnomalies(a *Anomalies) { defaultAnomalies.Store(a) }

// DefaultAnomalies returns the process-wide sink, or nil.
func DefaultAnomalies() *Anomalies { return defaultAnomalies.Load() }

// Signal reports one occurrence of kind to the default sink, if any.
// This is the hot-path entry point: with no sink installed it is one
// atomic load.
func Signal(kind AnomalyKind) {
	if a := defaultAnomalies.Load(); a != nil {
		a.Occur(kind)
	}
}

// SignalTrip trips kind on the default sink immediately (no burst
// accounting), if one is installed.
func SignalTrip(kind AnomalyKind, detail string) {
	if a := defaultAnomalies.Load(); a != nil {
		a.Trip(kind, detail)
	}
}
