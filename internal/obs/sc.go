package obs

// Wire codec for the SCTrace GIOP service context. The payload is a
// fixed 25 bytes: 16-byte trace id, 8-byte span id, 1 flag byte (bit 0 =
// sampled). Peers that predate SCTrace carry the context through
// untouched — service contexts with unknown IDs are preserved verbatim
// by the giop layer — so tracing degrades gracefully across mixed
// deployments.

const traceContextLen = 16 + 8 + 1

// EncodeTraceContext serializes sc for the SCTrace service context.
func EncodeTraceContext(sc SpanContext) []byte {
	buf := make([]byte, traceContextLen)
	copy(buf[0:16], sc.TraceID[:])
	copy(buf[16:24], sc.SpanID[:])
	if sc.Sampled {
		buf[24] = 1
	}
	return buf
}

// DecodeTraceContext parses an SCTrace payload. It reports false for
// malformed or all-zero payloads so callers can fall back to starting a
// fresh trace.
func DecodeTraceContext(data []byte) (SpanContext, bool) {
	if len(data) != traceContextLen {
		return SpanContext{}, false
	}
	var sc SpanContext
	copy(sc.TraceID[:], data[0:16])
	copy(sc.SpanID[:], data[16:24])
	sc.Sampled = data[24]&1 != 0
	if sc.TraceID.IsZero() {
		return SpanContext{}, false
	}
	return sc, true
}
