package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Outcome classifies how one request ended, for flight-recorder records.
type Outcome uint8

// Flight-record outcomes.
const (
	// OutcomeOK is a successful reply.
	OutcomeOK Outcome = iota
	// OutcomeUserException is a reply carrying a user exception.
	OutcomeUserException
	// OutcomeSystemException is a reply carrying a system exception.
	OutcomeSystemException
	// OutcomeForward is a LOCATION_FORWARD reply.
	OutcomeForward
	// OutcomeShed is a request rejected by deadline-aware admission
	// (its propagated deadline expired before a servant ran).
	OutcomeShed
	// OutcomeOneway is a oneway dispatch (no reply exists).
	OutcomeOneway
	// OutcomeTransportError is a client-side call that failed before a
	// reply arrived (COMM_FAILURE, cancellation, timeout).
	OutcomeTransportError
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeUserException:
		return "user_exception"
	case OutcomeSystemException:
		return "system_exception"
	case OutcomeForward:
		return "forward"
	case OutcomeShed:
		return "shed"
	case OutcomeOneway:
		return "oneway"
	case OutcomeTransportError:
		return "transport_error"
	default:
		return "unknown"
	}
}

// FlightRecord is one per-request black-box record. All fields are plain
// values (interned strings, fixed arrays), so recording one never
// allocates — the record path must stay cheap enough to run on every
// request of a saturated server.
type FlightRecord struct {
	// Time is the completion instant in Unix nanoseconds.
	Time int64
	// Op is the operation name (interned by the frame reader).
	Op string
	// Peer is the remote address of the calling/called connection.
	Peer string
	// Side distinguishes server dispatches from client calls.
	Side Side
	// Bytes is the request body size.
	Bytes int32
	// QueueWait is admission → dequeue time in nanoseconds (server side;
	// zero for client records).
	QueueWait int64
	// Service is dequeue → dispatch-done time in nanoseconds (round-trip
	// time for client records).
	Service int64
	// Outcome classifies how the request ended.
	Outcome Outcome
	// Class is the request's QoS priority class name ("critical",
	// "normal", "batch"); empty for records from QoS-unaware paths.
	// Callers must pass an interned/constant string (orb.Priority.String
	// returns constants) to keep recording allocation-free.
	Class string
	// Trace is the request's 128-bit trace id (zero when the call carried
	// no sampled trace context).
	Trace TraceID
}

// Side is the record's vantage point.
type Side uint8

// Record sides.
const (
	// SideServer is a dispatch observed by the reactor.
	SideServer Side = iota
	// SideClient is an outbound call observed by the invoker.
	SideClient
)

// String implements fmt.Stringer.
func (s Side) String() string {
	if s == SideClient {
		return "client"
	}
	return "server"
}

// FlightRecorder is the black-box ring: a fixed-size buffer of the most
// recent FlightRecords, overwritten oldest-first. Recording is a mutex,
// a cursor bump and a struct copy — zero allocations at steady state —
// so it stays on even when nobody is looking; its value is precisely
// that the seconds before an anomaly are already captured when the
// anomaly trips.
type FlightRecorder struct {
	mu    sync.Mutex
	recs  []FlightRecord
	next  int
	full  bool
	total uint64
}

// DefaultFlightRecorderSize holds a few seconds of saturated-server
// history without measurable memory cost.
const DefaultFlightRecorderSize = 4096

// NewFlightRecorder creates a recorder holding up to capacity records.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &FlightRecorder{recs: make([]FlightRecord, capacity)}
}

// Record appends one record, overwriting the oldest when full. It is
// safe for concurrent use and never allocates.
func (f *FlightRecorder) Record(r FlightRecord) {
	f.mu.Lock()
	f.recs[f.next] = r
	f.next++
	if f.next == len(f.recs) {
		f.next = 0
		f.full = true
	}
	f.total++
	f.mu.Unlock()
}

// Len returns the number of buffered records.
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.full {
		return len(f.recs)
	}
	return f.next
}

// Total returns the count of records ever written (including overwritten
// ones) — exported as obs_flight_records_total.
func (f *FlightRecorder) Total() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Snapshot copies the buffered records, oldest first.
func (f *FlightRecorder) Snapshot() []FlightRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.full {
		return append([]FlightRecord(nil), f.recs[:f.next]...)
	}
	out := make([]FlightRecord, 0, len(f.recs))
	out = append(out, f.recs[f.next:]...)
	out = append(out, f.recs[:f.next]...)
	return out
}

// ExportMetrics registers the recorder's own meta-metrics with reg.
func (f *FlightRecorder) ExportMetrics(reg *Registry) {
	reg.NewCounterFunc("obs_flight_records_total",
		"Flight-recorder records written (including overwritten ones).", f.Total)
}

// WriteJSON serializes the current snapshot (oldest first) to w in the
// same record shape /debug/flightrec and anomaly dumps use — for tools
// that save a run's black box to a file.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(recordsToJSON(f.Snapshot()))
}

// flightRecordJSON is the /debug/flightrec and dump wire shape.
type flightRecordJSON struct {
	Time        time.Time `json:"time"`
	Side        string    `json:"side"`
	Op          string    `json:"op"`
	Peer        string    `json:"peer"`
	Bytes       int32     `json:"bytes"`
	QueueWaitNS int64     `json:"queue_wait_ns"`
	ServiceNS   int64     `json:"service_ns"`
	Outcome     string    `json:"outcome"`
	Class       string    `json:"class,omitempty"`
	TraceID     string    `json:"trace_id,omitempty"`
}

func recordToJSON(r FlightRecord) flightRecordJSON {
	j := flightRecordJSON{
		Time:        time.Unix(0, r.Time),
		Side:        r.Side.String(),
		Op:          r.Op,
		Peer:        r.Peer,
		Bytes:       r.Bytes,
		QueueWaitNS: r.QueueWait,
		ServiceNS:   r.Service,
		Outcome:     r.Outcome.String(),
		Class:       r.Class,
	}
	if !r.Trace.IsZero() {
		j.TraceID = r.Trace.String()
	}
	return j
}

// recordsToJSON converts a snapshot for serialization.
func recordsToJSON(recs []FlightRecord) []flightRecordJSON {
	out := make([]flightRecordJSON, len(recs))
	for i, r := range recs {
		out[i] = recordToJSON(r)
	}
	return out
}
