package obs

import (
	"context"
	"io"
	"log/slog"
)

// traceHandler decorates an slog.Handler with the trace and span ids of
// the span carried by the record's context, correlating log lines with
// /debug/traces output.
type traceHandler struct {
	inner slog.Handler
}

// NewTraceHandler wraps inner so every record logged with a span-bearing
// context gains trace_id and span_id attributes.
func NewTraceHandler(inner slog.Handler) slog.Handler {
	return &traceHandler{inner: inner}
}

func (h *traceHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *traceHandler) Handle(ctx context.Context, rec slog.Record) error {
	if span := SpanFromContext(ctx); span != nil {
		sc := span.Context()
		rec.AddAttrs(
			slog.String("trace_id", sc.TraceID.String()),
			slog.String("span_id", sc.SpanID.String()),
		)
	}
	return h.inner.Handle(ctx, rec)
}

func (h *traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &traceHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *traceHandler) WithGroup(name string) slog.Handler {
	return &traceHandler{inner: h.inner.WithGroup(name)}
}

// NewLogger builds a trace-aware text logger for one component: records
// carry component=name, and any record logged via the *Context methods
// gains trace_id/span_id from the context's span.
func NewLogger(w io.Writer, component string, level slog.Level) *slog.Logger {
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})
	return slog.New(NewTraceHandler(h)).With("component", component)
}
