package obs

import (
	"sort"
	"sync"
	"time"
)

// Ring is a fixed-capacity buffer of completed spans. When full, new
// spans overwrite the oldest — the /debug/traces endpoint and
// `rosenbench -trace` read recent history from it.
type Ring struct {
	mu    sync.Mutex
	spans []*Span
	next  int
	full  bool
}

// NewRing creates a ring holding up to capacity completed spans.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{spans: make([]*Span, capacity)}
}

func (r *Ring) add(s *Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans[r.next] = s
	r.next++
	if r.next == len(r.spans) {
		r.next = 0
		r.full = true
	}
}

// Spans returns the buffered spans, oldest first.
func (r *Ring) Spans() []*Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]*Span(nil), r.spans[:r.next]...)
	}
	out := make([]*Span, 0, len(r.spans))
	out = append(out, r.spans[r.next:]...)
	out = append(out, r.spans[:r.next]...)
	return out
}

// Len returns the number of buffered spans.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.spans)
	}
	return r.next
}

// Trace is the ring's view of one trace: every buffered span sharing a
// trace id, plus the envelope timing derived from them.
type Trace struct {
	TraceID  TraceID
	Spans    []*Span // in start order
	Start    time.Time
	Duration time.Duration // earliest start to latest end
}

// Traces groups the buffered spans by trace id, slowest trace first.
func (r *Ring) Traces() []Trace {
	byID := make(map[TraceID][]*Span)
	for _, s := range r.Spans() {
		byID[s.Context().TraceID] = append(byID[s.Context().TraceID], s)
	}
	out := make([]Trace, 0, len(byID))
	for id, spans := range byID {
		sort.Slice(spans, func(i, j int) bool { return spans[i].StartTime().Before(spans[j].StartTime()) })
		tr := Trace{TraceID: id, Spans: spans, Start: spans[0].StartTime()}
		var latest time.Time
		for _, s := range spans {
			if end := s.StartTime().Add(s.Duration()); end.After(latest) {
				latest = end
			}
		}
		tr.Duration = latest.Sub(tr.Start)
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	return out
}
