package obs

import (
	"context"
	"errors"
	"time"

	"repro/internal/giop"
)

// Observer bundles a tracer, metric registry and span ring for one
// process, and implements the ORB's call-interceptor hooks: it starts a
// client span and injects the SCTrace service context on request send,
// continues the remote trace on dispatch, and feeds per-method latency
// histograms and error counters on completion.
//
// Observer implements orb.CallInterceptor structurally — obs cannot
// import orb (orb imports obs for Stats export), so the interface match
// is by shape, checked by a compile-time assertion in the orb package's
// tests.
type Observer struct {
	Service  string
	Tracer   *Tracer
	Registry *Registry
	Ring     *Ring

	clientLatency *HistogramVec
	serverLatency *HistogramVec
	rpcErrors     *CounterVec
}

// NewObserver creates a ready-to-attach Observer for service, with the
// standard RPC metric families registered.
func NewObserver(service string) *Observer {
	reg := NewRegistry()
	ring := NewRing(2048)
	ob := &Observer{
		Service:  service,
		Tracer:   NewTracer(service, WithRing(ring)),
		Registry: reg,
		Ring:     ring,
	}
	ob.clientLatency = reg.NewHistogramVec("rpc_client_latency_seconds",
		"Outbound request latency by method.", DefaultLatencyBuckets, "method")
	ob.serverLatency = reg.NewHistogramVec("rpc_server_latency_seconds",
		"Dispatch latency by method.", DefaultLatencyBuckets, "method")
	ob.rpcErrors = reg.NewCounterVec("rpc_errors_total",
		"RPC failures by side, method and exception kind.", "side", "method", "kind")
	return ob
}

// ClientLatency returns the outbound latency histogram family.
func (ob *Observer) ClientLatency() *HistogramVec { return ob.clientLatency }

// ServerLatency returns the dispatch latency histogram family.
func (ob *Observer) ServerLatency() *HistogramVec { return ob.serverLatency }

// Keys under which the observer stashes its own spans in the context, so
// the completion hooks never mistake an application span (e.g. ft.invoke)
// for one they own.
type clientSpanKey struct{}
type serverSpanKey struct{}

// systemKinder is the structural shape of orb system exceptions
// (*orb.SystemException has SystemKind); matching by shape instead of
// type keeps obs free of an orb import.
type systemKinder interface{ SystemKind() string }

// errKind maps an invocation error to a counter label.
func errKind(err error) string {
	var sk systemKinder
	if errors.As(err, &sk) {
		return sk.SystemKind()
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return "DEADLINE"
	}
	if errors.Is(err, context.Canceled) {
		return "CANCELED"
	}
	return "ERROR"
}

// RequestSent starts the client span for an outbound request and injects
// its context into the SCTrace service context. Called by the ORB after
// message-level interceptors, before the bytes hit the wire.
func (ob *Observer) RequestSent(ctx context.Context, m *giop.Message) context.Context {
	tracer := ob.Tracer
	if parent := SpanFromContext(ctx); parent != nil && parent.tracer != nil {
		tracer = parent.tracer
	}
	ctx, span := tracer.Start(ctx, m.Operation,
		WithAttrs(String("side", "client"), String("key", m.ObjectKey)))
	m.SetContext(giop.SCTrace, EncodeTraceContext(span.Context()))
	return context.WithValue(ctx, clientSpanKey{}, span)
}

// ReplyReceived completes the client span and records latency and error
// counters. reply is nil for oneway sends and transport failures.
func (ob *Observer) ReplyReceived(ctx context.Context, req, reply *giop.Message, err error) {
	span, _ := ctx.Value(clientSpanKey{}).(*Span)
	if span != nil {
		ob.clientLatency.With(req.Operation).Observe(time.Since(span.StartTime()).Seconds())
	}
	switch {
	case err != nil:
		kind := errKind(err)
		ob.rpcErrors.With("client", req.Operation, kind).Inc()
		span.SetAttr("error_kind", kind)
		span.EndErr(err)
	case reply != nil && reply.ReplyStatus == giop.ReplySystemException:
		ob.rpcErrors.With("client", req.Operation, "SYSTEM_EXCEPTION").Inc()
		span.SetAttr("error_kind", "SYSTEM_EXCEPTION")
		span.End()
	case reply != nil && reply.ReplyStatus == giop.ReplyUserException:
		ob.rpcErrors.With("client", req.Operation, "USER_EXCEPTION").Inc()
		span.SetAttr("error_kind", "USER_EXCEPTION")
		span.End()
	default:
		span.End()
	}
}

// DispatchStart continues the caller's trace (from the SCTrace service
// context, when present) in a server span covering the dispatch. The
// span rides the returned context into the servant via ServerContext.
func (ob *Observer) DispatchStart(ctx context.Context, req *giop.Message) context.Context {
	opts := []SpanOption{WithAttrs(String("side", "server"), String("key", req.ObjectKey))}
	if sc, ok := DecodeTraceContext(req.Context(giop.SCTrace)); ok {
		opts = append(opts, WithRemoteParent(sc))
	}
	ctx, span := ob.Tracer.Start(ctx, req.Operation, opts...)
	return context.WithValue(ctx, serverSpanKey{}, span)
}

// DispatchEnd completes the server span and records dispatch latency and
// exception counters. reply is nil for oneway dispatches.
func (ob *Observer) DispatchEnd(ctx context.Context, req, reply *giop.Message) {
	span, _ := ctx.Value(serverSpanKey{}).(*Span)
	if span != nil {
		ob.serverLatency.With(req.Operation).Observe(time.Since(span.StartTime()).Seconds())
	}
	if reply != nil && reply.ReplyStatus != giop.ReplyNoException && reply.ReplyStatus != giop.ReplyLocationForward {
		kind := reply.ReplyStatus.String()
		ob.rpcErrors.With("server", req.Operation, kind).Inc()
		span.SetAttr("error_kind", kind)
	}
	span.End()
}
