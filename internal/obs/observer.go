package obs

import (
	"context"
	"errors"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/giop"
)

// Observer bundles the full diagnostics plane for one process — tracer,
// metric registry, span ring, flight recorder, anomaly sink and health
// probes — and implements the ORB's call-interceptor hooks: it starts a
// client span and injects the SCTrace service context on request send,
// continues the remote trace on dispatch, and feeds per-method latency
// histograms (with trace-linked exemplars) and error counters on
// completion.
//
// Observer implements orb.CallInterceptor structurally — obs cannot
// import orb (orb imports obs for Stats export), so the interface match
// is by shape, checked by a compile-time assertion in the orb package's
// tests.
//
// The interceptor hot path is allocation-lean by design: when the head
// sampler declines a trace, no Span is created at all — the client pins
// a pooled obsCall in the context (one allocation) so latency metrics
// still flow, the wire carries a pre-encoded "not sampled" SCTrace, and
// the server side adds nothing. The ≤2-allocs-per-call budget over an
// unobserved ORB is enforced by BenchmarkSyncCallObserved via benchgate.
type Observer struct {
	Service  string
	Tracer   *Tracer
	Registry *Registry
	Ring     *Ring
	// Flight is the per-process black-box recorder; the ORB's reactor
	// and client feed it when attached (see orb.ObserveOpts).
	Flight *FlightRecorder
	// Health aggregates component probes for /healthz and /readyz.
	Health *Health
	// Anomalies is the anomaly sink that auto-dumps Flight on trips.
	Anomalies *Anomalies

	sample        float64
	notSampledSC  []byte // pre-encoded SCTrace payload for unsampled calls
	clientLatency *HistogramVec
	serverLatency *HistogramVec
	rpcErrors     *CounterVec
}

// SampleNone disables head sampling entirely (metrics and the flight
// recorder stay on; no spans are recorded).
const SampleNone = -1

// ObserverOptions tunes NewObserverOpts. The zero value means: sample
// every trace, default ring and recorder sizes, no anomaly dumps.
type ObserverOptions struct {
	// Sample is the head-based trace sampling fraction in (0,1]; 0 means
	// the default (1: every trace). Use SampleNone for no sampling.
	Sample float64
	// RingSize bounds the completed-span ring (default 2048).
	RingSize int
	// FlightRecorderSize bounds the black-box ring (default 4096).
	FlightRecorderSize int
	// Anomaly configures the anomaly sink (burst rules, dump directory).
	Anomaly AnomalyOptions
}

// NewObserver creates a ready-to-attach Observer for service with
// default options: every trace sampled, no anomaly dump directory.
func NewObserver(service string) *Observer {
	return NewObserverOpts(service, ObserverOptions{})
}

// NewObserverOpts creates an Observer with explicit options.
func NewObserverOpts(service string, opts ObserverOptions) *Observer {
	if opts.Sample == 0 {
		opts.Sample = 1
	}
	if opts.RingSize <= 0 {
		opts.RingSize = 2048
	}
	if opts.FlightRecorderSize <= 0 {
		opts.FlightRecorderSize = DefaultFlightRecorderSize
	}
	reg := NewRegistry()
	ring := NewRing(opts.RingSize)
	flight := NewFlightRecorder(opts.FlightRecorderSize)
	ob := &Observer{
		Service:   service,
		Tracer:    NewTracer(service, WithRing(ring), WithSample(opts.Sample)),
		Registry:  reg,
		Ring:      ring,
		Flight:    flight,
		Health:    NewHealth(),
		Anomalies: NewAnomalies(service, flight, opts.Anomaly),
		sample:    opts.Sample,
	}
	// The shared SCTrace payload every unsampled outbound call carries: a
	// process-constant non-zero trace id with the sampled bit clear, so
	// the receiving reactor skips span creation without re-deciding.
	ob.notSampledSC = EncodeTraceContext(SpanContext{TraceID: newTraceID(), SpanID: newSpanID()})
	ob.clientLatency = reg.NewHistogramVec("rpc_client_latency_seconds",
		"Outbound request latency by method.", DefaultLatencyBuckets, "method")
	ob.serverLatency = reg.NewHistogramVec("rpc_server_latency_seconds",
		"Dispatch latency by method.", DefaultLatencyBuckets, "method")
	ob.rpcErrors = reg.NewCounterVec("rpc_errors_total",
		"RPC failures by side, method and exception kind.", "side", "method", "kind")
	flight.ExportMetrics(reg)
	ob.Anomalies.ExportMetrics(reg)
	return ob
}

// ClientLatency returns the outbound latency histogram family.
func (ob *Observer) ClientLatency() *HistogramVec { return ob.clientLatency }

// ServerLatency returns the dispatch latency histogram family.
func (ob *Observer) ServerLatency() *HistogramVec { return ob.serverLatency }

// obsCall is the per-outbound-call state the observer pins in the
// context between RequestSent and ReplyReceived. Pooled so the
// unsampled fast path costs one allocation (the context value) per
// call.
type obsCall struct {
	span  *Span
	start time.Time
}

var obsCallPool = sync.Pool{New: func() any { return new(obsCall) }}

// Keys under which the observer stashes its own state in the context,
// so the completion hooks never mistake an application span (e.g.
// ft.invoke) for one they own.
type obsCallKey struct{}
type serverSpanKey struct{}

// systemKinder is the structural shape of orb system exceptions
// (*orb.SystemException has SystemKind); matching by shape instead of
// type keeps obs free of an orb import.
type systemKinder interface{ SystemKind() string }

// errKind maps an invocation error to a counter label.
func errKind(err error) string {
	var sk systemKinder
	if errors.As(err, &sk) {
		return sk.SystemKind()
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return "DEADLINE"
	}
	if errors.Is(err, context.Canceled) {
		return "CANCELED"
	}
	return "ERROR"
}

// headSampled makes the local sampling decision for a fresh root. Only
// called when no parent span constrains the choice; the decision is
// encoded on the wire so the callee never re-decides.
func (ob *Observer) headSampled() bool {
	if ob.sample >= 1 {
		return true
	}
	if ob.sample <= 0 {
		return false
	}
	return rand.Float64() < ob.sample
}

// RequestSent starts the client side of an outbound request: a span
// (when sampled — a live parent span in ctx always wins) plus the
// SCTrace injection, or just a pooled timestamp on the fast path.
// Called by the ORB after message-level interceptors, before the bytes
// hit the wire.
func (ob *Observer) RequestSent(ctx context.Context, m *giop.Message) context.Context {
	c := obsCallPool.Get().(*obsCall)
	c.start = time.Now()
	parent := SpanFromContext(ctx)
	if parent == nil && !ob.headSampled() {
		c.span = nil
		m.SetContext(giop.SCTrace, ob.notSampledSC)
		return context.WithValue(ctx, obsCallKey{}, c)
	}
	tracer := ob.Tracer
	if parent != nil && parent.tracer != nil {
		tracer = parent.tracer
	}
	_, span := tracer.Start(ctx, m.Operation,
		WithAttrs(String("side", "client"), String("key", m.ObjectKey)))
	m.SetContext(giop.SCTrace, EncodeTraceContext(span.Context()))
	c.span = span
	return context.WithValue(ctx, obsCallKey{}, c)
}

// ReplyReceived completes the client side: latency (exemplar-linked
// when a sampled span exists) and error counters. reply is nil for
// oneway sends and transport failures.
func (ob *Observer) ReplyReceived(ctx context.Context, req, reply *giop.Message, err error) {
	c, _ := ctx.Value(obsCallKey{}).(*obsCall)
	if c == nil {
		return
	}
	span := c.span
	lat := time.Since(c.start).Seconds()
	h := ob.clientLatency.With1(req.Operation)
	if span != nil && span.Context().Sampled {
		h.ObserveExemplar(lat, span.Context().TraceID)
	} else {
		h.Observe(lat)
	}
	switch {
	case err != nil:
		kind := errKind(err)
		ob.rpcErrors.With("client", req.Operation, kind).Inc()
		span.SetAttr("error_kind", kind)
		span.EndErr(err)
	case reply != nil && reply.ReplyStatus == giop.ReplySystemException:
		ob.rpcErrors.With("client", req.Operation, "SYSTEM_EXCEPTION").Inc()
		span.SetAttr("error_kind", "SYSTEM_EXCEPTION")
		span.End()
	case reply != nil && reply.ReplyStatus == giop.ReplyUserException:
		ob.rpcErrors.With("client", req.Operation, "USER_EXCEPTION").Inc()
		span.SetAttr("error_kind", "USER_EXCEPTION")
		span.End()
	default:
		span.End()
	}
	c.span = nil
	obsCallPool.Put(c)
}

// DispatchStart continues the caller's trace (from the SCTrace service
// context, when present) in a server span covering the dispatch. When
// the caller marked the trace not-sampled — or no context arrived and
// the local sampler declines — the context is returned untouched: the
// server fast path adds zero allocations, and the reactor's own
// queue-wait/service-time instrumentation remains the latency source.
func (ob *Observer) DispatchStart(ctx context.Context, req *giop.Message) context.Context {
	sc, ok := DecodeTraceContext(req.Context(giop.SCTrace))
	if ok && !sc.Sampled {
		return ctx
	}
	if !ok && !ob.headSampled() {
		return ctx
	}
	opts := []SpanOption{WithAttrs(String("side", "server"), String("key", req.ObjectKey))}
	if ok {
		opts = append(opts, WithRemoteParent(sc))
	}
	ctx, span := ob.Tracer.Start(ctx, req.Operation, opts...)
	return context.WithValue(ctx, serverSpanKey{}, span)
}

// DispatchEnd completes the server span (when DispatchStart created
// one) and records dispatch latency and exception counters. reply is
// nil for oneway dispatches.
func (ob *Observer) DispatchEnd(ctx context.Context, req, reply *giop.Message) {
	span, _ := ctx.Value(serverSpanKey{}).(*Span)
	if span != nil {
		lat := time.Since(span.StartTime()).Seconds()
		h := ob.serverLatency.With1(req.Operation)
		if span.Context().Sampled {
			h.ObserveExemplar(lat, span.Context().TraceID)
		} else {
			h.Observe(lat)
		}
	}
	if reply != nil && reply.ReplyStatus != giop.ReplyNoException && reply.ReplyStatus != giop.ReplyLocationForward {
		kind := reply.ReplyStatus.String()
		ob.rpcErrors.With("server", req.Operation, kind).Inc()
		span.SetAttr("error_kind", kind)
	}
	span.End()
}
