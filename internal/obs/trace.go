// Package obs is the runtime's observability layer: distributed traces,
// metrics and trace-correlated structured logging for the ORB and every
// service built on it.
//
// Traces follow the W3C/OpenTelemetry shape — a 128-bit trace id shared
// by every span of one logical operation, 64-bit span ids forming a
// parent/child tree — and cross process borders in the SCTrace GIOP
// service context (see giop.SCTrace and EncodeTraceContext). Completed
// sampled spans land in a fixed-size Ring served by the /debug/traces
// HTTP endpoint; metrics are exported in Prometheus text format on
// /metrics. The package depends only on the wire layers (giop, cdr), so
// orb, ft, naming and winner can all record spans without import cycles.
package obs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is the 128-bit identifier shared by every span of one trace.
type TraceID [16]byte

// IsZero reports whether the id is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID is the 64-bit identifier of one span.
type SpanID [8]byte

// IsZero reports whether the id is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated part of a span: what crosses the wire in
// the SCTrace service context.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	// Sampled is the head-based sampling decision, made once at the trace
	// root and inherited by every child, local or remote.
	Sampled bool
}

// Attr is one key/value annotation on a span or event. Values are
// strings; use the String/Int/Bool/Dur constructors.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int64) Attr { return Attr{Key: key, Value: fmt.Sprintf("%d", value)} }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr { return Attr{Key: key, Value: fmt.Sprintf("%t", value)} }

// Dur builds a duration attribute.
func Dur(key string, value time.Duration) Attr { return Attr{Key: key, Value: value.String()} }

// Event is a timestamped point annotation on a span (e.g. the moment a
// COMM_FAILURE was detected, or a recovery completed).
type Event struct {
	Time  time.Time `json:"time"`
	Name  string    `json:"name"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Span is one timed operation in a trace. All methods are safe on a nil
// receiver (they no-op), so call sites never need nil checks, and safe
// for concurrent use.
type Span struct {
	tracer  *Tracer
	name    string
	service string
	sc      SpanContext
	parent  SpanID
	start   time.Time

	mu     sync.Mutex
	attrs  []Attr
	events []Event
	errMsg string
	end    time.Time
	ended  bool
}

// Context returns the span's propagation context (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// Name returns the span's operation name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Service returns the name of the service that recorded the span.
func (s *Span) Service() string {
	if s == nil {
		return ""
	}
	return s.service
}

// Parent returns the parent span id (zero for roots).
func (s *Span) Parent() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.parent
}

// StartTime returns when the span began.
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns end-start for ended spans, time-since-start otherwise.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.end.Sub(s.start)
	}
	return time.Since(s.start)
}

// Err returns the error message recorded at End, if any.
func (s *Span) Err() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errMsg
}

// SetAttr sets (or replaces) an attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Attr returns the value of the attribute with the given key.
func (s *Span) Attr(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// Attrs returns a copy of the span's attributes.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// AddEvent records a timestamped event on the span.
func (s *Span) AddEvent(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, Event{Time: time.Now(), Name: name, Attrs: attrs})
}

// Events returns a copy of the span's events.
func (s *Span) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Event returns the first event with the given name.
func (s *Span) Event(name string) (Event, bool) {
	if s == nil {
		return Event{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.events {
		if e.Name == name {
			return e, true
		}
	}
	return Event{}, false
}

// End completes the span and, when sampled, records it in the tracer's
// ring. End is idempotent; only the first call takes effect.
func (s *Span) End() { s.EndErr(nil) }

// EndErr completes the span, recording err (when non-nil) as its failure.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = time.Now()
	if err != nil {
		s.errMsg = err.Error()
	}
	s.mu.Unlock()
	if s.sc.Sampled && s.tracer != nil && s.tracer.ring != nil {
		s.tracer.ring.add(s)
	}
}

// Tracer creates spans for one service (process) and records the sampled
// ones in its Ring.
type Tracer struct {
	service string
	sample  float64
	ring    *Ring
}

// TracerOption customizes a Tracer.
type TracerOption func(*Tracer)

// WithRing makes the tracer record completed spans into ring.
func WithRing(r *Ring) TracerOption { return func(t *Tracer) { t.ring = r } }

// WithSample sets the head-based sampling fraction in [0,1] (default 1:
// every trace is recorded). The decision is a deterministic function of
// the trace id, so all spans of one trace — across processes — agree.
func WithSample(fraction float64) TracerOption { return func(t *Tracer) { t.sample = fraction } }

// NewTracer creates a tracer for service. Without WithRing it records
// into a private 1024-span ring.
func NewTracer(service string, opts ...TracerOption) *Tracer {
	t := &Tracer{service: service, sample: 1}
	for _, o := range opts {
		o(t)
	}
	if t.ring == nil {
		t.ring = NewRing(1024)
	}
	return t
}

// Service returns the tracer's service name.
func (t *Tracer) Service() string { return t.service }

// Ring returns the tracer's completed-span ring.
func (t *Tracer) Ring() *Ring { return t.ring }

// sampled makes the deterministic head sampling decision for a trace id.
func (t *Tracer) sampled(id TraceID) bool {
	if t.sample >= 1 {
		return true
	}
	if t.sample <= 0 {
		return false
	}
	// Upper 63 bits of the id as a uniform fraction of [0,1).
	f := float64(binary.BigEndian.Uint64(id[:8])>>1) / float64(uint64(1)<<63)
	return f < t.sample
}

// SpanOption customizes one Start call.
type SpanOption func(*spanConfig)

type spanConfig struct {
	remote    SpanContext
	hasRemote bool
	attrs     []Attr
}

// WithRemoteParent parents the new span under a context received from a
// remote peer (decoded from the SCTrace service context). A live local
// parent span in ctx takes precedence.
func WithRemoteParent(sc SpanContext) SpanOption {
	return func(c *spanConfig) { c.remote, c.hasRemote = sc, true }
}

// WithAttrs sets initial attributes on the new span.
func WithAttrs(attrs ...Attr) SpanOption {
	return func(c *spanConfig) { c.attrs = append(c.attrs, attrs...) }
}

// Start begins a span named name: a child of the span in ctx if any, else
// of the remote parent given via WithRemoteParent, else a new trace root
// (where the sampling decision is made). The returned context carries the
// new span for nested calls.
func (t *Tracer) Start(ctx context.Context, name string, opts ...SpanOption) (context.Context, *Span) {
	var cfg spanConfig
	for _, o := range opts {
		o(&cfg)
	}
	var sc SpanContext
	var parent SpanID
	switch {
	case SpanFromContext(ctx) != nil:
		psc := SpanFromContext(ctx).Context()
		sc = SpanContext{TraceID: psc.TraceID, SpanID: newSpanID(), Sampled: psc.Sampled}
		parent = psc.SpanID
	case cfg.hasRemote && !cfg.remote.TraceID.IsZero():
		sc = SpanContext{TraceID: cfg.remote.TraceID, SpanID: newSpanID(), Sampled: cfg.remote.Sampled}
		parent = cfg.remote.SpanID
	default:
		id := newTraceID()
		sc = SpanContext{TraceID: id, SpanID: newSpanID(), Sampled: t.sampled(id)}
	}
	s := &Span{
		tracer:  t,
		name:    name,
		service: t.service,
		sc:      sc,
		parent:  parent,
		start:   time.Now(),
		attrs:   cfg.attrs,
	}
	return ContextWithSpan(ctx, s), s
}

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying span.
func ContextWithSpan(ctx context.Context, span *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, span)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// defaultTracer records spans started by library layers (ft, orb) when no
// parent span designates a tracer and no explicit tracer is used.
var defaultTracer atomic.Pointer[Tracer]

func init() { defaultTracer.Store(NewTracer("process")) }

// Default returns the process-wide fallback tracer.
func Default() *Tracer { return defaultTracer.Load() }

// SetDefault replaces the process-wide fallback tracer.
func SetDefault(t *Tracer) {
	if t != nil {
		defaultTracer.Store(t)
	}
}

// StartSpan begins a span under the span in ctx, using that span's tracer
// so whole traces land in one ring; without a parent it starts a new root
// on the Default tracer. This is the entry point library layers use.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if parent := SpanFromContext(ctx); parent != nil && parent.tracer != nil {
		return parent.tracer.Start(ctx, name, WithAttrs(attrs...))
	}
	return Default().Start(ctx, name, WithAttrs(attrs...))
}

// newTraceID draws a random non-zero 128-bit trace id.
func newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		_, _ = cryptorand.Read(id[:])
	}
	return id
}

// newSpanID draws a random non-zero 64-bit span id.
func newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		_, _ = cryptorand.Read(id[:])
	}
	return id
}
