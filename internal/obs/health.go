package obs

import (
	"sync"
	"time"
)

// Health aggregates component liveness probes into one structured
// report, served at /healthz (always 200, full report) and /readyz
// (503 while any component fails — the load-balancer / daemon view).
// Components register a probe function once; probes run at query time
// and must be fast and non-blocking (read a flag or counter, don't do
// IO).
type Health struct {
	mu     sync.Mutex
	probes []healthProbe
}

type healthProbe struct {
	component string
	fn        func() error
}

// NewHealth creates an empty probe registry.
func NewHealth() *Health { return &Health{} }

// Register adds a component probe. fn returns nil when healthy; its
// error message becomes the component's detail. Registering the same
// component again replaces the probe (daemons re-wire on failover).
func (h *Health) Register(component string, fn func() error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.probes {
		if h.probes[i].component == component {
			h.probes[i].fn = fn
			return
		}
	}
	h.probes = append(h.probes, healthProbe{component: component, fn: fn})
}

// ComponentHealth is one component's probe result.
type ComponentHealth struct {
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// HealthReport is the /healthz document.
type HealthReport struct {
	Service string `json:"service,omitempty"`
	// Status is "ok" when every component passes, else "degraded".
	Status     string                     `json:"status"`
	Time       time.Time                  `json:"time"`
	Components map[string]ComponentHealth `json:"components"`
	// Anomalies lists recent anomaly trips when an anomaly sink is
	// attached (see Observer), oldest first.
	Anomalies []Anomaly `json:"anomalies,omitempty"`
}

// OK reports whether every component passed.
func (r HealthReport) OK() bool { return r.Status == "ok" }

// Check runs every probe and assembles the report.
func (h *Health) Check() HealthReport {
	h.mu.Lock()
	probes := append([]healthProbe(nil), h.probes...)
	h.mu.Unlock()

	rep := HealthReport{Status: "ok", Time: time.Now(), Components: make(map[string]ComponentHealth, len(probes))}
	for _, p := range probes {
		if err := p.fn(); err != nil {
			rep.Components[p.component] = ComponentHealth{OK: false, Detail: err.Error()}
			rep.Status = "degraded"
		} else {
			rep.Components[p.component] = ComponentHealth{OK: true}
		}
	}
	return rep
}
