package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderRingSemantics(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 6; i++ {
		f.Record(FlightRecord{Time: int64(i), Op: "op", Service: int64(i)})
	}
	if got := f.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := f.Total(); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d records, want 4", len(snap))
	}
	// Oldest-first: records 2..5 survive, 0 and 1 were overwritten.
	for i, r := range snap {
		if r.Time != int64(i+2) {
			t.Fatalf("snapshot[%d].Time = %d, want %d", i, r.Time, i+2)
		}
	}
}

func TestFlightRecordOutcomeStrings(t *testing.T) {
	for o, want := range map[Outcome]string{
		OutcomeOK:              "ok",
		OutcomeUserException:   "user_exception",
		OutcomeSystemException: "system_exception",
		OutcomeForward:         "forward",
		OutcomeShed:            "shed",
		OutcomeOneway:          "oneway",
		OutcomeTransportError:  "transport_error",
	} {
		if o.String() != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, o.String(), want)
		}
	}
}

func TestFlightRecordJSONCarriesTraceAndTimes(t *testing.T) {
	f := NewFlightRecorder(8)
	tr := newTraceID()
	f.Record(FlightRecord{
		Time: time.Now().UnixNano(), Op: "solve", Peer: "10.0.0.1:1234",
		Side: SideServer, Bytes: 64, QueueWait: 1500, Service: 42000,
		Outcome: OutcomeOK, Trace: tr,
	})
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var recs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &recs); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r["trace_id"] != tr.String() {
		t.Errorf("trace_id = %v, want %s", r["trace_id"], tr)
	}
	if r["queue_wait_ns"] != float64(1500) {
		t.Errorf("queue_wait_ns = %v, want 1500", r["queue_wait_ns"])
	}
	if r["outcome"] != "ok" || r["side"] != "server" {
		t.Errorf("outcome/side = %v/%v", r["outcome"], r["side"])
	}
}

func TestAnomalyBurstRuleAndDump(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(16)
	f.Record(FlightRecord{Op: "solve", QueueWait: 999, Outcome: OutcomeShed})
	var fired []Anomaly
	var mu sync.Mutex
	a := NewAnomalies("testsvc", f, AnomalyOptions{
		DumpDir: dir,
		Bursts:  map[AnomalyKind]BurstRule{AnomalyDeadlineShed: {Threshold: 3, Window: time.Minute}},
		OnAnomaly: func(an Anomaly) {
			mu.Lock()
			fired = append(fired, an)
			mu.Unlock()
		},
	})
	a.Occur(AnomalyDeadlineShed)
	a.Occur(AnomalyDeadlineShed)
	if a.Tripped() != 0 {
		t.Fatal("tripped before the burst threshold")
	}
	a.Occur(AnomalyDeadlineShed)
	if a.Tripped() != 1 {
		t.Fatalf("Tripped = %d, want 1", a.Tripped())
	}
	a.Wait()
	mu.Lock()
	if len(fired) != 1 || fired[0].Kind != AnomalyDeadlineShed || fired[0].Count != 3 {
		t.Fatalf("OnAnomaly got %+v", fired)
	}
	mu.Unlock()

	dumps := a.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("got %d dumps, want 1", len(dumps))
	}
	raw, err := os.ReadFile(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	var d struct {
		Service string `json:"service"`
		Anomaly Anomaly
		Records []struct {
			Op          string `json:"op"`
			QueueWaitNS int64  `json:"queue_wait_ns"`
		} `json:"records"`
		Goroutines string `json:"goroutines"`
	}
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if d.Service != "testsvc" || len(d.Records) != 1 || d.Records[0].QueueWaitNS != 999 {
		t.Fatalf("dump contents wrong: %+v", d)
	}
	if !strings.Contains(d.Goroutines, "goroutine") {
		t.Error("dump carries no goroutine profile")
	}
	// The heap profile rides as a sibling file.
	heaps, _ := filepath.Glob(filepath.Join(dir, "*.heap.pb.gz"))
	if len(heaps) != 1 {
		t.Errorf("got %d heap profiles, want 1", len(heaps))
	}
}

func TestAnomalyCooldownLimitsDumps(t *testing.T) {
	dir := t.TempDir()
	a := NewAnomalies("svc", nil, AnomalyOptions{DumpDir: dir, Cooldown: time.Hour})
	a.Trip(AnomalyBreakerOpen, "ep1")
	a.Trip(AnomalyBreakerOpen, "ep2")
	a.Wait()
	if got := len(a.Dumps()); got != 1 {
		t.Fatalf("got %d dumps inside the cooldown, want 1", got)
	}
	if a.Tripped() != 2 {
		t.Fatalf("Tripped = %d, want 2 (cooldown gates dumps, not counting)", a.Tripped())
	}
}

func TestDefaultAnomalySink(t *testing.T) {
	Signal(AnomalyRecovery) // no sink: must not panic
	a := NewAnomalies("svc", nil, AnomalyOptions{})
	SetDefaultAnomalies(a)
	defer SetDefaultAnomalies(nil)
	SignalTrip(AnomalyBreakerOpen, "x")
	if a.Tripped() != 1 {
		t.Fatalf("Tripped = %d, want 1", a.Tripped())
	}
}

func TestHealthAggregation(t *testing.T) {
	h := NewHealth()
	h.Register("good", func() error { return nil })
	rep := h.Check()
	if !rep.OK() || rep.Status != "ok" {
		t.Fatalf("healthy report degraded: %+v", rep)
	}
	h.Register("bad", func() error { return fmt.Errorf("queue 9/10") })
	rep = h.Check()
	if rep.OK() {
		t.Fatal("report OK with a failing component")
	}
	if c := rep.Components["bad"]; c.OK || c.Detail != "queue 9/10" {
		t.Fatalf("bad component = %+v", c)
	}
	// Re-registering replaces the probe.
	h.Register("bad", func() error { return nil })
	if rep = h.Check(); !rep.OK() {
		t.Fatalf("probe replacement did not take: %+v", rep)
	}
}

func TestHealthEndpoints(t *testing.T) {
	ob := NewObserverOpts("epsvc", ObserverOptions{})
	healthy := true
	ob.Health.Register("thing", func() error {
		if !healthy {
			return fmt.Errorf("down")
		}
		return nil
	})
	srv := httptest.NewServer(ob.Handler())
	defer srv.Close()

	get := func(path string) (int, []byte) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	code, body := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	var rep HealthReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Service != "epsvc" || !rep.OK() {
		t.Fatalf("healthz report: %+v", rep)
	}
	if code, _ = get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz healthy = %d", code)
	}

	healthy = false
	code, _ = get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz must stay 200 when degraded, got %d", code)
	}
	if code, _ = get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz degraded = %d, want 503", code)
	}

	// /debug/flightrec serves the ring as JSON.
	ob.Flight.Record(FlightRecord{Op: "x", Outcome: OutcomeOK})
	code, body = get("/debug/flightrec")
	if code != http.StatusOK {
		t.Fatalf("/debug/flightrec = %d", code)
	}
	var fr struct {
		Service string            `json:"service"`
		Total   uint64            `json:"total"`
		Records []json.RawMessage `json:"records"`
	}
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Service != "epsvc" || fr.Total != 1 || len(fr.Records) != 1 {
		t.Fatalf("flightrec doc: %+v", fr)
	}

	// /debug/pprof is wired.
	if code, _ = get("/debug/pprof/goroutine?debug=1"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/goroutine = %d", code)
	}
}

// TestRegistryConcurrentObserveDuringExport hammers HistogramVec
// With/With1/Observe/ObserveExemplar and CounterVec With/With1 from many
// goroutines while Export runs concurrently — run under -race, this is
// the registry's concurrency contract.
func TestRegistryConcurrentObserveDuringExport(t *testing.T) {
	reg := NewRegistry()
	hv := reg.NewHistogramVec("test_latency_seconds", "h", nil, "op")
	cv := reg.NewCounterVec("test_events_total", "c", "op")
	tr := newTraceID()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ops := [...]string{"alpha", "beta", "gamma"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				op := ops[i%len(ops)]
				if i%2 == 0 {
					hv.With1(op).Observe(float64(i%100) / 100)
					cv.With1(op).Inc()
				} else {
					hv.With(op).ObserveExemplar(float64(i%100)/100, tr)
					cv.With(op).Add(2)
				}
			}
		}(g)
	}
	deadline := time.After(200 * time.Millisecond)
	for {
		var buf bytes.Buffer
		reg.WritePrometheus(&buf)
		buf.Reset()
		reg.WriteOpenMetrics(&buf)
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			return
		default:
		}
	}
}

// TestExpositionRoundTrip parses everything an Observer-with-ORB-stats
// registry exports and fails on malformed lines, duplicate metric
// families, or histogram series whose bucket counts are not cumulative.
func TestExpositionRoundTrip(t *testing.T) {
	ob := NewObserverOpts("rtsvc", ObserverOptions{})
	hv := ob.Registry.NewHistogramVec("rt_latency_seconds", "h", nil, "op")
	tr := newTraceID()
	hv.With1("solve").ObserveExemplar(0.042, tr)
	hv.With1("solve").Observe(3)
	ob.Registry.NewCounterVec("rt_events_total", "c", "kind").With1("x").Inc()
	ob.Registry.NewMultiGaugeFunc("rt_conn_inflight", "g", []string{"peer"},
		func(emit func([]string, float64)) {
			emit([]string{"10.0.0.9:44"}, 2)
		})

	for _, exemplars := range []bool{false, true} {
		var buf bytes.Buffer
		if exemplars {
			ob.Registry.WriteOpenMetrics(&buf)
		} else {
			ob.Registry.WritePrometheus(&buf)
		}
		checkExposition(t, buf.String(), exemplars)
	}
}

// checkExposition is a strict line-level parser for the subset of the
// text formats the registry emits.
func checkExposition(t *testing.T, text string, openMetrics bool) {
	t.Helper()
	seenFamily := map[string]bool{}
	var curFamily string
	sawEOF := false
	sc := bufio.NewScanner(strings.NewReader(text))
	for n := 1; sc.Scan(); n++ {
		line := sc.Text()
		switch {
		case line == "":
			t.Errorf("line %d: blank line in exposition", n)
		case line == "# EOF":
			sawEOF = true
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[0] == "" {
				t.Errorf("line %d: malformed HELP: %q", n, line)
				continue
			}
			if seenFamily[parts[0]] {
				t.Errorf("line %d: duplicate family %q", n, parts[0])
			}
			seenFamily[parts[0]] = true
			curFamily = parts[0]
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 || parts[0] != curFamily {
				t.Errorf("line %d: TYPE %q does not follow its HELP (family %q)", n, line, curFamily)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Errorf("line %d: unknown type %q", n, parts[1])
			}
		case strings.HasPrefix(line, "#"):
			t.Errorf("line %d: unknown comment %q", n, line)
		default:
			sample := line
			if i := strings.Index(line, " # {"); i >= 0 {
				if !openMetrics {
					t.Errorf("line %d: exemplar in plain prometheus output: %q", n, line)
				}
				sample = line[:i]
			}
			fields := strings.Fields(sample)
			if len(fields) < 2 {
				t.Errorf("line %d: malformed sample %q", n, line)
				continue
			}
			name := fields[0]
			if i := strings.IndexByte(name, '{'); i >= 0 {
				if !strings.HasSuffix(name, "}") {
					t.Errorf("line %d: unbalanced label braces: %q", n, line)
				}
				name = name[:i]
			}
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if !seenFamily[base] && !seenFamily[name] {
				t.Errorf("line %d: sample %q precedes its HELP/TYPE", n, line)
			}
			if _, err := fmt.Sscanf(fields[1], "%f", new(float64)); err != nil {
				t.Errorf("line %d: non-numeric value in %q", n, line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if openMetrics && !sawEOF {
		t.Error("OpenMetrics output missing # EOF")
	}
	if !openMetrics && sawEOF {
		t.Error("plain prometheus output has # EOF")
	}
	// Histogram cumulativity: replay bucket lines per series.
	checkHistogramCumulative(t, text)
}

func checkHistogramCumulative(t *testing.T, text string) {
	t.Helper()
	last := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		i := strings.Index(line, "_bucket{")
		if i < 0 {
			continue
		}
		sample := line
		if j := strings.Index(sample, " # {"); j >= 0 {
			sample = sample[:j]
		}
		fields := strings.Fields(sample)
		if len(fields) != 2 {
			continue
		}
		// Series identity: full label set minus the le label.
		key := fields[0]
		if j := strings.Index(key, `le="`); j >= 0 {
			k := strings.Index(key[j+4:], `"`)
			key = key[:j] + key[j+4+k+1:]
		}
		var v float64
		fmt.Sscanf(fields[1], "%f", &v)
		if prev, ok := last[key]; ok && v < prev {
			t.Errorf("bucket counts not cumulative at %q: %v < %v", line, v, prev)
		}
		last[key] = v
	}
}

// BenchmarkFlightRecord is benchgate's zero-alloc gate for the
// flight-recorder record path: one record per request at full reactor
// throughput must not touch the allocator.
func BenchmarkFlightRecord(b *testing.B) {
	f := NewFlightRecorder(DefaultFlightRecorderSize)
	rec := FlightRecord{
		Time: time.Now().UnixNano(), Op: "echo", Peer: "127.0.0.1:9999",
		Side: SideServer, Bytes: 128, QueueWait: 1200, Service: 88000,
		Outcome: OutcomeOK, Trace: newTraceID(),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Time = int64(i)
		f.Record(rec)
	}
}
