package cdr

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestEncoderPoolNoAliasing hammers the encoder pool from many goroutines
// (run with -race): each goroutine encodes a distinct payload, copies it,
// releases the encoder and verifies the copy never mutates — i.e. Release
// followed by another goroutine's Acquire cannot alias live data.
func TestEncoderPoolNoAliasing(t *testing.T) {
	const goroutines = 8
	const rounds = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				e := AcquireEncoder()
				marker := fmt.Sprintf("g%d-i%d", g, i)
				e.PutString(marker)
				e.PutUint64(uint64(g)<<32 | uint64(i))
				snapshot := append([]byte(nil), e.Bytes()...)
				live := e.Bytes()
				if !bytes.Equal(snapshot, live) {
					t.Errorf("g%d: bytes changed before release", g)
				}
				e.Release()
				// After release another goroutine may reuse the buffer;
				// only the snapshot may be consulted.
				d := AcquireDecoder(snapshot)
				if got := d.GetString(); got != marker {
					t.Errorf("g%d: marker = %q, want %q", g, got, marker)
				}
				if got := d.GetUint64(); got != uint64(g)<<32|uint64(i) {
					t.Errorf("g%d: payload mismatch", g)
				}
				if err := d.Err(); err != nil {
					t.Errorf("g%d: decode: %v", g, err)
				}
				d.Release()
			}
		}(g)
	}
	wg.Wait()
}

// TestDecoderReset verifies Reset clears position and sticky errors.
func TestDecoderReset(t *testing.T) {
	e := NewEncoder(16)
	e.PutUint32(7)
	d := AcquireDecoder(e.Bytes())
	if got := d.GetUint32(); got != 7 {
		t.Fatalf("GetUint32 = %d, want 7", got)
	}
	d.GetUint64() // runs off the end: sticky error
	if d.Err() == nil {
		t.Fatal("want truncation error")
	}
	d.Reset(e.Bytes())
	if d.Err() != nil {
		t.Fatalf("error survived Reset: %v", d.Err())
	}
	if got := d.GetUint32(); got != 7 {
		t.Fatalf("after Reset GetUint32 = %d, want 7", got)
	}
	d.Release()
}

// TestEncoderPoolDropsOversized ensures giant buffers are not pinned by
// the pool.
func TestEncoderPoolDropsOversized(t *testing.T) {
	e := AcquireEncoder()
	e.PutRaw(make([]byte, maxPooledCapacity+1))
	e.Release()
	if e.buf != nil {
		t.Fatalf("oversized buffer retained (cap %d)", cap(e.buf))
	}
}
