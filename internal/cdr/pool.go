package cdr

import "sync"

// maxPooledCapacity caps the buffer capacity an Encoder may carry back
// into the pool. Occasional giant messages (large checkpoints, bulk
// sequences) would otherwise pin their buffers forever.
const maxPooledCapacity = 1 << 16 // 64 KiB

// encoderPool recycles Encoders across requests: the invocation hot path
// acquires one per request body (client and server side), so without a
// pool every call allocates and grows a fresh buffer.
var encoderPool = sync.Pool{
	New: func() any { return NewEncoder(512) },
}

// decoderPool recycles Decoders; a Decoder is tiny but the invocation
// path creates several per call (reply body, nested values), and they are
// all release-safe at well-defined points.
var decoderPool = sync.Pool{
	New: func() any { return new(Decoder) },
}

// AcquireEncoder returns an empty pooled Encoder. Callers must not retain
// slices returned by Bytes past Release: the buffer is recycled. Pair
// every Acquire with exactly one Release; dropping an Encoder without
// releasing is safe (it is simply collected).
func AcquireEncoder() *Encoder {
	e := encoderPool.Get().(*Encoder)
	e.Reset()
	return e
}

// Release returns the Encoder to the pool. The Encoder must not be used
// afterwards, and no slice previously returned by Bytes may be read —
// the next AcquireEncoder will overwrite it. Oversized buffers are
// dropped rather than pooled.
func (e *Encoder) Release() {
	if e == nil {
		return
	}
	if cap(e.buf) > maxPooledCapacity {
		e.buf = nil
	}
	e.Reset()
	encoderPool.Put(e)
}

// Reset re-points the Decoder at data, clearing position and any sticky
// error, so one Decoder can be reused across messages.
func (d *Decoder) Reset(data []byte) {
	d.data = data
	d.pos = 0
	d.err = nil
}

// AcquireDecoder returns a pooled Decoder positioned at the start of
// data. The Decoder does not copy data. Pair with Release once decoding
// is complete; values decoded with Get* (strings, byte slices, sequences)
// are copies and stay valid after Release.
func AcquireDecoder(data []byte) *Decoder {
	d := decoderPool.Get().(*Decoder)
	d.Reset(data)
	return d
}

// Release returns the Decoder to the pool. The Decoder must not be used
// afterwards; the data slice it was reading is not touched.
func (d *Decoder) Release() {
	if d == nil {
		return
	}
	d.Reset(nil)
	decoderPool.Put(d)
}
